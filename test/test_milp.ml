(* Tests for the LP simplex and branch-and-bound MILP solver. *)

let qtest ?(count = 80) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let lp ~nvars ~objective ~constraints ~upper =
  { Lp.nvars; objective; constraints; upper }

let constr coeffs rel rhs = { Lp.coeffs; rel; rhs }

(* ------------------------------------------------------------------- LP *)

let test_lp_textbook () =
  (* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (min -3x -5y)
     optimum at (2, 6), objective -36 *)
  let p =
    lp ~nvars:2 ~objective:[| -3.0; -5.0 |]
      ~constraints:
        [
          constr [ (0, 1.0) ] Lp.Le 4.0;
          constr [ (1, 2.0) ] Lp.Le 12.0;
          constr [ (0, 3.0); (1, 2.0) ] Lp.Le 18.0;
        ]
      ~upper:[| infinity; infinity |]
  in
  match Lp.solve p with
  | Lp.Optimal { x; obj } ->
      Test_util.check_close ~msg:"x" 2.0 x.(0);
      Test_util.check_close ~msg:"y" 6.0 x.(1);
      Test_util.check_close ~msg:"obj" (-36.0) obj
  | _ -> Alcotest.fail "expected optimal"

let test_lp_equality_and_ge () =
  (* min x + y s.t. x + y = 10, x >= 3, y >= 2 -> 10 at e.g. x∈[3,8] *)
  let p =
    lp ~nvars:2 ~objective:[| 1.0; 1.0 |]
      ~constraints:
        [
          constr [ (0, 1.0); (1, 1.0) ] Lp.Eq 10.0;
          constr [ (0, 1.0) ] Lp.Ge 3.0;
          constr [ (1, 1.0) ] Lp.Ge 2.0;
        ]
      ~upper:[| infinity; infinity |]
  in
  match Lp.solve p with
  | Lp.Optimal { x; obj } ->
      Test_util.check_close ~msg:"obj" 10.0 obj;
      Alcotest.(check bool) "x >= 3" true (x.(0) >= 3.0 -. 1e-6);
      Alcotest.(check bool) "y >= 2" true (x.(1) >= 2.0 -. 1e-6)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_infeasible () =
  let p =
    lp ~nvars:1 ~objective:[| 1.0 |]
      ~constraints:[ constr [ (0, 1.0) ] Lp.Ge 5.0; constr [ (0, 1.0) ] Lp.Le 3.0 ]
      ~upper:[| infinity |]
  in
  Alcotest.(check bool) "infeasible" true (Lp.solve p = Lp.Infeasible)

let test_lp_unbounded () =
  let p =
    lp ~nvars:1 ~objective:[| -1.0 |] ~constraints:[ constr [ (0, 1.0) ] Lp.Ge 0.0 ]
      ~upper:[| infinity |]
  in
  Alcotest.(check bool) "unbounded" true (Lp.solve p = Lp.Unbounded)

let test_lp_upper_bounds () =
  (* min -x with x <= 0.7 via the box bound *)
  let p = lp ~nvars:1 ~objective:[| -1.0 |] ~constraints:[] ~upper:[| 0.7 |] in
  match Lp.solve p with
  | Lp.Optimal { x; _ } -> Test_util.check_close ~msg:"x at bound" 0.7 x.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_negative_rhs () =
  (* -x <= -2  <=>  x >= 2 *)
  let p =
    lp ~nvars:1 ~objective:[| 1.0 |] ~constraints:[ constr [ (0, -1.0) ] Lp.Le (-2.0) ]
      ~upper:[| infinity |]
  in
  match Lp.solve p with
  | Lp.Optimal { x; _ } -> Test_util.check_close ~msg:"x" 2.0 x.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_degenerate () =
  (* multiple redundant constraints through one vertex: must not cycle *)
  let p =
    lp ~nvars:2 ~objective:[| -1.0; -1.0 |]
      ~constraints:
        [
          constr [ (0, 1.0); (1, 1.0) ] Lp.Le 1.0;
          constr [ (0, 1.0); (1, 1.0) ] Lp.Le 1.0;
          constr [ (0, 2.0); (1, 2.0) ] Lp.Le 2.0;
          constr [ (0, 1.0) ] Lp.Le 1.0;
          constr [ (1, 1.0) ] Lp.Le 1.0;
        ]
      ~upper:[| infinity; infinity |]
  in
  match Lp.solve p with
  | Lp.Optimal { obj; _ } -> Test_util.check_close ~msg:"obj" (-1.0) obj
  | _ -> Alcotest.fail "expected optimal"

(* random LPs: solver's optimum must be feasible and no random feasible
   point may beat it *)
let random_lp_gen =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Rng.create seed in
      let nvars = 2 + Rng.int rng 4 in
      let ncons = 1 + Rng.int rng 5 in
      let objective = Array.init nvars (fun _ -> Rng.float rng 4.0 -. 2.0) in
      let constraints =
        List.init ncons (fun _ ->
            let coeffs =
              List.init nvars (fun j -> j, Rng.float rng 2.0)
              |> List.filter (fun (_, a) -> a > 0.2)
            in
            constr coeffs Lp.Le (1.0 +. Rng.float rng 5.0))
      in
      seed, lp ~nvars ~objective ~constraints ~upper:(Array.make nvars 1.0))
    QCheck2.Gen.(int_bound 1_000_000)

let lp_optimum_dominates_random_points =
  qtest "LP optimum is feasible and dominates sampled feasible points" random_lp_gen
    (fun (seed, p) ->
      match Lp.solve p with
      | Lp.Optimal { x; obj } ->
          let feas = Lp.check_feasible p x in
          let rng = Rng.create (seed + 1) in
          let dominated = ref true in
          for _ = 1 to 100 do
            let y = Array.init p.Lp.nvars (fun _ -> Rng.float rng 1.0) in
            if Lp.check_feasible p y && Lp.eval_objective p y < obj -. 1e-6 then
              dominated := false
          done;
          feas && !dominated
      | Lp.Infeasible | Lp.Unbounded | Lp.Timeout -> false (* all-Le with x=0 is feasible *))

(* ------------------------------------------------------------------ MILP *)

let brute_force_binary p =
  (* enumerate all binary assignments *)
  let n = p.Lp.nvars in
  let best = ref infinity in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun j -> if mask land (1 lsl j) <> 0 then 1.0 else 0.0) in
    if Lp.check_feasible p x then begin
      let v = Lp.eval_objective p x in
      if v < !best then best := v
    end
  done;
  !best

let random_binary_milp_gen =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Rng.create seed in
      let nvars = 2 + Rng.int rng 6 in
      let ncons = 1 + Rng.int rng 4 in
      let objective = Array.init nvars (fun _ -> Rng.float rng 10.0 -. 5.0) in
      let constraints =
        List.init ncons (fun _ ->
            let coeffs = List.init nvars (fun j -> j, Rng.float rng 3.0 -. 1.0) in
            let rel = if Rng.bool rng then Lp.Le else Lp.Ge in
            constr coeffs rel (Rng.float rng 3.0 -. 1.0))
      in
      lp ~nvars ~objective ~constraints ~upper:(Array.make nvars 1.0))
    QCheck2.Gen.(int_bound 1_000_000)

let bnb_matches_brute_force profile =
  qtest ~count:60
    (Printf.sprintf "B&B (%s) matches brute force on random binary MILPs"
       profile.Bnb.profile_name)
    random_binary_milp_gen
    (fun p ->
      let opts = { (Bnb.default_options profile) with Bnb.time_limit = 10.0 } in
      let outcome = Bnb.solve p ~integer_vars:(Array.init p.Lp.nvars Fun.id) opts in
      let expected = brute_force_binary p in
      if Float.is_finite expected then
        outcome.Bnb.proved_optimal && Test_util.float_close expected outcome.Bnb.objective
      else outcome.Bnb.incumbent = None)

let test_bnb_knapsack () =
  (* max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6 -> a + c (17) vs b+c (20) *)
  let p =
    lp ~nvars:3 ~objective:[| -10.0; -13.0; -7.0 |]
      ~constraints:[ constr [ (0, 3.0); (1, 4.0); (2, 2.0) ] Lp.Le 6.0 ]
      ~upper:[| 1.0; 1.0; 1.0 |]
  in
  let outcome =
    Bnb.solve p ~integer_vars:[| 0; 1; 2 |] (Bnb.default_options Bnb.cplex_like)
  in
  Test_util.check_close ~msg:"knapsack optimum" (-20.0) outcome.Bnb.objective;
  Alcotest.(check bool) "proved" true outcome.Bnb.proved_optimal

let test_bnb_warm_start_trace () =
  let p =
    lp ~nvars:2 ~objective:[| 1.0; 1.0 |]
      ~constraints:[ constr [ (0, 1.0); (1, 1.0) ] Lp.Ge 1.0 ]
      ~upper:[| 1.0; 1.0 |]
  in
  let warm = [| 1.0; 1.0 |] in
  let opts =
    { (Bnb.default_options Bnb.cplex_like) with Bnb.warm_start = Some warm }
  in
  let outcome = Bnb.solve p ~integer_vars:[| 0; 1 |] opts in
  Test_util.check_close ~msg:"optimum 1" 1.0 outcome.Bnb.objective;
  (* warm start (cost 2) recorded first, then the improvement to 1 *)
  Alcotest.(check bool) "trace has >= 2 entries" true (List.length outcome.Bnb.trace >= 2);
  Test_util.check_close ~msg:"first trace entry is warm start" 2.0
    (snd (List.hd outcome.Bnb.trace))

let test_bnb_rejects_general_integers () =
  let p =
    lp ~nvars:1 ~objective:[| 1.0 |] ~constraints:[] ~upper:[| 5.0 |]
  in
  Alcotest.check_raises "binaries only"
    (Invalid_argument "Bnb.solve: integer variables must be binary (upper bound 1)") (fun () ->
      ignore (Bnb.solve p ~integer_vars:[| 0 |] (Bnb.default_options Bnb.cbc_like)))

let test_bnb_time_limit () =
  (* a moderately hard feasibility-tight instance with a microscopic
     budget must stop quickly and say "not proved" *)
  let rng = Rng.create 4 in
  let nvars = 24 in
  let objective = Array.init nvars (fun _ -> Rng.float rng 2.0 -. 1.0) in
  let constraints =
    List.init 16 (fun _ ->
        let coeffs = List.init nvars (fun j -> j, Rng.float rng 2.0 -. 1.0) in
        constr coeffs Lp.Le (Rng.float rng 2.0))
  in
  let p = lp ~nvars ~objective ~constraints ~upper:(Array.make nvars 1.0) in
  let opts = { (Bnb.default_options Bnb.scip_like) with Bnb.time_limit = 0.05 } in
  let outcome, wall = Timer.time (fun () -> Bnb.solve p ~integer_vars:(Array.init nvars Fun.id) opts) in
  Alcotest.(check bool) "respects limit" true (wall < 2.0);
  Alcotest.(check bool) "bound <= objective" true
    (outcome.Bnb.best_bound <= outcome.Bnb.objective +. 1e-9)

let bnb_bound_is_valid =
  qtest ~count:40 "best_bound never exceeds the true optimum" random_binary_milp_gen (fun p ->
      let opts = { (Bnb.default_options Bnb.scip_like) with Bnb.time_limit = 5.0 } in
      let outcome = Bnb.solve p ~integer_vars:(Array.init p.Lp.nvars Fun.id) opts in
      let expected = brute_force_binary p in
      if Float.is_finite expected then outcome.Bnb.best_bound <= expected +. 1e-6 else true)

(* ------------------------------------------- warm-start validation *)

let test_bnb_warm_start_rejected () =
  (* an infeasible warm start must be rejected loudly (health event) and
     must not poison the incumbent; same for a fractional one *)
  let p =
    lp ~nvars:2 ~objective:[| 1.0; 1.0 |]
      ~constraints:[ constr [ (0, 1.0); (1, 1.0) ] Lp.Ge 1.0 ]
      ~upper:[| 1.0; 1.0 |]
  in
  let health = Health.create () in
  let opts =
    { (Bnb.default_options Bnb.cplex_like) with Bnb.warm_start = Some [| 0.0; 0.0 |] }
  in
  let outcome = Bnb.solve ~health p ~integer_vars:[| 0; 1 |] opts in
  Alcotest.(check int) "infeasible warm start recorded" 1
    (Health.count health Health.Warm_start_rejected);
  Test_util.check_close ~msg:"still solves to 1" 1.0 outcome.Bnb.objective;
  Alcotest.(check bool) "still proved" true outcome.Bnb.proved_optimal;
  (* [0.5; 0.7] satisfies the constraints but is fractional on the
     integer variables: rejected for integrality, not feasibility *)
  let health2 = Health.create () in
  let opts2 = { opts with Bnb.warm_start = Some [| 0.5; 0.7 |] } in
  let outcome2 = Bnb.solve ~health:health2 p ~integer_vars:[| 0; 1 |] opts2 in
  Alcotest.(check int) "fractional warm start recorded" 1
    (Health.count health2 Health.Warm_start_rejected);
  Test_util.check_close ~msg:"objective unaffected" 1.0 outcome2.Bnb.objective;
  (* a genuinely feasible integral warm start raises no event *)
  let health3 = Health.create () in
  let opts3 = { opts with Bnb.warm_start = Some [| 1.0; 0.0 |] } in
  ignore (Bnb.solve ~health:health3 p ~integer_vars:[| 0; 1 |] opts3);
  Alcotest.(check int) "valid warm start accepted silently" 0
    (Health.count health3 Health.Warm_start_rejected)

(* ----------------------------------------- frontier bound reporting *)

let test_bnb_dfs_best_bound_finite () =
  (* regression: depth-first search used to report the frontier bound as
     -infinity whenever nodes were still open (the heap minimum is not
     the bound minimum under DFS order); the bound must be finite once
     the root LP has been solved, and still valid *)
  let rng = Rng.create 21 in
  let nvars = 14 in
  let objective = Array.init nvars (fun _ -> Rng.float rng 10.0 -. 5.0) in
  let constraints =
    List.init 10 (fun _ ->
        let coeffs = List.init nvars (fun j -> (j, Rng.float rng 3.0 -. 1.0)) in
        constr coeffs Lp.Le (Rng.float rng 3.0))
  in
  let p = lp ~nvars ~objective ~constraints ~upper:(Array.make nvars 1.0) in
  let opts =
    { (Bnb.default_options Bnb.cbc_like) with Bnb.time_limit = 10.0; node_limit = 5 }
  in
  let outcome = Bnb.solve p ~integer_vars:(Array.init nvars Fun.id) opts in
  Alcotest.(check bool) "bound finite with open nodes" true
    (Float.is_finite outcome.Bnb.best_bound);
  let expected = brute_force_binary p in
  Alcotest.(check bool) "bound valid" true (outcome.Bnb.best_bound <= expected +. 1e-6)

(* --------------------------------------------- parallel determinism *)

let test_bnb_jobs_bit_identical () =
  (* the wave-parallel search promises bit-identical outcomes at any
     pool size: same incumbent, bound, node count and trace costs *)
  let rng = Rng.create 33 in
  let nvars = 16 in
  let objective = Array.init nvars (fun _ -> Rng.float rng 10.0 -. 5.0) in
  let constraints =
    List.init 12 (fun _ ->
        let coeffs = List.init nvars (fun j -> (j, Rng.float rng 3.0 -. 1.0)) in
        constr coeffs Lp.Le (Rng.float rng 3.0))
  in
  let p = lp ~nvars ~objective ~constraints ~upper:(Array.make nvars 1.0) in
  let opts =
    { (Bnb.default_options Bnb.cplex_like) with Bnb.time_limit = 60.0; node_limit = 300 }
  in
  let solve_with jobs =
    let pool = Pool.create ~jobs () in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Bnb.solve ~pool p ~integer_vars:(Array.init nvars Fun.id) opts)
  in
  let a = solve_with 1 in
  let b = solve_with 4 in
  Alcotest.(check bool) "objective identical" true (a.Bnb.objective = b.Bnb.objective);
  Alcotest.(check bool) "bound identical" true (a.Bnb.best_bound = b.Bnb.best_bound);
  Alcotest.(check int) "node count identical" a.Bnb.nodes b.Bnb.nodes;
  Alcotest.(check bool) "incumbent identical" true (a.Bnb.incumbent = b.Bnb.incumbent);
  Alcotest.(check (list (float 0.0))) "trace costs identical"
    (List.map snd a.Bnb.trace) (List.map snd b.Bnb.trace)

(* ---------------------------------------------- relative tolerance *)

let test_bnb_relative_tolerance_scaled () =
  (* the knapsack at 1e10 cost scale: an absolute 1e-9 epsilon is far
     below one ulp there, so acceptance/pruning/proof must all use the
     shared relative tolerance to still close the gap *)
  let scale = 1e10 in
  let p =
    lp ~nvars:3
      ~objective:[| -10.0 *. scale; -13.0 *. scale; -7.0 *. scale |]
      ~constraints:[ constr [ (0, 3.0); (1, 4.0); (2, 2.0) ] Lp.Le 6.0 ]
      ~upper:[| 1.0; 1.0; 1.0 |]
  in
  let outcome =
    Bnb.solve p ~integer_vars:[| 0; 1; 2 |] (Bnb.default_options Bnb.cplex_like)
  in
  Alcotest.(check bool) "optimum at scale" true
    (Float.abs (outcome.Bnb.objective -. (-20.0 *. scale)) <= Bnb.tolerance (20.0 *. scale));
  Alcotest.(check bool) "proved at scale" true outcome.Bnb.proved_optimal

let test_lp_capacity_guard () =
  (* a problem whose dense tableau would exceed the solver's capacity
     must decline quickly instead of allocating gigabytes *)
  let nvars = 6000 in
  let constraints =
    List.init 6000 (fun i -> constr [ (i mod nvars, 1.0) ] Lp.Le 1.0)
  in
  let p = lp ~nvars ~objective:(Array.make nvars 1.0) ~constraints ~upper:(Array.make nvars 1.0) in
  let outcome, wall = Timer.time (fun () -> Lp.solve p) in
  Alcotest.(check bool) "declined" true (outcome = Lp.Timeout);
  Alcotest.(check bool) "fast" true (wall < 1.0)

let test_lp_deadline () =
  let rng = Rng.create 8 in
  let nvars = 60 in
  let constraints =
    List.init 80 (fun _ ->
        constr (List.init nvars (fun j -> j, Rng.float rng 2.0 -. 1.0)) Lp.Le (Rng.float rng 2.0))
  in
  let p =
    lp ~nvars
      ~objective:(Array.init nvars (fun _ -> Rng.float rng 2.0 -. 1.0))
      ~constraints ~upper:(Array.make nvars 1.0)
  in
  (* an already-expired deadline must abort the solve *)
  let d = Timer.deadline_after 1e-9 in
  Unix.sleepf 0.001;
  Alcotest.(check bool) "expired deadline aborts" true (Lp.solve ~deadline:d p = Lp.Timeout)

let () =
  Alcotest.run "milp"
    [
      ( "lp",
        [
          Alcotest.test_case "textbook" `Quick test_lp_textbook;
          Alcotest.test_case "equality and >=" `Quick test_lp_equality_and_ge;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "upper bounds" `Quick test_lp_upper_bounds;
          Alcotest.test_case "negative rhs" `Quick test_lp_negative_rhs;
          Alcotest.test_case "degenerate" `Quick test_lp_degenerate;
          Alcotest.test_case "capacity guard" `Quick test_lp_capacity_guard;
          Alcotest.test_case "deadline" `Quick test_lp_deadline;
          lp_optimum_dominates_random_points;
        ] );
      ( "bnb",
        [
          Alcotest.test_case "knapsack" `Quick test_bnb_knapsack;
          bnb_matches_brute_force Bnb.cplex_like;
          bnb_matches_brute_force Bnb.scip_like;
          bnb_matches_brute_force Bnb.cbc_like;
          Alcotest.test_case "warm start + trace" `Quick test_bnb_warm_start_trace;
          Alcotest.test_case "warm start rejection" `Quick test_bnb_warm_start_rejected;
          Alcotest.test_case "rejects general integers" `Quick test_bnb_rejects_general_integers;
          Alcotest.test_case "time limit" `Quick test_bnb_time_limit;
          Alcotest.test_case "DFS bound finite" `Quick test_bnb_dfs_best_bound_finite;
          Alcotest.test_case "jobs 1 = jobs 4" `Quick test_bnb_jobs_bit_identical;
          Alcotest.test_case "relative tolerance at 1e10" `Quick
            test_bnb_relative_tolerance_scaled;
          bnb_bound_is_valid;
        ] );
    ]
