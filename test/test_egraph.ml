(* Tests for the e-graph representation: builder/freeze invariants,
   solution semantics, costs, stats and serialization. *)

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let fig1 () = Fig1.egraph ()

(* --------------------------------------------------------- builder/freeze *)

let test_freeze_layout () =
  let g = fig1 () in
  (* class-major: node_class must be non-decreasing *)
  let sorted = ref true in
  for i = 1 to Egraph.num_nodes g - 1 do
    if g.Egraph.node_class.(i) < g.Egraph.node_class.(i - 1) then sorted := false
  done;
  Alcotest.(check bool) "class-major node order" true !sorted;
  (* class_seg covers all nodes with class sizes *)
  Alcotest.(check int) "segments cover nodes" (Egraph.num_nodes g)
    g.Egraph.class_seg.Segments.width;
  Array.iteri
    (fun c members ->
      Alcotest.(check int) "segment length = class size" (Array.length members)
        (Segments.seg_len g.Egraph.class_seg c))
    g.Egraph.class_nodes

let test_freeze_strips_unreachable () =
  let b = Egraph.Builder.create () in
  let root = Egraph.Builder.add_class b in
  let used = Egraph.Builder.add_class b in
  let orphan = Egraph.Builder.add_class b in
  ignore (Egraph.Builder.add_node b ~cls:root ~op:"r" ~cost:1.0 ~children:[ used ]);
  ignore (Egraph.Builder.add_node b ~cls:used ~op:"u" ~cost:1.0 ~children:[]);
  ignore (Egraph.Builder.add_node b ~cls:orphan ~op:"o" ~cost:1.0 ~children:[]);
  let g = Egraph.Builder.freeze b ~root in
  Alcotest.(check int) "orphan stripped" 2 (Egraph.num_classes g);
  Alcotest.(check int) "orphan node stripped" 2 (Egraph.num_nodes g)

let test_freeze_rejects_empty_reachable () =
  let b = Egraph.Builder.create () in
  let root = Egraph.Builder.add_class b in
  let empty = Egraph.Builder.add_class b in
  ignore (Egraph.Builder.add_node b ~cls:root ~op:"r" ~cost:1.0 ~children:[ empty ]);
  Alcotest.check_raises "empty reachable class"
    (Invalid_argument "Builder.freeze: reachable class 1 is empty") (fun () ->
      ignore (Egraph.Builder.freeze b ~root))

let test_freeze_rejects_dangling () =
  let b = Egraph.Builder.create () in
  let root = Egraph.Builder.add_class b in
  Alcotest.check_raises "dangling class"
    (Invalid_argument "Builder.add_node: class 7 not allocated") (fun () ->
      ignore (Egraph.Builder.add_node b ~cls:7 ~op:"r" ~cost:1.0 ~children:[]));
  ignore root

let parent_lists_consistent =
  qtest "parent edge lists match children" (Test_util.arb_egraph ~cycle_prob:0.3 ())
    (fun g ->
      let m = Egraph.num_classes g in
      let expected = Array.make m [] in
      Array.iteri
        (fun i ch ->
          let seen = Hashtbl.create 4 in
          Array.iter
            (fun c ->
              if not (Hashtbl.mem seen c) then begin
                Hashtbl.add seen c ();
                expected.(c) <- i :: expected.(c)
              end)
            ch)
        g.Egraph.children;
      let ok = ref true in
      for c = 0 to m - 1 do
        let seg = g.Egraph.parent_seg in
        let start = seg.Segments.starts.(c) and len = seg.Segments.lens.(c) in
        let actual = List.init len (fun k -> g.Egraph.parent_edge_node.(start + k)) in
        if List.sort compare actual <> List.sort compare expected.(c) then ok := false
      done;
      !ok)

let scc_matches_class_graph =
  qtest "scc_of_class consistent with class_children"
    (Test_util.arb_egraph ~cycle_prob:0.4 ()) (fun g ->
      let comp, _ = Graph_algo.scc_ids g.Egraph.class_children in
      comp = g.Egraph.scc_of_class)

(* -------------------------------------------------------------- solutions *)

let node_named g op =
  let found = ref (-1) in
  Array.iteri (fun i o -> if o = op then found := i) g.Egraph.ops;
  if !found < 0 then Alcotest.failf "no node with op %s" op;
  !found

let test_fig1_heuristic_solution_cost () =
  let g = fig1 () in
  (* Figure 2b: the sec²α + tan α selection costing 27 *)
  let names = [ "+"; "sq"; "sec"; "tan"; "alpha" ] in
  let pairs =
    List.filter_map
      (fun op ->
        (* pick the node whose op matches AND whose class hosts it; "sq"
           appears twice (sq of sec, sq of tan) — take the one whose
           child is the sec class *)
        if op = "sq" then begin
          let sec = node_named g "sec" in
          let sec_class = g.Egraph.node_class.(sec) in
          let found = ref None in
          Array.iteri
            (fun i o ->
              if o = "sq" && Array.exists (fun c -> c = sec_class) g.Egraph.children.(i) then
                found := Some (g.Egraph.node_class.(i), i))
            g.Egraph.ops;
          !found
        end
        else begin
          (* the root "+" is the one with two children classes of sq & tan *)
          let candidates = ref [] in
          Array.iteri (fun i o -> if o = op then candidates := i :: !candidates) g.Egraph.ops;
          match !candidates with
          | [] -> None
          | [ i ] -> Some (g.Egraph.node_class.(i), i)
          | several ->
              (* op "+": pick the root-class one *)
              let root_member =
                List.find_opt (fun i -> g.Egraph.node_class.(i) = g.Egraph.root) several
              in
              Option.map (fun i -> (g.Egraph.node_class.(i), i)) root_member
        end)
      names
  in
  let s = Egraph.Solution.of_choices g pairs in
  Test_util.check_close ~msg:"figure 2b cost" Fig1.heuristic_cost (Egraph.Solution.dag_cost g s)

let test_fig1_optimal_by_brute_force () =
  let g = fig1 () in
  let cost, sol = Test_util.brute_force_optimum g in
  Test_util.check_close ~msg:"brute-force optimum" Fig1.optimal_cost cost;
  match sol with
  | None -> Alcotest.fail "no optimal solution"
  | Some s ->
      Alcotest.(check bool) "valid" true (Egraph.Solution.is_valid g s);
      Alcotest.(check bool) "tree cost larger (shared tan)" true
        (Egraph.Solution.tree_cost g s > Egraph.Solution.dag_cost g s)

let test_solution_validity_cases () =
  let g = fig1 () in
  let empty = { Egraph.Solution.choice = Array.make (Egraph.num_classes g) None } in
  Alcotest.(check bool) "no root" true
    (Egraph.Solution.validate g empty = Egraph.Solution.No_root);
  let root_node = g.Egraph.class_nodes.(g.Egraph.root).(0) in
  let partial = { Egraph.Solution.choice = Array.make (Egraph.num_classes g) None } in
  partial.Egraph.Solution.choice.(g.Egraph.root) <- Some root_node;
  (match Egraph.Solution.validate g partial with
  | Egraph.Solution.Incomplete _ -> ()
  | _ -> Alcotest.fail "expected Incomplete");
  Test_util.check_close ~msg:"invalid cost infinite" infinity
    (Egraph.Solution.dag_cost g partial)

let test_cyclic_selection_detected () =
  let b = Egraph.Builder.create () in
  let a = Egraph.Builder.add_class b in
  let c = Egraph.Builder.add_class b in
  let na1 = Egraph.Builder.add_node b ~cls:a ~op:"fwd" ~cost:1.0 ~children:[ c ] in
  let nc1 = Egraph.Builder.add_node b ~cls:c ~op:"back" ~cost:1.0 ~children:[ a ] in
  ignore (Egraph.Builder.add_node b ~cls:c ~op:"leaf" ~cost:5.0 ~children:[]);
  let g = Egraph.Builder.freeze b ~root:a in
  ignore na1;
  ignore nc1;
  let fwd = node_named g "fwd" and back = node_named g "back" and leaf = node_named g "leaf" in
  let cyclic =
    Egraph.Solution.of_choices g
      [ (g.Egraph.node_class.(fwd), fwd); (g.Egraph.node_class.(back), back) ]
  in
  Alcotest.(check bool) "cycle detected" true
    (Egraph.Solution.validate g cyclic = Egraph.Solution.Cyclic);
  Alcotest.(check bool) "egraph is cyclic" true (Egraph.is_cyclic g);
  let ok =
    Egraph.Solution.of_choices g
      [ (g.Egraph.node_class.(fwd), fwd); (g.Egraph.node_class.(leaf), leaf) ]
  in
  Alcotest.(check bool) "acyclic choice valid" true (Egraph.Solution.is_valid g ok);
  Test_util.check_close ~msg:"cost" 6.0 (Egraph.Solution.dag_cost g ok)

let random_pick g seed =
  let rng = Rng.create seed in
  Array.map (fun members -> members.(Rng.int rng (Array.length members))) g.Egraph.class_nodes

let decode_closure_is_valid_on_dags =
  qtest "of_node_choice decodes to valid solutions on DAGs"
    QCheck2.Gen.(pair (Test_util.arb_egraph ()) (int_bound 1_000_000))
    (fun (g, seed) ->
      Egraph.Solution.is_valid g (Egraph.Solution.of_node_choice g (random_pick g seed)))

let dag_cost_le_tree_cost =
  qtest "dag cost <= tree cost"
    QCheck2.Gen.(pair (Test_util.arb_egraph ()) (int_bound 1_000_000))
    (fun (g, seed) ->
      let s = Egraph.Solution.of_node_choice g (random_pick g seed) in
      Egraph.Solution.dag_cost g s <= Egraph.Solution.tree_cost g s +. 1e-9)

let dense_matches_selected =
  qtest "to_dense marks exactly the selected nodes"
    QCheck2.Gen.(pair (Test_util.arb_egraph ()) (int_bound 1_000_000))
    (fun (g, seed) ->
      let s = Egraph.Solution.of_node_choice g (random_pick g seed) in
      let dense = Egraph.Solution.to_dense g s in
      let selected = Egraph.Solution.selected_nodes g s in
      let count = Array.fold_left (fun acc x -> acc + int_of_float x) 0 dense in
      count = List.length selected
      && List.for_all (fun n -> dense.(n) = 1.0) selected
      && Egraph.Solution.size g s = count)

let dag_cost_equals_sum_of_selected =
  qtest "dag cost = sum of selected node costs"
    QCheck2.Gen.(pair (Test_util.arb_egraph ()) (int_bound 1_000_000))
    (fun (g, seed) ->
      let s = Egraph.Solution.of_node_choice g (random_pick g seed) in
      let expected =
        List.fold_left (fun acc n -> acc +. g.Egraph.costs.(n)) 0.0
          (Egraph.Solution.selected_nodes g s)
      in
      Test_util.float_close expected (Egraph.Solution.dag_cost g s))

(* ------------------------------------------------------------------ misc *)

let test_set_costs () =
  let g = fig1 () in
  let costs = Array.make (Egraph.num_nodes g) 1.0 in
  let g2 = Egraph.set_costs g costs in
  Test_util.check_close ~msg:"new cost" 1.0 (Egraph.node_cost g2 0);
  Alcotest.(check bool) "original untouched" true
    (Array.exists (fun c -> c > 1.0) g.Egraph.costs);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Egraph.set_costs: length mismatch") (fun () ->
      ignore (Egraph.set_costs g [| 1.0 |]))

let test_stats () =
  let g = fig1 () in
  let st = Egraph.Stats.compute g in
  Alcotest.(check int) "nodes" 10 st.Egraph.Stats.nodes;
  Alcotest.(check int) "classes" 8 st.Egraph.Stats.classes;
  Alcotest.(check int) "max class" 2 st.Egraph.Stats.max_class_size;
  Alcotest.(check bool) "acyclic" false st.Egraph.Stats.cyclic;
  Test_util.check_close ~msg:"density" (10.0 /. 80.0) st.Egraph.Stats.density

let serial_roundtrip =
  qtest ~count:80 "serialization roundtrip preserves structure and optimum"
    (Test_util.arb_egraph ~max_classes:5 ()) (fun g ->
      let g2 = Egraph.Serial.of_string (Egraph.Serial.to_string g) in
      let s1 = Egraph.Stats.compute g and s2 = Egraph.Stats.compute g2 in
      let opt1, _ = Test_util.brute_force_optimum g in
      let opt2, _ = Test_util.brute_force_optimum g2 in
      s1 = s2 && Test_util.float_close opt1 opt2)

let test_serial_file () =
  let g = fig1 () in
  let path = Filename.temp_file "egraph" ".txt" in
  Egraph.Serial.write_file path g;
  let g2 = Egraph.Serial.read_file path in
  Sys.remove path;
  Alcotest.(check int) "nodes preserved" (Egraph.num_nodes g) (Egraph.num_nodes g2);
  let c1, _ = Test_util.brute_force_optimum g in
  let c2, _ = Test_util.brute_force_optimum g2 in
  Test_util.check_close ~msg:"optimum preserved" c1 c2

let test_serial_malformed () =
  (match Egraph.Serial.of_string "egraph x\nroot 0\nnode 0 1.0 leaf" with
  | exception Failure _ -> Alcotest.fail "valid input rejected"
  | _ -> ());
  match Egraph.Serial.of_string "garbage line" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "garbage accepted"

let serial_error msg_fragment text =
  match Egraph.Serial.of_string text with
  | exception Failure msg ->
      let has_sub s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S (got %S)" msg_fragment msg)
        true (has_sub msg msg_fragment)
  | _ -> Alcotest.fail (Printf.sprintf "accepted input that should mention %S" msg_fragment)

let test_serial_error_reporting () =
  (* errors carry the offending line number and a specific cause *)
  serial_error "line 2" "egraph x\nnode 0 notafloat leaf\nroot 0";
  serial_error "bad cost" "egraph x\nnode 0 notafloat leaf\nroot 0";
  serial_error "line 3" "egraph x\nroot 0\nnode zero 1.0 leaf";
  (* duplicate roots report both declarations *)
  serial_error "line 4" "egraph x\nroot 0\nnode 0 1.0 leaf\nroot 0";
  serial_error "declared on line 2" "egraph x\nroot 0\nnode 0 1.0 leaf\nroot 1";
  (* a class used as a child but never given an e-node, at its use site *)
  serial_error "referenced as a child but has no e-nodes"
    "egraph x\nroot 0\nnode 0 1.0 op 1";
  serial_error "line 3" "egraph x\nroot 0\nnode 0 1.0 op 1";
  (* an empty root class, at its declaration *)
  serial_error "root class 1 has no e-nodes" "egraph x\nroot 1\nnode 0 1.0 leaf";
  serial_error "missing root declaration" "egraph x\nnode 0 1.0 leaf"

(* ------------------------------------------------------------------- gym *)

let gym_sample =
  {|{
    "nodes": {
      "plus": { "op": "+", "cost": 2, "eclass": "root", "children": ["sq", "tan"] },
      "sq":   { "op": "sq", "cost": 5, "eclass": "c_sq", "children": ["sec"] },
      "sec":  { "op": "sec", "cost": 10, "eclass": "c_sec", "children": ["alpha"] },
      "tan":  { "op": "tan", "cost": 10, "eclass": "c_tan", "children": ["alpha"] },
      "alpha": { "op": "a", "eclass": "c_a", "children": [] }
    },
    "root_eclasses": ["root"]
  }|}

let test_gym_import () =
  let g = Gym.of_json_string gym_sample in
  Alcotest.(check int) "nodes" 5 (Egraph.num_nodes g);
  Alcotest.(check int) "classes" 5 (Egraph.num_classes g);
  (* default cost 1 for alpha; total greedy = 2+5+10+10+1 = 28 *)
  Test_util.check_close ~msg:"greedy cost" 28.0 (Greedy.extract g).Extractor.cost

let test_gym_multi_root () =
  let doc =
    {|{ "nodes": {
         "a": { "op": "a", "cost": 1, "eclass": "ca", "children": [] },
         "b": { "op": "b", "cost": 2, "eclass": "cb", "children": [] } },
       "root_eclasses": ["ca", "cb"] }|}
  in
  let g = Gym.of_json_string doc in
  (* synthetic bundle root over both classes *)
  Alcotest.(check int) "classes" 3 (Egraph.num_classes g);
  Test_util.check_close ~msg:"cost" 3.0 (Greedy.extract g).Extractor.cost

let test_gym_dangling_child () =
  let doc =
    {|{ "nodes": { "a": { "op": "a", "eclass": "ca", "children": ["ghost"] } },
       "root_eclasses": ["ca"] }|}
  in
  match Gym.of_json_string doc with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "dangling child accepted"

let gym_roundtrip =
  qtest ~count:60 "gym export/import preserves structure and optimum"
    (Test_util.arb_egraph ~max_classes:5 ()) (fun g ->
      let g2 = Gym.of_json_string (Gym.to_json_string g) in
      let c1, _ = Test_util.brute_force_optimum g in
      let c2, _ = Test_util.brute_force_optimum g2 in
      Egraph.num_nodes g = Egraph.num_nodes g2
      && Egraph.num_classes g = Egraph.num_classes g2
      && Test_util.float_close c1 c2)

let test_gym_file_io () =
  let g = Fig1.egraph () in
  let path = Filename.temp_file "egraph" ".json" in
  Gym.write_file path g;
  let g2 = Gym.read_file path in
  Sys.remove path;
  let c1, _ = Test_util.brute_force_optimum g in
  let c2, _ = Test_util.brute_force_optimum g2 in
  Test_util.check_close ~msg:"optimum preserved" c1 c2

(* ------------------------------------------------------------------- dot *)

let test_dot_render () =
  let g = fig1 () in
  let plain = Dot.to_dot g in
  Alcotest.(check bool) "digraph" true (String.length plain > 0 && String.sub plain 0 7 = "digraph");
  (* one cluster per class, one node statement per e-node *)
  let count_occurrences needle hay =
    let n = String.length needle in
    let rec loop i acc =
      if i + n > String.length hay then acc
      else if String.sub hay i n = needle then loop (i + n) (acc + 1)
      else loop (i + 1) acc
    in
    loop 0 0
  in
  Alcotest.(check int) "clusters" (Egraph.num_classes g) (count_occurrences "subgraph cluster_" plain);
  let s = Option.get (Greedy.extract g).Extractor.solution in
  let coloured = Dot.to_dot ~solution:s g in
  Alcotest.(check int) "selected nodes filled"
    (List.length (Egraph.Solution.selected_nodes g s))
    (count_occurrences "fillcolor=lightblue" coloured)

let () =
  Alcotest.run "egraph"
    [
      ( "builder",
        [
          Alcotest.test_case "class-major layout" `Quick test_freeze_layout;
          Alcotest.test_case "strips unreachable" `Quick test_freeze_strips_unreachable;
          Alcotest.test_case "rejects empty reachable class" `Quick
            test_freeze_rejects_empty_reachable;
          Alcotest.test_case "rejects dangling refs" `Quick test_freeze_rejects_dangling;
          parent_lists_consistent;
          scc_matches_class_graph;
        ] );
      ( "solutions",
        [
          Alcotest.test_case "fig1 heuristic selection costs 27" `Quick
            test_fig1_heuristic_solution_cost;
          Alcotest.test_case "fig1 brute-force optimum is 19" `Quick
            test_fig1_optimal_by_brute_force;
          Alcotest.test_case "validity cases" `Quick test_solution_validity_cases;
          Alcotest.test_case "cyclic selection detected" `Quick test_cyclic_selection_detected;
          decode_closure_is_valid_on_dags;
          dag_cost_le_tree_cost;
          dense_matches_selected;
          dag_cost_equals_sum_of_selected;
        ] );
      ( "misc",
        [
          Alcotest.test_case "set_costs" `Quick test_set_costs;
          Alcotest.test_case "stats" `Quick test_stats;
          serial_roundtrip;
          Alcotest.test_case "serial file io" `Quick test_serial_file;
          Alcotest.test_case "serial malformed" `Quick test_serial_malformed;
          Alcotest.test_case "serial error reporting" `Quick test_serial_error_reporting;
        ] );
      ( "gym",
        [
          Alcotest.test_case "import" `Quick test_gym_import;
          Alcotest.test_case "multi-root bundle" `Quick test_gym_multi_root;
          Alcotest.test_case "dangling child" `Quick test_gym_dangling_child;
          gym_roundtrip;
          Alcotest.test_case "file io" `Quick test_gym_file_io;
        ] );
      ("dot", [ Alcotest.test_case "render" `Quick test_dot_render ]);
    ]
