(* Tests for the extraction baselines: greedy, greedy-DAG, ILP encode +
   extract, genetic, random-walk sampling. *)

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let egraph_with_seed =
  QCheck2.Gen.pair (Test_util.arb_egraph ~max_classes:6 ()) QCheck2.Gen.(int_bound 1_000_000)

let cyclic_egraph_gen = Test_util.arb_egraph ~max_classes:6 ~cycle_prob:0.35 ()

(* --------------------------------------------------------------- greedy *)

let test_greedy_fig1 () =
  let g = Fig1.egraph () in
  let r = Greedy.extract g in
  Test_util.check_close ~msg:"paper's 27" Fig1.heuristic_cost r.Extractor.cost;
  match r.Extractor.solution with
  | None -> Alcotest.fail "no solution"
  | Some s -> Alcotest.(check bool) "valid" true (Egraph.Solution.is_valid g s)

let test_greedy_minimises_tree_cost_fig1 () =
  let g = Fig1.egraph () in
  let r = Greedy.extract g in
  match r.Extractor.solution with
  | None -> Alcotest.fail "no solution"
  | Some s ->
      (* on fig1 the greedy selection has no sharing: tree = dag = 27 *)
      Test_util.check_close ~msg:"tree cost" 27.0 (Egraph.Solution.tree_cost g s)

let greedy_always_valid =
  qtest "greedy solutions are valid (incl. cyclic e-graphs)" cyclic_egraph_gen (fun g ->
      match (Greedy.extract g).Extractor.solution with
      | Some s -> Egraph.Solution.is_valid g s
      | None -> true (* derivable root may genuinely not exist *))

let greedy_class_costs_are_fixpoint =
  qtest "greedy class costs satisfy the Bellman fixpoint"
    (Test_util.arb_egraph ~max_classes:7 ()) (fun g ->
      let cost, best = Greedy.class_costs g in
      let agg i =
        Array.fold_left (fun acc c -> acc +. cost.(c)) g.Egraph.costs.(i) g.Egraph.children.(i)
      in
      let ok = ref true in
      for c = 0 to Egraph.num_classes g - 1 do
        (* class cost = min over members of aggregated cost *)
        let expected =
          Array.fold_left (fun acc i -> Float.min acc (agg i)) infinity g.Egraph.class_nodes.(c)
        in
        if not (Test_util.float_close expected cost.(c)) then ok := false;
        if Float.is_finite cost.(c) && not (Test_util.float_close (agg best.(c)) cost.(c)) then
          ok := false
      done;
      !ok)

let greedy_matches_brute_force_on_trees =
  (* with max_children = 1 and distinct subtrees there is no sharing, so
     tree optimisation = dag optimisation and greedy must be optimal *)
  qtest ~count:80 "greedy optimal when no sharing exists"
    QCheck2.Gen.(
      map
        (fun seed ->
          let rng = Rng.create seed in
          Test_util.random_egraph ~max_class_size:3 ~max_children:1 rng ~classes:6)
        (int_bound 1_000_000))
    (fun g ->
      (* chain-shaped e-graphs: each class used at most once per path *)
      let bf, _ = Test_util.brute_force_optimum g in
      let greedy = (Greedy.extract g).Extractor.cost in
      (* greedy minimises tree cost; on chains dag = tree, but a class
         can still be referenced by several parents, so allow >= *)
      greedy >= bf -. 1e-9)

(* ----------------------------------------------------------- greedy-dag *)

let greedy_dag_never_worse_than_greedy =
  qtest "greedy-dag <= greedy on DAG cost" (Test_util.arb_egraph ~max_classes:7 ())
    (fun g ->
      let a = (Greedy_dag.extract g).Extractor.cost in
      let b = (Greedy.extract g).Extractor.cost in
      a <= b +. 1e-9)

let test_greedy_dag_beats_greedy_on_sharing () =
  (* A diamond *below a single e-node*: x1 (cost 1) uses P and Q, both
     wrappers around a shared node S (cost 9); the alternative x2 is a
     leaf of cost 11. Tree greedy double-counts S (1+9+9 = 19 > 11) and
     picks x2; the DAG-aware set costing sees {x1,p,q,s} = 10 < 11. *)
  let b = Egraph.Builder.create () in
  let root = Egraph.Builder.add_class b in
  let p_cls = Egraph.Builder.add_class b in
  let q_cls = Egraph.Builder.add_class b in
  let s_cls = Egraph.Builder.add_class b in
  ignore (Egraph.Builder.add_node b ~cls:root ~op:"x1" ~cost:1.0 ~children:[ p_cls; q_cls ]);
  ignore (Egraph.Builder.add_node b ~cls:root ~op:"x2" ~cost:11.0 ~children:[]);
  ignore (Egraph.Builder.add_node b ~cls:p_cls ~op:"p" ~cost:0.0 ~children:[ s_cls ]);
  ignore (Egraph.Builder.add_node b ~cls:q_cls ~op:"q" ~cost:0.0 ~children:[ s_cls ]);
  ignore (Egraph.Builder.add_node b ~cls:s_cls ~op:"s" ~cost:9.0 ~children:[]);
  let g = Egraph.Builder.freeze b ~root in
  Test_util.check_close ~msg:"greedy double-counts (11)" 11.0 (Greedy.extract g).Extractor.cost;
  Test_util.check_close ~msg:"greedy-dag shares (10)" 10.0 (Greedy_dag.extract g).Extractor.cost;
  let bf, _ = Test_util.brute_force_optimum g in
  Test_util.check_close ~msg:"10 is optimal" 10.0 bf

let test_greedy_dag_limitation_cross_class () =
  (* cross-class sharing (the paper's Fig. 2 regime) still defeats the
     class-local DAG heuristic: both heuristics pay 14 where the global
     optimum shares S for 10 — the gap SmoothE/ILP close *)
  let b = Egraph.Builder.create () in
  let root = Egraph.Builder.add_class b in
  let a_cls = Egraph.Builder.add_class b in
  let b_cls = Egraph.Builder.add_class b in
  let s_cls = Egraph.Builder.add_class b in
  ignore (Egraph.Builder.add_node b ~cls:root ~op:"pair" ~cost:0.0 ~children:[ a_cls; b_cls ]);
  ignore (Egraph.Builder.add_node b ~cls:s_cls ~op:"shared" ~cost:10.0 ~children:[]);
  ignore (Egraph.Builder.add_node b ~cls:a_cls ~op:"a_shared" ~cost:0.0 ~children:[ s_cls ]);
  ignore (Egraph.Builder.add_node b ~cls:a_cls ~op:"a_private" ~cost:7.0 ~children:[]);
  ignore (Egraph.Builder.add_node b ~cls:b_cls ~op:"b_shared" ~cost:0.0 ~children:[ s_cls ]);
  ignore (Egraph.Builder.add_node b ~cls:b_cls ~op:"b_private" ~cost:7.0 ~children:[]);
  let g = Egraph.Builder.freeze b ~root in
  Test_util.check_close ~msg:"greedy pays 14" 14.0 (Greedy.extract g).Extractor.cost;
  Test_util.check_close ~msg:"greedy-dag also pays 14" 14.0 (Greedy_dag.extract g).Extractor.cost;
  let bf, _ = Test_util.brute_force_optimum g in
  Test_util.check_close ~msg:"global optimum is 10" 10.0 bf;
  let r = Ilp.extract ~time_limit:10.0 ~profile:Bnb.cplex_like g in
  Test_util.check_close ~msg:"ILP finds 10" 10.0 r.Extractor.cost

let greedy_dag_always_valid =
  qtest "greedy-dag solutions valid on cyclic e-graphs" cyclic_egraph_gen (fun g ->
      match (Greedy_dag.extract g).Extractor.solution with
      | Some s -> Egraph.Solution.is_valid g s
      | None -> true)

(* ------------------------------------------------------------------ ILP *)

let test_ilp_encoding_shape () =
  let g = Fig1.egraph () in
  let enc = Ilp.encode g in
  Alcotest.(check int) "vars = N + M" (Egraph.num_nodes g + Egraph.num_classes g)
    enc.Ilp.problem.Lp.nvars;
  Alcotest.(check int) "all s binary" (Egraph.num_nodes g) (Array.length enc.Ilp.integer_vars);
  (* fig1 is acyclic: no big-M rows, so constraints = 1 root + per-edge *)
  let child_constraints =
    Array.fold_left
      (fun acc ch ->
        let seen = Hashtbl.create 4 in
        Array.iter (fun c -> Hashtbl.replace seen c ()) ch;
        acc + Hashtbl.length seen)
      0 g.Egraph.children
  in
  Alcotest.(check int) "constraint count" (1 + child_constraints)
    (List.length enc.Ilp.problem.Lp.constraints)

let test_ilp_fig1_optimal () =
  let g = Fig1.egraph () in
  let r = Ilp.extract ~time_limit:20.0 ~profile:Bnb.cplex_like g in
  Test_util.check_close ~msg:"optimal 19" Fig1.optimal_cost r.Extractor.cost;
  Alcotest.(check bool) "proved" true r.Extractor.proved_optimal

let ilp_matches_brute_force =
  qtest ~count:25 "ILP matches brute force on random e-graphs"
    (Test_util.arb_egraph ~max_classes:5 ()) (fun g ->
      let bf, _ = Test_util.brute_force_optimum g in
      let r = Ilp.extract ~time_limit:20.0 ~profile:Bnb.cplex_like g in
      if Float.is_finite bf then
        r.Extractor.proved_optimal && Test_util.float_close bf r.Extractor.cost
      else r.Extractor.solution = None)

let ilp_matches_brute_force_cyclic =
  qtest ~count:20 "ILP handles cyclic e-graphs (big-M ordering)"
    (Test_util.arb_egraph ~max_classes:5 ~cycle_prob:0.4 ()) (fun g ->
      let bf, _ = Test_util.brute_force_optimum g in
      let r = Ilp.extract ~time_limit:30.0 ~profile:Bnb.cplex_like g in
      match r.Extractor.solution with
      | Some s ->
          Egraph.Solution.is_valid g s
          && (not r.Extractor.proved_optimal || Test_util.float_close bf r.Extractor.cost)
      | None -> not (Float.is_finite bf))

let test_ilp_warm_start_round_trip () =
  let g = Fig1.egraph () in
  let enc = Ilp.encode g in
  let greedy = Option.get (Greedy.extract g).Extractor.solution in
  match Ilp.warm_start_point g enc greedy with
  | None -> Alcotest.fail "warm start rejected a valid solution"
  | Some x ->
      Alcotest.(check bool) "feasible" true (Lp.check_feasible enc.Ilp.problem x);
      let decoded = Ilp.decode g x in
      Test_util.check_close ~msg:"round trip cost" Fig1.heuristic_cost
        (Egraph.Solution.dag_cost g decoded)

(* -------------------------------------------------------------- genetic *)

let test_genetic_fig1 () =
  let rng = Rng.create 11 in
  let r = Genetic.extract rng (Fig1.egraph ()) in
  (* the space is tiny: the GA must find the optimum *)
  Test_util.check_close ~msg:"finds 19" Fig1.optimal_cost r.Extractor.cost

let genetic_always_valid =
  qtest ~count:20 "genetic solutions are valid" cyclic_egraph_gen (fun g ->
      let cfg = { Genetic.default_config with Genetic.generations = 10; time_limit = 5.0 } in
      let r = Genetic.extract ~config:cfg (Rng.create 3) g in
      match r.Extractor.solution with
      | Some s -> Egraph.Solution.is_valid g s
      | None -> true)

let test_genetic_nan_quarantine () =
  (* a poisoned cost model: one member of a two-node class costs NaN.
     Individuals selecting it must be quarantined (NaN beats nothing in
     a tournament, so without the guard the rot spreads through
     selection) and the GA must still return a finite-cost solution. *)
  let g = Fig1.egraph () in
  let coeffs = Array.map (fun c -> c) g.Egraph.costs in
  let cls =
    let found = ref (-1) in
    Array.iteri
      (fun c nodes -> if !found < 0 && Array.length nodes > 1 then found := c)
      g.Egraph.class_nodes;
    !found
  in
  let poisoned = g.Egraph.class_nodes.(cls).(0) in
  coeffs.(poisoned) <- Float.nan;
  let model = Cost_model.linear coeffs in
  let cfg = { Genetic.default_config with Genetic.generations = 10; time_limit = 5.0 } in
  let r = Genetic.extract ~config:cfg ~model (Rng.create 11) g in
  (match r.Extractor.solution with
  | None -> Alcotest.fail "no solution under the poisoned model"
  | Some s ->
      Alcotest.(check bool) "valid" true (Egraph.Solution.is_valid g s);
      Alcotest.(check bool) "finite cost" true
        (Float.is_finite (Cost_model.dense_solution model g s)));
  Alcotest.(check bool) "quarantine engaged" true
    (List.mem_assoc "quarantined" r.Extractor.notes)

let genetic_no_worse_than_random_seeding =
  qtest ~count:10 "genetic <= greedy (greedy seeds the population)"
    (Test_util.arb_egraph ~max_classes:6 ()) (fun g ->
      let cfg = { Genetic.default_config with Genetic.generations = 5; time_limit = 5.0 } in
      let r = Genetic.extract ~config:cfg (Rng.create 5) g in
      r.Extractor.cost <= (Greedy.extract g).Extractor.cost +. 1e-9)

(* ---------------------------------------------------------- random walk *)

let random_walk_valid =
  qtest "random-walk samples are valid" egraph_with_seed (fun (g, seed) ->
      match Random_walk.solution (Rng.create seed) g with
      | Some s -> Egraph.Solution.is_valid g s
      | None -> false (* arb_egraph DAGs are always derivable *))

let random_walk_valid_cyclic =
  qtest "random-walk samples valid on cyclic e-graphs" cyclic_egraph_gen (fun g ->
      match Random_walk.solution (Rng.create 7) g with
      | Some s -> Egraph.Solution.is_valid g s
      | None -> true)

let test_random_walk_diversity () =
  let g = (Registry.find_instance "bzip2_1").Registry.build () in
  let rng = Rng.create 13 in
  let sols = Random_walk.solutions rng g ~count:20 in
  Alcotest.(check int) "20 samples" 20 (List.length sols);
  let costs = List.map (Egraph.Solution.dag_cost g) sols in
  let distinct = List.sort_uniq compare costs in
  Alcotest.(check bool) "diverse costs" true (List.length distinct > 3)

let test_dense_dataset_shape () =
  let g = Fig1.egraph () in
  let data = Random_walk.dense_dataset (Rng.create 2) g ~count:8 in
  Alcotest.(check int) "rows" 8 (Array.length data);
  Array.iter
    (fun row ->
      Alcotest.(check int) "width" (Egraph.num_nodes g) (Array.length row);
      Alcotest.(check bool) "binary" true (Array.for_all (fun x -> x = 0.0 || x = 1.0) row))
    data

(* -------------------------------------------------------- cycle pruning *)

let test_prune_noop_on_dag () =
  let g = Fig1.egraph () in
  let rep = Acyclic_prune.prune g in
  Alcotest.(check int) "nothing removed" 0 rep.Acyclic_prune.removed_nodes;
  match rep.Acyclic_prune.egraph with
  | Some pruned ->
      Alcotest.(check int) "same node count" (Egraph.num_nodes g) (Egraph.num_nodes pruned)
  | None -> Alcotest.fail "pruning lost the graph"

let test_prune_removes_cycle_nodes () =
  (* two mutually-dependent classes plus leaf escapes: the fwd/back
     nodes must go, the leaves survive *)
  let b = Egraph.Builder.create () in
  let a = Egraph.Builder.add_class b in
  let c = Egraph.Builder.add_class b in
  ignore (Egraph.Builder.add_node b ~cls:a ~op:"fwd" ~cost:1.0 ~children:[ c ]);
  ignore (Egraph.Builder.add_node b ~cls:a ~op:"leafA" ~cost:9.0 ~children:[]);
  ignore (Egraph.Builder.add_node b ~cls:c ~op:"back" ~cost:1.0 ~children:[ a ]);
  ignore (Egraph.Builder.add_node b ~cls:c ~op:"leafC" ~cost:9.0 ~children:[]);
  let g = Egraph.Builder.freeze b ~root:a in
  let rep = Acyclic_prune.prune g in
  Alcotest.(check int) "both cycle nodes removed" 2 rep.Acyclic_prune.removed_nodes;
  match rep.Acyclic_prune.egraph with
  | Some pruned ->
      Alcotest.(check bool) "acyclic now" false (Egraph.is_cyclic pruned);
      (* quality loss: the original optimum 9 survives here (leafA) *)
      let r = Acyclic_prune.extract ~time_limit:10.0 g in
      Test_util.check_close ~msg:"pruned extraction" 9.0 r.Extractor.cost;
      (match r.Extractor.solution with
      | Some s -> Alcotest.(check bool) "valid on original" true (Egraph.Solution.is_valid g s)
      | None -> Alcotest.fail "no lifted solution")
  | None -> Alcotest.fail "root lost"

let test_prune_can_lose_optimum () =
  (* the only cheap derivation goes through a cyclic class; pruning
     forces the expensive alternative — the §2 quality warning *)
  let b = Egraph.Builder.create () in
  let root = Egraph.Builder.add_class b in
  let x = Egraph.Builder.add_class b in
  ignore (Egraph.Builder.add_node b ~cls:root ~op:"cheap" ~cost:1.0 ~children:[ x ]);
  ignore (Egraph.Builder.add_node b ~cls:root ~op:"dear" ~cost:50.0 ~children:[]);
  (* x's only member is self-referential: an identity-style node *)
  ignore (Egraph.Builder.add_node b ~cls:x ~op:"id_x" ~cost:0.0 ~children:[ x ]);
  let g = Egraph.Builder.freeze b ~root in
  let r = Acyclic_prune.extract ~time_limit:10.0 g in
  Test_util.check_close ~msg:"forced onto the expensive node" 50.0 r.Extractor.cost

let prune_solutions_valid_on_original =
  qtest ~count:40 "pruned extraction lifts to a valid original solution"
    (Test_util.arb_egraph ~max_classes:6 ~cycle_prob:0.4 ()) (fun g ->
      let r = Acyclic_prune.extract ~time_limit:10.0 g in
      match r.Extractor.solution with
      | Some s ->
          Egraph.Solution.is_valid g s
          && Test_util.float_close (Egraph.Solution.dag_cost g s) r.Extractor.cost
      | None -> true)

let prune_never_beats_full_ilp =
  qtest ~count:25 "pruning never beats the full ILP optimum"
    (Test_util.arb_egraph ~max_classes:5 ~cycle_prob:0.4 ()) (fun g ->
      let full = Ilp.extract ~time_limit:20.0 ~profile:Bnb.cplex_like g in
      let pruned = Acyclic_prune.extract ~time_limit:20.0 g in
      (not full.Extractor.proved_optimal)
      || pruned.Extractor.cost >= full.Extractor.cost -. 1e-9)

(* --------------------------------------------------------------- hybrid *)

let test_hybrid_fig1_proves_optimum () =
  let g = Fig1.egraph () in
  let o = Hybrid.extract g in
  Test_util.check_close ~msg:"optimal 19" Fig1.optimal_cost o.Hybrid.result.Extractor.cost;
  Alcotest.(check bool) "proved" true o.Hybrid.result.Extractor.proved_optimal;
  Alcotest.(check bool) "bound meets incumbent" true
    (o.Hybrid.bound >= Fig1.optimal_cost -. 1e-6);
  Alcotest.(check bool) "gap closed" true (o.Hybrid.gap = 0.0)

let hybrid_matches_brute_force =
  qtest ~count:20 "hybrid proves the true optimum on random e-graphs"
    (Test_util.arb_egraph ~max_classes:5 ()) (fun g ->
      let bf, _ = Test_util.brute_force_optimum g in
      let o = Hybrid.extract g in
      if Float.is_finite bf then
        o.Hybrid.result.Extractor.proved_optimal
        && Test_util.float_close bf o.Hybrid.result.Extractor.cost
      else o.Hybrid.result.Extractor.solution = None)

let hybrid_valid_on_cyclic =
  qtest ~count:15 "hybrid solutions valid (and proofs true) on cyclic e-graphs"
    (Test_util.arb_egraph ~max_classes:5 ~cycle_prob:0.4 ()) (fun g ->
      let bf, _ = Test_util.brute_force_optimum g in
      let o = Hybrid.extract g in
      match o.Hybrid.result.Extractor.solution with
      | Some s ->
          Egraph.Solution.is_valid g s
          && (not o.Hybrid.result.Extractor.proved_optimal
             || Test_util.float_close bf o.Hybrid.result.Extractor.cost)
      | None -> not (Float.is_finite bf))

let adversarial_marginals g =
  (* marginals concentrated on whatever greedy picked: on graphs where
     greedy is suboptimal this pushes the fixing rule to prune away the
     true optimum *)
  let s = Option.get (Greedy.extract g).Extractor.solution in
  let cp = Array.make (Egraph.num_nodes g) 0.01 in
  Array.iter (Option.iter (fun pick -> cp.(pick) <- 0.99)) s.Egraph.Solution.choice;
  (s, cp)

let test_hybrid_verify_recovers_from_bad_marginals () =
  (* the cross-class sharing graph: greedy pays 14, the optimum is 10.
     Marginals pointing hard at greedy's picks make the fixing rule drop
     the shared derivation; the verification solve must recover 10 and
     prove it anyway *)
  let b = Egraph.Builder.create () in
  let root = Egraph.Builder.add_class b in
  let a_cls = Egraph.Builder.add_class b in
  let b_cls = Egraph.Builder.add_class b in
  let s_cls = Egraph.Builder.add_class b in
  ignore (Egraph.Builder.add_node b ~cls:root ~op:"pair" ~cost:0.0 ~children:[ a_cls; b_cls ]);
  ignore (Egraph.Builder.add_node b ~cls:s_cls ~op:"shared" ~cost:10.0 ~children:[]);
  ignore (Egraph.Builder.add_node b ~cls:a_cls ~op:"a_shared" ~cost:0.0 ~children:[ s_cls ]);
  ignore (Egraph.Builder.add_node b ~cls:a_cls ~op:"a_private" ~cost:7.0 ~children:[]);
  ignore (Egraph.Builder.add_node b ~cls:b_cls ~op:"b_shared" ~cost:0.0 ~children:[ s_cls ]);
  ignore (Egraph.Builder.add_node b ~cls:b_cls ~op:"b_private" ~cost:7.0 ~children:[]);
  let g = Egraph.Builder.freeze b ~root in
  let incumbent, cp = adversarial_marginals g in
  let o = Hybrid.extract ~incumbent ~marginals:cp g in
  Alcotest.(check bool) "fixing engaged" true (o.Hybrid.fixed_classes > 0);
  Test_util.check_close ~msg:"verify recovers 10" 10.0 o.Hybrid.result.Extractor.cost;
  Alcotest.(check bool) "proof is sound" true o.Hybrid.result.Extractor.proved_optimal;
  Alcotest.(check bool) "ran pruned then verify" true
    (List.map (fun p -> p.Hybrid.phase_name) o.Hybrid.phases = [ "pruned"; "verify" ]);
  (* without the verification solve the same pruning must never claim a
     proof — the pruned bound holds only for the shrunken space *)
  let o2 =
    Hybrid.extract
      ~config:{ Hybrid.default_config with Hybrid.verify = false }
      ~incumbent ~marginals:cp g
  in
  Alcotest.(check bool) "no proof without verify" true
    (not o2.Hybrid.result.Extractor.proved_optimal)

let test_hybrid_rejects_invalid_incumbent () =
  let g = Fig1.egraph () in
  let bogus = { Egraph.Solution.choice = Array.make (Egraph.num_classes g) None } in
  let health = Health.create () in
  let o = Hybrid.extract ~health ~incumbent:bogus g in
  Alcotest.(check bool) "rejection recorded" true
    (Health.count health Health.Warm_start_rejected >= 1);
  Test_util.check_close ~msg:"greedy fallback still reaches 19" Fig1.optimal_cost
    o.Hybrid.result.Extractor.cost;
  Alcotest.(check bool) "proved" true o.Hybrid.result.Extractor.proved_optimal

let test_ilp_cost_bound_row () =
  (* the objective bound cut row: a cut above the optimum leaves it
     reachable, a cut strictly below it makes the encoding infeasible *)
  let g = Fig1.egraph () in
  let solve cb =
    let enc = Ilp.encode_with_costs ?cost_bound:cb g ~costs:g.Egraph.costs in
    Bnb.solve enc.Ilp.problem ~integer_vars:enc.Ilp.integer_vars
      (Bnb.default_options Bnb.cplex_like)
  in
  let above = solve (Some (Fig1.optimal_cost +. 0.5)) in
  Test_util.check_close ~msg:"optimum under the cut" Fig1.optimal_cost above.Bnb.objective;
  let below = solve (Some (Fig1.optimal_cost -. 0.5)) in
  Alcotest.(check bool) "cut excludes everything" true (below.Bnb.incumbent = None)

let test_ilp_gap_note_finite () =
  (* with a node-limited weak profile the solve stops early; the "gap"
     stat must still be finite (regression: a -infinity DFS frontier
     bound used to make it infinite) *)
  let g = Fig1.egraph () in
  let warm = (Greedy_dag.extract g).Extractor.solution in
  let r =
    Ilp.extract ~time_limit:10.0 ~node_limit:1 ?warm_start:warm ~profile:Bnb.cbc_like g
  in
  match List.assoc_opt "gap" r.Extractor.notes with
  | None -> Alcotest.fail "no gap note"
  | Some s ->
      let gap = float_of_string s in
      Alcotest.(check bool) "gap finite" true (Float.is_finite gap);
      Alcotest.(check bool) "gap nonnegative" true (gap >= 0.0)

(* ------------------------------------------------------------ annealing *)

let test_annealing_fig1 () =
  let r = Annealing.extract (Rng.create 3) (Fig1.egraph ()) in
  Test_util.check_close ~msg:"finds 19" Fig1.optimal_cost r.Extractor.cost

let annealing_never_worse_than_greedy =
  qtest ~count:15 "annealing <= greedy (greedy seeds the walk)"
    (Test_util.arb_egraph ~max_classes:6 ()) (fun g ->
      let cfg = { Annealing.default_config with Annealing.steps = 500; time_limit = 5.0 } in
      let r = Annealing.extract ~config:cfg (Rng.create 5) g in
      r.Extractor.cost <= (Greedy.extract g).Extractor.cost +. 1e-9)

let annealing_valid_on_cyclic =
  qtest ~count:15 "annealing solutions valid on cyclic e-graphs" cyclic_egraph_gen (fun g ->
      let cfg = { Annealing.default_config with Annealing.steps = 300; time_limit = 5.0 } in
      match (Annealing.extract ~config:cfg (Rng.create 7) g).Extractor.solution with
      | Some s -> Egraph.Solution.is_valid g s
      | None -> true)

let test_annealing_nonlinear_model () =
  let g = Fig1.egraph () in
  let model = Cost_model.fusion_of_egraph (Rng.create 2) ~pairs:4 ~discount:0.5 g in
  let r = Annealing.extract ~model (Rng.create 11) g in
  match r.Extractor.solution with
  | Some s ->
      Test_util.check_close ~msg:"cost under model" (Cost_model.dense_solution model g s)
        r.Extractor.cost
  | None -> Alcotest.fail "no solution"

(* ---------------------------------------------------------- result type *)

let test_extractor_make_rejects_invalid () =
  let g = Fig1.egraph () in
  let bogus = { Egraph.Solution.choice = Array.make (Egraph.num_classes g) None } in
  let r = Extractor.make ~method_name:"x" ~time_s:0.0 g (Some bogus) in
  Alcotest.(check bool) "invalid dropped" true (r.Extractor.solution = None);
  Test_util.check_close ~msg:"cost infinite" infinity r.Extractor.cost

let () =
  Alcotest.run "extraction"
    [
      ( "greedy",
        [
          Alcotest.test_case "fig1 = 27" `Quick test_greedy_fig1;
          Alcotest.test_case "fig1 tree cost" `Quick test_greedy_minimises_tree_cost_fig1;
          greedy_always_valid;
          greedy_class_costs_are_fixpoint;
          greedy_matches_brute_force_on_trees;
        ] );
      ( "greedy_dag",
        [
          greedy_dag_never_worse_than_greedy;
          Alcotest.test_case "beats greedy on shared subexpr" `Quick
            test_greedy_dag_beats_greedy_on_sharing;
          Alcotest.test_case "cross-class sharing still defeats it" `Quick
            test_greedy_dag_limitation_cross_class;
          greedy_dag_always_valid;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "encoding shape" `Quick test_ilp_encoding_shape;
          Alcotest.test_case "fig1 optimal" `Quick test_ilp_fig1_optimal;
          ilp_matches_brute_force;
          ilp_matches_brute_force_cyclic;
          Alcotest.test_case "warm start round trip" `Quick test_ilp_warm_start_round_trip;
          Alcotest.test_case "cost bound row" `Quick test_ilp_cost_bound_row;
          Alcotest.test_case "gap note finite under node limit" `Quick test_ilp_gap_note_finite;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "fig1 proved" `Quick test_hybrid_fig1_proves_optimum;
          hybrid_matches_brute_force;
          hybrid_valid_on_cyclic;
          Alcotest.test_case "verify recovers from bad marginals" `Quick
            test_hybrid_verify_recovers_from_bad_marginals;
          Alcotest.test_case "invalid incumbent rejected" `Quick
            test_hybrid_rejects_invalid_incumbent;
        ] );
      ( "genetic",
        [
          Alcotest.test_case "fig1" `Quick test_genetic_fig1;
          genetic_always_valid;
          Alcotest.test_case "nan quarantine" `Quick test_genetic_nan_quarantine;
          genetic_no_worse_than_random_seeding;
        ] );
      ( "random_walk",
        [
          random_walk_valid;
          random_walk_valid_cyclic;
          Alcotest.test_case "diversity" `Quick test_random_walk_diversity;
          Alcotest.test_case "dense dataset shape" `Quick test_dense_dataset_shape;
        ] );
      ( "acyclic_prune",
        [
          Alcotest.test_case "no-op on DAGs" `Quick test_prune_noop_on_dag;
          Alcotest.test_case "removes cycle nodes" `Quick test_prune_removes_cycle_nodes;
          Alcotest.test_case "can lose the optimum" `Quick test_prune_can_lose_optimum;
          prune_solutions_valid_on_original;
          prune_never_beats_full_ilp;
        ] );
      ( "annealing",
        [
          Alcotest.test_case "fig1" `Quick test_annealing_fig1;
          annealing_never_worse_than_greedy;
          annealing_valid_on_cyclic;
          Alcotest.test_case "non-linear model" `Quick test_annealing_nonlinear_model;
        ] );
      ( "result",
        [ Alcotest.test_case "invalid solutions rejected" `Quick test_extractor_make_rejects_invalid ] );
    ]
