(* Tests for lib/analysis: the diagnostic type, the e-graph lint (frozen
   and lenient text paths), the shape abstract interpreter over Ad.Ir,
   and the gradient-flow checks. *)

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let has_code code ds = Diagnostic.by_code code ds <> []

(* ------------------------------------------------------- diagnostics *)

let test_diagnostic_render () =
  let e = Diagnostic.error ~code:"EG001" (Diagnostic.Enode 7) "child e-class %d is bad" 42 in
  Alcotest.(check string) "render"
    "error EG001 [node 7]: child e-class 42 is bad" (Diagnostic.render e);
  let w = Diagnostic.warning ~code:"EG006" (Diagnostic.Eclass 3) "meh" in
  let i = Diagnostic.info ~code:"EG009" Diagnostic.Graph "fyi" in
  (* sort: errors before warnings before infos, deterministically *)
  let sorted = Diagnostic.sort [ i; e; w ] in
  Alcotest.(check (list string)) "sorted severities"
    [ "error"; "warning"; "info" ]
    (List.map (fun d -> Diagnostic.severity_name d.Diagnostic.severity) sorted)

let test_diagnostic_gate () =
  let e = Diagnostic.error ~code:"X" Diagnostic.Graph "e" in
  let w = Diagnostic.warning ~code:"X" Diagnostic.Graph "w" in
  let i = Diagnostic.info ~code:"X" Diagnostic.Graph "i" in
  Alcotest.(check bool) "empty ok" true (Diagnostic.ok []);
  Alcotest.(check bool) "error fails" false (Diagnostic.ok [ i; e ]);
  Alcotest.(check bool) "warning passes by default" true (Diagnostic.ok [ w; i ]);
  Alcotest.(check bool) "warning fails strict" false (Diagnostic.ok ~strict:true [ w; i ]);
  Alcotest.(check bool) "infos never fail" true (Diagnostic.ok ~strict:true [ i; i ]);
  Alcotest.(check int) "counts" 1 (Diagnostic.errors [ i; e; w ]);
  Alcotest.(check bool) "max severity" true
    (Diagnostic.max_severity [ i; w ] = Some Diagnostic.Warning)

(* ------------------------------------------------- e-graph lint: qcheck *)

(* ground-truth agreement on random builder graphs: a well-formed
   acyclic e-graph lints with no errors and no warnings (info-level
   findings like duplicate e-nodes are allowed) *)
let lint_clean_on_acyclic =
  qtest ~count:150 "acyclic random graphs lint clean"
    (Test_util.arb_egraph ~max_classes:8 ())
    (fun g ->
      let ds = Egraph_lint.check g in
      Diagnostic.errors ds = 0 && Diagnostic.warnings ds = 0)

(* the cycle diagnostic fires exactly when Egraph.is_cyclic says so *)
let lint_cycle_iff_cyclic =
  qtest ~count:150 "EG007 iff is_cyclic"
    (Test_util.arb_egraph ~max_classes:8 ~cycle_prob:0.3 ())
    (fun g -> has_code "EG007" (Egraph_lint.check g) = Egraph.is_cyclic g)

(* pruning removes every cycle-participating e-node, so the pruned graph
   must carry no cycle or derivability findings at all *)
let lint_pruned_has_no_cycle_findings =
  qtest ~count:100 "Acyclic_prune output has no EG007/EG008"
    (Test_util.arb_egraph ~max_classes:8 ~cycle_prob:0.3 ())
    (fun g ->
      match (Acyclic_prune.prune g).Acyclic_prune.egraph with
      | None -> true (* pruning destroyed the root: nothing left to lint *)
      | Some g' ->
          let ds = Egraph_lint.check g' in
          (not (has_code "EG007" ds)) && (not (has_code "EG008" ds)) && Diagnostic.errors ds = 0)

(* --------------------------------------------- e-graph lint: sources *)

let test_lint_dangling_child () =
  let ds, g = Egraph_lint.check_source "root 0\nnode 0 1.0 f 1\n" in
  Alcotest.(check bool) "no graph" true (g = None);
  Alcotest.(check bool) "EG001 reported" true (has_code "EG001" ds);
  Alcotest.(check bool) "gate fails" false (Diagnostic.ok ds);
  (* anchored at the first referencing line *)
  Alcotest.(check bool) "line site" true
    (List.exists (fun d -> d.Diagnostic.site = Diagnostic.Line 2) (Diagnostic.by_code "EG001" ds))

let test_lint_root_defects () =
  let ds, g = Egraph_lint.check_source "node 0 1.0 leaf\n" in
  Alcotest.(check bool) "no graph without a root" true (g = None);
  Alcotest.(check bool) "missing root is EG003" true (has_code "EG003" ds);
  let ds2, _ = Egraph_lint.check_source "root 0\nroot 1\nnode 0 1.0 leaf\nnode 1 1.0 leaf\n" in
  Alcotest.(check bool) "duplicate root is EG003" true (has_code "EG003" ds2)

let test_lint_garbage () =
  let ds, g = Egraph_lint.check_source "root 0\nfrobnicate 3\nnode 0 xyz leaf\n" in
  Alcotest.(check bool) "no graph" true (g = None);
  Alcotest.(check int) "one EG010 per defect" 2 (List.length (Diagnostic.by_code "EG010" ds))

let test_lint_costs () =
  (* structurally fine, so the source freezes and the frozen checks run *)
  let ds, g = Egraph_lint.check_source "root 0\nnode 0 nan f 1\nnode 1 -2.5 leaf\n" in
  Alcotest.(check bool) "graph built" true (g <> None);
  Alcotest.(check bool) "nan cost is EG005 error" true (has_code "EG005" ds);
  Alcotest.(check bool) "negative cost is EG006 warning" true (has_code "EG006" ds);
  Alcotest.(check bool) "lenient gate passes warnings" false (Diagnostic.ok ds);
  let warn_only = List.filter (fun d -> d.Diagnostic.code = "EG006") ds in
  Alcotest.(check bool) "EG006 alone passes default, fails strict" true
    (Diagnostic.ok warn_only && not (Diagnostic.ok ~strict:true warn_only))

let test_lint_duplicates () =
  let src = "root 0\nnode 0 1.0 f 1\nnode 1 2.0 leaf\nnode 1 2.0 leaf\n" in
  let ds, g = Egraph_lint.check_source src in
  Alcotest.(check bool) "graph built" true (g <> None);
  Alcotest.(check bool) "duplicate members are EG009" true (has_code "EG009" ds);
  Alcotest.(check bool) "info-only report passes strict" true (Diagnostic.ok ~strict:true ds)

let test_lint_all_cyclic_root () =
  (* two classes depending on each other: every e-node lies on a cycle,
     so the root is not acyclically derivable — a fatal finding *)
  let ds, g = Egraph_lint.check_source "root 0\nnode 0 1.0 f 1\nnode 1 1.0 g 0\n" in
  Alcotest.(check bool) "graph built" true (g <> None);
  Alcotest.(check bool) "cycles noted" true (has_code "EG007" ds);
  let eg8 = Diagnostic.by_code "EG008" ds in
  Alcotest.(check bool) "root EG008 is an error" true
    (List.exists
       (fun d -> d.Diagnostic.severity = Diagnostic.Error && d.Diagnostic.site = Diagnostic.Eclass 0)
       eg8);
  Alcotest.(check bool) "gate fails even without strict" false (Diagnostic.ok ds)

let test_lint_cyclic_but_derivable () =
  (* a cycle off the spine: root -> 1, class 1 has an acyclic member and
     a cyclic one. Legal input — EG007 info only, gate passes. *)
  let src = "root 0\nnode 0 1.0 f 1\nnode 1 1.0 leaf\nnode 1 1.0 g 0\n" in
  let ds, g = Egraph_lint.check_source src in
  Alcotest.(check bool) "graph built" true (g <> None);
  Alcotest.(check bool) "cyclic" true (has_code "EG007" ds);
  Alcotest.(check int) "no errors" 0 (Diagnostic.errors ds);
  Alcotest.(check bool) "strict gate passes" true (Diagnostic.ok ~strict:true ds)

(* ------------------------------------------------------- shape check *)

let sh b w = { Ad.Ir.batch = b; width = w }

let ir_node ?(context = "(toplevel)") ?(meta = Ad.Ir.M_none) op args shape =
  { Ad.Ir.op; args; shape; context; meta }

let test_shape_mismatch_reported () =
  let ir =
    [|
      ir_node "param" [||] (sh 2 4);
      ir_node "param" [||] (sh 2 3);
      ir_node ~context:"smoothe.forward" "mul" [| 0; 1 |] (sh 2 4);
    |]
  in
  let ds = Shape_check.check ir in
  let sc1 = Diagnostic.by_code "SC001" ds in
  Alcotest.(check int) "one mismatch" 1 (List.length sc1);
  let d = List.hd sc1 in
  Alcotest.(check bool) "anchored to the op" true (d.Diagnostic.site = Diagnostic.Tape_node 2);
  Alcotest.(check bool) "names the op and shapes" true
    (contains d.Diagnostic.message "`mul` at node 2"
    && contains d.Diagnostic.message "(2,4) vs (2,3)");
  Alcotest.(check bool) "carries provenance" true
    (contains d.Diagnostic.message "built in smoothe.forward")

let test_shape_bad_operand_id () =
  let ir = [| ir_node "sum_all" [| 3 |] (sh 1 1) |] in
  Alcotest.(check bool) "forward reference is SC008" true
    (has_code "SC008" (Shape_check.check ir))

let test_shape_gather_and_dot () =
  let ir =
    [|
      ir_node "param" [||] (sh 2 4);
      ir_node "gather" [| 0 |]
        ~meta:(Ad.Ir.M_gather { count = 2; index_min = 0; index_max = 5 })
        (sh 2 2);
      ir_node "dot_const" [| 0 |] ~meta:(Ad.Ir.M_width 3) (sh 2 1);
    |]
  in
  let ds = Shape_check.check ir in
  Alcotest.(check bool) "gather out of range is SC002" true (has_code "SC002" ds);
  Alcotest.(check bool) "coefficient count is SC004" true (has_code "SC004" ds)

let test_shape_recorded_vs_inferred () =
  (* the op is well-formed but the recorded output shape disagrees with
     what the abstract interpreter derives: a recording defect, SC007 *)
  let ir = [| ir_node "param" [||] (sh 2 4); ir_node "sum_width" [| 0 |] (sh 2 4) |] in
  let ds = Shape_check.check ir in
  Alcotest.(check bool) "SC007 warning" true (has_code "SC007" ds);
  Alcotest.(check int) "no errors" 0 (Diagnostic.errors ds)

let forward_ir g =
  let config =
    { Smoothe_config.default with Smoothe_config.batch = 2; prop_iters = Some 2 }
  in
  let compiled = Relaxation.compile config g in
  let theta = Tensor.create ~batch:2 ~width:(Egraph.num_nodes g) in
  let fwd = Relaxation.forward compiled ~config ~model:(Cost_model.of_egraph g) ~theta in
  (Ad.ir fwd.Relaxation.tape, Ad.node_id fwd.Relaxation.loss)

(* every real forward tape must satisfy its own shape abstraction *)
let shape_check_real_tapes =
  qtest ~count:40 "real forward tapes shape-check clean"
    (Test_util.arb_egraph ~max_classes:6 ~cycle_prob:0.2 ())
    (fun g ->
      let ir, _ = forward_ir g in
      let ds = Shape_check.check ir in
      Diagnostic.errors ds = 0 && Diagnostic.warnings ds = 0)

(* ------------------------------------------------------ gradient flow *)

let test_grad_flow_detached_param () =
  let tp = Ad.tape () in
  let theta = Ad.param tp (Tensor.full ~batch:1 ~width:4 0.5) in
  let detached = Ad.param tp (Tensor.full ~batch:1 ~width:4 1.0) in
  let loss = Ad.sum_all (Ad.mul theta theta) in
  let ds = Grad_flow.check ~root:(Ad.node_id loss) (Ad.ir tp) in
  let gf1 = Diagnostic.by_code "GF001" ds in
  Alcotest.(check int) "one detached parameter" 1 (List.length gf1);
  let d = List.hd gf1 in
  Alcotest.(check bool) "anchored at the detached leaf" true
    (d.Diagnostic.site = Diagnostic.Tape_node (Ad.node_id detached));
  Alcotest.(check bool) "explains the failure mode" true
    (contains d.Diagnostic.message "detached");
  Alcotest.(check bool) "gate fails" false (Diagnostic.ok ds)

let test_grad_flow_const_only_loss () =
  let tp = Ad.tape () in
  let c = Ad.const tp (Tensor.full ~batch:1 ~width:4 2.0) in
  let loss = Ad.sum_all c in
  let ds = Grad_flow.check ~root:(Ad.node_id loss) (Ad.ir tp) in
  Alcotest.(check bool) "GF002: loss sees no parameter" true (has_code "GF002" ds)

let test_grad_flow_domain_boundary () =
  (* log_safe of an unconstrained parameter: the interval admits <= 0 *)
  let tp = Ad.tape () in
  let theta = Ad.param tp (Tensor.full ~batch:1 ~width:4 0.5) in
  let loss = Ad.sum_all (Ad.log_safe theta) in
  let ds = Grad_flow.check ~root:(Ad.node_id loss) (Ad.ir tp) in
  Alcotest.(check bool) "GF004 fires" true (has_code "GF004" ds);
  (* relu clamps the interval to [0, inf) but 0 is still in range *)
  let tp2 = Ad.tape () in
  let x = Ad.param tp2 (Tensor.full ~batch:1 ~width:4 0.5) in
  let loss2 = Ad.sum_all (Ad.log_safe (Ad.add_scalar 1.0 (Ad.relu x))) in
  let ds2 = Grad_flow.check ~root:(Ad.node_id loss2) (Ad.ir tp2) in
  Alcotest.(check bool) "shifted relu is provably positive" false (has_code "GF004" ds2)

(* real tapes: θ always reaches the loss, nothing is detached *)
let grad_flow_real_tapes =
  qtest ~count:40 "real forward tapes grad-flow clean"
    (Test_util.arb_egraph ~max_classes:6 ~cycle_prob:0.2 ())
    (fun g ->
      let ir, loss = forward_ir g in
      let ds = Grad_flow.check ~root:loss ir in
      Diagnostic.errors ds = 0 && Diagnostic.warnings ds = 0)

let test_forward_has_provenance () =
  let g = (Registry.find_instance "mcm_8").Registry.build () in
  let ir, _ = forward_ir g in
  Alcotest.(check bool) "tape records smoothe.forward context" true
    (Array.exists (fun nd -> nd.Ad.Ir.context = "smoothe.forward") ir)

(* ------------------------------------------------------------ suite *)

let () =
  Alcotest.run "analysis"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "render and sort" `Quick test_diagnostic_render;
          Alcotest.test_case "gate semantics" `Quick test_diagnostic_gate;
        ] );
      ( "egraph-lint",
        [
          lint_clean_on_acyclic;
          lint_cycle_iff_cyclic;
          lint_pruned_has_no_cycle_findings;
          Alcotest.test_case "dangling child" `Quick test_lint_dangling_child;
          Alcotest.test_case "root defects" `Quick test_lint_root_defects;
          Alcotest.test_case "garbage input" `Quick test_lint_garbage;
          Alcotest.test_case "cost defects" `Quick test_lint_costs;
          Alcotest.test_case "duplicate members" `Quick test_lint_duplicates;
          Alcotest.test_case "all-cyclic root is fatal" `Quick test_lint_all_cyclic_root;
          Alcotest.test_case "derivable cyclic graph passes" `Quick test_lint_cyclic_but_derivable;
        ] );
      ( "shape-check",
        [
          Alcotest.test_case "mismatched mul with provenance" `Quick test_shape_mismatch_reported;
          Alcotest.test_case "bad operand id" `Quick test_shape_bad_operand_id;
          Alcotest.test_case "gather and dot_const metadata" `Quick test_shape_gather_and_dot;
          Alcotest.test_case "recorded vs inferred" `Quick test_shape_recorded_vs_inferred;
          shape_check_real_tapes;
        ] );
      ( "grad-flow",
        [
          Alcotest.test_case "detached parameter" `Quick test_grad_flow_detached_param;
          Alcotest.test_case "const-only loss" `Quick test_grad_flow_const_only_loss;
          Alcotest.test_case "domain boundary intervals" `Quick test_grad_flow_domain_boundary;
          grad_flow_real_tapes;
          Alcotest.test_case "forward provenance label" `Quick test_forward_has_provenance;
        ] );
    ]
