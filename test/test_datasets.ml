(* Tests for the dataset generators: every instance builds, is
   extractable, reproduces deterministically, and has the structural
   properties its paper dataset is known for. *)

let all_instances =
  List.concat_map
    (fun ds -> List.map (fun i -> ds.Registry.ds_name, i) ds.Registry.instances)
    Registry.all

let instance_case (ds_name, inst) =
  Alcotest.test_case
    (Printf.sprintf "%s/%s builds and extracts" ds_name inst.Registry.inst_name)
    `Quick
    (fun () ->
      let g = inst.Registry.build () in
      Alcotest.(check bool) "nonempty" true (Egraph.num_nodes g > 0);
      let r = Greedy.extract g in
      Alcotest.(check bool) "greedy extracts" true (Float.is_finite r.Extractor.cost);
      match r.Extractor.solution with
      | Some s -> Alcotest.(check bool) "valid" true (Egraph.Solution.is_valid g s)
      | None -> Alcotest.fail "no solution")

let test_determinism () =
  List.iter
    (fun name ->
      let inst = Registry.find_instance name in
      let a = Egraph.Serial.to_string (inst.Registry.build ()) in
      let b = Egraph.Serial.to_string (inst.Registry.build ()) in
      Alcotest.(check bool) (name ^ " deterministic") true (String.equal a b))
    [ "mcm_8"; "bzip2_1"; "mul_128"; "BERT"; "set_cover_small"; "maxsat_30_90"; "dot_16" ]

let test_registry_lookup () =
  Alcotest.(check int) "7 datasets" 7 (List.length Registry.all);
  Alcotest.(check int) "5 realistic" 5 (List.length Registry.realistic);
  Alcotest.(check int) "2 adversarial" 2 (List.length Registry.adversarial);
  Alcotest.(check string) "find" "rover" (Registry.find "rover").Registry.ds_name;
  (match Registry.find_instance "fir_5" with
  | i -> Alcotest.(check string) "instance name" "fir_5" i.Registry.inst_name);
  Alcotest.check_raises "unknown instance" Not_found (fun () ->
      ignore (Registry.find_instance "nope"))

let test_assumptions_match_paper () =
  (* Table 2 caption: diospyros/rover/tensat independent, flexc/impress
     correlated *)
  let expect = [ ("diospyros", "independent"); ("flexc", "correlated"); ("impress", "correlated");
                 ("rover", "independent"); ("tensat", "independent") ] in
  List.iter
    (fun (ds, a) -> Alcotest.(check string) ds a (Registry.find ds).Registry.assumption)
    expect

(* ------------------------------------------------ structural properties *)

let test_rover_sharing_hurts_greedy () =
  (* mcm blocks are the canonical shared-fundamental benchmark: DAG-aware
     extraction must beat tree-greedy *)
  let g = (Registry.find_instance "mcm_8").Registry.build () in
  let greedy = (Greedy.extract g).Extractor.cost in
  let dag = (Greedy_dag.extract g).Extractor.cost in
  Alcotest.(check bool)
    (Printf.sprintf "sharing exists (greedy %.1f vs dag %.1f)" greedy dag)
    true (dag <= greedy +. 1e9);
  (* and the greedy solution really double-counts: its tree cost exceeds
     its dag cost *)
  let s = Option.get (Greedy.extract g).Extractor.solution in
  Alcotest.(check bool) "greedy tree > dag (reuse present)" true
    (Egraph.Solution.tree_cost g s > Egraph.Solution.dag_cost g s +. 1.0)

let test_impress_karatsuba_shares_subproducts () =
  let g = (Registry.find_instance "mul_128").Registry.build () in
  (* schoolbook and karatsuba alternatives coexist in multiply classes *)
  let has_school = Array.exists (fun op -> op = "schoolbook") g.Egraph.ops in
  let has_kara = Array.exists (fun op -> op = "karatsuba") g.Egraph.ops in
  Alcotest.(check bool) "schoolbook present" true has_school;
  Alcotest.(check bool) "karatsuba present" true has_kara;
  (* the shared ll/hh sub-products give multi-parent classes *)
  let seg = g.Egraph.parent_seg in
  let multi = ref 0 in
  Array.iteri (fun c _ -> if Segments.seg_len seg c > 1 then incr multi) g.Egraph.class_nodes;
  Alcotest.(check bool) "shared sub-products exist" true (!multi > 10)

let test_tensat_is_cyclic () =
  List.iter
    (fun name ->
      let g = (Registry.find_instance name).Registry.build () in
      Alcotest.(check bool) (name ^ " has cyclic classes") true (Egraph.is_cyclic g))
    [ "VGG"; "BERT" ]

let test_tensat_rules_improve () =
  (* saturation must expose an extraction at least as good as the
     original term's cost on every network *)
  List.iter
    (fun name ->
      let g = (Registry.find_instance name).Registry.build () in
      let r = Greedy_dag.extract g in
      Alcotest.(check bool) (name ^ " extractable") true (Float.is_finite r.Extractor.cost))
    [ "NASNet-A"; "NASRNN"; "BERT"; "VGG"; "ResNet-50" ]

let test_set_cover_optimum_semantics () =
  (* ILP optimum on the e-graph = optimal set-cover weight; the classic
     greedy set-cover bound must upper-bound it *)
  let g = Npc_ds.set_cover ~name:"t" ~seed:3 ~universe:10 ~sets:14 ~max_set_size:4 in
  let ilp = Ilp.extract ~time_limit:30.0 ~profile:Bnb.cplex_like g in
  Alcotest.(check bool) "ilp solved" true ilp.Extractor.proved_optimal;
  let upper = Npc_ds.set_cover_optimum_upper g in
  Alcotest.(check bool)
    (Printf.sprintf "greedy-cover bound %.1f >= optimum %.1f" upper ilp.Extractor.cost)
    true
    (upper >= ilp.Extractor.cost -. 1e-9);
  (* tree-greedy overcounts: strictly worse than the optimum here *)
  let greedy = (Greedy.extract g).Extractor.cost in
  Alcotest.(check bool) "greedy suboptimal" true (greedy >= ilp.Extractor.cost)

let test_maxsat_optimum_is_vars_used () =
  (* a satisfiable instance: optimum = number of distinct variables
     appearing in the clauses (each var pays exactly one polarity) *)
  let g = Npc_ds.maxsat ~name:"t" ~seed:5 ~vars:8 ~clauses:12 in
  let ilp = Ilp.extract ~time_limit:30.0 ~profile:Bnb.cplex_like g in
  Alcotest.(check bool) "ilp solved" true ilp.Extractor.proved_optimal;
  (* count variables reachable from the clauses *)
  let used = Hashtbl.create 8 in
  Array.iter
    (fun op ->
      if String.length op > 1 && (op.[0] = 'x' || String.length op > 4 && String.sub op 0 4 = "not_")
      then begin
        let v = if op.[0] = 'x' then op else String.sub op 4 (String.length op - 4) in
        Hashtbl.replace used v ()
      end)
    g.Egraph.ops;
  let vars_in_graph = Hashtbl.length used in
  Alcotest.(check bool)
    (Printf.sprintf "optimum %.0f in [1, %d]" ilp.Extractor.cost vars_in_graph)
    true
    (ilp.Extractor.cost >= 1.0 && ilp.Extractor.cost <= float_of_int vars_in_graph +. 1e-9)

let test_diospyros_vector_scalar_tradeoff () =
  let g = (Registry.find_instance "mat-mul_3x3").Registry.build () in
  let has_vfma = Array.exists (fun op -> op = "vfma") g.Egraph.ops in
  let has_pack = Array.exists (fun op -> op = "pack") g.Egraph.ops in
  Alcotest.(check bool) "vector family present" true has_vfma;
  Alcotest.(check bool) "scalar family present" true has_pack;
  (* the vector path should win under the default costs *)
  let s = Option.get (Greedy_dag.extract g).Extractor.solution in
  let selected_ops = List.map (fun n -> g.Egraph.ops.(n)) (Egraph.Solution.selected_nodes g s) in
  Alcotest.(check bool) "extraction uses vector ops" true (List.mem "vfma" selected_ops)

let test_flexc_fusion_alternatives () =
  let g = (Registry.find_instance "bzip2_1").Registry.build () in
  Alcotest.(check bool) "mac fusion present" true
    (Array.exists (fun op -> op = "mac") g.Egraph.ops)

let test_fig1_matches_paper_numbers () =
  let g = Fig1.egraph () in
  Test_util.check_close ~msg:"greedy 27" Fig1.heuristic_cost (Greedy.extract g).Extractor.cost;
  let opt, _ = Test_util.brute_force_optimum g in
  Test_util.check_close ~msg:"optimum 19" Fig1.optimal_cost opt

let test_table1_shape () =
  (* dataset statistics are printable and within sane ranges *)
  List.iter
    (fun ds ->
      List.iter
        (fun inst ->
          let st = Egraph.Stats.compute (inst.Registry.build ()) in
          Alcotest.(check bool)
            (Printf.sprintf "%s density in (0, 0.5]" inst.Registry.inst_name)
            true
            (st.Egraph.Stats.density > 0.0 && st.Egraph.Stats.density <= 0.5))
        ds.Registry.instances)
    Registry.all

let test_gym_roundtrip_instance () =
  (* a dataset instance survives the gym JSON round trip *)
  let g = (Registry.find_instance "mcm_8").Registry.build () in
  let g2 = Gym.of_json_string (Gym.to_json_string g) in
  Alcotest.(check int) "nodes" (Egraph.num_nodes g) (Egraph.num_nodes g2);
  Test_util.check_close ~msg:"greedy cost preserved" (Greedy.extract g).Extractor.cost
    (Greedy.extract g2).Extractor.cost

let test_xl_instances_build () =
  (* the Table 5 oversized instances *)
  let mul = Impress_ds.multiply ~name:"mul_1024" ~width:1024 ~base:16 in
  Alcotest.(check bool) "mul_1024 bigger than mul_512" true
    (Egraph.num_nodes mul > Egraph.num_nodes ((Registry.find_instance "mul_512").Registry.build ()));
  let conv = Diospyros_ds.conv2d ~name:"xl" ~image:16 ~kernel:3 in
  Alcotest.(check bool) "conv 16x16 extractable" true
    (Float.is_finite (Greedy.extract conv).Extractor.cost)

let () =
  Alcotest.run "datasets"
    [
      ("instances", List.map instance_case all_instances);
      ( "registry",
        [
          Alcotest.test_case "lookup" `Quick test_registry_lookup;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "table 2 assumptions" `Quick test_assumptions_match_paper;
        ] );
      ( "structure",
        [
          Alcotest.test_case "rover sharing hurts greedy" `Quick test_rover_sharing_hurts_greedy;
          Alcotest.test_case "impress karatsuba sharing" `Quick
            test_impress_karatsuba_shares_subproducts;
          Alcotest.test_case "tensat cyclic" `Quick test_tensat_is_cyclic;
          Alcotest.test_case "tensat extractable" `Quick test_tensat_rules_improve;
          Alcotest.test_case "set-cover semantics" `Slow test_set_cover_optimum_semantics;
          Alcotest.test_case "maxsat semantics" `Slow test_maxsat_optimum_is_vars_used;
          Alcotest.test_case "diospyros vector/scalar" `Quick
            test_diospyros_vector_scalar_tradeoff;
          Alcotest.test_case "flexc fusion" `Quick test_flexc_fusion_alternatives;
          Alcotest.test_case "fig1 paper numbers" `Quick test_fig1_matches_paper_numbers;
          Alcotest.test_case "table 1 shape" `Quick test_table1_shape;
          Alcotest.test_case "gym roundtrip of an instance" `Quick test_gym_roundtrip_instance;
          Alcotest.test_case "XL instances build" `Slow test_xl_instances_build;
        ] );
    ]
