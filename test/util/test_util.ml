(* Shared helpers for the test-suite: a brute-force extraction oracle for
   tiny e-graphs and reproducible random e-graph generators. *)

(* Enumerate every per-class choice assignment, validate, and return the
   minimum DAG cost and witnessing solution. Exponential — only for
   e-graphs whose choice-space product is small. *)
let brute_force_optimum ?(limit = 2_000_000) g =
  let m = Egraph.num_classes g in
  let space =
    Array.fold_left
      (fun acc members -> acc * Array.length members)
      1 g.Egraph.class_nodes
  in
  if space > limit || space <= 0 then
    invalid_arg (Printf.sprintf "brute_force_optimum: %d assignments is too many" space);
  let pick = Array.map (fun members -> members.(0)) g.Egraph.class_nodes in
  let indices = Array.make m 0 in
  let best_cost = ref infinity in
  let best = ref None in
  let rec enumerate c =
    if c = m then begin
      let s = Egraph.Solution.of_node_choice g pick in
      let cost = Egraph.Solution.dag_cost g s in
      if cost < !best_cost then begin
        best_cost := cost;
        best := Some s
      end
    end
    else
      for i = 0 to Array.length g.Egraph.class_nodes.(c) - 1 do
        indices.(c) <- i;
        pick.(c) <- g.Egraph.class_nodes.(c).(i);
        enumerate (c + 1)
      done
  in
  enumerate 0;
  !best_cost, !best

(* Random e-graph: [classes] e-classes, each with 1..max_class_size
   nodes; children drawn from earlier classes (guaranteeing a DAG and
   derivability) except that with probability [cycle_prob] a node also
   points at a later (or its own) class, introducing cycles. Class 0 is
   the root. *)
let random_egraph ?(max_class_size = 3) ?(max_children = 2) ?(cycle_prob = 0.0) rng ~classes =
  let b = Egraph.Builder.create ~name:"random" () in
  let ids = Array.init classes (fun _ -> Egraph.Builder.add_class b) in
  (* Build bottom-up: class k may reference classes k+1.. (children are
     later indices so that index 0 can be the root). *)
  for c = classes - 1 downto 0 do
    let node_count = 1 + Rng.int rng max_class_size in
    for _ = 1 to node_count do
      let children = ref [] in
      if c < classes - 1 then begin
        let kid_count = Rng.int rng (max_children + 1) in
        for _ = 1 to kid_count do
          children := ids.(c + 1 + Rng.int rng (classes - c - 1)) :: !children
        done
      end;
      if Rng.uniform rng < cycle_prob then
        (* a backward (or self) reference: candidate cycle *)
        children := ids.(Rng.int rng (c + 1)) :: !children;
      ignore
        (Egraph.Builder.add_node b ~cls:ids.(c)
           ~op:(Printf.sprintf "op%d" (Rng.int rng 8))
           ~cost:(float_of_int (Rng.int rng 20))
           ~children:!children)
    done
  done;
  Egraph.Builder.freeze b ~root:ids.(0)

(* QCheck arbitrary wrapper: seeds drawn by qcheck, e-graph derived
   deterministically. *)
let arb_egraph ?(max_classes = 8) ?(cycle_prob = 0.0) () =
  QCheck2.Gen.map
    (fun (seed, classes) ->
      let rng = Rng.create seed in
      random_egraph ~cycle_prob rng ~classes)
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 max_classes))

let float_close ?(tol = 1e-6) a b =
  if Float.is_finite a && Float.is_finite b then
    Float.abs (a -. b) <= tol *. (1.0 +. Float.abs a +. Float.abs b)
  else a = b

let check_close ?tol ~msg a b =
  if not (float_close ?tol a b) then
    Alcotest.failf "%s: %.12g vs %.12g" msg a b

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0
