(* Tests for the observability layer: span nesting and balance, the
   Chrome / folded export formats, the metrics registry, skew-visible
   timestamps, and the bit-identity of instrumented extraction when the
   sink is disabled. *)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Every test leaves the global sink disabled and the stores empty,
   whatever happens inside. *)
let fresh f () =
  Obs.enable ();
  Trace.reset ();
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Trace.reset ();
      Metrics.reset ())
    f

let find_span name = List.find_opt (fun s -> s.Trace.name = name) (Trace.spans ())

let get_span name =
  match find_span name with
  | Some s -> s
  | None -> Alcotest.failf "span %S not recorded" name

(* --- spans ------------------------------------------------------------ *)

let test_span_nesting =
  fresh (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span "left" (fun () -> ());
          Trace.with_span "right" (fun () ->
              Trace.with_span "leaf" (fun () -> ())));
      Alcotest.(check int) "balanced" 0 (Trace.open_depth ());
      Alcotest.(check int) "four spans" 4 (List.length (Trace.spans ()));
      (* completion order: children close before their parents *)
      Alcotest.(check (list string))
        "completion order"
        [ "left"; "leaf"; "right"; "outer" ]
        (List.map (fun s -> s.Trace.name) (Trace.spans ()));
      Alcotest.(check int) "outer depth" 0 (get_span "outer").Trace.depth;
      Alcotest.(check int) "leaf depth" 2 (get_span "leaf").Trace.depth;
      Alcotest.(check string) "leaf path" "outer;right;leaf" (get_span "leaf").Trace.path;
      Alcotest.(check string) "left path" "outer;left" (get_span "left").Trace.path;
      let outer = get_span "outer" and leaf = get_span "leaf" in
      Alcotest.(check bool) "parent spans child" true (outer.Trace.dur >= leaf.Trace.dur);
      Alcotest.(check bool) "child starts after parent" true (leaf.Trace.ts >= outer.Trace.ts))

let test_span_exception_unwind =
  fresh (fun () ->
      (try Trace.with_span "outer" (fun () -> Trace.with_span "boom" (fun () -> failwith "x"))
       with Failure _ -> ());
      Alcotest.(check int) "stack unwound" 0 (Trace.open_depth ());
      (* both spans still recorded, with the pre-raise nesting *)
      Alcotest.(check string) "path kept" "outer;boom" (get_span "boom").Trace.path;
      Alcotest.(check int) "both recorded" 2 (List.length (Trace.spans ()));
      (* the store stays usable afterwards *)
      Trace.with_span "next" (fun () -> ());
      Alcotest.(check int) "next at depth 0" 0 (get_span "next").Trace.depth)

let test_disabled_is_noop () =
  Obs.disable ();
  Trace.reset ();
  Metrics.reset ();
  let r = Trace.with_span "ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passed through" 42 r;
  Trace.instant "ghost-instant";
  Metrics.incr "ghost.counter";
  Metrics.observe "ghost.hist" 1.0;
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()));
  Alcotest.(check (float 0.0)) "no counter" 0.0 (Metrics.counter_value "ghost.counter");
  Alcotest.(check int) "empty registry" 0 (List.length (Metrics.names ()))

let test_span_totals =
  fresh (fun () ->
      Trace.with_span "work" (fun () -> Trace.with_span "inner" (fun () -> ()));
      Trace.with_span "work" (fun () -> ());
      match Trace.span_totals () with
      | [ ("inner", 1, _); ("work", 2, _) ] -> ()
      | totals ->
          Alcotest.failf "unexpected totals: %s"
            (String.concat ", " (List.map (fun (n, c, _) -> Printf.sprintf "%s/%d" n c) totals)))

(* --- exports ---------------------------------------------------------- *)

let nasty = "we\"ird\\na;me\n\twith\x01ctrl"

let test_chrome_export =
  fresh (fun () ->
      Trace.with_span ~cat:"t" ~attrs:[ ("k", nasty) ] nasty (fun () ->
          Trace.instant ~cat:"health" "fault-injected");
      let j = Json.parse (Json.to_string (Trace.to_chrome ())) in
      let events = Json.get_list (Json.member "traceEvents" j) in
      Alcotest.(check int) "span + instant" 2 (List.length events);
      let by_ph ph =
        List.find (fun e -> Json.get_string (Json.member "ph" e) = ph) events
      in
      let x = by_ph "X" and i = by_ph "i" in
      Alcotest.(check string) "nasty name survives" nasty (Json.get_string (Json.member "name" x));
      Alcotest.(check string) "nasty attr survives" nasty
        (Json.get_string (Json.member "k" (Json.member "args" x)));
      Alcotest.(check string) "instant name" "fault-injected"
        (Json.get_string (Json.member "name" i));
      Alcotest.(check string) "instant scope" "g" (Json.get_string (Json.member "s" i));
      List.iter
        (fun e ->
          Alcotest.(check bool)
            "ts rebased to >= 0" true
            (Json.get_number (Json.member "ts" e) >= 0.0))
        events;
      Alcotest.(check bool)
        "dur in microseconds, finite" true
        (Float.is_finite (Json.get_number (Json.member "dur" x))))

let test_chrome_sorted_by_ts =
  fresh (fun () ->
      (* record in an order where the outer (earliest-start) span closes
         last; the export must re-sort by start time *)
      Trace.with_span "a" (fun () ->
          Trace.with_span "b" (fun () -> Trace.with_span "c" (fun () -> ())));
      let j = Json.parse (Json.to_string (Trace.to_chrome ())) in
      let ts =
        List.map
          (fun e -> Json.get_number (Json.member "ts" e))
          (Json.get_list (Json.member "traceEvents" j))
      in
      Alcotest.(check bool)
        "non-decreasing ts" true
        (List.for_all2 ( <= )
           (List.filteri (fun i _ -> i < List.length ts - 1) ts)
           (List.tl ts)))

let test_folded_export =
  fresh (fun () ->
      Trace.with_span "root" (fun () -> Trace.with_span "child" (fun () -> ()));
      let lines = String.split_on_char '\n' (String.trim (Trace.to_folded ())) in
      Alcotest.(check int) "one line per path" 2 (List.length lines);
      List.iter
        (fun line ->
          match String.rindex_opt line ' ' with
          | None -> Alcotest.failf "malformed folded line %S" line
          | Some i ->
              let n = String.sub line (i + 1) (String.length line - i - 1) in
              Alcotest.(check bool)
                "integer self-time" true
                (match int_of_string_opt n with Some v -> v >= 0 | None -> false))
        lines;
      Alcotest.(check bool)
        "nested path present" true
        (List.exists (fun l -> String.length l >= 10 && String.sub l 0 10 = "root;child") lines))

(* --- metrics ---------------------------------------------------------- *)

let test_metrics_registry =
  fresh (fun () ->
      Metrics.incr "c";
      Metrics.incr ~by:2.5 "c";
      Metrics.set_gauge "g" 1.0;
      Metrics.set_gauge "g" 7.0;
      Metrics.observe "h" 2.0;
      Metrics.observe "h" 4.0;
      Alcotest.(check (float 1e-9)) "counter accumulates" 3.5 (Metrics.counter_value "c");
      Alcotest.(check (float 1e-9)) "gauge keeps last" 7.0 (Metrics.gauge_value "g");
      (match Metrics.histogram_stats "h" with
      | Some { Metrics.count = 2; sum = 6.0; min_v = 2.0; max_v = 4.0; last = 4.0 } -> ()
      | Some h -> Alcotest.failf "wrong histogram: count=%d sum=%g" h.Metrics.count h.Metrics.sum
      | None -> Alcotest.fail "histogram missing");
      Alcotest.(check (list string)) "sorted names" [ "c"; "g"; "h" ] (Metrics.names ());
      (* a name is one kind forever *)
      Alcotest.check_raises "kind mismatch"
        (Invalid_argument "Metrics: \"c\" is a counter, not a gauge") (fun () ->
          Metrics.set_gauge "c" 0.0);
      (* the snapshot is valid JSON carrying the same numbers *)
      let j = Json.parse (Json.to_string (Metrics.snapshot ())) in
      Alcotest.(check string) "snapshot type" "counter"
        (Json.get_string (Json.member "type" (Json.member "c" j)));
      Alcotest.(check (float 1e-9)) "snapshot value" 3.5
        (Json.get_number (Json.member "value" (Json.member "c" j)));
      Alcotest.(check (float 1e-9)) "snapshot mean" 3.0
        (Json.get_number (Json.member "mean" (Json.member "h" j))))

(* Regression for the reset/dump race: increments from several domains
   hammering one counter must all land — under the old unlocked
   Hashtbl, concurrent [incr] lost updates (and could corrupt the
   table). Runs real domains even on a 1-core host: the scheduler
   still interleaves them at safepoints. *)
let test_metrics_concurrent_incr =
  fresh (fun () ->
      let domains = 4 and per_domain = 5_000 in
      let spawned =
        List.init domains (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to per_domain do
                  Metrics.incr "hammered";
                  if i mod 100 = d then ignore (Metrics.counter_value "hammered");
                  if i mod 1000 = 0 then ignore (Metrics.snapshot ())
                done))
      in
      List.iter Domain.join spawned;
      Alcotest.(check (float 1e-9)) "no lost increments"
        (float_of_int (domains * per_domain))
        (Metrics.counter_value "hammered"))

let test_metrics_scoped_isolation =
  fresh (fun () ->
      Metrics.incr ~by:10.0 "outside";
      let inner =
        Metrics.scoped (fun () ->
            (* the scope starts empty and absorbs everything recorded
               inside it, leaving the global registry untouched *)
            Alcotest.(check (list string)) "scope starts empty" [] (Metrics.names ());
            Metrics.incr ~by:3.0 "outside";
            Metrics.incr "inside";
            Metrics.snapshot ())
      in
      Alcotest.(check (float 1e-9)) "global unchanged" 10.0 (Metrics.counter_value "outside");
      Alcotest.(check bool) "scoped names invisible outside" true
        (not (List.mem "inside" (Metrics.names ())));
      Alcotest.(check (float 1e-9)) "scope saw its own increments" 3.0
        (Json.get_number (Json.member "value" (Json.member "outside" inner))))

let escaping_roundtrip =
  qtest ~count:500 "json string escaping round-trips any bytes"
    QCheck2.Gen.(string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 64))
    (fun s ->
      match Json.parse (Json.to_string (Json.String s)) with
      | Json.String s' -> s' = s
      | _ -> false)

(* --- timestamps under clock skew -------------------------------------- *)

let test_skew_visible_in_spans =
  fresh (fun () ->
      Fun.protect ~finally:(fun () -> Timer.set_skew 0.0) @@ fun () ->
      Timer.set_skew 0.0;
      Trace.with_span "before" (fun () -> ());
      Timer.set_skew 100.0;
      Trace.with_span "after" (fun () -> ());
      let before = get_span "before" and after = get_span "after" in
      Alcotest.(check bool)
        "skew shifts later spans" true
        (after.Trace.ts -. before.Trace.ts >= 99.0);
      (* the chrome export rebases onto the earliest event *)
      let j = Json.parse (Json.to_string (Trace.to_chrome ())) in
      let ts =
        List.map
          (fun e -> Json.get_number (Json.member "ts" e))
          (Json.get_list (Json.member "traceEvents" j))
      in
      Alcotest.(check bool) "first event at 0" true (List.hd ts < 1e6);
      Alcotest.(check bool)
        "gap preserved in microseconds" true
        (List.nth ts 1 -. List.hd ts >= 99.0 *. 1e6))

let test_skew_fault_plan =
  fresh (fun () ->
      Fault_plan.with_plan
        (Fault_plan.of_string "skew@30")
        (fun () ->
          Trace.with_span "before" (fun () -> ());
          ignore (Fault_plan.trigger_clock_skew ());
          Trace.with_span "after" (fun () -> ()));
      let before = get_span "before" and after = get_span "after" in
      Alcotest.(check bool)
        "injected skew shows in the trace" true
        (after.Trace.ts -. before.Trace.ts >= 29.0))

(* --- bit-identity of instrumented extraction -------------------------- *)

let test_disabled_sink_bit_identical () =
  Obs.disable ();
  Trace.reset ();
  Metrics.reset ();
  let g = (Registry.find_instance "mcm_8").Registry.build () in
  let config =
    { Smoothe_config.default with Smoothe_config.max_iters = 12; batch = 4; seed = 11 }
  in
  let plain = Smoothe_extract.extract ~config g in
  let observed = Obs.with_enabled (fun () -> Smoothe_extract.extract ~config g) in
  let cost (r : Smoothe_extract.run) = r.Smoothe_extract.result.Extractor.cost in
  Alcotest.(check bool) "same cost, bit for bit" true (cost plain = cost observed);
  Alcotest.(check int)
    "same iteration count" plain.Smoothe_extract.iterations observed.Smoothe_extract.iterations;
  Alcotest.(check (list (float 0.0)))
    "identical loss trajectory"
    (List.map (fun h -> h.Smoothe_extract.relaxed_loss) plain.Smoothe_extract.history)
    (List.map (fun h -> h.Smoothe_extract.relaxed_loss) observed.Smoothe_extract.history);
  let choices (r : Smoothe_extract.run) =
    match r.Smoothe_extract.result.Extractor.solution with
    | Some s -> Array.to_list s.Egraph.Solution.choice
    | None -> []
  in
  Alcotest.(check (list (option int))) "identical solution" (choices plain) (choices observed);
  (* the observed run recorded the nested per-phase spans... *)
  let paths = List.map (fun s -> s.Trace.path) (Trace.spans ()) in
  List.iter
    (fun p ->
      Alcotest.(check bool) (Printf.sprintf "recorded %s" p) true (List.mem p paths))
    [
      "smoothe.extract";
      "smoothe.extract;smoothe.iter";
      "smoothe.extract;smoothe.iter;smoothe.forward";
      "smoothe.extract;smoothe.iter;smoothe.backward";
      "smoothe.extract;smoothe.iter;smoothe.sample";
    ];
  (* ...and the iteration counter agrees with the run *)
  Alcotest.(check (float 0.0))
    "iteration counter matches"
    (float_of_int observed.Smoothe_extract.iterations)
    (Metrics.counter_value "smoothe.iterations");
  (* the disabled run left nothing behind *)
  Trace.reset ();
  Metrics.reset ()

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception unwind" `Quick test_span_exception_unwind;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "totals" `Quick test_span_totals;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json" `Quick test_chrome_export;
          Alcotest.test_case "chrome sorted" `Quick test_chrome_sorted_by_ts;
          Alcotest.test_case "folded stacks" `Quick test_folded_export;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "concurrent incr" `Quick test_metrics_concurrent_incr;
          Alcotest.test_case "scoped isolation" `Quick test_metrics_scoped_isolation;
          escaping_roundtrip;
        ] );
      ( "skew",
        [
          Alcotest.test_case "set_skew visible" `Quick test_skew_visible_in_spans;
          Alcotest.test_case "fault plan skew" `Quick test_skew_fault_plan;
        ] );
      ( "bit-identity",
        [ Alcotest.test_case "disabled sink" `Quick test_disabled_sink_bit_identical ] );
    ]
