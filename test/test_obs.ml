(* Tests for the observability layer: span nesting and balance, the
   Chrome / folded export formats, the metrics registry, skew-visible
   timestamps, and the bit-identity of instrumented extraction when the
   sink is disabled. *)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Every test leaves the global sink disabled and the stores empty,
   whatever happens inside. *)
let fresh f () =
  Obs.enable ();
  Trace.reset ();
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Trace.reset ();
      Metrics.reset ())
    f

let find_span name = List.find_opt (fun s -> s.Trace.name = name) (Trace.spans ())

let get_span name =
  match find_span name with
  | Some s -> s
  | None -> Alcotest.failf "span %S not recorded" name

(* --- spans ------------------------------------------------------------ *)

let test_span_nesting =
  fresh (fun () ->
      Trace.with_span "outer" (fun () ->
          Trace.with_span "left" (fun () -> ());
          Trace.with_span "right" (fun () ->
              Trace.with_span "leaf" (fun () -> ())));
      Alcotest.(check int) "balanced" 0 (Trace.open_depth ());
      Alcotest.(check int) "four spans" 4 (List.length (Trace.spans ()));
      (* completion order: children close before their parents *)
      Alcotest.(check (list string))
        "completion order"
        [ "left"; "leaf"; "right"; "outer" ]
        (List.map (fun s -> s.Trace.name) (Trace.spans ()));
      Alcotest.(check int) "outer depth" 0 (get_span "outer").Trace.depth;
      Alcotest.(check int) "leaf depth" 2 (get_span "leaf").Trace.depth;
      Alcotest.(check string) "leaf path" "outer;right;leaf" (get_span "leaf").Trace.path;
      Alcotest.(check string) "left path" "outer;left" (get_span "left").Trace.path;
      let outer = get_span "outer" and leaf = get_span "leaf" in
      Alcotest.(check bool) "parent spans child" true (outer.Trace.dur >= leaf.Trace.dur);
      Alcotest.(check bool) "child starts after parent" true (leaf.Trace.ts >= outer.Trace.ts))

let test_span_exception_unwind =
  fresh (fun () ->
      (try Trace.with_span "outer" (fun () -> Trace.with_span "boom" (fun () -> failwith "x"))
       with Failure _ -> ());
      Alcotest.(check int) "stack unwound" 0 (Trace.open_depth ());
      (* both spans still recorded, with the pre-raise nesting *)
      Alcotest.(check string) "path kept" "outer;boom" (get_span "boom").Trace.path;
      Alcotest.(check int) "both recorded" 2 (List.length (Trace.spans ()));
      (* the store stays usable afterwards *)
      Trace.with_span "next" (fun () -> ());
      Alcotest.(check int) "next at depth 0" 0 (get_span "next").Trace.depth)

let test_disabled_is_noop () =
  Obs.disable ();
  Trace.reset ();
  Metrics.reset ();
  let r = Trace.with_span "ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passed through" 42 r;
  Trace.instant "ghost-instant";
  Metrics.incr "ghost.counter";
  Metrics.observe "ghost.hist" 1.0;
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()));
  Alcotest.(check (float 0.0)) "no counter" 0.0 (Metrics.counter_value "ghost.counter");
  Alcotest.(check int) "empty registry" 0 (List.length (Metrics.names ()))

let test_span_totals =
  fresh (fun () ->
      Trace.with_span "work" (fun () -> Trace.with_span "inner" (fun () -> ()));
      Trace.with_span "work" (fun () -> ());
      match Trace.span_totals () with
      | [ ("inner", 1, _); ("work", 2, _) ] -> ()
      | totals ->
          Alcotest.failf "unexpected totals: %s"
            (String.concat ", " (List.map (fun (n, c, _) -> Printf.sprintf "%s/%d" n c) totals)))

(* --- exports ---------------------------------------------------------- *)

let nasty = "we\"ird\\na;me\n\twith\x01ctrl"

let test_chrome_export =
  fresh (fun () ->
      Trace.with_span ~cat:"t" ~attrs:[ ("k", nasty) ] nasty (fun () ->
          Trace.instant ~cat:"health" "fault-injected");
      let j = Json.parse (Json.to_string (Trace.to_chrome ())) in
      let events = Json.get_list (Json.member "traceEvents" j) in
      Alcotest.(check int) "span + instant" 2 (List.length events);
      let by_ph ph =
        List.find (fun e -> Json.get_string (Json.member "ph" e) = ph) events
      in
      let x = by_ph "X" and i = by_ph "i" in
      Alcotest.(check string) "nasty name survives" nasty (Json.get_string (Json.member "name" x));
      Alcotest.(check string) "nasty attr survives" nasty
        (Json.get_string (Json.member "k" (Json.member "args" x)));
      Alcotest.(check string) "instant name" "fault-injected"
        (Json.get_string (Json.member "name" i));
      Alcotest.(check string) "instant scope" "g" (Json.get_string (Json.member "s" i));
      List.iter
        (fun e ->
          Alcotest.(check bool)
            "ts rebased to >= 0" true
            (Json.get_number (Json.member "ts" e) >= 0.0))
        events;
      Alcotest.(check bool)
        "dur in microseconds, finite" true
        (Float.is_finite (Json.get_number (Json.member "dur" x))))

let test_chrome_sorted_by_ts =
  fresh (fun () ->
      (* record in an order where the outer (earliest-start) span closes
         last; the export must re-sort by start time *)
      Trace.with_span "a" (fun () ->
          Trace.with_span "b" (fun () -> Trace.with_span "c" (fun () -> ())));
      let j = Json.parse (Json.to_string (Trace.to_chrome ())) in
      let ts =
        List.map
          (fun e -> Json.get_number (Json.member "ts" e))
          (Json.get_list (Json.member "traceEvents" j))
      in
      Alcotest.(check bool)
        "non-decreasing ts" true
        (List.for_all2 ( <= )
           (List.filteri (fun i _ -> i < List.length ts - 1) ts)
           (List.tl ts)))

let test_folded_export =
  fresh (fun () ->
      Trace.with_span "root" (fun () -> Trace.with_span "child" (fun () -> ()));
      let lines = String.split_on_char '\n' (String.trim (Trace.to_folded ())) in
      Alcotest.(check int) "one line per path" 2 (List.length lines);
      List.iter
        (fun line ->
          match String.rindex_opt line ' ' with
          | None -> Alcotest.failf "malformed folded line %S" line
          | Some i ->
              let n = String.sub line (i + 1) (String.length line - i - 1) in
              Alcotest.(check bool)
                "integer self-time" true
                (match int_of_string_opt n with Some v -> v >= 0 | None -> false))
        lines;
      Alcotest.(check bool)
        "nested path present" true
        (List.exists (fun l -> String.length l >= 10 && String.sub l 0 10 = "root;child") lines))

(* --- metrics ---------------------------------------------------------- *)

let test_metrics_registry =
  fresh (fun () ->
      Metrics.incr "c";
      Metrics.incr ~by:2.5 "c";
      Metrics.set_gauge "g" 1.0;
      Metrics.set_gauge "g" 7.0;
      Metrics.observe "h" 2.0;
      Metrics.observe "h" 4.0;
      Alcotest.(check (float 1e-9)) "counter accumulates" 3.5 (Metrics.counter_value "c");
      Alcotest.(check (float 1e-9)) "gauge keeps last" 7.0 (Metrics.gauge_value "g");
      (match Metrics.histogram_stats "h" with
      | Some { Metrics.count = 2; sum = 6.0; min_v = 2.0; max_v = 4.0; last = 4.0; non_finite = 0; _ } -> ()
      | Some h -> Alcotest.failf "wrong histogram: count=%d sum=%g" h.Metrics.count h.Metrics.sum
      | None -> Alcotest.fail "histogram missing");
      Alcotest.(check (list string)) "sorted names" [ "c"; "g"; "h" ] (Metrics.names ());
      (* a name is one kind forever *)
      Alcotest.check_raises "kind mismatch"
        (Invalid_argument "Metrics: \"c\" is a counter, not a gauge") (fun () ->
          Metrics.set_gauge "c" 0.0);
      (* the snapshot is valid JSON carrying the same numbers *)
      let j = Json.parse (Json.to_string (Metrics.snapshot ())) in
      Alcotest.(check string) "snapshot type" "counter"
        (Json.get_string (Json.member "type" (Json.member "c" j)));
      Alcotest.(check (float 1e-9)) "snapshot value" 3.5
        (Json.get_number (Json.member "value" (Json.member "c" j)));
      Alcotest.(check (float 1e-9)) "snapshot mean" 3.0
        (Json.get_number (Json.member "mean" (Json.member "h" j))))

(* Regression for the reset/dump race: increments from several domains
   hammering one counter must all land — under the old unlocked
   Hashtbl, concurrent [incr] lost updates (and could corrupt the
   table). Runs real domains even on a 1-core host: the scheduler
   still interleaves them at safepoints. *)
let test_metrics_concurrent_incr =
  fresh (fun () ->
      let domains = 4 and per_domain = 5_000 in
      let spawned =
        List.init domains (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to per_domain do
                  Metrics.incr "hammered";
                  if i mod 100 = d then ignore (Metrics.counter_value "hammered");
                  if i mod 1000 = 0 then ignore (Metrics.snapshot ())
                done))
      in
      List.iter Domain.join spawned;
      Alcotest.(check (float 1e-9)) "no lost increments"
        (float_of_int (domains * per_domain))
        (Metrics.counter_value "hammered"))

let test_metrics_scoped_isolation =
  fresh (fun () ->
      Metrics.incr ~by:10.0 "outside";
      let inner =
        Metrics.scoped (fun () ->
            (* the scope starts empty and absorbs everything recorded
               inside it, leaving the global registry untouched *)
            Alcotest.(check (list string)) "scope starts empty" [] (Metrics.names ());
            Metrics.incr ~by:3.0 "outside";
            Metrics.incr "inside";
            Metrics.snapshot ())
      in
      Alcotest.(check (float 1e-9)) "global unchanged" 10.0 (Metrics.counter_value "outside");
      Alcotest.(check bool) "scoped names invisible outside" true
        (not (List.mem "inside" (Metrics.names ())));
      Alcotest.(check (float 1e-9)) "scope saw its own increments" 3.0
        (Json.get_number (Json.member "value" (Json.member "outside" inner))))

let escaping_roundtrip =
  qtest ~count:500 "json string escaping round-trips any bytes"
    QCheck2.Gen.(string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 64))
    (fun s ->
      match Json.parse (Json.to_string (Json.String s)) with
      | Json.String s' -> s' = s
      | _ -> false)

(* --- bucketed quantiles ------------------------------------------------ *)

(* Width of the bucket holding [v] — the documented error bound of the
   bucketed estimate. Bucket 0 spans (0, bound 0]. *)
let bucket_width_at v =
  let rec find i =
    if i >= Metrics.bucket_count - 1 || v <= Metrics.bucket_bound i then i else find (i + 1)
  in
  let b = find 0 in
  if b = 0 then Metrics.bucket_bound 0
  else Metrics.bucket_bound b -. Metrics.bucket_bound (b - 1)

(* The estimate must land within one bucket width of the exact rank
   statistic it approximates: both live in the same log-scale bucket,
   so |estimate - exact| <= width of exact's bucket. The generator is
   log-uniform across the bounded range, including sub-bound-0 values. *)
let quantile_error_bounded =
  qtest ~count:300 "bucketed quantile within one bucket width of exact"
    QCheck2.Gen.(
      pair
        (list_size (1 -- 80) (map Float.exp (float_range (-7.5) 12.5)))
        (float_range 0.0 100.0))
    (fun (xs, q) ->
      Obs.with_enabled (fun () ->
          Metrics.scoped (fun () ->
              List.iter (Metrics.observe "q") xs;
              let n = List.length xs in
              let sorted = List.sort Float.compare xs in
              let rank =
                Stdlib.max 1 (int_of_float (ceil (q /. 100.0 *. float_of_int n)))
              in
              let exact = List.nth sorted (rank - 1) in
              match Metrics.histogram_quantile "q" q with
              | None -> false
              | Some est ->
                  Float.abs (est -. exact) <= bucket_width_at exact +. 1e-12
                  (* and the estimate never escapes the observed envelope *)
                  && est >= List.hd sorted && est <= List.nth sorted (n - 1))))

let test_quantile_edge_cases =
  fresh (fun () ->
      Alcotest.(check (option (float 0.0))) "empty histogram" None
        (Metrics.histogram_quantile "absent" 50.0);
      Metrics.observe "one" 7.0;
      (* a single observation pins every quantile to it via the clamp *)
      Alcotest.(check (option (float 1e-9))) "p0 = the value" (Some 7.0)
        (Metrics.histogram_quantile "one" 0.0);
      Alcotest.(check (option (float 1e-9))) "p100 = the value" (Some 7.0)
        (Metrics.histogram_quantile "one" 100.0);
      (match Metrics.histogram_stats "one" with
      | Some h ->
          Alcotest.check_raises "q out of range"
            (Invalid_argument "Metrics.quantile: q must be in [0,100], got 101") (fun () ->
              ignore (Metrics.quantile h 101.0))
      | None -> Alcotest.fail "histogram missing");
      (* beyond the last bound: the overflow bucket estimates as max_v *)
      Metrics.observe "huge" 1e9;
      Metrics.observe "huge" 2e9;
      Alcotest.(check (option (float 1e-9))) "overflow clamps to max" (Some 2e9)
        (Metrics.histogram_quantile "huge" 99.0))

(* Satellite fix: an all-non-finite histogram must report a finite
   (zero) mean, not a silent JSON null — NaN/Inf observations are
   quarantined in [non_finite] and never touch the summary fields. *)
let test_histogram_nan_quarantine =
  fresh (fun () ->
      Metrics.observe "h" Float.nan;
      Metrics.observe "h" Float.infinity;
      Metrics.observe "h" Float.neg_infinity;
      (match Metrics.histogram_stats "h" with
      | Some h ->
          Alcotest.(check int) "no finite counts" 0 h.Metrics.count;
          Alcotest.(check int) "quarantined" 3 h.Metrics.non_finite;
          Alcotest.(check (float 0.0)) "mean is 0, not NaN" 0.0 (Metrics.mean h);
          Alcotest.(check int) "buckets untouched" 0
            (Array.fold_left ( + ) 0 h.Metrics.buckets)
      | None -> Alcotest.fail "histogram missing");
      let j = Json.parse (Json.to_string (Metrics.snapshot ())) in
      let h = Json.member "h" j in
      Alcotest.(check (float 0.0)) "snapshot mean finite" 0.0
        (Json.get_number (Json.member "mean" h));
      Alcotest.(check bool) "empty quantile is null" true (Json.member "p50" h = Json.Null);
      Alcotest.(check (float 0.0)) "non_finite surfaced" 3.0
        (Json.get_number (Json.member "non_finite" h));
      (* a finite observation after the quarantine keeps the mean exact *)
      Metrics.observe "h" 2.0;
      match Metrics.histogram_stats "h" with
      | Some h2 -> Alcotest.(check (float 1e-12)) "mean of the finite part" 2.0 (Metrics.mean h2)
      | None -> Alcotest.fail "histogram vanished")

(* --- meters under a fake clock ----------------------------------------- *)

let rates name now =
  match Metrics.meter_rates ~now name with
  | Some r -> r
  | None -> Alcotest.failf "meter %S missing" name

let test_meter_windows =
  fresh (fun () ->
      let t0 = 1000.0 in
      Metrics.mark ~by:5.0 ~now:t0 "m";
      Metrics.mark ~by:1.0 ~now:(t0 +. 0.4) "m";
      let r = rates "m" (t0 +. 0.9) in
      Alcotest.(check (float 1e-9)) "1s window sums the current second" 6.0 r.Metrics.rate_1s;
      Alcotest.(check (float 1e-9)) "10s window" 0.6 r.Metrics.rate_10s;
      Alcotest.(check (float 1e-9)) "60s window" 0.1 r.Metrics.rate_60s;
      Alcotest.(check (float 1e-9)) "total" 6.0 r.Metrics.total;
      (* one second later the marks leave the 1 s window but not the others *)
      let r = rates "m" (t0 +. 1.0) in
      Alcotest.(check (float 1e-9)) "1s window rotated" 0.0 r.Metrics.rate_1s;
      Alcotest.(check (float 1e-9)) "10s window keeps them" 0.6 r.Metrics.rate_10s;
      (* 61 s later the mark reuses the very same ring slot (1000 and
         1061 are congruent mod 61): the old second must be lazily
         discarded, not added *)
      Metrics.mark ~by:7.0 ~now:(t0 +. 61.0) "m";
      let r = rates "m" (t0 +. 61.0) in
      Alcotest.(check (float 1e-9)) "aliased slot overwritten" (7.0 /. 60.0) r.Metrics.rate_60s;
      Alcotest.(check (float 1e-9)) "lifetime total survives rotation" 13.0 r.Metrics.total;
      (* an idle meter decays to zero with no background work *)
      let r = rates "m" (t0 +. 130.0) in
      Alcotest.(check (float 1e-9)) "idle 1s" 0.0 r.Metrics.rate_1s;
      Alcotest.(check (float 1e-9)) "idle 60s" 0.0 r.Metrics.rate_60s;
      Alcotest.(check (float 1e-9)) "idle total" 13.0 r.Metrics.total)

let test_meter_deterministic_replay =
  fresh (fun () ->
      (* the same mark/read schedule under the same fake clock yields
         bit-identical rates, independent of wall time *)
      let run name =
        List.iter (fun (t, by) -> Metrics.mark ~by ~now:t name)
          [ (50.0, 1.0); (50.5, 2.0); (53.0, 4.0); (58.9, 8.0); (112.0, 16.0) ];
        List.map (fun t -> rates name t) [ 51.0; 59.0; 112.5; 200.0 ]
      in
      let a = run "replay.a" in
      let b = run "replay.b" in
      List.iter2
        (fun (x : Metrics.meter_rates) (y : Metrics.meter_rates) ->
          Alcotest.(check (float 0.0)) "1s bit-identical" x.Metrics.rate_1s y.Metrics.rate_1s;
          Alcotest.(check (float 0.0)) "10s bit-identical" x.Metrics.rate_10s y.Metrics.rate_10s;
          Alcotest.(check (float 0.0)) "60s bit-identical" x.Metrics.rate_60s y.Metrics.rate_60s;
          Alcotest.(check (float 0.0)) "total bit-identical" x.Metrics.total y.Metrics.total)
        a b)

(* --- structured logs ---------------------------------------------------- *)

let test_log_jsonl () =
  Log.with_memory (fun () ->
      Log.emit ~req:"r#1" ~event:"request.admitted" [ ("queued", Json.Number 2.0) ];
      Log.emit ~event:"daemon.start" [ ("detail", Json.String nasty) ]);
  (match Log.records () with
  | [ first; second ] ->
      Alcotest.(check string) "event field" "request.admitted"
        (Json.get_string (Json.member "event" first));
      Alcotest.(check string) "request id stamped" "r#1"
        (Json.get_string (Json.member "req" first));
      Alcotest.(check (float 1e-9)) "caller fields kept" 2.0
        (Json.get_number (Json.member "queued" first));
      Alcotest.(check bool) "ts present" true
        (match Json.member "ts" first with Json.Number _ -> true | _ -> false);
      Alcotest.(check bool) "req omitted when absent" true
        (Json.member "req" second = Json.Null)
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs));
  (* each record is exactly one parseable line, whatever is in it *)
  List.iter
    (fun line ->
      Alcotest.(check bool) "no embedded newline" true (not (String.contains line '\n'));
      match Json.parse line with
      | Json.Object _ -> ()
      | _ -> Alcotest.failf "log line is not an object: %s" line)
    (Log.lines ());
  (* the silent sink records nothing and is restored by with_memory *)
  Alcotest.(check bool) "sink restored to silent" true (Log.sink () = Log.Silent);
  let before = List.length (Log.records ()) in
  Log.emit ~event:"ignored" [];
  Alcotest.(check int) "silent emit is a no-op" before (List.length (Log.records ()))

(* --- prometheus exposition ---------------------------------------------- *)

(* Minimal grammar check over the exposition: every line is either a
   comment or `name[{labels}] value` with a float-parseable value —
   what `promtool check metrics` enforces structurally. *)
let check_prom_grammar text =
  Alcotest.(check bool) "exposition ends with a newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n');
  List.iter
    (fun line ->
      if line <> "" && not (String.length line >= 2 && String.sub line 0 2 = "# ") then begin
        let name_end =
          match (String.index_opt line '{', String.index_opt line ' ') with
          | Some b, _ -> b
          | None, Some sp -> sp
          | None, None -> Alcotest.failf "malformed prom line: %s" line
        in
        String.iter
          (fun c ->
            match c with
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
            | c -> Alcotest.failf "bad metric-name char %C in: %s" c line)
          (String.sub line 0 name_end);
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "no value on prom line: %s" line
        | Some sp -> (
            let v = String.sub line (sp + 1) (String.length line - sp - 1) in
            match (v, float_of_string_opt v) with
            | ("NaN" | "+Inf" | "-Inf"), _ | _, Some _ -> ()
            | _, None -> Alcotest.failf "unparsable prom value %S in: %s" v line)
      end)
    (String.split_on_char '\n' text)

let test_prom_render =
  fresh (fun () ->
      Metrics.incr ~by:3.0 "serve.requests";
      Metrics.set_gauge "serve.queue_depth" 2.0;
      List.iter (Metrics.observe "serve.request_ms") [ 0.5; 5.0; 50.0; 50.0 ];
      Metrics.mark ~by:4.0 ~now:1234.5 "serve.offered.rate";
      let text = Prom.render ~now:1234.9 () in
      check_prom_grammar text;
      let lines = String.split_on_char '\n' text in
      let has l = Alcotest.(check bool) (Printf.sprintf "has %S" l) true (List.mem l lines) in
      has "# TYPE smoothe_serve_requests counter";
      has "smoothe_serve_requests 3";
      has "# TYPE smoothe_serve_request_ms histogram";
      has "smoothe_serve_request_ms_bucket{le=\"+Inf\"} 4";
      has "smoothe_serve_request_ms_count 4";
      has "smoothe_serve_offered_rate_total 4";
      has "smoothe_serve_offered_rate_rate{window=\"1s\"} 4";
      (* cumulative bucket counts are non-decreasing in bound order *)
      let buckets =
        List.filter_map
          (fun l ->
            let prefix = "smoothe_serve_request_ms_bucket{le=\"" in
            if String.length l > String.length prefix
               && String.sub l 0 (String.length prefix) = prefix
            then
              match String.rindex_opt l ' ' with
              | Some sp ->
                  int_of_string_opt (String.sub l (sp + 1) (String.length l - sp - 1))
              | None -> None
            else None)
          lines
      in
      Alcotest.(check bool) "some bounded buckets emitted" true (List.length buckets >= 2);
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
        | _ -> true
      in
      Alcotest.(check bool) "cumulative and sorted" true (non_decreasing buckets))

(* --- timestamps under clock skew -------------------------------------- *)

let test_skew_visible_in_spans =
  fresh (fun () ->
      Fun.protect ~finally:(fun () -> Timer.set_skew 0.0) @@ fun () ->
      Timer.set_skew 0.0;
      Trace.with_span "before" (fun () -> ());
      Timer.set_skew 100.0;
      Trace.with_span "after" (fun () -> ());
      let before = get_span "before" and after = get_span "after" in
      Alcotest.(check bool)
        "skew shifts later spans" true
        (after.Trace.ts -. before.Trace.ts >= 99.0);
      (* the chrome export rebases onto the earliest event *)
      let j = Json.parse (Json.to_string (Trace.to_chrome ())) in
      let ts =
        List.map
          (fun e -> Json.get_number (Json.member "ts" e))
          (Json.get_list (Json.member "traceEvents" j))
      in
      Alcotest.(check bool) "first event at 0" true (List.hd ts < 1e6);
      Alcotest.(check bool)
        "gap preserved in microseconds" true
        (List.nth ts 1 -. List.hd ts >= 99.0 *. 1e6))

let test_skew_fault_plan =
  fresh (fun () ->
      Fault_plan.with_plan
        (Fault_plan.of_string "skew@30")
        (fun () ->
          Trace.with_span "before" (fun () -> ());
          ignore (Fault_plan.trigger_clock_skew ());
          Trace.with_span "after" (fun () -> ()));
      let before = get_span "before" and after = get_span "after" in
      Alcotest.(check bool)
        "injected skew shows in the trace" true
        (after.Trace.ts -. before.Trace.ts >= 29.0))

(* --- bit-identity of instrumented extraction -------------------------- *)

let test_disabled_sink_bit_identical () =
  Obs.disable ();
  Trace.reset ();
  Metrics.reset ();
  let g = (Registry.find_instance "mcm_8").Registry.build () in
  let config =
    { Smoothe_config.default with Smoothe_config.max_iters = 12; batch = 4; seed = 11 }
  in
  let plain = Smoothe_extract.extract ~config g in
  let observed = Obs.with_enabled (fun () -> Smoothe_extract.extract ~config g) in
  let cost (r : Smoothe_extract.run) = r.Smoothe_extract.result.Extractor.cost in
  Alcotest.(check bool) "same cost, bit for bit" true (cost plain = cost observed);
  Alcotest.(check int)
    "same iteration count" plain.Smoothe_extract.iterations observed.Smoothe_extract.iterations;
  Alcotest.(check (list (float 0.0)))
    "identical loss trajectory"
    (List.map (fun h -> h.Smoothe_extract.relaxed_loss) plain.Smoothe_extract.history)
    (List.map (fun h -> h.Smoothe_extract.relaxed_loss) observed.Smoothe_extract.history);
  let choices (r : Smoothe_extract.run) =
    match r.Smoothe_extract.result.Extractor.solution with
    | Some s -> Array.to_list s.Egraph.Solution.choice
    | None -> []
  in
  Alcotest.(check (list (option int))) "identical solution" (choices plain) (choices observed);
  (* the observed run recorded the nested per-phase spans... *)
  let paths = List.map (fun s -> s.Trace.path) (Trace.spans ()) in
  List.iter
    (fun p ->
      Alcotest.(check bool) (Printf.sprintf "recorded %s" p) true (List.mem p paths))
    [
      "smoothe.extract";
      "smoothe.extract;smoothe.iter";
      "smoothe.extract;smoothe.iter;smoothe.forward";
      "smoothe.extract;smoothe.iter;smoothe.backward";
      "smoothe.extract;smoothe.iter;smoothe.sample";
    ];
  (* ...and the iteration counter agrees with the run *)
  Alcotest.(check (float 0.0))
    "iteration counter matches"
    (float_of_int observed.Smoothe_extract.iterations)
    (Metrics.counter_value "smoothe.iterations");
  (* the disabled run left nothing behind *)
  Trace.reset ();
  Metrics.reset ()

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception unwind" `Quick test_span_exception_unwind;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "totals" `Quick test_span_totals;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json" `Quick test_chrome_export;
          Alcotest.test_case "chrome sorted" `Quick test_chrome_sorted_by_ts;
          Alcotest.test_case "folded stacks" `Quick test_folded_export;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "concurrent incr" `Quick test_metrics_concurrent_incr;
          Alcotest.test_case "scoped isolation" `Quick test_metrics_scoped_isolation;
          escaping_roundtrip;
        ] );
      ( "quantiles",
        [
          quantile_error_bounded;
          Alcotest.test_case "edge cases" `Quick test_quantile_edge_cases;
          Alcotest.test_case "nan quarantine" `Quick test_histogram_nan_quarantine;
        ] );
      ( "meters",
        [
          Alcotest.test_case "window rotation" `Quick test_meter_windows;
          Alcotest.test_case "deterministic replay" `Quick test_meter_deterministic_replay;
        ] );
      ("log", [ Alcotest.test_case "jsonl records" `Quick test_log_jsonl ]);
      ("prom", [ Alcotest.test_case "exposition" `Quick test_prom_render ]);
      ( "skew",
        [
          Alcotest.test_case "set_skew visible" `Quick test_skew_visible_in_spans;
          Alcotest.test_case "fault plan skew" `Quick test_skew_fault_plan;
        ] );
      ( "bit-identity",
        [ Alcotest.test_case "disabled sink" `Quick test_disabled_sink_bit_identical ] );
    ]
