(* Tests for the term language and the equality-saturation engine. *)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

open Term

(* ------------------------------------------------------------------ term *)

let test_term_basics () =
  let t = app "+" [ atom "x"; app "f" [ atom "y" ] ] in
  Alcotest.(check int) "size" 4 (size t);
  Alcotest.(check int) "depth" 3 (depth t);
  Alcotest.(check string) "to_string" "(+ x (f y))" (to_string t);
  Alcotest.(check bool) "equal" true (equal t (app "+" [ atom "x"; app "f" [ atom "y" ] ]))

let test_pattern_vars () =
  let p = papp "+" [ pvar "a"; papp "f" [ pvar "b"; pvar "a" ] ] in
  Alcotest.(check (list string)) "vars in order" [ "a"; "b" ] (pattern_vars p);
  Alcotest.(check string) "pattern_to_string" "(+ ?a (f ?b ?a))" (pattern_to_string p)

let test_rule_validation () =
  Alcotest.check_raises "unbound rhs var"
    (Invalid_argument "Term.rule bad: rhs variable ?z unbound by lhs") (fun () ->
      ignore (rule ~name:"bad" (pvar "a") (pvar "z")))

let test_bidirectional () =
  let rules = bidirectional ~name:"comm" (papp "+" [ pvar "a"; pvar "b" ]) (papp "+" [ pvar "b"; pvar "a" ]) in
  Alcotest.(check int) "both directions" 2 (List.length rules);
  (* dropping a variable on the rhs kills the reverse direction *)
  let one = bidirectional ~name:"drop" (papp "f" [ pvar "a"; pvar "b" ]) (papp "g" [ pvar "a" ]) in
  Alcotest.(check int) "no reverse" 1 (List.length one)

(* -------------------------------------------------------------- egraph ops *)

let test_hashcons () =
  let g = Saturate.create () in
  let c1 = Saturate.add_term g (app "+" [ atom "x"; atom "y" ]) in
  let c2 = Saturate.add_term g (app "+" [ atom "x"; atom "y" ]) in
  Alcotest.(check int) "same term same class" c1 c2;
  Alcotest.(check int) "4 nodes: x, y, +, (+ shared)" 3 (Saturate.num_nodes g)

let test_union_congruence () =
  let g = Saturate.create () in
  (* f(a) and f(b); merging a,b must merge f(a),f(b) after rebuild *)
  let a = Saturate.add_term g (atom "a") in
  let b = Saturate.add_term g (atom "b") in
  let fa = Saturate.add_node g "f" [ a ] in
  let fb = Saturate.add_node g "f" [ b ] in
  Alcotest.(check bool) "initially distinct" true (Saturate.find g fa <> Saturate.find g fb);
  ignore (Saturate.union g a b);
  Saturate.rebuild g;
  Alcotest.(check int) "congruence closed" (Saturate.find g fa) (Saturate.find g fb)

let test_congruence_cascades () =
  let g = Saturate.create () in
  (* g(f(a)), g(f(b)): one union at the bottom cascades two levels up *)
  let a = Saturate.add_term g (atom "a") in
  let b = Saturate.add_term g (atom "b") in
  let fa = Saturate.add_node g "f" [ a ] in
  let fb = Saturate.add_node g "f" [ b ] in
  let gfa = Saturate.add_node g "g" [ fa ] in
  let gfb = Saturate.add_node g "g" [ fb ] in
  ignore (Saturate.union g a b);
  Saturate.rebuild g;
  Alcotest.(check int) "two-level cascade" (Saturate.find g gfa) (Saturate.find g gfb)

let test_ematch () =
  let g = Saturate.create () in
  ignore (Saturate.add_term g (app "+" [ atom "x"; app "+" [ atom "y"; atom "z" ] ]));
  let matches = Saturate.ematch g (papp "+" [ pvar "a"; pvar "b" ]) in
  Alcotest.(check int) "two + matches" 2 (List.length matches);
  (* non-linear pattern: ?a + ?a matches nothing here *)
  let non_linear = Saturate.ematch g (papp "+" [ pvar "a"; pvar "a" ]) in
  Alcotest.(check int) "non-linear no match" 0 (List.length non_linear);
  ignore (Saturate.add_term g (app "+" [ atom "w"; atom "w" ]));
  let non_linear2 = Saturate.ematch g (papp "+" [ pvar "a"; pvar "a" ]) in
  Alcotest.(check int) "non-linear match" 1 (List.length non_linear2)

let test_saturation_commutativity () =
  let g = Saturate.create () in
  let c1 = Saturate.add_term g (app "+" [ atom "x"; atom "y" ]) in
  let report =
    Saturate.run g [ rule ~name:"comm" (papp "+" [ pvar "a"; pvar "b" ]) (papp "+" [ pvar "b"; pvar "a" ]) ]
  in
  Alcotest.(check bool) "saturates" true report.Saturate.saturated;
  let c2 = Saturate.add_term g (app "+" [ atom "y"; atom "x" ]) in
  Alcotest.(check int) "x+y ~ y+x" (Saturate.find g c1) (Saturate.find g c2)

let test_saturation_assoc_comm_closure () =
  let g = Saturate.create () in
  let t1 = Saturate.add_term g (app "+" [ app "+" [ atom "a"; atom "b" ]; atom "c" ]) in
  let rules =
    rule ~name:"comm" (papp "+" [ pvar "x"; pvar "y" ]) (papp "+" [ pvar "y"; pvar "x" ])
    :: bidirectional ~name:"assoc"
         (papp "+" [ papp "+" [ pvar "x"; pvar "y" ]; pvar "z" ])
         (papp "+" [ pvar "x"; papp "+" [ pvar "y"; pvar "z" ] ])
  in
  ignore (Saturate.run ~iter_limit:12 g rules);
  (* every association/commutation of a+b+c collapses into one class *)
  let variants =
    [
      app "+" [ atom "c"; app "+" [ atom "b"; atom "a" ] ];
      app "+" [ app "+" [ atom "c"; atom "a" ]; atom "b" ];
      app "+" [ atom "b"; app "+" [ atom "a"; atom "c" ] ];
    ]
  in
  List.iter
    (fun t ->
      let c = Saturate.add_term g t in
      Alcotest.(check int) (to_string t) (Saturate.find g t1) (Saturate.find g c))
    variants

let test_node_limit_respected () =
  let g = Saturate.create () in
  ignore (Saturate.add_term g (app "f" [ atom "x" ]));
  (* a genuinely exploding rule: each round deepens every f-term *)
  let explode =
    rule ~name:"grow" (papp "f" [ pvar "a" ]) (papp "f" [ papp "s" [ pvar "a" ] ])
  in
  let report = Saturate.run ~node_limit:50 ~iter_limit:100 g [ explode ] in
  Alcotest.(check bool) "did not saturate" false report.Saturate.saturated;
  Alcotest.(check bool) "bounded (one round of overshoot allowed)" true
    (Saturate.num_nodes g < 200)

let test_export_matches_direct () =
  (* the paper's Fig. 1 example built two ways must agree on extraction *)
  let direct = Fig1.egraph () in
  let saturated = Fig1.egraph_via_saturation () in
  let c1, _ = Test_util.brute_force_optimum direct in
  let c2, _ = Test_util.brute_force_optimum saturated in
  Test_util.check_close ~msg:"same optimum" c1 c2;
  Alcotest.(check int) "same node count" (Egraph.num_nodes direct) (Egraph.num_nodes saturated)

let test_export_reachability () =
  let g = Saturate.create () in
  let root = Saturate.add_term g (app "f" [ atom "x" ]) in
  ignore (Saturate.add_term g (atom "unrelated"));
  let e = Saturate.export g ~root ~cost:(fun _ _ -> 1.0) in
  Alcotest.(check int) "only reachable classes exported" 2 (Egraph.num_classes e)

let test_cycle_creating_rule () =
  (* x -> x + zero puts (+ x zero) in x's class: the exported e-graph
     must contain self-referential (cyclic) classes *)
  let g = Saturate.create () in
  let root = Saturate.add_term g (app "f" [ atom "x" ]) in
  ignore
    (Saturate.run ~iter_limit:2 g
       [ rule ~name:"zero" (pvar "a") (papp "+" [ pvar "a"; patom "zero" ]) ]);
  let e = Saturate.export g ~root ~cost:(fun _ _ -> 1.0) in
  Alcotest.(check bool) "cyclic export" true (Egraph.is_cyclic e);
  (* and a valid (finite-cost) extraction still exists *)
  let r = Greedy.extract e in
  Alcotest.(check bool) "finite greedy cost" true (Float.is_finite r.Extractor.cost)

(* saturation never loses equivalences: anything equal before stays equal *)
let saturation_monotone =
  qtest ~count:40 "unions survive further saturation"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Saturate.create () in
      let atoms = [| "a"; "b"; "c" |] in
      let rec random_term depth =
        if depth = 0 || Rng.bool rng then atom atoms.(Rng.int rng 3)
        else app "+" [ random_term (depth - 1); random_term (depth - 1) ]
      in
      let t1 = Saturate.add_term g (random_term 3) in
      let t2 = Saturate.add_term g (random_term 3) in
      ignore (Saturate.union g t1 t2);
      Saturate.rebuild g;
      ignore
        (Saturate.run ~iter_limit:4 g
           [ rule ~name:"comm" (papp "+" [ pvar "x"; pvar "y" ]) (papp "+" [ pvar "y"; pvar "x" ]) ]);
      Saturate.find g t1 = Saturate.find g t2)

(* -------------------------------------------------------------- scheduler *)

let test_scheduler_bans_explosive_rule () =
  let g = Saturate.create () in
  ignore (Saturate.add_term g (app "f" [ atom "x" ]));
  let explode = rule ~name:"grow" (papp "f" [ pvar "a" ]) (papp "f" [ papp "s" [ pvar "a" ] ]) in
  let cfg = { Scheduler.default_config with Scheduler.match_limit = 2; iter_limit = 20; node_limit = 1000 } in
  let report = Scheduler.run ~config:cfg g [ explode ] in
  let bans = List.assoc "grow" report.Scheduler.banned_total in
  Alcotest.(check bool) (Printf.sprintf "rule was banned (%d times)" bans) true (bans > 0);
  Alcotest.(check bool) "stayed well under the node limit" true
    (report.Scheduler.final_nodes < 1000)

let test_scheduler_matches_plain_run_on_tame_rules () =
  (* on a non-explosive rule set the scheduler reaches the same closure *)
  let build () =
    let g = Saturate.create () in
    let t = Saturate.add_term g (app "+" [ app "+" [ atom "a"; atom "b" ]; atom "c" ]) in
    g, t
  in
  let rules =
    [ rule ~name:"comm" (papp "+" [ pvar "x"; pvar "y" ]) (papp "+" [ pvar "y"; pvar "x" ]) ]
  in
  let g1, _ = build () in
  ignore (Saturate.run g1 rules);
  let g2, _ = build () in
  let report = Scheduler.run g2 rules in
  Alcotest.(check bool) "saturated" true report.Scheduler.saturated;
  Alcotest.(check int) "same node count" (Saturate.num_nodes g1) (Saturate.num_nodes g2)

let test_scheduler_preserves_equivalences () =
  let g = Saturate.create () in
  let t1 = Saturate.add_term g (app "+" [ atom "x"; atom "y" ]) in
  ignore
    (Scheduler.run g
       [ rule ~name:"comm" (papp "+" [ pvar "a"; pvar "b" ]) (papp "+" [ pvar "b"; pvar "a" ]) ]);
  let t2 = Saturate.add_term g (app "+" [ atom "y"; atom "x" ]) in
  Alcotest.(check int) "commuted forms merged" (Saturate.find g t1) (Saturate.find g t2)

(* ----------------------------------------------------------- extract_term *)

let test_extract_term_fig1 () =
  let g = Fig1.egraph () in
  let _, sol = Test_util.brute_force_optimum g in
  let s = Option.get sol in
  let term = Extract_term.of_solution g s in
  Alcotest.(check string) "optimal term" "(+ (+ one (sq (tan alpha))) (tan alpha))"
    (Term.to_string term)

let test_extract_term_rejects_invalid () =
  let g = Fig1.egraph () in
  let bogus = { Egraph.Solution.choice = Array.make (Egraph.num_classes g) None } in
  Alcotest.check_raises "invalid"
    (Invalid_argument "Extract_term: invalid solution (incomplete or cyclic)") (fun () ->
      ignore (Extract_term.of_solution g bogus))

let test_extract_dag_shares () =
  let g = Fig1.egraph () in
  let _, sol = Test_util.brute_force_optimum g in
  let s = Option.get sol in
  let dag = Extract_term.dag_of_solution g s in
  (* one binder per selected class; tan appears once though used twice *)
  Alcotest.(check int) "binder count" (List.length (Egraph.Solution.selected_nodes g s))
    (List.length dag);
  let tans = List.filter (fun (_, parts) -> List.hd parts = "tan") dag in
  Alcotest.(check int) "tan bound once" 1 (List.length tans);
  let rendered = Extract_term.render_dag dag in
  Alcotest.(check bool) "let-form" true
    (String.length rendered > 0 && String.sub rendered 0 4 = "let ")

let extract_term_cost_consistent =
  qtest ~count:60 "term size counts tree nodes; dag binders count dag nodes"
    QCheck2.Gen.(pair (Test_util.arb_egraph ~max_classes:6 ()) (int_bound 1_000_000))
    (fun (g, seed) ->
      let rng = Rng.create seed in
      let pick =
        Array.map (fun members -> members.(Rng.int rng (Array.length members))) g.Egraph.class_nodes
      in
      let s = Egraph.Solution.of_node_choice g pick in
      let term = Extract_term.of_solution g s in
      let dag = Extract_term.dag_of_solution g s in
      Term.size term >= List.length dag
      && List.length dag = List.length (Egraph.Solution.selected_nodes g s))

let () =
  Alcotest.run "rewrite"
    [
      ( "term",
        [
          Alcotest.test_case "basics" `Quick test_term_basics;
          Alcotest.test_case "pattern vars" `Quick test_pattern_vars;
          Alcotest.test_case "rule validation" `Quick test_rule_validation;
          Alcotest.test_case "bidirectional" `Quick test_bidirectional;
        ] );
      ( "saturate",
        [
          Alcotest.test_case "hashcons" `Quick test_hashcons;
          Alcotest.test_case "union + congruence" `Quick test_union_congruence;
          Alcotest.test_case "congruence cascades" `Quick test_congruence_cascades;
          Alcotest.test_case "ematch" `Quick test_ematch;
          Alcotest.test_case "commutativity" `Quick test_saturation_commutativity;
          Alcotest.test_case "assoc+comm closure" `Quick test_saturation_assoc_comm_closure;
          Alcotest.test_case "node limit" `Quick test_node_limit_respected;
          Alcotest.test_case "export matches direct (fig1)" `Quick test_export_matches_direct;
          Alcotest.test_case "export reachability" `Quick test_export_reachability;
          Alcotest.test_case "cycle-creating rule" `Quick test_cycle_creating_rule;
          saturation_monotone;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "bans explosive rules" `Quick test_scheduler_bans_explosive_rule;
          Alcotest.test_case "matches plain run on tame rules" `Quick
            test_scheduler_matches_plain_run_on_tame_rules;
          Alcotest.test_case "preserves equivalences" `Quick test_scheduler_preserves_equivalences;
        ] );
      ( "extract_term",
        [
          Alcotest.test_case "fig1 optimal term" `Quick test_extract_term_fig1;
          Alcotest.test_case "rejects invalid" `Quick test_extract_term_rejects_invalid;
          Alcotest.test_case "dag sharing" `Quick test_extract_dag_shares;
          extract_term_cost_consistent;
        ] );
    ]
