(* Static-plan replay and the plan-level dataflow analysis.

   The contract under test is strict: a compiled plan replaying the
   captured iteration IR over a shared buffer arena must be BIT-identical
   to the tape interpreter — same loss, same probabilities, same
   gradients, down to signed zeros — while allocating no tensors. The
   arena soundness itself is a property: on random e-graphs the analysis
   may never map two overlapping live ranges to one slot, and any forced
   mis-assignment must be caught by the independent verifier. *)

let default_cfg =
  { Smoothe_config.default with Smoothe_config.batch = 4; prop_iters = Some 4 }

(* One forward pass of the real relaxation, plus everything a plan
   needs: the capture and the ids of the observable nodes. *)
let forward_once ?(config = default_cfg) g model compiled theta =
  let fwd = Relaxation.forward compiled ~config ~model ~theta in
  ignore g;
  fwd

let ids_of (fwd : Relaxation.forward) =
  let root = Ad.node_id fwd.Relaxation.loss in
  let theta_id = Ad.node_id fwd.Relaxation.theta in
  let outputs =
    [|
      Ad.node_id fwd.Relaxation.cp;
      Ad.node_id fwd.Relaxation.per_seed_cost;
      Ad.node_id fwd.Relaxation.penalty;
      root;
    |]
  in
  (root, theta_id, outputs)

(* Capture two consecutive iterations, run the analysis and compile.
   Fails the test on any gate the extraction loop would treat as clean. *)
let compile_plan ?(config = default_cfg) g =
  let model = Cost_model.of_egraph g in
  let compiled = Relaxation.compile config g in
  let rng = Rng.create 23 in
  let theta =
    Tensor.init ~batch:config.Smoothe_config.batch ~width:(Egraph.num_nodes g)
      (fun _ _ -> 0.5 *. Rng.gaussian rng)
  in
  let fwd1 = forward_once ~config g model compiled theta in
  let c1 = Plan.capture fwd1.Relaxation.tape ~root:fwd1.Relaxation.loss in
  let fwd2 = forward_once ~config g model compiled theta in
  let c2 = Plan.capture fwd2.Relaxation.tape ~root:fwd2.Relaxation.loss in
  (match Plan.stable c1 c2 with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("captures unstable: " ^ e));
  let root, theta_id, outputs = ids_of fwd2 in
  let report = Plan_check.analyze ~grads:[| theta_id |] ~root ~outputs c2.Plan.ir in
  let blocking =
    List.filter
      (fun d -> d.Diagnostic.severity <> Diagnostic.Info)
      report.Plan_check.diags
  in
  (match blocking with
  | [] -> ()
  | d :: _ -> Alcotest.fail ("analysis rejected the IR: " ^ Diagnostic.render d));
  match
    Plan.compile
      ~arena:(Plan_check.arena_spec report)
      ~chains:(Plan_check.plan_chains report)
      ~outputs ~grads:[| theta_id |] c2
  with
  | Error e -> Alcotest.fail ("compile failed: " ^ e)
  | Ok plan -> (plan, report, theta, model, compiled, config)

let check_bits msg a b =
  Alcotest.(check bool) msg true (Tensor.bits_equal a b)

(* ------------------------------------------------- replay bit-identity *)

let test_replay_bit_identical () =
  let rng = Rng.create 5 in
  let g = Test_util.random_egraph rng ~classes:10 in
  let plan, _report, theta, model, compiled, config = compile_plan g in
  (* several replays across in-place theta updates, each checked against
     a fresh interpreter pass over the same logits *)
  for round = 1 to 3 do
    let fwd = Relaxation.forward compiled ~config ~model ~theta in
    Plan.run_forward plan;
    check_bits
      (Printf.sprintf "round %d: loss" round)
      (Plan.value plan (Ad.node_id fwd.Relaxation.loss))
      (Ad.value fwd.Relaxation.loss);
    check_bits
      (Printf.sprintf "round %d: cp" round)
      (Plan.value plan (Ad.node_id fwd.Relaxation.cp))
      (Ad.value fwd.Relaxation.cp);
    check_bits
      (Printf.sprintf "round %d: per-seed cost" round)
      (Plan.value plan (Ad.node_id fwd.Relaxation.per_seed_cost))
      (Ad.value fwd.Relaxation.per_seed_cost);
    check_bits
      (Printf.sprintf "round %d: penalty" round)
      (Plan.value plan (Ad.node_id fwd.Relaxation.penalty))
      (Ad.value fwd.Relaxation.penalty);
    Ad.backward fwd.Relaxation.loss;
    Plan.run_backward plan;
    check_bits
      (Printf.sprintf "round %d: theta gradient" round)
      (Plan.grad_of plan (Ad.node_id fwd.Relaxation.theta))
      (Ad.grad fwd.Relaxation.theta);
    (* nudge theta in place, as Adam would, and replay again *)
    let d = Tensor.unsafe_data theta in
    for i = 0 to Tensor.numel theta - 1 do
      d.(i) <- d.(i) +. (0.05 *. Rng.gaussian rng)
    done
  done

let test_replay_allocates_nothing () =
  let rng = Rng.create 9 in
  let g = Test_util.random_egraph rng ~classes:8 in
  let plan, _, _, _, _, _ = compile_plan g in
  Obs.with_enabled @@ fun () ->
  Metrics.scoped @@ fun () ->
  (* warm-up replay, then measure: steady-state iterations must not
     allocate a single tensor *)
  Plan.run_forward plan;
  Plan.run_backward plan;
  let before = Metrics.counter_value "tensor.bytes_allocated" in
  for _ = 1 to 5 do
    Plan.run_forward plan;
    Plan.run_backward plan
  done;
  let after = Metrics.counter_value "tensor.bytes_allocated" in
  Alcotest.(check (float 0.0)) "zero bytes allocated across 5 replays" before after

let test_scalar_backend_refuses () =
  let rng = Rng.create 3 in
  let g = Test_util.random_egraph rng ~classes:6 in
  let config = default_cfg in
  let model = Cost_model.of_egraph g in
  let compiled = Relaxation.compile config g in
  let theta = Tensor.create ~batch:config.Smoothe_config.batch ~width:(Egraph.num_nodes g) in
  let fwd = Relaxation.forward compiled ~config ~model ~theta in
  let c = Plan.capture fwd.Relaxation.tape ~root:fwd.Relaxation.loss in
  let root, theta_id, outputs = ids_of fwd in
  ignore root;
  Tensor.Backend.with_mode Tensor.Backend.Scalar @@ fun () ->
  match Plan.compile ~outputs ~grads:[| theta_id |] c with
  | Ok _ -> Alcotest.fail "compile must refuse the scalar backend"
  | Error _ -> ()

(* ------------------------------------------------------- whole runs *)

let run_cost mode g =
  let config =
    { default_cfg with Smoothe_config.max_iters = 12; patience = 50; plan = mode }
  in
  let run = Smoothe_extract.extract ~config g in
  (run.Smoothe_extract.result.Extractor.cost, run)

let test_extract_modes_agree () =
  (* the plan must never change results, only cost: off / on / check all
     land on the same incumbent, and check mode asserts bitwise equality
     internally on every replayed iteration *)
  let rng = Rng.create 17 in
  List.iter
    (fun classes ->
      let g = Test_util.random_egraph rng ~classes in
      let off, _ = run_cost Smoothe_config.Plan_off g in
      let on, run_on = run_cost Smoothe_config.Plan_on g in
      let check, _ = run_cost Smoothe_config.Plan_check g in
      Alcotest.(check (float 0.0)) "plan on = off" off on;
      Alcotest.(check (float 0.0)) "plan check = off" off check;
      (* the interesting case actually armed: no Preflight "disabled" *)
      let disabled =
        List.exists
          (fun e ->
            e.Health.kind = Health.Preflight
            && String.length e.Health.detail >= 13
            && String.sub e.Health.detail 0 13 = "plan disabled")
          run_on.Smoothe_extract.health
      in
      Alcotest.(check bool) "plan armed on a static graph" false disabled)
    [ 6; 12 ]

let test_extract_agree_across_jobs () =
  (* bundled instances, interpreted vs replayed, at --jobs 1 and 4 *)
  let g = Fig1.egraph () in
  List.iter
    (fun jobs ->
      Pool.set_jobs jobs;
      Fun.protect
        ~finally:(fun () -> Pool.set_jobs 1)
        (fun () ->
          let off, _ = run_cost Smoothe_config.Plan_off g in
          let check, _ = run_cost Smoothe_config.Plan_check g in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "jobs %d: check mode bit-identical end to end" jobs)
            off check))
    [ 1; 4 ]

(* ------------------------------------------------- analysis properties *)

let capture_ir g =
  let config = default_cfg in
  let model = Cost_model.of_egraph g in
  let compiled = Relaxation.compile config g in
  let theta =
    Tensor.init ~batch:config.Smoothe_config.batch ~width:(Egraph.num_nodes g)
      (fun b w -> 0.1 *. float_of_int ((b * 7) + w mod 5))
  in
  let fwd = Relaxation.forward compiled ~config ~model ~theta in
  let root, theta_id, outputs = ids_of fwd in
  (Ad.ir fwd.Relaxation.tape, root, theta_id, outputs)

let prop_arena_sound =
  QCheck2.Test.make ~count:30 ~name:"arena never overlaps live ranges in a slot"
    (Test_util.arb_egraph ~max_classes:9 ())
    (fun g ->
      let ir, root, theta_id, outputs = capture_ir g in
      let report = Plan_check.analyze ~grads:[| theta_id |] ~root ~outputs ir in
      (* the analysis must accept its own assignment... *)
      Diagnostic.errors report.Plan_check.diags = 0
      && Diagnostic.warnings report.Plan_check.diags = 0
      &&
      (* ...and the verifier must reject every forced mis-placement: an
         assigned buffer moved to any earlier slot must trip PL001/PL002
         (the greedy scan already proved earlier slots conflict) *)
      let ok = ref true in
      Array.iteri
        (fun b s ->
          if s > 0 then
            for s' = 0 to s - 1 do
              let assign = Array.copy report.Plan_check.assign in
              assign.(b) <- s';
              let diags =
                Plan_check.verify_arena report
                  ~slot_sizes:report.Plan_check.slot_sizes ~assign
              in
              if Diagnostic.errors diags = 0 then ok := false
            done)
        report.Plan_check.assign;
      !ok)

let prop_replay_bit_identical =
  QCheck2.Test.make ~count:12 ~name:"replay bit-identical to interpreter"
    (Test_util.arb_egraph ~max_classes:8 ())
    (fun g ->
      let plan, _, theta, model, compiled, config = compile_plan g in
      let fwd = Relaxation.forward compiled ~config ~model ~theta in
      Plan.run_forward plan;
      Ad.backward fwd.Relaxation.loss;
      Plan.run_backward plan;
      Tensor.bits_equal
        (Plan.value plan (Ad.node_id fwd.Relaxation.loss))
        (Ad.value fwd.Relaxation.loss)
      && Tensor.bits_equal
           (Plan.value plan (Ad.node_id fwd.Relaxation.cp))
           (Ad.value fwd.Relaxation.cp)
      && Tensor.bits_equal
           (Plan.grad_of plan (Ad.node_id fwd.Relaxation.theta))
           (Ad.grad fwd.Relaxation.theta))

(* ------------------------------------------------------ stability *)

let mk_ir nodes = Array.of_list nodes

let nd ?(args = [||]) ?(meta = Ad.Ir.M_none) op batch width =
  { Ad.Ir.op; args; shape = { Ad.Ir.batch; width }; context = ""; meta }

let test_stability_codes () =
  let a = mk_ir [ nd "param" 1 4; nd "neg" ~args:[| 0 |] 1 4 ] in
  Alcotest.(check int) "identical IRs are stable" 0
    (List.length (Plan_check.stability a a));
  let longer = mk_ir [ nd "param" 1 4; nd "neg" ~args:[| 0 |] 1 4; nd "neg" ~args:[| 1 |] 1 4 ] in
  (match Plan_check.stability a longer with
  | [ d ] -> Alcotest.(check string) "length divergence is PL006" "PL006" d.Diagnostic.code
  | _ -> Alcotest.fail "expected one diagnostic");
  let other_op = mk_ir [ nd "param" 1 4; nd "relu" ~args:[| 0 |] 1 4 ] in
  (match Plan_check.stability a other_op with
  | [ d ] -> Alcotest.(check string) "op divergence is PL006" "PL006" d.Diagnostic.code
  | _ -> Alcotest.fail "expected one diagnostic");
  let b1 =
    mk_ir [ nd "param" 1 4; nd "scale" ~args:[| 0 |] ~meta:(Ad.Ir.M_scalar 2.0) 1 4 ]
  in
  let b2 =
    mk_ir [ nd "param" 1 4; nd "scale" ~args:[| 0 |] ~meta:(Ad.Ir.M_scalar 3.0) 1 4 ]
  in
  match Plan_check.stability b1 b2 with
  | [ d ] ->
      Alcotest.(check string) "metadata-only divergence is PL007" "PL007" d.Diagnostic.code
  | _ -> Alcotest.fail "expected one diagnostic"

(* ----------------------------------------------- tape-identity guards *)

let test_cross_tape_mixing_raises () =
  let t1 = Ad.tape () and t2 = Ad.tape () in
  let x = Ad.param t1 (Tensor.of_array ~batch:1 ~width:2 [| 1.0; 2.0 |]) in
  let y = Ad.param t2 (Tensor.of_array ~batch:1 ~width:2 [| 3.0; 4.0 |]) in
  match Ad.add x y with
  | _ -> Alcotest.fail "mixing nodes from two tapes must raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names the tape mix" true
        (Test_util.contains msg "different tape")

let test_grad_before_backward_raises () =
  let tape = Ad.tape () in
  let x = Ad.param tape (Tensor.of_array ~batch:1 ~width:2 [| 1.0; 2.0 |]) in
  let _loss = Ad.sum_all (Ad.mul x x) in
  match Ad.grad x with
  | _ -> Alcotest.fail "grad before backward must raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names the missing sweep" true
        (Test_util.contains msg "not been swept")

let test_context_chain_in_diagnostics () =
  (* nested with_context joins outermost→innermost, and the analysis
     carries the full chain into rendered text and JSON *)
  let tape = Ad.tape () in
  let x = Ad.param tape (Tensor.of_array ~batch:1 ~width:2 [| 1.0; 2.0 |]) in
  let mk label =
    Ad.with_context "outer.loop" @@ fun () ->
    Ad.with_context label @@ fun () -> Ad.sum_all (Ad.neg x)
  in
  let _a = mk "inner.first" in
  let ir1 = Ad.ir tape in
  let tape2 = Ad.tape () in
  let x2 = Ad.param tape2 (Tensor.of_array ~batch:1 ~width:2 [| 1.0; 2.0 |]) in
  let _b =
    Ad.with_context "outer.loop" @@ fun () ->
    Ad.with_context "inner.second" @@ fun () -> Ad.sum_all (Ad.neg x2)
  in
  let ir2 = Ad.ir tape2 in
  Alcotest.(check bool) "IR records the joined chain" true
    (Array.exists (fun nd -> nd.Ad.Ir.context = "outer.loop/inner.first") ir1);
  match Plan_check.stability ir1 ir2 with
  | [ d ] ->
      Alcotest.(check string) "divergent provenance is PL006" "PL006" d.Diagnostic.code;
      let text = Diagnostic.render d in
      Alcotest.(check bool) "text render carries both chains" true
        (Test_util.contains text "outer.loop/inner.first"
        && Test_util.contains text "outer.loop/inner.second");
      let json = Json.to_string (Diagnostic.to_json d) in
      Alcotest.(check bool) "json render carries the chain" true
        (Test_util.contains json "outer.loop/inner.first")
  | ds ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one diagnostic, got %d" (List.length ds))

let test_analysis_reports_fusion () =
  (* x -> neg -> scale -> add_scalar -> ... must surface a PL004 chain *)
  let rng = Rng.create 29 in
  let g = Test_util.random_egraph rng ~classes:10 in
  let ir, root, theta_id, outputs = capture_ir g in
  let report = Plan_check.analyze ~grads:[| theta_id |] ~root ~outputs ir in
  let has code =
    List.exists (fun d -> d.Diagnostic.code = code) report.Plan_check.diags
  in
  Alcotest.(check bool) "finds at least one fusable chain (PL004)" true (has "PL004");
  Alcotest.(check bool) "arena smaller than interpreter allocation" true
    (report.Plan_check.arena_bytes < report.Plan_check.naive_bytes)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "plan"
    [
      ( "replay",
        [
          Alcotest.test_case "bit-identical across rounds" `Quick test_replay_bit_identical;
          Alcotest.test_case "allocates nothing" `Quick test_replay_allocates_nothing;
          Alcotest.test_case "scalar backend refused" `Quick test_scalar_backend_refuses;
        ] );
      ( "extraction",
        [
          Alcotest.test_case "modes agree" `Slow test_extract_modes_agree;
          Alcotest.test_case "jobs 1 and 4 agree" `Slow test_extract_agree_across_jobs;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "stability codes" `Quick test_stability_codes;
          Alcotest.test_case "fusion + arena accounting" `Quick test_analysis_reports_fusion;
          Alcotest.test_case "context chain in diagnostics" `Quick
            test_context_chain_in_diagnostics;
        ] );
      ( "guards",
        [
          Alcotest.test_case "cross-tape mixing raises" `Quick test_cross_tape_mixing_raises;
          Alcotest.test_case "grad before backward raises" `Quick
            test_grad_before_backward_raises;
        ] );
      ("properties", qcheck [ prop_arena_sound; prop_replay_bit_identical ]);
    ]
