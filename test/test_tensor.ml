(* Tests for the tensor substrate: dense kernels, both backends, LU,
   matrix exponential, segment kernels and CSR. *)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let tensor_gen ?(max_batch = 4) ?(max_width = 8) () =
  QCheck2.Gen.(
    bind (pair (int_range 1 max_batch) (int_range 1 max_width)) (fun (b, w) ->
        map
          (fun seed ->
            let rng = Rng.create seed in
            Tensor.init ~batch:b ~width:w (fun _ _ -> Rng.float rng 4.0 -. 2.0))
          (int_bound 1_000_000)))

(* ------------------------------------------------------------- basics *)

let test_shapes () =
  let t = Tensor.create ~batch:3 ~width:4 in
  Alcotest.(check int) "numel" 12 (Tensor.numel t);
  Tensor.set t 2 3 5.0;
  Test_util.check_close ~msg:"get/set" 5.0 (Tensor.get t 2 3);
  let r = Tensor.row t 2 in
  Test_util.check_close ~msg:"row copy" 5.0 r.(3);
  Alcotest.check_raises "of_array mismatch"
    (Invalid_argument "Tensor.of_array: 3 elements for shape (2, 2)") (fun () ->
      ignore (Tensor.of_array ~batch:2 ~width:2 [| 1.0; 2.0; 3.0 |]))

let test_elementwise () =
  let a = Tensor.of_array ~batch:1 ~width:3 [| 1.0; 2.0; 3.0 |] in
  let b = Tensor.of_array ~batch:1 ~width:3 [| 4.0; 5.0; 6.0 |] in
  Test_util.check_close ~msg:"add" 9.0 (Tensor.get (Tensor.add a b) 0 2);
  Test_util.check_close ~msg:"sub" (-3.0) (Tensor.get (Tensor.sub a b) 0 0);
  Test_util.check_close ~msg:"mul" 10.0 (Tensor.get (Tensor.mul a b) 0 1);
  Test_util.check_close ~msg:"div" 0.25 (Tensor.get (Tensor.div a b) 0 0);
  Test_util.check_close ~msg:"scale" 6.0 (Tensor.get (Tensor.scale 2.0 a) 0 2);
  Test_util.check_close ~msg:"sum" 6.0 (Tensor.sum a);
  Test_util.check_close ~msg:"dot" 32.0 (Tensor.dot a b);
  Test_util.check_close ~msg:"relu" 0.0 (Tensor.get (Tensor.relu (Tensor.neg a)) 0 0)

let test_reductions () =
  let t = Tensor.of_array ~batch:2 ~width:2 [| 1.0; 2.0; 3.0; 4.0 |] in
  let rows = Tensor.sum_rows t in
  Test_util.check_close ~msg:"row0" 3.0 rows.(0);
  Test_util.check_close ~msg:"row1" 7.0 rows.(1);
  let m = Tensor.mean_rows t in
  Test_util.check_close ~msg:"col mean" 2.0 (Tensor.get m 0 0);
  Test_util.check_close ~msg:"col mean" 3.0 (Tensor.get m 0 1);
  Test_util.check_close ~msg:"max" 4.0 (Tensor.max_value t);
  Test_util.check_close ~msg:"abs_max" 4.0 (Tensor.abs_max (Tensor.neg t))

let backends_agree op =
  qtest
    (Printf.sprintf "backends agree on %s" op)
    QCheck2.Gen.(pair (tensor_gen ()) (int_bound 1_000_000))
    (fun (a, seed) ->
      let rng = Rng.create seed in
      let b =
        Tensor.init ~batch:a.Tensor.batch ~width:a.Tensor.width (fun _ _ -> Rng.float rng 2.0)
      in
      let f =
        match op with
        | "add" -> Tensor.add
        | "mul" -> Tensor.mul
        | "matmul_nt" -> Tensor.matmul_nt
        | _ -> assert false
      in
      let fast = Tensor.Backend.with_mode Tensor.Backend.Vectorized (fun () -> f a b) in
      let slow = Tensor.Backend.with_mode Tensor.Backend.Scalar (fun () -> f a b) in
      let ok = ref true in
      for i = 0 to Tensor.numel fast - 1 do
        if
          not
            (Test_util.float_close (Tensor.unsafe_data fast).(i) (Tensor.unsafe_data slow).(i))
        then ok := false
      done;
      !ok)

(* -------------------------------------------------------------- matmul *)

let test_matmul_known () =
  let a = Tensor.of_array ~batch:2 ~width:2 [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = Tensor.of_array ~batch:2 ~width:2 [| 5.0; 6.0; 7.0; 8.0 |] in
  let c = Tensor.matmul a b in
  Test_util.check_close ~msg:"c00" 19.0 (Tensor.get c 0 0);
  Test_util.check_close ~msg:"c01" 22.0 (Tensor.get c 0 1);
  Test_util.check_close ~msg:"c10" 43.0 (Tensor.get c 1 0);
  Test_util.check_close ~msg:"c11" 50.0 (Tensor.get c 1 1)

let matmul_identity =
  qtest "A · I = A" (tensor_gen ~max_batch:5 ~max_width:5 ()) (fun a ->
      let eye = Tensor.identity a.Tensor.width in
      let c = Tensor.matmul a eye in
      let ok = ref true in
      for i = 0 to Tensor.numel a - 1 do
        if not (Test_util.float_close (Tensor.unsafe_data c).(i) (Tensor.unsafe_data a).(i)) then
          ok := false
      done;
      !ok)

let transpose_involution =
  qtest "transpose . transpose = id" (tensor_gen ()) (fun a ->
      let t2 = Tensor.transpose (Tensor.transpose a) in
      Tensor.unsafe_data t2 = Tensor.unsafe_data a)

(* ------------------------------------------------------------------ LU *)

let square_gen n =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Rng.create seed in
      (* diagonally dominant -> comfortably non-singular *)
      Tensor.init ~batch:n ~width:n (fun i j ->
          if i = j then 5.0 +. Rng.float rng 2.0 else Rng.float rng 2.0 -. 1.0))
    QCheck2.Gen.(int_bound 1_000_000)

let lu_solves =
  qtest "LU solve: A·X = B" (square_gen 5) (fun a ->
      let rng = Rng.create 77 in
      let b = Tensor.init ~batch:5 ~width:5 (fun _ _ -> Rng.float rng 4.0 -. 2.0) in
      let x = Tensor.Lu.solve (Tensor.Lu.decompose a) b in
      let ax = Tensor.matmul a x in
      let ok = ref true in
      for i = 0 to Tensor.numel b - 1 do
        if
          not
            (Test_util.float_close ~tol:1e-8 (Tensor.unsafe_data ax).(i) (Tensor.unsafe_data b).(i))
        then ok := false
      done;
      !ok)

let test_lu_singular () =
  let a = Tensor.of_array ~batch:2 ~width:2 [| 1.0; 2.0; 2.0; 4.0 |] in
  Alcotest.check_raises "singular" (Failure "Lu.decompose: singular matrix") (fun () ->
      ignore (Tensor.Lu.decompose a))

(* ----------------------------------------------------------------- expm *)

let expm_taylor a =
  (* reference: plain Taylor series with many terms (inputs are scaled small) *)
  let d = a.Tensor.batch in
  let acc = ref (Tensor.identity d) in
  let term = ref (Tensor.identity d) in
  for k = 1 to 60 do
    term := Tensor.scale (1.0 /. float_of_int k) (Tensor.matmul !term a);
    acc := Tensor.add !acc !term
  done;
  !acc

let expm_matches_taylor =
  qtest ~count:50 "expm matches Taylor reference" (square_gen 4) (fun raw ->
      let a = Tensor.scale 0.2 raw in
      let fast = Tensor.Matfun.expm a in
      let slow = expm_taylor a in
      let ok = ref true in
      for i = 0 to Tensor.numel a - 1 do
        if
          not
            (Test_util.float_close ~tol:1e-7 (Tensor.unsafe_data fast).(i)
               (Tensor.unsafe_data slow).(i))
        then ok := false
      done;
      !ok)

let test_expm_zero () =
  let z = Tensor.create ~batch:3 ~width:3 in
  let e = Tensor.Matfun.expm z in
  Test_util.check_close ~msg:"tr e^0 = d" 3.0 (Tensor.Matfun.trace e)

let test_expm_nilpotent () =
  (* strictly upper triangular: e^A = I + A + A²/2, trace stays d *)
  let a = Tensor.create ~batch:3 ~width:3 in
  Tensor.set a 0 1 2.0;
  Tensor.set a 1 2 3.0;
  let e = Tensor.Matfun.expm a in
  Test_util.check_close ~msg:"trace" 3.0 (Tensor.Matfun.trace e);
  Test_util.check_close ~msg:"(0,1)" 2.0 (Tensor.get e 0 1);
  Test_util.check_close ~msg:"(0,2) = 2*3/2" 3.0 (Tensor.get e 0 2)

let test_expm_diag () =
  let a = Tensor.create ~batch:2 ~width:2 in
  Tensor.set a 0 0 1.0;
  Tensor.set a 1 1 2.0;
  let e = Tensor.Matfun.expm a in
  Test_util.check_close ~msg:"e^1" (Float.exp 1.0) (Tensor.get e 0 0);
  Test_util.check_close ~msg:"e^2" (Float.exp 2.0) (Tensor.get e 1 1);
  Test_util.check_close ~msg:"off-diag" 0.0 (Tensor.get e 0 1)

let test_expm_scaling_path () =
  (* a norm > theta13 exercises the scaling-and-squaring branch *)
  let a = Tensor.create ~batch:2 ~width:2 in
  Tensor.set a 0 0 10.0;
  let e = Tensor.Matfun.expm a in
  Test_util.check_close ~tol:1e-8 ~msg:"e^10" (Float.exp 10.0) (Tensor.get e 0 0)

(* NOTEARS theorem 3.1 sanity: tr(e^A) = d iff A (non-negative) is acyclic *)
let test_notears_criterion () =
  let cyclic = Tensor.create ~batch:2 ~width:2 in
  Tensor.set cyclic 0 1 1.0;
  Tensor.set cyclic 1 0 1.0;
  let acyclic = Tensor.create ~batch:2 ~width:2 in
  Tensor.set acyclic 0 1 1.0;
  let h t = Tensor.Matfun.trace (Tensor.Matfun.expm t) -. 2.0 in
  Alcotest.(check bool) "cyclic > 0" true (h cyclic > 1e-6);
  Test_util.check_close ~msg:"acyclic = 0" 0.0 (h acyclic)

(* -------------------------------------------------------------- segments *)

let test_segments_structure () =
  let seg = Segments.of_lens [| 2; 0; 3 |] in
  Alcotest.(check int) "count" 3 (Segments.count seg);
  Alcotest.(check int) "len" 3 (Segments.seg_len seg 2);
  Alcotest.(check (list int)) "owners" [ 0; 0; 2; 2; 2 ]
    (Array.to_list (Segments.seg_of_index seg))

let seg_gen =
  (* segments + a matching tensor *)
  QCheck2.Gen.(
    bind (pair (int_range 1 3) (list_size (int_range 1 6) (int_range 0 4))) (fun (b, lens) ->
        map
          (fun seed ->
            let seg = Segments.of_lens (Array.of_list lens) in
            let rng = Rng.create seed in
            let width = List.fold_left ( + ) 0 lens in
            let t = Tensor.init ~batch:b ~width (fun _ _ -> Rng.float rng 2.0 -. 1.0) in
            seg, t)
          (int_bound 1_000_000)))

let seg_sum_matches_naive =
  qtest "segment sum matches naive" seg_gen (fun (seg, t) ->
      let out = Segments.sum t seg in
      let owners = Segments.seg_of_index seg in
      let ok = ref true in
      for b = 0 to t.Tensor.batch - 1 do
        for s = 0 to Segments.count seg - 1 do
          let acc = ref 0.0 in
          Array.iteri (fun i o -> if o = s then acc := !acc +. Tensor.get t b i) owners;
          if not (Test_util.float_close !acc (Tensor.get out b s)) then ok := false
        done
      done;
      !ok)

let seg_prod_matches_naive =
  qtest "segment prod matches naive" seg_gen (fun (seg, t) ->
      let out = Segments.prod t seg in
      let owners = Segments.seg_of_index seg in
      let ok = ref true in
      for b = 0 to t.Tensor.batch - 1 do
        for s = 0 to Segments.count seg - 1 do
          let acc = ref 1.0 in
          Array.iteri (fun i o -> if o = s then acc := !acc *. Tensor.get t b i) owners;
          if not (Test_util.float_close !acc (Tensor.get out b s)) then ok := false
        done
      done;
      !ok)

let seg_softmax_sums_to_one =
  qtest "segment softmax sums to 1 per segment" seg_gen (fun (seg, t) ->
      let out = Segments.softmax t seg in
      let sums = Segments.sum out seg in
      let ok = ref true in
      for b = 0 to t.Tensor.batch - 1 do
        for s = 0 to Segments.count seg - 1 do
          if Segments.seg_len seg s > 0 then
            if not (Test_util.float_close 1.0 (Tensor.get sums b s)) then ok := false
        done
      done;
      !ok)

let seg_max_argmax_consistent =
  qtest "segment max value matches its argmax element" seg_gen (fun (seg, t) ->
      let out, arg = Segments.max t seg in
      let data = Tensor.unsafe_data t in
      let nsegs = Segments.count seg in
      let ok = ref true in
      for b = 0 to t.Tensor.batch - 1 do
        for s = 0 to nsegs - 1 do
          let flat = (b * nsegs) + s in
          if Segments.seg_len seg s = 0 then begin
            if arg.(flat) <> -1 then ok := false
          end
          else if not (Test_util.float_close data.(arg.(flat)) (Tensor.get out b s)) then
            ok := false
        done
      done;
      !ok)

let seg_prod_grad_scratch_correct =
  qtest "product-of-others matches per-element recompute" seg_gen (fun (seg, t) ->
      let others = Segments.prod_grad_scratch t seg in
      let owners = Segments.seg_of_index seg in
      let ok = ref true in
      for b = 0 to t.Tensor.batch - 1 do
        Array.iteri
          (fun i o ->
            let acc = ref 1.0 in
            Array.iteri (fun j o' -> if o' = o && j <> i then acc := !acc *. Tensor.get t b j) owners;
            if not (Test_util.float_close !acc (Tensor.get others b i)) then ok := false)
          owners
      done;
      !ok)

let seg_backends_agree =
  List.map
    (fun (name, run) ->
      qtest
        (Printf.sprintf "backends agree on segment %s" name)
        seg_gen
        (fun (seg, t) ->
          let fast = Tensor.Backend.with_mode Tensor.Backend.Vectorized (fun () -> run t seg) in
          let slow = Tensor.Backend.with_mode Tensor.Backend.Scalar (fun () -> run t seg) in
          let ok = ref true in
          for i = 0 to Tensor.numel fast - 1 do
            if
              not
                (Test_util.float_close (Tensor.unsafe_data fast).(i)
                   (Tensor.unsafe_data slow).(i))
            then ok := false
          done;
          !ok))
    [
      ("softmax", Segments.softmax);
      ("sum", Segments.sum);
      ("prod", Segments.prod);
      ("prod_grad_scratch", Segments.prod_grad_scratch);
      ("max", fun t seg -> fst (Segments.max t seg));
    ]

let test_backend_reader () =
  let a = [| 1.5; 2.5 |] in
  Tensor.Backend.with_mode Tensor.Backend.Scalar (fun () ->
      Test_util.check_close ~msg:"scalar read" 2.5 (Tensor.Backend.reader () a 1));
  Tensor.Backend.with_mode Tensor.Backend.Vectorized (fun () ->
      Test_util.check_close ~msg:"vectorized read" 1.5 (Tensor.Backend.reader () a 0));
  Test_util.check_close ~msg:"scalar_read direct" 1.5 (Tensor.Backend.scalar_read a 0)

let test_gather_scatter () =
  let src = Tensor.of_array ~batch:2 ~width:3 [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
  let g = Segments.gather src [| 2; 0; 2 |] in
  Alcotest.(check (list (float 1e-9))) "gather row0" [ 3.0; 1.0; 3.0 ]
    (Array.to_list (Tensor.row g 0));
  let into = Tensor.create ~batch:2 ~width:3 in
  Segments.scatter_add ~into [| 2; 0; 2 |] g;
  (* column 2 receives 3+3, column 0 receives 1 *)
  Test_util.check_close ~msg:"scatter col2" 6.0 (Tensor.get into 0 2);
  Test_util.check_close ~msg:"scatter col0" 1.0 (Tensor.get into 0 0);
  Test_util.check_close ~msg:"scatter col1" 0.0 (Tensor.get into 0 1)

(* ------------------------------------------------------------------ CSR *)

let coo_gen =
  QCheck2.Gen.(
    bind (pair (int_range 1 6) (int_range 1 6)) (fun (r, c) ->
        map
          (fun seed ->
            let rng = Rng.create seed in
            let n = Rng.int rng 12 in
            let triplets =
              List.init n (fun _ -> Rng.int rng r, Rng.int rng c, Rng.float rng 4.0 -. 2.0)
            in
            r, c, triplets)
          (int_bound 1_000_000)))

let csr_spmv_matches_dense =
  qtest "CSR spmv matches dense" coo_gen (fun (r, c, triplets) ->
      let a = Csr.of_coo ~rows:r ~cols:c triplets in
      let rng = Rng.create 3 in
      let x = Array.init c (fun _ -> Rng.float rng 2.0) in
      let y = Csr.spmv a x in
      let dense = Csr.to_dense a in
      let ok = ref true in
      for i = 0 to r - 1 do
        let acc = ref 0.0 in
        for j = 0 to c - 1 do
          acc := !acc +. (Tensor.get dense i j *. x.(j))
        done;
        if not (Test_util.float_close !acc y.(i)) then ok := false
      done;
      !ok)

let csr_transpose_spmv =
  qtest "spmv_t a x = spmv (transpose a) x" coo_gen (fun (r, c, triplets) ->
      let a = Csr.of_coo ~rows:r ~cols:c triplets in
      let rng = Rng.create 4 in
      let x = Array.init r (fun _ -> Rng.float rng 2.0) in
      let y1 = Csr.spmv_t a x in
      let y2 = Csr.spmv (Csr.transpose a) x in
      Array.for_all2 (fun u v -> Test_util.float_close u v) y1 y2)

let csr_spmm_batched_rows =
  qtest "spmm_batched row b = spmv of row b" coo_gen (fun (r, c, triplets) ->
      let a = Csr.of_coo ~rows:r ~cols:c triplets in
      let rng = Rng.create 5 in
      let x = Tensor.init ~batch:3 ~width:c (fun _ _ -> Rng.float rng 2.0) in
      let y = Csr.spmm_batched a x in
      let ok = ref true in
      for b = 0 to 2 do
        let yr = Csr.spmv a (Tensor.row x b) in
        Array.iteri (fun i v -> if not (Test_util.float_close v (Tensor.get y b i)) then ok := false) yr
      done;
      !ok)

let test_csr_dedup () =
  let a = Csr.of_coo ~rows:2 ~cols:2 [ (0, 0, 1.0); (0, 0, 2.0); (1, 1, 3.0) ] in
  Alcotest.(check int) "nnz merged" 2 (Csr.nnz a);
  Test_util.check_close ~msg:"summed" 3.0 (snd (List.hd (Csr.row_entries a 0)));
  let inc = Csr.of_incidence ~rows:2 ~cols:2 [ (0, 1); (0, 1); (1, 0) ] in
  Alcotest.(check int) "incidence dedup" 2 (Csr.nnz inc)

let () =
  Alcotest.run "tensor"
    [
      ( "dense",
        [
          Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "elementwise" `Quick test_elementwise;
          Alcotest.test_case "reductions" `Quick test_reductions;
          backends_agree "add";
          backends_agree "mul";
          backends_agree "matmul_nt";
        ] );
      ( "matmul",
        [
          Alcotest.test_case "known product" `Quick test_matmul_known;
          matmul_identity;
          transpose_involution;
        ] );
      ("lu", [ lu_solves; Alcotest.test_case "singular" `Quick test_lu_singular ]);
      ( "expm",
        [
          expm_matches_taylor;
          Alcotest.test_case "zero" `Quick test_expm_zero;
          Alcotest.test_case "nilpotent" `Quick test_expm_nilpotent;
          Alcotest.test_case "diagonal" `Quick test_expm_diag;
          Alcotest.test_case "scaling path" `Quick test_expm_scaling_path;
          Alcotest.test_case "NOTEARS criterion" `Quick test_notears_criterion;
        ] );
      ( "segments",
        [
          Alcotest.test_case "structure" `Quick test_segments_structure;
          seg_sum_matches_naive;
          seg_prod_matches_naive;
          seg_softmax_sums_to_one;
          seg_max_argmax_consistent;
          seg_prod_grad_scratch_correct;
          Alcotest.test_case "gather/scatter" `Quick test_gather_scatter;
          Alcotest.test_case "backend reader" `Quick test_backend_reader;
        ]
        @ seg_backends_agree );
      ( "csr",
        [
          csr_spmv_matches_dense;
          csr_transpose_spmv;
          csr_spmm_batched_rows;
          Alcotest.test_case "dedup" `Quick test_csr_dedup;
        ] );
    ]
