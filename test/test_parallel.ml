(* Tests for the parallel execution layer: the domain pool's ordering
   and failure contracts, the fixed-boundary chunked kernels, and the
   determinism matrix — the same bits at --jobs 1 and --jobs 4 for
   tensor kernels, SmoothE extraction (results, metrics, checkpoints)
   and the portfolio. *)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Every test restores the default pool size and the cutoff, whatever
   happens inside: later cases assume the sequential default. *)
let with_jobs n f =
  let saved = Pool.jobs () in
  Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) f

let with_cutoff c f =
  let saved = !Parallel.sequential_cutoff in
  Parallel.sequential_cutoff := c;
  Fun.protect ~finally:(fun () -> Parallel.sequential_cutoff := saved) f

let with_tmpdir f =
  let dir = Filename.temp_file "smoothe-par" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let bits_of_tensor t =
  Array.map Int64.bits_of_float (Array.sub (Tensor.unsafe_data t) 0 (Tensor.numel t))

(* ------------------------------------------------------------------ pool *)

let test_pool_results_in_order () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.(check int) "size" 4 (Pool.size pool);
  let tasks =
    Array.init 100 (fun i () ->
        (* stagger completion so out-of-order finishes would show *)
        let acc = ref 0 in
        for _ = 1 to (100 - i) * 500 do
          incr acc
        done;
        ignore !acc;
        i * i)
  in
  let results = Pool.run_array pool tasks in
  Alcotest.(check bool) "input order" true (results = Array.init 100 (fun i -> i * i))

let test_pool_size1_inline () =
  let pool = Pool.create ~jobs:1 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let here = Domain.self () in
  let domains = Pool.run_array pool (Array.init 8 (fun _ () -> Domain.self ())) in
  Array.iter
    (fun d -> Alcotest.(check bool) "runs on the submitting domain" true (d = here))
    domains

let test_pool_lowest_index_failure () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let settled = Array.make 16 false in
  let tasks =
    Array.init 16 (fun i () ->
        if i = 3 then failwith "idx3";
        if i = 7 then failwith "idx7";
        settled.(i) <- true)
  in
  Alcotest.check_raises "lowest-indexed failure wins" (Failure "idx3") (fun () ->
      ignore (Pool.run_array pool tasks : unit array));
  (* the batch settles before the re-raise: no abandoned tasks *)
  Array.iteri
    (fun i ok ->
      if i <> 3 && i <> 7 then
        Alcotest.(check bool) (Printf.sprintf "task %d ran" i) true ok)
    settled

let test_pool_nested_submission () =
  (* a task that submits its own batch to the same pool must make
     progress even when every worker is busy with outer tasks — the
     submitting domain helps work the queue *)
  let pool = Pool.create ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let outer =
    Pool.run_array pool
      (Array.init 4 (fun i () ->
           let inner = Pool.run_array pool (Array.init 8 (fun j () -> (i * 8) + j)) in
           Array.fold_left ( + ) 0 inner))
  in
  let expected =
    Array.init 4 (fun i -> Array.fold_left ( + ) 0 (Array.init 8 (fun j -> (i * 8) + j)))
  in
  Alcotest.(check bool) "nested batches complete" true (outer = expected)

let test_pool_run_list () =
  let pool = Pool.create ~jobs:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.(check (list int)) "list order" [ 0; 10; 20; 30; 40 ]
    (Pool.run_list pool (List.init 5 (fun i () -> i * 10)))

let test_pool_trace_task_order () =
  (* spans emitted inside pool tasks are captured per task and absorbed
     in task order at the join: the global store must read as if the
     tasks ran sequentially, whatever the actual interleaving *)
  Obs.enable ();
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Trace.reset ())
  @@ fun () ->
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  ignore
    (Pool.run_array pool
       (Array.init 12 (fun i () ->
            Trace.with_span (Printf.sprintf "task%02d" i) (fun () ->
                Trace.with_span (Printf.sprintf "task%02d.inner" i) (fun () -> ()))))
      : unit array);
  let names = List.map (fun s -> s.Trace.name) (Trace.spans ()) in
  let expected =
    List.concat
      (List.init 12 (fun i ->
           [ Printf.sprintf "task%02d.inner" i; Printf.sprintf "task%02d" i ]))
  in
  Alcotest.(check (list string)) "spans in task order" expected names

(* ---------------------------------------------------------------- chunks *)

let chunks_covers_exactly_once =
  qtest "chunks touches every index exactly once (pooled)"
    QCheck2.Gen.(pair (int_range 0 2000) (int_range 1 512))
    (fun (n, grain) ->
      with_jobs 4 @@ fun () ->
      with_cutoff 1 @@ fun () ->
      let hits = Array.make (max 1 n) 0 in
      Parallel.chunks ~grain n (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      n = 0 || Array.for_all (fun h -> h = 1) (Array.sub hits 0 n))

let fold_chunks_jobs_invariant =
  qtest "fold_chunks is bit-identical at jobs 1 and 4"
    QCheck2.Gen.(pair (list_size (int_range 1 800) (float_range (-1e6) 1e6)) (int_range 1 64))
    (fun (xs, grain) ->
      let a = Array.of_list xs in
      let n = Array.length a in
      let sum () =
        Parallel.fold_chunks ~grain n
          ~chunk:(fun lo hi ->
            let s = ref 0.0 in
            for i = lo to hi - 1 do
              s := !s +. a.(i)
            done;
            !s)
          ~combine:( +. ) ~init:0.0
      in
      with_cutoff 1 @@ fun () ->
      let seq = with_jobs 1 sum in
      let par = with_jobs 4 sum in
      Int64.bits_of_float seq = Int64.bits_of_float par)

let test_chunks_inline_under_cutoff () =
  (* small inputs never touch the pool: one body call covering [0, n) *)
  with_jobs 4 @@ fun () ->
  let calls = ref [] in
  Parallel.chunks 100 (fun lo hi -> calls := (lo, hi) :: !calls);
  Alcotest.(check (list (pair int int))) "single inline call" [ (0, 100) ] !calls;
  (* cost weighting: 100 rows of width 200 is over the default cutoff,
     so a row-chunked kernel fans out even at a small row count *)
  let calls = ref 0 in
  Parallel.chunks ~grain:10 ~cost:200 100 (fun _ _ -> incr calls);
  Alcotest.(check int) "cost pushes it through the pool" 10 !calls

let test_chunks_rejects_bad_grain () =
  Alcotest.check_raises "grain 0" (Invalid_argument "Parallel.chunks: grain must be >= 1")
    (fun () -> Parallel.chunks ~grain:0 10 (fun _ _ -> ()))

(* -------------------------------------------------- tensor bit-identity *)

let random_tensor rng ~batch ~width =
  Tensor.init ~batch ~width (fun _ _ -> Rng.gaussian rng)

(* Run the parallelised kernels once sequentially and once over a
   4-slot pool (cutoff lowered so even these moderate shapes chunk)
   and require the same bits everywhere. *)
let kernel_outputs () =
  let rng = Rng.create 42 in
  let a = random_tensor rng ~batch:6 ~width:900 in
  let b = random_tensor rng ~batch:6 ~width:900 in
  (* 90 segments of lengths 9/10/11, summing to 900 *)
  let seg = Segments.of_lens (Array.init 90 (fun i -> 9 + (i mod 3))) in
  let m1 = random_tensor rng ~batch:24 ~width:32 in
  let m2 = random_tensor rng ~batch:24 ~width:32 in
  let soft = Segments.softmax a seg in
  let sums = Segments.sum a seg in
  let prods = Segments.prod soft seg in
  let scratch = Segments.prod_grad_scratch soft seg in
  let maxes, arg = Segments.max a seg in
  let idx = Array.init 900 (fun i -> i * 7 mod 900) in
  let gathered = Segments.gather a idx in
  let acc = Tensor.create ~batch:6 ~width:900 in
  Segments.scatter_add ~into:acc idx b;
  let mapped = Tensor.map (fun x -> Stdlib.exp (Stdlib.sin x)) a in
  let zipped = Tensor.map2 (fun x y -> (x *. y) +. x) a b in
  let axpyd = Tensor.copy a in
  Tensor.axpy 0.37 b axpyd;
  let prod_mat = Tensor.matmul_nt m1 m2 in
  ( List.map bits_of_tensor
      [ soft; sums; prods; scratch; maxes; gathered; acc; mapped; zipped; axpyd; prod_mat ],
    arg )

let test_tensor_kernels_bit_identical () =
  let seq_bits, seq_arg = with_jobs 1 kernel_outputs in
  let par_bits, par_arg = with_cutoff 64 (fun () -> with_jobs 4 kernel_outputs) in
  List.iteri
    (fun k (s, p) ->
      Alcotest.(check bool) (Printf.sprintf "kernel %d bit-identical" k) true (s = p))
    (List.combine seq_bits par_bits);
  Alcotest.(check bool) "argmax identical" true (seq_arg = par_arg)

(* ---------------------------------------------------- determinism matrix *)

let counters_of_snapshot = function
  | Json.Object members ->
      List.filter_map
        (fun (name, v) ->
          match Json.member "type" v with
          | Json.String "counter" -> Some (name, Json.get_number (Json.member "value" v))
          | _ -> None)
        members
  | _ -> []

(* One SmoothE run at a given pool size: iteration-bounded (a wall-clock
   budget would make the iteration count timing-dependent), checkpointed,
   metrics captured. Returns everything the matrix compares. *)
let smoothe_run ~jobs =
  with_jobs jobs @@ fun () ->
  with_cutoff 64 @@ fun () ->
  with_tmpdir @@ fun dir ->
  let g = (Registry.find_instance "box_3").Registry.build () in
  let config =
    {
      Smoothe_config.default with
      Smoothe_config.batch = 6;
      max_iters = 12;
      time_limit = 0.0;
      seed = 11;
    }
  in
  let store = Checkpoint.store ~dir ~name:"matrix" () in
  Obs.enable ();
  Trace.reset ();
  Metrics.reset ();
  let run, counters =
    Fun.protect
      ~finally:(fun () ->
        Obs.disable ();
        Trace.reset ();
        Metrics.reset ())
      (fun () ->
        let run = Smoothe_extract.extract ~config ~checkpoint:store ~checkpoint_every:5 g in
        (run, counters_of_snapshot (Metrics.snapshot ())))
  in
  match Checkpoint.load_latest store with
  | Some (snap, _gen) -> (run, counters, snap)
  | None -> Alcotest.fail "no checkpoint written"

let test_determinism_matrix_smoothe () =
  let run1, counters1, snap1 = smoothe_run ~jobs:1 in
  let run4, counters4, snap4 = smoothe_run ~jobs:4 in
  let r1 = run1.Smoothe_extract.result and r4 = run4.Smoothe_extract.result in
  Alcotest.(check int) "same iteration count" run1.Smoothe_extract.iterations
    run4.Smoothe_extract.iterations;
  Alcotest.(check bool) "same cost bits" true
    (Int64.bits_of_float r1.Extractor.cost = Int64.bits_of_float r4.Extractor.cost);
  Alcotest.(check bool) "same solution" true (r1.Extractor.solution = r4.Extractor.solution);
  (* the observability stream: same counters, same values *)
  Alcotest.(check (list (pair string (float 0.0)))) "same metrics counters" counters1
    counters4;
  (* the durable state: a run is checkpoint-equivalent at any jobs *)
  Alcotest.(check string) "same fingerprint"
    (Checkpoint.fingerprint_to_string snap1.Checkpoint.fingerprint)
    (Checkpoint.fingerprint_to_string snap4.Checkpoint.fingerprint);
  Alcotest.(check int) "same checkpoint iter" snap1.Checkpoint.iter snap4.Checkpoint.iter;
  Alcotest.(check bool) "same rng state" true
    (snap1.Checkpoint.rng_state = snap4.Checkpoint.rng_state);
  Alcotest.(check bool) "same theta bits" true
    (bits_of_tensor snap1.Checkpoint.theta = bits_of_tensor snap4.Checkpoint.theta);
  Alcotest.(check int) "same adam step" snap1.Checkpoint.adam_step snap4.Checkpoint.adam_step;
  Alcotest.(check bool) "same best cost" true
    (Int64.bits_of_float snap1.Checkpoint.best_cost
    = Int64.bits_of_float snap4.Checkpoint.best_cost);
  Alcotest.(check bool) "same incumbent" true
    (snap1.Checkpoint.best_choice = snap4.Checkpoint.best_choice)

(* ------------------------------------------------------------- portfolio *)

(* Members bounded by iterations (not wall-clock) with a budget far
   larger than they need, so neither schedule ever hits the deadline:
   the parallel portfolio must then pick the same winner at the same
   cost as the sequential one. *)
let portfolio_config jobs =
  {
    Portfolio.default_config with
    Portfolio.time_budget = 120.0;
    use_ilp = true;
    use_smoothe = true;
    use_annealing = false;
    use_genetic = false;
    smoothe =
      { Smoothe_config.default with Smoothe_config.batch = 4; max_iters = 10; seed = 3 };
    jobs;
  }

let test_portfolio_jobs_invariant () =
  let g = (Registry.find_instance "box_3").Registry.build () in
  let run jobs = Portfolio.extract ~config:(portfolio_config jobs) (Rng.create 19) g in
  let seq = run 1 and par = run 4 in
  let costs o =
    List.map
      (fun m ->
        (m.Portfolio.member_name, Int64.bits_of_float m.Portfolio.result.Extractor.cost))
      o.Portfolio.members
  in
  Alcotest.(check (list (pair string int64))) "same member costs" (costs seq) (costs par);
  Alcotest.(check bool) "same best cost" true
    (Int64.bits_of_float seq.Portfolio.best.Extractor.cost
    = Int64.bits_of_float par.Portfolio.best.Extractor.cost);
  Alcotest.(check (option string)) "same winner"
    (List.assoc_opt "winner" seq.Portfolio.best.Extractor.notes)
    (List.assoc_opt "winner" par.Portfolio.best.Extractor.notes)

let test_portfolio_parallel_valid () =
  (* with wall-clock members the parallel portfolio is not reproducible
     across jobs — but it must still return a validated solution and
     per-member results *)
  let g = (Registry.find_instance "set_cover_small").Registry.build () in
  let config =
    { (portfolio_config 4) with Portfolio.time_budget = 5.0; use_annealing = true }
  in
  let out = Portfolio.extract ~config (Rng.create 23) g in
  Alcotest.(check int) "heuristics + 3 anytime members" 5 (List.length out.Portfolio.members);
  (match out.Portfolio.best.Extractor.solution with
  | Some s ->
      Alcotest.(check bool) "best validates" true
        (Egraph.Solution.validate g s = Egraph.Solution.Valid)
  | None -> Alcotest.fail "portfolio returned no solution");
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Portfolio.member_name ^ " cost no better than portfolio best")
        true
        (out.Portfolio.best.Extractor.cost <= m.Portfolio.result.Extractor.cost))
    out.Portfolio.members

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "results in input order" `Quick test_pool_results_in_order;
          Alcotest.test_case "size-1 runs inline" `Quick test_pool_size1_inline;
          Alcotest.test_case "lowest-index failure" `Quick test_pool_lowest_index_failure;
          Alcotest.test_case "nested submission" `Quick test_pool_nested_submission;
          Alcotest.test_case "run_list" `Quick test_pool_run_list;
          Alcotest.test_case "trace merged in task order" `Quick test_pool_trace_task_order;
        ] );
      ( "chunks",
        [
          chunks_covers_exactly_once;
          fold_chunks_jobs_invariant;
          Alcotest.test_case "inline under cutoff" `Quick test_chunks_inline_under_cutoff;
          Alcotest.test_case "rejects bad grain" `Quick test_chunks_rejects_bad_grain;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "kernels bit-identical at jobs 4" `Quick
            test_tensor_kernels_bit_identical;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "smoothe identical at jobs 1 vs 4" `Slow
            test_determinism_matrix_smoothe;
          Alcotest.test_case "portfolio identical at jobs 1 vs 4" `Slow
            test_portfolio_jobs_invariant;
          Alcotest.test_case "parallel portfolio validates" `Slow
            test_portfolio_parallel_valid;
        ] );
    ]
