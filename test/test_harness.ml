(* Tests for the harness utilities: report formatting and budgets. *)

let test_pct () =
  Alcotest.(check string) "percent" "2.8%" (Report.pct 0.028);
  Alcotest.(check string) "zero" "0.0%" (Report.pct 0.0);
  Alcotest.(check string) "factor" "6.3x" (Report.pct 6.3);
  Alcotest.(check string) "failed" "Failed" (Report.pct infinity)

let test_secs () =
  Alcotest.(check string) "sub-ten" "1.23" (Report.secs 1.234);
  Alcotest.(check string) "ten-plus" "12.3" (Report.secs 12.34);
  Alcotest.(check string) "hundred-plus" "123" (Report.secs 123.4);
  Alcotest.(check string) "nan" "-" (Report.secs nan)

let test_pm () =
  Alcotest.(check string) "small" "1.50±0.20" (Report.pm 1.5 0.2);
  Alcotest.(check string) "failed" "-" (Report.pm infinity 0.0)

let test_pct_pm () =
  Alcotest.(check string) "percent pm" "5.0%±1.0%" (Report.pct_pm 0.05 0.01);
  Alcotest.(check string) "failed" "Failed" (Report.pct_pm infinity 0.0)

let test_budget_presets () =
  Alcotest.(check bool) "quick is cheaper" true
    (Budget.quick.Budget.ilp_time < Budget.default.Budget.ilp_time);
  Alcotest.(check bool) "quick fewer runs" true
    (Budget.quick.Budget.smoothe_runs <= Budget.default.Budget.smoothe_runs);
  Alcotest.(check bool) "quick smaller sweep" true
    (List.length Budget.quick.Budget.seed_sweep < List.length Budget.default.Budget.seed_sweep);
  Alcotest.(check bool) "default iterates more" true
    (Budget.default.Budget.smoothe.Smoothe_config.max_iters
    > Budget.quick.Budget.smoothe.Smoothe_config.max_iters)

let test_experiment_registry () =
  Alcotest.(check bool) "table2 registered" true (Experiments.by_name "table2" <> None);
  Alcotest.(check bool) "unknown rejected" true (Experiments.by_name "nope" = None);
  (* every paper exhibit has a runner *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true (List.mem name Experiments.names))
    [ "table1"; "table2"; "table3"; "table4"; "table5";
      "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9" ]

let test_runbank_caches () =
  let bank = Runbank.create Budget.quick in
  let inst = Registry.find_instance "mcm_8" in
  let g1 = Runbank.egraph bank inst in
  let g2 = Runbank.egraph bank inst in
  Alcotest.(check bool) "egraph memoised" true (g1 == g2);
  let r1 = Runbank.heuristic bank inst in
  let r2 = Runbank.heuristic bank inst in
  Alcotest.(check bool) "result memoised" true (r1 == r2)

let test_oracle_dominates_methods () =
  let bank = Runbank.create Budget.quick in
  let ds = Registry.find "rover" in
  let inst = Registry.find_instance "mcm_8" in
  let oracle = Runbank.oracle bank ds inst in
  Alcotest.(check bool) "oracle <= heuristic" true
    (oracle <= (Runbank.heuristic bank inst).Extractor.cost +. 1e-9);
  Alcotest.(check bool) "oracle <= heuristic+" true
    (oracle <= (Runbank.heuristic_plus bank inst).Extractor.cost +. 1e-9);
  (* normalised increase of the oracle itself is ~0 *)
  Test_util.check_close ~msg:"oracle increase" 0.0 (Runbank.quality_increase bank ds inst oracle)

let () =
  Alcotest.run "harness"
    [
      ( "report",
        [
          Alcotest.test_case "pct" `Quick test_pct;
          Alcotest.test_case "secs" `Quick test_secs;
          Alcotest.test_case "pm" `Quick test_pm;
          Alcotest.test_case "pct_pm" `Quick test_pct_pm;
        ] );
      ("budget", [ Alcotest.test_case "presets" `Quick test_budget_presets ]);
      ( "experiments",
        [ Alcotest.test_case "registry" `Quick test_experiment_registry ] );
      ( "runbank",
        [
          Alcotest.test_case "caching" `Quick test_runbank_caches;
          Alcotest.test_case "oracle dominates" `Slow test_oracle_dominates_methods;
        ] );
    ]
