(* Gradient checks: every analytic adjoint in Ad is validated against
   central finite differences, plus optimiser behaviour tests. *)

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let rand_tensor rng ~batch ~width = Tensor.init ~batch ~width (fun _ _ -> Rng.float rng 2.0 -. 1.0)

(* Check d(sum f(x))/dx against finite differences. [build] maps a param
   node to the output node. *)
let grad_check ?(tol = 1e-4) ~build x =
  let forward t =
    let tape = Ad.tape () in
    let v = Ad.param tape (Tensor.copy t) in
    Tensor.sum (Ad.value (build tape v))
  in
  let tape = Ad.tape () in
  let v = Ad.param tape x in
  let out = build tape v in
  Ad.backward out;
  let analytic = Ad.grad v in
  let numeric = Ad.finite_difference ~f:forward ~x ~eps:1e-5 in
  let ok = ref true in
  let worst = ref 0.0 in
  for i = 0 to Tensor.numel x - 1 do
    let a = (Tensor.unsafe_data analytic).(i) and n = (Tensor.unsafe_data numeric).(i) in
    let err = Float.abs (a -. n) /. (1.0 +. Float.abs n) in
    if err > !worst then worst := err;
    if err > tol then ok := false
  done;
  !ok

let seeded_gen = QCheck2.Gen.int_bound 1_000_000

let pointwise_grads =
  List.map
    (fun (name, build) ->
      qtest ("grad: " ^ name) seeded_gen (fun seed ->
          let rng = Rng.create seed in
          let x = rand_tensor rng ~batch:2 ~width:5 in
          (* fixed partner tensor, shared by every finite-difference probe *)
          let other = rand_tensor rng ~batch:2 ~width:5 in
          grad_check ~build:(fun tape v -> build tape other v) x))
    [
      ("add self", fun _ _ v -> Ad.add v v);
      ("sub const", fun tape other v -> Ad.sub v (Ad.const tape other));
      ("mul const", fun tape other v -> Ad.mul v (Ad.const tape other));
      ("mul self", fun _ _ v -> Ad.mul v v);
      ("neg", fun _ _ v -> Ad.neg v);
      ("scale", fun _ _ v -> Ad.scale 2.5 v);
      ("add_scalar", fun _ _ v -> Ad.add_scalar 3.0 v);
      ("one_minus", fun _ _ v -> Ad.one_minus v);
      ("sum_width", fun _ _ v -> Ad.sum_width v);
      ("sum_all", fun _ _ v -> Ad.sum_all v);
      ("mean_all", fun _ _ v -> Ad.mean_all v);
      ("mean_rows", fun _ _ v -> Ad.mean_rows v);
      ("slice_row", fun _ _ v -> Ad.slice_row v 1);
      ("gather", fun _ _ v -> Ad.gather v [| 0; 2; 2; 4; 1 |]);
      ("dot_const", fun _ _ v -> Ad.dot_const v [| 0.5; -1.0; 2.0; 0.0; 3.0 |]);
      ( "override_columns",
        fun _ _ v -> Ad.mul (Ad.override_columns v [ (1, 1.0); (3, 0.25) ]) v );
      ("compose mul(1-x, x)", fun _ _ v -> Ad.mul (Ad.one_minus v) v);
    ]

let log_safe_grad =
  qtest "grad: log_safe (positive inputs)" seeded_gen (fun seed ->
      let rng = Rng.create seed in
      let x = Tensor.init ~batch:2 ~width:5 (fun _ _ -> 0.1 +. Rng.float rng 2.0) in
      grad_check ~build:(fun _ v -> Ad.log_safe v) x)

let entropy_grad =
  qtest "grad: entropy term cp*log(cp)" seeded_gen (fun seed ->
      let rng = Rng.create seed in
      let x = Tensor.init ~batch:1 ~width:6 (fun _ _ -> 0.1 +. Rng.float rng 0.8) in
      grad_check ~build:(fun _ v -> Ad.sum_all (Ad.mul v (Ad.log_safe v))) x)

let relu_grad =
  (* relu is kinked at 0: sample away from it *)
  qtest "grad: relu (away from kink)" seeded_gen (fun seed ->
      let rng = Rng.create seed in
      let x =
        Tensor.init ~batch:2 ~width:5 (fun _ _ ->
            let v = Rng.float rng 2.0 -. 1.0 in
            if Float.abs v < 0.05 then 0.5 else v)
      in
      grad_check ~build:(fun _ v -> Ad.relu v) x)

let segment_grads =
  let seg = Segments.of_lens [| 2; 1; 3 |] in
  List.map
    (fun (name, build) ->
      qtest ("grad: " ^ name) seeded_gen (fun seed ->
          let rng = Rng.create seed in
          let x = Tensor.init ~batch:2 ~width:6 (fun _ _ -> Rng.float rng 2.0 -. 1.0) in
          grad_check ~build:(fun _ v -> build v) x))
    [
      ("segment_softmax", fun v -> Ad.mul (Ad.segment_softmax v seg) (Ad.segment_softmax v seg));
      ("segment_sum", fun v -> Ad.mul (Ad.segment_sum v seg) (Ad.segment_sum v seg));
      ("segment_prod", fun v -> Ad.segment_prod v seg);
    ]

let segment_softmax_weighted_grad =
  qtest "grad: weighted segment_softmax" seeded_gen (fun seed ->
      let seg = Segments.of_lens [| 3; 3 |] in
      let rng = Rng.create seed in
      let x = Tensor.init ~batch:1 ~width:6 (fun _ _ -> Rng.float rng 2.0 -. 1.0) in
      let u = [| 1.0; -2.0; 0.5; 3.0; 0.0; -1.0 |] in
      grad_check ~build:(fun _ v -> Ad.dot_const (Ad.segment_softmax v seg) u) x)

let segment_max_grad =
  (* max is kinked at ties; perturb to break them *)
  qtest "grad: segment_max (ties broken)" seeded_gen (fun seed ->
      let seg = Segments.of_lens [| 2; 4 |] in
      let rng = Rng.create seed in
      let x = Tensor.init ~batch:2 ~width:6 (fun b i -> float_of_int ((b * 7) + (i * 3) mod 11) /. 4.0 +. Rng.float rng 0.01) in
      grad_check ~build:(fun _ v -> Ad.segment_max v seg) x)

let linear_grads =
  qtest "grad: linear layer (input, weight, bias)" seeded_gen (fun seed ->
      let rng = Rng.create seed in
      let x = rand_tensor rng ~batch:3 ~width:4 in
      let w = rand_tensor rng ~batch:2 ~width:4 in
      let b = rand_tensor rng ~batch:1 ~width:2 in
      let ok_x =
        grad_check
          ~build:(fun tape v ->
            Ad.linear ~input:v ~weight:(Ad.param tape (Tensor.copy w))
              ~bias:(Ad.param tape (Tensor.copy b)))
          x
      in
      let ok_w =
        grad_check
          ~build:(fun tape v ->
            Ad.linear ~input:(Ad.const tape x) ~weight:v ~bias:(Ad.param tape (Tensor.copy b)))
          w
      in
      let ok_b =
        grad_check
          ~build:(fun tape v ->
            Ad.linear ~input:(Ad.const tape x) ~weight:(Ad.param tape (Tensor.copy w)) ~bias:v)
          b
      in
      ok_x && ok_w && ok_b)

let matrix_of_entries_grad =
  qtest "grad: matrix_of_entries + expm_trace" seeded_gen (fun seed ->
      let rng = Rng.create seed in
      (* non-negative inputs as in the real NOTEARS use *)
      let x = Tensor.init ~batch:1 ~width:4 (fun _ _ -> Rng.float rng 0.8) in
      let entries = [| (0, 0, 1); (1, 1, 0); (2, 1, 2); (3, 2, 0) |] in
      grad_check ~tol:1e-3
        ~build:(fun _ v -> Ad.expm_trace (Ad.matrix_of_entries v ~dim:3 entries))
        x)

let mse_grad =
  qtest "grad: mse" seeded_gen (fun seed ->
      let rng = Rng.create seed in
      let x = rand_tensor rng ~batch:4 ~width:1 in
      let target = rand_tensor rng ~batch:4 ~width:1 in
      grad_check ~build:(fun tape v -> Ad.mse ~pred:v ~target:(Ad.const tape target)) x)

(* -------------------------------------------------- behavioural checks *)

let test_backward_seeds_ones () =
  let tape = Ad.tape () in
  let x = Ad.param tape (Tensor.of_array ~batch:1 ~width:2 [| 3.0; 4.0 |]) in
  let y = Ad.scale 2.0 x in
  Ad.backward y;
  Test_util.check_close ~msg:"dy/dx0" 2.0 (Tensor.get (Ad.grad x) 0 0);
  Test_util.check_close ~msg:"dy/dx1" 2.0 (Tensor.get (Ad.grad x) 0 1)

let test_grad_accumulates_fanout () =
  let tape = Ad.tape () in
  let x = Ad.param tape (Tensor.of_array ~batch:1 ~width:1 [| 5.0 |]) in
  (* y = x + x: dy/dx = 2 via accumulation across the fan-out *)
  let y = Ad.add x x in
  Ad.backward y;
  Test_util.check_close ~msg:"fanout grad" 2.0 (Tensor.get (Ad.grad x) 0 0)

let test_const_blocks_grad () =
  let tape = Ad.tape () in
  let c = Ad.const tape (Tensor.of_array ~batch:1 ~width:1 [| 2.0 |]) in
  let x = Ad.param tape (Tensor.of_array ~batch:1 ~width:1 [| 3.0 |]) in
  let y = Ad.mul c x in
  Ad.backward y;
  Test_util.check_close ~msg:"const grad untouched by pull" 3.0 (Tensor.get (Ad.grad c) 0 0);
  Test_util.check_close ~msg:"param grad" 2.0 (Tensor.get (Ad.grad x) 0 0)

let test_node_count () =
  let tape = Ad.tape () in
  let x = Ad.param tape (Tensor.create ~batch:1 ~width:3) in
  ignore (Ad.add x (Ad.neg x));
  Alcotest.(check int) "nodes on tape" 3 (Ad.node_count tape)

let test_double_backward_raises () =
  (* tapes are single-use: the pull closures are consumed by the sweep,
     so a second backward must fail loudly rather than return zeros *)
  let tape = Ad.tape () in
  let x = Ad.param tape (Tensor.of_array ~batch:1 ~width:2 [| 1.0; 2.0 |]) in
  let loss = Ad.sum_all (Ad.mul x x) in
  Ad.backward loss;
  (match Ad.backward loss with
  | () -> Alcotest.fail "second backward on the same tape should raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names the single-use constraint" true
        (let n = String.length msg and m = String.length "single-use" in
         let rec go i = i + m <= n && (String.sub msg i m = "single-use" || go (i + 1)) in
         go 0));
  (* a fresh tape over the same tensor works fine *)
  let tape2 = Ad.tape () in
  let x2 = Ad.param tape2 (Tensor.of_array ~batch:1 ~width:2 [| 1.0; 2.0 |]) in
  let loss2 = Ad.sum_all (Ad.mul x2 x2) in
  Ad.backward loss2;
  Test_util.check_close ~msg:"fresh tape grad" 2.0 (Tensor.get (Ad.grad x2) 0 0)

let test_ir_records_ops () =
  (* every operator leaves one IR node with op name, args and shape *)
  let tape = Ad.tape () in
  let x = Ad.param tape (Tensor.of_array ~batch:2 ~width:3 [| 1.; 2.; 3.; 4.; 5.; 6. |]) in
  let loss =
    Ad.with_context "test.loss" @@ fun () -> Ad.sum_all (Ad.mul x (Ad.add_scalar 1.0 x))
  in
  let ir = Ad.ir tape in
  Alcotest.(check int) "one IR node per tape node" (Ad.node_count tape) (Array.length ir);
  Alcotest.(check int) "loss is the last node" (Array.length ir - 1) (Ad.node_id loss);
  Alcotest.(check string) "param recorded" "param" ir.(Ad.node_id x).Ad.Ir.op;
  let last = ir.(Ad.node_id loss) in
  Alcotest.(check string) "op name" "sum_all" last.Ad.Ir.op;
  Alcotest.(check bool) "shape" true (last.Ad.Ir.shape = { Ad.Ir.batch = 1; width = 1 });
  Alcotest.(check string) "context label" "test.loss" last.Ad.Ir.context;
  Alcotest.(check bool) "args point at earlier nodes" true
    (Array.for_all
       (fun nd -> Array.for_all (fun a -> a >= 0) nd.Ad.Ir.args)
       ir)

(* --------------------------------------------------------------- optim *)

let test_adam_minimises_quadratic () =
  (* minimise ||x - t||² *)
  let x = Tensor.of_array ~batch:1 ~width:3 [| 5.0; -4.0; 2.0 |] in
  let target = Tensor.of_array ~batch:1 ~width:3 [| 1.0; 2.0; 3.0 |] in
  let opt = Optim.adam ~lr:0.1 [ x ] in
  for _ = 1 to 400 do
    let tape = Ad.tape () in
    let v = Ad.param tape x in
    let loss = Ad.mse ~pred:v ~target:(Ad.const tape target) in
    Ad.backward loss;
    Optim.adam_step opt [ Ad.grad v ]
  done;
  for i = 0 to 2 do
    Test_util.check_close ~tol:1e-2 ~msg:"converged" (Tensor.get target 0 i) (Tensor.get x 0 i)
  done

let test_sgd_step () =
  let x = Tensor.of_array ~batch:1 ~width:2 [| 1.0; 2.0 |] in
  let g = Tensor.of_array ~batch:1 ~width:2 [| 0.5; -1.0 |] in
  Optim.sgd_step ~lr:0.1 ~params:[ x ] ~grads:[ g ];
  Test_util.check_close ~msg:"x0" 0.95 (Tensor.get x 0 0);
  Test_util.check_close ~msg:"x1" 2.1 (Tensor.get x 0 1)

let test_clip_grad_norm () =
  let g = Tensor.of_array ~batch:1 ~width:2 [| 3.0; 4.0 |] in
  let norm = Optim.clip_grad_norm ~max_norm:1.0 [ g ] in
  Test_util.check_close ~msg:"pre-clip norm" 5.0 norm;
  Test_util.check_close ~msg:"clipped x" 0.6 (Tensor.get g 0 0);
  Test_util.check_close ~msg:"clipped y" 0.8 (Tensor.get g 0 1);
  let g2 = Tensor.of_array ~batch:1 ~width:2 [| 0.3; 0.4 |] in
  ignore (Optim.clip_grad_norm ~max_norm:1.0 [ g2 ]);
  Test_util.check_close ~msg:"under threshold untouched" 0.3 (Tensor.get g2 0 0)

let () =
  Alcotest.run "autodiff"
    ([
       ( "behaviour",
         [
           Alcotest.test_case "backward seeds ones" `Quick test_backward_seeds_ones;
           Alcotest.test_case "fan-out accumulates" `Quick test_grad_accumulates_fanout;
           Alcotest.test_case "const blocks grad" `Quick test_const_blocks_grad;
           Alcotest.test_case "node count" `Quick test_node_count;
           Alcotest.test_case "double backward raises" `Quick test_double_backward_raises;
           Alcotest.test_case "ir records ops" `Quick test_ir_records_ops;
         ] );
       ( "optim",
         [
           Alcotest.test_case "adam minimises quadratic" `Quick test_adam_minimises_quadratic;
           Alcotest.test_case "sgd step" `Quick test_sgd_step;
           Alcotest.test_case "clip_grad_norm" `Quick test_clip_grad_norm;
         ] );
     ]
    @ [
        ( "gradients",
          pointwise_grads
          @ [ relu_grad; log_safe_grad; entropy_grad ]
          @ segment_grads
          @ [
              segment_softmax_weighted_grad;
              segment_max_grad;
              linear_grads;
              matrix_of_entries_grad;
              mse_grad;
            ] );
      ])
