(* Tests for the supervision runtime: fault plans, health logs, the
   supervisor, and the recovery paths they drive through the extraction
   stack (numeric guards, OOM derating, solver stalls, clock skew). *)

let small_graph () = (Registry.find_instance "mcm_8").Registry.build ()

let quick_cfg =
  { Smoothe_config.default with Smoothe_config.max_iters = 30; batch = 4; patience = 50 }

(* --- fault plans ------------------------------------------------------ *)

let test_plan_parse () =
  let p = Fault_plan.of_string "nan@10,mem@8,stall,skew@30" in
  Alcotest.(check bool)
    "all four atoms" true
    (p
    = [
        Fault_plan.Nan_grad 10;
        Fault_plan.Mem_pressure 8.0;
        Fault_plan.Solver_stall;
        Fault_plan.Clock_skew 30.0;
      ]);
  Alcotest.(check bool) "empty is none" true (Fault_plan.is_none (Fault_plan.of_string ""));
  Alcotest.(check bool) "none is none" true (Fault_plan.is_none (Fault_plan.of_string "none"));
  Alcotest.(check string)
    "round trip" "nan@10,mem@8,stall,skew@30"
    (Fault_plan.to_string (Fault_plan.of_string "nan@10, mem@8, stall, skew@30"))

let test_plan_parse_errors () =
  let rejects spec =
    Alcotest.(check bool)
      (Printf.sprintf "rejects %S" spec)
      true
      (match Fault_plan.of_string spec with
      | _ -> false
      | exception Invalid_argument _ -> true)
  in
  rejects "nan";
  rejects "nan@x";
  rejects "nan@0";
  rejects "mem@-1";
  rejects "bogus";
  rejects "stall@3"

let test_plan_determinism () =
  (* same plan, same firing point, twice *)
  let fire_at_which_backward () =
    Fault_plan.with_plan
      [ Fault_plan.Nan_grad 3 ]
      (fun () ->
        let fired = ref 0 in
        for pass = 1 to 5 do
          if Fault_plan.on_backward () then fired := pass
        done;
        !fired)
  in
  Alcotest.(check int) "fires on pass 3" 3 (fire_at_which_backward ());
  Alcotest.(check int) "replays identically" 3 (fire_at_which_backward ());
  Alcotest.(check bool)
    "records the injection" true
    (Fault_plan.with_plan
       [ Fault_plan.Nan_grad 1 ]
       (fun () ->
         ignore (Fault_plan.on_backward ());
         Fault_plan.drain_injections () <> []))

(* --- health log ------------------------------------------------------- *)

let test_health_log () =
  let log = Health.create () in
  Alcotest.(check bool) "fresh log empty" true (Health.is_empty log);
  Alcotest.(check string) "healthy summary" "healthy" (Health.summary log);
  Health.record log ~member:"smoothe" Health.Nan_detected "iteration 4";
  Health.record log ~member:"smoothe" Health.Recovery "adam reset";
  Health.record log ~member:"ilp" Health.Timeout "budget gone";
  Alcotest.(check int) "count by kind" 1 (Health.count log Health.Recovery);
  Alcotest.(check int) "count by member" 0 (Health.count ~member:"ilp" log Health.Recovery);
  Alcotest.(check int) "recoveries" 1 (Health.recoveries log);
  let events = Health.events log in
  Alcotest.(check int) "three events" 3 (List.length events);
  Alcotest.(check bool)
    "chronological" true
    (List.for_all2
       (fun a b -> a.Health.at <= b.Health.at)
       (List.filteri (fun i _ -> i < 2) events)
       (List.tl events));
  let into = Health.create () in
  Health.merge ~into log;
  Alcotest.(check int) "merge keeps all" 3 (List.length (Health.events into))

let test_health_merge_rebase () =
  (* Regression: merge used to copy [at] verbatim, so events from a log
     created later appeared to predate the destination's own earlier
     entries. A source event must be rebased onto the destination's
     creation epoch. The clock is advanced with Timer.set_skew rather
     than by sleeping. *)
  Fun.protect ~finally:(fun () -> Timer.set_skew 0.0) @@ fun () ->
  Timer.set_skew 0.0;
  let into = Health.create () in
  Health.record into ~member:"a" Health.Recovery "early";
  Timer.set_skew 10.0;
  let src = Health.create () in
  Health.record src ~member:"b" Health.Timeout "late";
  Health.merge ~into src;
  match Health.events into with
  | [ early; late ] ->
      Alcotest.(check string) "destination event first" "a" early.Health.member;
      Alcotest.(check bool)
        "rebased onto destination epoch" true
        (late.Health.at >= 10.0);
      Alcotest.(check bool) "timeline consistent" true (early.Health.at < late.Health.at)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

(* --- supervisor ------------------------------------------------------- *)

let test_supervisor_finished () =
  let log = Health.create () in
  let outcome = Supervisor.run ~health:log ~name:"m" ~budget:10.0 (fun _dl -> 42) in
  Alcotest.(check int) "value" 42 (Supervisor.value ~default:0 outcome);
  Alcotest.(check int) "no timeout" 0 (Health.count log Health.Timeout)

let test_supervisor_crash () =
  let log = Health.create () in
  let outcome =
    Supervisor.run ~health:log ~name:"m" ~budget:10.0 (fun _dl -> failwith "boom")
  in
  Alcotest.(check int) "default on crash" 7 (Supervisor.value ~default:7 outcome);
  Alcotest.(check int) "member-failed event" 1 (Health.count log Health.Member_failed)

let test_supervisor_timeout () =
  let log = Health.create () in
  let outcome =
    Supervisor.run ~health:log ~name:"m" ~budget:0.02 (fun dl ->
        Timer.sleep_until dl;
        "done")
  in
  Alcotest.(check string) "still returns" "done" (Supervisor.value ~default:"" outcome);
  Alcotest.(check int) "timeout event" 1 (Health.count log Health.Timeout)

let test_clock_skew () =
  Fault_plan.with_plan
    [ Fault_plan.Clock_skew 60.0 ]
    (fun () ->
      let log = Health.create () in
      let expired_on_entry = ref false in
      let _ =
        Supervisor.run ~health:log ~name:"m" ~budget:5.0 (fun dl ->
            expired_on_entry := Timer.expired dl)
      in
      Alcotest.(check bool) "skew expires the armed deadline" true !expired_on_entry;
      Alcotest.(check int) "fault recorded" 1 (Health.count log Health.Fault_injected);
      Alcotest.(check int) "timeout recorded" 1 (Health.count log Health.Timeout));
  Alcotest.(check (float 1e-9)) "skew undone after the plan" 0.0 (Timer.get_skew ())

(* --- timer ------------------------------------------------------------ *)

let test_timer_poll () =
  let d = Timer.deadline_after 0.0 (* infinite *) in
  Alcotest.(check bool) "never expires" false (Timer.poll d Timer.check_every);
  let expired = Timer.deadline_after 1e-9 in
  Timer.sleep_until expired;
  Alcotest.(check bool) "off the mask" false (Timer.poll expired (Timer.check_every + 1));
  Alcotest.(check bool) "on the mask" true (Timer.poll expired (2 * Timer.check_every))

(* --- numeric recovery in the smoothe loop ----------------------------- *)

let test_nan_recovery () =
  let g = small_graph () in
  let clean = Smoothe_extract.extract ~config:quick_cfg g in
  Fault_plan.with_plan
    [ Fault_plan.Nan_grad 3 ]
    (fun () ->
      let run = Smoothe_extract.extract ~config:quick_cfg g in
      Alcotest.(check bool) "survives the poisoned pass" true
        (run.Smoothe_extract.result.Extractor.solution <> None);
      Alcotest.(check bool) "recovery counted" true (run.Smoothe_extract.recoveries >= 1);
      Alcotest.(check bool) "injection logged" true
        (List.exists
           (fun e -> e.Health.kind = Health.Fault_injected)
           run.Smoothe_extract.health);
      Alcotest.(check bool) "nan detected" true
        (List.exists
           (fun e -> e.Health.kind = Health.Nan_detected)
           run.Smoothe_extract.health);
      Alcotest.(check bool) "recovery noted on result" true
        (List.mem_assoc "recoveries" run.Smoothe_extract.result.Extractor.notes);
      (* history still covers every iteration *)
      Alcotest.(check int) "history covers every iteration"
        run.Smoothe_extract.iterations
        (List.length run.Smoothe_extract.history));
  (* the ambient plan leaks nothing: a fault-free rerun is identical *)
  let after = Smoothe_extract.extract ~config:quick_cfg g in
  Alcotest.(check (float 1e-12)) "same cost after faulted run"
    clean.Smoothe_extract.result.Extractor.cost after.Smoothe_extract.result.Extractor.cost;
  Alcotest.(check int) "same iterations" clean.Smoothe_extract.iterations
    after.Smoothe_extract.iterations;
  Alcotest.(check int) "same best seed" clean.Smoothe_extract.best_seed
    after.Smoothe_extract.best_seed;
  Alcotest.(check int) "no recoveries" 0 after.Smoothe_extract.recoveries;
  Alcotest.(check bool) "healthy" true (after.Smoothe_extract.health = [])

let test_mem_pressure_derates () =
  let g = small_graph () in
  let fp () =
    Device.footprint g ~prop_iters:10 ~scc_decomposition:true ~batched_matexp:true
  in
  let base = fp () in
  Fault_plan.with_plan
    [ Fault_plan.Mem_pressure 4.0 ]
    (fun () ->
      let scaled = fp () in
      Alcotest.(check (float 1.0)) "per-seed bytes scale"
        (4.0 *. base.Device.per_seed_bytes)
        scaled.Device.per_seed_bytes;
      Alcotest.(check (float 1.0)) "matexp bytes scale"
        (4.0 *. base.Device.matexp_bytes)
        scaled.Device.matexp_bytes)

let test_solver_stall () =
  (* a stalled LP burns its deadline and reports timeout, but a
     warm-started branch-and-bound still returns its incumbent *)
  let g = small_graph () in
  let warm = (Greedy_dag.extract g).Extractor.solution in
  Fault_plan.with_plan
    [ Fault_plan.Solver_stall ]
    (fun () ->
      let r = Ilp.extract ~time_limit:0.05 ?warm_start:warm ~profile:Bnb.cplex_like g in
      Alcotest.(check bool) "keeps the warm incumbent" true (r.Extractor.solution <> None);
      Alcotest.(check bool) "not proved optimal" false r.Extractor.proved_optimal;
      Alcotest.(check bool) "stall recorded" true
        (List.exists
           (fun s ->
             let has_sub sub =
               let n = String.length s and m = String.length sub in
               let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
               go 0
             in
             has_sub "stall")
           (Fault_plan.drain_injections ())))

(* --- the supervised portfolio ----------------------------------------- *)

let portfolio_cfg =
  {
    Portfolio.default_config with
    Portfolio.time_budget = 2.0;
    use_genetic = false;
    smoothe = quick_cfg;
  }

let check_valid_best (out : Portfolio.outcome) =
  let g = small_graph () in
  match out.Portfolio.best.Extractor.solution with
  | None -> Alcotest.fail "portfolio returned no solution"
  | Some s -> Alcotest.(check bool) "valid extraction" true (Egraph.Solution.is_valid g s)

let test_portfolio_under_faults () =
  let g = small_graph () in
  List.iter
    (fun plan ->
      Fault_plan.with_plan (Fault_plan.of_string plan) (fun () ->
          let out = Portfolio.extract ~config:portfolio_cfg (Rng.create 11) g in
          check_valid_best out;
          Alcotest.(check bool)
            (Printf.sprintf "health log non-empty under %S" plan)
            false (out.Portfolio.health = []);
          Alcotest.(check bool) "heuristic member present" true
            (List.exists
               (fun m -> m.Portfolio.member_name = "heuristic")
               out.Portfolio.members)))
    [ "nan@3"; "mem@1e15"; "stall"; "skew@60" ]

let test_portfolio_member_crash () =
  (* a NaN-poisoned model crashes nothing: members degrade or quarantine,
     and the portfolio still answers with the greedy result *)
  let g = small_graph () in
  let out = Portfolio.extract ~config:portfolio_cfg (Rng.create 11) g in
  Alcotest.(check bool) "every member has a status" true
    (List.for_all
       (fun m ->
         match m.Portfolio.status with
         | Portfolio.Completed | Portfolio.Timed_out | Portfolio.Faulted _ -> true)
       out.Portfolio.members);
  check_valid_best out

let () =
  Alcotest.run "runtime"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "parse" `Quick test_plan_parse;
          Alcotest.test_case "parse errors" `Quick test_plan_parse_errors;
          Alcotest.test_case "determinism" `Quick test_plan_determinism;
        ] );
      ( "health",
        [
          Alcotest.test_case "log" `Quick test_health_log;
          Alcotest.test_case "merge rebases timestamps" `Quick test_health_merge_rebase;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "finished" `Quick test_supervisor_finished;
          Alcotest.test_case "crash" `Quick test_supervisor_crash;
          Alcotest.test_case "timeout" `Quick test_supervisor_timeout;
          Alcotest.test_case "clock skew" `Quick test_clock_skew;
          Alcotest.test_case "timer poll" `Quick test_timer_poll;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "nan recovery" `Quick test_nan_recovery;
          Alcotest.test_case "mem pressure" `Quick test_mem_pressure_derates;
          Alcotest.test_case "solver stall" `Quick test_solver_stall;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "under faults" `Quick test_portfolio_under_faults;
          Alcotest.test_case "member statuses" `Quick test_portfolio_member_crash;
        ] );
    ]
