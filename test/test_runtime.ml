(* Tests for the supervision runtime: fault plans, health logs, the
   supervisor, and the recovery paths they drive through the extraction
   stack (numeric guards, OOM derating, solver stalls, clock skew). *)

let small_graph () = (Registry.find_instance "mcm_8").Registry.build ()

let quick_cfg =
  { Smoothe_config.default with Smoothe_config.max_iters = 30; batch = 4; patience = 50 }

(* --- fault plans ------------------------------------------------------ *)

let test_plan_parse () =
  let p = Fault_plan.of_string "nan@10,mem@8,stall,skew@30" in
  Alcotest.(check bool)
    "all four atoms" true
    (p
    = [
        Fault_plan.Nan_grad 10;
        Fault_plan.Mem_pressure 8.0;
        Fault_plan.Solver_stall;
        Fault_plan.Clock_skew 30.0;
      ]);
  Alcotest.(check bool) "empty is none" true (Fault_plan.is_none (Fault_plan.of_string ""));
  Alcotest.(check bool) "none is none" true (Fault_plan.is_none (Fault_plan.of_string "none"));
  Alcotest.(check string)
    "round trip" "nan@10,mem@8,stall,skew@30"
    (Fault_plan.to_string (Fault_plan.of_string "nan@10, mem@8, stall, skew@30"))

let test_plan_parse_errors () =
  let rejects spec =
    Alcotest.(check bool)
      (Printf.sprintf "rejects %S" spec)
      true
      (match Fault_plan.of_string spec with
      | _ -> false
      | exception Invalid_argument _ -> true)
  in
  rejects "nan";
  rejects "nan@x";
  rejects "nan@0";
  rejects "nan@-1";
  rejects "nan@2.5";
  rejects "mem@-1";
  rejects "mem@0";
  rejects "mem@inf";
  rejects "mem@nan";
  rejects "bogus";
  rejects "stall@3";
  rejects "crash";
  rejects "crash@0";
  rejects "crash@x";
  rejects "torn-write@3";
  (* one atom per fault family: the second would silently shadow *)
  rejects "nan@3,nan@5";
  rejects "crash@2,crash@9";
  rejects "torn,torn-write"

let test_plan_parse_durability () =
  Alcotest.(check bool)
    "crash and torn-write parse" true
    (Fault_plan.of_string "crash@13,torn-write"
    = [ Fault_plan.Crash_at 13; Fault_plan.Torn_write ]);
  Alcotest.(check bool)
    "torn is an alias" true
    (Fault_plan.of_string "torn" = [ Fault_plan.Torn_write ]);
  Alcotest.(check string)
    "round trip" "crash@13,torn-write"
    (Fault_plan.to_string (Fault_plan.of_string "crash@13, torn"))

let test_crash_fires_once () =
  Fault_plan.with_plan
    [ Fault_plan.Crash_at 3 ]
    (fun () ->
      Fault_plan.crash_now ~iter:1;
      Fault_plan.crash_now ~iter:2;
      (match Fault_plan.crash_now ~iter:3 with
      | () -> Alcotest.fail "crash@3 did not fire at iteration 3"
      | exception Fault_plan.Injected_crash k -> Alcotest.(check int) "carries iter" 3 k);
      (* one-shot: the resumed run replays past K without crashing again *)
      Fault_plan.crash_now ~iter:3;
      Fault_plan.crash_now ~iter:4;
      Alcotest.(check bool) "injection recorded" true (Fault_plan.drain_injections () <> []));
  (* no ambient leak once the plan is cleared *)
  Fault_plan.crash_now ~iter:3

let test_torn_write_fires_once () =
  Fault_plan.with_plan
    [ Fault_plan.Torn_write ]
    (fun () ->
      Alcotest.(check bool) "first write torn" true (Fault_plan.torn_write ());
      Alcotest.(check bool) "second write clean" false (Fault_plan.torn_write ()));
  Alcotest.(check bool) "no plan, no tearing" false (Fault_plan.torn_write ())

let test_plan_determinism () =
  (* same plan, same firing point, twice *)
  let fire_at_which_backward () =
    Fault_plan.with_plan
      [ Fault_plan.Nan_grad 3 ]
      (fun () ->
        let fired = ref 0 in
        for pass = 1 to 5 do
          if Fault_plan.on_backward () then fired := pass
        done;
        !fired)
  in
  Alcotest.(check int) "fires on pass 3" 3 (fire_at_which_backward ());
  Alcotest.(check int) "replays identically" 3 (fire_at_which_backward ());
  Alcotest.(check bool)
    "records the injection" true
    (Fault_plan.with_plan
       [ Fault_plan.Nan_grad 1 ]
       (fun () ->
         ignore (Fault_plan.on_backward ());
         Fault_plan.drain_injections () <> []))

(* --- health log ------------------------------------------------------- *)

let test_health_log () =
  let log = Health.create () in
  Alcotest.(check bool) "fresh log empty" true (Health.is_empty log);
  Alcotest.(check string) "healthy summary" "healthy" (Health.summary log);
  Health.record log ~member:"smoothe" Health.Nan_detected "iteration 4";
  Health.record log ~member:"smoothe" Health.Recovery "adam reset";
  Health.record log ~member:"ilp" Health.Timeout "budget gone";
  Alcotest.(check int) "count by kind" 1 (Health.count log Health.Recovery);
  Alcotest.(check int) "count by member" 0 (Health.count ~member:"ilp" log Health.Recovery);
  Alcotest.(check int) "recoveries" 1 (Health.recoveries log);
  let events = Health.events log in
  Alcotest.(check int) "three events" 3 (List.length events);
  Alcotest.(check bool)
    "chronological" true
    (List.for_all2
       (fun a b -> a.Health.at <= b.Health.at)
       (List.filteri (fun i _ -> i < 2) events)
       (List.tl events));
  let into = Health.create () in
  Health.merge ~into log;
  Alcotest.(check int) "merge keeps all" 3 (List.length (Health.events into))

let test_health_merge_rebase () =
  (* Regression: merge used to copy [at] verbatim, so events from a log
     created later appeared to predate the destination's own earlier
     entries. A source event must be rebased onto the destination's
     creation epoch. The clock is advanced with Timer.set_skew rather
     than by sleeping. *)
  Fun.protect ~finally:(fun () -> Timer.set_skew 0.0) @@ fun () ->
  Timer.set_skew 0.0;
  let into = Health.create () in
  Health.record into ~member:"a" Health.Recovery "early";
  Timer.set_skew 10.0;
  let src = Health.create () in
  Health.record src ~member:"b" Health.Timeout "late";
  Health.merge ~into src;
  match Health.events into with
  | [ early; late ] ->
      Alcotest.(check string) "destination event first" "a" early.Health.member;
      Alcotest.(check bool)
        "rebased onto destination epoch" true
        (late.Health.at >= 10.0);
      Alcotest.(check bool) "timeline consistent" true (early.Health.at < late.Health.at)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

(* --- supervisor ------------------------------------------------------- *)

let test_supervisor_finished () =
  let log = Health.create () in
  let outcome = Supervisor.run ~health:log ~name:"m" ~budget:10.0 (fun _dl -> 42) in
  Alcotest.(check int) "value" 42 (Supervisor.value ~default:0 outcome);
  Alcotest.(check int) "no timeout" 0 (Health.count log Health.Timeout)

let test_supervisor_crash () =
  let log = Health.create () in
  let outcome =
    Supervisor.run ~health:log ~name:"m" ~budget:10.0 (fun _dl -> failwith "boom")
  in
  Alcotest.(check int) "default on crash" 7 (Supervisor.value ~default:7 outcome);
  Alcotest.(check int) "member-failed event" 1 (Health.count log Health.Member_failed)

let test_supervisor_timeout () =
  let log = Health.create () in
  let outcome =
    Supervisor.run ~health:log ~name:"m" ~budget:0.02 (fun dl ->
        Timer.sleep_until dl;
        "done")
  in
  Alcotest.(check string) "still returns" "done" (Supervisor.value ~default:"" outcome);
  Alcotest.(check int) "timeout event" 1 (Health.count log Health.Timeout)

let test_clock_skew () =
  Fault_plan.with_plan
    [ Fault_plan.Clock_skew 60.0 ]
    (fun () ->
      let log = Health.create () in
      let expired_on_entry = ref false in
      let _ =
        Supervisor.run ~health:log ~name:"m" ~budget:5.0 (fun dl ->
            expired_on_entry := Timer.expired dl)
      in
      Alcotest.(check bool) "skew expires the armed deadline" true !expired_on_entry;
      Alcotest.(check int) "fault recorded" 1 (Health.count log Health.Fault_injected);
      Alcotest.(check int) "timeout recorded" 1 (Health.count log Health.Timeout));
  Alcotest.(check (float 1e-9)) "skew undone after the plan" 0.0 (Timer.get_skew ())

let test_supervisor_crash_then_timeout () =
  (* a member that burns its budget and then dies: the failure event
     must precede the timeout event, and [value] falls back *)
  let log = Health.create () in
  let outcome =
    Supervisor.run ~health:log ~name:"m" ~budget:0.02 (fun dl ->
        Timer.sleep_until dl;
        failwith "boom")
  in
  Alcotest.(check int) "default on crash" 9 (Supervisor.value ~default:9 outcome);
  (match outcome with
  | Supervisor.Crashed { exn } ->
      Alcotest.(check bool) "exn captured" true (String.length exn > 0)
  | Supervisor.Finished _ -> Alcotest.fail "expected Crashed");
  let kinds = List.map (fun e -> e.Health.kind) (Health.events log) in
  Alcotest.(check bool)
    "member-failed strictly before timeout" true
    (kinds = [ Health.Member_failed; Health.Timeout ])

let test_run_retrying_eventual_success () =
  let log = Health.create () in
  let seen = ref [] in
  let outcome =
    Supervisor.run_retrying ~health:log ~rng:(Rng.create 3) ~attempts:3 ~backoff:0.001
      ~name:"m" ~budget:10.0
      (fun ~attempt _dl ->
        seen := attempt :: !seen;
        if attempt < 2 then failwith "flaky" else attempt)
  in
  Alcotest.(check int) "third attempt wins" 2 (Supervisor.value ~default:(-1) outcome);
  Alcotest.(check (list int)) "attempts in order" [ 0; 1; 2 ] (List.rev !seen);
  Alcotest.(check int) "two failures" 2 (Health.count log Health.Member_failed);
  Alcotest.(check int) "two retries" 2 (Health.count log Health.Recovery);
  Alcotest.(check int) "no timeout" 0 (Health.count log Health.Timeout)

let test_run_retrying_exhausted () =
  let log = Health.create () in
  let calls = ref 0 in
  let outcome =
    Supervisor.run_retrying ~health:log ~attempts:2 ~backoff:0.001 ~name:"m" ~budget:10.0
      (fun ~attempt:_ _dl ->
        incr calls;
        failwith "always")
  in
  (match outcome with
  | Supervisor.Crashed _ -> ()
  | Supervisor.Finished _ -> Alcotest.fail "expected exhaustion");
  Alcotest.(check int) "exactly two calls" 2 !calls;
  Alcotest.(check int) "both failures logged" 2 (Health.count log Health.Member_failed);
  Alcotest.(check int) "one retry between them" 1 (Health.count log Health.Recovery)

let test_run_retrying_backoff_cap () =
  let max_backoff = 0.02 in
  (* the Recovery detail records the exact pause, so the sleep sequence
     is observable without timing anything *)
  let pauses seed =
    let log = Health.create () in
    let outcome =
      Supervisor.run_retrying ~health:log ~rng:(Rng.create seed) ~attempts:6
        ~backoff:0.004 ~max_backoff ~name:"m" ~budget:10.0
        (fun ~attempt:_ _dl -> failwith "always")
    in
    (match outcome with
    | Supervisor.Crashed _ -> ()
    | Supervisor.Finished _ -> Alcotest.fail "expected exhaustion");
    List.filter_map
      (fun e ->
        if e.Health.kind = Health.Recovery then
          Some
            (Scanf.sscanf e.Health.detail "retrying (attempt %d/%d) after %fs backoff"
               (fun _ _ p -> p))
        else None)
      (Health.events log)
  in
  let ps = pauses 11 in
  Alcotest.(check int) "five retries recorded" 5 (List.length ps);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "pause %.3f bounded by cap" p)
        true
        (p <= max_backoff +. 1e-9))
    ps;
  (* exponential growth from 0.004 doubles past the cap by attempt 3, so
     saturation must actually occur *)
  Alcotest.(check bool)
    "cap reached" true
    (List.exists (fun p -> Float.abs (p -. max_backoff) <= 1e-9) ps);
  Alcotest.(check (list (float 1e-12))) "deterministic under fixed rng" ps (pauses 11);
  Alcotest.check_raises "zero cap rejected"
    (Invalid_argument "Supervisor.run_retrying: max_backoff must be positive and finite")
    (fun () ->
      ignore
        (Supervisor.run_retrying ~max_backoff:0.0 ~name:"m" ~budget:1.0
           (fun ~attempt:_ _dl -> ())))

(* --- checkpoints ------------------------------------------------------- *)

let with_tmpdir f =
  let dir = Filename.temp_file "smoothe-ckpt" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let mk_snapshot ?(iter = 10) () =
  {
    Checkpoint.fingerprint =
      { Checkpoint.fp_graph = "g"; fp_nodes = 4; fp_classes = 2; fp_seed = 1; fp_batch = 2 };
    iter;
    elapsed = 1.5;
    rng_state = [| 1L; 2L; 3L; 4L |];
    theta = Tensor.of_array ~batch:2 ~width:2 [| 0.1; 0.2; 0.3; 0.4 |];
    adam_m = Tensor.of_array ~batch:2 ~width:2 [| 0.0; 0.0; 0.1; -0.1 |];
    adam_v = Tensor.of_array ~batch:2 ~width:2 [| 0.5; 0.5; 0.5; 0.5 |];
    adam_step = 3;
    adam_lr = 0.05;
    best_cost = 42.0;
    best_seed = 1;
    best_choice = Some [| Some 0; None |];
    last_improvement = 8;
    recoveries = 0;
    ladder_rung = 0;
    loss_time = 0.01;
    grad_time = 0.02;
    sample_time = 0.003;
    trace = [ (0.1, 50.0); (0.4, 42.0) ];
    history = [ (1, 0.1, 1.0, 50.0, 50.0); (2, 0.4, 0.9, 42.0, 42.0) ];
    health = [ { Health.at = 0.2; member = "smoothe"; kind = Health.Recovery; detail = "x" } ];
  }

(* floats compare bitwise so NaN payloads and signed zeros round-trip *)
let feq a b = Int64.bits_of_float a = Int64.bits_of_float b

let teq a b =
  a.Tensor.batch = b.Tensor.batch
  && a.Tensor.width = b.Tensor.width
  && Array.for_all2 feq (Tensor.unsafe_data a) (Tensor.unsafe_data b)

let snapshot_equal (a : Checkpoint.snapshot) (b : Checkpoint.snapshot) =
  a.Checkpoint.fingerprint = b.Checkpoint.fingerprint
  && a.Checkpoint.iter = b.Checkpoint.iter
  && feq a.Checkpoint.elapsed b.Checkpoint.elapsed
  && a.Checkpoint.rng_state = b.Checkpoint.rng_state
  && teq a.Checkpoint.theta b.Checkpoint.theta
  && teq a.Checkpoint.adam_m b.Checkpoint.adam_m
  && teq a.Checkpoint.adam_v b.Checkpoint.adam_v
  && a.Checkpoint.adam_step = b.Checkpoint.adam_step
  && feq a.Checkpoint.adam_lr b.Checkpoint.adam_lr
  && feq a.Checkpoint.best_cost b.Checkpoint.best_cost
  && a.Checkpoint.best_seed = b.Checkpoint.best_seed
  && a.Checkpoint.best_choice = b.Checkpoint.best_choice
  && a.Checkpoint.last_improvement = b.Checkpoint.last_improvement
  && a.Checkpoint.recoveries = b.Checkpoint.recoveries
  && a.Checkpoint.ladder_rung = b.Checkpoint.ladder_rung
  && feq a.Checkpoint.loss_time b.Checkpoint.loss_time
  && feq a.Checkpoint.grad_time b.Checkpoint.grad_time
  && feq a.Checkpoint.sample_time b.Checkpoint.sample_time
  && List.for_all2
       (fun (t1, c1) (t2, c2) -> feq t1 t2 && feq c1 c2)
       a.Checkpoint.trace b.Checkpoint.trace
  && List.for_all2
       (fun (i1, e1, r1, s1, n1) (i2, e2, r2, s2, n2) ->
         i1 = i2 && feq e1 e2 && feq r1 r2 && feq s1 s2 && feq n1 n2)
       a.Checkpoint.history b.Checkpoint.history
  && List.for_all2
       (fun (x : Health.event) (y : Health.event) ->
         feq x.Health.at y.Health.at
         && x.Health.member = y.Health.member
         && x.Health.kind = y.Health.kind
         && x.Health.detail = y.Health.detail)
       a.Checkpoint.health b.Checkpoint.health
  && List.length a.Checkpoint.trace = List.length b.Checkpoint.trace
  && List.length a.Checkpoint.history = List.length b.Checkpoint.history
  && List.length a.Checkpoint.health = List.length b.Checkpoint.health

let test_checkpoint_roundtrip () =
  let snap = mk_snapshot () in
  match Checkpoint.deserialize (Checkpoint.serialize snap) with
  | Ok got -> Alcotest.(check bool) "identical snapshot" true (snapshot_equal snap got)
  | Error msg -> Alcotest.failf "round trip failed: %s" msg

let test_checkpoint_frame_errors () =
  let data = Checkpoint.serialize (mk_snapshot ()) in
  let fails what s =
    match Checkpoint.deserialize s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  fails "empty file" "";
  fails "short header" (String.sub data 0 10);
  fails "torn tail" (String.sub data 0 (String.length data / 2));
  let bad_magic = Bytes.of_string data in
  Bytes.set bad_magic 0 'X';
  fails "bad magic" (Bytes.to_string bad_magic);
  let bad_version = Bytes.of_string data in
  Bytes.set bad_version 4 '\xEE';
  fails "version skew" (Bytes.to_string bad_version);
  let flipped = Bytes.of_string data in
  let i = 20 + ((String.length data - 20) / 2) in
  Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 0x10));
  fails "payload bit flip" (Bytes.to_string flipped)

let test_store_validation () =
  with_tmpdir @@ fun dir ->
  let rejects k n =
    match Checkpoint.store ~keep:k ~dir ~name:n () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "keep 0" true (rejects 0 "ok");
  Alcotest.(check bool) "slash in name" true (rejects 3 "a/b");
  Alcotest.(check bool) "empty name" true (rejects 3 "");
  Alcotest.(check bool) "valid" false (rejects 2 "ok")

let test_store_rotation () =
  with_tmpdir @@ fun dir ->
  let st = Checkpoint.store ~keep:2 ~dir ~name:"rot" () in
  Alcotest.(check int) "gen 1" 1 (Checkpoint.save st (mk_snapshot ~iter:1 ()));
  Alcotest.(check int) "gen 2" 2 (Checkpoint.save st (mk_snapshot ~iter:2 ()));
  Alcotest.(check int) "gen 3" 3 (Checkpoint.save st (mk_snapshot ~iter:3 ()));
  Alcotest.(check int) "only keep newest two" 2 (Array.length (Sys.readdir dir));
  match Checkpoint.load_latest st with
  | Some (snap, gen) ->
      Alcotest.(check int) "latest generation" 3 gen;
      Alcotest.(check int) "latest snapshot" 3 snap.Checkpoint.iter
  | None -> Alcotest.fail "no snapshot loaded"

let corrupt_file path =
  let ic = open_in_bin path in
  let data = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
  close_in ic;
  let i = Bytes.length data - 1 in
  Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor 0x01));
  let oc = open_out_bin path in
  output_bytes oc data;
  close_out oc

let test_corrupt_falls_back () =
  with_tmpdir @@ fun dir ->
  let st = Checkpoint.store ~dir ~name:"fb" () in
  ignore (Checkpoint.save st (mk_snapshot ~iter:1 ()));
  ignore (Checkpoint.save st (mk_snapshot ~iter:2 ()));
  corrupt_file (Filename.concat dir "fb.00000002.ckpt");
  let log = Health.create () in
  (match Checkpoint.load_latest ~health:log st with
  | Some (snap, gen) ->
      Alcotest.(check int) "older generation" 1 gen;
      Alcotest.(check int) "older snapshot" 1 snap.Checkpoint.iter
  | None -> Alcotest.fail "fallback generation not loaded");
  Alcotest.(check int) "corruption surfaced" 1 (Health.count log Health.Checkpoint_corrupt)

let test_torn_write_falls_back () =
  with_tmpdir @@ fun dir ->
  let st = Checkpoint.store ~dir ~name:"torn" () in
  ignore (Checkpoint.save st (mk_snapshot ~iter:1 ()));
  Fault_plan.with_plan
    [ Fault_plan.Torn_write ]
    (fun () -> ignore (Checkpoint.save st (mk_snapshot ~iter:2 ())));
  ignore (Fault_plan.drain_injections ());
  let log = Health.create () in
  (match Checkpoint.load_latest ~health:log st with
  | Some (snap, gen) ->
      Alcotest.(check int) "previous generation survives" 1 gen;
      Alcotest.(check int) "previous snapshot" 1 snap.Checkpoint.iter
  | None -> Alcotest.fail "no usable generation after torn write");
  Alcotest.(check int) "torn write surfaced" 1 (Health.count log Health.Checkpoint_corrupt)

(* random snapshots for the codec properties *)
let snapshot_gen =
  let open QCheck2.Gen in
  let f64 = float in
  let tensor =
    pair (int_range 1 3) (int_range 1 4) >>= fun (batch, width) ->
    array_repeat (batch * width) f64 >|= fun xs -> Tensor.of_array ~batch ~width xs
  in
  let kind =
    oneofl
      [
        Health.Fault_injected; Health.Nan_detected; Health.Recovery; Health.Oom_derate;
        Health.Timeout; Health.Member_failed; Health.Budget_reallocated; Health.Degraded;
        Health.Checkpoint_corrupt; Health.Resumed;
      ]
  in
  let small_string = string_size ~gen:(char_range 'a' 'z') (int_range 0 8) in
  let event =
    f64 >>= fun at ->
    small_string >>= fun member ->
    kind >>= fun kind ->
    small_string >|= fun detail -> { Health.at; member; kind; detail }
  in
  let choice =
    option (list_size (int_range 0 6) (option (int_range 0 1000)) >|= Array.of_list)
  in
  small_string >>= fun fp_graph ->
  int_range 1 1000 >>= fun fp_nodes ->
  int_range 1 1000 >>= fun fp_classes ->
  int_range 0 9999 >>= fun fp_seed ->
  int_range 1 64 >>= fun fp_batch ->
  int_range 0 10_000 >>= fun iter ->
  f64 >>= fun elapsed ->
  array_repeat 4 (map Int64.of_int int) >>= fun rng_words ->
  tensor >>= fun theta ->
  tensor >>= fun adam_m ->
  tensor >>= fun adam_v ->
  int_range 0 10_000 >>= fun adam_step ->
  f64 >>= fun adam_lr ->
  f64 >>= fun best_cost ->
  int_range (-1) 63 >>= fun best_seed ->
  choice >>= fun best_choice ->
  int_range 0 10_000 >>= fun last_improvement ->
  int_range 0 5 >>= fun recoveries ->
  int_range 0 4 >>= fun ladder_rung ->
  f64 >>= fun loss_time ->
  f64 >>= fun grad_time ->
  f64 >>= fun sample_time ->
  list_size (int_range 0 5) (pair f64 f64) >>= fun trace ->
  list_size (int_range 0 5) (pair (pair nat f64) (pair f64 (pair f64 f64)))
  >>= fun raw_history ->
  list_size (int_range 0 4) event >|= fun health ->
  {
    Checkpoint.fingerprint = { Checkpoint.fp_graph; fp_nodes; fp_classes; fp_seed; fp_batch };
    iter; elapsed; rng_state = rng_words; theta; adam_m; adam_v; adam_step; adam_lr;
    best_cost; best_seed; best_choice; last_improvement; recoveries; ladder_rung;
    loss_time; grad_time; sample_time; trace;
    history = List.map (fun ((i, e), (r, (s, n))) -> (i, e, r, s, n)) raw_history;
    health;
  }

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let checkpoint_roundtrip_prop =
  qtest "serialize/deserialize round-trips any snapshot" snapshot_gen (fun snap ->
      match Checkpoint.deserialize (Checkpoint.serialize snap) with
      | Ok got -> snapshot_equal snap got
      | Error _ -> false)

let checkpoint_bitflip_prop =
  qtest "any single bit flip is detected"
    QCheck2.Gen.(pair snapshot_gen (pair nat nat))
    (fun (snap, (i, j)) ->
      let data = Checkpoint.serialize snap in
      let i = i mod String.length data and j = j mod 8 in
      let b = Bytes.of_string data in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl j)));
      match Checkpoint.deserialize (Bytes.to_string b) with
      | Error _ -> true
      | Ok _ -> false)

(* --- crash / resume determinism --------------------------------------- *)

let resume_cfg =
  (* unlimited wall clock: stopping is then a pure function of the seed,
     which is what makes bit-identical resume checkable *)
  { quick_cfg with Smoothe_config.time_limit = 0.0; patience = 50 }

let check_same_run ~msg (clean : Smoothe_extract.run) (resumed : Smoothe_extract.run) =
  Alcotest.(check int) (msg ^ ": iterations") clean.Smoothe_extract.iterations
    resumed.Smoothe_extract.iterations;
  Alcotest.(check int) (msg ^ ": best seed") clean.Smoothe_extract.best_seed
    resumed.Smoothe_extract.best_seed;
  Alcotest.(check bool)
    (msg ^ ": final cost bit-identical")
    true
    (feq clean.Smoothe_extract.result.Extractor.cost
       resumed.Smoothe_extract.result.Extractor.cost);
  Alcotest.(check int) (msg ^ ": recoveries") clean.Smoothe_extract.recoveries
    resumed.Smoothe_extract.recoveries;
  (* full optimisation trajectory, modulo the wall-clock column *)
  Alcotest.(check int) (msg ^ ": history length")
    (List.length clean.Smoothe_extract.history)
    (List.length resumed.Smoothe_extract.history);
  List.iter2
    (fun (a : Smoothe_extract.history_point) (b : Smoothe_extract.history_point) ->
      Alcotest.(check int) (msg ^ ": history iter") a.Smoothe_extract.iter
        b.Smoothe_extract.iter;
      Alcotest.(check bool) (msg ^ ": relaxed loss") true
        (feq a.Smoothe_extract.relaxed_loss b.Smoothe_extract.relaxed_loss);
      Alcotest.(check bool) (msg ^ ": sampled cost") true
        (feq a.Smoothe_extract.sampled_cost b.Smoothe_extract.sampled_cost);
      Alcotest.(check bool) (msg ^ ": incumbent") true
        (feq a.Smoothe_extract.incumbent b.Smoothe_extract.incumbent))
    clean.Smoothe_extract.history resumed.Smoothe_extract.history

let test_resume_determinism () =
  let g = small_graph () in
  let clean = Smoothe_extract.extract ~config:resume_cfg g in
  with_tmpdir @@ fun dir ->
  let st = Checkpoint.store ~dir ~name:"resume" () in
  let log = Health.create () in
  let outcome =
    Fault_plan.with_plan
      [ Fault_plan.Crash_at 13 ]
      (fun () ->
        Supervisor.run_retrying ~health:log ~rng:(Rng.create 1) ~attempts:2 ~backoff:0.001
          ~name:"smoothe" ~budget:0.0
          (fun ~attempt _dl ->
            let resume_from =
              if attempt = 0 then None
              else Option.map fst (Checkpoint.load_latest ~health:log st)
            in
            Smoothe_extract.extract ~config:resume_cfg ~checkpoint:st ~checkpoint_every:5
              ?resume_from g))
  in
  let resumed =
    match outcome with
    | Supervisor.Finished run -> run
    | Supervisor.Crashed { exn } -> Alcotest.failf "retry did not recover: %s" exn
  in
  (* the injected kill actually happened, and the retry resumed *)
  Alcotest.(check bool) "member failure recorded" true
    (Health.count log Health.Member_failed >= 1);
  Alcotest.(check bool) "retry recorded" true (Health.count log Health.Recovery >= 1);
  Alcotest.(check bool) "resume recorded on the run" true
    (List.exists
       (fun e -> e.Health.kind = Health.Resumed)
       resumed.Smoothe_extract.health);
  check_same_run ~msg:"killed@13 vs uninterrupted" clean resumed

let test_resume_rejects_foreign_snapshot () =
  (* a snapshot from a different run must not silently warm-start *)
  let g = small_graph () in
  let clean = Smoothe_extract.extract ~config:resume_cfg g in
  let foreign = { (mk_snapshot ~iter:5 ()) with Checkpoint.best_cost = 0.0 } in
  let run = Smoothe_extract.extract ~config:resume_cfg ~resume_from:foreign g in
  Alcotest.(check bool) "fingerprint mismatch surfaced" true
    (List.exists
       (fun e -> e.Health.kind = Health.Checkpoint_corrupt)
       run.Smoothe_extract.health);
  Alcotest.(check bool) "started fresh (same result as clean)" true
    (feq clean.Smoothe_extract.result.Extractor.cost run.Smoothe_extract.result.Extractor.cost)

(* --- timer ------------------------------------------------------------ *)

let test_timer_poll () =
  let d = Timer.deadline_after 0.0 (* infinite *) in
  Alcotest.(check bool) "never expires" false (Timer.poll d Timer.check_every);
  let expired = Timer.deadline_after 1e-9 in
  Timer.sleep_until expired;
  Alcotest.(check bool) "off the mask" false (Timer.poll expired (Timer.check_every + 1));
  Alcotest.(check bool) "on the mask" true (Timer.poll expired (2 * Timer.check_every))

(* --- numeric recovery in the smoothe loop ----------------------------- *)

let test_nan_recovery () =
  let g = small_graph () in
  let clean = Smoothe_extract.extract ~config:quick_cfg g in
  Fault_plan.with_plan
    [ Fault_plan.Nan_grad 3 ]
    (fun () ->
      let run = Smoothe_extract.extract ~config:quick_cfg g in
      Alcotest.(check bool) "survives the poisoned pass" true
        (run.Smoothe_extract.result.Extractor.solution <> None);
      Alcotest.(check bool) "recovery counted" true (run.Smoothe_extract.recoveries >= 1);
      Alcotest.(check bool) "injection logged" true
        (List.exists
           (fun e -> e.Health.kind = Health.Fault_injected)
           run.Smoothe_extract.health);
      Alcotest.(check bool) "nan detected" true
        (List.exists
           (fun e -> e.Health.kind = Health.Nan_detected)
           run.Smoothe_extract.health);
      Alcotest.(check bool) "recovery noted on result" true
        (List.mem_assoc "recoveries" run.Smoothe_extract.result.Extractor.notes);
      (* history still covers every iteration *)
      Alcotest.(check int) "history covers every iteration"
        run.Smoothe_extract.iterations
        (List.length run.Smoothe_extract.history));
  (* the ambient plan leaks nothing: a fault-free rerun is identical *)
  let after = Smoothe_extract.extract ~config:quick_cfg g in
  Alcotest.(check (float 1e-12)) "same cost after faulted run"
    clean.Smoothe_extract.result.Extractor.cost after.Smoothe_extract.result.Extractor.cost;
  Alcotest.(check int) "same iterations" clean.Smoothe_extract.iterations
    after.Smoothe_extract.iterations;
  Alcotest.(check int) "same best seed" clean.Smoothe_extract.best_seed
    after.Smoothe_extract.best_seed;
  Alcotest.(check int) "no recoveries" 0 after.Smoothe_extract.recoveries;
  Alcotest.(check bool) "healthy" true (after.Smoothe_extract.health = [])

(* --- the pre-flight gate ---------------------------------------------- *)

(* strip wall-clock from a history point so runs can be compared *)
let history_shape run =
  List.map
    (fun h ->
      ( h.Smoothe_extract.iter,
        h.Smoothe_extract.relaxed_loss,
        h.Smoothe_extract.sampled_cost,
        h.Smoothe_extract.incumbent ))
    run.Smoothe_extract.history

let test_preflight_bit_identical () =
  (* the gate is events-only: with analysis on or off, the optimisation
     trajectory must match bit for bit *)
  let g = small_graph () in
  let off = Smoothe_extract.extract ~config:quick_cfg ~preflight:false g in
  let on = Smoothe_extract.extract ~config:quick_cfg ~preflight:true g in
  Alcotest.(check (float 0.0)) "same cost" off.Smoothe_extract.result.Extractor.cost
    on.Smoothe_extract.result.Extractor.cost;
  Alcotest.(check int) "same iterations" off.Smoothe_extract.iterations
    on.Smoothe_extract.iterations;
  Alcotest.(check int) "same best seed" off.Smoothe_extract.best_seed
    on.Smoothe_extract.best_seed;
  Alcotest.(check bool) "same trajectory" true (history_shape off = history_shape on);
  (* a clean graph produces no preflight events *)
  Alcotest.(check bool) "clean graph, silent gate" true
    (List.for_all
       (fun e -> e.Health.kind <> Health.Preflight)
       on.Smoothe_extract.health)

(* a structurally valid graph with a corrupted base cost: the lint flags
   it (EG006) but the run itself proceeds *)
let corrupt_cost_graph () =
  let b = Egraph.Builder.create ~name:"corrupt" () in
  let root = Egraph.Builder.add_class b in
  let leaf = Egraph.Builder.add_class b in
  ignore (Egraph.Builder.add_node b ~cls:root ~op:"f" ~cost:(-3.0) ~children:[ leaf ]);
  ignore (Egraph.Builder.add_node b ~cls:root ~op:"g" ~cost:5.0 ~children:[ leaf ]);
  ignore (Egraph.Builder.add_node b ~cls:leaf ~op:"leaf" ~cost:1.0 ~children:[]);
  Egraph.Builder.freeze b ~root

let test_preflight_flags_corrupt_graph () =
  let g = corrupt_cost_graph () in
  (* even with a fault plan poisoning a gradient pass, the gate reports
     the corrupted input and the supervised loop still finishes *)
  Fault_plan.with_plan
    [ Fault_plan.Nan_grad 3 ]
    (fun () ->
      let run = Smoothe_extract.extract ~config:quick_cfg ~preflight:true g in
      Alcotest.(check bool) "run still completes" true
        (run.Smoothe_extract.result.Extractor.solution <> None);
      let pf =
        List.filter (fun e -> e.Health.kind = Health.Preflight) run.Smoothe_extract.health
      in
      Alcotest.(check int) "one finding surfaced" 1 (List.length pf);
      Alcotest.(check bool) "event carries the rendered diagnostic" true
        (let s = (List.hd pf).Health.detail in
         let has sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         has "EG006" && has "negative base cost"));
  (* the escape hatch: the same corrupted graph with the gate off runs
     silently, matching the pre-gate behaviour *)
  let off = Smoothe_extract.extract ~config:quick_cfg ~preflight:false g in
  Alcotest.(check bool) "no preflight events when disabled" true
    (List.for_all (fun e -> e.Health.kind <> Health.Preflight) off.Smoothe_extract.health)

let test_mem_pressure_derates () =
  let g = small_graph () in
  let fp () =
    Device.footprint g ~prop_iters:10 ~scc_decomposition:true ~batched_matexp:true
  in
  let base = fp () in
  Fault_plan.with_plan
    [ Fault_plan.Mem_pressure 4.0 ]
    (fun () ->
      let scaled = fp () in
      Alcotest.(check (float 1.0)) "per-seed bytes scale"
        (4.0 *. base.Device.per_seed_bytes)
        scaled.Device.per_seed_bytes;
      Alcotest.(check (float 1.0)) "matexp bytes scale"
        (4.0 *. base.Device.matexp_bytes)
        scaled.Device.matexp_bytes)

let test_solver_stall () =
  (* a stalled LP burns its deadline and reports timeout, but a
     warm-started branch-and-bound still returns its incumbent *)
  let g = small_graph () in
  let warm = (Greedy_dag.extract g).Extractor.solution in
  Fault_plan.with_plan
    [ Fault_plan.Solver_stall ]
    (fun () ->
      let r = Ilp.extract ~time_limit:0.05 ?warm_start:warm ~profile:Bnb.cplex_like g in
      Alcotest.(check bool) "keeps the warm incumbent" true (r.Extractor.solution <> None);
      Alcotest.(check bool) "not proved optimal" false r.Extractor.proved_optimal;
      Alcotest.(check bool) "stall recorded" true
        (List.exists
           (fun s ->
             let has_sub sub =
               let n = String.length s and m = String.length sub in
               let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
               go 0
             in
             has_sub "stall")
           (Fault_plan.drain_injections ())))

(* --- the supervised portfolio ----------------------------------------- *)

let portfolio_cfg =
  {
    Portfolio.default_config with
    Portfolio.time_budget = 2.0;
    use_genetic = false;
    smoothe = quick_cfg;
  }

let check_valid_best (out : Portfolio.outcome) =
  let g = small_graph () in
  match out.Portfolio.best.Extractor.solution with
  | None -> Alcotest.fail "portfolio returned no solution"
  | Some s -> Alcotest.(check bool) "valid extraction" true (Egraph.Solution.is_valid g s)

let test_portfolio_under_faults () =
  let g = small_graph () in
  List.iter
    (fun plan ->
      Fault_plan.with_plan (Fault_plan.of_string plan) (fun () ->
          let out = Portfolio.extract ~config:portfolio_cfg (Rng.create 11) g in
          check_valid_best out;
          Alcotest.(check bool)
            (Printf.sprintf "health log non-empty under %S" plan)
            false (out.Portfolio.health = []);
          Alcotest.(check bool) "heuristic member present" true
            (List.exists
               (fun m -> m.Portfolio.member_name = "heuristic")
               out.Portfolio.members)))
    [ "nan@3"; "mem@1e15"; "stall"; "skew@60" ]

let test_portfolio_member_crash () =
  (* a NaN-poisoned model crashes nothing: members degrade or quarantine,
     and the portfolio still answers with the greedy result *)
  let g = small_graph () in
  let out = Portfolio.extract ~config:portfolio_cfg (Rng.create 11) g in
  Alcotest.(check bool) "every member has a status" true
    (List.for_all
       (fun m ->
         match m.Portfolio.status with
         | Portfolio.Completed | Portfolio.Timed_out | Portfolio.Faulted _ -> true)
       out.Portfolio.members);
  check_valid_best out

let test_portfolio_checkpoint_retry () =
  (* a mid-run kill of the SmoothE member: with a checkpoint dir the
     portfolio retries it from the snapshot instead of marking it
     Faulted *)
  let g = small_graph () in
  with_tmpdir @@ fun dir ->
  let cfg =
    {
      portfolio_cfg with
      Portfolio.checkpoint_dir = Some dir;
      checkpoint_every = 3;
      retry_attempts = 2;
      smoothe = resume_cfg;
    }
  in
  Fault_plan.with_plan
    [ Fault_plan.Crash_at 7 ]
    (fun () ->
      let out = Portfolio.extract ~config:cfg (Rng.create 11) g in
      check_valid_best out;
      let smoothe =
        List.find (fun m -> m.Portfolio.member_name = "smoothe") out.Portfolio.members
      in
      (match smoothe.Portfolio.status with
      | Portfolio.Completed | Portfolio.Timed_out -> ()
      | Portfolio.Faulted e -> Alcotest.failf "smoothe member not recovered: %s" e);
      Alcotest.(check bool) "smoothe produced a solution" true
        (smoothe.Portfolio.result.Extractor.solution <> None);
      Alcotest.(check bool) "crash surfaced in health" true
        (List.exists
           (fun e -> e.Health.kind = Health.Member_failed)
           out.Portfolio.health);
      Alcotest.(check bool) "retry surfaced in health" true
        (List.exists (fun e -> e.Health.kind = Health.Recovery) out.Portfolio.health))

let () =
  Alcotest.run "runtime"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "parse" `Quick test_plan_parse;
          Alcotest.test_case "parse errors" `Quick test_plan_parse_errors;
          Alcotest.test_case "durability atoms" `Quick test_plan_parse_durability;
          Alcotest.test_case "determinism" `Quick test_plan_determinism;
          Alcotest.test_case "crash fires once" `Quick test_crash_fires_once;
          Alcotest.test_case "torn-write fires once" `Quick test_torn_write_fires_once;
        ] );
      ( "health",
        [
          Alcotest.test_case "log" `Quick test_health_log;
          Alcotest.test_case "merge rebases timestamps" `Quick test_health_merge_rebase;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "finished" `Quick test_supervisor_finished;
          Alcotest.test_case "crash" `Quick test_supervisor_crash;
          Alcotest.test_case "timeout" `Quick test_supervisor_timeout;
          Alcotest.test_case "clock skew" `Quick test_clock_skew;
          Alcotest.test_case "crash then timeout" `Quick test_supervisor_crash_then_timeout;
          Alcotest.test_case "retry eventual success" `Quick test_run_retrying_eventual_success;
          Alcotest.test_case "retry exhausted" `Quick test_run_retrying_exhausted;
          Alcotest.test_case "retry backoff cap" `Quick test_run_retrying_backoff_cap;
          Alcotest.test_case "timer poll" `Quick test_timer_poll;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "frame errors" `Quick test_checkpoint_frame_errors;
          Alcotest.test_case "store validation" `Quick test_store_validation;
          Alcotest.test_case "rotation" `Quick test_store_rotation;
          Alcotest.test_case "corrupt falls back" `Quick test_corrupt_falls_back;
          Alcotest.test_case "torn write falls back" `Quick test_torn_write_falls_back;
          checkpoint_roundtrip_prop;
          checkpoint_bitflip_prop;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill and resume is deterministic" `Quick
            test_resume_determinism;
          Alcotest.test_case "foreign snapshot refused" `Quick
            test_resume_rejects_foreign_snapshot;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "nan recovery" `Quick test_nan_recovery;
          Alcotest.test_case "preflight is bit-identical" `Quick test_preflight_bit_identical;
          Alcotest.test_case "preflight flags corrupt graph" `Quick
            test_preflight_flags_corrupt_graph;
          Alcotest.test_case "mem pressure" `Quick test_mem_pressure_derates;
          Alcotest.test_case "solver stall" `Quick test_solver_stall;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "under faults" `Quick test_portfolio_under_faults;
          Alcotest.test_case "member statuses" `Quick test_portfolio_member_crash;
          Alcotest.test_case "checkpointed retry" `Quick test_portfolio_checkpoint_retry;
        ] );
    ]
