(* Tests for the cost models: linear, MLP and the hybrid of §5.5. *)

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --------------------------------------------------------------- linear *)

let test_linear_dense () =
  let m = Cost_model.linear [| 1.0; 2.0; 3.0 |] in
  Test_util.check_close ~msg:"dot" 8.0 (Cost_model.dense m [| 0.0; 1.0; 2.0 |]);
  Alcotest.(check bool) "is_linear" true (Cost_model.is_linear m);
  Alcotest.(check int) "dim" 3 (Cost_model.dim m);
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Cost_model.dense: dimension mismatch")
    (fun () -> ignore (Cost_model.dense m [| 1.0 |]))

let test_linear_of_egraph_matches_dag_cost () =
  let g = Fig1.egraph () in
  let m = Cost_model.of_egraph g in
  let s = Option.get (Greedy.extract g).Extractor.solution in
  Test_util.check_close ~msg:"model = dag cost" (Egraph.Solution.dag_cost g s)
    (Cost_model.dense_solution m g s)

let linear_relaxed_matches_dense =
  qtest "relaxed linear cost equals dense evaluation per seed"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 6 in
      let u = Array.init n (fun _ -> Rng.float rng 4.0 -. 2.0) in
      let m = Cost_model.linear u in
      let p = Tensor.init ~batch:3 ~width:n (fun _ _ -> Rng.float rng 1.0) in
      let tape = Ad.tape () in
      let out = Cost_model.relaxed m tape (Ad.const tape p) in
      let v = Ad.value out in
      let ok = ref true in
      for b = 0 to 2 do
        if not (Test_util.float_close (Cost_model.dense m (Tensor.row p b)) (Tensor.get v b 0))
        then ok := false
      done;
      !ok)

let test_invalid_solution_infinite () =
  let g = Fig1.egraph () in
  let m = Cost_model.of_egraph g in
  let bogus = { Egraph.Solution.choice = Array.make (Egraph.num_classes g) None } in
  Test_util.check_close ~msg:"invalid = inf" infinity (Cost_model.dense_solution m g bogus)

(* ------------------------------------------------------------------ MLP *)

let test_mlp_shapes () =
  let rng = Rng.create 3 in
  let mlp = Mlp.create rng ~input_dim:10 in
  Alcotest.(check int) "input_dim" 10 (Mlp.input_dim mlp);
  Alcotest.(check int) "param tensors: 4 layers x (w, b)" 8 (List.length (Mlp.parameters mlp));
  let x = Array.init 10 (fun i -> float_of_int i /. 10.0) in
  let y = Mlp.predict mlp x in
  Alcotest.(check bool) "finite prediction" true (Float.is_finite y)

let test_mlp_batch_matches_single () =
  let rng = Rng.create 5 in
  let mlp = Mlp.create rng ~input_dim:6 in
  let rows = Array.init 4 (fun r -> Array.init 6 (fun i -> float_of_int ((r * 6) + i) /. 24.0)) in
  let batch = Tensor.create ~batch:4 ~width:6 in
  Array.iteri (fun r row -> Tensor.blit_row ~src:row batch r) rows;
  let preds = Mlp.predict_batch mlp batch in
  Array.iteri
    (fun r row -> Test_util.check_close ~msg:"batch vs single" (Mlp.predict mlp row) preds.(r))
    rows

let test_mlp_forward_matches_predict () =
  let rng = Rng.create 7 in
  let mlp = Mlp.create rng ~input_dim:5 in
  let x = [| 0.1; 0.9; 0.0; 1.0; 0.5 |] in
  let tape = Ad.tape () in
  let out = Mlp.forward tape mlp (Ad.const tape (Tensor.of_row x)) in
  Test_util.check_close ~msg:"tape forward = predict" (Mlp.predict mlp x)
    (Tensor.get (Ad.value out) 0 0)

let test_mlp_training_reduces_loss () =
  (* regression on random valid solutions with random negative savings,
     exactly the §5.5 setup on the fig1 e-graph *)
  let g = Fig1.egraph () in
  let rng = Rng.create 17 in
  let inputs = Random_walk.dense_dataset rng g ~count:40 in
  let targets = Array.init (Array.length inputs) (fun _ -> -.Rng.float rng 5.0) in
  let mlp = Mlp.create rng ~input_dim:(Egraph.num_nodes g) in
  let report = Mlp.train ~epochs:40 ~lr:3e-3 rng mlp ~inputs ~targets in
  Alcotest.(check bool)
    (Printf.sprintf "loss fell: %.4f -> %.4f" report.Mlp.initial_loss report.Mlp.final_loss)
    true
    (report.Mlp.final_loss < report.Mlp.initial_loss *. 0.8)

let test_mlp_trained_model_orders_examples () =
  (* after fitting, the model should at least separate the two extremes
     of a tiny synthetic dataset *)
  let rng = Rng.create 23 in
  let dim = 8 in
  let lo = Array.make dim 0.0 and hi = Array.make dim 1.0 in
  let inputs = Array.init 30 (fun i -> if i mod 2 = 0 then Array.copy lo else Array.copy hi) in
  let targets = Array.init 30 (fun i -> if i mod 2 = 0 then -1.0 else -5.0) in
  let mlp = Mlp.create rng ~input_dim:dim in
  ignore (Mlp.train ~epochs:120 ~lr:5e-3 rng mlp ~inputs ~targets);
  Alcotest.(check bool) "orders extremes" true (Mlp.predict mlp hi < Mlp.predict mlp lo)

(* ------------------------------------------------------------- corrected *)

let test_mlp_corrected_dense () =
  let rng = Rng.create 31 in
  let u = [| 1.0; 2.0; 3.0; 4.0 |] in
  let mlp = Mlp.create rng ~input_dim:4 in
  let m = Cost_model.mlp_corrected ~linear:u mlp in
  Alcotest.(check bool) "not linear" false (Cost_model.is_linear m);
  let x = [| 1.0; 0.0; 1.0; 0.0 |] in
  Test_util.check_close ~msg:"linear + correction" (4.0 +. Mlp.predict mlp x)
    (Cost_model.dense m x)

let mlp_corrected_relaxed_matches_dense =
  qtest ~count:20 "relaxed MLP-corrected cost equals dense evaluation"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 5 in
      let u = Array.init n (fun _ -> Rng.float rng 2.0) in
      let mlp = Mlp.create rng ~input_dim:n in
      let m = Cost_model.mlp_corrected ~linear:u mlp in
      let p = Tensor.init ~batch:2 ~width:n (fun _ _ -> Rng.float rng 1.0) in
      let tape = Ad.tape () in
      let out = Cost_model.relaxed m tape (Ad.const tape p) in
      let v = Ad.value out in
      let ok = ref true in
      for b = 0 to 1 do
        if not (Test_util.float_close ~tol:1e-5 (Cost_model.dense m (Tensor.row p b)) (Tensor.get v b 0))
        then ok := false
      done;
      !ok)

let test_pairwise_dense () =
  let u = [| 5.0; 5.0; 3.0 |] in
  (* fusing nodes 0 and 1 saves 4 when both are selected *)
  let m = Cost_model.pairwise ~linear:u [ (0, 1, -4.0) ] in
  Alcotest.(check bool) "not linear" false (Cost_model.is_linear m);
  Test_util.check_close ~msg:"both selected" 6.0 (Cost_model.dense m [| 1.0; 1.0; 0.0 |]);
  Test_util.check_close ~msg:"one selected" 5.0 (Cost_model.dense m [| 1.0; 0.0; 0.0 |]);
  Test_util.check_close ~msg:"neither" 3.0 (Cost_model.dense m [| 0.0; 0.0; 1.0 |]);
  Alcotest.check_raises "bad index" (Invalid_argument "Cost_model.pairwise: index out of range")
    (fun () -> ignore (Cost_model.pairwise ~linear:u [ (0, 9, 1.0) ]))

let pairwise_relaxed_matches_dense =
  qtest "relaxed pairwise cost equals dense evaluation"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 6 in
      let u = Array.init n (fun _ -> Rng.float rng 4.0) in
      let terms =
        List.init 4 (fun _ -> Rng.int rng n, Rng.int rng n, Rng.float rng 2.0 -. 1.0)
      in
      let m = Cost_model.pairwise ~linear:u terms in
      let p = Tensor.init ~batch:2 ~width:n (fun _ _ -> Rng.float rng 1.0) in
      let tape = Ad.tape () in
      let out = Cost_model.relaxed m tape (Ad.const tape p) in
      let v = Ad.value out in
      let ok = ref true in
      for b = 0 to 1 do
        if not (Test_util.float_close (Cost_model.dense m (Tensor.row p b)) (Tensor.get v b 0))
        then ok := false
      done;
      !ok)

let test_fusion_of_egraph () =
  let g = Fig1.egraph () in
  let m = Cost_model.fusion_of_egraph (Rng.create 5) ~pairs:4 ~discount:0.5 g in
  Alcotest.(check string) "kind" "linear+pairwise" (Cost_model.name m);
  (* discounts only ever lower the cost below the linear value *)
  let s = Option.get (Greedy.extract g).Extractor.solution in
  let lin = Cost_model.dense_solution (Cost_model.of_egraph g) g s in
  let fused = Cost_model.dense_solution m g s in
  Alcotest.(check bool) "discounted <= linear" true (fused <= lin +. 1e-9)

let test_smoothe_through_pairwise () =
  (* SmoothE optimises through the quadratic term end-to-end and its
     reported cost matches the model's dense evaluation *)
  let g = Fig1.egraph () in
  let m = Cost_model.fusion_of_egraph (Rng.create 9) ~pairs:6 ~discount:0.5 g in
  let config = { Smoothe_config.default with Smoothe_config.batch = 8; max_iters = 100 } in
  let run = Smoothe_extract.extract ~config ~model:m g in
  match run.Smoothe_extract.result.Extractor.solution with
  | Some s ->
      Test_util.check_close ~msg:"cost under model" (Cost_model.dense_solution m g s)
        run.Smoothe_extract.result.Extractor.cost
  | None -> Alcotest.fail "no solution"

let test_mlp_corrected_dim_mismatch () =
  let rng = Rng.create 1 in
  let mlp = Mlp.create rng ~input_dim:3 in
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Cost_model.mlp_corrected: dimension mismatch") (fun () ->
      ignore (Cost_model.mlp_corrected ~linear:[| 1.0 |] mlp))

let () =
  Alcotest.run "cost"
    [
      ( "linear",
        [
          Alcotest.test_case "dense" `Quick test_linear_dense;
          Alcotest.test_case "of_egraph matches dag cost" `Quick
            test_linear_of_egraph_matches_dag_cost;
          linear_relaxed_matches_dense;
          Alcotest.test_case "invalid = infinity" `Quick test_invalid_solution_infinite;
        ] );
      ( "mlp",
        [
          Alcotest.test_case "shapes" `Quick test_mlp_shapes;
          Alcotest.test_case "batch matches single" `Quick test_mlp_batch_matches_single;
          Alcotest.test_case "forward matches predict" `Quick test_mlp_forward_matches_predict;
          Alcotest.test_case "training reduces loss" `Slow test_mlp_training_reduces_loss;
          Alcotest.test_case "trained model orders extremes" `Slow
            test_mlp_trained_model_orders_examples;
        ] );
      ( "corrected",
        [
          Alcotest.test_case "dense" `Quick test_mlp_corrected_dense;
          mlp_corrected_relaxed_matches_dense;
          Alcotest.test_case "dim mismatch" `Quick test_mlp_corrected_dim_mismatch;
        ] );
      ( "pairwise",
        [
          Alcotest.test_case "dense semantics" `Quick test_pairwise_dense;
          pairwise_relaxed_matches_dense;
          Alcotest.test_case "fusion_of_egraph" `Quick test_fusion_of_egraph;
          Alcotest.test_case "smoothe through pairwise" `Slow test_smoothe_through_pairwise;
        ] );
    ]
