(* Tests for the SmoothE core: the differentiable relaxation (φ
   propagation, NOTEARS penalty), the sampler and the full loop. *)

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let cfg = Smoothe_config.default

(* Reference φ: exact topological computation of the class probabilities
   q and marginals p on an acyclic e-graph, per Eq. (5)-(7). *)
let reference_phi assumption g cp_row =
  let m = Egraph.num_classes g in
  let q = Array.make m 0.0 in
  let p = Array.make (Egraph.num_nodes g) 0.0 in
  q.(g.Egraph.root) <- 1.0;
  (* classes in topological order of the class graph (root first) *)
  let order = Option.get (Graph_algo.topological_order g.Egraph.class_children) in
  Array.iter
    (fun c ->
      if c <> g.Egraph.root then begin
        (* parents' p values are final because parents precede c *)
        let seg = g.Egraph.parent_seg in
        let start = seg.Segments.starts.(c) and len = seg.Segments.lens.(c) in
        let parents = List.init len (fun k -> g.Egraph.parent_edge_node.(start + k)) in
        let ind = 1.0 -. List.fold_left (fun acc k -> acc *. (1.0 -. p.(k))) 1.0 parents in
        let cor = List.fold_left (fun acc k -> Float.max acc p.(k)) 0.0 parents in
        q.(c) <-
          (match assumption with
          | Smoothe_config.Independent -> ind
          | Smoothe_config.Correlated -> cor
          | Smoothe_config.Hybrid -> 0.5 *. (ind +. cor))
      end;
      Array.iter (fun i -> p.(i) <- cp_row.(i) *. q.(c)) g.Egraph.class_nodes.(c))
    order;
  p

let propagation_matches_reference assumption =
  qtest ~count:60
    (Printf.sprintf "unrolled propagation = exact topological φ (%s)"
       (Smoothe_config.assumption_name assumption))
    QCheck2.Gen.(pair (Test_util.arb_egraph ~max_classes:7 ()) (int_bound 1_000_000))
    (fun (g, seed) ->
      let config =
        { cfg with Smoothe_config.assumption; prop_iters = Some (Egraph.num_classes g + 2) }
      in
      let compiled = Relaxation.compile config g in
      let rng = Rng.create seed in
      let n = Egraph.num_nodes g in
      let theta = Tensor.init ~batch:1 ~width:n (fun _ _ -> Rng.gaussian rng) in
      let model = Cost_model.of_egraph g in
      let fwd = Relaxation.forward compiled ~config ~model ~theta in
      let cp_row = Tensor.row (Ad.value fwd.Relaxation.cp) 0 in
      let expected = reference_phi assumption g cp_row in
      let actual = Tensor.row (Ad.value fwd.Relaxation.p) 0 in
      let ok = ref true in
      for i = 0 to n - 1 do
        if not (Test_util.float_close ~tol:1e-6 expected.(i) actual.(i)) then ok := false
      done;
      !ok)

let test_cp_sums_to_one_per_class () =
  let g = Fig1.egraph () in
  let config = cfg in
  let compiled = Relaxation.compile config g in
  let rng = Rng.create 3 in
  let theta = Tensor.init ~batch:2 ~width:(Egraph.num_nodes g) (fun _ _ -> Rng.gaussian rng) in
  let fwd = Relaxation.forward compiled ~config ~model:(Cost_model.of_egraph g) ~theta in
  let cp = Ad.value fwd.Relaxation.cp in
  let sums = Segments.sum cp g.Egraph.class_seg in
  for b = 0 to 1 do
    for c = 0 to Egraph.num_classes g - 1 do
      Test_util.check_close ~msg:"Eq 3b" 1.0 (Tensor.get sums b c)
    done
  done

let test_root_probability_one () =
  let g = Fig1.egraph () in
  let compiled = Relaxation.compile cfg g in
  let theta = Tensor.create ~batch:1 ~width:(Egraph.num_nodes g) in
  let fwd = Relaxation.forward compiled ~config:cfg ~model:(Cost_model.of_egraph g) ~theta in
  let p = Ad.value fwd.Relaxation.p in
  (* sum of root-class marginals = 1 (constraint (a)) *)
  let total =
    Array.fold_left
      (fun acc i -> acc +. Tensor.get p 0 i)
      0.0 g.Egraph.class_nodes.(g.Egraph.root)
  in
  Test_util.check_close ~msg:"root mass 1" 1.0 total

let two_cycle_egraph_fwd () =
  let b = Egraph.Builder.create () in
  let a = Egraph.Builder.add_class b in
  let c = Egraph.Builder.add_class b in
  ignore (Egraph.Builder.add_node b ~cls:a ~op:"fwd" ~cost:1.0 ~children:[ c ]);
  ignore (Egraph.Builder.add_node b ~cls:a ~op:"leafA" ~cost:9.0 ~children:[]);
  ignore (Egraph.Builder.add_node b ~cls:c ~op:"back" ~cost:1.0 ~children:[ a ]);
  ignore (Egraph.Builder.add_node b ~cls:c ~op:"leafC" ~cost:9.0 ~children:[]);
  Egraph.Builder.freeze b ~root:a

let full_loss_gradient_matches_fd =
  qtest ~count:10 "end-to-end loss gradient matches finite differences"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      (* independence assumption only: segment_max would add kinks *)
      let g = Fig1.egraph () in
      let config =
        { cfg with Smoothe_config.assumption = Smoothe_config.Independent; batch = 2 }
      in
      let compiled = Relaxation.compile config g in
      let model = Cost_model.of_egraph g in
      let rng = Rng.create seed in
      let n = Egraph.num_nodes g in
      let theta = Tensor.init ~batch:2 ~width:n (fun _ _ -> Rng.gaussian rng) in
      let fwd = Relaxation.forward compiled ~config ~model ~theta in
      Ad.backward fwd.Relaxation.loss;
      let analytic = Ad.grad fwd.Relaxation.theta in
      let f t =
        let fwd = Relaxation.forward compiled ~config ~model ~theta:t in
        Tensor.get (Ad.value fwd.Relaxation.loss) 0 0
      in
      let numeric = Ad.finite_difference ~f ~x:theta ~eps:1e-5 in
      let ok = ref true in
      for i = 0 to Tensor.numel theta - 1 do
        let a = (Tensor.unsafe_data analytic).(i) and n' = (Tensor.unsafe_data numeric).(i) in
        if Float.abs (a -. n') /. (1.0 +. Float.abs n') > 1e-3 then ok := false
      done;
      !ok)

let full_loss_gradient_cyclic =
  qtest ~count:8 "loss gradient (incl. NOTEARS matexp) matches finite differences"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let g = two_cycle_egraph_fwd () in
      let config =
        { cfg with Smoothe_config.assumption = Smoothe_config.Independent; batch = 1;
          lambda_ = 5.0 }
      in
      let compiled = Relaxation.compile config g in
      let model = Cost_model.of_egraph g in
      let rng = Rng.create seed in
      let n = Egraph.num_nodes g in
      let theta = Tensor.init ~batch:1 ~width:n (fun _ _ -> Rng.gaussian rng) in
      let fwd = Relaxation.forward compiled ~config ~model ~theta in
      Ad.backward fwd.Relaxation.loss;
      let analytic = Ad.grad fwd.Relaxation.theta in
      let f t =
        let fwd = Relaxation.forward compiled ~config ~model ~theta:t in
        Tensor.get (Ad.value fwd.Relaxation.loss) 0 0
      in
      let numeric = Ad.finite_difference ~f ~x:theta ~eps:1e-5 in
      let ok = ref true in
      for i = 0 to Tensor.numel theta - 1 do
        let a = (Tensor.unsafe_data analytic).(i) and n' = (Tensor.unsafe_data numeric).(i) in
        if Float.abs (a -. n') /. (1.0 +. Float.abs n') > 1e-3 then ok := false
      done;
      !ok)

(* ------------------------------------------------------- exact marginals *)

let test_exact_marginals_chain () =
  (* root class {a} -> child class {x (via a), y}: p(x) = cp_x, p(y) = cp_y *)
  let b = Egraph.Builder.create () in
  let root = Egraph.Builder.add_class b in
  let child = Egraph.Builder.add_class b in
  ignore (Egraph.Builder.add_node b ~cls:root ~op:"a" ~cost:1.0 ~children:[ child ]);
  ignore (Egraph.Builder.add_node b ~cls:child ~op:"x" ~cost:1.0 ~children:[]);
  ignore (Egraph.Builder.add_node b ~cls:child ~op:"y" ~cost:1.0 ~children:[]);
  let g = Egraph.Builder.freeze b ~root in
  let cp = Array.make 3 0.0 in
  Array.iteri (fun i op -> if op = "a" then cp.(i) <- 1.0 else if op = "x" then cp.(i) <- 0.3 else cp.(i) <- 0.7) g.Egraph.ops;
  let m = Exact_marginals.node_marginals g ~cp in
  Array.iteri
    (fun i op ->
      let expected = match op with "a" -> 1.0 | "x" -> 0.3 | _ -> 0.7 in
      Test_util.check_close ~msg:op expected m.(i))
    g.Egraph.ops

let exact_marginals_match_phi_on_trees =
  (* when every class has at most one parent e-node, all three
     assumptions coincide with the exact marginals *)
  qtest ~count:30 "exact marginals = φ on single-parent e-graphs"
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 6))
    (fun (seed, classes) ->
      let rng = Rng.create seed in
      (* a chain of classes, each with 2 members, child = next class *)
      let b = Egraph.Builder.create () in
      let ids = Array.init classes (fun _ -> Egraph.Builder.add_class b) in
      for c = 0 to classes - 1 do
        for k = 0 to 1 do
          let children = if c < classes - 1 && k = 0 then [ ids.(c + 1) ] else [] in
          ignore
            (Egraph.Builder.add_node b ~cls:ids.(c)
               ~op:(Printf.sprintf "n%d_%d" c k)
               ~cost:1.0 ~children)
        done
      done;
      let g = Egraph.Builder.freeze b ~root:ids.(0) in
      let cp = Array.make (Egraph.num_nodes g) 0.0 in
      Array.iter
        (fun members ->
          let r = 0.2 +. (0.6 *. Rng.uniform rng) in
          cp.(members.(0)) <- r;
          cp.(members.(1)) <- 1.0 -. r)
        g.Egraph.class_nodes;
      List.for_all
        (fun a -> Exact_marginals.assumption_error g ~cp a < 1e-6)
        [ Smoothe_config.Independent; Smoothe_config.Correlated; Smoothe_config.Hybrid ])

let test_exact_marginals_space_guard () =
  let rng = Rng.create 3 in
  let g = Test_util.random_egraph ~max_class_size:4 rng ~classes:40 in
  let cp = Array.make (Egraph.num_nodes g) 0.5 in
  match Exact_marginals.node_marginals g ~cp with
  | exception Invalid_argument _ -> ()
  | _ ->
      (* small enough after all: fine, just check the shape *)
      ()

(* -------------------------------------------------------- temperature *)

let test_temperature_sharpens () =
  let g = Fig1.egraph () in
  let compiled = Relaxation.compile cfg g in
  let rng = Rng.create 5 in
  let theta = Tensor.init ~batch:1 ~width:(Egraph.num_nodes g) (fun _ _ -> Rng.gaussian rng) in
  let model = Cost_model.of_egraph g in
  let entropy_of temperature =
    let fwd = Relaxation.forward ~temperature compiled ~config:cfg ~model ~theta in
    let cp = Ad.value fwd.Relaxation.cp in
    let acc = ref 0.0 in
    for i = 0 to Tensor.numel cp - 1 do
      let p = (Tensor.unsafe_data cp).(i) in
      if p > 1e-9 then acc := !acc -. (p *. log p)
    done;
    !acc
  in
  let hot = entropy_of 4.0 and cold = entropy_of 0.25 in
  Alcotest.(check bool)
    (Printf.sprintf "hot entropy %.3f > cold %.3f" hot cold)
    true (hot > cold)

let test_entropy_weight_spreads_cp () =
  (* with a big entropy bonus the optimiser keeps cp near uniform *)
  let g = Fig1.egraph () in
  let run w =
    let config =
      { cfg with Smoothe_config.batch = 4; max_iters = 60; entropy_weight = w }
    in
    Smoothe_extract.extract ~config g
  in
  let plain = run 0.0 and spread = run 50.0 in
  (* both still produce valid extractions *)
  Alcotest.(check bool) "plain valid" true
    (plain.Smoothe_extract.result.Extractor.solution <> None);
  Alcotest.(check bool) "entropy-heavy valid" true
    (spread.Smoothe_extract.result.Extractor.solution <> None)

let test_annealing_still_optimal () =
  let config =
    {
      cfg with
      Smoothe_config.batch = 8;
      max_iters = 120;
      temperature = 2.0;
      temperature_decay = 0.96;
      min_temperature = 0.2;
    }
  in
  let run = Smoothe_extract.extract ~config (Fig1.egraph ()) in
  Test_util.check_close ~msg:"annealed run finds 19" Fig1.optimal_cost
    run.Smoothe_extract.result.Extractor.cost

(* -------------------------------------------------------------- penalty *)

let two_cycle_egraph () =
  let b = Egraph.Builder.create () in
  let a = Egraph.Builder.add_class b in
  let c = Egraph.Builder.add_class b in
  ignore (Egraph.Builder.add_node b ~cls:a ~op:"fwd" ~cost:1.0 ~children:[ c ]);
  ignore (Egraph.Builder.add_node b ~cls:a ~op:"leafA" ~cost:9.0 ~children:[]);
  ignore (Egraph.Builder.add_node b ~cls:c ~op:"back" ~cost:1.0 ~children:[ a ]);
  ignore (Egraph.Builder.add_node b ~cls:c ~op:"leafC" ~cost:9.0 ~children:[]);
  Egraph.Builder.freeze b ~root:a

let test_no_blocks_on_dag () =
  let compiled = Relaxation.compile cfg (Fig1.egraph ()) in
  Alcotest.(check int) "acyclic -> no NOTEARS blocks" 0
    (Array.length compiled.Relaxation.blocks)

let test_blocks_on_cycle () =
  let g = two_cycle_egraph () in
  let compiled = Relaxation.compile cfg g in
  Alcotest.(check int) "one block" 1 (Array.length compiled.Relaxation.blocks);
  Alcotest.(check int) "block spans both classes" 2
    compiled.Relaxation.blocks.(0).Relaxation.dim

let test_acyclicity_value_behaviour () =
  let g = two_cycle_egraph () in
  let compiled = Relaxation.compile cfg g in
  let n = Egraph.num_nodes g in
  (* cp mass on the cycle edges: penalty clearly positive *)
  let cyclic_cp = Tensor.create ~batch:1 ~width:n in
  Array.iteri
    (fun i op -> if op = "fwd" || op = "back" then Tensor.set cyclic_cp 0 i 1.0)
    g.Egraph.ops;
  let h_cyclic = Relaxation.acyclicity_value compiled ~cp:cyclic_cp in
  Alcotest.(check bool) "penalty positive on cycle" true (h_cyclic > 0.1);
  (* cp mass on the leaves: penalty zero *)
  let acyclic_cp = Tensor.create ~batch:1 ~width:n in
  Array.iteri
    (fun i op -> if op = "leafA" || op = "leafC" then Tensor.set acyclic_cp 0 i 1.0)
    g.Egraph.ops;
  let h_acyclic = Relaxation.acyclicity_value compiled ~cp:acyclic_cp in
  Test_util.check_close ~tol:1e-9 ~msg:"penalty zero off cycle" 0.0 h_acyclic;
  Alcotest.(check bool) "order" true (h_cyclic > h_acyclic)

let test_full_block_when_scc_off () =
  let g = Fig1.egraph () in
  let config = { cfg with Smoothe_config.scc_decomposition = false } in
  let compiled = Relaxation.compile config g in
  Alcotest.(check int) "single full block" 1 (Array.length compiled.Relaxation.blocks);
  Alcotest.(check int) "block dim = M" (Egraph.num_classes g)
    compiled.Relaxation.blocks.(0).Relaxation.dim

(* -------------------------------------------------------------- sampler *)

let sampler_completeness =
  qtest "samples satisfy completeness (valid on DAGs)"
    QCheck2.Gen.(pair (Test_util.arb_egraph ~max_classes:7 ()) (int_bound 1_000_000))
    (fun (g, seed) ->
      let rng = Rng.create seed in
      let cp = Tensor.init ~batch:3 ~width:(Egraph.num_nodes g) (fun _ _ -> Rng.uniform rng) in
      let samples = Sampler.sample_all g ~cp in
      Array.for_all (fun s -> Egraph.Solution.is_valid g s) samples)

let sampler_picks_argmax =
  qtest "sampler picks the argmax-cp member of each selected class"
    QCheck2.Gen.(pair (Test_util.arb_egraph ~max_classes:6 ()) (int_bound 1_000_000))
    (fun (g, seed) ->
      let rng = Rng.create seed in
      let cp = Tensor.init ~batch:1 ~width:(Egraph.num_nodes g) (fun _ _ -> Rng.uniform rng) in
      let s = Sampler.sample_seed g ~cp ~seed:0 in
      let row = Tensor.row cp 0 in
      let ok = ref true in
      Array.iteri
        (fun c choice ->
          match choice with
          | None -> ()
          | Some n ->
              Array.iter
                (fun k -> if row.(k) > row.(n) +. 1e-12 then ok := false)
                g.Egraph.class_nodes.(c))
        s.Egraph.Solution.choice;
      !ok)

let test_repair_breaks_cycle () =
  let g = two_cycle_egraph () in
  let n = Egraph.num_nodes g in
  (* cp strongly prefers the cyclic pair *)
  let cp = Tensor.create ~batch:1 ~width:n in
  Array.iteri
    (fun i op ->
      Tensor.set cp 0 i (if op = "fwd" || op = "back" then 0.9 else 0.1))
    g.Egraph.ops;
  let plain = Sampler.sample_seed ~repair:false g ~cp ~seed:0 in
  Alcotest.(check bool) "plain sample cyclic" true
    (Egraph.Solution.validate g plain = Egraph.Solution.Cyclic);
  let repaired = Sampler.sample_seed ~repair:true g ~cp ~seed:0 in
  Alcotest.(check bool) "repaired valid" true (Egraph.Solution.is_valid g repaired)

let test_best_of_batch () =
  let g = Fig1.egraph () in
  let rng = Rng.create 9 in
  let cp = Tensor.init ~batch:6 ~width:(Egraph.num_nodes g) (fun _ _ -> Rng.uniform rng) in
  let model = Cost_model.of_egraph g in
  match Sampler.best_of_batch g ~model ~cp with
  | None -> Alcotest.fail "no valid sample on an acyclic e-graph"
  | Some (seed, s, cost) ->
      Alcotest.(check bool) "seed in range" true (seed >= 0 && seed < 6);
      Test_util.check_close ~msg:"cost matches solution" (Egraph.Solution.dag_cost g s) cost;
      (* it is the minimum over all seeds *)
      Array.iteri
        (fun _ s' ->
          let c' = Cost_model.dense_solution model g s' in
          Alcotest.(check bool) "minimal" true (cost <= c' +. 1e-9))
        (Sampler.sample_all g ~cp)

(* ------------------------------------------------------------- full loop *)

let test_extract_fig1_all_assumptions () =
  List.iter
    (fun assumption ->
      let config =
        { cfg with Smoothe_config.assumption; batch = 8; max_iters = 120; seed = 5 }
      in
      let run = Smoothe_extract.extract ~config (Fig1.egraph ()) in
      Test_util.check_close
        ~msg:(Smoothe_config.assumption_name assumption ^ " finds 19")
        Fig1.optimal_cost run.Smoothe_extract.result.Extractor.cost)
    [ Smoothe_config.Independent; Smoothe_config.Correlated; Smoothe_config.Hybrid ]

let test_extract_beats_greedy_on_sharing () =
  (* the shared-subexpression gadget where greedy pays 14 but 10 is optimal *)
  let b = Egraph.Builder.create () in
  let root = Egraph.Builder.add_class b in
  let a_cls = Egraph.Builder.add_class b in
  let b_cls = Egraph.Builder.add_class b in
  let s_cls = Egraph.Builder.add_class b in
  ignore (Egraph.Builder.add_node b ~cls:root ~op:"pair" ~cost:0.0 ~children:[ a_cls; b_cls ]);
  ignore (Egraph.Builder.add_node b ~cls:s_cls ~op:"shared" ~cost:10.0 ~children:[]);
  ignore (Egraph.Builder.add_node b ~cls:a_cls ~op:"a_s" ~cost:0.0 ~children:[ s_cls ]);
  ignore (Egraph.Builder.add_node b ~cls:a_cls ~op:"a_p" ~cost:7.0 ~children:[]);
  ignore (Egraph.Builder.add_node b ~cls:b_cls ~op:"b_s" ~cost:0.0 ~children:[ s_cls ]);
  ignore (Egraph.Builder.add_node b ~cls:b_cls ~op:"b_p" ~cost:7.0 ~children:[]);
  let g = Egraph.Builder.freeze b ~root in
  let config = { cfg with Smoothe_config.batch = 8; max_iters = 120 } in
  let run = Smoothe_extract.extract ~config g in
  Test_util.check_close ~msg:"finds the shared optimum" 10.0
    run.Smoothe_extract.result.Extractor.cost

let test_extract_cyclic_egraph () =
  let g = two_cycle_egraph () in
  let config = { cfg with Smoothe_config.batch = 8; max_iters = 120 } in
  let run = Smoothe_extract.extract ~config g in
  (* optimum: leafA alone costs 9 (class c is then unreachable) *)
  Test_util.check_close ~msg:"cycle avoided" 9.0 run.Smoothe_extract.result.Extractor.cost

let smoothe_never_below_brute_force =
  qtest ~count:15 "SmoothE cost >= brute-force optimum, and is valid"
    (Test_util.arb_egraph ~max_classes:6 ()) (fun g ->
      let bf, _ = Test_util.brute_force_optimum g in
      let config = { cfg with Smoothe_config.batch = 6; max_iters = 60; patience = 15 } in
      let run = Smoothe_extract.extract ~config g in
      let cost = run.Smoothe_extract.result.Extractor.cost in
      match run.Smoothe_extract.result.Extractor.solution with
      | Some s -> Egraph.Solution.is_valid g s && cost >= bf -. 1e-9
      | None -> not (Float.is_finite bf))

let test_patience_stops_early () =
  let config = { cfg with Smoothe_config.batch = 4; max_iters = 500; patience = 5 } in
  let run = Smoothe_extract.extract ~config (Fig1.egraph ()) in
  Alcotest.(check bool) "stopped well before the cap" true (run.Smoothe_extract.iterations < 200)

let test_history_monotone_incumbent () =
  let config = { cfg with Smoothe_config.batch = 4; max_iters = 60 } in
  let run = Smoothe_extract.extract ~config (Fig1.egraph ()) in
  let rec check prev = function
    | [] -> ()
    | h :: rest ->
        Alcotest.(check bool) "incumbent non-increasing" true
          (h.Smoothe_extract.incumbent <= prev +. 1e-9);
        Alcotest.(check bool) "sampled >= incumbent" true
          (h.Smoothe_extract.sampled_cost >= h.Smoothe_extract.incumbent -. 1e-9);
        check h.Smoothe_extract.incumbent rest
  in
  check infinity run.Smoothe_extract.history;
  Alcotest.(check int) "history covers every iteration" run.Smoothe_extract.iterations
    (List.length run.Smoothe_extract.history)

let test_mcm8_near_optimal () =
  (* deterministic: seed batching over 16 seeds finds the ILP optimum
     166 on mcm_8 (cf. the Table 3 behaviour) *)
  let g = (Registry.find_instance "mcm_8").Registry.build () in
  let config = { cfg with Smoothe_config.batch = 16; max_iters = 150; seed = 7 } in
  let run = Smoothe_extract.extract ~config g in
  Alcotest.(check bool)
    (Printf.sprintf "near-optimal (got %.1f)" run.Smoothe_extract.result.Extractor.cost)
    true
    (run.Smoothe_extract.result.Extractor.cost <= 170.0)

let test_ablation_matexp_modes_agree () =
  let g = two_cycle_egraph () in
  let base = { cfg with Smoothe_config.batch = 4; max_iters = 80 } in
  let with_batched = Smoothe_extract.extract ~config:base g in
  let without_batched =
    Smoothe_extract.extract ~config:{ base with Smoothe_config.batched_matexp = false } g
  in
  let no_scc =
    Smoothe_extract.extract ~config:{ base with Smoothe_config.scc_decomposition = false } g
  in
  Test_util.check_close ~msg:"batched vs per-seed"
    with_batched.Smoothe_extract.result.Extractor.cost
    without_batched.Smoothe_extract.result.Extractor.cost;
  Test_util.check_close ~msg:"scc vs full" with_batched.Smoothe_extract.result.Extractor.cost
    no_scc.Smoothe_extract.result.Extractor.cost

let test_nonlinear_model_extraction () =
  (* SmoothE optimises through an MLP-corrected model end-to-end *)
  let g = Fig1.egraph () in
  let rng = Rng.create 99 in
  let inputs = Random_walk.dense_dataset rng g ~count:30 in
  let targets = Array.init (Array.length inputs) (fun _ -> -.Rng.float rng 3.0) in
  let mlp = Mlp.create rng ~input_dim:(Egraph.num_nodes g) in
  ignore (Mlp.train ~epochs:20 rng mlp ~inputs ~targets);
  let model = Cost_model.mlp_corrected ~linear:g.Egraph.costs mlp in
  let config = { cfg with Smoothe_config.batch = 8; max_iters = 80 } in
  let run = Smoothe_extract.extract ~config ~model g in
  match run.Smoothe_extract.result.Extractor.solution with
  | Some s ->
      Alcotest.(check bool) "valid" true (Egraph.Solution.is_valid g s);
      Test_util.check_close ~msg:"cost under the model"
        (Cost_model.dense_solution model g s)
        run.Smoothe_extract.result.Extractor.cost
  | None -> Alcotest.fail "no solution under the MLP model"

let test_time_limit_respected () =
  let g = (Registry.find_instance "fir_7").Registry.build () in
  let config =
    { cfg with Smoothe_config.batch = 16; max_iters = 100_000; patience = 100_000;
      time_limit = 0.3 }
  in
  let run, wall = Timer.time (fun () -> Smoothe_extract.extract ~config g) in
  (* the loop polls the deadline between iterations, so "prompt" means a
     handful of iterations, not 100k; the wall bound is generous because
     the suite runs test binaries concurrently *)
  Alcotest.(check bool) "stopped promptly" true (wall < 8.0);
  Alcotest.(check bool) "stopped within a few iterations" true
    (run.Smoothe_extract.iterations <= 16);
  Alcotest.(check bool) "did some work" true (run.Smoothe_extract.iterations > 0)

let test_trace_is_decreasing () =
  let config = { cfg with Smoothe_config.batch = 8; max_iters = 80 } in
  let run = Smoothe_extract.extract ~config ((Registry.find_instance "mcm_8").Registry.build ()) in
  let trace = run.Smoothe_extract.result.Extractor.trace in
  Alcotest.(check bool) "non-empty" true (trace <> []);
  let rec decreasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a > b && decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "strictly improving" true (decreasing trace);
  (* final trace entry equals the reported cost *)
  let _, last = List.nth trace (List.length trace - 1) in
  Test_util.check_close ~msg:"trace end = result" run.Smoothe_extract.result.Extractor.cost last

(* --------------------------------------------------------------- device *)

let test_device_oom () =
  let g = (Registry.find_instance "mcm_8").Registry.build () in
  let tiny = { Device.device_name = "tiny"; memory_bytes = 1024.0; backend = Tensor.Backend.Vectorized } in
  let config = { cfg with Smoothe_config.max_iters = 5; batch = 4 } in
  (* a device that can't fit one seed no longer fails the run: the
     derating ladder ends on the CPU baseline *)
  let run = Smoothe_extract.extract ~config ~device:tiny g in
  Alcotest.(check bool) "degraded, not oom" false run.Smoothe_extract.oom;
  Alcotest.(check bool) "still finds a solution" true
    (run.Smoothe_extract.result.Extractor.solution <> None);
  Alcotest.(check bool) "derated note" true
    (List.mem_assoc "derated" run.Smoothe_extract.result.Extractor.notes);
  Alcotest.(check bool) "oom-derate events logged" true
    (List.exists
       (fun e -> e.Health.kind = Health.Oom_derate)
       run.Smoothe_extract.health);
  (* under extreme memory pressure even the CPU baseline OOMs: the run
     reports total failure the old way, with the ladder in its log *)
  Fault_plan.with_plan
    [ Fault_plan.Mem_pressure 1e18 ]
    (fun () ->
      let run = Smoothe_extract.extract ~config ~device:tiny g in
      Alcotest.(check bool) "oom" true run.Smoothe_extract.oom;
      Alcotest.(check bool) "failed result" true
        (run.Smoothe_extract.result.Extractor.solution = None);
      Alcotest.(check bool) "degraded event" true
        (List.exists
           (fun e -> e.Health.kind = Health.Degraded)
           run.Smoothe_extract.health))

let test_device_derates_batch () =
  let g = (Registry.find_instance "mcm_8").Registry.build () in
  let fp = Device.footprint g ~prop_iters:10 ~scc_decomposition:true ~batched_matexp:true in
  (* a device that fits exactly 3 seeds *)
  let three =
    {
      Device.device_name = "three-seeds";
      memory_bytes = Device.bytes_for_batch fp 3 +. 1.0;
      backend = Tensor.Backend.Vectorized;
    }
  in
  Alcotest.(check int) "max_batch" 3 (Device.max_batch three fp);
  let config = { cfg with Smoothe_config.batch = 16; max_iters = 10; prop_iters = Some 10 } in
  let run = Smoothe_extract.extract ~config ~device:three g in
  Alcotest.(check int) "batch derated" 3 run.Smoothe_extract.batch_used

let test_device_boundaries () =
  let g = (Registry.find_instance "mcm_8").Registry.build () in
  let shared = Device.footprint g ~prop_iters:10 ~scc_decomposition:true ~batched_matexp:true in
  let per_seed =
    Device.footprint g ~prop_iters:10 ~scc_decomposition:true ~batched_matexp:false
  in
  (* matexp accounting: paid once when batched, per seed when not *)
  Alcotest.(check bool) "batched matexp is shared" false shared.Device.matexp_per_seed;
  Alcotest.(check bool) "unbatched matexp is per seed" true per_seed.Device.matexp_per_seed;
  Test_util.check_close ~msg:"shared matexp is affine in the batch"
    ((3.0 *. shared.Device.per_seed_bytes) +. shared.Device.matexp_bytes)
    (Device.bytes_for_batch shared 3);
  Test_util.check_close ~msg:"per-seed matexp multiplies with the batch"
    (3.0 *. (per_seed.Device.per_seed_bytes +. per_seed.Device.matexp_bytes))
    (Device.bytes_for_batch per_seed 3);
  (* a footprint landing exactly on the capacity still fits *)
  let exact =
    {
      Device.device_name = "exact";
      memory_bytes = Device.bytes_for_batch shared 4;
      backend = Tensor.Backend.Vectorized;
    }
  in
  Alcotest.(check bool) "fits at exactly capacity" true (Device.fits exact shared ~batch:4);
  Alcotest.(check bool) "one more seed does not" false (Device.fits exact shared ~batch:5);
  Alcotest.(check int) "max_batch at the boundary" 4 (Device.max_batch exact shared);
  (* one byte short of a single seed: zero-seed OOM *)
  let sub = { exact with Device.memory_bytes = Device.bytes_for_batch shared 1 -. 1.0 } in
  Alcotest.(check bool) "cannot fit one seed" false (Device.fits sub shared ~batch:1);
  Alcotest.(check int) "max_batch reports OOM" 0 (Device.max_batch sub shared)

let test_device_memory_model_shapes () =
  let g = (Registry.find_instance "NASRNN").Registry.build () in
  let on = Device.footprint g ~prop_iters:20 ~scc_decomposition:true ~batched_matexp:true in
  let off = Device.footprint g ~prop_iters:20 ~scc_decomposition:false ~batched_matexp:true in
  Alcotest.(check bool) "SCC decomposition shrinks matexp memory" true
    (on.Device.matexp_bytes < off.Device.matexp_bytes);
  let per_seed = Device.footprint g ~prop_iters:20 ~scc_decomposition:true ~batched_matexp:false in
  Alcotest.(check bool) "per-seed matexp scales with batch" true
    (Device.bytes_for_batch per_seed 8 -. Device.bytes_for_batch per_seed 1
    > Device.bytes_for_batch on 8 -. Device.bytes_for_batch on 1);
  (* the paper's 8x memory ratio derates batches by ~8x *)
  let b_a100 = Device.max_batch Device.a100 on in
  let b_2080 = Device.max_batch Device.rtx2080ti on in
  Alcotest.(check bool) "a100 fits more seeds" true (b_a100 > b_2080)

let test_scalar_backend_produces_same_result () =
  let g = Fig1.egraph () in
  let config = { cfg with Smoothe_config.batch = 4; max_iters = 60 } in
  let fast = Smoothe_extract.extract ~config ~device:Device.a100 g in
  let slow = Smoothe_extract.extract ~config ~device:Device.cpu_baseline g in
  Test_util.check_close ~msg:"backend-independent result"
    fast.Smoothe_extract.result.Extractor.cost slow.Smoothe_extract.result.Extractor.cost

(* ------------------------------------------------------------- portfolio *)

let test_portfolio_fig1 () =
  let out = Portfolio.extract (Rng.create 3) (Fig1.egraph ()) in
  Test_util.check_close ~msg:"portfolio finds the optimum" Fig1.optimal_cost
    out.Portfolio.best.Extractor.cost;
  Alcotest.(check string) "method name" "portfolio" out.Portfolio.best.Extractor.method_name;
  Alcotest.(check bool) "winner recorded" true
    (List.mem_assoc "winner" out.Portfolio.best.Extractor.notes);
  Alcotest.(check bool) "heuristics always present" true
    (List.exists (fun m -> m.Portfolio.member_name = "heuristic") out.Portfolio.members)

let portfolio_dominates_members =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:10 ~name:"portfolio best <= every member"
       (Test_util.arb_egraph ~max_classes:6 ())
       (fun g ->
         let config =
           { Portfolio.default_config with Portfolio.time_budget = 3.0; use_genetic = true }
         in
         let out = Portfolio.extract ~config (Rng.create 5) g in
         List.for_all
           (fun m -> out.Portfolio.best.Extractor.cost <= m.Portfolio.result.Extractor.cost +. 1e-9)
           out.Portfolio.members))

let test_portfolio_nonlinear_uses_ilp_star () =
  let g = Fig1.egraph () in
  let model = Cost_model.fusion_of_egraph (Rng.create 7) ~pairs:4 ~discount:0.5 g in
  let out = Portfolio.extract ~model (Rng.create 9) g in
  Alcotest.(check bool) "ilp member renamed ilp*" true
    (List.exists (fun m -> m.Portfolio.member_name = "ilp*") out.Portfolio.members);
  (* best is consistently scored under the non-linear model *)
  match out.Portfolio.best.Extractor.solution with
  | Some s ->
      Test_util.check_close ~msg:"model-consistent cost"
        (Cost_model.dense_solution model g s)
        out.Portfolio.best.Extractor.cost
  | None -> Alcotest.fail "no solution"

(* --------------------------------------------------------------- config *)

let test_derive_prop_iters () =
  let g = Fig1.egraph () in
  let k = Smoothe_config.derive_prop_iters cfg g in
  Alcotest.(check bool) "within clamp" true (k >= 4 && k <= 32);
  let forced = Smoothe_config.derive_prop_iters { cfg with Smoothe_config.prop_iters = Some 9 } g in
  Alcotest.(check int) "explicit wins" 9 forced

let test_assumption_names () =
  List.iter
    (fun a ->
      Alcotest.(check bool) "roundtrip" true
        (Smoothe_config.assumption_of_string (Smoothe_config.assumption_name a) = a))
    [ Smoothe_config.Independent; Smoothe_config.Correlated; Smoothe_config.Hybrid ];
  Alcotest.check_raises "unknown" (Invalid_argument "unknown assumption \"x\"") (fun () ->
      ignore (Smoothe_config.assumption_of_string "x"))

let () =
  Alcotest.run "smoothe"
    [
      ( "relaxation",
        [
          propagation_matches_reference Smoothe_config.Independent;
          propagation_matches_reference Smoothe_config.Correlated;
          propagation_matches_reference Smoothe_config.Hybrid;
          Alcotest.test_case "cp sums to 1 per class" `Quick test_cp_sums_to_one_per_class;
          Alcotest.test_case "root probability pinned" `Quick test_root_probability_one;
          full_loss_gradient_matches_fd;
          full_loss_gradient_cyclic;
        ] );
      ( "penalty",
        [
          Alcotest.test_case "no blocks on DAG" `Quick test_no_blocks_on_dag;
          Alcotest.test_case "blocks on cycle" `Quick test_blocks_on_cycle;
          Alcotest.test_case "penalty value behaviour" `Quick test_acyclicity_value_behaviour;
          Alcotest.test_case "full block when SCC off" `Quick test_full_block_when_scc_off;
        ] );
      ( "exact_marginals",
        [
          Alcotest.test_case "chain semantics" `Quick test_exact_marginals_chain;
          exact_marginals_match_phi_on_trees;
          Alcotest.test_case "space guard" `Quick test_exact_marginals_space_guard;
        ] );
      ( "temperature",
        [
          Alcotest.test_case "temperature sharpens cp" `Quick test_temperature_sharpens;
          Alcotest.test_case "entropy weight" `Slow test_entropy_weight_spreads_cp;
          Alcotest.test_case "annealing still optimal" `Quick test_annealing_still_optimal;
        ] );
      ( "sampler",
        [
          sampler_completeness;
          sampler_picks_argmax;
          Alcotest.test_case "repair breaks cycles" `Quick test_repair_breaks_cycle;
          Alcotest.test_case "best of batch" `Quick test_best_of_batch;
        ] );
      ( "extract",
        [
          Alcotest.test_case "fig1 under all assumptions" `Slow test_extract_fig1_all_assumptions;
          Alcotest.test_case "beats greedy on sharing" `Quick test_extract_beats_greedy_on_sharing;
          Alcotest.test_case "cyclic e-graph" `Quick test_extract_cyclic_egraph;
          smoothe_never_below_brute_force;
          Alcotest.test_case "patience stops early" `Quick test_patience_stops_early;
          Alcotest.test_case "history invariants" `Quick test_history_monotone_incumbent;
          Alcotest.test_case "mcm_8 near optimal" `Slow test_mcm8_near_optimal;
          Alcotest.test_case "matexp ablations agree" `Slow test_ablation_matexp_modes_agree;
          Alcotest.test_case "MLP cost extraction" `Slow test_nonlinear_model_extraction;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "time limit" `Quick test_time_limit_respected;
          Alcotest.test_case "trace decreasing" `Quick test_trace_is_decreasing;
        ] );
      ( "device",
        [
          Alcotest.test_case "oom" `Quick test_device_oom;
          Alcotest.test_case "batch derating" `Quick test_device_derates_batch;
          Alcotest.test_case "capacity boundaries" `Quick test_device_boundaries;
          Alcotest.test_case "memory model shapes" `Quick test_device_memory_model_shapes;
          Alcotest.test_case "scalar backend same result" `Slow
            test_scalar_backend_produces_same_result;
        ] );
      ( "portfolio",
        [
          Alcotest.test_case "fig1" `Quick test_portfolio_fig1;
          portfolio_dominates_members;
          Alcotest.test_case "non-linear uses ILP*" `Quick test_portfolio_nonlinear_uses_ilp_star;
        ] );
      ( "config",
        [
          Alcotest.test_case "derive_prop_iters" `Quick test_derive_prop_iters;
          Alcotest.test_case "assumption names" `Quick test_assumption_names;
        ] );
    ]
