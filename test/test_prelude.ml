(* Unit and property tests for the prelude substrate. *)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ Vec *)

let test_vec_push_pop () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check int) "last" 99 (Vec.last v);
  for i = 99 downto 0 do
    Alcotest.(check int) "pop order" i (Vec.pop v)
  done;
  Alcotest.(check bool) "empty" true (Vec.is_empty v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index 3 out of bounds [0,3)")
    (fun () -> ignore (Vec.get v 3));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop (Vec.create ())))

let test_vec_conversions () =
  let v = Vec.of_array [| 3; 1; 2 |] in
  Alcotest.(check (list int)) "to_list" [ 3; 1; 2 ] (Vec.to_list v);
  Vec.sort compare v;
  Alcotest.(check (list int)) "sort" [ 1; 2; 3 ] (Vec.to_list v);
  let doubled = Vec.map (fun x -> x * 2) v in
  Alcotest.(check (list int)) "map" [ 2; 4; 6 ] (Vec.to_list doubled)

let test_vec_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold" 10 (Vec.fold_left ( + ) 0 v);
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  Alcotest.(check int) "iteri count" 4 (List.length !seen);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v)

let vec_matches_list =
  qtest "Vec push/to_array matches list" QCheck2.Gen.(list int) (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs)

(* ----------------------------------------------------------- Union_find *)

let test_uf_basic () =
  let uf = Union_find.with_size 10 in
  Alcotest.(check int) "initial sets" 10 (Union_find.count_sets uf);
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 3);
  Alcotest.(check bool) "0~3" true (Union_find.same uf 0 3);
  Alcotest.(check bool) "0!~4" false (Union_find.same uf 0 4);
  Alcotest.(check int) "sets after unions" 7 (Union_find.count_sets uf)

let uf_equiv_is_transitive =
  qtest "union-find equivalence matches naive partition"
    QCheck2.Gen.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let uf = Union_find.with_size 20 in
      (* naive: labels array re-labelled on every merge *)
      let label = Array.init 20 Fun.id in
      List.iter
        (fun (a, b) ->
          ignore (Union_find.union uf a b);
          let la = label.(a) and lb = label.(b) in
          if la <> lb then
            Array.iteri (fun i l -> if l = lb then label.(i) <- la) label)
        pairs;
      let ok = ref true in
      for i = 0 to 19 do
        for j = 0 to 19 do
          if Union_find.same uf i j <> (label.(i) = label.(j)) then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 7);
    let u = Rng.uniform rng in
    Alcotest.(check bool) "uniform in range" true (u >= 0.0 && u < 1.0)
  done

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  let xs = Array.init 50 (fun _ -> Rng.int parent 1000) in
  let ys = Array.init 50 (fun _ -> Rng.int child 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

(* Regression: split must digest the parent's full 256-bit state.
   xoshiro256**'s output function reads only one state word, so a
   split seeded from one output would hand identical children to any
   two parents sharing that word — exactly the states built here. *)
let test_rng_split_full_state () =
  let base = Rng.state (Rng.create 41) in
  let variant i =
    (* same output-bearing word, different everywhere else *)
    let st = Array.copy base in
    st.(0) <- Int64.logxor st.(0) (Int64.of_int (0x1234 + i));
    st.(2) <- Int64.logxor st.(2) (Int64.of_int (0xbeef * (i + 1)));
    st.(3) <- Int64.add st.(3) (Int64.of_int (i + 1));
    Rng.of_state st
  in
  let child_stream p = Array.init 32 (fun _ -> Rng.int64 (Rng.split p)) in
  let streams = Array.init 8 (fun i -> child_stream (variant i)) in
  Array.iteri
    (fun i si ->
      Array.iteri
        (fun j sj ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "children of parents %d,%d differ" i j)
              true (si <> sj))
        streams)
    streams

let test_rng_split_decorrelated () =
  (* parent and child streams should not share draws pairwise; a weak
     split (child = perturbed parent) fails this long before any
     statistical test would *)
  let parent = Rng.create 1234 in
  let child = Rng.split parent in
  let grandchild = Rng.split child in
  let stream r = Array.init 256 (fun _ -> Rng.int r 2) in
  let a = stream parent and b = stream child and c = stream grandchild in
  let agree x y =
    let n = ref 0 in
    Array.iteri (fun i xi -> if xi = y.(i) then incr n) x;
    float_of_int !n /. 256.0
  in
  List.iter
    (fun (name, f) ->
      Alcotest.(check bool) (name ^ " near 1/2") true (Float.abs (f -. 0.5) < 0.15))
    [ ("parent/child", agree a b); ("parent/grandchild", agree a c); ("child/grandchild", agree b c) ]

let test_rng_gaussian_moments () =
  let rng = Rng.create 9 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  let mean = Stats.mean xs in
  let std = Stats.stddev xs in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "std near 1" true (Float.abs (std -. 1.0) < 0.05)

let test_rng_choose_weighted () =
  let rng = Rng.create 11 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30000 do
    let i = Rng.choose_weighted rng [| 1.0; 2.0; 7.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  let freq i = float_of_int counts.(i) /. 30000.0 in
  Alcotest.(check bool) "p0 ~ 0.1" true (Float.abs (freq 0 -. 0.1) < 0.02);
  Alcotest.(check bool) "p2 ~ 0.7" true (Float.abs (freq 2 -. 0.7) < 0.02)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3 in
  let a = Array.init 30 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "is permutation" true (sorted = Array.init 30 Fun.id)

let test_rng_state_roundtrip () =
  let rng = Rng.create 77 in
  (* burn part of the stream so the captured state is mid-sequence *)
  for _ = 1 to 123 do
    ignore (Rng.int rng 1000)
  done;
  let st = Rng.state rng in
  Alcotest.(check int) "four words" 4 (Array.length st);
  (* the restored generator continues the exact stream: draws from the
     original and the clone stay equal, across every draw type *)
  let clone = Rng.of_state st in
  for _ = 1 to 200 do
    Alcotest.(check int) "int stream continues" (Rng.int rng 1_000_000)
      (Rng.int clone 1_000_000)
  done;
  for _ = 1 to 50 do
    Alcotest.(check (float 0.0)) "uniform stream continues" (Rng.uniform rng)
      (Rng.uniform clone);
    Alcotest.(check (float 0.0)) "gaussian stream continues" (Rng.gaussian rng)
      (Rng.gaussian clone)
  done;
  (* capturing is passive: the original is not perturbed by [state] *)
  let before = Rng.state rng in
  Alcotest.(check bool) "state is passive" true (before = Rng.state rng)

let test_rng_of_state_rejects () =
  let fails st =
    match Rng.of_state st with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "wrong arity" true (fails [| 1L; 2L; 3L |]);
  Alcotest.(check bool) "all-zero fixed point" true (fails [| 0L; 0L; 0L; 0L |]);
  Alcotest.(check bool) "one non-zero word ok" false (fails [| 0L; 0L; 1L; 0L |])

(* ----------------------------------------------------------- Graph_algo *)

let graph_gen =
  (* random adjacency over n <= 12 nodes *)
  QCheck2.Gen.(
    bind (int_range 1 12) (fun n ->
        map
          (fun seed ->
            let rng = Rng.create seed in
            Array.init n (fun _ ->
                let deg = Rng.int rng 4 in
                Array.init deg (fun _ -> Rng.int rng n)))
          (int_bound 1_000_000)))

let naive_has_cycle succ =
  (* DFS with colours over the whole graph *)
  let n = Array.length succ in
  let colour = Array.make n 0 in
  let found = ref false in
  let rec dfs v =
    colour.(v) <- 1;
    Array.iter
      (fun w ->
        if colour.(w) = 1 then found := true
        else if colour.(w) = 0 then dfs w)
      succ.(v);
    colour.(v) <- 2
  in
  for v = 0 to n - 1 do
    if colour.(v) = 0 then dfs v
  done;
  !found

let topo_iff_acyclic =
  qtest "topological_order exists iff acyclic" graph_gen (fun succ ->
      Graph_algo.is_acyclic succ = not (naive_has_cycle succ))

let topo_respects_edges =
  qtest "topological order puts sources first" graph_gen (fun succ ->
      match Graph_algo.topological_order succ with
      | None -> true
      | Some order ->
          let pos = Array.make (Array.length succ) 0 in
          Array.iteri (fun i v -> pos.(v) <- i) order;
          let ok = ref true in
          Array.iteri
            (fun v ws -> Array.iter (fun w -> if pos.(v) >= pos.(w) then ok := false) ws)
            succ;
          !ok)

let scc_partition_valid =
  qtest "tarjan SCCs partition the nodes" graph_gen (fun succ ->
      let sccs = Graph_algo.tarjan_scc succ in
      let n = Array.length succ in
      let seen = Array.make n 0 in
      Array.iter (fun comp -> Array.iter (fun v -> seen.(v) <- seen.(v) + 1) comp) sccs;
      Array.for_all (fun c -> c = 1) seen)

let scc_mutual_reachability =
  qtest "nodes share an SCC iff mutually reachable" graph_gen (fun succ ->
      let n = Array.length succ in
      (* Floyd-Warshall reachability *)
      let reach = Array.make_matrix n n false in
      Array.iteri (fun v ws -> Array.iter (fun w -> reach.(v).(w) <- true) ws) succ;
      for k = 0 to n - 1 do
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
          done
        done
      done;
      let comp, _ = Graph_algo.scc_ids succ in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let mutual = (i = j) || (reach.(i).(j) && reach.(j).(i)) in
          if (comp.(i) = comp.(j)) <> mutual then ok := false
        done
      done;
      !ok)

let scc_reverse_topological =
  qtest "tarjan components come in reverse topological order" graph_gen (fun succ ->
      let sccs = Graph_algo.tarjan_scc succ in
      let comp, _ = Graph_algo.scc_ids succ in
      ignore sccs;
      (* every cross-component edge must point to an earlier component *)
      let ok = ref true in
      Array.iteri
        (fun v ws ->
          Array.iter (fun w -> if comp.(v) <> comp.(w) && comp.(w) > comp.(v) then ok := false) ws)
        succ;
      !ok)

let test_reachable () =
  let succ = [| [| 1 |]; [| 2 |]; [||]; [| 4 |]; [||] |] in
  let r = Graph_algo.reachable succ [ 0 ] in
  Alcotest.(check (list bool)) "reach from 0" [ true; true; true; false; false ]
    (Array.to_list r)

let test_has_cycle_from () =
  let succ = [| [| 1 |]; [| 0 |]; [| 2 |] |] in
  Alcotest.(check bool) "cycle visible from 0" true (Graph_algo.has_cycle_from succ [ 0 ]);
  Alcotest.(check bool) "self-loop node 2" true (Graph_algo.has_cycle_from succ [ 2 ]);
  let dag = [| [| 1 |]; [| 2 |]; [||] |] in
  Alcotest.(check bool) "no cycle in dag" false (Graph_algo.has_cycle_from dag [ 0 ])

(* ---------------------------------------------------------------- Stats *)

let test_stats_basic () =
  Test_util.check_close ~msg:"mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  Test_util.check_close ~msg:"geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0; 2.0 |]);
  Test_util.check_close ~msg:"median" 2.5 (Stats.median [| 1.0; 2.0; 3.0; 4.0 |]);
  Test_util.check_close ~msg:"max_abs_diff" 3.0 (Stats.max_abs_diff [| 1.0; 4.0; 2.0 |]);
  Test_util.check_close ~msg:"variance" 1.25 (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_geomean_zero () =
  Test_util.check_close ~msg:"zero kills geomean" 0.0 (Stats.geomean [| 0.0; 5.0 |])

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  Test_util.check_close ~msg:"p0" 10.0 (Stats.percentile xs 0.0);
  Test_util.check_close ~msg:"p100" 50.0 (Stats.percentile xs 100.0);
  Test_util.check_close ~msg:"p25" 20.0 (Stats.percentile xs 25.0)

let test_stats_nan_policy () =
  (* any NaN input poisons the result — visibly, not by landing at an
     arbitrary rank of a bit-pattern sort *)
  Alcotest.(check bool) "percentile propagates NaN" true
    (Float.is_nan (Stats.percentile [| 1.0; Float.nan; 3.0 |] 50.0));
  Alcotest.(check bool) "median propagates NaN" true
    (Float.is_nan (Stats.median [| Float.nan; 2.0 |]));
  (* a NaN quantile is a caller bug, not data *)
  Alcotest.check_raises "NaN q rejected"
    (Invalid_argument "Stats.percentile: q outside [0,100]") (fun () ->
      ignore (Stats.percentile [| 1.0; 2.0 |] Float.nan));
  (* infinities are data and sort correctly under Float.compare *)
  Test_util.check_close ~msg:"p50 with -inf" 2.0
    (Stats.percentile [| Float.neg_infinity; 2.0; 3.0 |] 50.0);
  Test_util.check_close ~msg:"p0 is min" Float.neg_infinity
    (Stats.percentile [| 5.0; Float.neg_infinity |] 0.0)

let percentile_nan_and_bounds =
  qtest "percentile: NaN iff input has NaN, else within [min,max]"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 30)
           (oneof [ float_range (-50.0) 50.0; return Float.nan; return Float.infinity ]))
        (float_range 0.0 100.0))
    (fun (xs, q) ->
      let a = Array.of_list xs in
      let r = Stats.percentile a q in
      if List.exists Float.is_nan xs then Float.is_nan r
      else
        let lo = List.fold_left Float.min Float.infinity xs in
        let hi = List.fold_left Float.max Float.neg_infinity xs in
        lo <= r && r <= hi)

let geomean_le_mean =
  qtest "geomean <= mean (AM-GM)"
    QCheck2.Gen.(list_size (int_range 1 20) (float_range 0.01 100.0))
    (fun xs ->
      let a = Array.of_list xs in
      Stats.geomean a <= Stats.mean a +. 1e-9)

(* ----------------------------------------------------------------- Heap *)

let test_heap_sorts () =
  let h = Heap.create ~leq:(fun a b -> a <= b) in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let out = ref [] in
  while not (Heap.is_empty h) do
    out := Heap.pop h :: !out
  done;
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 5; 7; 8; 9 ] (List.rev !out)

let heap_sort_matches_list_sort =
  qtest "heap drains in sorted order" QCheck2.Gen.(list int) (fun xs ->
      let h = Heap.create ~leq:(fun a b -> a <= b) in
      List.iter (Heap.push h) xs;
      let out = ref [] in
      while not (Heap.is_empty h) do
        out := Heap.pop h :: !out
      done;
      List.rev !out = List.sort compare xs)

(* ----------------------------------------------------------------- Json *)

let test_json_scalars () =
  Alcotest.(check bool) "null" true (Json.parse "null" = Json.Null);
  Alcotest.(check bool) "true" true (Json.parse "true" = Json.Bool true);
  Alcotest.(check bool) "number" true (Json.parse "-1.5e2" = Json.Number (-150.0));
  Alcotest.(check bool) "string" true (Json.parse {|"hi"|} = Json.String "hi")

let test_json_nested () =
  let v = Json.parse {| { "a": [1, 2, {"b": null}], "c": "x" } |} in
  Alcotest.(check bool) "member c" true (Json.member "c" v = Json.String "x");
  match Json.member "a" v with
  | Json.Array [ Json.Number 1.0; Json.Number 2.0; Json.Object [ ("b", Json.Null) ] ] -> ()
  | _ -> Alcotest.fail "nested array shape"

let test_json_escapes () =
  Alcotest.(check bool) "escapes" true
    (Json.parse "\"a\\n\\t\\\"\\\\b\"" = Json.String "a\n\t\"\\b");
  Alcotest.(check bool) "unicode ascii" true (Json.parse "\"\\u0041\"" = Json.String "A")

let test_json_errors () =
  let fails s = match Json.parse s with exception Json.Parse_error _ -> true | _ -> false in
  Alcotest.(check bool) "trailing junk" true (fails "1 2");
  Alcotest.(check bool) "unterminated string" true (fails {|"abc|});
  Alcotest.(check bool) "bad literal" true (fails "trup");
  Alcotest.(check bool) "unclosed object" true (fails {|{"a": 1|});
  Alcotest.(check bool) "member of non-object" true
    (match Json.member "x" (Json.Number 1.0) with
    | exception Json.Parse_error _ -> true
    | _ -> false)

let json_gen =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun f -> Json.Number (Float.of_int f)) (int_range (-1000) 1000);
               map
                 (fun f -> Json.Number f)
                 (oneofl [ Float.nan; Float.infinity; Float.neg_infinity; 1.5; -3.25e7 ]);
               map (fun s -> Json.String s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
             ]
         else
           oneof
             [
               map (fun xs -> Json.Array xs) (list_size (int_range 0 4) (self (n / 2)));
               map
                 (fun kvs ->
                   (* distinct keys *)
                   let seen = Hashtbl.create 4 in
                   Json.Object
                     (List.filteri
                        (fun i _ -> i < 4)
                        (List.filter_map
                           (fun (k, v) ->
                             if Hashtbl.mem seen k then None
                             else begin
                               Hashtbl.add seen k ();
                               Some (k, v)
                             end)
                           kvs)))
                 (list_size (int_range 0 4)
                    (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)) (self (n / 2))));
             ])

(* non-finite numbers have no JSON syntax; the printer degrades them to
   null, so round-tripping normalises them away *)
let rec json_normalize = function
  | Json.Number f when not (Float.is_finite f) -> Json.Null
  | Json.Array xs -> Json.Array (List.map json_normalize xs)
  | Json.Object kvs -> Json.Object (List.map (fun (k, v) -> (k, json_normalize v)) kvs)
  | v -> v

let json_roundtrip =
  qtest ~count:300 "print . parse = normalize" json_gen (fun v ->
      let n = json_normalize v in
      Json.parse (Json.to_string v) = n && Json.parse (Json.to_string ~pretty:true v) = n)

let test_json_nonfinite () =
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Number Float.nan));
  Alcotest.(check string) "inf" "null" (Json.to_string (Json.Number Float.infinity));
  Alcotest.(check string) "-inf" "null" (Json.to_string (Json.Number Float.neg_infinity));
  Alcotest.(check bool) "inside a document" true
    (Json.parse (Json.to_string (Json.Object [ ("x", Json.Number Float.nan) ]))
    = Json.Object [ ("x", Json.Null) ])

(* ------------------------------------------------------------- Checksum *)

let test_crc32_vectors () =
  (* the standard CRC-32/IEEE check value, plus the empty string *)
  Alcotest.(check int) "empty" 0 (Checksum.crc32 "");
  Alcotest.(check int) "check value" 0xCBF43926 (Checksum.crc32 "123456789");
  Alcotest.(check int) "windowed = substring"
    (Checksum.crc32 "345")
    (Checksum.crc32 ~off:2 ~len:3 "12345678")

let crc32_detects_single_bit_flip =
  qtest ~count:300 "single bit flip always changes crc32"
    QCheck2.Gen.(pair (string_size ~gen:char (int_range 1 64)) (pair nat nat))
    (fun (s, (i, j)) ->
      let i = i mod String.length s and j = j mod 8 in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl j)));
      Checksum.crc32 (Bytes.to_string b) <> Checksum.crc32 s)

(* ---------------------------------------------------------------- Timer *)

let test_timer_deadline () =
  let d = Timer.deadline_after 0.05 in
  Alcotest.(check bool) "not yet expired" false (Timer.expired d);
  Unix.sleepf 0.06;
  Alcotest.(check bool) "expired" true (Timer.expired d);
  Alcotest.(check bool) "no deadline never expires" false (Timer.expired Timer.no_deadline)

let () =
  Alcotest.run "prelude"
    [
      ( "vec",
        [
          Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "conversions" `Quick test_vec_conversions;
          Alcotest.test_case "iter/fold" `Quick test_vec_iter_fold;
          vec_matches_list;
        ] );
      ( "union_find",
        [ Alcotest.test_case "basic" `Quick test_uf_basic; uf_equiv_is_transitive ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "split digests full state" `Quick test_rng_split_full_state;
          Alcotest.test_case "split decorrelated" `Quick test_rng_split_decorrelated;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "choose_weighted" `Slow test_rng_choose_weighted;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "state roundtrip" `Quick test_rng_state_roundtrip;
          Alcotest.test_case "of_state rejects" `Quick test_rng_of_state_rejects;
        ] );
      ( "graph_algo",
        [
          topo_iff_acyclic;
          topo_respects_edges;
          scc_partition_valid;
          scc_mutual_reachability;
          scc_reverse_topological;
          Alcotest.test_case "reachable" `Quick test_reachable;
          Alcotest.test_case "has_cycle_from" `Quick test_has_cycle_from;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "geomean zero" `Quick test_stats_geomean_zero;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "NaN policy" `Quick test_stats_nan_policy;
          percentile_nan_and_bounds;
          geomean_le_mean;
        ] );
      ("heap", [ Alcotest.test_case "sorts" `Quick test_heap_sorts; heap_sort_matches_list_sort ]);
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "nested" `Quick test_json_nested;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "non-finite numbers emit null" `Quick test_json_nonfinite;
          json_roundtrip;
        ] );
      ( "checksum",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_vectors;
          crc32_detects_single_bit_flip;
        ] );
      ("timer", [ Alcotest.test_case "deadline" `Quick test_timer_deadline ]);
    ]
