(* The extraction daemon, tested deterministically: the engine's manual
   executor mode makes admission decisions synchronous and execution
   explicit ([run_pending]), so overload, crash, deadline and drain
   behaviour are all exact assertions, not timing-dependent ones. *)

module P = Serve_protocol

let small_graph () = (Registry.find_instance "mcm_8").Registry.build ()

let inline_source () = P.Inline (Egraph.Serial.to_string (small_graph ()))

let quick_request ?(id = "r") ?(seed = 7) ?(iters = 10) ?(batch = 2) ?deadline_ms
    ?(fault_plan = "") ?(use_cache = true) () =
  {
    P.default_request with
    P.id;
    source = inline_source ();
    seed;
    iters;
    batch;
    deadline_ms;
    fault_plan;
    use_cache;
  }

let manual_engine ?(queue_limit = 3) ?(retry_attempts = 1) ?(cache_capacity = 16) () =
  Serve_engine.create
    ~config:
      {
        Serve_engine.default_config with
        Serve_engine.queue_limit;
        executors = 0;
        retry_attempts;
        cache_capacity;
      }
    ()

let code_of resp =
  match resp.P.body with Ok _ -> None | Error e -> Some e.P.code

let ok_of what resp =
  match resp.P.body with
  | Ok body -> body
  | Error e ->
      Alcotest.failf "%s: expected ok, got %s: %s" what (P.error_code_name e.P.code)
        e.P.message

(* --- protocol ---------------------------------------------------------- *)

let test_request_roundtrip () =
  let req =
    {
      P.id = "abc";
      source = P.Instance "mcm_8";
      method_ = P.Greedy_dag;
      budget = Some 1.5;
      deadline_ms = Some 250.0;
      seed = 13;
      batch = 4;
      iters = 17;
      lambda_ = 5.0;
      costs = Some [| 1.0; 2.5 |];
      fault_plan = "crash@2";
      use_cache = false;
    }
  in
  let text = Json.to_string (P.request_to_json req) in
  match P.request_of_json (Json.parse text) with
  | Error msg -> Alcotest.failf "round-trip rejected: %s" msg
  | Ok got ->
      Alcotest.(check string) "id" req.P.id got.P.id;
      Alcotest.(check bool) "source" true (got.P.source = P.Instance "mcm_8");
      Alcotest.(check bool) "method" true (got.P.method_ = P.Greedy_dag);
      Alcotest.(check (option (float 0.0))) "budget" req.P.budget got.P.budget;
      Alcotest.(check (option (float 0.0))) "deadline" req.P.deadline_ms got.P.deadline_ms;
      Alcotest.(check int) "seed" req.P.seed got.P.seed;
      Alcotest.(check int) "batch" req.P.batch got.P.batch;
      Alcotest.(check int) "iters" req.P.iters got.P.iters;
      Alcotest.(check string) "fault plan" req.P.fault_plan got.P.fault_plan;
      Alcotest.(check bool) "cache flag" req.P.use_cache got.P.use_cache;
      Alcotest.(check bool) "costs" true (got.P.costs = Some [| 1.0; 2.5 |])

let test_response_roundtrip () =
  let ok =
    {
      P.resp_id = "x";
      elapsed_ms = 12.5;
      queue_ms = 0.25;
      body =
        Ok
          {
            P.cost = 166.0;
            valid = true;
            choices = [ (0, 0); (3, 7) ];
            iterations = 20;
            cache_hit = true;
            health = "healthy";
          };
    }
  in
  (match P.response_of_json (Json.parse (Json.to_string (P.response_to_json ok))) with
  | Error msg -> Alcotest.failf "ok round-trip rejected: %s" msg
  | Ok got -> Alcotest.(check bool) "ok preserved" true (got = ok));
  let err = P.error_response ~retry_after_ms:120.0 ~id:"y" P.Overloaded "full" in
  match P.response_of_json (Json.parse (Json.to_string (P.response_to_json err))) with
  | Error msg -> Alcotest.failf "error round-trip rejected: %s" msg
  | Ok got -> Alcotest.(check bool) "error preserved" true (got = err)

let test_request_validation () =
  let base = P.request_to_json (quick_request ()) in
  let with_field name v =
    match base with
    | Json.Object fields -> Json.Object ((name, v) :: List.remove_assoc name fields)
    | _ -> assert false
  in
  let rejects what j =
    match P.request_of_json j with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: should have been rejected" what
  in
  rejects "zero budget" (with_field "budget" (Json.Number 0.0));
  rejects "negative budget" (with_field "budget" (Json.Number (-1.0)));
  rejects "nan budget" (with_field "budget" (Json.Number Float.nan));
  rejects "infinite deadline" (with_field "deadline_ms" (Json.Number Float.infinity));
  rejects "zero batch" (with_field "batch" (Json.Number 0.0));
  rejects "fractional iters" (with_field "iters" (Json.Number 2.5));
  rejects "unknown method" (with_field "method" (Json.String "simplex"));
  rejects "bad fault plan" (with_field "fault_plan" (Json.String "frobnicate@9"));
  rejects "non-finite cost" (with_field "costs" (Json.Array [ Json.Number Float.nan ]));
  rejects "no source"
    (Json.Object [ ("id", Json.String "x"); ("method", Json.String "smoothe") ]);
  rejects "not an object" (Json.String "hello");
  match P.request_of_json base with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "valid request rejected: %s" msg

(* --- admission state machine ------------------------------------------- *)

let test_admission_machine () =
  let adm = Admission.create ~queue_limit:2 in
  let offer () = Admission.offer adm ~est_ms:10.0 in
  Alcotest.(check bool) "1st admitted" true (offer () = Admission.Admit);
  Alcotest.(check bool) "2nd admitted" true (offer () = Admission.Admit);
  (match offer () with
  | Admission.Shed { retry_after_ms } ->
      Alcotest.(check bool) "retry hint positive" true (retry_after_ms >= 1.0)
  | _ -> Alcotest.fail "3rd offer should shed");
  Admission.start adm;
  (* one slot freed: queued is back under the limit *)
  Alcotest.(check bool) "post-start admitted" true (offer () = Admission.Admit);
  Admission.finish adm;
  Admission.drain adm;
  (match offer () with
  | Admission.Refuse Admission.Draining -> ()
  | _ -> Alcotest.fail "draining must refuse");
  Admission.stop adm;
  (* terminal: drain cannot resurrect, refusals now carry Stopped *)
  Admission.drain adm;
  (match offer () with
  | Admission.Refuse Admission.Stopped -> ()
  | _ -> Alcotest.fail "stopped must refuse");
  let s = Admission.snapshot adm in
  Alcotest.(check int) "admitted" 3 s.Admission.admitted;
  Alcotest.(check int) "shed" 1 s.Admission.shed;
  Alcotest.(check int) "refused" 2 s.Admission.refused;
  Alcotest.(check int) "completed" 1 s.Admission.completed;
  Alcotest.(check bool) "not idle (2 queued)" false (Admission.idle adm);
  Alcotest.check_raises "queue limit must be >= 1"
    (Invalid_argument "Admission.create: queue_limit must be >= 1") (fun () ->
      ignore (Admission.create ~queue_limit:0))

(* --- cache ------------------------------------------------------------- *)

let test_cache_lru () =
  let c = Serve_cache.create ~capacity:2 in
  Serve_cache.add c "k1" 1;
  Serve_cache.add c "k2" 2;
  Alcotest.(check (option int)) "k1 present" (Some 1) (Serve_cache.find c "k1");
  (* k1 was just refreshed, so adding k3 must evict k2 *)
  Serve_cache.add c "k3" 3;
  Alcotest.(check (option int)) "k2 evicted" None (Serve_cache.find c "k2");
  Alcotest.(check (option int)) "k1 survived" (Some 1) (Serve_cache.find c "k1");
  Alcotest.(check (option int)) "k3 present" (Some 3) (Serve_cache.find c "k3");
  Alcotest.(check int) "size bounded" 2 (Serve_cache.size c);
  Alcotest.(check int) "hits" 3 (Serve_cache.hits c);
  Alcotest.(check int) "misses" 1 (Serve_cache.misses c);
  let off = Serve_cache.create ~capacity:0 in
  Serve_cache.add off "k" 1;
  Alcotest.(check (option int)) "capacity 0 stores nothing" None (Serve_cache.find off "k");
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Serve_cache.create: capacity must be >= 0") (fun () ->
      ignore (Serve_cache.create ~capacity:(-1)))

let test_cache_key_bit_sensitivity () =
  let g = small_graph () in
  let text = Egraph.Serial.to_string g in
  let fingerprint =
    {
      Checkpoint.fp_graph = g.Egraph.name;
      fp_nodes = Egraph.num_nodes g;
      fp_classes = Egraph.num_classes g;
      fp_seed = 7;
      fp_batch = 8;
    }
  in
  let key_of text =
    Serve_cache.key ~fingerprint ~graph_crc:(Checksum.crc32 text) ~config_digest:"cfg"
  in
  let base = key_of text in
  Alcotest.(check string) "identical content, identical key" base (key_of text);
  (* every single-bit mutation of the serialized text must change the
     key, even though name/shape/seed/batch (the fingerprint) agree *)
  let mutations = ref 0 in
  String.iteri
    (fun i _ ->
      if i mod 97 = 0 then
        for bit = 0 to 7 do
          let b = Bytes.of_string text in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
          incr mutations;
          if key_of (Bytes.to_string b) = base then
            Alcotest.failf "bit %d of byte %d flipped but the key did not move" bit i
        done)
    text;
  Alcotest.(check bool) "mutations exercised" true (!mutations > 50)

let test_cache_end_to_end () =
  let engine = manual_engine () in
  let submit req =
    match Serve_engine.offer engine req with
    | Serve_engine.Done r -> r
    | Serve_engine.Queued tk ->
        ignore (Serve_engine.run_pending engine);
        Serve_engine.await tk
  in
  let first = ok_of "first run" (submit (quick_request ())) in
  Alcotest.(check bool) "first run misses" false first.P.cache_hit;
  let hit = ok_of "repeat" (submit (quick_request ())) in
  Alcotest.(check bool) "repeat hits" true hit.P.cache_hit;
  (* bit-identical: same cost bits, same choices, same iteration count *)
  Alcotest.(check int64) "cost bits identical"
    (Int64.bits_of_float first.P.cost)
    (Int64.bits_of_float hit.P.cost);
  Alcotest.(check bool) "choices identical" true (first.P.choices = hit.P.choices);
  Alcotest.(check int) "iterations identical" first.P.iterations hit.P.iterations;
  let other_seed = ok_of "other seed" (submit (quick_request ~seed:8 ())) in
  Alcotest.(check bool) "different seed misses" false other_seed.P.cache_hit;
  let no_cache = ok_of "bypass" (submit (quick_request ~use_cache:false ())) in
  Alcotest.(check bool) "cache bypass misses" false no_cache.P.cache_hit;
  (* a changed cost vector is a content change: the key must miss even
     though the graph name, shape, seed and batch all agree *)
  let g = small_graph () in
  let costs = Array.init (Egraph.num_nodes g) (fun i -> 1.0 +. float_of_int (i mod 3)) in
  let tweaked = Array.copy costs in
  tweaked.(0) <- tweaked.(0) +. 1.0;
  let a =
    ok_of "costs A" (submit { (quick_request ()) with P.costs = Some costs })
  in
  Alcotest.(check bool) "costs A misses" false a.P.cache_hit;
  let b =
    ok_of "costs B" (submit { (quick_request ()) with P.costs = Some tweaked })
  in
  Alcotest.(check bool) "mutated costs miss" false b.P.cache_hit;
  (* satellite fix: hit/miss counters must be observable from outside
     the process, through stats and its JSON reply *)
  let s = Serve_engine.stats engine in
  Alcotest.(check int) "one hit surfaced" 1 s.Serve_engine.cache_hits;
  Alcotest.(check int) "misses surfaced" 4 s.Serve_engine.cache_misses;
  Alcotest.(check (float 1e-9)) "hit rate derived" 0.2 s.Serve_engine.cache_hit_rate;
  let j = Serve_engine.stats_json engine in
  Alcotest.(check (float 1e-9)) "hits in the stats reply" 1.0
    (Json.get_number (Json.member "cache_hits" j));
  Alcotest.(check (float 1e-9)) "misses in the stats reply" 4.0
    (Json.get_number (Json.member "cache_misses" j));
  Alcotest.(check (float 1e-9)) "hit rate in the stats reply" 0.2
    (Json.get_number (Json.member "cache_hit_rate" j));
  Serve_engine.stop engine

(* --- the deterministic overload acceptance test ------------------------ *)

let test_overload_crash_and_survival () =
  (* queue limit Q = 3, N = 8 offered in one burst: exactly N - Q = 5
     must shed with a structured overloaded response; the admitted ones
     complete within their deadline; one admitted request carries an
     injected crash and with retry_attempts = 1 becomes a structured
     crashed response — after which the daemon serves the next request *)
  let engine = manual_engine ~queue_limit:3 ~retry_attempts:1 () in
  let requests =
    List.init 8 (fun i ->
        quick_request
          ~id:(Printf.sprintf "r%d" i)
          ~seed:i
          ~deadline_ms:60_000.0
          ~fault_plan:(if i = 1 then "crash@1" else "")
          ~use_cache:false ())
  in
  let outcomes = List.map (Serve_engine.offer engine) requests in
  let shed =
    List.filter_map
      (function
        | Serve_engine.Done r when code_of r = Some P.Overloaded -> Some r | _ -> None)
      outcomes
  in
  Alcotest.(check int) "exactly N - Q shed" 5 (List.length shed);
  List.iter
    (fun r ->
      match r.P.body with
      | Error { P.retry_after_ms = Some ms; _ } ->
          Alcotest.(check bool) "retry hint positive" true (ms > 0.0)
      | _ -> Alcotest.fail "shed response must carry retry_after_ms")
    shed;
  let ran = Serve_engine.run_pending engine in
  Alcotest.(check int) "exactly Q executed" 3 ran;
  List.iteri
    (fun i outcome ->
      match outcome with
      | Serve_engine.Done _ -> ()
      | Serve_engine.Queued tk -> (
          let r = Serve_engine.await tk in
          if i = 1 then (
            Alcotest.(check (option string))
              "crash-fault request crashed, structurally" (Some "crashed")
              (Option.map P.error_code_name (code_of r));
            match r.P.body with
            | Error e ->
                Alcotest.(check bool)
                  "crash message names the attempts" true
                  (String.length e.P.message > 0)
            | Ok _ -> assert false)
          else
            let body = ok_of (Printf.sprintf "admitted r%d" i) r in
            Alcotest.(check bool) (Printf.sprintf "r%d valid" i) true body.P.valid))
    outcomes;
  (* the injected crash must not have taken the daemon down *)
  let after =
    match Serve_engine.offer engine (quick_request ~id:"after" ~use_cache:false ()) with
    | Serve_engine.Done r -> r
    | Serve_engine.Queued tk ->
        ignore (Serve_engine.run_pending engine);
        Serve_engine.await tk
  in
  let body = ok_of "post-crash request" after in
  Alcotest.(check bool) "post-crash request valid" true body.P.valid;
  let s = Serve_engine.stats engine in
  Alcotest.(check int) "admitted counted" 4 s.Serve_engine.admission.Admission.admitted;
  Alcotest.(check int) "completed counted" 4 s.Serve_engine.admission.Admission.completed;
  Alcotest.(check int) "shed counted" 5 s.Serve_engine.admission.Admission.shed;
  Serve_engine.stop engine

let test_crash_with_retry_recovers () =
  let engine = manual_engine ~retry_attempts:2 () in
  let resp =
    match
      Serve_engine.offer engine (quick_request ~fault_plan:"crash@1" ~use_cache:false ())
    with
    | Serve_engine.Done r -> r
    | Serve_engine.Queued tk ->
        ignore (Serve_engine.run_pending engine);
        Serve_engine.await tk
  in
  let body = ok_of "crash then retry" resp in
  Alcotest.(check bool) "recovered run valid" true body.P.valid;
  Alcotest.(check bool)
    "health records the recovery" true
    (let h = body.P.health in
     let has needle =
       let nl = String.length needle and hl = String.length h in
       let rec go i = i + nl <= hl && (String.sub h i nl = needle || go (i + 1)) in
       go 0
     in
     has "recovery");
  (* a faulted run must not poison the cache *)
  let again =
    match
      Serve_engine.offer engine (quick_request ~fault_plan:"" ~use_cache:true ())
    with
    | Serve_engine.Done r -> r
    | Serve_engine.Queued tk ->
        ignore (Serve_engine.run_pending engine);
        Serve_engine.await tk
  in
  Alcotest.(check bool)
    "faulted run not cached" false (ok_of "clean rerun" again).P.cache_hit;
  Serve_engine.stop engine

let test_deadline_expiry () =
  let engine = manual_engine () in
  match Serve_engine.offer engine (quick_request ~deadline_ms:20.0 ~use_cache:false ()) with
  | Serve_engine.Done r ->
      Alcotest.failf "expected admission, got immediate %s"
        (match code_of r with Some c -> P.error_code_name c | None -> "ok")
  | Serve_engine.Queued tk ->
      (* the request waits in queue past its overall deadline *)
      Unix.sleepf 0.05;
      ignore (Serve_engine.run_pending engine);
      let r = Serve_engine.await tk in
      Alcotest.(check (option string))
        "expired in queue" (Some "deadline_expired")
        (Option.map P.error_code_name (code_of r));
      Alcotest.(check bool) "queue wait reported" true (r.P.queue_ms >= 20.0);
      Serve_engine.stop engine

let test_bad_requests_never_admitted () =
  let engine = manual_engine () in
  let expect_bad what req =
    match Serve_engine.offer engine req with
    | Serve_engine.Done r ->
        Alcotest.(check (option string))
          what (Some "bad_request")
          (Option.map P.error_code_name (code_of r))
    | Serve_engine.Queued _ -> Alcotest.failf "%s: must not be admitted" what
  in
  expect_bad "unknown instance"
    { (quick_request ()) with P.source = P.Instance "no_such_instance" };
  expect_bad "garbage inline graph" { (quick_request ()) with P.source = P.Inline "%%%" };
  expect_bad "cost vector length mismatch"
    { (quick_request ()) with P.costs = Some [| 1.0 |] };
  let s = Serve_engine.stats engine in
  Alcotest.(check int) "nothing admitted" 0 s.Serve_engine.admission.Admission.admitted;
  Serve_engine.stop engine

let test_drain_refuses_then_stop_fails_queued () =
  let engine = manual_engine ~queue_limit:4 () in
  let tickets =
    List.filter_map
      (fun i ->
        match
          Serve_engine.offer engine
            (quick_request ~id:(Printf.sprintf "q%d" i) ~seed:i ~use_cache:false ())
        with
        | Serve_engine.Queued tk -> Some tk
        | Serve_engine.Done _ -> None)
      [ 0; 1 ]
  in
  Alcotest.(check int) "both queued" 2 (List.length tickets);
  Serve_engine.drain engine;
  (match Serve_engine.offer engine (quick_request ~id:"late" ()) with
  | Serve_engine.Done r ->
      Alcotest.(check (option string))
        "refused while draining" (Some "draining")
        (Option.map P.error_code_name (code_of r))
  | Serve_engine.Queued _ -> Alcotest.fail "draining engine admitted a request");
  (* manual mode: drain leaves execution to the caller; stop instead
     fails whatever is still queued with a structured error *)
  Serve_engine.stop engine;
  List.iter
    (fun tk ->
      let r = Serve_engine.await tk in
      Alcotest.(check (option string))
        "queued ticket failed structurally" (Some "draining")
        (Option.map P.error_code_name (code_of r)))
    tickets

let test_executor_domains () =
  let engine =
    Serve_engine.create
      ~config:
        {
          Serve_engine.default_config with
          Serve_engine.queue_limit = 8;
          executors = 2;
          cache_capacity = 0;
        }
      ()
  in
  let tickets =
    List.map
      (fun i ->
        Serve_engine.offer engine
          (quick_request ~id:(Printf.sprintf "d%d" i) ~seed:i ~iters:6 ()))
      [ 0; 1; 2; 3 ]
  in
  List.iteri
    (fun i outcome ->
      let r =
        match outcome with
        | Serve_engine.Queued tk -> Serve_engine.await tk
        | Serve_engine.Done r -> r
      in
      let body = ok_of (Printf.sprintf "domain-executed d%d" i) r in
      Alcotest.(check bool) (Printf.sprintf "d%d valid" i) true body.P.valid)
    tickets;
  (* per-request fault plans are process-ambient: a multi-executor
     daemon must reject them instead of racing *)
  (match Serve_engine.offer engine (quick_request ~fault_plan:"crash@1" ()) with
  | Serve_engine.Done r ->
      Alcotest.(check (option string))
        "fault plan rejected with >1 executor" (Some "bad_request")
        (Option.map P.error_code_name (code_of r))
  | Serve_engine.Queued _ -> Alcotest.fail "fault plan admitted with 2 executors");
  Serve_engine.drain engine;
  let s = Serve_engine.stats engine in
  Alcotest.(check int) "all completed" 4 s.Serve_engine.admission.Admission.completed;
  Serve_engine.stop engine

(* --- request-id correlation --------------------------------------------- *)

let test_request_id_propagation () =
  (* one request followed across the three telemetry surfaces: every
     log line, the serve.request trace span and the health events must
     carry the same daemon-minted id — client id + admission sequence —
     so a crash-and-retry is attributable even when clients reuse ids *)
  Obs.enable ();
  Trace.reset ();
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Trace.reset ();
      Metrics.reset ())
  @@ fun () ->
  let engine = manual_engine ~retry_attempts:2 () in
  Log.with_memory (fun () ->
      match
        Serve_engine.offer engine
          (quick_request ~id:"follow" ~fault_plan:"crash@1" ~use_cache:false ())
      with
      | Serve_engine.Done r ->
          Alcotest.failf "expected admission, got %s"
            (Json.to_string (P.response_to_json r))
      | Serve_engine.Queued tk ->
          ignore (Serve_engine.run_pending engine);
          ignore (ok_of "retried request" (Serve_engine.await tk)));
  let rid = "follow#1" in
  (* the log: every record of the request carries the minted id *)
  let tagged =
    List.filter_map
      (fun r ->
        match Json.member "req" r with
        | Json.String id when id = rid ->
            Some (Json.get_string (Json.member "event" r))
        | _ -> None)
      (Log.records ())
  in
  List.iter
    (fun e -> Alcotest.(check bool) (e ^ " logged under the rid") true (List.mem e tagged))
    [
      "request.received"; "request.admitted"; "request.dequeued"; "request.health";
      "request.completed";
    ];
  Alcotest.(check bool) "no record escaped the rid" true
    (List.for_all
       (fun r -> match Json.member "req" r with Json.String id -> id = rid | _ -> false)
       (Log.records ()));
  (* the trace: the request span is stamped with the same id *)
  (match
     List.find_opt (fun s -> s.Trace.name = "serve.request") (Trace.spans ())
   with
  | Some s ->
      Alcotest.(check (option string)) "span rid attr" (Some rid)
        (List.assoc_opt "rid" s.Trace.args);
      Alcotest.(check (option string)) "span keeps the client id" (Some "follow")
        (List.assoc_opt "id" s.Trace.args)
  | None -> Alcotest.fail "serve.request span missing");
  (* the health log: the injected crash and its retry are attributed to
     the request's member name *)
  let members =
    List.map (fun e -> e.Health.member) (Health.events (Serve_engine.health engine))
  in
  Alcotest.(check bool) "health events name the rid" true
    (List.mem ("request:" ^ rid) members);
  (* a second request gets a fresh sequence number even with the same
     client id *)
  Log.with_memory (fun () ->
      match Serve_engine.offer engine (quick_request ~id:"follow" ~use_cache:false ()) with
      | Serve_engine.Done _ -> Alcotest.fail "expected admission"
      | Serve_engine.Queued tk ->
          ignore (Serve_engine.run_pending engine);
          ignore (ok_of "second request" (Serve_engine.await tk)));
  Alcotest.(check bool) "sequence advances" true
    (List.exists
       (fun r -> match Json.member "req" r with Json.String id -> id = "follow#2" | _ -> false)
       (Log.records ()));
  Serve_engine.stop engine

(* --- socket transport --------------------------------------------------- *)

let test_socket_end_to_end () =
  (* the daemon keeps its metrics sink live (the CLI enables it
     unconditionally): mirror that here so the telemetry op has data *)
  Obs.enable ();
  Trace.reset ();
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Trace.reset ();
      Metrics.reset ())
  @@ fun () ->
  let path = Printf.sprintf "/tmp/smoothe-test-%d.sock" (Unix.getpid ()) in
  let engine =
    Serve_engine.create
      ~config:
        { Serve_engine.default_config with Serve_engine.queue_limit = 8; executors = 1 }
      ()
  in
  let srv = Serve_socket.create ~engine ~path () in
  let server = Thread.create (fun () -> Serve_socket.run srv) () in
  Fun.protect
    ~finally:(fun () ->
      Serve_socket.shutdown srv;
      Thread.join server;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let ping = Serve_socket.call ~path (Json.Object [ ("op", Json.String "ping") ]) in
      Alcotest.(check string)
        "ping answered" "ok"
        (Json.get_string (Json.member "status" ping));
      let req = P.request_to_json (quick_request ~id:"sock" ()) in
      let garbage_then_work =
        Serve_socket.call_many ~path
          [ Json.Object [ ("op", Json.String "wat") ]; req; req ]
      in
      (match garbage_then_work with
      | [ bad; first; second ] ->
          Alcotest.(check string)
            "unknown op answered structurally" "error"
            (Json.get_string (Json.member "status" bad));
          (match P.response_of_json first with
          | Ok r -> Alcotest.(check bool) "extraction ok" true (Result.is_ok r.P.body)
          | Error msg -> Alcotest.failf "unparsable first response: %s" msg);
          (match P.response_of_json second with
          | Ok r ->
              let body = ok_of "pipelined repeat" r in
              Alcotest.(check bool) "served from cache" true body.P.cache_hit
          | Error msg -> Alcotest.failf "unparsable second response: %s" msg)
      | other -> Alcotest.failf "expected 3 responses, got %d" (List.length other));
      let stats = Serve_socket.call ~path (Json.Object [ ("op", Json.String "stats") ]) in
      let completed =
        Json.get_number (Json.member "completed" (Json.member "stats" stats))
      in
      Alcotest.(check bool) "stats counts the run" true (completed >= 1.0);
      (* the telemetry op: stats plus the whole metrics registry in one
         frame, with the Prometheus text inlined on request *)
      let tel =
        Serve_socket.call ~path
          (Json.Object
             [ ("op", Json.String "telemetry"); ("format", Json.String "prom") ])
      in
      Alcotest.(check string) "telemetry ok" "ok"
        (Json.get_string (Json.member "status" tel));
      let metrics = Json.member "metrics" tel in
      let request_ms = Json.member "serve.request_ms" metrics in
      Alcotest.(check bool) "request latency histogram present" true
        (Json.get_number (Json.member "count" request_ms) >= 1.0);
      List.iter
        (fun q ->
          Alcotest.(check bool) (q ^ " estimated") true
            (match Json.member q request_ms with
            | Json.Number v -> Float.is_finite v && v > 0.0
            | _ -> false))
        [ "p50"; "p95"; "p99" ];
      Alcotest.(check bool) "offered meter present" true
        (Json.get_number
           (Json.member "total" (Json.member "serve.offered.rate" metrics))
        >= 1.0);
      let prom = Json.get_string (Json.member "prom" tel) in
      Alcotest.(check bool) "prom exposition inlined" true
        (String.length prom > 0);
      Alcotest.(check bool) "prom names the request histogram" true
        (List.exists
           (fun l -> l = "# TYPE smoothe_serve_request_ms histogram")
           (String.split_on_char '\n' prom)))

(* --- request journal & crash-only recovery ----------------------------- *)

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "smoothe-jrnl-%d-%d" (Unix.getpid ()) !n)
    in
    Fsio.mkdir_p d;
    d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let journal_engine ?(queue_limit = 8) journal =
  Serve_engine.create
    ~config:
      {
        Serve_engine.default_config with
        Serve_engine.queue_limit;
        executors = 0;
        retry_attempts = 1;
        cache_capacity = 16;
      }
    ~journal ()

let sample_body =
  { P.cost = 166.0; valid = true; choices = [ (0, 1); (2, 3) ]; iterations = 9;
    cache_hit = false; health = "healthy" }

let body_fields b = (b.P.cost, b.P.choices, b.P.iterations)

(* submit + complete one request, restart the journal: the completion is
   carried forward, the cache is warm, and a retry of the same request
   is a bit-identical hit without recomputation *)
let test_journal_cache_warm_restart () =
  with_temp_dir @@ fun dir ->
  let j1 = Serve_journal.open_ ~dir ~name:"requests" () in
  let engine1 = journal_engine j1 in
  let req = quick_request ~id:"warm" ~seed:21 () in
  let first =
    match Serve_engine.offer engine1 req with
    | Serve_engine.Done _ -> Alcotest.fail "expected admission"
    | Serve_engine.Queued tk ->
        ignore (Serve_engine.run_pending engine1);
        ok_of "first run" (Serve_engine.await tk)
  in
  Alcotest.(check bool) "first run computed" false first.P.cache_hit;
  (* the stats frame surfaces the journal sub-object *)
  (match Json.member "journal" (Serve_engine.stats_json engine1) with
  | Json.Object _ -> ()
  | _ -> Alcotest.fail "stats_json should carry a journal object");
  Serve_engine.stop engine1;
  Serve_journal.close j1;
  let j2 = Serve_journal.open_ ~dir ~name:"requests" () in
  Alcotest.(check int) "nothing pending after clean completion" 0
    (List.length (Serve_journal.pending j2));
  Alcotest.(check int) "one warm completion carried" 1
    (List.length (Serve_journal.warm j2));
  Alcotest.(check bool) "generation advanced" true
    (Serve_journal.generation j2 > 1);
  (* compaction dropped the old generation files *)
  Alcotest.(check int) "one generation file after compaction" 1
    (Array.length
       (Array.of_list
          (List.filter
             (fun f -> Filename.check_suffix f ".jrnl")
             (Array.to_list (Sys.readdir dir)))));
  let engine2 = journal_engine j2 in
  Alcotest.(check int) "cache warmed from journal" 1 (Serve_engine.warmed engine2);
  (match Serve_engine.offer engine2 req with
  | Serve_engine.Done resp ->
      let body = ok_of "warm retry" resp in
      Alcotest.(check bool) "served from the warmed cache" true body.P.cache_hit;
      Alcotest.(check (float 0.0)) "bit-identical cost" first.P.cost body.P.cost;
      Alcotest.(check bool) "bit-identical choices" true
        (body.P.choices = first.P.choices)
  | Serve_engine.Queued _ -> Alcotest.fail "warm retry should be a cache hit");
  Serve_engine.stop engine2;
  Serve_journal.close j2

(* the kill-at-K property: crash the engine after K completions with N
   admitted, restart over the same journal, and the response set is
   exactly the uninterrupted run's — completed requests from the warmed
   cache, lost ones replayed *)
let test_kill_at_k_replay () =
  let n = 4 and k = 2 in
  let reqs =
    List.init n (fun i -> quick_request ~id:(Printf.sprintf "kk%d" i) ~seed:(31 + i) ())
  in
  (* uninterrupted reference run *)
  let reference =
    let engine = manual_engine ~queue_limit:8 () in
    let tickets =
      List.map
        (fun req ->
          match Serve_engine.offer engine req with
          | Serve_engine.Queued tk -> tk
          | Serve_engine.Done _ -> Alcotest.fail "reference: expected admission")
        reqs
    in
    ignore (Serve_engine.run_pending engine);
    let bodies = List.map (fun tk -> ok_of "reference" (Serve_engine.await tk)) tickets in
    Serve_engine.stop engine;
    bodies
  in
  with_temp_dir @@ fun dir ->
  let j1 = Serve_journal.open_ ~dir ~name:"requests" () in
  let engine1 = journal_engine j1 in
  List.iter
    (fun req ->
      match Serve_engine.offer engine1 req with
      | Serve_engine.Queued _ -> ()
      | Serve_engine.Done _ -> Alcotest.fail "crash run: expected admission")
    reqs;
  (match
     Fault_plan.with_plan [ Fault_plan.Crash_in_flight k ] (fun () ->
         Serve_engine.run_pending engine1)
   with
  | exception Fault_plan.Injected_crash _ -> ()
  | ran -> Alcotest.failf "crash-in-flight@%d never fired (%d ran)" k ran);
  (* the process is dead: no drain, no stop — only what was fsynced
     survives *)
  Serve_journal.close j1;
  let j2 = Serve_journal.open_ ~dir ~name:"requests" () in
  Alcotest.(check int) "completions before the crash stay completed" (n - k)
    (List.length (Serve_journal.pending j2));
  Alcotest.(check int) "completed requests warm the cache" k
    (List.length (Serve_journal.warm j2));
  let engine2 = journal_engine j2 in
  Alcotest.(check int) "warm count" k (Serve_engine.warmed engine2);
  Alcotest.(check int) "recover replays the lost requests" (n - k)
    (Serve_engine.recover engine2);
  Alcotest.(check int) "replay counter" (n - k) (Serve_engine.replayed engine2);
  Alcotest.(check int) "replayed health events" (n - k)
    (Health.count (Serve_engine.health engine2) Health.Replayed);
  Alcotest.(check int) "replays execute" (n - k) (Serve_engine.run_pending engine2);
  (* every original request is now answerable from cache, bit-identical
     to the uninterrupted run *)
  let hits_before = (Serve_engine.stats engine2).Serve_engine.cache_hits in
  List.iter2
    (fun req ref_body ->
      match Serve_engine.offer engine2 req with
      | Serve_engine.Done resp ->
          let body = ok_of ("replayed " ^ req.P.id) resp in
          Alcotest.(check bool) (req.P.id ^ " is a cache hit") true body.P.cache_hit;
          Alcotest.(check bool) (req.P.id ^ " bit-identical") true
            (body_fields body = body_fields ref_body)
      | Serve_engine.Queued _ -> Alcotest.failf "%s: expected a cache hit" req.P.id)
    reqs reference;
  Alcotest.(check int) "cache hit counters advanced" (hits_before + n)
    (Serve_engine.stats engine2).Serve_engine.cache_hits;
  Serve_engine.stop engine2;
  Serve_journal.close j2

(* truncating the journal at every byte boundary never prevents a scan
   and never invents a record: the result is always an intact prefix *)
let test_journal_torn_tail_every_byte () =
  with_temp_dir @@ fun dir ->
  let j = Serve_journal.open_ ~dir ~name:"requests" () in
  Serve_journal.append_admitted j ~rid:"t1#1" (quick_request ~id:"t1" ~seed:41 ());
  Serve_journal.append_completed j ~rid:"t1#1" ~key:"some-cache-key" ~body:sample_body ();
  Serve_journal.append_admitted j ~rid:"t2#2" (quick_request ~id:"t2" ~seed:42 ());
  let file = Serve_journal.file j in
  Serve_journal.close j;
  let content = Fsio.read_file file in
  let full, tail = Serve_journal.scan_string content in
  Alcotest.(check int) "full scan sees all records" 3 (List.length full);
  Alcotest.(check bool) "full scan is clean" true (tail = None);
  let is_prefix got =
    List.length got <= List.length full
    && List.for_all2 (fun a b -> a = b) got
         (List.filteri (fun i _ -> i < List.length got) full)
  in
  for len = 0 to String.length content - 1 do
    match Serve_journal.scan_string (String.sub content 0 len) with
    | got, _ ->
        if not (is_prefix got) then
          Alcotest.failf "truncation at byte %d produced a non-prefix (%d records)" len
            (List.length got)
    | exception e ->
        Alcotest.failf "truncation at byte %d raised %s" len (Printexc.to_string e)
  done;
  (* flipped bytes (bit rot) are as survivable as torn tails *)
  let step = 13 in
  let off = ref 0 in
  while !off < String.length content do
    let corrupted = Bytes.of_string content in
    Bytes.set corrupted !off (Char.chr (Char.code (Bytes.get corrupted !off) lxor 0xFF));
    (match Serve_journal.scan_string (Bytes.to_string corrupted) with
    | got, _ ->
        if not (is_prefix got) then
          Alcotest.failf "corruption at byte %d produced a non-prefix" !off
    | exception e ->
        Alcotest.failf "corruption at byte %d raised %s" !off (Printexc.to_string e));
    off := !off + step
  done;
  (* opening over a physically torn tail works and keeps the intact
     prefix: the completed pair drops out, the torn admit is dropped *)
  let torn_len = String.length content - 7 in
  let oc = open_out_bin file in
  output_string oc (String.sub content 0 torn_len);
  close_out oc;
  let j2 = Serve_journal.open_ ~dir ~name:"requests" () in
  Alcotest.(check bool) "torn generation surfaced" true (Serve_journal.torn j2 <> []);
  Alcotest.(check int) "intact pairs survive, torn frame dropped" 0
    (List.length (Serve_journal.pending j2));
  Alcotest.(check int) "intact completion still warms" 1
    (List.length (Serve_journal.warm j2));
  Serve_journal.close j2

(* the torn-journal fault plan: a crash mid-append leaves frame 2 torn;
   the next open replays frame 1 only and reports the tear as health *)
let test_torn_journal_fault () =
  with_temp_dir @@ fun dir ->
  let j = Serve_journal.open_ ~dir ~name:"requests" () in
  Serve_journal.append_admitted j ~rid:"clean#1" (quick_request ~id:"clean" ~seed:51 ());
  Fault_plan.with_plan [ Fault_plan.Torn_journal ] (fun () ->
      Serve_journal.append_admitted j ~rid:"torn#2" (quick_request ~id:"torn" ~seed:52 ()));
  Serve_journal.close j;
  let j2 = Serve_journal.open_ ~dir ~name:"requests" () in
  (match Serve_journal.pending j2 with
  | [ (rid, req) ] ->
      Alcotest.(check string) "the clean admit survives" "clean#1" rid;
      Alcotest.(check string) "request intact" "clean" req.P.id
  | other -> Alcotest.failf "expected 1 pending, got %d" (List.length other));
  Alcotest.(check bool) "tear surfaced" true (Serve_journal.torn j2 <> []);
  let engine = journal_engine j2 in
  Alcotest.(check bool) "journal-torn health event" true
    (Health.count (Serve_engine.health engine) Health.Journal_torn >= 1);
  Serve_engine.stop engine;
  Serve_journal.close j2

(* drained-but-unserved requests (the SIGTERM path: stop fails queued
   tickets with [draining]) stay journaled incomplete and replay *)
let test_sigterm_drain_preserves_journal () =
  with_temp_dir @@ fun dir ->
  let j1 = Serve_journal.open_ ~dir ~name:"requests" () in
  let engine1 = journal_engine j1 in
  let reqs = List.init 2 (fun i -> quick_request ~id:(Printf.sprintf "dr%d" i) ~seed:(61 + i) ()) in
  let tickets =
    List.map
      (fun req ->
        match Serve_engine.offer engine1 req with
        | Serve_engine.Queued tk -> tk
        | Serve_engine.Done _ -> Alcotest.fail "expected admission")
      reqs
  in
  (* SIGTERM: drain then stop without ever running the queue *)
  Serve_engine.drain engine1;
  Serve_engine.stop engine1;
  List.iter
    (fun tk ->
      Alcotest.(check (option bool)) "failed structurally, not served"
        (Some false)
        (Option.map (fun r -> Result.is_ok r.P.body) (Serve_engine.peek tk)))
    tickets;
  Serve_journal.close j1;
  let j2 = Serve_journal.open_ ~dir ~name:"requests" () in
  Alcotest.(check int) "drained-but-unserved requests still journaled" 2
    (List.length (Serve_journal.pending j2));
  let engine2 = journal_engine j2 in
  Alcotest.(check int) "both replay" 2 (Serve_engine.recover engine2);
  Alcotest.(check int) "both execute" 2 (Serve_engine.run_pending engine2);
  List.iter
    (fun req ->
      match Serve_engine.offer engine2 req with
      | Serve_engine.Done resp ->
          Alcotest.(check bool) (req.P.id ^ " answered after restart") true
            (ok_of "drained replay" resp).P.cache_hit
      | Serve_engine.Queued _ -> Alcotest.failf "%s: expected a cache hit" req.P.id)
    reqs;
  Serve_engine.stop engine2;
  Serve_journal.close j2

(* --- watchdog ----------------------------------------------------------- *)

let fake_clock () =
  let t = ref 0.0 in
  let sleeps = ref [] in
  let now () = !t in
  let sleep d =
    sleeps := d :: !sleeps;
    t := !t +. d
  in
  (now, sleep, fun () -> List.rev !sleeps)

let test_watchdog_breaker () =
  let policy =
    { Watchdog.max_restarts = 3; window = 60.0; backoff = 0.1; max_backoff = 0.5 }
  in
  let run seed =
    let now, sleep, sleeps = fake_clock () in
    let health = Health.create () in
    let attempts = ref 0 in
    let spawn ~attempt =
      Alcotest.(check int) "attempts count up" !attempts attempt;
      incr attempts;
      Watchdog.Signaled 9
    in
    let outcome =
      Watchdog.supervise ~policy ~health ~rng:(Rng.create seed) ~sleep ~now
        ~name:"daemon" spawn
    in
    (outcome, !attempts, sleeps (), health)
  in
  let outcome, attempts, sleeps, health = run 7 in
  (match outcome with
  | Watchdog.Crash_loop { crashes; window } ->
      Alcotest.(check int) "breaker counts the crashes" 3 crashes;
      Alcotest.(check (float 0.0)) "breaker window" 60.0 window
  | Watchdog.Clean_exit -> Alcotest.fail "breaker should have tripped");
  Alcotest.(check int) "spawned max_restarts times" 3 attempts;
  Alcotest.(check int) "slept between restarts only" 2 (List.length sleeps);
  List.iter
    (fun p ->
      Alcotest.(check bool) "backoff positive and capped" true
        (p > 0.0 && p <= policy.Watchdog.max_backoff))
    sleeps;
  (match sleeps with
  | [ a; b ] -> Alcotest.(check bool) "backoff grows" true (b >= a)
  | _ -> assert false);
  Alcotest.(check int) "restart health events" 2
    (Health.count health Health.Watchdog_restart);
  Alcotest.(check int) "crash-loop health event" 1
    (Health.count health Health.Crash_loop);
  (* determinism: same seed, same pauses *)
  let _, _, sleeps', _ = run 7 in
  Alcotest.(check bool) "deterministic backoff" true (sleeps = sleeps');
  let _, _, sleeps'', _ = run 8 in
  Alcotest.(check bool) "seed changes the jitter" true (sleeps <> sleeps'')

let test_watchdog_clean_exit_and_window () =
  (* a child that crashes twice then exits cleanly: two restarts, done *)
  let now, sleep, _ = fake_clock () in
  let attempts = ref 0 in
  let spawn ~attempt:_ =
    incr attempts;
    if !attempts <= 2 then Watchdog.Exited 70 else Watchdog.Exited 0
  in
  (match
     Watchdog.supervise
       ~policy:{ Watchdog.max_restarts = 5; window = 60.0; backoff = 0.1; max_backoff = 1.0 }
       ~rng:(Rng.create 3) ~sleep ~now ~name:"daemon" spawn
   with
  | Watchdog.Clean_exit -> ()
  | Watchdog.Crash_loop _ -> Alcotest.fail "clean exit should end supervision");
  Alcotest.(check int) "restarted until the clean exit" 3 !attempts;
  (* crashes spread wider than the window never trip the breaker: each
     backoff pause (>= 0.1s) outlives the 50ms window *)
  let now, sleep, _ = fake_clock () in
  let attempts = ref 0 in
  let spawn ~attempt:_ =
    incr attempts;
    if !attempts <= 4 then Watchdog.Signaled 9 else Watchdog.Exited 0
  in
  (match
     Watchdog.supervise
       ~policy:{ Watchdog.max_restarts = 2; window = 0.05; backoff = 0.1; max_backoff = 1.0 }
       ~rng:(Rng.create 3) ~sleep ~now ~name:"daemon" spawn
   with
  | Watchdog.Clean_exit -> ()
  | Watchdog.Crash_loop _ -> Alcotest.fail "aged-out crashes must not trip the breaker");
  Alcotest.(check int) "survived all four crashes" 5 !attempts;
  (* invalid policies are rejected up front *)
  Alcotest.check_raises "zero restarts rejected"
    (Invalid_argument "Watchdog.supervise: max restarts must be positive, got 0") (fun () ->
      ignore
        (Watchdog.supervise
           ~policy:{ Watchdog.max_restarts = 0; window = 1.0; backoff = 0.1; max_backoff = 1.0 }
           ~name:"daemon"
           (fun ~attempt:_ -> Watchdog.Exited 0)))

(* --- transport hardening ------------------------------------------------ *)

let with_socket_server ?read_timeout ?max_frame f =
  let path = Printf.sprintf "/tmp/smoothe-hard-%d.sock" (Unix.getpid ()) in
  let engine =
    Serve_engine.create
      ~config:
        { Serve_engine.default_config with Serve_engine.queue_limit = 4; executors = 1 }
      ()
  in
  let srv = Serve_socket.create ?read_timeout ?max_frame ~engine ~path () in
  let server = Thread.create (fun () -> Serve_socket.run srv) () in
  Fun.protect
    ~finally:(fun () ->
      Serve_socket.shutdown srv;
      Thread.join server;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let raw_connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_raw fd s =
  let n = Unix.write_substring fd s 0 (String.length s) in
  Alcotest.(check int) "raw bytes sent" (String.length s) n

(* read one response line, then confirm the server hung up *)
let read_error_line fd =
  let ic = Unix.in_channel_of_descr fd in
  let line =
    match input_line ic with
    | line -> line
    | exception End_of_file -> Alcotest.fail "server closed without a structured error"
  in
  (match input_line ic with
  | _ -> Alcotest.fail "server kept the connection open"
  | exception End_of_file -> ());
  match P.response_of_json (Json.parse line) with
  | Ok resp -> resp
  | Error msg -> Alcotest.failf "unparsable error frame: %s" msg

let test_slow_loris_timeout () =
  with_socket_server ~read_timeout:0.3 @@ fun path ->
  let fd = raw_connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* dribble a frame fragment and then stall: the deadline covers
         the whole frame, so the server answers and disconnects *)
      send_raw fd "{\"op\"";
      Thread.delay 0.1;
      send_raw fd ":";
      let resp = read_error_line fd in
      Alcotest.(check (option string)) "structured timeout"
        (Some "timeout")
        (Option.map P.error_code_name (code_of resp)));
  (* the daemon survives the abuse: a fresh well-formed frame works *)
  let ping = Serve_socket.call ~path (Json.Object [ ("op", Json.String "ping") ]) in
  Alcotest.(check string) "daemon still serves" "ok"
    (Json.get_string (Json.member "status" ping))

let test_frame_length_cap () =
  with_socket_server ~read_timeout:5.0 ~max_frame:1024 @@ fun path ->
  let fd = raw_connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* the cap trips before any newline arrives: an unterminated
         flood cannot grow the carry buffer unboundedly *)
      send_raw fd (String.make 5000 'x');
      let resp = read_error_line fd in
      Alcotest.(check (option string)) "structured frame_too_long"
        (Some "frame_too_long")
        (Option.map P.error_code_name (code_of resp)));
  let ping = Serve_socket.call ~path (Json.Object [ ("op", Json.String "ping") ]) in
  Alcotest.(check string) "daemon still serves" "ok"
    (Json.get_string (Json.member "status" ping))

(* the client honors the daemon's retry_after_ms shed hint: a fake
   shedding server answers [overloaded] twice, then ok *)
let test_client_honors_retry_hint () =
  let path = Printf.sprintf "/tmp/smoothe-shed-%d.sock" (Unix.getpid ()) in
  if Sys.file_exists path then Sys.remove path;
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen (Unix.ADDR_UNIX path);
  Unix.listen listen 4;
  let stopping = Atomic.make false in
  let server =
    Thread.create
      (fun () ->
        let rec accept_loop () =
          match Unix.accept listen with
          | exception Unix.Unix_error _ -> ()
          | fd, _ when Atomic.get stopping ->
              (try Unix.close fd with Unix.Unix_error _ -> ())
          | fd, _ ->
              let ic = Unix.in_channel_of_descr fd in
              let oc = Unix.out_channel_of_descr fd in
              let frames = ref 0 in
              (try
                 let rec serve () =
                   match input_line ic with
                   | exception End_of_file -> ()
                   | _line ->
                       incr frames;
                       let resp =
                         if !frames <= 2 then
                           P.response_to_json
                             (P.error_response ~retry_after_ms:10.0 ~id:"shed"
                                P.Overloaded "queue full")
                         else
                           Json.Object
                             [
                               ("status", Json.String "ok");
                               ("frames", Json.Number (float_of_int !frames));
                             ]
                       in
                       output_string oc (Json.to_string resp);
                       output_char oc '\n';
                       flush oc;
                       serve ()
                 in
                 serve ()
               with _ -> ());
              (try Unix.close fd with Unix.Unix_error _ -> ());
              accept_loop ()
        in
        accept_loop ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* closing the listening fd does not wake a thread parked in
         [accept]; an arriving connection does (cf. Serve_socket) *)
      Atomic.set stopping true;
      (match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error _ -> ()
      | fd ->
          (try Unix.connect fd (Unix.ADDR_UNIX path) with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ()));
      Thread.join server;
      (try Unix.close listen with Unix.Unix_error _ -> ());
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let frame = Json.Object [ ("op", Json.String "ping") ] in
      (* with retries, the shed hints are honored until the ok lands *)
      let resp = Serve_socket.call ~retries:3 ~rng:(Rng.create 42) ~path frame in
      Alcotest.(check string) "retried through the sheds" "ok"
        (Json.get_string (Json.member "status" resp));
      Alcotest.(check bool) "third frame won" true
        (Json.member "frames" resp = Json.Number 3.0);
      (* without retries the shed response comes back unchanged *)
      let shed = Serve_socket.call ~path frame in
      Alcotest.(check bool) "shed returned as-is" true
        (Json.member "code" shed = Json.String "overloaded");
      Alcotest.check_raises "negative retries rejected"
        (Invalid_argument "Serve_socket.call_many: retries must be >= 0") (fun () ->
          ignore (Serve_socket.call ~retries:(-1) ~path frame)))

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
          Alcotest.test_case "validation rejects" `Quick test_request_validation;
        ] );
      ( "admission",
        [
          Alcotest.test_case "state machine" `Quick test_admission_machine;
          Alcotest.test_case "bad requests never admitted" `Quick
            test_bad_requests_never_admitted;
          Alcotest.test_case "drain then stop" `Quick
            test_drain_refuses_then_stop_fails_queued;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru bounds" `Quick test_cache_lru;
          Alcotest.test_case "single-bit key sensitivity" `Quick
            test_cache_key_bit_sensitivity;
          Alcotest.test_case "end to end" `Quick test_cache_end_to_end;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "overload, crash, survival" `Quick
            test_overload_crash_and_survival;
          Alcotest.test_case "crash with retry recovers" `Quick
            test_crash_with_retry_recovers;
          Alcotest.test_case "deadline expiry in queue" `Quick test_deadline_expiry;
          Alcotest.test_case "executor domains" `Quick test_executor_domains;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "request-id propagation" `Quick test_request_id_propagation ]
      );
      ( "journal",
        [
          Alcotest.test_case "cache warm across restart" `Quick
            test_journal_cache_warm_restart;
          Alcotest.test_case "kill at K, replay exact" `Quick test_kill_at_k_replay;
          Alcotest.test_case "torn tail at every byte" `Quick
            test_journal_torn_tail_every_byte;
          Alcotest.test_case "torn-journal fault plan" `Quick test_torn_journal_fault;
          Alcotest.test_case "sigterm drain preserves journal" `Quick
            test_sigterm_drain_preserves_journal;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "crash-loop breaker" `Quick test_watchdog_breaker;
          Alcotest.test_case "clean exit and window aging" `Quick
            test_watchdog_clean_exit_and_window;
        ] );
      ( "socket",
        [
          Alcotest.test_case "end to end" `Quick test_socket_end_to_end;
          Alcotest.test_case "slow-loris timeout" `Quick test_slow_loris_timeout;
          Alcotest.test_case "frame length cap" `Quick test_frame_length_cap;
          Alcotest.test_case "client honors retry hint" `Quick
            test_client_honors_retry_hint;
        ] );
    ]
