(* smoothe: command-line front end for the e-graph extraction library.

     smoothe list                        -- datasets and instances
     smoothe stats NASRNN                -- e-graph statistics
     smoothe dump fir_5 out.egraph       -- serialize an instance
     smoothe extract fir_5 -m smoothe    -- run one extractor
     smoothe compare fir_5               -- run every extractor
     smoothe serve --socket /tmp/s.sock  -- run the extraction daemon
     smoothe request fir_5 --socket ...  -- send one request to it
*)

open Cmdliner

(* Budget/deadline/limit flags are validated before anything starts:
   zero, negative or non-finite values die with a one-line error here
   instead of propagating into the runtime as a deadline that never
   expires or a queue that admits nothing. *)
let require what = function
  | Ok v -> v
  | Error msg ->
      Printf.eprintf "%s: %s\n" what msg;
      exit 1

let checked_pos_float ~flag v = require flag (Serve_protocol.positive_float ~what:flag v)
let checked_pos_int ~flag v = require flag (Serve_protocol.positive_int ~what:flag v)

let load_egraph spec =
  (* an instance name from the registry, or a path to a serialized file
     (.json = extraction-gym format, anything else = the native text
     format) *)
  if Sys.file_exists spec then
    if Filename.check_suffix spec ".json" then Gym.read_file spec
    else Egraph.Serial.read_file spec
  else
    match Registry.find_instance spec with
    | inst -> inst.Registry.build ()
    | exception Not_found ->
        Printf.eprintf "unknown instance or file %S (try `smoothe list`)\n" spec;
        exit 1

let instance_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"EGRAPH" ~doc:"Instance name (see $(b,list)) or serialized e-graph file.")

(* ------------------------------------------------------------------ list *)

let list_cmd =
  let run () =
    List.iter
      (fun ds ->
        Printf.printf "%-10s %-24s assumption=%s\n" ds.Registry.ds_name ds.Registry.task
          ds.Registry.assumption;
        List.iter
          (fun i ->
            let g = i.Registry.build () in
            Printf.printf "    %-20s N=%-6d M=%-6d %s\n" i.Registry.inst_name
              (Egraph.num_nodes g) (Egraph.num_classes g)
              (if Egraph.is_cyclic g then "cyclic" else "acyclic"))
          ds.Registry.instances)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List bundled datasets and e-graph instances.")
    Term.(const run $ const ())

(* ----------------------------------------------------------------- stats *)

let stats_cmd =
  let run spec =
    let g = load_egraph spec in
    Format.printf "%a@." Egraph.Stats.pp (Egraph.Stats.compute g)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print e-graph statistics.") Term.(const run $ instance_arg)

(* ------------------------------------------------------------------ dump *)

let dump_cmd =
  let run spec path =
    let g = load_egraph spec in
    (if Filename.check_suffix path ".json" then Gym.write_file path g
     else if Filename.check_suffix path ".dot" then Dot.write_file path g
     else Egraph.Serial.write_file path g);
    Printf.printf "wrote %s (%d e-nodes, %d e-classes)\n" path (Egraph.num_nodes g)
      (Egraph.num_classes g)
  in
  let path =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Output path; extension selects the format: .json = extraction-gym, .dot = \
             Graphviz, anything else = the native text format.")
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Serialize an instance (native text, extraction-gym JSON or DOT).")
    Term.(const run $ instance_arg $ path)

(* --------------------------------------------------------------- extract *)

let method_conv =
  Arg.enum
    [
      ("smoothe", `Smoothe);
      ("greedy", `Greedy);
      ("greedy-dag", `Greedy_dag);
      ("ilp-cplex", `Ilp Bnb.cplex_like);
      ("ilp-scip", `Ilp Bnb.scip_like);
      ("ilp-cbc", `Ilp Bnb.cbc_like);
      ("genetic", `Genetic);
      ("annealing", `Annealing);
      ("ilp-pruned", `Ilp_pruned);
      ("hybrid", `Hybrid);
      ("portfolio", `Portfolio);
    ]

let run_method g ~method_ ~time_limit ~batch ~iters ~assumption ~lambda ~seed ~plan ~health
    ~checkpoint_dir ~checkpoint_every ~resume ~show_term ~preflight ~jobs ~fix_threshold
    ~hybrid_gap =
  if resume && checkpoint_dir = None then begin
    Printf.eprintf "--resume needs --checkpoint-dir (where should the snapshot come from?)\n";
    exit 1
  end;
  let result =
    match method_ with
    | `Greedy -> Greedy.extract g
    | `Greedy_dag -> Greedy_dag.extract g
    | `Ilp profile ->
        let warm = (Greedy_dag.extract g).Extractor.solution in
        Ilp.extract ~time_limit ?warm_start:warm ~profile g
    | `Genetic ->
        Genetic.extract
          ~config:{ Genetic.default_config with Genetic.time_limit }
          (Rng.create seed) g
    | `Annealing ->
        Annealing.extract
          ~config:{ Annealing.default_config with Annealing.time_limit }
          (Rng.create seed) g
    | `Ilp_pruned -> Acyclic_prune.extract ~time_limit g
    | `Hybrid ->
        let config =
          {
            Hybrid_pipeline.default_config with
            Hybrid_pipeline.time_budget = time_limit;
            smoothe =
              {
                Smoothe_config.default with
                Smoothe_config.batch;
                max_iters = iters;
                seed;
                assumption = Smoothe_config.assumption_of_string assumption;
                lambda_ = lambda;
                plan = Smoothe_config.plan_mode_of_string plan;
              };
            fix_threshold;
            bound_gap = hybrid_gap;
          }
        in
        let run = Hybrid_pipeline.extract ~config ~health g in
        (match run.Hybrid_pipeline.smoothe_run with
        | Some r ->
            Printf.printf "stage smoothe: %d iterations, incumbent %.6g\n"
              r.Smoothe_extract.iterations r.Smoothe_extract.result.Extractor.cost
        | None -> Printf.printf "stage smoothe: skipped (greedy incumbent)\n");
        let h = run.Hybrid_pipeline.hybrid in
        List.iter
          (fun p ->
            Printf.printf
              "stage %s: %d e-nodes, %d B&B nodes, obj %.6g, bound %.6g%s (%.2fs)\n"
              p.Hybrid.phase_name p.Hybrid.phase_vars p.Hybrid.phase_nodes p.Hybrid.phase_obj
              p.Hybrid.phase_bound
              (if p.Hybrid.phase_proved then ", proved" else "")
              p.Hybrid.phase_time)
          h.Hybrid.phases;
        Printf.printf "fixed %d classes (dropped %d by fixing, %d by bound cut), gap %.6g\n"
          h.Hybrid.fixed_classes h.Hybrid.dropped_by_fixing h.Hybrid.dropped_by_bound
          h.Hybrid.gap;
        run.Hybrid_pipeline.result
    | `Portfolio ->
        let out =
          Portfolio.extract
            ~config:
              {
                Portfolio.default_config with
                Portfolio.time_budget = time_limit;
                checkpoint_dir;
                checkpoint_every;
                jobs;
              }
            ~health (Rng.create seed) g
        in
        List.iter
          (fun m ->
            Format.printf "  member %a%s@." Extractor.pp m.Portfolio.result
              (match m.Portfolio.status with
              | Portfolio.Completed -> ""
              | Portfolio.Timed_out -> " [timed out]"
              | Portfolio.Faulted e -> Printf.sprintf " [faulted: %s]" e))
          out.Portfolio.members;
        out.Portfolio.best
    | `Smoothe ->
        let config =
          {
            Smoothe_config.default with
            Smoothe_config.batch;
            max_iters = iters;
            time_limit;
            seed;
            assumption = Smoothe_config.assumption_of_string assumption;
            lambda_ = lambda;
            plan = Smoothe_config.plan_mode_of_string plan;
          }
        in
        let store =
          Option.map
            (fun dir -> Checkpoint.store ~dir ~name:(g.Egraph.name ^ "-smoothe") ())
            checkpoint_dir
        in
        let resume_from =
          if not resume then None
          else
            match Option.map (Checkpoint.load_latest ~health ~member:"cli") store with
            | Some (Some (snap, gen)) ->
                Printf.printf "resuming from checkpoint generation %d (iteration %d)\n" gen
                  snap.Checkpoint.iter;
                Some snap
            | Some None | None ->
                Printf.printf "no usable checkpoint found; starting fresh\n";
                None
        in
        let run =
          Smoothe_extract.extract ~config ~health ?checkpoint:store ~checkpoint_every
            ?resume_from ~preflight g
        in
        Printf.printf "iterations=%d batch=%d prop_iters=%d (loss %.2fs / grad %.2fs / sample %.2fs)\n"
          run.Smoothe_extract.iterations run.Smoothe_extract.batch_used
          run.Smoothe_extract.prop_iters
          run.Smoothe_extract.profile.Smoothe_extract.loss_time
          run.Smoothe_extract.profile.Smoothe_extract.grad_time
          run.Smoothe_extract.profile.Smoothe_extract.sample_time;
        run.Smoothe_extract.result
  in
  Format.printf "%a@." Extractor.pp result;
  (match result.Extractor.solution with
  | Some s when show_term ->
      Printf.printf "%s\n" (Extract_term.render_dag (Extract_term.dag_of_solution g s))
  | Some _ | None -> ());
  result

let method_flag =
  Arg.(
    value
    & opt method_conv `Smoothe
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:
          "Extraction method: $(b,smoothe), $(b,greedy), $(b,greedy-dag), $(b,ilp-cplex), \
           $(b,ilp-scip), $(b,ilp-cbc), $(b,ilp-pruned), $(b,hybrid) (SmoothE-pruned, \
           bound-cut, warm-started exact solving), $(b,genetic), $(b,annealing) or \
           $(b,portfolio).")

let time_limit_flag =
  Arg.(value & opt float 60.0 & info [ "t"; "time-limit" ] ~docv:"SECONDS" ~doc:"Time limit.")

let fix_threshold_flag =
  Arg.(
    value
    & opt float 0.9
    & info [ "fix-threshold" ]
        ~docv:"P"
        ~doc:
          "Hybrid: fix an e-class to the incumbent's choice when its within-class marginal \
           reaches P (and it is the class argmax); values > 1 disable fixing.")

let hybrid_gap_flag =
  Arg.(
    value
    & opt float 0.0
    & info [ "hybrid-gap" ]
        ~docv:"G"
        ~doc:
          "Hybrid: extra relative slack on the incumbent bound cut (rhs = UB + tol + \
           G*max(1,|UB|)). 0 cuts exactly at the incumbent.")

let batch_flag =
  Arg.(value & opt int 16 & info [ "b"; "batch" ] ~docv:"B" ~doc:"SmoothE seed-batch size.")

let iters_flag =
  Arg.(value & opt int 150 & info [ "iters" ] ~docv:"K" ~doc:"SmoothE iteration cap.")

let assumption_flag =
  Arg.(
    value
    & opt (enum [ ("independent", "independent"); ("correlated", "correlated"); ("hybrid", "hybrid") ])
        "hybrid"
    & info [ "assumption" ] ~docv:"A" ~doc:"SmoothE correlation assumption.")

let lambda_flag =
  Arg.(value & opt float 100.0 & info [ "lambda" ] ~docv:"L" ~doc:"NOTEARS penalty weight.")

let plan_flag =
  Arg.(
    value
    & opt (enum [ ("off", "off"); ("on", "on"); ("check", "check") ]) "off"
    & info [ "plan" ] ~docv:"MODE"
        ~doc:
          "SmoothE static-plan replay: $(b,off) interprets every iteration; $(b,on) \
           captures the iteration IR, verifies it with the plan-level dataflow analysis \
           and replays later iterations over a preallocated arena with zero tensor \
           allocation; $(b,check) replays AND interprets every iteration, asserting \
           bit-identical losses, probabilities and gradients (differential testing).")

let plan_check_replay_flag =
  Arg.(
    value & flag
    & info [ "plan-check-replay" ]
        ~doc:
          "Shorthand for $(b,--plan check): run the replayed and interpreted iteration \
           side by side and fail loudly on any bitwise divergence.")

let seed_flag = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.")

let show_term_flag =
  Arg.(value & flag & info [ "show-term" ] ~doc:"Print the extracted program (DAG form).")

let checkpoint_dir_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint-dir" ] ~docv:"DIR"
        ~doc:
          "Durable runs: write rotated, checksummed SmoothE checkpoints to $(docv) (created \
           if missing). With $(b,-m portfolio), also turns on supervised retry of the \
           SmoothE member from its latest checkpoint.")

let checkpoint_every_flag =
  Arg.(
    value
    & opt int 25
    & info [ "checkpoint-every" ] ~docv:"K"
        ~doc:"Checkpoint every $(docv) iterations (0 disables the periodic writes).")

let resume_flag =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume from the newest usable checkpoint in $(b,--checkpoint-dir); the completed \
           run is bit-identical to an uninterrupted one at the same seed. Starts fresh (with \
           a note) when no usable snapshot exists.")

let fault_plan_flag =
  Arg.(
    value
    & opt string ""
    & info [ "fault-plan" ] ~docv:"PLAN"
        ~doc:
          "Deterministic fault injection: comma-separated $(b,nan\\@K) (poison the K-th \
           gradient), $(b,mem\\@SCALE) (memory pressure), $(b,stall) (LP solver stall), \
           $(b,skew\\@S) (clock jump). The run must still return a valid extraction.")

let health_report_flag =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "health-report" ] ~docv:"FILE"
        ~doc:
          "Report the supervision log: injected faults, recoveries, deratings, timeouts. \
           Without a value (or with $(b,-)) the report goes to stdout; otherwise it is \
           written to $(docv).")

let trace_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record hierarchical spans and write them to $(docv): Chrome trace_event JSON \
           (open in chrome://tracing or Perfetto), or folded stacks when $(docv) ends in \
           $(b,.folded).")

let metrics_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Record counters/gauges/histograms and write a JSON snapshot to $(docv).")

let jobs_flag =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Size of the domain pool: tensor kernels chunk their element loops over $(docv) \
           domains, and $(b,-m portfolio) runs its anytime members concurrently (each with \
           the full remaining budget). Results are bit-identical at any $(docv) for \
           iteration-bounded runs. Default 1 (sequential).")

let no_preflight_flag =
  Arg.(
    value & flag
    & info [ "no-preflight" ]
        ~doc:
          "Skip the static pre-flight e-graph lint before a SmoothE run. Use for \
           deliberately malformed stress inputs (fault-injection experiments) where the \
           findings are expected and would only add noise to the health log.")

let parse_fault_plan spec =
  match Fault_plan.of_string spec with
  | plan -> plan
  | exception Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 1

let render_health_report health =
  if Health.is_empty health then "health: healthy\n"
  else Format.asprintf "health: %s@.%a@." (Health.summary health) Health.pp health

let write_health_report health = function
  | None -> ()
  | Some "-" -> print_string (render_health_report health)
  | Some path ->
      (* tmp + rename: a crash mid-write never leaves a truncated report *)
      Fsio.write_atomic ~path (render_health_report health);
      Printf.printf "health report written to %s\n" path

let write_metrics_snapshot ?(format = `Json) = function
  | None -> ()
  | Some path ->
      let body =
        match format with
        | `Json -> Json.to_string ~pretty:true (Metrics.snapshot ()) ^ "\n"
        | `Prom -> Prom.render ()
      in
      Fsio.write_atomic ~path body;
      Printf.printf "metrics written to %s\n" path

let extract_cmd =
  let run spec method_ time_limit batch iters assumption lambda seed plan plan_check_replay
      fault_plan health_report trace_out metrics_out checkpoint_dir checkpoint_every resume
      show_term no_preflight jobs fix_threshold hybrid_gap =
    if jobs < 1 then begin
      Printf.eprintf "--jobs must be >= 1\n";
      exit 1
    end;
    let plan = if plan_check_replay then "check" else plan in
    Pool.set_jobs jobs;
    let g = load_egraph spec in
    let health = Health.create () in
    if trace_out <> None || metrics_out <> None then begin
      Obs.enable ();
      Trace.reset ();
      Metrics.reset ()
    end;
    let finish () =
      (* injections fired inside unsupervised methods (greedy, plain
         ILP, ...) are still reported *)
      List.iter
        (fun what -> Health.record health ~member:"cli" Health.Fault_injected what)
        (Fault_plan.drain_injections ());
      write_health_report health health_report;
      (match trace_out with
      | Some path ->
          Trace.write_file path;
          Printf.printf "trace written to %s (%d events)\n" path
            (List.length (Trace.events ()))
      | None -> ());
      write_metrics_snapshot metrics_out
    in
    Fault_plan.with_plan (parse_fault_plan fault_plan) (fun () ->
        Fun.protect ~finally:finish (fun () ->
            ignore
              (run_method g ~method_ ~time_limit ~batch ~iters ~assumption ~lambda ~seed
                 ~plan ~health ~checkpoint_dir ~checkpoint_every ~resume ~show_term
                 ~preflight:(not no_preflight) ~jobs ~fix_threshold ~hybrid_gap)))
  in
  Cmd.v (Cmd.info "extract" ~doc:"Extract an optimised program from an e-graph.")
    Term.(
      const run $ instance_arg $ method_flag $ time_limit_flag $ batch_flag $ iters_flag
      $ assumption_flag $ lambda_flag $ seed_flag $ plan_flag $ plan_check_replay_flag
      $ fault_plan_flag $ health_report_flag
      $ trace_flag $ metrics_flag $ checkpoint_dir_flag $ checkpoint_every_flag $ resume_flag
      $ show_term_flag $ no_preflight_flag $ jobs_flag $ fix_threshold_flag $ hybrid_gap_flag)

(* --------------------------------------------------------------- analyze *)

(* One forward tape at a tiny batch and shallow propagation: enough to
   record every op kind the real run would use, cheap enough to lint
   every bundled instance. The recorded IR is then vetted by the shape
   and gradient-flow passes without touching another kernel. *)
let tape_diagnostics g =
  let config =
    { Smoothe_config.default with Smoothe_config.batch = 2; prop_iters = Some 2 }
  in
  match
    let compiled = Relaxation.compile config g in
    let theta = Tensor.create ~batch:2 ~width:(Egraph.num_nodes g) in
    let fwd = Relaxation.forward compiled ~config ~model:(Cost_model.of_egraph g) ~theta in
    let ir = Ad.ir fwd.Relaxation.tape in
    Shape_check.check ir @ Grad_flow.check ~root:(Ad.node_id fwd.Relaxation.loss) ir
  with
  | ds -> ds
  | exception e ->
      [
        Diagnostic.error ~code:"AN001" Diagnostic.Graph "building the forward tape failed: %s"
          (Printexc.to_string e);
      ]

(* Two probe forwards at the same tiny configuration: enough to prove
   the iteration IR static (PL006/PL007) and to run the plan-level
   dataflow analysis — liveness, fusion, arena assignment — exactly as
   the extraction gate would before arming a replay. *)
let plan_diagnostics g =
  let config =
    { Smoothe_config.default with Smoothe_config.batch = 2; prop_iters = Some 2 }
  in
  match
    let compiled = Relaxation.compile config g in
    let model = Cost_model.of_egraph g in
    let theta = Tensor.create ~batch:2 ~width:(Egraph.num_nodes g) in
    let fwd1 = Relaxation.forward compiled ~config ~model ~theta in
    let c1 = Plan.capture fwd1.Relaxation.tape ~root:fwd1.Relaxation.loss in
    let fwd2 = Relaxation.forward compiled ~config ~model ~theta in
    let c2 = Plan.capture fwd2.Relaxation.tape ~root:fwd2.Relaxation.loss in
    let stab = Plan_check.stability c1.Plan.ir c2.Plan.ir in
    let root = Ad.node_id fwd2.Relaxation.loss in
    let outputs =
      [|
        Ad.node_id fwd2.Relaxation.cp;
        Ad.node_id fwd2.Relaxation.per_seed_cost;
        Ad.node_id fwd2.Relaxation.penalty;
        root;
      |]
    in
    let report =
      Plan_check.analyze ~grads:[| Ad.node_id fwd2.Relaxation.theta |] ~root ~outputs
        c2.Plan.ir
    in
    (stab @ report.Plan_check.diags, Some report)
  with
  | r -> r
  | exception e ->
      ( [
          Diagnostic.error ~code:"AN001" Diagnostic.Graph
            "building the plan probe failed: %s" (Printexc.to_string e);
        ],
        None )

let plan_stats_line (r : Plan_check.report) =
  Printf.sprintf
    "plan: %d nodes, %d arena slots (%d KiB, interpreter allocates %d KiB/iter), %d \
     fusable chains"
    r.Plan_check.nodes
    (Array.length r.Plan_check.slot_sizes)
    (r.Plan_check.arena_bytes / 1024)
    (r.Plan_check.naive_bytes / 1024)
    (Array.length r.Plan_check.chains)

let plan_stats_json (r : Plan_check.report) =
  Json.Object
    [
      ("nodes", Json.Number (float_of_int r.Plan_check.nodes));
      ("arena_slots", Json.Number (float_of_int (Array.length r.Plan_check.slot_sizes)));
      ("arena_bytes", Json.Number (float_of_int r.Plan_check.arena_bytes));
      ("dedicated_bytes", Json.Number (float_of_int r.Plan_check.dedicated_bytes));
      ("naive_bytes", Json.Number (float_of_int r.Plan_check.naive_bytes));
      ("chains", Json.Number (float_of_int (Array.length r.Plan_check.chains)));
    ]

let analyze_cmd =
  let run specs all json strict plan =
    let targets =
      if all then
        List.concat_map
          (fun ds -> List.map (fun i -> i.Registry.inst_name) ds.Registry.instances)
          Registry.all
      else specs
    in
    if targets = [] then begin
      Printf.eprintf "nothing to analyze: give instance names or files, or pass --all\n";
      exit 2
    end;
    let reports =
      List.map
        (fun target ->
          let lint, g_opt =
            if Sys.file_exists target then Egraph_lint.check_file target
            else
              match Registry.find_instance target with
              | inst ->
                  let g = inst.Registry.build () in
                  (Egraph_lint.check g, Some g)
              | exception Not_found ->
                  ( [
                      Diagnostic.error ~code:"EG010" Diagnostic.Graph
                        "unknown instance or file %S (try `smoothe list`)" target;
                    ],
                    None )
          in
          let tape_ds = match g_opt with Some g -> tape_diagnostics g | None -> [] in
          let plan_ds, plan_report =
            match g_opt with
            | Some g when plan -> plan_diagnostics g
            | _ -> ([], None)
          in
          (target, g_opt, lint @ tape_ds @ plan_ds, plan_report))
        targets
    in
    (if json then begin
       let doc =
         Json.Array
           (List.map
              (fun (t, _, ds, pr) ->
                match (Diagnostic.report_to_json ~source:t ds, pr) with
                | Json.Object fields, Some r ->
                    Json.Object (fields @ [ ("plan", plan_stats_json r) ])
                | other, _ -> other)
              reports)
       in
       print_string (Json.to_string ~pretty:true doc);
       print_newline ()
     end
     else
       List.iter
         (fun (t, g_opt, ds, pr) ->
           print_string (Diagnostic.render_report ~source:t ds);
           (match g_opt with
           | Some g -> Printf.printf "%s\n" (Egraph_lint.stats_line g)
           | None -> ());
           (match pr with
           | Some r -> Printf.printf "%s\n" (plan_stats_line r)
           | None -> ());
           print_newline ())
         reports);
    let all_ds = List.concat_map (fun (_, _, ds, _) -> ds) reports in
    if not (Diagnostic.ok ~strict all_ds) then exit 1
  in
  let specs =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"EGRAPH"
          ~doc:"Instance names (see $(b,list)) or serialized e-graph files; repeatable.")
  in
  let all_flag =
    Arg.(value & flag & info [ "all" ] ~doc:"Analyze every bundled instance.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON report.")
  in
  let strict_flag =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Exit non-zero on warnings too (errors always fail); infos never fail.")
  in
  let plan_flag =
    Arg.(
      value & flag
      & info [ "plan" ]
          ~doc:
            "Also run the plan-level dataflow analysis: capture the iteration IR twice, \
             check iteration-stability (PL006/PL007), compute liveness, fusion chains and \
             the buffer arena, and verify the assignment (PL001–PL005, PL008).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static pre-flight analysis: e-graph lint (well-formedness, costs, cycle \
          feasibility), tape shape check, gradient-flow lint and (with $(b,--plan)) the \
          plan-level dataflow analysis. Exits 1 when findings exceed the allowed severity.")
    Term.(const run $ specs $ all_flag $ json_flag $ strict_flag $ plan_flag)

(* --------------------------------------------------------- trace-summary *)

let trace_summary_cmd =
  let run path out =
    let src = Fsio.read_file path in
    let j = Json.parse src in
    let events = Json.get_list (Json.member "traceEvents" j) in
    let tbl : (string, float Vec.t) Hashtbl.t = Hashtbl.create 32 in
    let instants = ref [] in
    List.iter
      (fun e ->
        let ph = Json.get_string (Json.member "ph" e) in
        let name = Json.get_string (Json.member "name" e) in
        if ph = "X" then begin
          let dur = Json.get_number (Json.member "dur" e) in
          let durs =
            match Hashtbl.find_opt tbl name with
            | Some v -> v
            | None ->
                let v = Vec.create () in
                Hashtbl.add tbl name v;
                v
          in
          Vec.push durs dur
        end
        else if ph = "i" then instants := name :: !instants)
      events;
    let rows =
      Hashtbl.fold
        (fun name durs acc ->
          let xs = Array.of_list (Vec.to_list durs) in
          let total = Array.fold_left ( +. ) 0.0 xs in
          (* exact per-span quantiles: the trace keeps every duration,
             unlike the live bucketed histograms *)
          (name, Array.length xs, total, Stats.percentile xs 50.0, Stats.percentile xs 95.0)
          :: acc)
        tbl []
    in
    let rows = List.sort (fun (_, _, a, _, _) (_, _, b, _, _) -> compare b a) rows in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "%-24s %8s %12s %10s %10s\n" "span" "count" "total_ms" "p50_ms" "p95_ms");
    List.iter
      (fun (name, c, t, p50, p95) ->
        Buffer.add_string buf
          (Printf.sprintf "%-24s %8d %12.3f %10.3f %10.3f\n" name c (t /. 1000.0)
             (p50 /. 1000.0) (p95 /. 1000.0)))
      rows;
    Buffer.add_string buf
      (Printf.sprintf "%d instant event(s)%s\n" (List.length !instants)
         (match List.sort_uniq compare !instants with
         | [] -> ""
         | names -> ": " ^ String.concat ", " names));
    match out with
    | None -> print_string (Buffer.contents buf)
    | Some out_path ->
        Fsio.write_atomic ~path:out_path (Buffer.contents buf);
        Printf.printf "trace summary written to %s\n" out_path
  in
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Chrome trace JSON file written by $(b,--trace).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Write the summary to $(docv) (atomic tmp+rename write) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace-summary"
       ~doc:"Summarise a recorded trace: per-span counts and total durations.")
    Term.(const run $ path $ out)

(* ----------------------------------------------------------------- serve *)

let socket_flag =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let metrics_format_flag =
  Arg.(
    value
    & opt (enum [ ("json", `Json); ("prom", `Prom) ]) `Json
    & info [ "metrics-format" ] ~docv:"FMT"
        ~doc:
          "Format of the $(b,--metrics) snapshot: $(b,json) (the registry snapshot) or \
           $(b,prom) (Prometheus text exposition).")

let log_flag =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:
          "Write request-scoped structured logs (one JSON object per line, each stamped \
           with the request id minted at admission) to $(docv); $(b,-) logs to stderr.")

let serve_cmd =
  let run socket queue_limit executors default_budget max_budget retry_attempts
      cache_capacity preflight plan jobs metrics_out metrics_format log_out health_report
      trace_out journal_dir supervise max_restarts restart_window read_timeout
      max_frame_bytes =
    let queue_limit = checked_pos_int ~flag:"--queue-limit" queue_limit in
    let default_budget = checked_pos_float ~flag:"--default-budget" default_budget in
    let max_budget = checked_pos_float ~flag:"--max-budget" max_budget in
    let retry_attempts = checked_pos_int ~flag:"--retry-attempts" retry_attempts in
    if executors < 0 then begin
      Printf.eprintf "--executors: must be >= 0, got %d\n" executors;
      exit 1
    end;
    if cache_capacity < 0 then begin
      Printf.eprintf "--cache-capacity: must be >= 0, got %d\n" cache_capacity;
      exit 1
    end;
    let jobs = checked_pos_int ~flag:"--jobs" jobs in
    let max_restarts = checked_pos_int ~flag:"--max-restarts" max_restarts in
    let restart_window = checked_pos_float ~flag:"--restart-window" restart_window in
    let read_timeout = checked_pos_float ~flag:"--read-timeout" read_timeout in
    let max_frame_bytes = checked_pos_int ~flag:"--max-frame-bytes" max_frame_bytes in
    let run_daemon () =
      Pool.set_jobs jobs;
      (* the daemon always keeps the metrics/trace sink live: the
         [telemetry] control op and [smoothe top] must have data without
         a restart (extraction results are unaffected — instrumentation
         never feeds back into the numerics) *)
      Obs.enable ();
      Trace.reset ();
      Metrics.reset ();
      let log_channel =
        match log_out with
        | None ->
            Log.set_sink Log.Silent;
            None
        | Some "-" ->
            Log.set_sink (Log.Channel stderr);
            None
        | Some path ->
            let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
            Log.set_sink (Log.Channel oc);
            Some oc
      in
      let config =
        {
          Serve_engine.queue_limit;
          executors;
          default_budget;
          max_budget;
          retry_attempts;
          cache_capacity;
          preflight;
          plan = Smoothe_config.plan_mode_of_string plan;
        }
      in
      let journal =
        match journal_dir with
        | None -> None
        | Some dir -> (
            match Serve_journal.open_ ~dir ~name:"requests" () with
            | j -> Some j
            | exception e ->
                Printf.eprintf "serve: cannot open request journal in %s: %s\n" dir
                  (Printexc.to_string e);
                exit 1)
      in
      let engine =
        match Serve_engine.validate_config config with
        | Ok c -> Serve_engine.create ~config:c ?journal ()
        | Error msg ->
            Printf.eprintf "serve: %s\n" msg;
            exit 1
      in
      (* replay what a dead predecessor was holding before the socket
         starts accepting, so recovered work is first in line *)
      (match journal with
      | Some j ->
          let replayed = Serve_engine.recover engine in
          Printf.printf
            "smoothe serve: journal %s (generation %d): warmed %d cache entries, replayed \
             %d pending request(s)%s\n\
             %!"
            (Serve_journal.file j) (Serve_journal.generation j)
            (Serve_engine.warmed engine) replayed
            (match Serve_journal.torn j with
            | [] -> ""
            | torn -> Printf.sprintf ", dropped %d torn frame tail(s)" (List.length torn))
      | None -> ());
      let srv =
        Serve_socket.create ~read_timeout ~max_frame:max_frame_bytes ~engine ~path:socket
          ()
      in
      List.iter
        (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> Serve_socket.shutdown srv)))
        [ Sys.sigterm; Sys.sigint ];
      Printf.printf
        "smoothe serve: listening on %s (queue limit %d, %d executor(s), budgets %g/%gs, \
         cache %d)\n\
         %!"
        socket queue_limit executors default_budget max_budget cache_capacity;
      Serve_socket.run srv;
      (match journal with Some j -> Serve_journal.close j | None -> ());
      let s = Serve_engine.stats engine in
      Printf.printf
        "smoothe serve: drained cleanly (admitted %d, completed %d, shed %d, refused %d, \
         cache hits %d)\n"
        s.Serve_engine.admission.Admission.admitted
        s.Serve_engine.admission.Admission.completed s.Serve_engine.admission.Admission.shed
        s.Serve_engine.admission.Admission.refused s.Serve_engine.cache_hits;
      write_health_report (Serve_engine.health engine) health_report;
      (match trace_out with
      | Some path ->
          Trace.write_file path;
          Printf.printf "trace written to %s\n" path
      | None -> ());
      write_metrics_snapshot ~format:metrics_format metrics_out;
      match log_channel with
      | Some oc ->
          Log.set_sink Log.Silent;
          close_out oc
      | None -> ()
    in
    if not supervise then run_daemon ()
    else begin
      (* watchdog mode: fork a fresh daemon per attempt, BEFORE any
         engine state or thread exists in this process (fork and
         threads do not mix), and restart it on abnormal exit *)
      Log.set_sink (Log.Channel stderr);
      let stopping = ref false in
      let child = ref (-1) in
      let forward signal _ =
        stopping := true;
        if !child > 0 then try Unix.kill !child signal with Unix.Unix_error _ -> ()
      in
      List.iter
        (fun s -> Sys.set_signal s (Sys.Signal_handle (forward Sys.sigterm)))
        [ Sys.sigterm; Sys.sigint ];
      let spawn ~attempt:_ =
        match Unix.fork () with
        | 0 ->
            (* child: drop the watchdog's handlers (run_daemon installs
               its own drain handlers) and its stderr log sink *)
            List.iter
              (fun s -> Sys.set_signal s Sys.Signal_default)
              [ Sys.sigterm; Sys.sigint ];
            Log.set_sink Log.Silent;
            (match run_daemon () with
            | () -> Stdlib.exit 0
            | exception e ->
                Printf.eprintf "smoothe serve: daemon died: %s\n" (Printexc.to_string e);
                Stdlib.exit 70)
        | pid -> (
            child := pid;
            let rec wait () =
              match Unix.waitpid [] pid with
              | _, status -> status
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
            in
            let status = wait () in
            child := -1;
            (* an exit while the operator is stopping us counts as
               clean: the drain was interrupted on purpose *)
            match status with
            | _ when !stopping -> Watchdog.Exited 0
            | Unix.WEXITED code -> Watchdog.Exited code
            | Unix.WSIGNALED sg | Unix.WSTOPPED sg -> Watchdog.Signaled sg)
      in
      let health = Health.create () in
      let policy =
        { Watchdog.default_policy with Watchdog.max_restarts; window = restart_window }
      in
      match Watchdog.supervise ~policy ~health ~name:"smoothe-serve" spawn with
      | Watchdog.Clean_exit -> ()
      | Watchdog.Crash_loop { crashes; window } ->
          Printf.eprintf
            "smoothe serve: crash-loop breaker tripped (%d abnormal exits within %.0fs); \
             giving up\n"
            crashes window;
          write_health_report health health_report;
          exit 70
    end
  in
  let queue_limit =
    Arg.(
      value & opt int 64
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Admission-queue bound: requests beyond $(docv) waiting are shed with a \
             structured $(b,overloaded) response instead of queueing without limit.")
  in
  let executors =
    Arg.(
      value & opt int 1
      & info [ "executors" ] ~docv:"N"
          ~doc:
            "Executor domains pulling from the admission queue. 0 only admits (useful for \
             protocol debugging); per-request fault plans require at most 1.")
  in
  let default_budget =
    Arg.(
      value & opt float 30.0
      & info [ "default-budget" ] ~docv:"SECONDS"
          ~doc:"Compute budget for requests that name none.")
  in
  let max_budget =
    Arg.(
      value & opt float 300.0
      & info [ "max-budget" ] ~docv:"SECONDS" ~doc:"Per-request compute-budget ceiling.")
  in
  let retry_attempts =
    Arg.(
      value & opt int 2
      & info [ "retry-attempts" ] ~docv:"N"
          ~doc:
            "Supervised attempts per request (shared deadline, capped exponential \
             backoff); a request that crashes on every attempt gets a structured \
             $(b,crashed) response and the daemon lives on.")
  in
  let cache_capacity =
    Arg.(
      value & opt int 128
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:
            "Solution-cache entries (LRU, keyed by e-graph fingerprint + content CRC); 0 \
             disables caching.")
  in
  let preflight =
    Arg.(
      value & flag
      & info [ "preflight" ] ~doc:"Run the static e-graph lint gate inside each request.")
  in
  let plan =
    Arg.(
      value
      & opt (enum [ ("off", "off"); ("on", "on"); ("check", "check") ]) "off"
      & info [ "plan" ] ~docv:"MODE"
          ~doc:
            "Static-plan replay for SmoothE requests: $(b,on) arms verified \
             zero-allocation replay of each request's iteration IR, $(b,check) also \
             interprets and asserts bitwise identity; gate failures fall back to the \
             interpreter per request.")
  in
  let journal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-dir" ] ~docv:"DIR"
          ~doc:
            "Write-ahead request journal directory: every admitted request is journaled \
             durably before execution and marked completed on fulfilment, so a crashed \
             daemon replays unanswered work on restart (and serves already-answered \
             replays from the warmed solution cache). Without this flag a crash loses \
             queued and in-flight requests.")
  in
  let supervise =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Watchdog mode: fork the daemon and restart it on abnormal exit with capped \
             exponential backoff; $(b,--max-restarts) abnormal exits within \
             $(b,--restart-window) seconds trip the crash-loop breaker and give up with a \
             structured health event. A clean SIGTERM drain ends supervision.")
  in
  let max_restarts =
    Arg.(
      value & opt int 5
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:"Crash-loop breaker threshold (with $(b,--supervise)).")
  in
  let restart_window =
    Arg.(
      value & opt float 60.0
      & info [ "restart-window" ] ~docv:"SECONDS"
          ~doc:"Crash-loop breaker window (with $(b,--supervise)).")
  in
  let read_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "read-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-connection frame-read deadline: a client that dribbles or stalls \
             mid-frame is answered with a structured $(b,timeout) error and \
             disconnected.")
  in
  let max_frame_bytes =
    Arg.(
      value
      & opt int (8 * 1024 * 1024)
      & info [ "max-frame-bytes" ] ~docv:"N"
          ~doc:
            "Request-line length cap; longer frames are answered with a structured \
             $(b,frame_too_long) error and disconnected.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the fault-tolerant extraction daemon: line-framed JSON requests over a Unix \
          socket, bounded admission with load shedding, per-request deadlines and \
          supervised retry, fingerprint-keyed solution cache, graceful drain on SIGTERM; \
          optionally crash-only ($(b,--journal-dir)) and supervised by a restart watchdog \
          ($(b,--supervise)).")
    Term.(
      const run $ socket_flag $ queue_limit $ executors $ default_budget $ max_budget
      $ retry_attempts $ cache_capacity $ preflight $ plan $ jobs_flag $ metrics_flag
      $ metrics_format_flag $ log_flag $ health_report_flag $ trace_flag $ journal_dir
      $ supervise $ max_restarts $ restart_window $ read_timeout $ max_frame_bytes)

(* --------------------------------------------------------------- request *)

let request_cmd =
  let run spec socket ping stats method_name budget deadline_ms seed batch iters lambda
      fault_plan no_cache id retries =
    if retries < 0 then begin
      Printf.eprintf "--retries: must be >= 0, got %d\n" retries;
      exit 1
    end;
    let frame =
      if ping then Json.Object [ ("op", Json.String "ping") ]
      else if stats then Json.Object [ ("op", Json.String "stats") ]
      else begin
        let spec =
          match spec with
          | Some s -> s
          | None ->
              Printf.eprintf
                "request: give an instance name or e-graph file (or --ping / --stats)\n";
              exit 1
        in
        let budget =
          Option.map (fun b -> checked_pos_float ~flag:"--budget" b) budget
        in
        let deadline_ms =
          Option.map (fun d -> checked_pos_float ~flag:"--deadline-ms" d) deadline_ms
        in
        let batch = checked_pos_int ~flag:"--batch" batch in
        let iters = checked_pos_int ~flag:"--iters" iters in
        let source =
          if Sys.file_exists spec then
            let g =
              if Filename.check_suffix spec ".json" then Gym.read_file spec
              else Egraph.Serial.read_file spec
            in
            Serve_protocol.Inline (Egraph.Serial.to_string g)
          else Serve_protocol.Instance spec
        in
        let method_ =
          match Serve_protocol.method_of_name method_name with
          | Some m -> m
          | None ->
              Printf.eprintf "request: unknown method %S\n" method_name;
              exit 1
        in
        Serve_protocol.request_to_json
          {
            Serve_protocol.default_request with
            Serve_protocol.id;
            source;
            method_;
            budget;
            deadline_ms;
            seed;
            batch;
            iters;
            lambda_ = lambda;
            fault_plan;
            use_cache = not no_cache;
          }
      end
    in
    match Serve_socket.call ~retries ~rng:(Rng.create seed) ~path:socket frame with
    | resp ->
        print_endline (Json.to_string resp);
        let status =
          match Json.member "status" resp with Json.String s -> s | _ -> "error"
        in
        if status <> "ok" then exit 3
    | exception Failure msg ->
        Printf.eprintf "request: %s\n" msg;
        exit 1
  in
  let spec =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"EGRAPH"
          ~doc:"Instance name (resolved by the daemon) or serialized e-graph file (sent \
                inline).")
  in
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Liveness probe.") in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Fetch admission/cache counters.")
  in
  let method_name =
    Arg.(
      value & opt string "smoothe"
      & info [ "m"; "method" ] ~docv:"METHOD"
          ~doc:"Extraction method: $(b,smoothe), $(b,greedy) or $(b,greedy-dag).")
  in
  let budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"SECONDS" ~doc:"Compute budget (daemon default if absent).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Overall deadline including queue wait; expired requests are answered \
                $(b,deadline_expired) without running.")
  in
  let batch =
    Arg.(value & opt int 8 & info [ "b"; "batch" ] ~docv:"B" ~doc:"SmoothE seed batch.")
  in
  let iters =
    Arg.(value & opt int 60 & info [ "iters" ] ~docv:"K" ~doc:"SmoothE iteration cap.")
  in
  let lambda =
    Arg.(value & opt float 100.0 & info [ "lambda" ] ~docv:"L" ~doc:"NOTEARS weight.")
  in
  let fault_plan =
    Arg.(
      value & opt string ""
      & info [ "fault-plan" ] ~docv:"PLAN"
          ~doc:
            "Test-only deterministic faults applied to this request's execution (single-\
             executor daemons only), e.g. $(b,crash\\@5).")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Bypass the daemon's solution cache.")
  in
  let id =
    Arg.(value & opt string "cli" & info [ "id" ] ~docv:"ID" ~doc:"Request id echoed back.")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "When the daemon sheds with $(b,overloaded), honor its $(b,retry_after_ms) \
             hint and re-send up to $(docv) times (exponential backoff, deterministic \
             jitter). 0 returns the shed response immediately.")
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one extraction request (or a $(b,--ping)/$(b,--stats) probe) to a running \
          $(b,smoothe serve) daemon and print the JSON response. Exits 0 on an $(b,ok) \
          response, 3 on a structured error response.")
    Term.(
      const run $ spec $ socket_flag $ ping $ stats $ method_name $ budget $ deadline_ms
      $ seed_flag $ batch $ iters $ lambda $ fault_plan $ no_cache $ id $ retries)

(* ------------------------------------------------------------------- top *)

(* The monitor's single data source is the daemon's [telemetry] control
   op: one frame per poll, so a busy daemon pays one registry
   transaction per refresh, never one lock round-trip per metric. *)
let top_cmd =
  let run socket interval once as_json as_prom =
    let interval = checked_pos_float ~flag:"--interval" interval in
    if as_json && as_prom then begin
      Printf.eprintf "top: --json and --prom are mutually exclusive\n";
      exit 1
    end;
    let num j = match (j : Json.t) with Json.Number v -> v | _ -> 0.0 in
    let fetch () =
      let frame =
        Json.Object
          (("op", Json.String "telemetry")
          :: (if as_prom then [ ("format", Json.String "prom") ] else []))
      in
      match Serve_socket.call ~path:socket frame with
      | reply -> reply
      | exception Failure msg ->
          Printf.eprintf "top: %s\n" msg;
          exit 1
    in
    (* a metric that saw no traffic yet has no cell at all: read its
       fields as Null / 0 instead of raising on member-of-Null *)
    let field name f metrics =
      match Json.member name metrics with
      | Json.Object _ as m -> Json.member f m
      | _ -> Json.Null
    in
    (* a flat scrape-friendly summary: rates from the meters, quantiles
       from the bucketed histograms, depths from the admission stats *)
    let summary reply =
      let stats = Json.member "stats" reply in
      let metrics = Json.member "metrics" reply in
      let stat f = Json.member f stats in
      let met name f = field name f metrics in
      let rate name f = Json.Number (num (met name f)) in
      Json.Object
        [
          ("uptime_s", stat "uptime_s");
          ("state", stat "state");
          ("qps_1s", rate "serve.offered.rate" "rate_1s");
          ("qps_10s", rate "serve.offered.rate" "rate_10s");
          ("qps_60s", rate "serve.offered.rate" "rate_60s");
          ("shed_per_s_10s", rate "serve.shed.rate" "rate_10s");
          ("completed_per_s_10s", rate "serve.completed.rate" "rate_10s");
          ("queue_depth", stat "queued");
          ("queue_limit", stat "queue_limit");
          ("inflight", stat "inflight");
          ("cache_hit_rate", stat "cache_hit_rate");
          ("request_ms_p50", met "serve.request_ms" "p50");
          ("request_ms_p95", met "serve.request_ms" "p95");
          ("request_ms_p99", met "serve.request_ms" "p99");
          ("request_ms_count", met "serve.request_ms" "count");
          ("queue_ms_p50", met "serve.queue_ms" "p50");
          ("queue_ms_p95", met "serve.queue_ms" "p95");
          ("queue_ms_p99", met "serve.queue_ms" "p99");
          ("requests", stat "admitted");
          ("completed", stat "completed");
          ("shed", stat "shed");
          ("refused", stat "refused");
          ("cache_hits", stat "cache_hits");
          ("cache_misses", stat "cache_misses");
        ]
    in
    let render_human reply =
      let stats = Json.member "stats" reply in
      let metrics = Json.member "metrics" reply in
      let stat f = num (Json.member f stats) in
      let met name f = num (field name f metrics) in
      let hist_line label name =
        Printf.printf "  %-12s %9.3f %9.3f %9.3f %9.3f %9.0f\n" label (met name "p50")
          (met name "p95") (met name "p99") (met name "mean") (met name "count")
      in
      Printf.printf "smoothe top — %s    up %.0fs    state %s\n\n" socket (stat "uptime_s")
        (match Json.member "state" stats with Json.String s -> s | _ -> "?");
      Printf.printf "  %-12s 1s %6.1f   10s %6.1f   60s %6.1f\n" "qps"
        (met "serve.offered.rate" "rate_1s")
        (met "serve.offered.rate" "rate_10s")
        (met "serve.offered.rate" "rate_60s");
      Printf.printf "  %-12s 1s %6.1f   10s %6.1f   60s %6.1f\n" "done/s"
        (met "serve.completed.rate" "rate_1s")
        (met "serve.completed.rate" "rate_10s")
        (met "serve.completed.rate" "rate_60s");
      Printf.printf "  %-12s 1s %6.1f   10s %6.1f   60s %6.1f\n" "shed/s"
        (met "serve.shed.rate" "rate_1s")
        (met "serve.shed.rate" "rate_10s")
        (met "serve.shed.rate" "rate_60s");
      Printf.printf "  %-12s %.0f / %.0f waiting, %.0f in flight\n" "queue"
        (stat "queued") (stat "queue_limit") (stat "inflight");
      Printf.printf "  %-12s %.0f%% hit rate (%.0f hits / %.0f misses, %.0f / %.0f entries)\n\n"
        "cache"
        (100.0 *. stat "cache_hit_rate")
        (stat "cache_hits") (stat "cache_misses") (stat "cache_size")
        (stat "cache_capacity");
      Printf.printf "  %-12s %9s %9s %9s %9s %9s\n" "latency ms" "p50" "p95" "p99" "mean"
        "count";
      hist_line "request" "serve.request_ms";
      hist_line "queue" "serve.queue_ms";
      Printf.printf "\n  %-12s requests %.0f  admitted %.0f  completed %.0f  shed %.0f  \
                     refused %.0f\n"
        "counters"
        (met "serve.requests" "value")
        (stat "admitted") (stat "completed") (stat "shed") (stat "refused")
    in
    let rec loop first =
      let reply = fetch () in
      if as_prom then print_string (Json.get_string (Json.member "prom" reply))
      else if as_json then print_endline (Json.to_string (summary reply))
      else begin
        (* repaint in place, like top(1); the first frame keeps the
           scrollback so --once output survives in a pipe *)
        if not first then print_string "\027[H\027[2J";
        render_human reply
      end;
      flush stdout;
      if not once then begin
        Unix.sleepf interval;
        loop false
      end
    in
    loop true
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period between polls.")
  in
  let once =
    Arg.(value & flag & info [ "once" ] ~doc:"Print one sample and exit (for scripts).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "One flat JSON summary per sample (rates, depths, latency quantiles, \
             counters) instead of the screen display.")
  in
  let prom =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:"Print the daemon's Prometheus text exposition instead of the screen \
                display.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live monitor for a running $(b,smoothe serve) daemon: polls the $(b,telemetry) \
          control op and shows qps, shed and completion rates, queue depth, cache hit \
          rate and latency quantiles. $(b,--once --json) emits one machine-readable \
          sample.")
    Term.(const run $ socket_flag $ interval $ once $ json $ prom)

(* --------------------------------------------------------------- compare *)

let compare_cmd =
  let run spec time_limit =
    let g = load_egraph spec in
    Format.printf "%a@.@." Egraph.Stats.pp (Egraph.Stats.compute g);
    let methods =
      [
        `Greedy; `Greedy_dag; `Genetic; `Annealing; `Ilp_pruned; `Ilp Bnb.cplex_like;
        `Smoothe; `Hybrid;
      ]
    in
    List.iter
      (fun method_ ->
        ignore
          (run_method g ~method_ ~time_limit ~batch:16 ~iters:150 ~assumption:"hybrid"
             ~lambda:100.0 ~seed:7 ~plan:"off" ~health:(Health.create ()) ~checkpoint_dir:None
             ~checkpoint_every:25 ~resume:false ~show_term:false ~preflight:false ~jobs:1
             ~fix_threshold:0.9 ~hybrid_gap:0.0))
      methods
  in
  Cmd.v (Cmd.info "compare" ~doc:"Run every extraction method on one e-graph.")
    Term.(const run $ instance_arg $ time_limit_flag)

let () =
  let info =
    Cmd.info "smoothe" ~version:"1.0.0"
      ~doc:"Differentiable e-graph extraction (SmoothE, ASPLOS 2025) and baselines."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; stats_cmd; dump_cmd; analyze_cmd; extract_cmd; compare_cmd;
            trace_summary_cmd; serve_cmd; request_cmd; top_cmd;
          ]))
