(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (via the Harness experiment runners) and micro-benchmarks
   the hot kernels with Bechamel.

   Usage:
     dune exec bench/main.exe                  # everything, default budget
     dune exec bench/main.exe -- table2 fig7   # selected experiments
     dune exec bench/main.exe -- --quick all   # smoke-test budget
     dune exec bench/main.exe -- --jobs 4 all  # fan sweeps over 4 domains
     dune exec bench/main.exe -- kernels       # Bechamel micro-benchmarks *)

let kernels () =
  let open Bechamel in
  Report.heading "Bechamel kernel micro-benchmarks";
  let rover = (Registry.find_instance "box_3").Registry.build () in
  let setcov = (Registry.find_instance "set_cover_small").Registry.build () in
  let config =
    { Smoothe_config.default with Smoothe_config.batch = 8; prop_iters = Some 12 }
  in
  let compiled = Relaxation.compile config rover in
  let model = Cost_model.of_egraph rover in
  let rng = Rng.create 3 in
  let theta =
    Tensor.init ~batch:8 ~width:(Egraph.num_nodes rover) (fun _ _ -> Rng.gaussian rng)
  in
  let cp_tensor =
    let fwd = Relaxation.forward compiled ~config ~model ~theta in
    Ad.value fwd.Relaxation.cp
  in
  let mat =
    Tensor.init ~batch:64 ~width:64 (fun i j -> if i = j then 0.1 else 0.3 /. 64.0)
  in
  let lp_enc = Ilp.encode ((Registry.find_instance "mcm_8").Registry.build ()) in
  let tests =
    [
      (* Tables 2/3: one SmoothE optimisation step (forward + backward) *)
      Test.make ~name:"smoothe_fwd_bwd_step(table2/3)"
        (Staged.stage (fun () ->
             let fwd = Relaxation.forward compiled ~config ~model ~theta in
             Ad.backward fwd.Relaxation.loss));
      (* §3.5 sampling: decode + score a full seed batch *)
      Test.make ~name:"sampler_batch(fig8)"
        (Staged.stage (fun () -> ignore (Sampler.best_of_batch rover ~model ~cp:cp_tensor)));
      (* §4.3: the matrix exponential behind the NOTEARS term *)
      Test.make ~name:"matexp_64x64(fig6)"
        (Staged.stage (fun () -> ignore (Tensor.Matfun.expm mat)));
      (* Eq. 1: the LP relaxation at the root of the ILP branch-and-bound *)
      Test.make ~name:"lp_relaxation_mcm8(table2)"
        (Staged.stage (fun () -> ignore (Lp.solve lp_enc.Ilp.problem)));
      (* the egg worklist heuristic (baseline of every table) *)
      Test.make ~name:"greedy_worklist(table4)"
        (Staged.stage (fun () -> ignore (Greedy.class_costs setcov)));
      (* segment softmax: Eq. 3b's per-class normalisation *)
      Test.make ~name:"segment_softmax(table2)"
        (Staged.stage (fun () -> ignore (Segments.softmax theta rover.Egraph.class_seg)));
    ]
  in
  let grouped = Test.make_grouped ~name:"kernels" tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Report.set_columns [ 40; 16 ];
  Report.row [ "kernel"; "time/run" ];
  Report.rule ();
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
          let show =
            if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          Report.row [ name; show ]
      | Some _ | None -> Report.row [ name; "-" ])
    (List.sort compare rows)

(* --record: serialise exactly what an experiment printed — the Report
   tables, captured cell by cell — into a schema-versioned result file,
   so CI and later sessions can diff bench output structurally instead
   of scraping stdout. *)
let record_schema_version = 1

let write_record ~name ~quick tables =
  let path = Printf.sprintf "BENCH_%s.json" name in
  let doc =
    Json.Object
      [
        ("schema_version", Json.Number (float_of_int record_schema_version));
        ("experiment", Json.String name);
        ("budget", Json.String (if quick then "quick" else "default"));
        ( "tables",
          Json.Array
            (List.map
               (fun (title, rows) ->
                 Json.Object
                   [
                     ("title", Json.String title);
                     ( "rows",
                       Json.Array
                         (List.map
                            (fun cells ->
                              Json.Array (List.map (fun c -> Json.String c) cells))
                            rows) );
                   ])
               tables) );
      ]
  in
  Fsio.write_atomic ~path (Json.to_string ~pretty:true doc ^ "\n");
  Printf.printf "[recorded %s]\n%!" path

let () =
  let quick = ref false in
  let record = ref false in
  let selected = ref [] in
  let spec =
    [
      ("--quick", Arg.Set quick, "use the fast smoke-test budget");
      ( "--record",
        Arg.Set record,
        " write each experiment's tables to BENCH_<experiment>.json (atomic, \
         schema-versioned)" );
      ( "--jobs",
        Arg.Int
          (fun j ->
            if j < 1 then raise (Arg.Bad "--jobs must be >= 1");
            Pool.set_jobs j),
        "N  size of the domain pool the sweeps and tensor kernels fan over (default 1; \
         results are bit-identical at any value)" );
    ]
  in
  Arg.parse spec
    (fun name -> selected := name :: !selected)
    "bench [--quick] [--record] [--jobs N] [experiments...]";
  let budget = if !quick then Budget.quick else Budget.default in
  let bank = Runbank.create budget in
  let wanted = List.rev !selected in
  let recording name f =
    if !record then begin
      let (), tables = Report.record f in
      write_record ~name ~quick:!quick tables
    end
    else f ()
  in
  let run_one name =
    match name with
    | "all" ->
        recording "all" (fun () ->
            Experiments.all bank;
            kernels ())
    | "kernels" -> recording "kernels" kernels
    | name -> (
        match Experiments.by_name name with
        | Some f ->
            let (), t = Timer.time (fun () -> recording name (fun () -> f bank)) in
            Printf.printf "[%s completed in %.1fs]\n%!" name t
        | None ->
            Printf.eprintf "unknown experiment %S; available: %s, kernels, all\n" name
              (String.concat ", " Experiments.names);
            exit 1)
  in
  match wanted with
  | [] ->
      Experiments.all bank;
      kernels ()
  | names -> List.iter run_one names
