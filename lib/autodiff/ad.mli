(** Reverse-mode automatic differentiation over batched tensors.

    This is the reproduction's stand-in for PyTorch autograd. SmoothE
    (§3) needs gradients of a scalar loss — cost model plus NOTEARS
    acyclicity penalty — with respect to the free e-node logits θ,
    through segment softmax, the iterative probability propagation φ of
    Eq. (5)–(7) (unrolled on the tape), MLP cost models, and the matrix
    exponential of Eq. (8).

    Usage: allocate a {!tape}, lift inputs with {!const}/{!param}, build
    the loss with the operators below, call {!backward} on the scalar
    output, then read gradients of parameters with {!grad}. The tape is
    single-use: one forward/backward pair per tape; a second {!backward}
    on the same tape raises [Invalid_argument].

    Alongside the runtime tape, every operator records one node of a
    lightweight op-graph {!Ir} — op name, operand ids, output shape,
    ambient {!with_context} label, and op-specific metadata. The IR is
    plain data with no tensors or closures; the static analyses in
    [lib/analysis] (shape abstract interpretation, gradient-flow lint)
    run over it without executing any kernel. *)

(** Side-effect-free op-graph recorded at tape-construction time. Node
    [i] of the IR describes tape node [i]; [args] are indices of earlier
    nodes. *)
module Ir : sig
  type shape = { batch : int; width : int }

  (** Op-specific static facts that shape/gradient analyses need but the
      output shape alone does not carry. *)
  type meta =
    | M_none
    | M_scalar of float  (** [scale] / [add_scalar] constant *)
    | M_gather of { count : int; index_min : int; index_max : int }
        (** gather index stats; [index_max = -1] when the index is empty *)
    | M_segments of {
        seg_count : int;
        seg_width : int;  (** total elements the segmentation expects *)
        empty_segments : int;
        max_len : int;
      }
    | M_columns of (int * float) array  (** [override_columns] pins *)
    | M_row of int  (** [slice_row] row index *)
    | M_width of int  (** [dot_const] coefficient count *)
    | M_matrix of { dim : int; class_min : int; class_max : int; col_max : int }
        (** [matrix_of_entries] scatter targets; [-1] maxima when empty *)

  type node = {
    op : string;
    args : int array;
    shape : shape;  (** shape the op actually produced *)
    context : string;
        (** full {!with_context} provenance chain at build time,
            outermost→innermost, joined with ["/"]
            (e.g. ["smoothe.forward/cost_model.relaxed"]);
            ["(toplevel)"] outside any region *)
    meta : meta;
  }

  type t = node array

  val shape_to_string : shape -> string
end

(** Runtime payloads that {!Ir.meta} summarises but does not carry: the
    exact index arrays, segmentations, coefficient vectors and scatter
    entries an op closed over. The plan replay engine ({!Plan}) needs
    them verbatim to re-execute a captured graph. *)
type payload =
  | P_none
  | P_indices of int array  (** [gather] index array *)
  | P_segments of Segments.t  (** [segment_*] segmentation *)
  | P_coeffs of float array  (** [dot_const] coefficients *)
  | P_entries of { dim : int; entries : (int * int * int) array }
      (** [matrix_of_entries] scatter targets *)

type tape
type v

val tape : unit -> tape
val node_count : tape -> int

val ir : tape -> Ir.t
(** Snapshot of the op-graph recorded so far (index [i] = tape node [i]). *)

val payloads : tape -> payload array
(** Per-node runtime payloads, parallel to {!ir}. *)

val values : tape -> Tensor.t array
(** Per-node forward values, parallel to {!ir} — what a plan capture
    aliases for [const]/[param] leaves. *)

val swept : tape -> bool
(** Whether {!backward} already ran on this tape. *)

val node_id : v -> int
(** This node's position on its tape — its index into {!ir}. *)

val with_context : string -> (unit -> 'a) -> 'a
(** [with_context label f] runs [f] with [label] pushed onto the
    provenance chain recorded into every node built inside (restored
    afterwards, also on exceptions). Nested calls stack: diagnostics
    render the whole chain outermost→innermost. *)

val value : v -> Tensor.t
(** Forward value of a node. *)

val grad : v -> Tensor.t
(** Accumulated adjoint. Zero tensor if the node never received
    gradient.
    @raise Invalid_argument if this node's tape has not been swept by
    {!backward} — in particular when the node belongs to a different
    tape than the one swept, which would otherwise silently read as
    zeros. *)

val const : tape -> Tensor.t -> v
(** A node that blocks gradient flow (inputs, fixed cost vectors). *)

val param : tape -> Tensor.t -> v
(** A differentiable leaf. The tensor is captured by reference so an
    optimiser can update it between iterations. *)

val backward : v -> unit
(** Seeds the given node with an all-ones adjoint and sweeps the tape in
    reverse. The node is normally the (1,1) scalar loss; seeding a
    wider node differentiates the *sum* of its entries.
    @raise Invalid_argument if this tape was already swept — tapes are
    single-use, one forward/backward pair each. Cross-tape operand
    mixing is rejected earlier, at node construction: every operator
    raises [Invalid_argument] when an operand belongs to a different
    tape than the one being built on. *)

(** {1 Pointwise} *)

val add : v -> v -> v
val sub : v -> v -> v
val mul : v -> v -> v
val neg : v -> v
val scale : float -> v -> v
val add_scalar : float -> v -> v
val one_minus : v -> v
(** [one_minus x] is [1 - x] — the "not chosen" probability of Eq. (6). *)

val relu : v -> v

val log_safe : v -> v
(** Natural log clamped below at 1e-12 (value and gradient) — used by
    the entropy regulariser over conditional probabilities. *)

(** {1 Structure ops} *)

val gather : v -> int array -> v
(** Column gather; adjoint is scatter-add. *)

val segment_softmax : v -> Segments.t -> v
(** Per-segment softmax (Eq. 3b): θ logits → conditional probabilities. *)

val segment_sum : v -> Segments.t -> v
val segment_prod : v -> Segments.t -> v
val segment_max : v -> Segments.t -> v
(** Adjoint flows to each segment's argmax only (subgradient), matching
    PyTorch [max] semantics used for the fully-correlated assumption of
    Eq. (7). *)

val override_columns : v -> (int * float) list -> v
(** Pin given columns to constants across the batch (no gradient through
    them) — used to fix the root e-class probability at 1. *)

val mean_rows : v -> v
(** (B,N) → (1,N) batch mean — the batched matrix-exponential
    approximation of Eq. (11) averages seed adjacencies this way. *)

val slice_row : v -> int -> v
(** (B,N) → (1,N) view of one batch row (copy; adjoint scatters back). *)

(** {1 Reductions} *)

val sum_width : v -> v
(** (B,N) → (B,1) per-seed sum. *)

val sum_all : v -> v
(** (B,N) → (1,1). *)

val dot_const : v -> float array -> v
(** [dot_const p u] is the per-seed linear cost [uᵀ p] : (B,N) → (B,1). *)

val mean_all : v -> v

(** {1 Neural-network ops} *)

val linear : input:v -> weight:v -> bias:v -> v
(** [linear ~input ~weight ~bias] with input (B,N), weight (H,N) stored
    row-per-output-neuron, bias (1,H) → (B,H). *)

val mse : pred:v -> target:v -> v
(** Mean squared error, a (1,1) scalar. *)

(** {1 Matrix ops} *)

val matrix_of_entries : v -> dim:int -> (int * int * int) array -> v
(** [matrix_of_entries cp ~dim entries] scatter-adds the (1,N) input into
    a dim×dim matrix: entry [(col, i, j)] adds [cp.(col)] to [A[i,j]].
    Builds the SCC-restricted transition matrix A_t of §3.4 where
    [A_t[i,j] = Σ cp_k] over e-nodes k in class i with child class j. *)

val expm_trace : v -> v
(** [expm_trace a] is [tr(e^A)] as a (1,1) scalar. The adjoint uses the
    analytic identity d tr(e^A)/dA = (e^A)ᵀ, so the backward pass costs
    one transpose of the already-computed exponential. *)

(** {1 Utilities} *)

val finite_difference :
  f:(Tensor.t -> float) -> x:Tensor.t -> eps:float -> Tensor.t
(** Central-difference gradient estimate of a scalar function, used by
    the test-suite to validate every analytic adjoint above. *)
