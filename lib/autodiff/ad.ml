(* The tape carries a parallel, side-effect-free op-graph IR so static
   analyses (lib/analysis: Shape_check, Grad_flow) can inspect what a
   forward pass built without re-running any tensor kernel. Recording is
   always on: it is one small immutable record per tape node, does not
   touch any tensor, and therefore cannot perturb numerics. *)
module Ir = struct
  type shape = { batch : int; width : int }

  type meta =
    | M_none
    | M_scalar of float
    | M_gather of { count : int; index_min : int; index_max : int }
    | M_segments of {
        seg_count : int;
        seg_width : int;
        empty_segments : int;
        max_len : int;
      }
    | M_columns of (int * float) array
    | M_row of int
    | M_width of int
    | M_matrix of { dim : int; class_min : int; class_max : int; col_max : int }

  type node = {
    op : string;
    args : int array;
    shape : shape;
    context : string;
    meta : meta;
  }

  type t = node array

  let shape_to_string { batch; width } = Printf.sprintf "(%d,%d)" batch width
end

(* Runtime payloads the IR's [meta] summarises but does not carry: the
   exact index arrays, segmentations, coefficient vectors and scatter
   entries an op closed over. The plan replay engine (Plan) needs them
   verbatim to re-execute a captured graph; analyses keep using the
   summarised [meta]. One payload per tape node, [P_none] for ops whose
   behaviour is fully determined by op + meta. *)
type payload =
  | P_none
  | P_indices of int array  (* gather *)
  | P_segments of Segments.t  (* segment_* *)
  | P_coeffs of float array  (* dot_const *)
  | P_entries of { dim : int; entries : (int * int * int) array }  (* matrix_of_entries *)

type v = {
  tp : tape;
  id : int;  (* position on the tape = index into the IR *)
  value : Tensor.t;
  mutable grad : Tensor.t option;
  mutable pull : (unit -> unit) option;
      (* reads this node's adjoint and accumulates into its parents *)
}

and tape = {
  nodes : v Vec.t;
  ir : Ir.node Vec.t;
  pay : payload Vec.t;
  mutable swept : bool;
}

let tape () = { nodes = Vec.create (); ir = Vec.create (); pay = Vec.create (); swept = false }
let node_count tp = Vec.length tp.nodes
let ir tp = Vec.to_array tp.ir
let payloads tp = Vec.to_array tp.pay
let values tp = Array.init (Vec.length tp.nodes) (fun i -> (Vec.get tp.nodes i).value)
let node_id n = n.id
let swept tp = tp.swept

let value n = n.value

(* Ambient provenance chain recorded into every IR node, so diagnostics
   can say where on the tape an op was built. Nested [with_context]
   calls stack; the recorded label joins the chain outermost→innermost
   ("smoothe.forward/cost_model.relaxed"), memoised per push so [node]
   pays one field read. Domain-local: concurrent pool extractions keep
   independent chains. *)
let context_key : (string list * string) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref ([], "(toplevel)"))

let context_label () = snd !(Domain.DLS.get context_key)

let with_context label f =
  let cell = Domain.DLS.get context_key in
  let saved = !cell in
  let chain = label :: fst saved in
  cell := (chain, String.concat "/" (List.rev chain));
  Fun.protect ~finally:(fun () -> cell := saved) f

let grad_tensor n =
  match n.grad with
  | Some g -> g
  | None ->
      let g = Tensor.create ~batch:n.value.Tensor.batch ~width:n.value.Tensor.width in
      n.grad <- Some g;
      g

let grad n =
  if not n.tp.swept then
    invalid_arg
      "Ad.grad: this node's tape has not been swept — call Ad.backward on a node of the \
       same tape first (a node from a different tape than the one swept reads as zeros \
       otherwise)";
  grad_tensor n

let node ?(meta = Ir.M_none) ?(payload = P_none) ~op ~args tp value pull =
  Array.iter
    (fun a ->
      if a.tp != tp then
        invalid_arg
          (Printf.sprintf
             "Ad.%s: operand node %d was built on a different tape — mixing tapes silently \
              detaches gradients"
             op a.id))
    args;
  let n = { tp; id = Vec.length tp.nodes; value; grad = None; pull } in
  Vec.push tp.nodes n;
  Vec.push tp.ir
    {
      Ir.op;
      args = Array.map (fun a -> a.id) args;
      shape = { Ir.batch = value.Tensor.batch; width = value.Tensor.width };
      context = context_label ();
      meta;
    };
  Vec.push tp.pay payload;
  n

let const tp t = node ~op:"const" ~args:[||] tp t None
let param tp t = node ~op:"param" ~args:[||] tp t None
let owner n = n.tp

let backward out =
  let tp = owner out in
  if tp.swept then
    invalid_arg
      "Ad.backward: tape already swept — tapes are single-use (one \
       forward/backward pair per tape); build a fresh tape for the next pass";
  tp.swept <- true;
  let sweep () =
    (* Seed with ones: differentiates the sum of the output's entries.
       An active NaN-gradient fault poisons the seed instead, so the NaN
       flows through the whole tape exactly like a real numeric blow-up
       and downstream guards see a fully contaminated gradient. *)
    Tensor.fill (grad_tensor out) (if Fault_plan.on_backward () then Float.nan else 1.0);
    for i = Vec.length tp.nodes - 1 downto 0 do
      let n = Vec.get tp.nodes i in
      match n.pull, n.grad with
      | Some pull, Some _ -> pull ()
      | Some _, None | None, _ -> ()
    done
  in
  if !Obs.on then begin
    Metrics.observe "ad.tape_nodes" (float_of_int (Vec.length tp.nodes));
    Trace.with_span ~cat:"ad"
      ~attrs:[ ("nodes", string_of_int (Vec.length tp.nodes)) ]
      "ad.backward" sweep
  end
  else sweep ()

let add a b =
  let tp = owner a in
  let out = node ~op:"add" ~args:[| a; b |] tp (Tensor.add a.value b.value) None in
  out.pull <-
    Some
      (fun () ->
        let g = grad_tensor out in
        Tensor.add_inplace (grad_tensor a) g;
        Tensor.add_inplace (grad_tensor b) g);
  out

let sub a b =
  let tp = owner a in
  let out = node ~op:"sub" ~args:[| a; b |] tp (Tensor.sub a.value b.value) None in
  out.pull <-
    Some
      (fun () ->
        let g = grad_tensor out in
        Tensor.add_inplace (grad_tensor a) g;
        Tensor.axpy (-1.0) g (grad_tensor b));
  out

let mul a b =
  let tp = owner a in
  let out = node ~op:"mul" ~args:[| a; b |] tp (Tensor.mul a.value b.value) None in
  out.pull <-
    Some
      (fun () ->
        let g = grad_tensor out in
        Tensor.add_inplace (grad_tensor a) (Tensor.mul g b.value);
        Tensor.add_inplace (grad_tensor b) (Tensor.mul g a.value));
  out

let neg a =
  let tp = owner a in
  let out = node ~op:"neg" ~args:[| a |] tp (Tensor.neg a.value) None in
  out.pull <- Some (fun () -> Tensor.axpy (-1.0) (grad_tensor out) (grad_tensor a));
  out

let scale k a =
  let tp = owner a in
  let out =
    node ~op:"scale" ~meta:(Ir.M_scalar k) ~args:[| a |] tp (Tensor.scale k a.value) None
  in
  out.pull <- Some (fun () -> Tensor.axpy k (grad_tensor out) (grad_tensor a));
  out

let add_scalar k a =
  let tp = owner a in
  let out =
    node ~op:"add_scalar" ~meta:(Ir.M_scalar k) ~args:[| a |] tp
      (Tensor.add_scalar k a.value) None
  in
  out.pull <- Some (fun () -> Tensor.add_inplace (grad_tensor a) (grad_tensor out));
  out

let one_minus a = add_scalar 1.0 (neg a)

let log_floor = 1e-12

let log_safe a =
  let tp = owner a in
  let out =
    node ~op:"log_safe" ~args:[| a |] tp
      (Tensor.map (fun x -> Stdlib.log (Float.max x log_floor)) a.value)
      None
  in
  out.pull <-
    Some
      (fun () ->
        let g = grad_tensor out in
        let inv = Tensor.map (fun x -> 1.0 /. Float.max x log_floor) a.value in
        Tensor.add_inplace (grad_tensor a) (Tensor.mul g inv));
  out

let relu a =
  let tp = owner a in
  let out = node ~op:"relu" ~args:[| a |] tp (Tensor.relu a.value) None in
  out.pull <-
    Some
      (fun () ->
        let g = grad_tensor out in
        let mask = Tensor.map (fun x -> if x > 0.0 then 1.0 else 0.0) a.value in
        Tensor.add_inplace (grad_tensor a) (Tensor.mul g mask));
  out

let gather_meta idx =
  let count = Array.length idx in
  let index_min = Array.fold_left min max_int idx in
  let index_max = Array.fold_left max min_int idx in
  Ir.M_gather { count; index_min = (if count = 0 then 0 else index_min);
                index_max = (if count = 0 then -1 else index_max) }

let gather a idx =
  let tp = owner a in
  let out =
    node ~op:"gather" ~meta:(gather_meta idx) ~payload:(P_indices idx) ~args:[| a |] tp
      (Segments.gather a.value idx) None
  in
  out.pull <- Some (fun () -> Segments.scatter_add ~into:(grad_tensor a) idx (grad_tensor out));
  out

let segments_meta (seg : Segments.t) =
  let empty = Array.fold_left (fun n l -> if l = 0 then n + 1 else n) 0 seg.Segments.lens in
  let max_len = Array.fold_left max 0 seg.Segments.lens in
  Ir.M_segments
    {
      seg_count = Array.length seg.Segments.lens;
      seg_width = seg.Segments.width;
      empty_segments = empty;
      max_len;
    }

let segment_softmax a seg =
  let tp = owner a in
  let y = Segments.softmax a.value seg in
  let out = node ~op:"segment_softmax" ~meta:(segments_meta seg) ~payload:(P_segments seg) ~args:[| a |] tp y None in
  out.pull <-
    Some
      (fun () ->
        (* dθ_i = y_i (g_i - Σ_{j in seg} g_j y_j) *)
        let g = grad_tensor out in
        let gy = Tensor.mul g y in
        let seg_dot = Segments.sum gy seg in
        let owner_of = Segments.seg_of_index seg in
        let spread = Segments.gather seg_dot owner_of in
        let corr = Tensor.mul y (Tensor.sub g spread) in
        Tensor.add_inplace (grad_tensor a) corr);
  out

let segment_sum a seg =
  let tp = owner a in
  let out =
    node ~op:"segment_sum" ~meta:(segments_meta seg) ~payload:(P_segments seg) ~args:[| a |] tp
      (Segments.sum a.value seg) None
  in
  out.pull <-
    Some
      (fun () ->
        let owner_of = Segments.seg_of_index seg in
        let spread = Segments.gather (grad_tensor out) owner_of in
        Tensor.add_inplace (grad_tensor a) spread);
  out

let segment_prod a seg =
  let tp = owner a in
  let out =
    node ~op:"segment_prod" ~meta:(segments_meta seg) ~payload:(P_segments seg) ~args:[| a |] tp
      (Segments.prod a.value seg) None
  in
  out.pull <-
    Some
      (fun () ->
        let others = Segments.prod_grad_scratch a.value seg in
        let owner_of = Segments.seg_of_index seg in
        let spread = Segments.gather (grad_tensor out) owner_of in
        Tensor.add_inplace (grad_tensor a) (Tensor.mul spread others));
  out

let segment_max a seg =
  let tp = owner a in
  let y, argmax = Segments.max a.value seg in
  let out = node ~op:"segment_max" ~meta:(segments_meta seg) ~payload:(P_segments seg) ~args:[| a |] tp y None in
  out.pull <-
    Some
      (fun () ->
        let g = grad_tensor out in
        let ga = grad_tensor a in
        let gd = Tensor.unsafe_data g and gad = Tensor.unsafe_data ga in
        Array.iteri
          (fun flat src_pos -> if src_pos >= 0 then gad.(src_pos) <- gad.(src_pos) +. gd.(flat))
          argmax);
  out

let override_columns a pins =
  let tp = owner a in
  let y = Tensor.copy a.value in
  List.iter
    (fun (col, c) ->
      for b = 0 to y.Tensor.batch - 1 do
        Tensor.set y b col c
      done)
    pins;
  let out =
    node ~op:"override_columns" ~meta:(Ir.M_columns (Array.of_list pins)) ~args:[| a |]
      tp y None
  in
  out.pull <-
    Some
      (fun () ->
        let g = Tensor.copy (grad_tensor out) in
        List.iter
          (fun (col, _) ->
            for b = 0 to g.Tensor.batch - 1 do
              Tensor.set g b col 0.0
            done)
          pins;
        Tensor.add_inplace (grad_tensor a) g);
  out

let mean_rows a =
  let tp = owner a in
  let out = node ~op:"mean_rows" ~args:[| a |] tp (Tensor.mean_rows a.value) None in
  out.pull <-
    Some
      (fun () ->
        let g = grad_tensor out in
        let ga = grad_tensor a in
        let inv = 1.0 /. float_of_int (max 1 a.value.Tensor.batch) in
        let gd = Tensor.unsafe_data g and gad = Tensor.unsafe_data ga in
        let w = a.value.Tensor.width in
        for b = 0 to a.value.Tensor.batch - 1 do
          for i = 0 to w - 1 do
            gad.((b * w) + i) <- gad.((b * w) + i) +. (gd.(i) *. inv)
          done
        done);
  out

let slice_row a b =
  let tp = owner a in
  let y = Tensor.of_row (Tensor.row a.value b) in
  let out = node ~op:"slice_row" ~meta:(Ir.M_row b) ~args:[| a |] tp y None in
  out.pull <-
    Some
      (fun () ->
        let g = grad_tensor out in
        let ga = grad_tensor a in
        let w = a.value.Tensor.width in
        let gd = Tensor.unsafe_data g and gad = Tensor.unsafe_data ga in
        for i = 0 to w - 1 do
          gad.((b * w) + i) <- gad.((b * w) + i) +. gd.(i)
        done);
  out

let sum_width a =
  let tp = owner a in
  let sums = Tensor.sum_rows a.value in
  let y = Tensor.of_array ~batch:a.value.Tensor.batch ~width:1 sums in
  let out = node ~op:"sum_width" ~args:[| a |] tp y None in
  out.pull <-
    Some
      (fun () ->
        let g = grad_tensor out in
        let ga = grad_tensor a in
        let w = a.value.Tensor.width in
        let gd = Tensor.unsafe_data g and gad = Tensor.unsafe_data ga in
        for b = 0 to a.value.Tensor.batch - 1 do
          let gb = gd.(b) in
          for i = 0 to w - 1 do
            gad.((b * w) + i) <- gad.((b * w) + i) +. gb
          done
        done);
  out

let sum_all a =
  let tp = owner a in
  let y = Tensor.of_array ~batch:1 ~width:1 [| Tensor.sum a.value |] in
  let out = node ~op:"sum_all" ~args:[| a |] tp y None in
  out.pull <-
    Some
      (fun () ->
        let g = Tensor.get (grad_tensor out) 0 0 in
        let ga = grad_tensor a in
        let gad = Tensor.unsafe_data ga in
        for i = 0 to Tensor.numel a.value - 1 do
          gad.(i) <- gad.(i) +. g
        done);
  out

let mean_all a =
  let n = float_of_int (Tensor.numel a.value) in
  scale (1.0 /. n) (sum_all a)

let dot_const a u =
  if Array.length u <> a.value.Tensor.width then invalid_arg "Ad.dot_const: width mismatch";
  let tp = owner a in
  let batch = a.value.Tensor.batch and w = a.value.Tensor.width in
  let y = Tensor.create ~batch ~width:1 in
  let ad = Tensor.unsafe_data a.value and yd = Tensor.unsafe_data y in
  for b = 0 to batch - 1 do
    let acc = ref 0.0 in
    let base = b * w in
    for i = 0 to w - 1 do
      acc := !acc +. (ad.(base + i) *. u.(i))
    done;
    yd.(b) <- !acc
  done;
  let out =
    node ~op:"dot_const" ~meta:(Ir.M_width (Array.length u)) ~payload:(P_coeffs u) ~args:[| a |] tp y None
  in
  out.pull <-
    Some
      (fun () ->
        let g = grad_tensor out in
        let ga = grad_tensor a in
        let gd = Tensor.unsafe_data g and gad = Tensor.unsafe_data ga in
        for b = 0 to batch - 1 do
          let gb = gd.(b) in
          let base = b * w in
          for i = 0 to w - 1 do
            gad.(base + i) <- gad.(base + i) +. (gb *. u.(i))
          done
        done);
  out

let linear ~input ~weight ~bias =
  let tp = owner input in
  let x = input.value and w = weight.value and b = bias.value in
  if w.Tensor.width <> x.Tensor.width then invalid_arg "Ad.linear: in_features mismatch";
  if b.Tensor.width <> w.Tensor.batch then invalid_arg "Ad.linear: bias width mismatch";
  let y = Tensor.matmul_nt x w in
  let yd = Tensor.unsafe_data y and bd = Tensor.unsafe_data b in
  let h = w.Tensor.batch in
  for row = 0 to y.Tensor.batch - 1 do
    for j = 0 to h - 1 do
      yd.((row * h) + j) <- yd.((row * h) + j) +. bd.(j)
    done
  done;
  let out = node ~op:"linear" ~args:[| input; weight; bias |] tp y None in
  out.pull <-
    Some
      (fun () ->
        let g = grad_tensor out in
        (* dX = G · W        : (B,H)x(H,N) -> (B,N) *)
        Tensor.add_inplace (grad_tensor input) (Tensor.matmul g w);
        (* dW = Gᵀ · X       : (H,B)x(B,N) -> (H,N) *)
        Tensor.add_inplace (grad_tensor weight) (Tensor.matmul (Tensor.transpose g) x);
        (* db = column sums of G *)
        let gb = grad_tensor bias in
        let gbd = Tensor.unsafe_data gb and gd = Tensor.unsafe_data g in
        for row = 0 to g.Tensor.batch - 1 do
          for j = 0 to h - 1 do
            gbd.(j) <- gbd.(j) +. gd.((row * h) + j)
          done
        done);
  out

let mse ~pred ~target =
  let diff = sub pred target in
  mean_all (mul diff diff)

let matrix_of_entries cp ~dim entries =
  let tp = owner cp in
  if cp.value.Tensor.batch <> 1 then invalid_arg "Ad.matrix_of_entries: expected a (1,N) input";
  let a = Tensor.create ~batch:dim ~width:dim in
  let src = Tensor.unsafe_data cp.value and dst = Tensor.unsafe_data a in
  Array.iter (fun (col, i, j) -> dst.((i * dim) + j) <- dst.((i * dim) + j) +. src.(col)) entries;
  let class_min =
    Array.fold_left (fun m (_, i, j) -> min m (min i j)) (if Array.length entries = 0 then 0 else max_int) entries
  in
  let class_max = Array.fold_left (fun m (_, i, j) -> max m (max i j)) (-1) entries in
  let col_max = Array.fold_left (fun m (c, _, _) -> max m c) (-1) entries in
  let out =
    node ~op:"matrix_of_entries"
      ~meta:(Ir.M_matrix { dim; class_min; class_max; col_max })
      ~payload:(P_entries { dim; entries })
      ~args:[| cp |] tp a None
  in
  out.pull <-
    Some
      (fun () ->
        let g = grad_tensor out in
        let gcp = grad_tensor cp in
        let gd = Tensor.unsafe_data g and gcpd = Tensor.unsafe_data gcp in
        Array.iter (fun (col, i, j) -> gcpd.(col) <- gcpd.(col) +. gd.((i * dim) + j)) entries);
  out

let expm_trace a =
  let tp = owner a in
  let e = Tensor.Matfun.expm a.value in
  let y = Tensor.of_array ~batch:1 ~width:1 [| Tensor.Matfun.trace e |] in
  let out = node ~op:"expm_trace" ~args:[| a |] tp y None in
  out.pull <-
    Some
      (fun () ->
        let g = Tensor.get (grad_tensor out) 0 0 in
        Tensor.axpy g (Tensor.transpose e) (grad_tensor a));
  out

let finite_difference ~f ~x ~eps =
  let g = Tensor.create ~batch:x.Tensor.batch ~width:x.Tensor.width in
  let xd = Tensor.unsafe_data x and gd = Tensor.unsafe_data g in
  for i = 0 to Tensor.numel x - 1 do
    let saved = xd.(i) in
    xd.(i) <- saved +. eps;
    let up = f x in
    xd.(i) <- saved -. eps;
    let down = f x in
    xd.(i) <- saved;
    gd.(i) <- (up -. down) /. (2.0 *. eps)
  done;
  g
