(** Static replay plans for captured tapes — the reproduction's stand-in
    for CUDA-graph capture over the SmoothE iteration.

    The interpreter ({!Ad}) rebuilds its tape and allocates every
    intermediate tensor on each optimisation iteration. When two
    consecutive iterations record the *same* IR (checked by {!stable}),
    the graph is static and {!compile} turns it into a fixed schedule of
    kernel closures over preallocated buffers: {!run_forward} /
    {!run_backward} then replay iterations with zero tape construction
    and zero tensor allocation, bit-identical to the interpreter.

    Buffer placement is supplied from outside as an {!arena_spec}
    (computed — and independently verified — by the plan-level dataflow
    analysis in [lib/analysis/plan_check]); without one, every buffer is
    dedicated, which is always safe. Fusion [chains] of elementwise ops
    likewise come from the analysis; the compiled jam reproduces the
    interpreter's per-stage rounding (including its literal [+. 0.0]
    zero-initialised accumulations) so fused runs stay bit-identical.

    Replay requires the [Vectorized] backend: the [Scalar] execution
    model deliberately routes every element access through an
    interpreter-style indirect call, and a compiled plan would not model
    that baseline honestly. {!compile} returns [Error] under [Scalar]. *)

(** {1 Capture} *)

type capture = {
  ir : Ad.Ir.t;
  pay : Ad.payload array;  (** per-node runtime payloads *)
  vals : Tensor.t array;  (** per-node forward values (leaves are aliased) *)
  root : int;  (** node the backward sweep seeds *)
}

val capture : Ad.tape -> root:Ad.v -> capture
(** Snapshot a finished forward pass. Leaf tensors are captured by
    reference: a [param] updated in place by an optimiser is seen by
    subsequent replays, exactly as the interpreter would. *)

val stable : capture -> capture -> (unit, string) result
(** Structural equality of two captures: same ops, arguments, shapes,
    contexts and metadata node by node; payloads equal (segmentations by
    structure, coefficients bitwise); [param] leaves physically the same
    tensor; [const] leaves bitwise-equal ({!Tensor.bits_equal}). [Error]
    carries the first divergence, for PL006/PL007 diagnostics. *)

(** {1 Op facts}

    The single source of truth about op behaviour that both this module
    and the [plan_check] analysis consume — which ops a plan can replay,
    which operand {e values} a backward pull re-reads (so liveness must
    extend them across the sweep), and which unary ops fuse. *)

val op_supported : string -> bool
val is_leaf : string -> bool

val backward_reads_arg : string -> int -> bool
(** [backward_reads_arg op k]: does [op]'s pull read the forward value
    of operand [k]? ([mul] both, [log_safe]/[relu]/[segment_prod] their
    input, [linear] its input and weight.) *)

val backward_reads_self : string -> bool
(** Does the pull read the op's {e own} forward output?
    ([segment_softmax].) *)

val fusable_elementwise : string -> bool
(** Unary elementwise ops a chain jam may fuse: [neg], [scale],
    [add_scalar]. *)

(** {1 Compilation} *)

type arena_spec = {
  slot_sizes : int array;  (** element count of each shared buffer *)
  assign : int array;
      (** length [2n]: buffer [i < n] is node [i]'s value, buffer
          [n + i] its gradient; entry = slot index or [-1] for a
          dedicated buffer. Assigned buffers must match their slot's
          size exactly; leaves, outputs, the root gradient and
          requested gradients must be [-1]. *)
}

type stats = {
  nodes : int;
  steps_forward : int;
  steps_backward : int;
  arena_bytes : int;  (** bytes of shared arena storage *)
  dedicated_bytes : int;  (** bytes of per-buffer dedicated storage *)
  scratch_bytes : int;  (** per-op workspace (incl. expm workspace) *)
  chains : int;  (** fused elementwise chains *)
  fused_nodes : int;  (** nodes covered by those chains *)
}

type t

val compile :
  ?arena:arena_spec ->
  ?chains:int array array ->
  outputs:int array ->
  grads:int array ->
  capture ->
  (t, string) result
(** Compile a capture into a static schedule. [outputs] are node ids
    whose values the caller reads after {!run_forward} (the capture
    root is implicitly one); [grads] are node ids whose gradients the
    caller reads after {!run_backward} — all are pinned out of the
    arena. [chains] lists fusion runs [c1; ...; ck] (each node consumed
    only by the next, all {!fusable_elementwise}); invalid chains,
    unsupported ops, arena shape violations and the [Scalar] backend
    all yield [Error]. *)

val stats : t -> stats

(** {1 Replay} *)

val run_forward : t -> unit
(** Execute the forward schedule. Allocates nothing. *)

val run_backward : t -> unit
(** Seed the root gradient and execute the backward schedule (gradient
    buffers are re-zeroed exactly where the interpreter's lazy zero
    materialisation would). Must follow {!run_forward}. Allocates
    nothing. *)

val value : t -> int -> Tensor.t
(** Buffer holding node [i]'s value after {!run_forward}.
    @raise Invalid_argument for chain-interior nodes (fused away). *)

val grad_of : t -> int -> Tensor.t
(** Buffer holding node [i]'s gradient after {!run_backward}.
    @raise Invalid_argument if the plan materialises no gradient for
    [i] — pass it in [grads] at compile time to pin one. *)
