(** First-order optimisers over tensor parameters.

    The paper optimises the relaxed objective with gradient descent
    (§3.5); in the released implementation this is Adam, which we
    reproduce, plus plain SGD for tests and the MLP trainer. Parameters
    are persistent tensors mutated in place between tape iterations. *)

type adam

val adam :
  ?beta1:float -> ?beta2:float -> ?eps:float -> lr:float -> Tensor.t list -> adam
(** Standard Adam (Kingma & Ba) with bias correction; defaults
    beta1 = 0.9, beta2 = 0.999, eps = 1e-8. *)

val adam_step : adam -> Tensor.t list -> unit
(** [adam_step opt grads] applies one update. [grads] aligns one-to-one
    with the parameter list given at construction. *)

val set_lr : adam -> float -> unit

val lr : adam -> float

val reset : adam -> unit
(** Zero the first/second-moment estimates and the step counter,
    keeping the parameters themselves. Numeric recovery uses this to
    discard moment state contaminated by a non-finite gradient. *)

val step : adam -> int
(** Update count (the [t] of the bias correction). *)

val state : adam -> Tensor.t array * Tensor.t array * int
(** [(m, v, step)] as fresh copies — everything beyond the parameters
    and learning rate needed to checkpoint the optimiser mid-run. *)

val restore : adam -> m:Tensor.t array -> v:Tensor.t array -> step:int -> unit
(** Blit saved moments back in place and set the step counter, so a
    resumed run's next {!adam_step} is bit-identical to the one the
    original run would have taken. @raise Invalid_argument on a
    count/shape mismatch or a negative step. *)

val sgd_step : lr:float -> params:Tensor.t list -> grads:Tensor.t list -> unit

val clip_grad_norm : max_norm:float -> Tensor.t list -> float
(** Global-norm gradient clipping; returns the pre-clip norm. *)
