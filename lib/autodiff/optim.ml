type adam = {
  params : Tensor.t array;
  m : Tensor.t array;
  v : Tensor.t array;
  beta1 : float;
  beta2 : float;
  eps : float;
  mutable lr : float;
  mutable step : int;
}

let like t = Tensor.create ~batch:t.Tensor.batch ~width:t.Tensor.width

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr params =
  let params = Array.of_list params in
  {
    params;
    m = Array.map like params;
    v = Array.map like params;
    beta1;
    beta2;
    eps;
    lr;
    step = 0;
  }

let set_lr opt lr = opt.lr <- lr
let lr opt = opt.lr

let reset opt =
  opt.step <- 0;
  Array.iter (fun t -> Tensor.fill t 0.0) opt.m;
  Array.iter (fun t -> Tensor.fill t 0.0) opt.v

let step opt = opt.step

let state opt = (Array.map Tensor.copy opt.m, Array.map Tensor.copy opt.v, opt.step)

let restore opt ~m ~v ~step =
  if Array.length m <> Array.length opt.m || Array.length v <> Array.length opt.v then
    invalid_arg "Optim.restore: moment count mismatch";
  if step < 0 then invalid_arg "Optim.restore: negative step";
  let blit src dst =
    if Tensor.numel src <> Tensor.numel dst then
      invalid_arg "Optim.restore: moment shape mismatch";
    Array.blit (Tensor.unsafe_data src) 0 (Tensor.unsafe_data dst) 0 (Tensor.numel dst)
  in
  Array.iter2 blit m opt.m;
  Array.iter2 blit v opt.v;
  opt.step <- step

let adam_step opt grads =
  let grads = Array.of_list grads in
  if Array.length grads <> Array.length opt.params then
    invalid_arg "Optim.adam_step: gradient count mismatch";
  opt.step <- opt.step + 1;
  let t = float_of_int opt.step in
  let bc1 = 1.0 -. (opt.beta1 ** t) in
  let bc2 = 1.0 -. (opt.beta2 ** t) in
  Array.iteri
    (fun k g ->
      let p = opt.params.(k) and m = opt.m.(k) and v = opt.v.(k) in
      let pd = Tensor.unsafe_data p
      and md = Tensor.unsafe_data m
      and vd = Tensor.unsafe_data v
      and gd = Tensor.unsafe_data g in
      for i = 0 to Tensor.numel p - 1 do
        let gi = gd.(i) in
        md.(i) <- (opt.beta1 *. md.(i)) +. ((1.0 -. opt.beta1) *. gi);
        vd.(i) <- (opt.beta2 *. vd.(i)) +. ((1.0 -. opt.beta2) *. gi *. gi);
        let mhat = md.(i) /. bc1 and vhat = vd.(i) /. bc2 in
        pd.(i) <- pd.(i) -. (opt.lr *. mhat /. (sqrt vhat +. opt.eps))
      done)
    grads

let sgd_step ~lr ~params ~grads =
  List.iter2 (fun p g -> Tensor.axpy (-.lr) g p) params grads

let clip_grad_norm ~max_norm grads =
  let sq = List.fold_left (fun acc g -> acc +. Tensor.dot g g) 0.0 grads in
  let norm = sqrt sq in
  if norm > max_norm && norm > 0.0 then begin
    let k = max_norm /. norm in
    List.iter (Tensor.scale_inplace k) grads
  end;
  norm
