(* Compiles a captured tape into a static replay schedule: one closure
   per forward op and per backward pull, over buffers allocated once at
   compile time. Every closure mirrors the corresponding interpreter
   kernel expression-for-expression — same rounding steps, same
   accumulation order — so a replayed iteration is bit-identical to an
   interpreted one. The interpreter's lazily-zeroed gradient buffers
   become explicit [fill 0.0] steps scheduled immediately before each
   buffer's first writer; its fresh per-op outputs become arena slots
   (placement supplied by the caller, verified independently by
   lib/analysis/plan_check) or dedicated buffers. *)

type capture = {
  ir : Ad.Ir.t;
  pay : Ad.payload array;
  vals : Tensor.t array;
  root : int;
}

let capture tp ~root =
  { ir = Ad.ir tp; pay = Ad.payloads tp; vals = Ad.values tp; root = Ad.node_id root }

(* ---- Op facts ----------------------------------------------------- *)

let op_supported = function
  | "const" | "param" | "add" | "sub" | "mul" | "neg" | "scale" | "add_scalar"
  | "log_safe" | "relu" | "gather" | "segment_softmax" | "segment_sum" | "segment_prod"
  | "segment_max" | "override_columns" | "mean_rows" | "slice_row" | "sum_width"
  | "sum_all" | "dot_const" | "linear" | "matrix_of_entries" | "expm_trace" ->
      true
  | _ -> false

let is_leaf = function "const" | "param" -> true | _ -> false

let backward_reads_arg op k =
  match op, k with
  | "mul", _ -> true
  | ("log_safe" | "relu" | "segment_prod"), 0 -> true
  | "linear", (0 | 1) -> true
  | _ -> false

let backward_reads_self op = String.equal op "segment_softmax"
let fusable_elementwise = function "neg" | "scale" | "add_scalar" -> true | _ -> false

(* Ad.log_safe clamps at 1e-12 (Tensor.log_safe uses a different floor;
   the tape op is the one a plan replays). *)
let log_floor = 1e-12

(* ---- Stability ---------------------------------------------------- *)

exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

let float_bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let meta_equal i (m1 : Ad.Ir.meta) (m2 : Ad.Ir.meta) =
  let ok =
    match m1, m2 with
    | Ad.Ir.M_none, Ad.Ir.M_none -> true
    | M_scalar a, M_scalar b -> float_bits_equal a b
    | ( M_gather { count = c1; index_min = lo1; index_max = hi1 },
        M_gather { count = c2; index_min = lo2; index_max = hi2 } ) ->
        c1 = c2 && lo1 = lo2 && hi1 = hi2
    | ( M_segments { seg_count = s1; seg_width = w1; empty_segments = e1; max_len = m1 },
        M_segments { seg_count = s2; seg_width = w2; empty_segments = e2; max_len = m2 } ) ->
        s1 = s2 && w1 = w2 && e1 = e2 && m1 = m2
    | M_columns a, M_columns b ->
        Array.length a = Array.length b
        && Array.for_all2 (fun (c1, x1) (c2, x2) -> c1 = c2 && float_bits_equal x1 x2) a b
    | M_row a, M_row b -> a = b
    | M_width a, M_width b -> a = b
    | ( M_matrix { dim = d1; class_min = cl1; class_max = ch1; col_max = cm1 },
        M_matrix { dim = d2; class_min = cl2; class_max = ch2; col_max = cm2 } ) ->
        d1 = d2 && cl1 = cl2 && ch1 = ch2 && cm1 = cm2
    | _ -> false
  in
  if not ok then failf "node %d: metadata changed between captures" i

let payload_equal i (p1 : Ad.payload) (p2 : Ad.payload) =
  let ok =
    match p1, p2 with
    | Ad.P_none, Ad.P_none -> true
    | P_indices a, P_indices b -> a == b || a = b
    | P_segments a, P_segments b ->
        a == b
        || (a.Segments.starts = b.Segments.starts && a.Segments.lens = b.Segments.lens)
    | P_coeffs a, P_coeffs b ->
        a == b || (Array.length a = Array.length b && Array.for_all2 float_bits_equal a b)
    | P_entries { dim = d1; entries = e1 }, P_entries { dim = d2; entries = e2 } ->
        d1 = d2 && (e1 == e2 || e1 = e2)
    | _ -> false
  in
  if not ok then failf "node %d: runtime payload changed between captures" i

let stable c1 c2 =
  try
    let n1 = Array.length c1.ir and n2 = Array.length c2.ir in
    if n1 <> n2 then failf "tape length changed: %d nodes, then %d" n1 n2;
    if c1.root <> c2.root then failf "root moved: node %d, then node %d" c1.root c2.root;
    for i = 0 to n1 - 1 do
      let a = c1.ir.(i) and b = c2.ir.(i) in
      if not (String.equal a.Ad.Ir.op b.Ad.Ir.op) then
        failf "node %d: op %s became %s" i a.Ad.Ir.op b.Ad.Ir.op;
      if a.args <> b.args then failf "node %d (%s): operands changed" i a.op;
      if a.shape <> b.shape then
        failf "node %d (%s): shape %s became %s" i a.op
          (Ad.Ir.shape_to_string a.shape)
          (Ad.Ir.shape_to_string b.shape);
      if not (String.equal a.context b.context) then
        failf "node %d (%s): context %s became %s" i a.op a.context b.context;
      meta_equal i a.meta b.meta;
      payload_equal i c1.pay.(i) c2.pay.(i);
      match a.op with
      | "param" ->
          if c1.vals.(i) != c2.vals.(i) then
            failf "node %d: param rebound to a different tensor" i
      | "const" ->
          if not (Tensor.bits_equal c1.vals.(i) c2.vals.(i)) then
            failf "node %d: const leaf value changed between captures" i
      | _ -> ()
    done;
    Ok ()
  with Fail msg -> Error msg

(* ---- Compilation -------------------------------------------------- *)

type arena_spec = { slot_sizes : int array; assign : int array }

type stats = {
  nodes : int;
  steps_forward : int;
  steps_backward : int;
  arena_bytes : int;
  dedicated_bytes : int;
  scratch_bytes : int;
  chains : int;
  fused_nodes : int;
}

type t = {
  n : int;
  fwd_steps : (unit -> unit) option array;
  bwd_cores : (unit -> unit) option array;
  bwd_fills : Tensor.t list array;
  seed : unit -> unit;
  node_vals : Tensor.t option array;
  node_grads : Tensor.t option array;
  plan_stats : stats;
}

let row_grain width = Stdlib.max 1 (Parallel.default_grain / Stdlib.max 1 width)

let compile ?arena ?(chains = [||]) ~outputs ~grads cap =
  try
    if Tensor.Backend.current () <> Tensor.Backend.Vectorized then
      failf "replay requires the Vectorized backend (Scalar models an interpreter)";
    let ir = cap.ir in
    let n = Array.length ir in
    if n = 0 then failf "empty capture";
    if cap.root < 0 || cap.root >= n then failf "root node %d out of range" cap.root;
    let check_id what i =
      if i < 0 || i >= n then failf "%s node %d out of range (tape has %d nodes)" what i n
    in
    Array.iter (check_id "output") outputs;
    Array.iter (check_id "gradient-request") grads;
    Array.iteri
      (fun i nd ->
        if not (op_supported nd.Ad.Ir.op) then
          failf "node %d: op %s has no replay kernel" i nd.Ad.Ir.op)
      ir;
    let shape_of i = ir.(i).Ad.Ir.shape in
    let numel_of i =
      let s = shape_of i in
      s.Ad.Ir.batch * s.Ad.Ir.width
    in
    let is_output = Array.make n false in
    Array.iter (fun i -> is_output.(i) <- true) outputs;
    is_output.(cap.root) <- true;
    let requested = Array.make n false in
    Array.iter (fun i -> requested.(i) <- true) grads;
    (* consumers, descending by construction (later nodes pushed last) *)
    let cons = Array.make n [] in
    Array.iteri (fun i nd -> Array.iter (fun a -> cons.(a) <- i :: cons.(a)) nd.Ad.Ir.args) ir;
    (* feeds_root: the backward sweep reaches this node's adjoint *)
    let feeds_root = Array.make n false in
    feeds_root.(cap.root) <- true;
    for i = n - 1 downto 0 do
      if feeds_root.(i) && not (is_leaf ir.(i).op) then
        Array.iter (fun a -> feeds_root.(a) <- true) ir.(i).args
    done;
    (* carries: the subtree holds a param or an explicitly requested
       gradient, so skipping this adjoint could change what a caller
       reads. Gradients that feed only const subtrees are provably
       unread and never materialised. *)
    let carries = Array.make n false in
    for i = 0 to n - 1 do
      carries.(i) <-
        String.equal ir.(i).op "param"
        || requested.(i)
        || Array.exists (fun a -> carries.(a)) ir.(i).args
    done;
    (* chain validation and marks *)
    let member = Array.make n false in
    let interior = Array.make n false in
    let chain_at = Array.make n (-1) in
    Array.iteri
      (fun ci cs ->
        let k = Array.length cs in
        if k < 2 then failf "chain %d has %d nodes; fusion needs at least 2" ci k;
        Array.iteri
          (fun m c ->
            check_id "chain" c;
            if member.(c) then failf "node %d appears in two chains" c;
            member.(c) <- true;
            let nd = ir.(c) in
            if not (fusable_elementwise nd.op) then
              failf "chain %d: node %d (%s) is not a fusable elementwise op" ci c nd.op;
            if Array.length nd.args <> 1 then
              failf "chain %d: node %d (%s) is not unary" ci c nd.op;
            if m > 0 && nd.args.(0) <> cs.(m - 1) then
              failf "chain %d: node %d does not consume its predecessor %d" ci c cs.(m - 1);
            if nd.shape <> ir.(cs.(0)).shape then
              failf "chain %d: shape changes at node %d" ci c;
            if m < k - 1 then begin
              (match cons.(c) with
              | [ j ] when j = cs.(m + 1) -> ()
              | _ -> failf "chain %d: interior node %d has consumers outside the chain" ci c);
              if c = cap.root then failf "chain %d: root cannot be a chain interior" ci;
              if is_output.(c) then failf "chain %d: output node %d is a chain interior" ci c;
              if requested.(c) then
                failf "chain %d: node %d's gradient is requested but would be fused away" ci c;
              interior.(c) <- true
            end)
          cs;
        chain_at.(cs.(0)) <- ci)
      chains;
    (* gradient materialisation: exactly where the interpreter's sweep
       would write values some reader can observe *)
    let grad_mat =
      Array.init n (fun i ->
          (i = cap.root || (feeds_root.(i) && carries.(i))) && not interior.(i))
    in
    let has_gbuf = Array.init n (fun i -> grad_mat.(i) || (requested.(i) && not interior.(i))) in
    (* buffers *)
    let slot_sizes, assign =
      match arena with
      | None -> ([||], Array.make (2 * n) (-1))
      | Some a ->
          if Array.length a.assign <> 2 * n then
            failf "arena assign has %d entries, expected %d" (Array.length a.assign) (2 * n);
          Array.iter (fun sz -> if sz <= 0 then failf "arena slot size %d" sz) a.slot_sizes;
          Array.iter
            (fun s ->
              if s < -1 || s >= Array.length a.slot_sizes then failf "arena slot id %d out of range" s)
            a.assign;
          (a.slot_sizes, a.assign)
    in
    let slot_arrays = Array.map (fun sz -> Array.make sz 0.0) slot_sizes in
    let dedicated_floats = ref 0 in
    let dedicated i =
      let s = shape_of i in
      dedicated_floats := !dedicated_floats + (s.Ad.Ir.batch * s.Ad.Ir.width);
      Tensor.create ~batch:s.Ad.Ir.batch ~width:s.Ad.Ir.width
    in
    let view i slot =
      if numel_of i <> slot_sizes.(slot) then
        failf "node %d: %d elements do not fit arena slot %d (%d elements)" i (numel_of i)
          slot slot_sizes.(slot);
      let s = shape_of i in
      Tensor.of_array ~batch:s.Ad.Ir.batch ~width:s.Ad.Ir.width slot_arrays.(slot)
    in
    let node_vals = Array.make n None in
    for i = 0 to n - 1 do
      let slot = assign.(i) in
      if is_leaf ir.(i).op then begin
        if slot <> -1 then failf "leaf node %d must not live in the arena" i;
        node_vals.(i) <- Some cap.vals.(i)
      end
      else if interior.(i) then begin
        if slot <> -1 then failf "chain-interior node %d has no buffer to place in slot %d" i slot
      end
      else if is_output.(i) then begin
        if slot <> -1 then failf "output node %d must not live in the arena" i;
        node_vals.(i) <- Some (dedicated i)
      end
      else if slot >= 0 then node_vals.(i) <- Some (view i slot)
      else node_vals.(i) <- Some (dedicated i)
    done;
    let node_grads = Array.make n None in
    for i = 0 to n - 1 do
      let slot = assign.(n + i) in
      if has_gbuf.(i) then begin
        let pinned = i = cap.root || requested.(i) || is_leaf ir.(i).op in
        if pinned && slot <> -1 then
          failf "pinned gradient of node %d must not live in the arena" i;
        node_grads.(i) <- Some (if slot >= 0 then view i slot else dedicated i)
      end
      else if slot <> -1 then
        failf "node %d materialises no gradient yet the arena assigns it slot %d" i slot
    done;
    let v i =
      match node_vals.(i) with
      | Some t -> t
      | None -> failf "internal: node %d has no value buffer" i
    in
    let g i =
      match node_grads.(i) with
      | Some t -> t
      | None -> failf "internal: node %d has no gradient buffer" i
    in
    let data = Tensor.unsafe_data in
    let scratch_floats = ref 0 in
    let scratch ~batch ~width =
      scratch_floats := !scratch_floats + (batch * width);
      Tensor.create ~batch ~width
    in
    (* payload accessors *)
    let seg_of i =
      match cap.pay.(i) with
      | Ad.P_segments s -> s
      | _ -> failf "node %d (%s): segment payload missing" i ir.(i).op
    in
    let idx_of i =
      match cap.pay.(i) with
      | Ad.P_indices a -> a
      | _ -> failf "node %d (%s): index payload missing" i ir.(i).op
    in
    let coeffs_of i =
      match cap.pay.(i) with
      | Ad.P_coeffs u -> u
      | _ -> failf "node %d (%s): coefficient payload missing" i ir.(i).op
    in
    let entries_of i =
      match cap.pay.(i) with
      | Ad.P_entries { dim; entries } -> (dim, entries)
      | _ -> failf "node %d (%s): entries payload missing" i ir.(i).op
    in
    let scalar_of i =
      match ir.(i).meta with
      | Ad.Ir.M_scalar k -> k
      | _ -> failf "node %d (%s): scalar metadata missing" i ir.(i).op
    in
    (* per-node state shared between the forward and backward emitters *)
    let argmaxes = Array.make n None in
    let expm_es = Array.make n None in
    (* chain jam stages: tag 0 = neg, 1 = scale, 2 = add_scalar *)
    let stage_tag i =
      match ir.(i).op with
      | "neg" -> (0, 0.0)
      | "scale" -> (1, scalar_of i)
      | _ -> (2, scalar_of i)
    in
    (* ---- forward steps ---- *)
    let emit_forward i =
      let nd = ir.(i) in
      let a k = nd.Ad.Ir.args.(k) in
      match nd.op with
      | "const" | "param" -> None
      | "add" ->
          let o = v i and x = v (a 0) and y = v (a 1) in
          Some (fun () -> Tensor.add_into ~out:o x y)
      | "sub" ->
          let o = v i and x = v (a 0) and y = v (a 1) in
          Some (fun () -> Tensor.sub_into ~out:o x y)
      | "mul" ->
          let o = v i and x = v (a 0) and y = v (a 1) in
          Some (fun () -> Tensor.mul_into ~out:o x y)
      | "neg" ->
          let o = v i and x = v (a 0) in
          Some (fun () -> Tensor.neg_into ~out:o x)
      | "scale" ->
          let o = v i and x = v (a 0) and k = scalar_of i in
          Some (fun () -> Tensor.scale_into ~out:o k x)
      | "add_scalar" ->
          let o = v i and x = v (a 0) and k = scalar_of i in
          Some (fun () -> Tensor.add_scalar_into ~out:o k x)
      | "relu" ->
          let o = v i and x = v (a 0) in
          Some (fun () -> Tensor.relu_into ~out:o x)
      | "log_safe" ->
          let od = data (v i) and xd = data (v (a 0)) and nn = numel_of i in
          Some
            (fun () ->
              Parallel.chunks nn (fun lo hi ->
                  for p = lo to hi - 1 do
                    Array.unsafe_set od p
                      (Stdlib.log (Float.max (Array.unsafe_get xd p) log_floor))
                  done))
      | "gather" ->
          let o = v i and x = v (a 0) and idx = idx_of i in
          Some (fun () -> Segments.gather_into ~out:o x idx)
      | "segment_softmax" ->
          let o = v i and x = v (a 0) and seg = seg_of i in
          Some (fun () -> Segments.softmax_into ~out:o x seg)
      | "segment_sum" ->
          let o = v i and x = v (a 0) and seg = seg_of i in
          Some (fun () -> Segments.sum_into ~out:o x seg)
      | "segment_prod" ->
          let o = v i and x = v (a 0) and seg = seg_of i in
          Some (fun () -> Segments.prod_into ~out:o x seg)
      | "segment_max" ->
          let o = v i and x = v (a 0) and seg = seg_of i in
          let arg = Array.make (numel_of i) (-1) in
          argmaxes.(i) <- Some arg;
          Some (fun () -> Segments.max_into ~out:o ~arg x seg)
      | "override_columns" ->
          let o = v i and x = v (a 0) in
          let pins =
            match nd.meta with
            | Ad.Ir.M_columns pins -> pins
            | _ -> failf "node %d: column metadata missing" i
          in
          let od = data o and w = o.Tensor.width and bt = o.Tensor.batch in
          Some
            (fun () ->
              Tensor.copy_into ~out:o x;
              Array.iter
                (fun (col, c) ->
                  for b = 0 to bt - 1 do
                    od.((b * w) + col) <- c
                  done)
                pins)
      | "mean_rows" ->
          let o = v i and x = v (a 0) in
          let od = data o and xd = data x in
          let w = x.Tensor.width and bt = x.Tensor.batch in
          let inv = 1.0 /. float_of_int (Stdlib.max 1 bt) in
          Some
            (fun () ->
              Array.fill od 0 w 0.0;
              for b = 0 to bt - 1 do
                let base = b * w in
                for p = 0 to w - 1 do
                  od.(p) <- od.(p) +. xd.(base + p)
                done
              done;
              for p = 0 to w - 1 do
                od.(p) <- od.(p) *. inv
              done)
      | "slice_row" ->
          let o = v i and x = v (a 0) in
          let r = match nd.meta with Ad.Ir.M_row r -> r | _ -> failf "node %d: row missing" i in
          let od = data o and xd = data x and w = x.Tensor.width in
          Some (fun () -> Array.blit xd (r * w) od 0 w)
      | "sum_width" ->
          let o = v i and x = v (a 0) in
          let od = data o and xd = data x in
          let w = x.Tensor.width and bt = x.Tensor.batch in
          Some
            (fun () ->
              for b = 0 to bt - 1 do
                let acc = ref 0.0 in
                let base = b * w in
                for p = 0 to w - 1 do
                  acc := !acc +. Array.unsafe_get xd (base + p)
                done;
                od.(b) <- !acc
              done)
      | "sum_all" ->
          let od = data (v i) and xd = data (v (a 0)) and nn = numel_of (a 0) in
          Some
            (fun () ->
              let acc = ref 0.0 in
              for p = 0 to nn - 1 do
                acc := !acc +. xd.(p)
              done;
              od.(0) <- !acc)
      | "dot_const" ->
          let o = v i and x = v (a 0) and u = coeffs_of i in
          let od = data o and xd = data x in
          let w = x.Tensor.width and bt = x.Tensor.batch in
          Some
            (fun () ->
              for b = 0 to bt - 1 do
                let acc = ref 0.0 in
                let base = b * w in
                for p = 0 to w - 1 do
                  acc := !acc +. (xd.(base + p) *. u.(p))
                done;
                od.(b) <- !acc
              done)
      | "linear" ->
          let o = v i and x = v (a 0) and wt = v (a 1) and bias = v (a 2) in
          let od = data o and bd = data bias in
          let h = wt.Tensor.batch in
          Some
            (fun () ->
              Tensor.matmul_nt_into ~out:o x wt;
              for r = 0 to o.Tensor.batch - 1 do
                for j = 0 to h - 1 do
                  od.((r * h) + j) <- od.((r * h) + j) +. bd.(j)
                done
              done)
      | "matrix_of_entries" ->
          let o = v i and x = v (a 0) in
          let dim, entries = entries_of i in
          let od = data o and xd = data x in
          Some
            (fun () ->
              Array.fill od 0 (dim * dim) 0.0;
              Array.iter
                (fun (col, r, c) -> od.((r * dim) + c) <- od.((r * dim) + c) +. xd.(col))
                entries)
      | "expm_trace" ->
          let o = v i and x = v (a 0) in
          let d = x.Tensor.width in
          let ws = Tensor.Matfun.workspace d in
          scratch_floats := !scratch_floats + (16 * d * d) + d;
          let cur_e = ref x in
          expm_es.(i) <- Some cur_e;
          let od = data o in
          Some
            (fun () ->
              cur_e := Tensor.Matfun.expm_into ws x;
              od.(0) <- Tensor.Matfun.trace !cur_e)
      | op -> failf "node %d: op %s has no forward kernel" i op
    in
    let fwd_jam ci =
      let cs = chains.(ci) in
      let k = Array.length cs in
      let head = cs.(0) and last = cs.(k - 1) in
      let x = ir.(head).Ad.Ir.args.(0) in
      let tags = Array.make k 0 and ks = Array.make k 0.0 in
      Array.iteri
        (fun m c ->
          let t, kv = stage_tag c in
          tags.(m) <- t;
          ks.(m) <- kv)
        cs;
      let od = data (v last) and xd = data (v x) and nn = numel_of last in
      fun () ->
        Parallel.chunks nn (fun lo hi ->
            let acc = ref 0.0 in
            for p = lo to hi - 1 do
              acc := Array.unsafe_get xd p;
              for s = 0 to k - 1 do
                match Array.unsafe_get tags s with
                | 0 -> acc := -. !acc
                | 1 -> acc := Array.unsafe_get ks s *. !acc
                | _ -> acc := Array.unsafe_get ks s +. !acc
              done;
              Array.unsafe_set od p !acc
            done)
    in
    let fwd_steps =
      Array.init n (fun i ->
          if chain_at.(i) >= 0 then Some (fwd_jam chain_at.(i))
          else if member.(i) then None
          else emit_forward i)
    in
    (* ---- backward cores ---- *)
    let emit_backward j =
      let nd = ir.(j) in
      let a k = nd.Ad.Ir.args.(k) in
      let gj = g j in
      let gjd = data gj in
      let gb k = node_grads.(a k) in
      match nd.op with
      | "add" ->
          let ta = gb 0 and tb = gb 1 in
          Some
            (fun () ->
              (match ta with Some ga -> Tensor.add_inplace ga gj | None -> ());
              match tb with Some gbt -> Tensor.add_inplace gbt gj | None -> ())
      | "sub" ->
          let ta = gb 0 and tb = gb 1 in
          Some
            (fun () ->
              (match ta with Some ga -> Tensor.add_inplace ga gj | None -> ());
              match tb with Some gbt -> Tensor.axpy (-1.0) gj gbt | None -> ())
      | "mul" ->
          let ta = gb 0 and tb = gb 1 in
          let ad = data (v (a 0)) and bd = data (v (a 1)) and nn = numel_of j in
          (* interpreter: ga += fl(g *. b), then gb += fl(g *. a) *)
          Some
            (fun () ->
              (match ta with
              | Some ga ->
                  let gad = data ga in
                  Parallel.chunks nn (fun lo hi ->
                      for p = lo to hi - 1 do
                        Array.unsafe_set gad p
                          (Array.unsafe_get gad p
                          +. (Array.unsafe_get gjd p *. Array.unsafe_get bd p))
                      done)
              | None -> ());
              match tb with
              | Some gbt ->
                  let gbd = data gbt in
                  Parallel.chunks nn (fun lo hi ->
                      for p = lo to hi - 1 do
                        Array.unsafe_set gbd p
                          (Array.unsafe_get gbd p
                          +. (Array.unsafe_get gjd p *. Array.unsafe_get ad p))
                      done)
              | None -> ())
      | "neg" -> (
          match gb 0 with
          | Some ga -> Some (fun () -> Tensor.axpy (-1.0) gj ga)
          | None -> None)
      | "scale" -> (
          let k = scalar_of j in
          match gb 0 with Some ga -> Some (fun () -> Tensor.axpy k gj ga) | None -> None)
      | "add_scalar" -> (
          match gb 0 with
          | Some ga -> Some (fun () -> Tensor.add_inplace ga gj)
          | None -> None)
      | "log_safe" -> (
          match gb 0 with
          | Some ga ->
              let gad = data ga and xd = data (v (a 0)) and nn = numel_of j in
              (* interpreter: inv = fl(1 / max x floor); ga += fl(g *. inv) *)
              Some
                (fun () ->
                  Parallel.chunks nn (fun lo hi ->
                      for p = lo to hi - 1 do
                        Array.unsafe_set gad p
                          (Array.unsafe_get gad p
                          +. Array.unsafe_get gjd p
                             *. (1.0 /. Float.max (Array.unsafe_get xd p) log_floor))
                      done))
          | None -> None)
      | "relu" -> (
          match gb 0 with
          | Some ga ->
              let gad = data ga and xd = data (v (a 0)) and nn = numel_of j in
              (* keep the mask multiply: fl(g *. 0.0) preserves the
                 interpreter's signed zeros *)
              Some
                (fun () ->
                  Parallel.chunks nn (fun lo hi ->
                      for p = lo to hi - 1 do
                        let m = if Array.unsafe_get xd p > 0.0 then 1.0 else 0.0 in
                        Array.unsafe_set gad p
                          (Array.unsafe_get gad p +. (Array.unsafe_get gjd p *. m))
                      done))
          | None -> None)
      | "gather" -> (
          match gb 0 with
          | Some ga ->
              let idx = idx_of j in
              Some (fun () -> Segments.scatter_add ~into:ga idx gj)
          | None -> None)
      | "segment_softmax" -> (
          match gb 0 with
          | Some ga ->
              let seg = seg_of j in
              let yd = data (v j) and gad = data ga in
              let starts = seg.Segments.starts and lens = seg.Segments.lens in
              let nsegs = Array.length starts and w = seg.Segments.width in
              let bt = (shape_of (a 0)).Ad.Ir.batch in
              Some
                (fun () ->
                  Parallel.chunks ~grain:(row_grain w) ~cost:(Stdlib.max 1 w) bt
                    (fun blo bhi ->
                      for b = blo to bhi - 1 do
                        let base = b * w in
                        for s = 0 to nsegs - 1 do
                          let st = base + starts.(s) and ln = lens.(s) in
                          let dot = ref 0.0 in
                          for p = st to st + ln - 1 do
                            dot :=
                              !dot +. (Array.unsafe_get gjd p *. Array.unsafe_get yd p)
                          done;
                          let dv = !dot in
                          for p = st to st + ln - 1 do
                            Array.unsafe_set gad p
                              (Array.unsafe_get gad p
                              +. Array.unsafe_get yd p *. (Array.unsafe_get gjd p -. dv))
                          done
                        done
                      done))
          | None -> None)
      | "segment_sum" -> (
          match gb 0 with
          | Some ga ->
              let seg = seg_of j in
              let owner = Segments.seg_of_index seg in
              let gad = data ga in
              let w = seg.Segments.width and nsegs = Segments.count seg in
              let bt = (shape_of (a 0)).Ad.Ir.batch in
              Some
                (fun () ->
                  Parallel.chunks ~grain:(row_grain w) ~cost:(Stdlib.max 1 w) bt
                    (fun blo bhi ->
                      for b = blo to bhi - 1 do
                        let base = b * w and gbase = b * nsegs in
                        for p = 0 to w - 1 do
                          Array.unsafe_set gad (base + p)
                            (Array.unsafe_get gad (base + p)
                            +. Array.unsafe_get gjd (gbase + Array.unsafe_get owner p))
                        done
                      done))
          | None -> None)
      | "segment_prod" -> (
          match gb 0 with
          | Some ga ->
              let seg = seg_of j in
              let owner = Segments.seg_of_index seg in
              let x = v (a 0) in
              let others = scratch ~batch:x.Tensor.batch ~width:x.Tensor.width in
              let gad = data ga and othd = data others in
              let w = seg.Segments.width and nsegs = Segments.count seg in
              Some
                (fun () ->
                  Segments.prod_grad_scratch_into ~out:others x seg;
                  Parallel.chunks ~grain:(row_grain w) ~cost:(Stdlib.max 1 w) x.Tensor.batch
                    (fun blo bhi ->
                      for b = blo to bhi - 1 do
                        let base = b * w and gbase = b * nsegs in
                        for p = 0 to w - 1 do
                          Array.unsafe_set gad (base + p)
                            (Array.unsafe_get gad (base + p)
                            +. Array.unsafe_get gjd (gbase + Array.unsafe_get owner p)
                               *. Array.unsafe_get othd (base + p))
                        done
                      done))
          | None -> None)
      | "segment_max" -> (
          match gb 0 with
          | Some ga ->
              let arg =
                match argmaxes.(j) with
                | Some arr -> arr
                | None -> failf "internal: node %d argmax scratch missing" j
              in
              let gad = data ga in
              Some
                (fun () ->
                  Array.iteri
                    (fun flat src_pos ->
                      if src_pos >= 0 then gad.(src_pos) <- gad.(src_pos) +. gjd.(flat))
                    arg)
          | None -> None)
      | "override_columns" -> (
          match gb 0 with
          | Some ga ->
              let w = (shape_of j).Ad.Ir.width and bt = (shape_of j).Ad.Ir.batch in
              let pinned = Array.make w false in
              (match nd.meta with
              | Ad.Ir.M_columns pins -> Array.iter (fun (col, _) -> pinned.(col) <- true) pins
              | _ -> failf "node %d: column metadata missing" j);
              let gad = data ga in
              Some
                (fun () ->
                  Parallel.chunks ~grain:(row_grain w) ~cost:(Stdlib.max 1 w) bt
                    (fun blo bhi ->
                      for b = blo to bhi - 1 do
                        let base = b * w in
                        for p = 0 to w - 1 do
                          let gv =
                            if Array.unsafe_get pinned p then 0.0
                            else Array.unsafe_get gjd (base + p)
                          in
                          Array.unsafe_set gad (base + p)
                            (Array.unsafe_get gad (base + p) +. gv)
                        done
                      done))
          | None -> None)
      | "mean_rows" -> (
          match gb 0 with
          | Some ga ->
              let s = shape_of (a 0) in
              let bt = s.Ad.Ir.batch and w = s.Ad.Ir.width in
              let inv = 1.0 /. float_of_int (Stdlib.max 1 bt) in
              let gad = data ga in
              Some
                (fun () ->
                  for b = 0 to bt - 1 do
                    for p = 0 to w - 1 do
                      gad.((b * w) + p) <- gad.((b * w) + p) +. (gjd.(p) *. inv)
                    done
                  done)
          | None -> None)
      | "slice_row" -> (
          match gb 0 with
          | Some ga ->
              let r =
                match nd.meta with Ad.Ir.M_row r -> r | _ -> failf "node %d: row missing" j
              in
              let w = (shape_of (a 0)).Ad.Ir.width in
              let gad = data ga in
              Some
                (fun () ->
                  for p = 0 to w - 1 do
                    gad.((r * w) + p) <- gad.((r * w) + p) +. gjd.(p)
                  done)
          | None -> None)
      | "sum_width" -> (
          match gb 0 with
          | Some ga ->
              let s = shape_of (a 0) in
              let bt = s.Ad.Ir.batch and w = s.Ad.Ir.width in
              let gad = data ga in
              Some
                (fun () ->
                  for b = 0 to bt - 1 do
                    let gv = gjd.(b) in
                    for p = 0 to w - 1 do
                      gad.((b * w) + p) <- gad.((b * w) + p) +. gv
                    done
                  done)
          | None -> None)
      | "sum_all" -> (
          match gb 0 with
          | Some ga ->
              let nn = numel_of (a 0) in
              let gad = data ga in
              Some
                (fun () ->
                  let gv = gjd.(0) in
                  for p = 0 to nn - 1 do
                    gad.(p) <- gad.(p) +. gv
                  done)
          | None -> None)
      | "dot_const" -> (
          match gb 0 with
          | Some ga ->
              let u = coeffs_of j in
              let s = shape_of (a 0) in
              let bt = s.Ad.Ir.batch and w = s.Ad.Ir.width in
              let gad = data ga in
              Some
                (fun () ->
                  for b = 0 to bt - 1 do
                    let gv = gjd.(b) in
                    let base = b * w in
                    for p = 0 to w - 1 do
                      gad.(base + p) <- gad.(base + p) +. (gv *. u.(p))
                    done
                  done)
          | None -> None)
      | "linear" ->
          let xv = v (a 0) and wv = v (a 1) in
          let t_in = gb 0 and t_w = gb 1 and t_b = gb 2 in
          let bt = xv.Tensor.batch and nf = xv.Tensor.width and h = wv.Tensor.batch in
          let in_step =
            match t_in with
            | Some gin ->
                let wT = scratch ~batch:nf ~width:h in
                let dx = scratch ~batch:bt ~width:nf in
                Some
                  (fun () ->
                    Tensor.transpose_into ~out:wT wv;
                    Tensor.matmul_nt_into ~out:dx gj wT;
                    Tensor.add_inplace gin dx)
            | None -> None
          in
          let w_step =
            match t_w with
            | Some gw ->
                let gT = scratch ~batch:h ~width:bt in
                let xT = scratch ~batch:nf ~width:bt in
                let dW = scratch ~batch:h ~width:nf in
                Some
                  (fun () ->
                    Tensor.transpose_into ~out:gT gj;
                    Tensor.transpose_into ~out:xT xv;
                    Tensor.matmul_nt_into ~out:dW gT xT;
                    Tensor.add_inplace gw dW)
            | None -> None
          in
          let b_step =
            match t_b with
            | Some gbias ->
                let gbd = data gbias in
                Some
                  (fun () ->
                    for r = 0 to bt - 1 do
                      for jj = 0 to h - 1 do
                        gbd.(jj) <- gbd.(jj) +. gjd.((r * h) + jj)
                      done
                    done)
            | None -> None
          in
          if in_step = None && w_step = None && b_step = None then None
          else
            Some
              (fun () ->
                (match in_step with Some f -> f () | None -> ());
                (match w_step with Some f -> f () | None -> ());
                match b_step with Some f -> f () | None -> ())
      | "matrix_of_entries" -> (
          match gb 0 with
          | Some ga ->
              let dim, entries = entries_of j in
              let gad = data ga in
              Some
                (fun () ->
                  Array.iter
                    (fun (col, r, c) -> gad.(col) <- gad.(col) +. gjd.((r * dim) + c))
                    entries)
          | None -> None)
      | "expm_trace" -> (
          match gb 0 with
          | Some ga ->
              let cur_e =
                match expm_es.(j) with
                | Some r -> r
                | None -> failf "internal: node %d expm state missing" j
              in
              let d = (v (a 0)).Tensor.width in
              let eT = scratch ~batch:d ~width:d in
              Some
                (fun () ->
                  let gv = gjd.(0) in
                  Tensor.transpose_into ~out:eT !cur_e;
                  Tensor.axpy gv eT ga)
          | None -> None)
      | op -> failf "node %d: op %s has no backward kernel" j op
    in
    (* Backward jam: gradient flows from grad(ck) through the pulls of
       ck..c2 — each of which the interpreter stages into a
       freshly-zeroed interior adjoint, hence the literal [+. 0.0] —
       then c1's pull accumulates into the chain input's gradient. *)
    let bwd_jam ci =
      let cs = chains.(ci) in
      let k = Array.length cs in
      let head = cs.(0) and last = cs.(k - 1) in
      let x = ir.(head).Ad.Ir.args.(0) in
      match node_grads.(x) with
      | None -> None
      | Some gx ->
          let nstages = k - 1 in
          let tags = Array.make (Stdlib.max 1 nstages) 0
          and ks = Array.make (Stdlib.max 1 nstages) 0.0 in
          for m = 0 to nstages - 1 do
            let t, kv = stage_tag cs.(k - 1 - m) in
            tags.(m) <- t;
            ks.(m) <- kv
          done;
          let head_tag, head_k = stage_tag head in
          let gd = data (g last) and gxd = data gx in
          let nn = numel_of last in
          Some
            (fun () ->
              Parallel.chunks nn (fun lo hi ->
                  let acc = ref 0.0 in
                  for p = lo to hi - 1 do
                    acc := Array.unsafe_get gd p;
                    for s = 0 to nstages - 1 do
                      match Array.unsafe_get tags s with
                      | 0 -> acc := (-1.0 *. !acc) +. 0.0
                      | 1 -> acc := (Array.unsafe_get ks s *. !acc) +. 0.0
                      | _ -> acc := 0.0 +. !acc
                    done;
                    (match head_tag with
                    | 0 ->
                        Array.unsafe_set gxd p ((-1.0 *. !acc) +. Array.unsafe_get gxd p)
                    | 1 -> Array.unsafe_set gxd p ((head_k *. !acc) +. Array.unsafe_get gxd p)
                    | _ -> Array.unsafe_set gxd p (Array.unsafe_get gxd p +. !acc))
                  done))
    in
    let bwd_cores =
      Array.init n (fun j ->
          if chain_at.(j) >= 0 then
            if grad_mat.(chains.(chain_at.(j)).(Array.length chains.(chain_at.(j)) - 1)) then
              bwd_jam chain_at.(j)
            else None
          else if member.(j) || is_leaf ir.(j).op || not grad_mat.(j) then None
          else emit_backward j)
    in
    (* emits_bwd: does position j's backward step write into buffered
       argument gradients? (chain heads write the chain input) *)
    let emits_bwd = Array.map (fun c -> c <> None) bwd_cores in
    (* zero-fill scheduling: each gradient buffer is zeroed immediately
       before its first writer — the largest consumer whose backward
       step is emitted — mirroring the interpreter's lazily-zeroed
       gradient materialisation. Buffers no step ever writes (requested
       gradients off the root path) are zeroed at the seed. *)
    let bwd_fills = Array.make n [] in
    let seed_zeros = ref [] in
    for i = 0 to n - 1 do
      if has_gbuf.(i) && i <> cap.root then begin
        let rec first_writer = function
          | [] -> None
          | j :: rest -> if emits_bwd.(j) then Some j else first_writer rest
        in
        match first_writer cons.(i) with
        | Some j -> bwd_fills.(j) <- g i :: bwd_fills.(j)
        | None -> seed_zeros := g i :: !seed_zeros
      end
    done;
    let root_grad = g cap.root in
    let seed_list = !seed_zeros in
    let seed () =
      List.iter (fun t -> Tensor.fill t 0.0) seed_list;
      Tensor.fill root_grad (if Fault_plan.on_backward () then Float.nan else 1.0)
    in
    let count_some a = Array.fold_left (fun acc s -> if s = None then acc else acc + 1) 0 a in
    let plan_stats =
      {
        nodes = n;
        steps_forward = count_some fwd_steps;
        steps_backward = count_some bwd_cores;
        arena_bytes = 8 * Array.fold_left ( + ) 0 slot_sizes;
        dedicated_bytes = 8 * !dedicated_floats;
        scratch_bytes = 8 * !scratch_floats;
        chains = Array.length chains;
        fused_nodes = Array.fold_left (fun acc cs -> acc + Array.length cs) 0 chains;
      }
    in
    Ok { n; fwd_steps; bwd_cores; bwd_fills; seed; node_vals; node_grads; plan_stats }
  with Fail msg -> Error msg

let stats t = t.plan_stats

let run_forward t =
  Array.iter (function Some f -> f () | None -> ()) t.fwd_steps

let run_backward t =
  t.seed ();
  for j = t.n - 1 downto 0 do
    match t.bwd_cores.(j) with
    | Some core ->
        List.iter (fun gt -> Tensor.fill gt 0.0) t.bwd_fills.(j);
        core ()
    | None -> ()
  done

let value t i =
  match t.node_vals.(i) with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Plan.value: node %d was fused away" i)

let grad_of t i =
  match t.node_grads.(i) with
  | Some g -> g
  | None ->
      invalid_arg
        (Printf.sprintf
           "Plan.grad_of: node %d has no gradient buffer — request it at compile time" i)
