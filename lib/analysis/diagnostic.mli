(** Shared finding type for the static pre-flight analyses.

    Every pass ({!Egraph_lint}, {!Shape_check}, {!Grad_flow}) reports
    its results as a list of diagnostics: a stable code (grep-able,
    documented in DESIGN.md), a severity, a structured site, and a
    human-readable message. Renderers produce the CLI's text and
    [--json] output. *)

type severity = Error | Warning | Info

(** Where a finding is anchored. [Line] refers to a 1-based line of a
    text input (lenient parse of the native e-graph format); [Tape_node]
    to an index into an {!Ad.Ir.t} op-graph. *)
type site = Graph | Eclass of int | Enode of int | Tape_node of int | Line of int

type t = { code : string; severity : severity; site : site; message : string }

val error : code:string -> site -> ('a, unit, string, t) format4 -> 'a
val warning : code:string -> site -> ('a, unit, string, t) format4 -> 'a
val info : code:string -> site -> ('a, unit, string, t) format4 -> 'a
(** Printf-style constructors: [error ~code:"EG001" (Eclass 3) "..." ...]. *)

val severity_name : severity -> string
val site_name : site -> string

val compare : t -> t -> int
(** Errors first, then warnings, then infos; ties broken by code then
    site, so reports are deterministic. *)

val sort : t list -> t list

val errors : t list -> int
val warnings : t list -> int
val infos : t list -> int
val by_code : string -> t list -> t list
val max_severity : t list -> severity option

val ok : ?strict:bool -> t list -> bool
(** Gate verdict: false when any error is present, or — under [~strict]
    — when any warning is present. Infos never fail the gate. *)

val render : t -> string
(** One line: ["error EG001 [class 3]: message"]. *)

val render_report : ?source:string -> t list -> string
(** Sorted findings, one per line, followed by a count summary. *)

val to_json : t -> Json.t
val report_to_json : source:string -> t list -> Json.t
(** [{ "source": ..., "errors": n, "warnings": n, "infos": n,
      "diagnostics": [...] }] *)
