(** Plan-level dataflow analysis over the autodiff op-graph IR.

    Before {!Plan.compile} is allowed to replay an iteration over a
    shared buffer arena, this pass proves the reuse sound — and computes
    the arena itself. It builds def-use chains for every value and
    adjoint buffer, runs forward+backward liveness over the combined
    timeline (forward of node [i] at step [i], its backward pull at step
    [2n-1-i], using each op's known gradient reads from the {!Plan} op
    facts), derives fusion chains of adjacent unary elementwise ops, and
    assigns buffers to arena slots by greedy interval-graph colouring
    within exact-size classes. The assignment is then re-verified
    independently (overlap check plus a read-time simulation) rather
    than trusted.

    Codes (full table in DESIGN.md):
    - [PL001] error: arena maps two overlapping live ranges to one slot
    - [PL002] error: an op reads an operand after its arena slot was
      overwritten by a later tenant (read-time simulation)
    - [PL003] error: a [param]/[const] leaf or pinned buffer is aliased
      by a temporary (assigned to an arena slot)
    - [PL004] info: fusable elementwise run found (fused by the plan)
    - [PL005] info: fusion of an adjacent elementwise pair blocked by an
      interior use (extra consumer, output/root/requested-gradient
      pinning — segment-op consumers are named with their [M_segments]
      metadata)
    - [PL006] error: iteration-2 IR differs from iteration-1 (op, args,
      shape or context mismatch at the first divergent node) — replay
      must fall back to interpreted mode
    - [PL007] error: non-reusable dynamic metadata changed between
      captures (gather index ranges, scalar constants, segment layout)
    - [PL008] warning: an op without a replay kernel — the plan is
      disabled, extraction stays interpreted *)

(** Live range of one buffer on the combined timeline [0, 2n):
    [lo] = first write, [hi] = last read. [pinned] buffers (leaves,
    outputs, the root and requested gradients) never enter the arena. *)
type interval = { lo : int; hi : int; numel : int; pinned : bool }

type report = {
  nodes : int;
  root : int;
  feeds_root : bool array;
      (** the backward sweep reaches this node's adjoint *)
  carries : bool array;
      (** subtree holds a param or requested gradient: its adjoint is
          observable and must be materialised *)
  chains : int array array;  (** fusable runs, each [c1; ...; ck] *)
  intervals : interval option array;
      (** length [2 * nodes]: entry [i] is node [i]'s value buffer,
          entry [nodes + i] its gradient buffer; [None] when the plan
          materialises no such buffer (leaves alias their capture,
          chain interiors are fused away) *)
  reads : int list array;
      (** per buffer, every timeline step that reads it (gradient
          accumulations count as reads) — drives the PL002 simulation *)
  slot_sizes : int array;  (** element count of each arena slot *)
  assign : int array;  (** per buffer: slot index or [-1] (dedicated) *)
  arena_bytes : int;  (** peak shared-arena footprint *)
  dedicated_bytes : int;  (** pinned buffers the plan allocates once *)
  naive_bytes : int;
      (** what the interpreter allocates per iteration: every non-leaf
          value plus every adjoint its sweep materialises *)
  diags : Diagnostic.t list;
}

val analyze : ?grads:int array -> root:int -> outputs:int array -> Ad.Ir.t -> report
(** Full analysis of one captured IR. [root] is the loss node,
    [outputs] the nodes whose values the caller reads after the forward
    pass, [grads] the nodes whose gradients it reads after the sweep
    (all pinned out of the arena). The returned arena plan has already
    passed {!verify_arena}; any PL001–PL003 finding in [diags] means
    the analysis refused its own assignment (a bug guard), PL008 that
    an op cannot be replayed at all. *)

val verify_arena :
  report -> slot_sizes:int array -> assign:int array -> Diagnostic.t list
(** Check an arbitrary slot assignment against the report's live
    ranges: PL001 overlap, PL002 read-after-overwrite simulation,
    PL003 leaf/pinned aliasing, plus slot-size mismatches. Used by the
    analysis on its own output and by property tests on mutated
    assignments. *)

val stability : Ad.Ir.t -> Ad.Ir.t -> Diagnostic.t list
(** Compare two consecutive captures structurally: PL006 on op/args/
    shape/context divergence (first divergent node), PL007 on a
    metadata-only change. Empty when the IR is iteration-stable. *)

val arena_spec : report -> Plan.arena_spec
(** The verified assignment in the form {!Plan.compile} consumes. *)

val plan_chains : report -> int array array
(** The fusion chains in the form {!Plan.compile} consumes. *)
