module D = Diagnostic
module Ir = Ad.Ir

(* ---------- interval domain ---------- *)

type itv = { lo : float; hi : float }

let top = { lo = Float.neg_infinity; hi = Float.infinity }

(* nan-safe constructor: any nan bound (0 * inf etc.) widens to top *)
let mk lo hi = if Float.is_nan lo || Float.is_nan hi then top else { lo; hi }

(* interval-safe product of two bounds: 0 absorbs even against inf *)
let bmul a b = if a = 0.0 || b = 0.0 then 0.0 else a *. b

let imul a b =
  let p1 = bmul a.lo b.lo and p2 = bmul a.lo b.hi in
  let p3 = bmul a.hi b.lo and p4 = bmul a.hi b.hi in
  mk (min (min p1 p2) (min p3 p4)) (max (max p1 p2) (max p3 p4))

let iadd a b = mk (a.lo +. b.lo) (a.hi +. b.hi)
let ineg a = { lo = -.a.hi; hi = -.a.lo }
let isub a b = iadd a (ineg b)
let ihull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let iscale k a = imul { lo = k; hi = k } a
let ishift k a = mk (a.lo +. k) (a.hi +. k)

let itv_to_string a = Printf.sprintf "[%g, %g]" a.lo a.hi

(* ---------- the lint ---------- *)

let check ?root (ir : Ir.t) =
  let n = Array.length ir in
  if n = 0 then []
  else begin
    let root = match root with Some r -> r | None -> n - 1 in
    if root < 0 || root >= n then
      invalid_arg (Printf.sprintf "Grad_flow.check: root %d outside IR of %d nodes" root n);
    let ds = ref [] in
    let add d = ds := d :: !ds in
    (* forward: which nodes have a parameter somewhere upstream *)
    let has_param = Array.make n false in
    for i = 0 to n - 1 do
      has_param.(i) <-
        ir.(i).Ir.op = "param"
        || Array.exists (fun a -> a >= 0 && a < i && has_param.(a)) ir.(i).Ir.args
    done;
    (* backward: which nodes the loss depends on *)
    let feeds_root = Array.make n false in
    feeds_root.(root) <- true;
    for i = n - 1 downto 0 do
      if feeds_root.(i) then
        Array.iter (fun a -> if a >= 0 && a < i then feeds_root.(a) <- true) ir.(i).Ir.args
    done;
    (* GF001 / GF002: parameter-to-loss connectivity *)
    let params = ref [] in
    Array.iteri (fun i nd -> if nd.Ir.op = "param" then params := i :: !params) ir;
    let params = List.rev !params in
    let connected = List.filter (fun p -> feeds_root.(p)) params in
    List.iter
      (fun p ->
        if not (feeds_root.(p)) then
          add
            (D.error ~code:"GF001" (D.Tape_node p)
               "parameter at node %d (built in %s) has no path to the loss at node %d: its \
                gradient will stay zero and training is a silent no-op for it (detached θ)"
               p ir.(p).Ir.context root))
      params;
    if connected = [] then
      add
        (D.warning ~code:"GF002" (D.Tape_node root)
           "the loss at node %d depends on no parameter: every gradient of this tape is zero"
           root);
    (* GF003: const-blocked region feeding the loss *)
    let blocked = ref 0 in
    for i = 0 to n - 1 do
      match ir.(i).Ir.op with
      | "const" | "param" -> ()
      | _ -> if feeds_root.(i) && not has_param.(i) then incr blocked
    done;
    if !blocked > 0 then
      add
        (D.info ~code:"GF003" D.Graph
           "%d op node%s feed%s the loss through constants only (no parameter upstream); \
            expected for cost vectors and propagation seeds, suspicious elsewhere"
           !blocked
           (if !blocked = 1 then "" else "s")
           (if !blocked = 1 then "s" else ""));
    (* interval pass: GF004 domain boundaries, GF005 empty segments *)
    let itv = Array.make n top in
    for i = 0 to n - 1 do
      let nd = ir.(i) in
      let arg k =
        let a = nd.Ir.args.(k) in
        if a >= 0 && a < i then itv.(a) else top
      in
      let out =
        match (nd.Ir.op, Array.length nd.Ir.args) with
        | ("const" | "param"), _ -> top
        | "add", 2 -> iadd (arg 0) (arg 1)
        | "sub", 2 -> isub (arg 0) (arg 1)
        | "mul", 2 -> imul (arg 0) (arg 1)
        | "neg", 1 -> ineg (arg 0)
        | "scale", 1 -> (
            match nd.Ir.meta with Ir.M_scalar k -> iscale k (arg 0) | _ -> top)
        | "add_scalar", 1 -> (
            match nd.Ir.meta with Ir.M_scalar k -> ishift k (arg 0) | _ -> top)
        | "relu", 1 ->
            let a = arg 0 in
            { lo = Float.max 0.0 a.lo; hi = Float.max 0.0 a.hi }
        | "log_safe", 1 ->
            let a = arg 0 in
            if a.lo <= 0.0 then
              add
                (D.warning ~code:"GF004" (D.Tape_node i)
                   "`%s` at node %d (built in %s): operand interval %s admits values ≤ 0 — the \
                    value is clamped at the floor but the gradient can reach 1/%g there"
                   nd.Ir.op i nd.Ir.context (itv_to_string a) 1e-12);
            mk (Stdlib.log (Float.max a.lo 1e-12)) (Stdlib.log (Float.max a.hi 1e-12))
        | ("div" | "sqrt" | "rsqrt" | "log"), _ ->
            (* not emitted by Ad today; future-proof the boundary check *)
            let a = arg (Array.length nd.Ir.args - 1) in
            if a.lo <= 0.0 then
              add
                (D.warning ~code:"GF004" (D.Tape_node i)
                   "`%s` at node %d (built in %s): operand interval %s admits values ≤ 0 at a \
                    domain boundary"
                   nd.Ir.op i nd.Ir.context (itv_to_string a));
            top
        | "segment_softmax", 1 ->
            (* outputs are mathematically in (0,1]: strictly positive *)
            { lo = Float.min_float; hi = 1.0 }
        | "segment_sum", 1 -> (
            let a = arg 0 in
            match nd.Ir.meta with
            | Ir.M_segments { max_len; _ } ->
                let l = float_of_int max_len in
                mk (min 0.0 (bmul l a.lo)) (max 0.0 (bmul l a.hi))
            | _ -> top)
        | "segment_prod", 1 ->
            let a = arg 0 in
            if a.lo >= 0.0 && a.hi <= 1.0 then { lo = 0.0; hi = 1.0 }
            else if a.lo >= 0.0 then { lo = 0.0; hi = Float.infinity }
            else top
        | "segment_max", 1 ->
            let a = arg 0 in
            (* empty segments contribute 0 *)
            { lo = min a.lo 0.0; hi = max a.hi 0.0 }
        | "gather", 1 -> arg 0
        | "override_columns", 1 -> (
            let a = arg 0 in
            match nd.Ir.meta with
            | Ir.M_columns pins ->
                Array.fold_left (fun acc (_, v) -> ihull acc { lo = v; hi = v }) a pins
            | _ -> a)
        | ("mean_rows" | "slice_row"), 1 -> arg 0
        | ("sum_width" | "sum_all"), 1 -> (
            let a = arg 0 in
            let w = ir.(nd.Ir.args.(0)).Ir.shape.Ir.width in
            let w =
              if nd.Ir.op = "sum_all" then w * ir.(nd.Ir.args.(0)).Ir.shape.Ir.batch else w
            in
            let l = float_of_int w in
            mk (min 0.0 (bmul l a.lo)) (max 0.0 (bmul l a.hi)))
        | _ -> top
      in
      itv.(i) <- out;
      (* GF005: reductions over provably empty segments *)
      (match (nd.Ir.op, nd.Ir.meta) with
      | ( ("segment_softmax" | "segment_sum" | "segment_prod" | "segment_max"),
          Ir.M_segments { empty_segments; seg_count; _ } )
        when empty_segments > 0 ->
          if nd.Ir.op = "segment_softmax" then
            add
              (D.warning ~code:"GF005" (D.Tape_node i)
                 "`segment_softmax` at node %d (built in %s): %d of %d segments are empty — an \
                  e-class with no candidate e-nodes has no probability distribution"
                 i nd.Ir.context empty_segments seg_count)
          else
            add
              (D.info ~code:"GF005" (D.Tape_node i)
                 "`%s` at node %d (built in %s): %d of %d segments are empty (reduces to the \
                  neutral element; expected for the root's parent list)"
                 nd.Ir.op i nd.Ir.context empty_segments seg_count)
      | _ -> ())
    done;
    D.sort !ds
  end
