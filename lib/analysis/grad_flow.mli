(** Differentiability lint over the autodiff op-graph IR.

    Answers "will gradient actually flow where the builder expects?"
    statically: reachability between [param] leaves and the loss node,
    plus a simple interval abstraction (seeded from known op ranges —
    softmax outputs are in (0,1], relu is non-negative, …) to flag
    domain-boundary ops whose operand may touch the non-differentiable
    region.

    Codes (full table in DESIGN.md):
    - [GF001] error: a parameter has no path to the loss — detached θ,
      training would silently be a no-op for it
    - [GF002] warning: *no* parameter reaches the loss at all
    - [GF003] info: op nodes feeding the loss through constants only
      (a const-blocked subgraph; expected for cost vectors and the
      propagation seed, worth surfacing when unexpected)
    - [GF004] warning: a domain-boundary op ([log]/[div]/[sqrt] family)
      whose operand interval admits values ≤ 0 — the value is clamped
      but the gradient can explode or go non-finite at the boundary
    - [GF005] warning ([segment_softmax]) / info (other segment
      reductions): reduction over provably empty segments *)

val check : ?root:int -> Ad.Ir.t -> Diagnostic.t list
(** [root] is the loss node's IR index (see {!Ad.node_id}); defaults to
    the last node on the tape. *)
