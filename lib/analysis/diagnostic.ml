type severity = Error | Warning | Info
type site = Graph | Eclass of int | Enode of int | Tape_node of int | Line of int
type t = { code : string; severity : severity; site : site; message : string }

let make severity ~code site fmt =
  Printf.ksprintf (fun message -> { code; severity; site; message }) fmt

let error ~code site fmt = make Error ~code site fmt
let warning ~code site fmt = make Warning ~code site fmt
let info ~code site fmt = make Info ~code site fmt

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let site_name = function
  | Graph -> "graph"
  | Eclass c -> Printf.sprintf "class %d" c
  | Enode i -> Printf.sprintf "node %d" i
  | Tape_node i -> Printf.sprintf "tape %d" i
  | Line l -> Printf.sprintf "line %d" l

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* sites order by kind then id so equal-code findings line up stably *)
let site_rank = function
  | Graph -> (0, 0)
  | Line l -> (1, l)
  | Eclass c -> (2, c)
  | Enode i -> (3, i)
  | Tape_node i -> (4, i)

let compare a b =
  let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = Stdlib.compare (site_rank a.site) (site_rank b.site) in
      if c <> 0 then c else String.compare a.message b.message

let sort ds = List.sort compare ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)
let errors ds = count Error ds
let warnings ds = count Warning ds
let infos ds = count Info ds
let by_code code ds = List.filter (fun d -> d.code = code) ds

let max_severity ds =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.severity
      | Some s -> if severity_rank d.severity < severity_rank s then Some d.severity else acc)
    None ds

let ok ?(strict = false) ds =
  errors ds = 0 && ((not strict) || warnings ds = 0)

let render d =
  Printf.sprintf "%s %s [%s]: %s" (severity_name d.severity) d.code (site_name d.site)
    d.message

let render_report ?source ds =
  let buf = Buffer.create 256 in
  (match source with
  | Some s -> Buffer.add_string buf (Printf.sprintf "== %s ==\n" s)
  | None -> ());
  List.iter (fun d -> Buffer.add_string buf (render d ^ "\n")) (sort ds);
  Buffer.add_string buf
    (Printf.sprintf "%d error%s, %d warning%s, %d info%s\n" (errors ds)
       (if errors ds = 1 then "" else "s")
       (warnings ds)
       (if warnings ds = 1 then "" else "s")
       (infos ds)
       (if infos ds = 1 then "" else "s"));
  Buffer.contents buf

let site_to_json = function
  | Graph -> Json.Object [ ("kind", Json.String "graph") ]
  | Eclass c -> Json.Object [ ("kind", Json.String "eclass"); ("id", Json.Number (float_of_int c)) ]
  | Enode i -> Json.Object [ ("kind", Json.String "enode"); ("id", Json.Number (float_of_int i)) ]
  | Tape_node i ->
      Json.Object [ ("kind", Json.String "tape-node"); ("id", Json.Number (float_of_int i)) ]
  | Line l -> Json.Object [ ("kind", Json.String "line"); ("id", Json.Number (float_of_int l)) ]

let to_json d =
  Json.Object
    [
      ("code", Json.String d.code);
      ("severity", Json.String (severity_name d.severity));
      ("site", site_to_json d.site);
      ("message", Json.String d.message);
    ]

let report_to_json ~source ds =
  Json.Object
    [
      ("source", Json.String source);
      ("errors", Json.Number (float_of_int (errors ds)));
      ("warnings", Json.Number (float_of_int (warnings ds)));
      ("infos", Json.Number (float_of_int (infos ds)));
      ("diagnostics", Json.Array (List.map to_json (sort ds)));
    ]
