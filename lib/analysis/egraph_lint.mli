(** Well-formedness and extraction-feasibility lint over e-graphs.

    Two entry points: {!check} analyses a frozen {!Egraph.t} (whose
    constructor already guarantees the gross structural invariants, so
    most structural codes act as defensive cross-checks there), and
    {!check_source} leniently parses the native text format so that
    malformed files — which [Egraph.Serial.of_string] rejects with an
    exception — still produce coded diagnostics.

    Codes (full table in DESIGN.md):
    - [EG001] error: dangling / out-of-range child e-class
    - [EG002] error: e-class with no members
    - [EG003] error: root missing, duplicated, out of range, or empty
    - [EG004] warning: e-class unreachable from the root
    - [EG005] error: non-finite base cost
    - [EG006] warning: negative base cost
    - [EG007] info: class graph contains cycles (emitted iff
      {!Egraph.is_cyclic} — legal input, SmoothE handles cycles, but
      worth surfacing)
    - [EG008] error (root) / info (elsewhere): the class is not
      acyclically derivable — every member lies on a class-graph cycle,
      so no acyclic extraction can select it. Fatal when the root itself
      is stuck (no valid extraction exists); informational otherwise,
      since real cyclic e-graphs contain such classes and the extractor
      simply avoids them
    - [EG009] info: duplicate e-nodes (same op/children/cost) in a class
    - [EG010] error: unparseable input *)

val check : Egraph.t -> Diagnostic.t list
(** Sorted diagnostics for a frozen e-graph. *)

val check_source : ?name:string -> string -> Diagnostic.t list * Egraph.t option
(** Lenient lint of the native text format. Returns the frozen graph
    (with frozen-level diagnostics merged in) when no error-severity
    finding blocks construction. *)

val check_file : string -> Diagnostic.t list * Egraph.t option
(** [check_file path] dispatches on extension: [.json] loads through
    {!Gym.read_file} (a load failure becomes an [EG010] error), anything
    else goes through {!check_source}. *)

val stats_line : Egraph.t -> string
(** One-line summary (nodes/classes/edges/density/cyclicity) appended to
    text reports. *)
