module D = Diagnostic
module Ir = Ad.Ir

let sh b w = { Ir.batch = b; width = w }
let str = Ir.shape_to_string

let check (ir : Ir.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let n = Array.length ir in
  (* inferred shapes; on any reported defect we fall back to the recorded
     shape so downstream nodes are checked against what actually exists
     rather than cascading one error through the whole tape *)
  let inferred = Array.make n (sh 0 0) in
  for i = 0 to n - 1 do
    let nd = ir.(i) in
    let here = D.Tape_node i in
    let provenance = Printf.sprintf ", built in %s" nd.Ir.context in
    let errf ~code fmt = Printf.ksprintf (fun m -> add (D.error ~code here "%s%s" m provenance)) fmt in
    let recorded = nd.Ir.shape in
    let args_ok =
      Array.for_all
        (fun a ->
          if a < 0 || a >= i then begin
            errf ~code:"SC008" "`%s` at node %d: operand id %d out of range (expected 0..%d)"
              nd.Ir.op i a (i - 1);
            false
          end
          else true)
        nd.Ir.args
    in
    let arg k = inferred.(nd.Ir.args.(k)) in
    let inf =
      if not args_ok then recorded
      else
        match (nd.Ir.op, Array.length nd.Ir.args) with
        | ("const" | "param"), _ -> recorded
        | ("add" | "sub" | "mul"), 2 ->
            let a = arg 0 and b = arg 1 in
            if a <> b then begin
              errf ~code:"SC001" "`%s` at node %d: %s vs %s" nd.Ir.op i (str a) (str b);
              recorded
            end
            else a
        | ("neg" | "relu" | "log_safe"), 1 -> arg 0
        | ("scale" | "add_scalar"), 1 -> arg 0
        | "gather", 1 -> (
            let a = arg 0 in
            match nd.Ir.meta with
            | Ir.M_gather { count; index_min; index_max } ->
                if index_min < 0 || index_max >= a.Ir.width then
                  errf ~code:"SC002"
                    "`gather` at node %d: index range [%d,%d] outside operand width %d" i
                    index_min index_max a.Ir.width;
                sh a.Ir.batch count
            | _ -> recorded)
        | ("segment_softmax" | "segment_sum" | "segment_prod" | "segment_max"), 1 -> (
            let a = arg 0 in
            match nd.Ir.meta with
            | Ir.M_segments { seg_count; seg_width; _ } ->
                if seg_width <> a.Ir.width then begin
                  errf ~code:"SC003"
                    "`%s` at node %d: segmentation covers %d elements but the operand is %s"
                    nd.Ir.op i seg_width (str a);
                  recorded
                end
                else if nd.Ir.op = "segment_softmax" then a
                else sh a.Ir.batch seg_count
            | _ -> recorded)
        | "override_columns", 1 -> (
            let a = arg 0 in
            (match nd.Ir.meta with
            | Ir.M_columns pins ->
                Array.iter
                  (fun (col, _) ->
                    if col < 0 || col >= a.Ir.width then
                      errf ~code:"SC010"
                        "`override_columns` at node %d: pinned column %d outside width %d" i col
                        a.Ir.width)
                  pins
            | _ -> ());
            a)
        | "slice_row", 1 -> (
            let a = arg 0 in
            (match nd.Ir.meta with
            | Ir.M_row r ->
                if r < 0 || r >= a.Ir.batch then
                  errf ~code:"SC010" "`slice_row` at node %d: row %d outside batch %d" i r
                    a.Ir.batch
            | _ -> ());
            sh 1 a.Ir.width)
        | "mean_rows", 1 -> sh 1 (arg 0).Ir.width
        | "sum_width", 1 -> sh (arg 0).Ir.batch 1
        | "sum_all", 1 -> sh 1 1
        | "dot_const", 1 -> (
            let a = arg 0 in
            (match nd.Ir.meta with
            | Ir.M_width w ->
                if w <> a.Ir.width then
                  errf ~code:"SC004"
                    "`dot_const` at node %d: %d coefficients against operand %s" i w (str a)
            | _ -> ());
            sh a.Ir.batch 1)
        | "linear", 3 ->
            let x = arg 0 and w = arg 1 and b = arg 2 in
            if w.Ir.width <> x.Ir.width then
              errf ~code:"SC004"
                "`linear` at node %d: weight expects %d input features, input is %s" i
                w.Ir.width (str x);
            if b.Ir.width <> w.Ir.batch then
              errf ~code:"SC004" "`linear` at node %d: bias %s against %d output neurons" i
                (str b) w.Ir.batch;
            sh x.Ir.batch w.Ir.batch
        | "matrix_of_entries", 1 -> (
            let a = arg 0 in
            match nd.Ir.meta with
            | Ir.M_matrix { dim; class_min; class_max; col_max } ->
                if a.Ir.batch <> 1 then
                  errf ~code:"SC006"
                    "`matrix_of_entries` at node %d: expected a (1,N) operand, got %s" i (str a);
                if col_max >= a.Ir.width then
                  errf ~code:"SC006"
                    "`matrix_of_entries` at node %d: source column %d outside operand width %d" i
                    col_max a.Ir.width;
                if class_max >= dim || (class_max >= 0 && class_min < 0) then
                  errf ~code:"SC006"
                    "`matrix_of_entries` at node %d: entry target (%d..%d) outside %dx%d matrix"
                    i class_min class_max dim dim;
                sh dim dim
            | _ -> recorded)
        | "expm_trace", 1 ->
            let a = arg 0 in
            if a.Ir.batch <> a.Ir.width then
              errf ~code:"SC005" "`expm_trace` at node %d: matrix %s is not square" i (str a);
            sh 1 1
        | _ ->
            (* an op this checker does not know: trust the recording *)
            recorded
    in
    if inf <> recorded then
      add
        (D.warning ~code:"SC007" here
           "`%s` at node %d: recorded shape %s differs from inferred %s%s" nd.Ir.op i
           (str recorded) (str inf) provenance);
    (* downstream nodes see the shape that actually materialised *)
    inferred.(i) <- recorded
  done;
  D.sort !ds
