(** Abstract shape interpreter over the autodiff op-graph IR.

    Re-infers every node's (batch, width) shape from its operands using
    the declared semantics of each {!Ad} op and reports mismatches with
    op provenance ("`mul` at node 412: (8,1024) vs (8,512), built in
    smoothe.forward") instead of the bare [Invalid_argument] a tensor
    kernel would throw. The IR is plain data, so the check runs without
    executing any kernel — a hand-built or recorded IR can be vetted
    before (or without) a forward pass.

    Codes (full table in DESIGN.md):
    - [SC001] error: pointwise binary operands disagree
    - [SC002] error: gather index out of the operand's width
    - [SC003] error: segmentation width disagrees with the operand
    - [SC004] error: linear/dot dimension mismatch
    - [SC005] error: [expm_trace] of a non-square matrix
    - [SC006] error: [matrix_of_entries] scatter target out of range
    - [SC007] warning: recorded shape differs from the inferred shape
      (op ran, but not with the semantics this checker assumes)
    - [SC008] error: operand id out of range (malformed IR)
    - [SC010] error: row/column index out of the operand's shape

    Poisoned nodes (those already reported) propagate their recorded
    shape so one defect yields one diagnostic, not a cascade. *)

val check : Ad.Ir.t -> Diagnostic.t list
