(* Dataflow analysis that gates the replay engine: def-use chains,
   forward+backward liveness, fusion discovery, arena assignment by
   interval-graph colouring, and an independent verification of the
   resulting placement. The timeline interleaves both sweeps: node [i]'s
   forward step runs at time [i], its backward pull at [2n-1-i], so a
   buffer's live range is one contiguous interval and strict disjointness
   is exactly "safe to share a slot". Op behaviour (which operand values
   a pull re-reads, which ops fuse) comes from the {!Plan} op facts —
   the same table the replay engine executes, so the analysis and the
   engine cannot drift apart silently. *)

module D = Diagnostic

type interval = { lo : int; hi : int; numel : int; pinned : bool }

type report = {
  nodes : int;
  root : int;
  feeds_root : bool array;
  carries : bool array;
  chains : int array array;
  intervals : interval option array;
  reads : int list array;
  slot_sizes : int array;
  assign : int array;
  arena_bytes : int;
  dedicated_bytes : int;
  naive_bytes : int;
  diags : D.t list;
}

let numel_of (ir : Ad.Ir.t) i =
  let s = ir.(i).Ad.Ir.shape in
  s.Ad.Ir.batch * s.Ad.Ir.width

(* ---- Fusion discovery --------------------------------------------- *)

(* Maximal runs c1..ck of unary elementwise ops where every member but
   the last is consumed exactly once (by the next member) and is neither
   an output, the root, nor a requested gradient. Greedy over ascending
   ids: a fusable node not yet absorbed is necessarily a run head,
   because an eligible predecessor would have absorbed it already. *)
let find_chains ir ~n ~cons ~is_output ~requested ~root =
  let fusable i =
    Plan.fusable_elementwise ir.(i).Ad.Ir.op && Array.length ir.(i).Ad.Ir.args = 1
  in
  let extendable c =
    (not (is_output.(c) || c = root || requested.(c)))
    &&
    match cons.(c) with
    | [ j ] -> fusable j && ir.(j).Ad.Ir.shape = ir.(c).Ad.Ir.shape
    | _ -> false
  in
  let in_chain = Array.make n false in
  let chains = ref [] in
  let blocked = ref [] in
  for i = 0 to n - 1 do
    if fusable i && not in_chain.(i) then begin
      let run = ref [ i ] in
      let cur = ref i in
      while extendable !cur do
        match cons.(!cur) with
        | [ j ] ->
            run := j :: !run;
            cur := j
        | _ -> assert false
      done;
      let cs = Array.of_list (List.rev !run) in
      if Array.length cs >= 2 then begin
        Array.iter (fun c -> in_chain.(c) <- true) cs;
        chains := cs :: !chains
      end
    end
  done;
  let chains = Array.of_list (List.rev !chains) in
  let chain_of = Array.make n (-1) in
  Array.iteri (fun ci cs -> Array.iter (fun c -> chain_of.(c) <- ci) cs) chains;
  (* adjacent fusable pairs that did not land in one chain: report why *)
  for i = 0 to n - 1 do
    if fusable i then
      List.iter
        (fun j ->
          if
            fusable j
            && ir.(j).Ad.Ir.args = [| i |]
            && (chain_of.(i) < 0 || chain_of.(i) <> chain_of.(j))
          then begin
            let reason =
              if is_output.(i) then "its value is an extraction output"
              else if i = root then "it is the loss root"
              else if requested.(i) then "its gradient is requested"
              else
                let others = List.filter (fun c -> c <> j) cons.(i) in
                match others with
                | c :: _ ->
                    let nd = ir.(c) in
                    let seg_note =
                      match nd.Ad.Ir.meta with
                      | Ad.Ir.M_segments { seg_count; _ } ->
                          Printf.sprintf " over %d segments" seg_count
                      | _ -> ""
                    in
                    Printf.sprintf "its value is also consumed by node %d (%s%s)" c
                      nd.Ad.Ir.op seg_note
                | [] -> "of an interior use"
            in
            blocked :=
              D.info ~code:"PL005" (D.Tape_node i)
                "fusion of %s (node %d) into %s (node %d) blocked: %s — built in %s"
                ir.(i).Ad.Ir.op i ir.(j).Ad.Ir.op j reason ir.(i).Ad.Ir.context
              :: !blocked
          end)
        cons.(i)
  done;
  (chains, chain_of, List.rev !blocked)

(* ---- Stability (PL006 / PL007) ------------------------------------ *)

let meta_desc : Ad.Ir.meta -> string = function
  | Ad.Ir.M_none -> "none"
  | M_scalar k -> Printf.sprintf "scalar %g" k
  | M_gather { count; index_min; index_max } ->
      Printf.sprintf "gather of %d indices in [%d, %d]" count index_min index_max
  | M_segments { seg_count; seg_width; empty_segments; max_len } ->
      Printf.sprintf "%d segments over %d elements (%d empty, max len %d)" seg_count
        seg_width empty_segments max_len
  | M_columns pins -> Printf.sprintf "%d pinned columns" (Array.length pins)
  | M_row r -> Printf.sprintf "row %d" r
  | M_width w -> Printf.sprintf "%d coefficients" w
  | M_matrix { dim; _ } -> Printf.sprintf "%dx%d scatter" dim dim

let stability (ir1 : Ad.Ir.t) (ir2 : Ad.Ir.t) =
  let n1 = Array.length ir1 and n2 = Array.length ir2 in
  if n1 <> n2 then
    [
      D.error ~code:"PL006" D.Graph
        "iteration-2 IR records %d nodes where iteration-1 recorded %d — the graph is not \
         iteration-stable, replay falls back to interpreted mode"
        n2 n1;
    ]
  else begin
    let diag = ref None in
    let i = ref 0 in
    while !diag = None && !i < n1 do
      let a = ir1.(!i) and b = ir2.(!i) in
      if not (String.equal a.Ad.Ir.op b.Ad.Ir.op) then
        diag :=
          Some
            (D.error ~code:"PL006" (D.Tape_node !i) "op %s became %s between captures"
               a.Ad.Ir.op b.Ad.Ir.op)
      else if a.args <> b.args then
        diag :=
          Some
            (D.error ~code:"PL006" (D.Tape_node !i) "%s: operand set changed between captures"
               a.Ad.Ir.op)
      else if a.shape <> b.shape then
        diag :=
          Some
            (D.error ~code:"PL006" (D.Tape_node !i) "%s: shape %s became %s between captures"
               a.Ad.Ir.op
               (Ad.Ir.shape_to_string a.shape)
               (Ad.Ir.shape_to_string b.shape))
      else if not (String.equal a.context b.context) then
        diag :=
          Some
            (D.error ~code:"PL006" (D.Tape_node !i)
               "%s: provenance %s became %s between captures" a.Ad.Ir.op a.context b.context)
      else if a.meta <> b.meta then
        diag :=
          Some
            (D.error ~code:"PL007" (D.Tape_node !i)
               "%s: non-reusable dynamic metadata changed between captures (%s became %s)"
               a.Ad.Ir.op (meta_desc a.meta) (meta_desc b.meta));
      incr i
    done;
    match !diag with Some d -> [ d ] | None -> []
  end

(* ---- Analysis ----------------------------------------------------- *)

let rec analyze ?(grads = [||]) ~root ~outputs (ir : Ad.Ir.t) =
  let n = Array.length ir in
  let tn = 2 * n in
  let empty_report diags =
    {
      nodes = n;
      root;
      feeds_root = Array.make n false;
      carries = Array.make n false;
      chains = [||];
      intervals = Array.make tn None;
      reads = Array.make tn [];
      slot_sizes = [||];
      assign = Array.make tn (-1);
      arena_bytes = 0;
      dedicated_bytes = 0;
      naive_bytes = 0;
      diags;
    }
  in
  if n = 0 then empty_report []
  else if root < 0 || root >= n then
    empty_report [ D.error ~code:"PL006" D.Graph "root node %d out of range" root ]
  else begin
    let unsupported = ref [] in
    Array.iteri
      (fun i nd ->
        if not (Plan.op_supported nd.Ad.Ir.op) then
          unsupported :=
            D.warning ~code:"PL008" (D.Tape_node i)
              "op %s (built in %s) has no replay kernel — the plan is disabled and \
               extraction stays interpreted"
              nd.Ad.Ir.op nd.Ad.Ir.context
            :: !unsupported)
      ir;
    if !unsupported <> [] then empty_report (List.rev !unsupported)
    else begin
      let is_output = Array.make n false in
      Array.iter (fun i -> if i >= 0 && i < n then is_output.(i) <- true) outputs;
      is_output.(root) <- true;
      let requested = Array.make n false in
      Array.iter (fun i -> if i >= 0 && i < n then requested.(i) <- true) grads;
      let leaf i = Plan.is_leaf ir.(i).Ad.Ir.op in
      (* def-use: consumers in descending id order *)
      let cons = Array.make n [] in
      Array.iteri
        (fun i nd -> Array.iter (fun a -> cons.(a) <- i :: cons.(a)) nd.Ad.Ir.args)
        ir;
      let feeds_root = Array.make n false in
      feeds_root.(root) <- true;
      for i = n - 1 downto 0 do
        if feeds_root.(i) && not (leaf i) then
          Array.iter (fun a -> feeds_root.(a) <- true) ir.(i).Ad.Ir.args
      done;
      let carries = Array.make n false in
      for i = 0 to n - 1 do
        carries.(i) <-
          String.equal ir.(i).Ad.Ir.op "param"
          || requested.(i)
          || Array.exists (fun a -> carries.(a)) ir.(i).Ad.Ir.args
      done;
      let chains, chain_of, fusion_diags =
        find_chains ir ~n ~cons ~is_output ~requested ~root
      in
      let chain_head = Array.make n (-1) in
      let chain_last = Array.make n false in
      Array.iter
        (fun cs ->
          Array.iter (fun c -> chain_head.(c) <- cs.(0)) cs;
          chain_last.(cs.(Array.length cs - 1)) <- true)
        chains;
      let member i = chain_head.(i) >= 0 in
      let interior i = member i && not (chain_last.(i)) in
      (* gradient materialisation, mirroring Plan.compile *)
      let grad_mat =
        Array.init n (fun i ->
            (i = root || (feeds_root.(i) && carries.(i))) && not (interior i))
      in
      let has_gbuf = Array.init n (fun i -> grad_mat.(i) || (requested.(i) && not (interior i))) in
      (* which positions emit a backward step *)
      let emits_bwd =
        Array.init n (fun j ->
            if member j then
              chain_head.(j) = j
              && grad_mat.(chains.(chain_of.(j)).(Array.length chains.(chain_of.(j)) - 1))
            else (not (leaf j)) && grad_mat.(j))
      in
      let bp j = tn - 1 - j in
      (* buffer existence *)
      let has_vbuf i = (not (leaf i)) && not (interior i) in
      let reads = Array.make tn [] in
      let read_v i t = reads.(i) <- t :: reads.(i) in
      let read_g i t = reads.(n + i) <- t :: reads.(n + i) in
      (* forward reads: each executing step reads its buffered args *)
      for j = 0 to n - 1 do
        if (not (member j)) || chain_head.(j) = j then
          Array.iter (fun a -> if has_vbuf a then read_v a j) ir.(j).Ad.Ir.args
      done;
      (* backward value reads, from the op-fact table *)
      for j = 0 to n - 1 do
        if emits_bwd.(j) && not (member j) then begin
          let nd = ir.(j) in
          Array.iteri
            (fun k a ->
              if Plan.backward_reads_arg nd.Ad.Ir.op k && has_vbuf a then read_v a (bp j))
            nd.Ad.Ir.args;
          if Plan.backward_reads_self nd.Ad.Ir.op && has_vbuf j then read_v j (bp j)
        end
      done;
      (* gradient writers double as reads (accumulation is
         read-modify-write), and each pull reads its own adjoint *)
      let grad_lo = Array.make n max_int in
      for j = 0 to n - 1 do
        if emits_bwd.(j) then begin
          let t = bp j in
          if member j then begin
            (* the jam writes the chain input's gradient and reads the
               chain output's *)
            let cs = chains.(chain_of.(j)) in
            let x = ir.(cs.(0)).Ad.Ir.args.(0) in
            let last = cs.(Array.length cs - 1) in
            if has_gbuf.(x) then begin
              read_g x t;
              if t < grad_lo.(x) then grad_lo.(x) <- t
            end;
            read_g last t
          end
          else begin
            Array.iter
              (fun a ->
                if has_gbuf.(a) then begin
                  read_g a t;
                  if t < grad_lo.(a) then grad_lo.(a) <- t
                end)
              ir.(j).Ad.Ir.args;
            read_g j t
          end
        end
      done;
      (* intervals *)
      let intervals = Array.make tn None in
      for i = 0 to n - 1 do
        if has_vbuf i then begin
          let def = if chain_last.(i) then chain_head.(i) else i in
          let pinned = is_output.(i) in
          let hi =
            if pinned then tn - 1 else List.fold_left Stdlib.max def reads.(i)
          in
          intervals.(i) <- Some { lo = def; hi; numel = numel_of ir i; pinned }
        end;
        if has_gbuf.(i) then begin
          let pinned = i = root || requested.(i) || leaf i in
          let def = if i = root then n - 1 else if grad_lo.(i) = max_int then n - 1 else grad_lo.(i) in
          let hi =
            if pinned then tn - 1 else List.fold_left Stdlib.max def reads.(n + i)
          in
          intervals.(n + i) <- Some { lo = def; hi; numel = numel_of ir i; pinned }
        end
      done;
      (* arena assignment: greedy linear scan within exact-size classes,
         strictly disjoint intervals only *)
      let assign = Array.make tn (-1) in
      let order =
        let ids = ref [] in
        for b = tn - 1 downto 0 do
          match intervals.(b) with
          (* zero-numel buffers (empty gathers) stay dedicated: a
             zero-byte slot shares nothing worth sharing *)
          | Some iv when (not iv.pinned) && iv.numel > 0 -> ids := b :: !ids
          | _ -> ()
        done;
        List.sort
          (fun b1 b2 ->
            let i1 = Option.get intervals.(b1) and i2 = Option.get intervals.(b2) in
            if i1.lo <> i2.lo then compare i1.lo i2.lo else compare b1 b2)
          !ids
      in
      let slot_sizes = ref [] and slot_his = ref [] and nslots = ref 0 in
      List.iter
        (fun b ->
          let iv = Option.get intervals.(b) in
          let rec place idx sizes his =
            match (sizes, his) with
            | [], [] ->
                slot_sizes := !slot_sizes @ [ iv.numel ];
                slot_his := !slot_his @ [ ref iv.hi ];
                assign.(b) <- !nslots;
                incr nslots
            | sz :: sizes', hi :: his' ->
                if sz = iv.numel && !hi < iv.lo then begin
                  hi := iv.hi;
                  assign.(b) <- idx
                end
                else place (idx + 1) sizes' his'
            | _ -> assert false
          in
          place 0 !slot_sizes !slot_his)
        order;
      let slot_sizes = Array.of_list !slot_sizes in
      (* byte accounting *)
      let arena_bytes = 8 * Array.fold_left ( + ) 0 slot_sizes in
      let dedicated_bytes =
        let acc = ref 0 in
        for b = 0 to tn - 1 do
          match intervals.(b) with
          | Some iv when assign.(b) = -1 ->
              (* leaf values alias the capture; everything else pinned
                 or unassigned is a real dedicated buffer *)
              if not (b < n && leaf b) then acc := !acc + iv.numel
          | _ -> ()
        done;
        8 * !acc
      in
      let naive_bytes =
        let acc = ref 0 in
        for i = 0 to n - 1 do
          if not (leaf i) then acc := !acc + numel_of ir i;
          if feeds_root.(i) then acc := !acc + numel_of ir i
        done;
        8 * !acc
      in
      let report =
        {
          nodes = n;
          root;
          feeds_root;
          carries;
          chains;
          intervals;
          reads;
          slot_sizes;
          assign;
          arena_bytes;
          dedicated_bytes;
          naive_bytes;
          diags = [];
        }
      in
      let chain_infos =
        Array.to_list
          (Array.map
             (fun cs ->
               let k = Array.length cs in
               D.info ~code:"PL004" (D.Tape_node cs.(0))
                 "fusable elementwise run of %d ops (%s at node %d .. %s at node %d) — \
                  replayed as one fused pass"
                 k
                 ir.(cs.(0)).Ad.Ir.op
                 cs.(0)
                 ir.(cs.(k - 1)).Ad.Ir.op
                 cs.(k - 1))
             chains)
      in
      let verify = verify_arena report ~slot_sizes ~assign in
      { report with diags = D.sort (verify @ chain_infos @ fusion_diags) }
    end
  end

(* ---- Verification ------------------------------------------------- *)

and verify_arena report ~slot_sizes ~assign =
  let n = report.nodes in
  let tn = 2 * n in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let describe b = if b < n then Printf.sprintf "value of node %d" b else Printf.sprintf "gradient of node %d" (b - n) in
  let site b = D.Tape_node (if b < n then b else b - n) in
  if Array.length assign <> tn then
    add
      (D.error ~code:"PL001" D.Graph "assignment covers %d buffers, expected %d"
         (Array.length assign) tn)
  else begin
    let nslots = Array.length slot_sizes in
    let tenants = Array.make nslots [] in
    Array.iteri
      (fun b s ->
        if s >= nslots || s < -1 then
          add (D.error ~code:"PL001" (site b) "%s assigned to unknown slot %d" (describe b) s)
        else if s >= 0 then begin
          match report.intervals.(b) with
          | None ->
              add
                (D.error ~code:"PL003" (site b)
                   "%s has no buffer to place (leaf alias or fused interior) yet slot %d \
                    claims it"
                   (describe b) s)
          | Some iv ->
              if iv.pinned then
                add
                  (D.error ~code:"PL003" (site b)
                     "%s is pinned (leaf, output or requested gradient) but a temporary \
                      arena slot %d aliases it"
                     (describe b) s)
              else if iv.numel <> slot_sizes.(s) then
                add
                  (D.error ~code:"PL001" (site b)
                     "%s holds %d elements but slot %d holds %d" (describe b) iv.numel s
                     slot_sizes.(s))
              else tenants.(s) <- b :: tenants.(s)
        end)
      assign;
    Array.iteri
      (fun s bs ->
        let bs =
          List.sort
            (fun b1 b2 ->
              let i1 = Option.get report.intervals.(b1)
              and i2 = Option.get report.intervals.(b2) in
              if i1.lo <> i2.lo then compare i1.lo i2.lo else compare b1 b2)
            bs
        in
        (* PL001: strict disjointness of consecutive tenancies *)
        let rec overlaps = function
          | b1 :: (b2 :: _ as rest) ->
              let i1 = Option.get report.intervals.(b1)
              and i2 = Option.get report.intervals.(b2) in
              if i2.lo <= i1.hi then
                add
                  (D.error ~code:"PL001" (site b2)
                     "slot %d maps overlapping live ranges: %s live [%d, %d] and %s live \
                      [%d, %d]"
                     s (describe b1) i1.lo i1.hi (describe b2) i2.lo i2.hi);
              overlaps rest
          | _ -> ()
        in
        overlaps bs;
        (* PL002: simulate reads against the slot's write timeline *)
        let arr = Array.of_list bs in
        List.iter
          (fun b ->
            let iv = Option.get report.intervals.(b) in
            List.iter
              (fun t ->
                (* current tenant at time t: the latest def <= t *)
                let cur = ref None in
                Array.iter
                  (fun b' ->
                    let iv' = Option.get report.intervals.(b') in
                    if iv'.lo <= t then cur := Some (b', iv'.lo))
                  arr;
                match !cur with
                | Some (b', def') when b' <> b && def' > iv.lo ->
                    add
                      (D.error ~code:"PL002" (site b)
                         "%s is read at step %d but slot %d was overwritten at step %d by \
                          the %s"
                         (describe b) t s def' (describe b'))
                | _ -> ())
              report.reads.(b))
          bs)
      tenants
  end;
  List.rev !diags

let arena_spec report = { Plan.slot_sizes = report.slot_sizes; assign = report.assign }
let plan_chains report = report.chains
