module D = Diagnostic

(* ---------- frozen e-graphs ---------- *)

(* A frozen Egraph.t already passed Builder.freeze's validation, so the
   structural codes below (EG001/EG002/EG003) act as cross-checks against
   representation bugs; the feasibility codes (EG007/EG008) and the cost
   codes are where real findings live. *)
let check (g : Egraph.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let m = Egraph.num_classes g and n = Egraph.num_nodes g in
  (* root *)
  if g.Egraph.root < 0 || g.Egraph.root >= m then
    add (D.error ~code:"EG003" D.Graph "root e-class %d out of range (0..%d)" g.Egraph.root (m - 1))
  else if Array.length g.Egraph.class_nodes.(g.Egraph.root) = 0 then
    add (D.error ~code:"EG003" (D.Eclass g.Egraph.root) "root e-class has no e-nodes");
  (* empty classes *)
  for c = 0 to m - 1 do
    if Array.length g.Egraph.class_nodes.(c) = 0 && c <> g.Egraph.root then
      add (D.error ~code:"EG002" (D.Eclass c) "e-class has no e-nodes")
  done;
  (* per-node: child ranges and base costs *)
  for i = 0 to n - 1 do
    Array.iter
      (fun c ->
        if c < 0 || c >= m then
          add
            (D.error ~code:"EG001" (D.Enode i) "child e-class %d out of range (0..%d)" c (m - 1)))
      g.Egraph.children.(i);
    let cost = g.Egraph.costs.(i) in
    if not (Float.is_finite cost) then
      add
        (D.error ~code:"EG005" (D.Enode i) "non-finite base cost %s for `%s`"
           (string_of_float cost) g.Egraph.ops.(i))
    else if cost < 0.0 then
      add
        (D.warning ~code:"EG006" (D.Enode i)
           "negative base cost %g for `%s` (DAG cost may be unbounded below)" cost
           g.Egraph.ops.(i))
  done;
  (* reachability over the class graph *)
  if g.Egraph.root >= 0 && g.Egraph.root < m then begin
    let reach = Graph_algo.reachable g.Egraph.class_children [ g.Egraph.root ] in
    for c = 0 to m - 1 do
      if not reach.(c) then
        add (D.warning ~code:"EG004" (D.Eclass c) "e-class is unreachable from the root")
    done
  end;
  (* duplicate e-nodes within a class *)
  Array.iteri
    (fun c members ->
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun i ->
          let key =
            Printf.sprintf "%s|%s|%h" g.Egraph.ops.(i)
              (String.concat "," (Array.to_list (Array.map string_of_int g.Egraph.children.(i))))
              g.Egraph.costs.(i)
          in
          match Hashtbl.find_opt seen key with
          | Some first ->
              add
                (D.info ~code:"EG009" (D.Enode i)
                   "duplicate of e-node %d in e-class %d (`%s`, same children and cost)" first c
                   g.Egraph.ops.(i))
          | None -> Hashtbl.add seen key i)
        members)
    g.Egraph.class_nodes;
  (* cycles: EG007 fires iff Egraph.is_cyclic *)
  if Egraph.is_cyclic g then begin
    let scc_cyclic =
      Array.map
        (fun scc ->
          Array.length scc > 1
          || (Array.length scc = 1 && Array.mem scc.(0) g.Egraph.class_children.(scc.(0))))
        g.Egraph.sccs
    in
    let cyclic_sccs = Array.fold_left (fun n c -> if c then n + 1 else n) 0 scc_cyclic in
    let largest =
      Array.fold_left max 0
        (Array.mapi (fun k scc -> if scc_cyclic.(k) then Array.length scc else 0) g.Egraph.sccs)
    in
    add
      (D.info ~code:"EG007" D.Graph
         "class graph contains cycles (%d cyclic SCC%s, largest %d classes); extraction needs \
          cycle handling (acyclicity penalty or pruning)"
         cyclic_sccs
         (if cyclic_sccs = 1 then "" else "s")
         largest)
  end;
  (* EG008: acyclic derivability, the least fixpoint of "some member has
     all children derivable". A class outside the fixpoint — every member
     lies on a class-graph cycle — can never appear in an acyclic
     extraction. That is fatal for the root and merely informational
     elsewhere: bundled cyclic e-graphs contain such classes and the
     extractor just never selects them. Worklist over parent edges keeps
     this linear in the edge count. *)
  if m > 0 then begin
    let derivable = Array.make m false in
    let pending = Array.map (fun kids -> Array.length kids) g.Egraph.children in
    (* parents.(c) = e-nodes with c as a child, one entry per occurrence *)
    let parents = Array.make m [] in
    Array.iteri
      (fun i kids -> Array.iter (fun c -> if c >= 0 && c < m then parents.(c) <- i :: parents.(c)) kids)
      g.Egraph.children;
    let queue = Queue.create () in
    let derive c =
      if not derivable.(c) then begin
        derivable.(c) <- true;
        Queue.add c queue
      end
    in
    Array.iteri
      (fun i kids ->
        if Array.length kids = 0 && g.Egraph.node_class.(i) >= 0 then
          derive g.Egraph.node_class.(i))
      g.Egraph.children;
    while not (Queue.is_empty queue) do
      let c = Queue.pop queue in
      List.iter
        (fun i ->
          pending.(i) <- pending.(i) - 1;
          if pending.(i) = 0 then derive g.Egraph.node_class.(i))
        parents.(c)
    done;
    for c = 0 to m - 1 do
      if (not derivable.(c)) && Array.length g.Egraph.class_nodes.(c) > 0 then
        if c = g.Egraph.root then
          add
            (D.error ~code:"EG008" (D.Eclass c)
               "the root e-class is not acyclically derivable: every one of its %d e-node%s \
                lies on a class-graph cycle, so no valid extraction exists"
               (Array.length g.Egraph.class_nodes.(c))
               (if Array.length g.Egraph.class_nodes.(c) = 1 then "" else "s"))
        else
          add
            (D.info ~code:"EG008" (D.Eclass c)
               "not acyclically derivable (every member lies on a class-graph cycle): harmless \
                unless the extraction needs this e-class"
               )
    done
  end;
  D.sort !ds

let stats_line g =
  let s = Egraph.Stats.compute g in
  Printf.sprintf "%d nodes, %d classes, %d edges, density %.2e, %s (%d SCCs, largest %d)"
    s.Egraph.Stats.nodes s.Egraph.Stats.classes s.Egraph.Stats.edges s.Egraph.Stats.density
    (if s.Egraph.Stats.cyclic then "cyclic" else "acyclic")
    s.Egraph.Stats.scc_count s.Egraph.Stats.largest_scc

(* ---------- lenient text-format lint ---------- *)

type raw_node = { cls : int; cost : float; op : string; kids : int list; line : int }

(* Parses the Serial line format but never raises: everything
   Serial.of_string would reject with an exception becomes a coded,
   line-anchored diagnostic, and we keep going to report *all* defects
   in one pass rather than the first. *)
let check_source ?(name = "<input>") text =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let nodes = ref [] in
  let declared = ref 0 in
  let root = ref None in
  let parse_int what lineno s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> Some v
    | Some v ->
        add (D.error ~code:"EG010" (D.Line lineno) "negative %s %d" what v);
        None
    | None ->
        add (D.error ~code:"EG010" (D.Line lineno) "bad %s %S (expected an integer)" what s);
        None
  in
  let parse_line lineno line =
    let tokens = List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim line)) in
    match tokens with
    | [] -> ()
    | "egraph" :: _ -> ()
    | [ "classes"; k ] -> (
        match parse_int "class count" lineno k with
        | Some k -> declared := max !declared k
        | None -> ())
    | [ "root"; r ] -> (
        match parse_int "root class" lineno r with
        | None -> ()
        | Some r -> (
            match !root with
            | Some (first, first_line) ->
                add
                  (D.error ~code:"EG003" (D.Line lineno)
                     "duplicate root %d (root %d already declared on line %d)" r first first_line)
            | None -> root := Some (r, lineno)))
    | "node" :: cls :: cost :: op :: kids ->
        let cls = parse_int "e-class id" lineno cls in
        let cost =
          match float_of_string_opt cost with
          | Some c -> Some c
          | None ->
              add (D.error ~code:"EG010" (D.Line lineno) "bad cost %S (expected a float)" cost);
              None
        in
        let kids = List.map (parse_int "child class" lineno) kids in
        (match (cls, cost) with
        | Some cls, Some cost when List.for_all Option.is_some kids ->
            nodes := { cls; cost; op; kids = List.map Option.get kids; line = lineno } :: !nodes
        | _ -> ())
    | directive :: _ ->
        add (D.error ~code:"EG010" (D.Line lineno) "unrecognised directive %S" directive)
  in
  List.iteri (fun i line -> parse_line (i + 1) line) (String.split_on_char '\n' text);
  let nodes = List.rev !nodes in
  let num_classes =
    List.fold_left
      (fun m n -> List.fold_left max (max m (n.cls + 1)) (List.map (( + ) 1) n.kids))
      (max !declared (match !root with Some (r, _) -> r + 1 | None -> 0))
      nodes
  in
  let members = Array.make (max num_classes 1) 0 in
  List.iter (fun n -> members.(n.cls) <- members.(n.cls) + 1) nodes;
  (* dangling children: referenced classes that never receive an e-node,
     reported once, at the first referencing line *)
  let dangling = Hashtbl.create 8 in
  List.iter
    (fun n ->
      List.iter
        (fun k ->
          if members.(k) = 0 && not (Hashtbl.mem dangling k) then Hashtbl.add dangling k n.line)
        n.kids)
    nodes;
  Hashtbl.iter
    (fun k line ->
      add
        (D.error ~code:"EG001" (D.Line line)
           "child e-class %d has no e-nodes (dangling reference)" k))
    dangling;
  (match !root with
  | None -> add (D.error ~code:"EG003" D.Graph "no root declared")
  | Some (r, line) ->
      if r >= num_classes || members.(r) = 0 then
        add (D.error ~code:"EG003" (D.Line line) "root e-class %d has no e-nodes" r));
  (* unreachable classes: freeze silently strips them, so this is the
     only place they can be reported *)
  (match !root with
  | Some (r, _) when r < num_classes && members.(r) > 0 ->
      let adj = Array.make num_classes [] in
      List.iter (fun n -> adj.(n.cls) <- n.kids @ adj.(n.cls)) nodes;
      let adj = Array.map (fun l -> Array.of_list (List.sort_uniq Stdlib.compare l)) adj in
      let reach = Graph_algo.reachable adj [ r ] in
      Array.iteri
        (fun c m ->
          if m > 0 && not reach.(c) then
            add (D.warning ~code:"EG004" (D.Eclass c) "e-class is unreachable from the root"))
        members
  | _ -> ());
  let structural = !ds in
  if D.errors structural > 0 then begin
    (* cannot freeze; still surface cost defects from the raw nodes *)
    let cost_ds =
      List.concat_map
        (fun n ->
          if not (Float.is_finite n.cost) then
            [
              D.error ~code:"EG005" (D.Line n.line) "non-finite base cost %s for `%s`"
                (string_of_float n.cost) n.op;
            ]
          else if n.cost < 0.0 then
            [
              D.warning ~code:"EG006" (D.Line n.line) "negative base cost %g for `%s`" n.cost n.op;
            ]
          else [])
        nodes
    in
    (D.sort (structural @ cost_ds), None)
  end
  else
    let r = match !root with Some (r, _) -> r | None -> assert false in
    match
      let b = Egraph.Builder.create ~name () in
      while Egraph.Builder.num_classes b < num_classes do
        ignore (Egraph.Builder.add_class b)
      done;
      List.iter
        (fun n ->
          ignore (Egraph.Builder.add_node b ~cls:n.cls ~op:n.op ~cost:n.cost ~children:n.kids))
        nodes;
      Egraph.Builder.freeze b ~root:r
    with
    | g -> (D.sort (structural @ check g), Some g)
    | exception (Invalid_argument msg | Failure msg) ->
        (D.sort (structural @ [ D.error ~code:"EG010" D.Graph "freeze failed: %s" msg ]), None)

let check_file path =
  if Filename.check_suffix path ".json" then
    match Gym.read_file path with
    | g -> (check g, Some g)
    | exception (Failure msg | Invalid_argument msg | Sys_error msg) ->
        ([ D.error ~code:"EG010" D.Graph "cannot load %s: %s" path msg ], None)
    | exception Json.Parse_error msg ->
        ([ D.error ~code:"EG010" D.Graph "cannot parse %s: %s" path msg ], None)
  else
    match In_channel.with_open_text path In_channel.input_all with
    | text -> check_source ~name:path text
    | exception Sys_error msg -> ([ D.error ~code:"EG010" D.Graph "cannot read %s" msg ], None)
