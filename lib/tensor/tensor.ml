type t = { data : float array; batch : int; width : int }

module Backend = struct
  type mode = Vectorized | Scalar

  (* Domain-local: [Device.run] installs the mode around a whole
     extraction, and under the pool that extraction lives on one
     domain — per-domain state lets concurrent pool tasks run
     different backends (the phases sweep pits scalar against
     vectorised cases). Kernels read the mode once at entry, on the
     task's own domain, so the chunk bodies a Vectorized kernel fans
     out never re-read it. Fresh domains start Vectorized. *)
  let mode_key : mode ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref Vectorized)

  let set m = Domain.DLS.get mode_key := m
  let current () = !(Domain.DLS.get mode_key)

  let with_mode m f =
    let cell = Domain.DLS.get mode_key in
    let saved = !cell in
    cell := m;
    Fun.protect ~finally:(fun () -> cell := saved) f

  (* The Scalar execution model: every element access goes through an
     indirect call (a mutable function cell the compiler cannot inline,
     like an interpreter's dispatch) and boxes its result. This is the
     honest stand-in for the paper's unvectorised CPU baseline; the
     Vectorized mode reads flat arrays in fused loops. *)
  let scalar_read_cell : (float array -> int -> float) ref =
    ref (fun a i ->
        let r = ref (Array.get a i) in
        Sys.opaque_identity !r)

  let scalar_read a i = (Sys.opaque_identity !scalar_read_cell) a i

  let reader () =
    match current () with
    | Vectorized -> fun (a : float array) i -> Array.unsafe_get a i
    | Scalar -> scalar_read
end

(* Allocation accounting (8 bytes per float element). One branch when
   the observability sink is off; a counter bump when it is on. *)
let count_alloc n = if !Obs.on then Metrics.incr ~by:(float_of_int (8 * n)) "tensor.bytes_allocated"

let create ~batch ~width =
  count_alloc (batch * width);
  { data = Array.make (batch * width) 0.0; batch; width }

let full ~batch ~width x =
  count_alloc (batch * width);
  { data = Array.make (batch * width) x; batch; width }

let of_array ~batch ~width data =
  if Array.length data <> batch * width then
    invalid_arg
      (Printf.sprintf "Tensor.of_array: %d elements for shape (%d, %d)" (Array.length data) batch
         width);
  count_alloc (batch * width);
  { data; batch; width }

let of_row src =
  count_alloc (Array.length src);
  { data = Array.copy src; batch = 1; width = Array.length src }

let copy t =
  count_alloc (Array.length t.data);
  { t with data = Array.copy t.data }

let identity d =
  let t = create ~batch:d ~width:d in
  for i = 0 to d - 1 do
    t.data.((i * d) + i) <- 1.0
  done;
  t

let init ~batch ~width f =
  count_alloc (batch * width);
  let data = Array.make (batch * width) 0.0 in
  for b = 0 to batch - 1 do
    for i = 0 to width - 1 do
      data.((b * width) + i) <- f b i
    done
  done;
  { data; batch; width }

let get t b i = t.data.((b * t.width) + i)
let set t b i x = t.data.((b * t.width) + i) <- x
let numel t = t.batch * t.width
let row t b = Array.sub t.data (b * t.width) t.width
let blit_row ~src t b = Array.blit src 0 t.data (b * t.width) t.width
let fill t x = Array.fill t.data 0 (Array.length t.data) x
let unsafe_data t = t.data

let check_same_shape name a b =
  if a.batch <> b.batch || a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Tensor.%s: shape mismatch (%d,%d) vs (%d,%d)" name a.batch a.width b.batch
         b.width)

(* The Scalar backend goes element-by-element through a closure, with
   checked accesses and a boxed accumulator — an honest model of the
   paper's unvectorised CPU baseline, computing identical results; it
   stays sequential for the same reason. The Vectorized branches run
   under [Parallel.chunks]: elementwise bodies write disjoint indices,
   so any chunk schedule is bit-identical to the sequential loop. *)
let map2_named name f a b =
  check_same_shape name a b;
  let n = numel a in
  count_alloc n;
  let out = { data = Array.make n 0.0; batch = a.batch; width = a.width } in
  (match Backend.current () with
  | Backend.Vectorized ->
      let da = a.data and db = b.data and dd = out.data in
      Parallel.chunks n (fun lo hi ->
          for i = lo to hi - 1 do
            Array.unsafe_set dd i (f (Array.unsafe_get da i) (Array.unsafe_get db i))
          done)
  | Backend.Scalar ->
      for i = 0 to n - 1 do
        let x = Backend.scalar_read a.data i in
        let y = Backend.scalar_read b.data i in
        Array.set out.data i ((Sys.opaque_identity f) x y)
      done);
  out

let map f a =
  let n = numel a in
  count_alloc n;
  let out = { data = Array.make n 0.0; batch = a.batch; width = a.width } in
  (match Backend.current () with
  | Backend.Vectorized ->
      let da = a.data and dd = out.data in
      Parallel.chunks n (fun lo hi ->
          for i = lo to hi - 1 do
            Array.unsafe_set dd i (f (Array.unsafe_get da i))
          done)
  | Backend.Scalar ->
      for i = 0 to n - 1 do
        let x = Backend.scalar_read a.data i in
        Array.set out.data i ((Sys.opaque_identity f) x)
      done);
  out

let map2 f a b = map2_named "map2" f a b
let add a b = map2_named "add" ( +. ) a b
let sub a b = map2_named "sub" ( -. ) a b
let mul a b = map2_named "mul" ( *. ) a b
let div a b = map2_named "div" ( /. ) a b
let neg a = map (fun x -> -.x) a
let scale k a = map (fun x -> k *. x) a
let add_scalar k a = map (fun x -> k +. x) a
let relu a = map (fun x -> if x > 0.0 then x else 0.0) a
let exp a = map Stdlib.exp a

let log_floor = 1e-30

let log_safe a = map (fun x -> Stdlib.log (Float.max x log_floor)) a

let clamp ~lo ~hi a = map (fun x -> Float.min hi (Float.max lo x)) a

let add_inplace dst src =
  check_same_shape "add_inplace" dst src;
  let n = numel dst in
  match Backend.current () with
  | Backend.Vectorized ->
      Parallel.chunks n (fun lo hi ->
          for i = lo to hi - 1 do
            Array.unsafe_set dst.data i
              (Array.unsafe_get dst.data i +. Array.unsafe_get src.data i)
          done)
  | Backend.Scalar ->
      for i = 0 to n - 1 do
        let x = Backend.scalar_read dst.data i and y = Backend.scalar_read src.data i in
        Array.set dst.data i (x +. y)
      done

let axpy a x y =
  check_same_shape "axpy" x y;
  let n = numel x in
  match Backend.current () with
  | Backend.Vectorized ->
      Parallel.chunks n (fun lo hi ->
          for i = lo to hi - 1 do
            Array.unsafe_set y.data i
              ((a *. Array.unsafe_get x.data i) +. Array.unsafe_get y.data i)
          done)
  | Backend.Scalar ->
      for i = 0 to n - 1 do
        let xv = Backend.scalar_read x.data i and yv = Backend.scalar_read y.data i in
        Array.set y.data i ((a *. xv) +. yv)
      done

let scale_inplace k t =
  let n = numel t in
  Parallel.chunks n (fun lo hi ->
      for i = lo to hi - 1 do
        Array.unsafe_set t.data i (k *. Array.unsafe_get t.data i)
      done)

let sum t = Array.fold_left ( +. ) 0.0 t.data

let mean t =
  let n = numel t in
  if n = 0 then 0.0 else sum t /. float_of_int n

let max_value t = Array.fold_left Float.max neg_infinity t.data

let dot a b =
  check_same_shape "dot" a b;
  let acc = ref 0.0 in
  for i = 0 to numel a - 1 do
    acc := !acc +. (Array.unsafe_get a.data i *. Array.unsafe_get b.data i)
  done;
  !acc

let sum_rows t =
  let out = Array.make t.batch 0.0 in
  for b = 0 to t.batch - 1 do
    let acc = ref 0.0 in
    let base = b * t.width in
    for i = 0 to t.width - 1 do
      acc := !acc +. Array.unsafe_get t.data (base + i)
    done;
    out.(b) <- !acc
  done;
  out

let abs_max t = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 t.data

let all_finite t =
  let n = numel t in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    if not (Float.is_finite (Array.unsafe_get t.data !i)) then ok := false;
    incr i
  done;
  !ok

let norm1_matrix t =
  if t.batch <> t.width then invalid_arg "Tensor.norm1_matrix: not square";
  let d = t.width in
  let best = ref 0.0 in
  for j = 0 to d - 1 do
    let col = ref 0.0 in
    for i = 0 to d - 1 do
      col := !col +. Float.abs t.data.((i * d) + j)
    done;
    if !col > !best then best := !col
  done;
  !best

let mean_rows t =
  let out = create ~batch:1 ~width:t.width in
  let inv = 1.0 /. float_of_int (max 1 t.batch) in
  for b = 0 to t.batch - 1 do
    let base = b * t.width in
    for i = 0 to t.width - 1 do
      out.data.(i) <- out.data.(i) +. t.data.(base + i)
    done
  done;
  for i = 0 to t.width - 1 do
    out.data.(i) <- out.data.(i) *. inv
  done;
  out

let matmul_nt a b =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Tensor.matmul_nt: inner dims differ (%d vs %d)" a.width b.width);
  let p = a.batch and q = b.batch and n = a.width in
  let out = create ~batch:p ~width:q in
  (match Backend.current () with
  | Backend.Vectorized ->
      (* chunk over output rows: each writes its own slice, and the
         per-row accumulation order never changes *)
      let row_cost = Stdlib.max 1 (q * n) in
      Parallel.chunks
        ~grain:(Stdlib.max 1 (Parallel.default_grain / row_cost))
        ~cost:row_cost p
        (fun ilo ihi ->
          for i = ilo to ihi - 1 do
            let abase = i * n in
            for j = 0 to q - 1 do
              let bbase = j * n in
              let acc = ref 0.0 in
              for k = 0 to n - 1 do
                acc :=
                  !acc
                  +. (Array.unsafe_get a.data (abase + k) *. Array.unsafe_get b.data (bbase + k))
              done;
              out.data.((i * q) + j) <- !acc
            done
          done)
  | Backend.Scalar ->
      let read = Backend.scalar_read in
      let dot_row i j =
        let acc = ref 0.0 in
        for k = 0 to n - 1 do
          acc := !acc +. (read a.data ((i * n) + k) *. read b.data ((j * n) + k))
        done;
        !acc
      in
      for i = 0 to p - 1 do
        for j = 0 to q - 1 do
          Array.set out.data ((i * q) + j) (dot_row i j)
        done
      done);
  out

let transpose t =
  let out = create ~batch:t.width ~width:t.batch in
  for b = 0 to t.batch - 1 do
    for i = 0 to t.width - 1 do
      out.data.((i * t.batch) + b) <- t.data.((b * t.width) + i)
    done
  done;
  out

let matmul a b = matmul_nt a (transpose b)

(* ---- Preallocated (_into) kernels ---------------------------------

   The plan replay engine (lib/autodiff/plan) re-runs a captured op
   graph with zero per-iteration tensor allocation. These kernels
   write into caller-owned output tensors and reproduce the allocating
   kernels' arithmetic exactly — same expression trees, same
   accumulation order, both backends — so a replayed iteration is
   bit-identical to the interpreted one. None of them bump
   [tensor.bytes_allocated]. *)

let map_into_named name f ~out a =
  check_same_shape name out a;
  let n = numel a in
  match Backend.current () with
  | Backend.Vectorized ->
      let da = a.data and dd = out.data in
      Parallel.chunks n (fun lo hi ->
          for i = lo to hi - 1 do
            Array.unsafe_set dd i (f (Array.unsafe_get da i))
          done)
  | Backend.Scalar ->
      for i = 0 to n - 1 do
        let x = Backend.scalar_read a.data i in
        Array.set out.data i ((Sys.opaque_identity f) x)
      done

let map2_into_named name f ~out a b =
  check_same_shape name a b;
  check_same_shape name out a;
  let n = numel a in
  match Backend.current () with
  | Backend.Vectorized ->
      let da = a.data and db = b.data and dd = out.data in
      Parallel.chunks n (fun lo hi ->
          for i = lo to hi - 1 do
            Array.unsafe_set dd i (f (Array.unsafe_get da i) (Array.unsafe_get db i))
          done)
  | Backend.Scalar ->
      for i = 0 to n - 1 do
        let x = Backend.scalar_read a.data i in
        let y = Backend.scalar_read b.data i in
        Array.set out.data i ((Sys.opaque_identity f) x y)
      done

let copy_into ~out src =
  check_same_shape "copy_into" out src;
  Array.blit src.data 0 out.data 0 (numel src)

let add_into ~out a b = map2_into_named "add_into" ( +. ) ~out a b
let sub_into ~out a b = map2_into_named "sub_into" ( -. ) ~out a b
let mul_into ~out a b = map2_into_named "mul_into" ( *. ) ~out a b
let neg_into ~out a = map_into_named "neg_into" (fun x -> -.x) ~out a
let scale_into ~out k a = map_into_named "scale_into" (fun x -> k *. x) ~out a
let add_scalar_into ~out k a = map_into_named "add_scalar_into" (fun x -> k +. x) ~out a
let relu_into ~out a = map_into_named "relu_into" (fun x -> if x > 0.0 then x else 0.0) ~out a

let transpose_into ~out t =
  if out.batch <> t.width || out.width <> t.batch then
    invalid_arg
      (Printf.sprintf "Tensor.transpose_into: out (%d,%d) for input (%d,%d)" out.batch out.width
         t.batch t.width);
  if out.data == t.data then invalid_arg "Tensor.transpose_into: out aliases input";
  for b = 0 to t.batch - 1 do
    for i = 0 to t.width - 1 do
      out.data.((i * t.batch) + b) <- t.data.((b * t.width) + i)
    done
  done

let matmul_nt_into ~out a b =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Tensor.matmul_nt_into: inner dims differ (%d vs %d)" a.width b.width);
  if out.batch <> a.batch || out.width <> b.batch then
    invalid_arg
      (Printf.sprintf "Tensor.matmul_nt_into: out (%d,%d) for result (%d,%d)" out.batch out.width
         a.batch b.batch);
  if out.data == a.data || out.data == b.data then
    invalid_arg "Tensor.matmul_nt_into: out aliases an input";
  let p = a.batch and q = b.batch and n = a.width in
  match Backend.current () with
  | Backend.Vectorized ->
      let row_cost = Stdlib.max 1 (q * n) in
      Parallel.chunks
        ~grain:(Stdlib.max 1 (Parallel.default_grain / row_cost))
        ~cost:row_cost p
        (fun ilo ihi ->
          for i = ilo to ihi - 1 do
            let abase = i * n in
            for j = 0 to q - 1 do
              let bbase = j * n in
              let acc = ref 0.0 in
              for k = 0 to n - 1 do
                acc :=
                  !acc
                  +. (Array.unsafe_get a.data (abase + k) *. Array.unsafe_get b.data (bbase + k))
              done;
              out.data.((i * q) + j) <- !acc
            done
          done)
  | Backend.Scalar ->
      let read = Backend.scalar_read in
      let dot_row i j =
        let acc = ref 0.0 in
        for k = 0 to n - 1 do
          acc := !acc +. (read a.data ((i * n) + k) *. read b.data ((j * n) + k))
        done;
        !acc
      in
      for i = 0 to p - 1 do
        for j = 0 to q - 1 do
          Array.set out.data ((i * q) + j) (dot_row i j)
        done
      done

let bits_equal a b =
  a.batch = b.batch && a.width = b.width
  &&
  let n = numel a in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    if
      Int64.bits_of_float (Array.unsafe_get a.data !i)
      <> Int64.bits_of_float (Array.unsafe_get b.data !i)
    then ok := false;
    incr i
  done;
  !ok

module Lu = struct
  type factors = { lu : t; perm : int array }

  (* Shared elimination core: factor the square matrix held in [m]
     (row-major, dimension [d]) in place, recording row swaps in
     [perm]. *)
  let factorize m perm d =
    for k = 0 to d - 1 do
      (* Partial pivoting: bring the largest remaining |entry| of column k up. *)
      let pivot = ref k in
      let best = ref (Float.abs m.((k * d) + k)) in
      for i = k + 1 to d - 1 do
        let v = Float.abs m.((i * d) + k) in
        if v > !best then begin
          best := v;
          pivot := i
        end
      done;
      if !best < 1e-14 then failwith "Lu.decompose: singular matrix";
      if !pivot <> k then begin
        for j = 0 to d - 1 do
          let tmp = m.((k * d) + j) in
          m.((k * d) + j) <- m.((!pivot * d) + j);
          m.((!pivot * d) + j) <- tmp
        done;
        let tp = perm.(k) in
        perm.(k) <- perm.(!pivot);
        perm.(!pivot) <- tp
      end;
      let pk = m.((k * d) + k) in
      (match Backend.current () with
      | Backend.Vectorized ->
          for i = k + 1 to d - 1 do
            let factor = Array.unsafe_get m ((i * d) + k) /. pk in
            m.((i * d) + k) <- factor;
            for j = k + 1 to d - 1 do
              Array.unsafe_set m ((i * d) + j)
                (Array.unsafe_get m ((i * d) + j) -. (factor *. Array.unsafe_get m ((k * d) + j)))
            done
          done
      | Backend.Scalar ->
          let read = Backend.scalar_read in
          for i = k + 1 to d - 1 do
            let factor = read m ((i * d) + k) /. pk in
            m.((i * d) + k) <- factor;
            for j = k + 1 to d - 1 do
              Array.set m ((i * d) + j) (read m ((i * d) + j) -. (factor *. read m ((k * d) + j)))
            done
          done)
    done

  let decompose a =
    if a.batch <> a.width then invalid_arg "Lu.decompose: not square";
    let d = a.width in
    let lu = copy a in
    let perm = Array.init d (fun i -> i) in
    factorize lu.data perm d;
    { lu; perm }

  let preallocate d =
    if d < 1 then invalid_arg "Lu.preallocate: dimension must be positive";
    { lu = create ~batch:d ~width:d; perm = Array.init d (fun i -> i) }

  let decompose_into f a =
    if a.batch <> a.width then invalid_arg "Lu.decompose_into: not square";
    check_same_shape "Lu.decompose_into" f.lu a;
    let d = a.width in
    Array.blit a.data 0 f.lu.data 0 (numel a);
    for i = 0 to d - 1 do
      f.perm.(i) <- i
    done;
    factorize f.lu.data f.perm d

  let solve_into ~out f b =
    let d = f.lu.width in
    if b.batch <> d then invalid_arg "Lu.solve_into: rhs row count mismatch";
    check_same_shape "Lu.solve_into" out b;
    let cols = b.width in
    let m = f.lu.data in
    let x = out in
    (* Apply the row permutation, then forward- and back-substitute. *)
    for i = 0 to d - 1 do
      Array.blit b.data (f.perm.(i) * cols) x.data (i * cols) cols
    done;
    let read = Backend.reader () in
    for i = 1 to d - 1 do
      for k = 0 to i - 1 do
        let lik = m.((i * d) + k) in
        if lik <> 0.0 then
          for c = 0 to cols - 1 do
            x.data.((i * cols) + c) <- read x.data ((i * cols) + c) -. (lik *. read x.data ((k * cols) + c))
          done
      done
    done;
    for i = d - 1 downto 0 do
      for k = i + 1 to d - 1 do
        let uik = m.((i * d) + k) in
        if uik <> 0.0 then
          for c = 0 to cols - 1 do
            x.data.((i * cols) + c) <- read x.data ((i * cols) + c) -. (uik *. read x.data ((k * cols) + c))
          done
      done;
      let uii = m.((i * d) + i) in
      for c = 0 to cols - 1 do
        x.data.((i * cols) + c) <- read x.data ((i * cols) + c) /. uii
      done
    done

  let solve f b =
    let x = create ~batch:f.lu.width ~width:b.width in
    solve_into ~out:x f b;
    x
end

module Matfun = struct
  let trace t =
    if t.batch <> t.width then invalid_arg "Matfun.trace: not square";
    let d = t.width in
    let acc = ref 0.0 in
    for i = 0 to d - 1 do
      acc := !acc +. t.data.((i * d) + i)
    done;
    !acc

  (* Degree-13 Padé coefficients (Higham, "The scaling and squaring method
     for the matrix exponential revisited", 2005). *)
  let pade13 =
    [|
      64764752532480000.0;
      32382376266240000.0;
      7771770303897600.0;
      1187353796428800.0;
      129060195264000.0;
      10559470521600.0;
      670442572800.0;
      33522128640.0;
      1323241920.0;
      40840800.0;
      960960.0;
      16380.0;
      182.0;
      1.0;
    |]

  let theta13 = 5.371920351148152

  let expm a =
    if a.batch <> a.width then invalid_arg "Matfun.expm: not square";
    let d = a.width in
    if d = 0 then create ~batch:0 ~width:0
    else if d = 1 then of_array ~batch:1 ~width:1 [| Stdlib.exp a.data.(0) |]
    else begin
      let norm = norm1_matrix a in
      let s =
        if norm <= theta13 then 0
        else int_of_float (Float.ceil (Float.log (norm /. theta13) /. Float.log 2.0))
      in
      if !Obs.on then begin
        Metrics.incr "tensor.matexp_calls";
        Metrics.incr ~by:(float_of_int s) "tensor.matexp_squarings";
        Metrics.observe "tensor.matexp_dim" (float_of_int d)
      end;
      let x = if s = 0 then copy a else scale (1.0 /. (2.0 ** float_of_int s)) a in
      let b = pade13 in
      let eye = identity d in
      let x2 = matmul x x in
      let x4 = matmul x2 x2 in
      let x6 = matmul x2 x4 in
      (* U = X (X6 (b13 X6 + b11 X4 + b9 X2) + b7 X6 + b5 X4 + b3 X2 + b1 I) *)
      let inner_u =
        let acc = scale b.(13) x6 in
        axpy b.(11) x4 acc;
        axpy b.(9) x2 acc;
        acc
      in
      let u_body = matmul x6 inner_u in
      axpy b.(7) x6 u_body;
      axpy b.(5) x4 u_body;
      axpy b.(3) x2 u_body;
      axpy b.(1) eye u_body;
      let u = matmul x u_body in
      (* V = X6 (b12 X6 + b10 X4 + b8 X2) + b6 X6 + b4 X4 + b2 X2 + b0 I *)
      let inner_v =
        let acc = scale b.(12) x6 in
        axpy b.(10) x4 acc;
        axpy b.(8) x2 acc;
        acc
      in
      let v = matmul x6 inner_v in
      axpy b.(6) x6 v;
      axpy b.(4) x4 v;
      axpy b.(2) x2 v;
      axpy b.(0) eye v;
      (* r = (V - U)^{-1} (V + U), then repeated squaring undoes the scaling. *)
      let vmu = sub v u in
      let vpu = add v u in
      let r = ref (Lu.solve (Lu.decompose vmu) vpu) in
      for _ = 1 to s do
        r := matmul !r !r
      done;
      !r
    end

  (* Preallocated workspace for [expm_into]: every intermediate the
     allocating [expm] creates, owned by the caller and reused across
     iterations. [w_tt] is the shared transpose scratch behind the
     matmul-via-[matmul_nt] steps; [w_r0]/[w_r1] alternate through the
     squaring phase, so the result lands in one of them — valid until
     the next [expm_into] call on this workspace. *)
  type ws = {
    wdim : int;
    w_x : t;
    w_tt : t;
    w_x2 : t;
    w_x4 : t;
    w_x6 : t;
    w_acc_u : t;
    w_u_body : t;
    w_u : t;
    w_acc_v : t;
    w_v : t;
    w_vmu : t;
    w_vpu : t;
    w_eye : t;
    w_lu : Lu.factors;
    w_r0 : t;
    w_r1 : t;
  }

  let workspace d =
    if d < 1 then invalid_arg "Matfun.workspace: dimension must be positive";
    let sq () = create ~batch:d ~width:d in
    {
      wdim = d;
      w_x = sq ();
      w_tt = sq ();
      w_x2 = sq ();
      w_x4 = sq ();
      w_x6 = sq ();
      w_acc_u = sq ();
      w_u_body = sq ();
      w_u = sq ();
      w_acc_v = sq ();
      w_v = sq ();
      w_vmu = sq ();
      w_vpu = sq ();
      w_eye = identity d;
      w_lu = Lu.preallocate d;
      w_r0 = sq ();
      w_r1 = sq ();
    }

  let expm_into ws a =
    if a.batch <> a.width then invalid_arg "Matfun.expm_into: not square";
    if a.width <> ws.wdim then
      invalid_arg
        (Printf.sprintf "Matfun.expm_into: workspace dim %d for input dim %d" ws.wdim a.width);
    let d = a.width in
    if d = 1 then begin
      ws.w_r0.data.(0) <- Stdlib.exp a.data.(0);
      ws.w_r0
    end
    else begin
      let norm = norm1_matrix a in
      let s =
        if norm <= theta13 then 0
        else int_of_float (Float.ceil (Float.log (norm /. theta13) /. Float.log 2.0))
      in
      if !Obs.on then begin
        Metrics.incr "tensor.matexp_calls";
        Metrics.incr ~by:(float_of_int s) "tensor.matexp_squarings";
        Metrics.observe "tensor.matexp_dim" (float_of_int d)
      end;
      (* matmul via the shared transpose scratch, mirroring
         [matmul a b = matmul_nt a (transpose b)] *)
      let mm out a b =
        transpose_into ~out:ws.w_tt b;
        matmul_nt_into ~out a ws.w_tt
      in
      let x = ws.w_x in
      if s = 0 then copy_into ~out:x a else scale_into ~out:x (1.0 /. (2.0 ** float_of_int s)) a;
      let b = pade13 in
      let eye = ws.w_eye in
      let x2 = ws.w_x2 and x4 = ws.w_x4 and x6 = ws.w_x6 in
      mm x2 x x;
      mm x4 x2 x2;
      mm x6 x2 x4;
      let inner_u = ws.w_acc_u in
      scale_into ~out:inner_u b.(13) x6;
      axpy b.(11) x4 inner_u;
      axpy b.(9) x2 inner_u;
      let u_body = ws.w_u_body in
      mm u_body x6 inner_u;
      axpy b.(7) x6 u_body;
      axpy b.(5) x4 u_body;
      axpy b.(3) x2 u_body;
      axpy b.(1) eye u_body;
      let u = ws.w_u in
      mm u x u_body;
      let inner_v = ws.w_acc_v in
      scale_into ~out:inner_v b.(12) x6;
      axpy b.(10) x4 inner_v;
      axpy b.(8) x2 inner_v;
      let v = ws.w_v in
      mm v x6 inner_v;
      axpy b.(6) x6 v;
      axpy b.(4) x4 v;
      axpy b.(2) x2 v;
      axpy b.(0) eye v;
      sub_into ~out:ws.w_vmu v u;
      add_into ~out:ws.w_vpu v u;
      Lu.decompose_into ws.w_lu ws.w_vmu;
      Lu.solve_into ~out:ws.w_r0 ws.w_lu ws.w_vpu;
      let cur = ref ws.w_r0 and other = ref ws.w_r1 in
      for _ = 1 to s do
        mm !other !cur !cur;
        let tmp = !cur in
        cur := !other;
        other := tmp
      done;
      !cur
    end
end

let pp fmt t =
  Format.fprintf fmt "@[<v>tensor (%d, %d)" t.batch t.width;
  let max_rows = min t.batch 6 and max_cols = min t.width 10 in
  for b = 0 to max_rows - 1 do
    Format.fprintf fmt "@,[";
    for i = 0 to max_cols - 1 do
      Format.fprintf fmt "%s%.4g" (if i > 0 then "; " else "") (get t b i)
    done;
    if t.width > max_cols then Format.fprintf fmt "; ...";
    Format.fprintf fmt "]"
  done;
  if t.batch > max_rows then Format.fprintf fmt "@,...";
  Format.fprintf fmt "@]"
