type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let of_coo ~rows ~cols triplets =
  let check (r, c, _) =
    if r < 0 || r >= rows || c < 0 || c >= cols then
      invalid_arg (Printf.sprintf "Csr.of_coo: entry (%d,%d) outside %dx%d" r c rows cols)
  in
  List.iter check triplets;
  (* Sort by (row, col) then merge duplicates. *)
  let sorted =
    List.sort
      (fun (r1, c1, _) (r2, c2, _) -> if r1 <> r2 then compare r1 r2 else compare c1 c2)
      triplets
  in
  let merged = Vec.create () in
  List.iter
    (fun (r, c, v) ->
      if
        (not (Vec.is_empty merged))
        &&
        let r0, c0, _ = Vec.last merged in
        r0 = r && c0 = c
      then begin
        let r0, c0, v0 = Vec.pop merged in
        Vec.push merged (r0, c0, v0 +. v)
      end
      else Vec.push merged (r, c, v))
    sorted;
  let n = Vec.length merged in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make n 0 in
  let values = Array.make n 0.0 in
  Vec.iteri
    (fun k (r, c, v) ->
      row_ptr.(r + 1) <- row_ptr.(r + 1) + 1;
      col_idx.(k) <- c;
      values.(k) <- v)
    merged;
  for r = 0 to rows - 1 do
    row_ptr.(r + 1) <- row_ptr.(r + 1) + row_ptr.(r)
  done;
  { rows; cols; row_ptr; col_idx; values }

let of_incidence ~rows ~cols pairs =
  let dedup = Hashtbl.create (List.length pairs) in
  List.iter (fun (r, c) -> Hashtbl.replace dedup (r, c) ()) pairs;
  let triplets = Hashtbl.fold (fun (r, c) () acc -> (r, c, 1.0) :: acc) dedup [] in
  of_coo ~rows ~cols triplets

let nnz a = Array.length a.values

let density a =
  let cells = a.rows * a.cols in
  if cells = 0 then 0.0 else float_of_int (nnz a) /. float_of_int cells

let spmv a x =
  if Array.length x <> a.cols then invalid_arg "Csr.spmv: dimension mismatch";
  let y = Array.make a.rows 0.0 in
  for r = 0 to a.rows - 1 do
    let acc = ref 0.0 in
    for k = a.row_ptr.(r) to a.row_ptr.(r + 1) - 1 do
      acc := !acc +. (a.values.(k) *. x.(a.col_idx.(k)))
    done;
    y.(r) <- !acc
  done;
  y

let spmv_t a x =
  if Array.length x <> a.rows then invalid_arg "Csr.spmv_t: dimension mismatch";
  let y = Array.make a.cols 0.0 in
  for r = 0 to a.rows - 1 do
    let xr = x.(r) in
    if xr <> 0.0 then
      for k = a.row_ptr.(r) to a.row_ptr.(r + 1) - 1 do
        let c = a.col_idx.(k) in
        y.(c) <- y.(c) +. (a.values.(k) *. xr)
      done
  done;
  y

let spmm_batched a x =
  if x.Tensor.width <> a.cols then invalid_arg "Csr.spmm_batched: dimension mismatch";
  let out = Tensor.create ~batch:x.Tensor.batch ~width:a.rows in
  let src = Tensor.unsafe_data x and dst = Tensor.unsafe_data out in
  for b = 0 to x.Tensor.batch - 1 do
    let sbase = b * a.cols and dbase = b * a.rows in
    for r = 0 to a.rows - 1 do
      let acc = ref 0.0 in
      for k = a.row_ptr.(r) to a.row_ptr.(r + 1) - 1 do
        acc := !acc +. (a.values.(k) *. src.(sbase + a.col_idx.(k)))
      done;
      dst.(dbase + r) <- !acc
    done
  done;
  out

let transpose a =
  let triplets = ref [] in
  for r = 0 to a.rows - 1 do
    for k = a.row_ptr.(r) to a.row_ptr.(r + 1) - 1 do
      triplets := (a.col_idx.(k), r, a.values.(k)) :: !triplets
    done
  done;
  of_coo ~rows:a.cols ~cols:a.rows !triplets

let to_dense a =
  let out = Tensor.create ~batch:a.rows ~width:a.cols in
  for r = 0 to a.rows - 1 do
    for k = a.row_ptr.(r) to a.row_ptr.(r + 1) - 1 do
      Tensor.set out r a.col_idx.(k) a.values.(k)
    done
  done;
  out

let row_entries a r =
  let acc = ref [] in
  for k = a.row_ptr.(r + 1) - 1 downto a.row_ptr.(r) do
    acc := (a.col_idx.(k), a.values.(k)) :: !acc
  done;
  !acc
