(** Compressed sparse row matrices.

    The paper represents the e-class↔e-node incidence maps ec(i), ch_i
    and pa_j as sparse {0,1} tensors and performs the probability
    translations as SpMV (§4.1). This module provides that
    representation; the hot SmoothE path additionally uses the fused
    kernels in {!Segments}, which are SpMV specialised to incidence
    structure, and the test-suite cross-checks the two against each
    other. *)

type t = private {
  rows : int;
  cols : int;
  row_ptr : int array;  (** length rows+1 *)
  col_idx : int array;
  values : float array;
}

val of_coo : rows:int -> cols:int -> (int * int * float) list -> t
(** Build from coordinate triplets; duplicate coordinates are summed. *)

val of_incidence : rows:int -> cols:int -> (int * int) list -> t
(** {0,1} matrix from a membership list. Duplicates collapse to 1. *)

val nnz : t -> int
val density : t -> float

val spmv : t -> float array -> float array
(** [spmv a x] is the dense product [a·x]. *)

val spmv_t : t -> float array -> float array
(** [spmv_t a x] is [aᵀ·x] without materialising the transpose. *)

val spmm_batched : t -> Tensor.t -> Tensor.t
(** [spmm_batched a x] with [x : (B, cols)] treats each batch row as a
    vector and returns [(B, rows)] — batched SpMV, the seed-batched
    formulation of §4.2. *)

val transpose : t -> t
val to_dense : t -> Tensor.t
val row_entries : t -> int -> (int * float) list
