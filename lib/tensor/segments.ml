type t = {
  starts : int array;
  lens : int array;
  width : int;
  mutable owners : int array option;  (* cache for seg_of_index *)
}

let of_lens lens =
  let count = Array.length lens in
  let starts = Array.make count 0 in
  let acc = ref 0 in
  for s = 0 to count - 1 do
    if lens.(s) < 0 then invalid_arg "Segments.of_lens: negative length";
    starts.(s) <- !acc;
    acc := !acc + lens.(s)
  done;
  { starts; lens; width = !acc; owners = None }

let count seg = Array.length seg.starts
let seg_len seg s = seg.lens.(s)

(* Guards the [owners] cache of every segmentation. Always taken — an
   unsynchronised fast-path read of the [Some] could observe the
   option before the array contents under the OCaml memory model —
   and cold (once per AD tape node, not per element). *)
let owners_lock = Mutex.create ()

let seg_of_index seg =
  Mutex.protect owners_lock (fun () ->
      match seg.owners with
      | Some owner -> owner
      | None ->
          let owner = Array.make seg.width (-1) in
          for s = 0 to count seg - 1 do
            for i = seg.starts.(s) to seg.starts.(s) + seg.lens.(s) - 1 do
              owner.(i) <- s
            done
          done;
          seg.owners <- Some owner;
          owner)

let reader = Tensor.Backend.reader

(* Segment-kernel launch counter: one bump per entry point, labelled by
   op, so runs can report how many segment ops an extraction issued. *)
let count_op name =
  if !Obs.on then begin
    Metrics.incr "tensor.segment_ops";
    Metrics.incr ("tensor.segment_ops." ^ name)
  end

(* Segment kernels chunk over batch *rows*: each row reads and writes
   its own slice, so any row schedule is bit-identical to the
   sequential loop (per-element accumulation order within a row never
   changes). Grain keeps chunks near [Parallel.default_grain] elements
   of actual work; [~cost] makes the sequential cutoff count elements
   too, not rows. *)
let row_grain width = Stdlib.max 1 (Parallel.default_grain / Stdlib.max 1 width)

let by_rows width batch body =
  Parallel.chunks ~grain:(row_grain width) ~cost:(Stdlib.max 1 width) batch body

let check_width name seg (x : Tensor.t) =
  if x.Tensor.width <> seg.width then
    invalid_arg
      (Printf.sprintf "Segments.%s: tensor width %d, segments cover %d" name x.Tensor.width
         seg.width)

(* Each kernel has a preallocated [_into] core (used directly by the
   plan replay engine — no allocation, same launch counters) and an
   allocating wrapper. The cores write every element of [out] that any
   segment covers; since segments tile [0, width), coverage is total
   for the same-width kernels, and the reduction kernels write every
   (row, segment) cell — so reusing an output buffer across calls is
   safe. *)

let check_out name (out : Tensor.t) ~batch ~width =
  if out.Tensor.batch <> batch || out.Tensor.width <> width then
    invalid_arg
      (Printf.sprintf "Segments.%s: out (%d,%d), expected (%d,%d)" name out.Tensor.batch
         out.Tensor.width batch width)

let softmax_into ~out x seg =
  check_width "softmax" seg x;
  check_out "softmax_into" out ~batch:x.Tensor.batch ~width:x.Tensor.width;
  count_op "softmax";
  let src = Tensor.unsafe_data x and dst = Tensor.unsafe_data out in
  let get = reader () in
  let w = seg.width in
  by_rows w x.Tensor.batch (fun blo bhi ->
      for b = blo to bhi - 1 do
        let base = b * w in
        for s = 0 to count seg - 1 do
          let start = base + seg.starts.(s) and len = seg.lens.(s) in
          if len > 0 then begin
            let m = ref neg_infinity in
            for i = start to start + len - 1 do
              let v = get src i in
              if v > !m then m := v
            done;
            let z = ref 0.0 in
            for i = start to start + len - 1 do
              let e = Stdlib.exp (get src i -. !m) in
              dst.(i) <- e;
              z := !z +. e
            done;
            let inv = 1.0 /. !z in
            for i = start to start + len - 1 do
              dst.(i) <- dst.(i) *. inv
            done
          end
        done
      done)

let softmax x seg =
  let out = Tensor.create ~batch:x.Tensor.batch ~width:x.Tensor.width in
  softmax_into ~out x seg;
  out

let sum_into ~out x seg =
  check_width "sum" seg x;
  let nsegs = count seg in
  check_out "sum_into" out ~batch:x.Tensor.batch ~width:nsegs;
  count_op "sum";
  let src = Tensor.unsafe_data x and dst = Tensor.unsafe_data out in
  let get = reader () in
  let w = seg.width in
  by_rows w x.Tensor.batch (fun blo bhi ->
      for b = blo to bhi - 1 do
        let base = b * w in
        for s = 0 to nsegs - 1 do
          let start = base + seg.starts.(s) and len = seg.lens.(s) in
          let acc = ref 0.0 in
          for i = start to start + len - 1 do
            acc := !acc +. get src i
          done;
          dst.((b * nsegs) + s) <- !acc
        done
      done)

let sum x seg =
  let out = Tensor.create ~batch:x.Tensor.batch ~width:(count seg) in
  sum_into ~out x seg;
  out

let prod_into ~out x seg =
  check_width "prod" seg x;
  let nsegs = count seg in
  check_out "prod_into" out ~batch:x.Tensor.batch ~width:nsegs;
  count_op "prod";
  let src = Tensor.unsafe_data x and dst = Tensor.unsafe_data out in
  let get = reader () in
  let w = seg.width in
  by_rows w x.Tensor.batch (fun blo bhi ->
      for b = blo to bhi - 1 do
        let base = b * w in
        for s = 0 to nsegs - 1 do
          let start = base + seg.starts.(s) and len = seg.lens.(s) in
          let acc = ref 1.0 in
          for i = start to start + len - 1 do
            acc := !acc *. get src i
          done;
          dst.((b * nsegs) + s) <- !acc
        done
      done)

let prod x seg =
  let out = Tensor.create ~batch:x.Tensor.batch ~width:(count seg) in
  prod_into ~out x seg;
  out

(* product-of-others via prefix/suffix sweeps: robust when a segment
   contains zeros, where dividing the full product back out would fail.
   Zero-length segments cover no positions, so the total-coverage
   argument above still holds. *)
let prod_grad_scratch_into ~out x seg =
  check_width "prod_grad_scratch" seg x;
  check_out "prod_grad_scratch_into" out ~batch:x.Tensor.batch ~width:x.Tensor.width;
  count_op "prod_grad_scratch";
  let src = Tensor.unsafe_data x and dst = Tensor.unsafe_data out in
  let get = reader () in
  let w = seg.width in
  by_rows w x.Tensor.batch (fun blo bhi ->
      for b = blo to bhi - 1 do
        let base = b * w in
        for s = 0 to count seg - 1 do
          let start = base + seg.starts.(s) and len = seg.lens.(s) in
          if len > 0 then begin
            (* forward pass: dst.(i) holds the product of elements before i *)
            let acc = ref 1.0 in
            for i = start to start + len - 1 do
              dst.(i) <- !acc;
              acc := !acc *. get src i
            done;
            (* backward pass: multiply in the product of elements after i *)
            let acc = ref 1.0 in
            for i = start + len - 1 downto start do
              dst.(i) <- dst.(i) *. !acc;
              acc := !acc *. get src i
            done
          end
        done
      done)

let prod_grad_scratch x seg =
  let out = Tensor.create ~batch:x.Tensor.batch ~width:x.Tensor.width in
  prod_grad_scratch_into ~out x seg;
  out

let max_into ~out ~arg x seg =
  check_width "max" seg x;
  let nsegs = count seg in
  check_out "max_into" out ~batch:x.Tensor.batch ~width:nsegs;
  if Array.length arg <> x.Tensor.batch * nsegs then
    invalid_arg "Segments.max_into: argmax array length mismatch";
  count_op "max";
  let src = Tensor.unsafe_data x and dst = Tensor.unsafe_data out in
  let get = reader () in
  let w = seg.width in
  by_rows w x.Tensor.batch (fun blo bhi ->
      for b = blo to bhi - 1 do
        let base = b * w in
        for s = 0 to nsegs - 1 do
          let start = base + seg.starts.(s) and len = seg.lens.(s) in
          if len = 0 then begin
            dst.((b * nsegs) + s) <- 0.0;
            arg.((b * nsegs) + s) <- -1
          end
          else begin
            let best = ref (get src start) and besti = ref start in
            for i = start + 1 to start + len - 1 do
              let v = get src i in
              if v > !best then begin
                best := v;
                besti := i
              end
            done;
            dst.((b * nsegs) + s) <- !best;
            arg.((b * nsegs) + s) <- !besti
          end
        done
      done)

let max x seg =
  let nsegs = count seg in
  let out = Tensor.create ~batch:x.Tensor.batch ~width:nsegs in
  let arg = Array.make (x.Tensor.batch * nsegs) (-1) in
  max_into ~out ~arg x seg;
  out, arg

let gather_into ~out src idx =
  let n = Array.length idx in
  check_out "gather_into" out ~batch:src.Tensor.batch ~width:n;
  count_op "gather";
  let s = Tensor.unsafe_data src and d = Tensor.unsafe_data out in
  let m = src.Tensor.width in
  (match Tensor.Backend.current () with
  | Tensor.Backend.Vectorized ->
      by_rows n src.Tensor.batch (fun blo bhi ->
          for b = blo to bhi - 1 do
            let sbase = b * m and dbase = b * n in
            for e = 0 to n - 1 do
              Array.unsafe_set d (dbase + e)
                (Array.unsafe_get s (sbase + Array.unsafe_get idx e))
            done
          done)
  | Tensor.Backend.Scalar ->
      for b = 0 to src.Tensor.batch - 1 do
        for e = 0 to n - 1 do
          Array.set d ((b * n) + e) (Tensor.Backend.scalar_read s ((b * m) + Array.get idx e))
        done
      done)

let gather src idx =
  let out = Tensor.create ~batch:src.Tensor.batch ~width:(Array.length idx) in
  gather_into ~out src idx;
  out

let scatter_add ~into idx src =
  count_op "scatter_add";
  let n = Array.length idx in
  if src.Tensor.width <> n then invalid_arg "Segments.scatter_add: width/index mismatch";
  if src.Tensor.batch <> into.Tensor.batch then
    invalid_arg "Segments.scatter_add: batch mismatch";
  let s = Tensor.unsafe_data src and d = Tensor.unsafe_data into in
  let get = reader () in
  let m = into.Tensor.width in
  (* rows write disjoint destination slices even when [idx] repeats an
     index: collisions stay within a row, in sequential order *)
  by_rows n src.Tensor.batch (fun blo bhi ->
      for b = blo to bhi - 1 do
        let sbase = b * n and dbase = b * m in
        for e = 0 to n - 1 do
          let j = dbase + idx.(e) in
          d.(j) <- d.(j) +. get s (sbase + e)
        done
      done)
