(** Segmented kernels over batched tensors.

    E-graphs are sparse (Table 1 reports densities of 1e-5..1e-2), so the
    paper's implementation never materialises dense M×N matrices; it uses
    sparse gather/scatter/segment primitives instead (§4.1). A
    {!t} partitions the width axis of a tensor into contiguous segments —
    e.g. e-nodes grouped by owning e-class, or parent-edge lists grouped
    by child e-class — and every kernel below applies per batch row and
    per segment.

    All kernels honour {!Tensor.Backend}: the [Scalar] mode runs an
    element-at-a-time reference path. *)

type t = private {
  starts : int array;
  lens : int array;
  width : int;
  mutable owners : int array option;  (** memoised {!seg_of_index} *)
}
(** [width] is the total element count; segment [s] covers
    [starts.(s) .. starts.(s) + lens.(s) - 1]. Segments tile the width
    exactly and in order. *)

val of_lens : int array -> t
(** Build from segment lengths. Lengths must be non-negative. *)

val count : t -> int
val seg_len : t -> int -> int
val seg_of_index : t -> int array
(** For each element position, the segment that owns it. *)

(** {1 Kernels}

    Inputs are (B, width) tensors; "per-segment" outputs are
    (B, count) tensors. *)

val softmax : Tensor.t -> t -> Tensor.t
(** Per-segment softmax along the width axis — realises Eq. (3b): the
    conditional probabilities of the e-nodes in one e-class sum to 1.
    Numerically stabilised by max subtraction. Empty segments produce no
    output positions (their region is empty). *)

val sum : Tensor.t -> t -> Tensor.t
(** Per-segment sums. *)

val prod : Tensor.t -> t -> Tensor.t
(** Per-segment products; an empty segment yields 1 (the neutral
    element), which is exactly what Eq. (6) needs for e-classes with no
    parents. *)

val prod_grad_scratch : Tensor.t -> t -> Tensor.t
(** For each element, the product of the *other* elements in its segment
    (prefix×suffix trick, zero-safe) — the partial derivative of
    {!prod} with respect to that element. Shape (B, width). *)

val max : Tensor.t -> t -> Tensor.t * int array
(** Per-segment maxima and the flat argmax positions (batch-major,
    length B × count; -1 for empty segments). An empty segment yields 0
    — Eq. (7) over no parents means "never chosen". *)

val gather : Tensor.t -> int array -> Tensor.t
(** [gather src idx] with [src : (B, M)] returns [(B, |idx|)] where
    output column [e] reads source column [idx.(e)]. *)

val scatter_add : into:Tensor.t -> int array -> Tensor.t -> unit
(** [scatter_add ~into idx src] accumulates column [e] of [src] into
    column [idx.(e)] of [into] — the adjoint of {!gather}. *)

(** {1 Preallocated kernels}

    [_into] variants writing into caller-owned outputs with zero
    allocation — the cores behind the allocating kernels above and the
    building blocks of the plan replay engine. Arithmetic and segment-op
    counters are identical to the allocating versions; outputs must have
    the exact result shape ([Invalid_argument] otherwise). Every cell a
    segment covers is (re)written, so buffers can be reused across
    calls. *)

val softmax_into : out:Tensor.t -> Tensor.t -> t -> unit
val sum_into : out:Tensor.t -> Tensor.t -> t -> unit
val prod_into : out:Tensor.t -> Tensor.t -> t -> unit
val prod_grad_scratch_into : out:Tensor.t -> Tensor.t -> t -> unit

val max_into : out:Tensor.t -> arg:int array -> Tensor.t -> t -> unit
(** [arg] must have length B × count; empty segments store 0 in [out]
    and -1 in [arg]. *)

val gather_into : out:Tensor.t -> Tensor.t -> int array -> unit
