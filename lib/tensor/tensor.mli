(** Batched dense tensors.

    This module is the reproduction's stand-in for the PyTorch tensors of
    the paper's implementation (§4.1). A value of type {!t} is a batch of
    [batch] rows, each a dense vector of [width] floats, stored row-major
    in one flat array. SmoothE uses batch = number of seeds (§4.2,
    seed batching); square matrices (for the NOTEARS matrix exponential)
    are represented with [batch = width = d].

    All kernels run on one of two backends (see {!Backend}):
    the [Vectorized] backend uses tight unsafe loops over the flat array
    and models GPU execution; the [Scalar] backend deliberately runs
    element-at-a-time through closures with bounds checks, and models the
    unoptimised CPU baseline of the paper's Figure 6 ablation. Results
    are identical on both; only speed differs. *)

type t = private { data : float array; batch : int; width : int }

module Backend : sig
  type mode =
    | Vectorized  (** fused flat-array loops — the "GPU" execution model *)
    | Scalar  (** element-at-a-time with per-element closures — "CPU baseline" *)

  val set : mode -> unit
  val current : unit -> mode

  val with_mode : mode -> (unit -> 'a) -> 'a
  (** Runs the thunk under the given mode, restoring the previous mode
      afterwards (also on exceptions). *)

  val scalar_read : float array -> int -> float
  (** One element access under the scalar execution model: an indirect,
      non-inlinable call that boxes its result — the per-element
      dispatch overhead of unvectorised execution. *)

  val reader : unit -> float array -> int -> float
  (** The element accessor for the current mode. *)
end

(** {1 Construction} *)

val create : batch:int -> width:int -> t
(** Zero-filled tensor. *)

val full : batch:int -> width:int -> float -> t

val of_array : batch:int -> width:int -> float array -> t
(** Takes ownership of the array. @raise Invalid_argument on size mismatch. *)

val of_row : float array -> t
(** Single-row tensor (batch = 1). Copies its input. *)

val copy : t -> t

val identity : int -> t
(** [identity d] is the d×d identity (batch = width = d). *)

val init : batch:int -> width:int -> (int -> int -> float) -> t
(** [init ~batch ~width f] fills position (b, i) with [f b i]. *)

(** {1 Access} *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val numel : t -> int
val row : t -> int -> float array
(** Copy of one row. *)

val blit_row : src:float array -> t -> int -> unit
(** Overwrite row [b] with [src]. *)

val fill : t -> float -> unit
val unsafe_data : t -> float array
(** The backing store; mutate with care. Layout: row [b] occupies
    indices [b*width .. (b+1)*width - 1]. *)

(** {1 Elementwise kernels}

    Binary kernels require operands of identical shape. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val relu : t -> t
val exp : t -> t
val log_safe : t -> t
(** Natural log clamped below at [log 1e-30] to keep gradients finite. *)

val clamp : lo:float -> hi:float -> t -> t

val add_inplace : t -> t -> unit
(** [add_inplace dst src] accumulates [src] into [dst]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y]. *)

val scale_inplace : float -> t -> unit

(** {1 Preallocated kernels}

    [_into] variants of the allocating kernels above: they write into a
    caller-owned output tensor and never allocate, reproducing the
    allocating kernels' arithmetic bit-for-bit (same expression trees,
    same accumulation order, both backends). The plan replay engine is
    built on these. Outputs may alias inputs for the elementwise
    kernels; {!transpose_into} and {!matmul_nt_into} reject aliased
    outputs. All raise [Invalid_argument] on shape mismatch. *)

val copy_into : out:t -> t -> unit
val add_into : out:t -> t -> t -> unit
val sub_into : out:t -> t -> t -> unit
val mul_into : out:t -> t -> t -> unit
val neg_into : out:t -> t -> unit
val scale_into : out:t -> float -> t -> unit
val add_scalar_into : out:t -> float -> t -> unit
val relu_into : out:t -> t -> unit
val transpose_into : out:t -> t -> unit
val matmul_nt_into : out:t -> t -> t -> unit

(** {1 Reductions} *)

val sum : t -> float
val mean : t -> float
val max_value : t -> float
val dot : t -> t -> float
val sum_rows : t -> float array
(** Per-batch-row sums: element [b] is the sum of row [b]. *)

val abs_max : t -> float

val all_finite : t -> bool
(** False when any entry is NaN or ±infinity — the numeric-guard check
    run on losses and gradients each iteration. *)

val bits_equal : t -> t -> bool
(** Shape equality plus element-by-element IEEE-754 bit equality
    ([Int64.bits_of_float]) — distinguishes [+0.] from [-0.] and treats
    identical NaN payloads as equal. The comparison the plan replay
    differential check ([--plan check]) uses against the interpreter. *)

val norm1_matrix : t -> float
(** Maximum absolute column sum of a square matrix — the operator 1-norm
    used to pick the scaling power in {!Matfun.expm}. *)

val mean_rows : t -> t
(** Collapse the batch dimension: returns a 1×width tensor whose entries
    are per-column means — the batched-matexp approximation of Eq. (11)
    averages seed adjacency matrices this way. *)

(** {1 Linear algebra} *)

val matmul_nt : t -> t -> t
(** [matmul_nt a b] with [a : (p, n)] and [b : (q, n)] computes the
    p×q product [a · bᵀ] — the layout used by MLP linear layers where
    weights are stored row-per-output-neuron. *)

val matmul : t -> t -> t
(** [matmul a b] with [a : (p, n)], [b : (n, q)] is the plain product. *)

val transpose : t -> t

module Lu : sig
  type factors

  val decompose : t -> factors
  (** LU with partial pivoting of a square matrix.
      @raise Failure on a (numerically) singular matrix. *)

  val solve : factors -> t -> t
  (** [solve f b] solves [A x = b] column-wise; [b] is square d×d. *)

  val preallocate : int -> factors
  (** Workspace for {!decompose_into}: a d×d factor store plus its
      permutation, allocated once and refilled on every call. *)

  val decompose_into : factors -> t -> unit
  (** {!decompose} into a preallocated workspace — no allocation.
      @raise Failure on a (numerically) singular matrix. *)

  val solve_into : out:t -> factors -> t -> unit
  (** {!solve} into a preallocated output of the rhs shape. *)
end

module Matfun : sig
  val expm : t -> t
  (** Matrix exponential of a square matrix by scaling-and-squaring with
      a degree-13 Padé approximant (Higham 2005) — the same algorithm
      behind [torch.matrix_exp] that the paper identifies as the
      bottleneck (§4.3). *)

  type ws
  (** Preallocated workspace holding every intermediate of one {!expm}
      call for a fixed dimension. *)

  val workspace : int -> ws
  (** [workspace d] allocates the intermediates for d×d inputs
      ([d >= 1]). *)

  val expm_into : ws -> t -> t
  (** {!expm} with zero per-call allocation: all intermediates live in
      the workspace, and the returned tensor is one of the workspace's
      buffers — valid until the next [expm_into] on the same
      workspace. Arithmetic is bit-identical to {!expm}. *)

  val trace : t -> float
end

val pp : Format.formatter -> t -> unit
