(** Discrete solution sampling (§3.5).

    After each optimisation step the conditional probabilities cp are
    decoded into binary selections, one per seed: starting from the root
    e-class, each selected e-class takes its argmax-cp member, and the
    chosen node's child classes are selected in turn — satisfying the
    completeness constraints by construction. Acyclicity is *not*
    guaranteed by this schedule; the paper relies on the NOTEARS penalty
    having pushed cyclic selections away. Samples that still close a
    cycle score [infinity].

    [repair] additionally implements a cycle-breaking retry (our
    extension, off by default): when validation reports a cycle, the
    argmax of a class on the offending path is demoted to the class's
    next-best cp and decoding retries. *)

val sample_seed : ?repair:bool -> Egraph.t -> cp:Tensor.t -> seed:int -> Egraph.Solution.s
(** Decode one batch row of the (B, N) cp tensor. The result satisfies
    completeness; it may be cyclic (check with
    {!Egraph.Solution.validate}) unless [repair] succeeded. *)

val sample_all : ?repair:bool -> Egraph.t -> cp:Tensor.t -> Egraph.Solution.s array
(** All seeds of the batch. *)

val best_of_batch :
  ?repair:bool ->
  Egraph.t ->
  model:Cost_model.t ->
  cp:Tensor.t ->
  (int * Egraph.Solution.s * float) option
(** Decode every seed, score valid decodes with the model, and return
    (seed index, solution, cost) of the cheapest — the selection rule of
    §4.2's seed batching. [None] when every seed decoded to an invalid
    selection. *)
