(** The full SmoothE -> exact pipeline (ROADMAP item 3, e-boost style).

    Stage 1 runs SmoothE on [smoothe_frac] of the budget to produce an
    incumbent and its per-node marginals; stage 2 hands both to
    {!Hybrid.extract}, which fixes concentrated e-class choices, derives
    the objective bound cut, shrinks the MILP encoding, warm-starts
    branch-and-bound and finishes with a sound verification solve. The
    stage is self-contained (it never reads another portfolio member's
    output), so it behaves identically whether the portfolio runs its
    members sequentially or on a pool. *)

type config = {
  time_budget : float;  (** seconds across both stages *)
  smoothe_frac : float;
      (** share of the budget spent producing the SmoothE incumbent
          (default 0.4); <= 0 skips SmoothE and seeds from greedy *)
  smoothe : Smoothe_config.t;  (** stage-1 hyper-parameters (time_limit is overridden) *)
  fix_threshold : float;  (** see {!Hybrid.config} *)
  bound_gap : float;  (** see {!Hybrid.config} *)
  profile : Bnb.profile;
  node_limit : int;
  verify : bool;
}

val default_config : config

type run = {
  result : Extractor.r;
      (** method_name "hybrid": best solution of both stages, merged
          anytime trace, total wall clock, sound [proved_optimal] *)
  hybrid : Hybrid.outcome;  (** stage-2 detail (phases, fixes, bound, gap) *)
  smoothe_run : Smoothe_extract.run option;  (** stage-1 detail when it ran *)
}

val extract :
  ?config:config ->
  ?model:Cost_model.t ->
  ?health:Health.log ->
  ?pool:Pool.t ->
  Egraph.t ->
  run
(** [model] only shapes stage 1's loss (the exact stage optimises the
    linear costs, like the paper's ILP-star); [pool] parallelises
    branch-and-bound waves. Health events from both stages land on
    [health]. *)
