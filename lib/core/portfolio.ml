type status = Completed | Timed_out | Faulted of string

type member = { member_name : string; result : Extractor.r; status : status }

type outcome = { best : Extractor.r; members : member list; health : Health.event list }

type config = {
  time_budget : float;
  use_ilp : bool;
  use_smoothe : bool;
  use_annealing : bool;
  use_genetic : bool;
  use_hybrid : bool;
  smoothe : Smoothe_config.t;
  checkpoint_dir : string option;
  checkpoint_every : int;
  retry_attempts : int;
  jobs : int;
}

let default_config =
  {
    time_budget = 30.0;
    use_ilp = true;
    use_smoothe = true;
    use_annealing = true;
    use_genetic = false;
    use_hybrid = false;
    smoothe = Smoothe_config.default;
    checkpoint_dir = None;
    checkpoint_every = 25;
    retry_attempts = 3;
    jobs = 1;
  }

let extract ?(config = default_config) ?model ?health rng g =
  Trace.with_span ~cat:"portfolio"
    ~attrs:
      (if !Obs.on then [ ("classes", string_of_int (Egraph.num_classes g)) ] else [])
    "portfolio.extract"
  @@ fun () ->
  let model = match model with Some m -> m | None -> Cost_model.of_egraph g in
  let log = Health.create () in
  let rescore ?(status = Completed) name (r : Extractor.r) =
    (* re-score under the evaluation model so members are comparable *)
    let rescored =
      Extractor.make_with_model ~trace:r.Extractor.trace ~notes:r.Extractor.notes
        ~proved_optimal:r.Extractor.proved_optimal ~method_name:r.Extractor.method_name
        ~time_s:r.Extractor.time_s ~model g r.Extractor.solution
    in
    { member_name = name; result = rescored; status }
  in
  (* free heuristics first — the portfolio always has at least these,
     whatever happens to the anytime members below *)
  let heuristics =
    [ rescore "heuristic" (Greedy.extract g); rescore "heuristic+" (Greedy_dag.extract g) ]
  in
  let anytime_members =
    List.filter snd
      [
        ("smoothe", config.use_smoothe);
        ("ilp", config.use_ilp);
        ("hybrid", config.use_hybrid);
        ("annealing", config.use_annealing);
        ("genetic", config.use_genetic);
      ]
  in
  let n_anytime = max 1 (List.length anytime_members) in
  let naive_share = config.time_budget /. float_of_int n_anytime in
  (* one shared monotonic deadline for the whole portfolio: a member
     that crashes or finishes early leaves its unused share to the
     survivors (sequential mode), or bounds everyone (parallel mode) *)
  let portfolio_deadline = Timer.deadline_after config.time_budget in
  (* Each member draws from its own stream, split off in fixed member
     order — NOT the shared [rng] in turn — so the randomness a member
     sees is the same whether members run one by one or concurrently.
     Likewise each member records into its own health log, merged in
     member order after the join. *)
  let tagged = List.map (fun m -> (m, Rng.split rng)) anytime_members in
  (* run one member to a [member] record; everything it touches is its
     own ([mlog], [mrng]) or read-only ([g], [model], [config]) *)
  let run_member ~mlog ~share (name, mrng) =
    let record ?status name r = rescore ?status name r in
    let run_supervised display_name run =
      let timeouts_before = Health.count ~member:display_name mlog Health.Timeout in
      let outcome =
        Trace.with_span ~cat:"portfolio"
          ~attrs:(if !Obs.on then [ ("budget_s", Printf.sprintf "%.3f" share) ] else [])
          ("portfolio." ^ display_name)
          run
      in
      let timed_out = Health.count ~member:display_name mlog Health.Timeout > timeouts_before in
      match outcome with
      | Supervisor.Finished r ->
          record ~status:(if timed_out then Timed_out else Completed) display_name r
      | Supervisor.Crashed { exn } ->
          record ~status:(Faulted exn) display_name
            (Extractor.failed ~method_name:display_name ~time_s:0.0)
    in
    let supervised display_name f =
      run_supervised display_name (fun () ->
          Supervisor.run ~health:mlog ~name:display_name ~budget:share f)
    in
    match name with
    | "smoothe" -> (
        let smoothe_config = { config.smoothe with Smoothe_config.time_limit = share } in
        match config.checkpoint_dir with
        | None ->
            supervised "smoothe" (fun _deadline ->
                (Smoothe_extract.extract ~config:smoothe_config ~model ~health:mlog g)
                  .Smoothe_extract.result)
        | Some dir ->
            (* durable mode: the member checkpoints as it goes and a
               crash resumes from the newest usable generation instead
               of forfeiting the share *)
            let store = Checkpoint.store ~dir ~name:"portfolio-smoothe" () in
            run_supervised "smoothe" (fun () ->
                Supervisor.run_retrying ~health:mlog ~rng:(Rng.copy mrng)
                  ~attempts:config.retry_attempts ~name:"smoothe" ~budget:share
                  (fun ~attempt _deadline ->
                    let resume_from =
                      if attempt = 0 then None
                      else
                        Option.map fst
                          (Checkpoint.load_latest ~health:mlog ~member:"smoothe" store)
                    in
                    (Smoothe_extract.extract ~config:smoothe_config ~model ~health:mlog
                       ~checkpoint:store ~checkpoint_every:config.checkpoint_every
                       ?resume_from g)
                      .Smoothe_extract.result)))
    | "ilp" ->
        (* ILP optimises the linear part only; with a non-linear model
           its solution is re-scored by [rescore] (the ILP* of §5.5) *)
        let warm = (Greedy_dag.extract g).Extractor.solution in
        let display = if Cost_model.is_linear model then "ilp" else "ilp*" in
        supervised display (fun _deadline ->
            Ilp.extract ~time_limit:share ?warm_start:warm ~profile:Bnb.cplex_like g)
    | "hybrid" ->
        (* members-as-a-pipeline: the e-boost stage runs its own SmoothE
           pass and hands the incumbent + marginals to the pruned exact
           solver. Self-contained (it never reads a rival member's
           output), so sequential and pooled portfolios agree. *)
        let pcfg =
          {
            Hybrid_pipeline.default_config with
            Hybrid_pipeline.time_budget = share;
            smoothe = config.smoothe;
          }
        in
        supervised "hybrid" (fun _deadline ->
            (Hybrid_pipeline.extract ~config:pcfg ~model ~health:mlog g)
              .Hybrid_pipeline.result)
    | "annealing" ->
        supervised "annealing" (fun _deadline ->
            Annealing.extract
              ~config:{ Annealing.default_config with Annealing.time_limit = share }
              ~model mrng g)
    | "genetic" ->
        supervised "genetic" (fun _deadline ->
            Genetic.extract
              ~config:{ Genetic.default_config with Genetic.time_limit = share }
              ~model mrng g)
    | _ -> rescore ~status:(Faulted "unknown member") name (Extractor.failed ~method_name:name ~time_s:0.0)
  in
  let parallel = config.jobs > 1 && List.length tagged > 1 in
  let ran =
    if not parallel then
      (* sequential: redistribute budget a member leaves unused *)
      let left = ref (List.length tagged) in
      List.map
        (fun ((name, _), mrng) ->
          let share =
            (* a tiny floor keeps a member whose budget is already gone
               from getting an *unlimited* deadline (deadline_after
               treats <= 0 as "no limit") *)
            let rem = Timer.remaining portfolio_deadline in
            if Float.is_finite rem then Float.max 1e-3 (rem /. float_of_int (max 1 !left))
            else naive_share
          in
          decr left;
          let mlog = Health.create () in
          if share > naive_share *. 1.05 then
            Health.record mlog ~member:name Health.Budget_reallocated
              (Printf.sprintf "share grew to %.2fs (naive split %.2fs)" share naive_share);
          (run_member ~mlog ~share (name, mrng), mlog))
        tagged
    else begin
      (* parallel: every member starts now with the whole remaining
         budget, so portfolio wall-clock is the slowest member, not the
         sum of shares. A private pool sized to the member count keeps
         this independent of (and composable with) the default pool
         the tensor kernels chunk over. *)
      let pool = Pool.create ~jobs:(min config.jobs (List.length tagged)) () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          Pool.run_list pool
            (List.map
               (fun ((name, _), mrng) () ->
                 let share =
                   let rem = Timer.remaining portfolio_deadline in
                   if Float.is_finite rem then Float.max 1e-3 rem else naive_share
                 in
                 let mlog = Health.create () in
                 (run_member ~mlog ~share (name, mrng), mlog))
               tagged))
    end
  in
  (* merge per-member logs in member order: deterministic at any jobs *)
  List.iter (fun (_, mlog) -> Health.merge ~into:log mlog) ran;
  let members = heuristics @ List.map fst ran in
  let winner =
    List.fold_left
      (fun acc m ->
        match acc with
        | None -> Some m
        | Some best ->
            if m.result.Extractor.cost < best.result.Extractor.cost then Some m else Some best)
      None members
  in
  (match health with Some shared -> Health.merge ~into:shared log | None -> ());
  let health = Health.events log in
  match winner with
  | None -> { best = Extractor.failed ~method_name:"portfolio" ~time_s:0.0; members; health }
  | Some w ->
      let total_time =
        List.fold_left (fun acc m -> acc +. m.result.Extractor.time_s) 0.0 members
      in
      let best =
        {
          w.result with
          Extractor.method_name = "portfolio";
          time_s = total_time;
          notes = ("winner", w.member_name) :: w.result.Extractor.notes;
        }
      in
      { best; members; health }
