type member = { member_name : string; result : Extractor.r }

type outcome = { best : Extractor.r; members : member list }

type config = {
  time_budget : float;
  use_ilp : bool;
  use_smoothe : bool;
  use_annealing : bool;
  use_genetic : bool;
  smoothe : Smoothe_config.t;
}

let default_config =
  {
    time_budget = 30.0;
    use_ilp = true;
    use_smoothe = true;
    use_annealing = true;
    use_genetic = false;
    smoothe = Smoothe_config.default;
  }

let extract ?(config = default_config) ?model rng g =
  let model = match model with Some m -> m | None -> Cost_model.of_egraph g in
  let members = ref [] in
  let record name (r : Extractor.r) =
    (* re-score under the evaluation model so members are comparable *)
    let rescored =
      Extractor.make_with_model ~trace:r.Extractor.trace ~notes:r.Extractor.notes
        ~proved_optimal:r.Extractor.proved_optimal ~method_name:r.Extractor.method_name
        ~time_s:r.Extractor.time_s ~model g r.Extractor.solution
    in
    members := { member_name = name; result = rescored } :: !members
  in
  (* free heuristics first *)
  record "heuristic" (Greedy.extract g);
  record "heuristic+" (Greedy_dag.extract g);
  (* split the remaining budget between the enabled anytime members *)
  let anytime_members =
    List.filter snd
      [
        ("smoothe", config.use_smoothe);
        ("ilp", config.use_ilp);
        ("annealing", config.use_annealing);
        ("genetic", config.use_genetic);
      ]
  in
  let share =
    config.time_budget /. float_of_int (max 1 (List.length anytime_members))
  in
  List.iter
    (fun (name, _) ->
      match name with
      | "smoothe" ->
          let smoothe_config = { config.smoothe with Smoothe_config.time_limit = share } in
          record "smoothe" (Smoothe_extract.extract ~config:smoothe_config ~model g).Smoothe_extract.result
      | "ilp" ->
          (* ILP optimises the linear part only; with a non-linear model
             its solution is re-scored by [record] (the ILP* of §5.5) *)
          let warm = (Greedy_dag.extract g).Extractor.solution in
          let name = if Cost_model.is_linear model then "ilp" else "ilp*" in
          record name (Ilp.extract ~time_limit:share ?warm_start:warm ~profile:Bnb.cplex_like g)
      | "annealing" ->
          record "annealing"
            (Annealing.extract
               ~config:{ Annealing.default_config with Annealing.time_limit = share }
               ~model rng g)
      | "genetic" ->
          record "genetic"
            (Genetic.extract
               ~config:{ Genetic.default_config with Genetic.time_limit = share }
               ~model rng g)
      | _ -> ())
    anytime_members;
  let members = List.rev !members in
  let winner =
    List.fold_left
      (fun acc m ->
        match acc with
        | None -> Some m
        | Some best ->
            if m.result.Extractor.cost < best.result.Extractor.cost then Some m else Some best)
      None members
  in
  match winner with
  | None -> { best = Extractor.failed ~method_name:"portfolio" ~time_s:0.0; members }
  | Some w ->
      let total_time =
        List.fold_left (fun acc m -> acc +. m.result.Extractor.time_s) 0.0 members
      in
      let best =
        {
          w.result with
          Extractor.method_name = "portfolio";
          time_s = total_time;
          notes = ("winner", w.member_name) :: w.result.Extractor.notes;
        }
      in
      { best; members }
