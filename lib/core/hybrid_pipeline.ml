type config = {
  time_budget : float;
  smoothe_frac : float;
  smoothe : Smoothe_config.t;
  fix_threshold : float;
  bound_gap : float;
  profile : Bnb.profile;
  node_limit : int;
  verify : bool;
}

let default_config =
  {
    time_budget = 30.0;
    smoothe_frac = 0.4;
    smoothe = Smoothe_config.default;
    fix_threshold = 0.9;
    bound_gap = 0.0;
    profile = Bnb.cplex_like;
    node_limit = 200_000;
    verify = true;
  }

type run = {
  result : Extractor.r;
  hybrid : Hybrid.outcome;
  smoothe_run : Smoothe_extract.run option;
}

let extract ?(config = default_config) ?model ?health ?pool g =
  Trace.with_span ~cat:"extraction"
    ~attrs:(if !Obs.on then [ ("classes", string_of_int (Egraph.num_classes g)) ] else [])
    "hybrid.pipeline"
  @@ fun () ->
  let deadline = Timer.deadline_after config.time_budget in
  (* Stage 1: a SmoothE incumbent plus its marginals, on a fraction of
     the budget. [smoothe_frac <= 0] skips straight to greedy + exact. *)
  let smoothe_run =
    if config.smoothe_frac > 0.0 && config.time_budget > 0.0 then begin
      let scfg =
        {
          config.smoothe with
          Smoothe_config.time_limit = config.time_budget *. config.smoothe_frac;
        }
      in
      Some (Smoothe_extract.extract ~config:scfg ?model ?health g)
    end
    else None
  in
  let incumbent =
    Option.bind smoothe_run (fun r -> r.Smoothe_extract.result.Extractor.solution)
  in
  let marginals = Option.bind smoothe_run (fun r -> r.Smoothe_extract.final_cp) in
  let stage1_elapsed = Timer.elapsed deadline in
  (* Stage 2: fix, cut, shrink, warm-start, solve, verify. *)
  let rem = Timer.remaining deadline in
  let hcfg =
    {
      Hybrid.time_limit =
        (if Float.is_finite rem then Float.max 1e-3 rem else config.time_budget);
      node_limit = config.node_limit;
      profile = config.profile;
      fix_threshold = config.fix_threshold;
      bound_gap = config.bound_gap;
      verify = config.verify;
    }
  in
  let hybrid = Hybrid.extract ~config:hcfg ?pool ?health ?incumbent ?marginals g in
  (* Stitch the two stages into one anytime record: SmoothE's trace as
     is, the hybrid trace shifted by stage 1's wall clock, improvements
     only. *)
  let stage1_trace =
    match smoothe_run with
    | Some r -> r.Smoothe_extract.result.Extractor.trace
    | None -> []
  in
  let merged_trace =
    let acc = ref [] and best = ref infinity in
    List.iter
      (fun (t, c) ->
        if c < !best then begin
          best := c;
          acc := (t, c) :: !acc
        end)
      (stage1_trace
      @ List.map (fun (t, c) -> (t +. stage1_elapsed, c)) hybrid.Hybrid.result.Extractor.trace);
    List.rev !acc
  in
  let notes =
    (match smoothe_run with
    | Some r ->
        [
          ("smoothe_iters", string_of_int r.Smoothe_extract.iterations);
          ( "smoothe_cost",
            Printf.sprintf "%.6g" r.Smoothe_extract.result.Extractor.cost );
        ]
    | None -> [ ("smoothe", "skipped") ])
    @ hybrid.Hybrid.result.Extractor.notes
  in
  let result =
    {
      hybrid.Hybrid.result with
      Extractor.time_s = Timer.elapsed deadline;
      trace = merged_trace;
      notes;
    }
  in
  { result; hybrid; smoothe_run }
