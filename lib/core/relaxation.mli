(** The differentiable relaxation at the heart of SmoothE (§3).

    [compile] digests an e-graph into the index structures the forward
    pass needs; [forward] then builds one optimisation step on an
    autodiff tape:

    + θ logits → conditional probabilities cp by per-class softmax
      (Eq. 3);
    + cp → marginal probabilities p by the unrolled parallel propagation
      schedule of Eq. (5)–(7) under the configured correlation
      assumption, with the root e-class pinned to probability 1;
    + p → per-seed cost through the cost model (any differentiable f);
    + cp → NOTEARS acyclicity penalty h(A_t) of Eq. (8)–(10), evaluated
      per strongly-connected component and — when enabled — on the
      batch-averaged adjacency (Eq. 11). *)

type scc_block = {
  dim : int;
  classes : int array;  (** the e-classes of this component *)
  entries : (int * int * int) array;
      (** (cp column k, local row i, local col j): node k of class
          classes.(i) depends on classes.(j) *)
}

type compiled = {
  g : Egraph.t;
  prop_iters : int;
  blocks : scc_block array;  (** only components that can host a cycle *)
}

val compile : Smoothe_config.t -> Egraph.t -> compiled

type forward = {
  tape : Ad.tape;
  theta : Ad.v;
  cp : Ad.v;  (** (B, N) conditional probabilities *)
  p : Ad.v;  (** (B, N) marginal probabilities *)
  per_seed_cost : Ad.v;  (** (B, 1) cost-model values f(p) *)
  penalty : Ad.v;  (** (1, 1) summed NOTEARS terms Σ (tr e^A − d) *)
  loss : Ad.v;  (** (1, 1) total optimised objective *)
}

val forward :
  ?temperature:float ->
  compiled ->
  config:Smoothe_config.t ->
  model:Cost_model.t ->
  theta:Tensor.t ->
  forward
(** [theta] is the persistent (B, N) logit tensor; its gradient is read
    off [Ad.grad f.theta] after [Ad.backward f.loss]. [temperature]
    divides the logits before the softmax (1.0 = the paper's
    formulation); [config.entropy_weight] adds an exploration bonus. *)

val acyclicity_value : compiled -> cp:Tensor.t -> float
(** The (non-differentiable, per-batch-mean) penalty value alone — used
    by tests and diagnostics. *)
