(* Root-first decode with a per-class candidate rank: rank 0 takes the
   argmax-cp member, rank r the (r+1)-th best. Ranks are all 0 for the
   paper's schedule; the repair loop bumps ranks on cycle-closing
   classes. *)
let decode_with_ranks g ~row ~ranks =
  let pick =
    Array.init (Egraph.num_classes g) (fun c ->
        let members = g.Egraph.class_nodes.(c) in
        if ranks.(c) = 0 then begin
          (* common case: plain argmax, no sort *)
          let best = ref members.(0) in
          Array.iter (fun k -> if row.(k) > row.(!best) then best := k) members;
          !best
        end
        else begin
          let pairs = Array.map (fun k -> k, row.(k)) members in
          Array.sort (fun (_, a) (_, b) -> compare b a) pairs;
          let r = min ranks.(c) (Array.length members - 1) in
          fst pairs.(r)
        end)
  in
  Egraph.Solution.of_node_choice g pick

(* Find one class on a directed cycle of the selected class graph. *)
let find_cycle_class g s =
  let m = Egraph.num_classes g in
  let colour = Array.make m 0 in
  let witness = ref None in
  let rec dfs c =
    if !witness = None then begin
      match s.Egraph.Solution.choice.(c) with
      | None -> colour.(c) <- 2
      | Some node ->
          colour.(c) <- 1;
          Array.iter
            (fun child ->
              if !witness = None then
                if colour.(child) = 1 then witness := Some c
                else if colour.(child) = 0 then dfs child)
            g.Egraph.children.(node);
          if colour.(c) = 1 then colour.(c) <- 2
    end
  in
  dfs g.Egraph.root;
  !witness

let sample_seed ?(repair = false) g ~cp ~seed =
  let row = Tensor.row cp seed in
  let ranks = Array.make (Egraph.num_classes g) 0 in
  let first = decode_with_ranks g ~row ~ranks in
  if not repair then first
  else begin
    let rec attempt s tries =
      match Egraph.Solution.validate g s with
      | Egraph.Solution.Valid | Egraph.Solution.No_root | Egraph.Solution.Incomplete _ -> s
      | Egraph.Solution.Cyclic when tries <= 0 -> s
      | Egraph.Solution.Cyclic -> (
          match find_cycle_class g s with
          | None -> s
          | Some c ->
              let size = Array.length g.Egraph.class_nodes.(c) in
              if ranks.(c) + 1 >= size then s
              else begin
                ranks.(c) <- ranks.(c) + 1;
                if !Obs.on then Metrics.incr "sampler.repairs";
                attempt (decode_with_ranks g ~row ~ranks) (tries - 1)
              end)
    in
    attempt first 16
  end

let sample_all ?repair g ~cp =
  Array.init cp.Tensor.batch (fun seed -> sample_seed ?repair g ~cp ~seed)

let best_of_batch ?repair g ~model ~cp =
  let samples = sample_all ?repair g ~cp in
  let best = ref None in
  let accepted = ref 0 in
  Array.iteri
    (fun seed s ->
      let cost = Cost_model.dense_solution model g s in
      if Float.is_finite cost then begin
        incr accepted;
        match !best with
        | Some (_, _, c) when c <= cost -> ()
        | Some _ | None -> best := Some (seed, s, cost)
      end)
    samples;
  if !Obs.on then begin
    Metrics.incr ~by:(float_of_int (Array.length samples)) "sampler.samples";
    Metrics.incr ~by:(float_of_int !accepted) "sampler.accepted"
  end;
  !best
