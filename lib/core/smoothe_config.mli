(** SmoothE hyper-parameters.

    Defaults follow the paper: hybrid correlation assumption (§3.3,
    "using the hybrid assumption by default performs well enough"),
    seed batching (§4.2), SCC decomposition and batched matrix
    exponential both on (§4.3), per-iteration sampling with
    patience-based stopping (§3.5). *)

type assumption =
  | Independent  (** parent e-nodes independent: Eq. (6) *)
  | Correlated  (** fully positively correlated: Eq. (7) *)
  | Hybrid  (** arithmetic mean of the two *)

val assumption_name : assumption -> string
val assumption_of_string : string -> assumption

type plan_mode =
  | Plan_off  (** interpret every iteration (the baseline) *)
  | Plan_on
      (** capture iterations 1–2, verify with the plan_check analysis,
          then replay 3..N over the preallocated arena; any gate failure
          silently falls back to interpretation *)
  | Plan_check
      (** replay AND interpret every iteration, asserting bit-identical
          losses, probabilities and gradients (differential testing) *)

val plan_mode_name : plan_mode -> string
val plan_mode_of_string : string -> plan_mode

type t = {
  assumption : assumption;
  batch : int;  (** number of seeds optimised in parallel (B of §4.2) *)
  lr : float;  (** Adam learning rate on the θ logits *)
  max_iters : int;  (** hard iteration cap (§3.5 stop condition 2) *)
  patience : int;  (** stop after this many non-improving samples (§3.5 condition 1) *)
  lambda_ : float;  (** NOTEARS penalty weight λ of Eq. (10) *)
  prop_iters : int option;  (** propagation-unroll depth; [None] = derive from the e-graph *)
  time_limit : float;  (** seconds; <= 0 = unlimited *)
  init_std : float;  (** stddev of the Gaussian θ initialisation per seed *)
  repair_sampling : bool;
      (** our addition: when a sampled selection is cyclic, demote the
          responsible argmax and retry instead of discarding the sample;
          the paper relies on the penalty alone (off by default) *)
  scc_decomposition : bool;  (** §4.3 SCC optimisation *)
  batched_matexp : bool;  (** §4.3 Eq. (11) batched approximation *)
  temperature : float;
      (** softmax temperature τ: cp = softmax(θ/τ). 1.0 reproduces the
          paper; τ > 1 explores, τ < 1 sharpens. Our extension. *)
  temperature_decay : float;
      (** per-iteration multiplier on τ (1.0 = constant); annealing
          toward {!field-min_temperature} sharpens cp as optimisation
          converges. Our extension. *)
  min_temperature : float;
  entropy_weight : float;
      (** weight of an entropy bonus on cp added to the loss
          (0 = off, the paper's objective): positive values penalise
          premature commitment. Our extension. *)
  seed : int;
  plan : plan_mode;
      (** static-plan replay of the iteration IR (see {!plan_mode}) *)
}

val default : t

val with_assumption : assumption -> t -> t

val derive_prop_iters : t -> Egraph.t -> int
(** The unroll depth actually used: the configured value, or the
    root-to-leaf depth of the class condensation plus slack, clamped to
    [4, 32]. *)
