(** Exact selection marginals, by enumeration.

    §3.3 must *assume* how the parent e-nodes of an e-class correlate
    (independent, fully correlated, or a hybrid) because computing the
    true marginals is exponential — the paper points at the Junction
    Tree algorithm's O(2^k) cost. For small e-graphs we can afford the
    exact computation, which gives the reproduction a ground truth to
    grade the three assumptions against (see the [ablation_phi] bench).

    Semantics: the conditional probabilities cp define a distribution
    over decoded selections — starting from the root, every *needed*
    e-class independently draws one member according to its cp — and the
    marginal of e-node n is the probability that n appears in the
    decoded selection. Cyclic draws are not re-rolled; a node "selected"
    on a cyclic path still counts as selected (matching what the relaxed
    propagation estimates). *)

val node_marginals : Egraph.t -> cp:float array -> float array
(** [node_marginals g ~cp] enumerates all per-class choices reachable
    from the root (weighted by cp) and returns exact per-node selection
    probabilities. Exponential in the number of multi-member classes;
    intended for e-graphs with ≤ ~20 such classes.
    @raise Invalid_argument when the choice space exceeds [2^22]. *)

val assumption_error :
  Egraph.t -> cp:float array -> Smoothe_config.assumption -> float
(** Mean absolute difference between the exact marginals and the
    propagation of {!Relaxation.forward} under the given assumption —
    the quantity the [ablation_phi] experiment reports. *)
