type assumption = Independent | Correlated | Hybrid

let assumption_name = function
  | Independent -> "independent"
  | Correlated -> "correlated"
  | Hybrid -> "hybrid"

let assumption_of_string = function
  | "independent" -> Independent
  | "correlated" -> Correlated
  | "hybrid" -> Hybrid
  | s -> invalid_arg (Printf.sprintf "unknown assumption %S" s)

type plan_mode = Plan_off | Plan_on | Plan_check

let plan_mode_name = function
  | Plan_off -> "off"
  | Plan_on -> "on"
  | Plan_check -> "check"

let plan_mode_of_string = function
  | "off" -> Plan_off
  | "on" -> Plan_on
  | "check" -> Plan_check
  | s -> invalid_arg (Printf.sprintf "unknown plan mode %S" s)

type t = {
  assumption : assumption;
  batch : int;
  lr : float;
  max_iters : int;
  patience : int;
  lambda_ : float;
  prop_iters : int option;
  time_limit : float;
  init_std : float;
  repair_sampling : bool;
  scc_decomposition : bool;
  batched_matexp : bool;
  temperature : float;
  temperature_decay : float;
  min_temperature : float;
  entropy_weight : float;
  seed : int;
  plan : plan_mode;
}

let default =
  {
    assumption = Hybrid;
    batch = 16;
    lr = 0.25;
    max_iters = 150;
    patience = 30;
    lambda_ = 100.0;
    prop_iters = None;
    time_limit = 120.0;
    init_std = 0.5;
    repair_sampling = false;
    scc_decomposition = true;
    batched_matexp = true;
    temperature = 1.0;
    temperature_decay = 1.0;
    min_temperature = 0.2;
    entropy_weight = 0.0;
    seed = 7;
    plan = Plan_off;
  }

let with_assumption assumption cfg = { cfg with assumption }

(* The propagation needs enough unrolled steps for probability mass to
   reach the deepest e-class, i.e. the *longest* root-to-class path.
   Cycles would make that unbounded, so we measure the longest path on
   the SCC condensation, charging each component its own size (mass
   circulating inside an SCC settles in about |SCC| rounds). *)
let class_depth g =
  let sccs = g.Egraph.sccs in
  let k = Array.length sccs in
  let comp = g.Egraph.scc_of_class in
  (* condensation edges: component of parent class -> component of child *)
  let succ = Array.make k [] in
  Array.iteri
    (fun c children ->
      Array.iter
        (fun child -> if comp.(c) <> comp.(child) then succ.(comp.(c)) <- comp.(child) :: succ.(comp.(c)))
        children)
    g.Egraph.class_children;
  (* tarjan emits components in reverse topological order, so a forward
     scan from the last index visits parents before children *)
  let longest = Array.make k 0 in
  let deepest = ref 0 in
  for ci = k - 1 downto 0 do
    let here = longest.(ci) + Array.length sccs.(ci) in
    if here > !deepest then deepest := here;
    List.iter (fun cj -> if here > longest.(cj) then longest.(cj) <- here) succ.(ci)
  done;
  !deepest

let derive_prop_iters cfg g =
  match cfg.prop_iters with
  | Some k -> max 1 k
  | None ->
      let d = class_depth g + 3 in
      min 96 (max 4 d)
