(** The SmoothE extraction loop (§3.5, §4).

    Each iteration: one autodiff forward/backward over the relaxation
    (loss = cost model + λ·NOTEARS), one Adam step on the per-seed θ
    logits, and one sampling pass that decodes all seeds and keeps the
    cheapest valid selection seen so far. Stops on patience (no
    improvement), on the iteration cap, or on the wall-clock limit —
    and, like the paper's anytime evaluation (Figure 4), records the
    incumbent trajectory. *)

type profile = {
  loss_time : float;  (** forward passes (the "Loss Calculation" share of Fig. 8) *)
  grad_time : float;  (** backward + Adam ("Gradient Descent") *)
  sample_time : float;  (** decoding + scoring ("Sampling") *)
  total_time : float;
}

type history_point = {
  iter : int;
  elapsed : float;
  relaxed_loss : float;  (** best per-seed f(p) + λ·h this iteration (Fig. 9's optimisation loss) *)
  sampled_cost : float;  (** best sampled discrete cost this iteration (Fig. 9's sampling loss) *)
  incumbent : float;  (** best cost so far *)
}

type run = {
  result : Extractor.r;
  iterations : int;
  best_seed : int;  (** which seed produced the incumbent; -1 if none *)
  batch_used : int;  (** after device memory derating *)
  prop_iters : int;
  profile : profile;
  history : history_point list;  (** chronological *)
  oom : bool;  (** no derating step could fit even one seed *)
  recoveries : int;  (** numeric recoveries applied during the run *)
  health : Health.event list;  (** chronological supervision events *)
  final_cp : float array option;
      (** per-node class-softmax probabilities (cp) of the incumbent's
          seed, captured at the iteration the incumbent was found — the
          marginals the hybrid extractor's fixing rule consumes. [None]
          when no sample ever improved (or right after a resume). *)
}

val extract :
  ?config:Smoothe_config.t ->
  ?model:Cost_model.t ->
  ?device:Device.t ->
  ?health:Health.log ->
  ?checkpoint:Checkpoint.store ->
  ?checkpoint_every:int ->
  ?resume_from:Checkpoint.snapshot ->
  ?preflight:bool ->
  Egraph.t ->
  run
(** [model] defaults to the e-graph's linear costs; [device] defaults to
    {!Device.a100}. The device's memory model derates the configured
    batch (Table 5) and its backend selects vectorised or scalar kernels
    (Figure 6).

    With [~preflight:true] the run lints the e-graph ({!Egraph_lint})
    before the first iteration: error/warning findings are recorded as
    [Preflight] health events and counted in the [analysis.errors] /
    [analysis.warnings] metrics (when observability is on). The gate
    never changes the optimisation itself — with or without it, θ, the
    incumbent and the history are bit-identical. Default off; the CLI
    enables it unless [--no-preflight] is given.

    Durability: with [?checkpoint], the loop writes a {!Checkpoint}
    snapshot to the store every [checkpoint_every] iterations
    (default 25; 0 disables the periodic writes). [?resume_from]
    restores a previous snapshot — θ, the Adam moments, the RNG stream,
    the incumbent, the elapsed-budget offset and the health timeline —
    so a run killed at iteration K and resumed continues exactly where
    it stopped: the completed run is bit-identical (modulo wall-clock
    fields) to an uninterrupted run at the same seed. A snapshot whose
    fingerprint (graph, size, seed, derated batch) does not match the
    current run is refused with a [Checkpoint_corrupt] health event and
    the run starts fresh.

    The loop is supervised. A non-finite loss or gradient never reaches
    the Adam state or the incumbent: the iteration is quarantined, the
    optimiser moments reset, the learning rate backed off 2x per strike
    (with θ re-randomised from a fresh seed stream from the second
    strike), and after five strikes the loop degrades gracefully,
    keeping its incumbent. If the device cannot fit even one seed, the
    configuration is derated step by step (memory optimisations forced
    on, seed batch halved, CPU-baseline fallback) before giving up.
    Every such event lands in [health] (and in the shared [?health] log,
    when given). A fault-free run takes none of these paths and behaves
    bit-identically to the unsupervised loop. *)
