(** The SmoothE extraction loop (§3.5, §4).

    Each iteration: one autodiff forward/backward over the relaxation
    (loss = cost model + λ·NOTEARS), one Adam step on the per-seed θ
    logits, and one sampling pass that decodes all seeds and keeps the
    cheapest valid selection seen so far. Stops on patience (no
    improvement), on the iteration cap, or on the wall-clock limit —
    and, like the paper's anytime evaluation (Figure 4), records the
    incumbent trajectory. *)

type profile = {
  loss_time : float;  (** forward passes (the "Loss Calculation" share of Fig. 8) *)
  grad_time : float;  (** backward + Adam ("Gradient Descent") *)
  sample_time : float;  (** decoding + scoring ("Sampling") *)
  total_time : float;
}

type history_point = {
  iter : int;
  elapsed : float;
  relaxed_loss : float;  (** best per-seed f(p) + λ·h this iteration (Fig. 9's optimisation loss) *)
  sampled_cost : float;  (** best sampled discrete cost this iteration (Fig. 9's sampling loss) *)
  incumbent : float;  (** best cost so far *)
}

type run = {
  result : Extractor.r;
  iterations : int;
  best_seed : int;  (** which seed produced the incumbent; -1 if none *)
  batch_used : int;  (** after device memory derating *)
  prop_iters : int;
  profile : profile;
  history : history_point list;  (** chronological *)
  oom : bool;  (** the device could not fit even one seed *)
}

val extract :
  ?config:Smoothe_config.t ->
  ?model:Cost_model.t ->
  ?device:Device.t ->
  Egraph.t ->
  run
(** [model] defaults to the e-graph's linear costs; [device] defaults to
    {!Device.a100}. The device's memory model derates the configured
    batch (Table 5) and its backend selects vectorised or scalar kernels
    (Figure 6). *)
