let space_limit = 1 lsl 22

let node_marginals g ~cp =
  let n = Egraph.num_nodes g and m = Egraph.num_classes g in
  if Array.length cp <> n then invalid_arg "Exact_marginals: cp length mismatch";
  let space =
    Array.fold_left
      (fun acc members -> acc * max 1 (Array.length members))
      1 g.Egraph.class_nodes
  in
  if space > space_limit || space <= 0 then
    invalid_arg
      (Printf.sprintf "Exact_marginals: choice space %d exceeds the limit %d" space space_limit);
  let marginals = Array.make n 0.0 in
  let pick = Array.map (fun members -> members.(0)) g.Egraph.class_nodes in
  (* enumerate class assignments depth-first, carrying the product of
     conditional probabilities; zero-probability branches prune *)
  let rec enumerate c weight =
    if weight = 0.0 then ()
    else if c = m then begin
      (* decode: classes reachable from the root through the picks *)
      let stack = Vec.create () in
      let seen = Array.make m false in
      seen.(g.Egraph.root) <- true;
      Vec.push stack g.Egraph.root;
      while not (Vec.is_empty stack) do
        let cls = Vec.pop stack in
        let node = pick.(cls) in
        marginals.(node) <- marginals.(node) +. weight;
        Array.iter
          (fun child ->
            if not seen.(child) then begin
              seen.(child) <- true;
              Vec.push stack child
            end)
          g.Egraph.children.(node)
      done
    end
    else begin
      let members = g.Egraph.class_nodes.(c) in
      Array.iter
        (fun node ->
          pick.(c) <- node;
          enumerate (c + 1) (weight *. cp.(node)))
        members
    end
  in
  enumerate 0 1.0;
  marginals

let assumption_error g ~cp assumption =
  let n = Egraph.num_nodes g in
  let exact = node_marginals g ~cp in
  (* logits whose per-class softmax reproduces cp *)
  let theta =
    Tensor.of_array ~batch:1 ~width:n (Array.map (fun p -> log (Float.max p 1e-12)) cp)
  in
  let config =
    {
      Smoothe_config.default with
      Smoothe_config.assumption;
      prop_iters = Some (Egraph.num_classes g + 2);
    }
  in
  let compiled = Relaxation.compile config g in
  let fwd =
    Relaxation.forward compiled ~config ~model:(Cost_model.of_egraph g) ~theta
  in
  let approx = Tensor.row (Ad.value fwd.Relaxation.p) 0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. Float.abs (exact.(i) -. approx.(i))
  done;
  !acc /. float_of_int n
