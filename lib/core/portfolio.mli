(** Portfolio extraction: run several extractors under one budget and
    keep the best solution.

    The paper's comparative study (§5) shows no single method dominating
    everywhere: heuristics win on diospyros-like graphs, ILP on small
    NP-hard conversions, SmoothE on large graphs with reuse. A
    downstream user who just wants the best extraction can run the
    portfolio: the instant heuristics first, then the anytime methods
    with the remaining budget split between them. This is also how the
    evaluation harness builds its oracle baselines. *)

type member = {
  member_name : string;
  result : Extractor.r;
}

type outcome = {
  best : Extractor.r;  (** method_name "portfolio"; notes name the winner *)
  members : member list;  (** every method's individual result *)
}

type config = {
  time_budget : float;  (** total seconds, split across the anytime members *)
  use_ilp : bool;
  use_smoothe : bool;
  use_annealing : bool;
  use_genetic : bool;
  smoothe : Smoothe_config.t;
}

val default_config : config

val extract : ?config:config -> ?model:Cost_model.t -> Rng.t -> Egraph.t -> outcome
(** Heuristics always run (they are effectively free). With a non-linear
    [model], the ILP member is skipped (it can only optimise the linear
    part, cf. ILP* in §5.5) unless [use_ilp] forces the linear
    approximation, whose solution is then re-scored under [model]. *)
