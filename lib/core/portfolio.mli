(** Portfolio extraction: run several extractors under one budget and
    keep the best solution.

    The paper's comparative study (§5) shows no single method dominating
    everywhere: heuristics win on diospyros-like graphs, ILP on small
    NP-hard conversions, SmoothE on large graphs with reuse. A
    downstream user who just wants the best extraction can run the
    portfolio: the instant heuristics first, then the anytime methods
    with the remaining budget split between them. This is also how the
    evaluation harness builds its oracle baselines. *)

type status =
  | Completed  (** the member returned within its budget *)
  | Timed_out  (** the member returned, but only after using its full share *)
  | Faulted of string  (** the member crashed; the exception, printed *)

type member = {
  member_name : string;
  result : Extractor.r;
  status : status;
}

type outcome = {
  best : Extractor.r;  (** method_name "portfolio"; notes name the winner *)
  members : member list;  (** every method's individual result *)
  health : Health.event list;
      (** chronological supervision events: injected faults, numeric
          recoveries, OOM deratings, timeouts, crashes, budget moves *)
}

type config = {
  time_budget : float;  (** total seconds, split across the anytime members *)
  use_ilp : bool;
  use_smoothe : bool;
  use_annealing : bool;
  use_genetic : bool;
  use_hybrid : bool;
      (** run the {!Hybrid_pipeline} member (SmoothE incumbent ->
          heuristically-pruned, bound-cut, warm-started exact solve) —
          the portfolio's members-as-a-pipeline stage. Default off: it
          overlaps the smoothe and ilp members' budgets. *)
  smoothe : Smoothe_config.t;
  checkpoint_dir : string option;
      (** durable mode: SmoothE checkpoints here and a crashed run is
          retried from its newest usable generation ({!Supervisor.run_retrying})
          instead of forfeiting its share. [None] (default) disables it. *)
  checkpoint_every : int;  (** snapshot interval in iterations (default 25) *)
  retry_attempts : int;  (** total tries for the SmoothE member (default 3) *)
  jobs : int;
      (** [> 1]: run the anytime members concurrently on a private
          domain pool, each with the {e whole} remaining budget under
          the shared deadline — wall-clock becomes the slowest member
          instead of the sum of shares. Default 1 (sequential, with
          budget redistribution). Either way each member draws from
          its own [Rng.split] stream taken in fixed member order and
          logs to its own health log merged in member order, so
          iteration-bounded configs extract identically at any
          [jobs]. *)
}

val default_config : config

val extract :
  ?config:config -> ?model:Cost_model.t -> ?health:Health.log -> Rng.t -> Egraph.t -> outcome
(** Heuristics always run (they are effectively free). With a non-linear
    [model], the ILP member is skipped (it can only optimise the linear
    part, cf. ILP* in §5.5) unless [use_ilp] forces the linear
    approximation, whose solution is then re-scored under [model].

    Every anytime member runs under {!Supervisor.run} against one shared
    portfolio deadline: a member that crashes is captured as a
    [Faulted] member (the portfolio carries on), and budget a member
    leaves unused — by crashing or by converging early — redistributes
    to the members still waiting to run. Since the heuristics run first
    and unsupervised, the portfolio always returns at least the greedy
    result. Supervision events are returned in [outcome.health] and
    appended to [?health] when given. *)
