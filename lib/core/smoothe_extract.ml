type profile = {
  loss_time : float;
  grad_time : float;
  sample_time : float;
  total_time : float;
}

type history_point = {
  iter : int;
  elapsed : float;
  relaxed_loss : float;
  sampled_cost : float;
  incumbent : float;
}

type run = {
  result : Extractor.r;
  iterations : int;
  best_seed : int;
  batch_used : int;
  prop_iters : int;
  profile : profile;
  history : history_point list;
  oom : bool;
  recoveries : int;
  health : Health.event list;
  final_cp : float array option;
}

let member = "smoothe"
let max_recoveries = 5

(* A compiled replay plan plus the node ids of the captured forward's
   observable tensors (the only ones pinned out of the shared arena). *)
type replayable = {
  rp : Plan.t;
  rp_theta : int;
  rp_cp : int;
  rp_per_seed : int;
  rp_penalty : int;
  rp_loss : int;
}

let init_theta rng ~batch ~width ~std =
  Tensor.init ~batch ~width (fun _ _ -> std *. Rng.gaussian rng)

(* The OOM derating ladder (most faithful configuration first). When the
   requested configuration cannot fit even one seed, retry with the
   memory optimisations of §4 forced on, then with a halved seed batch,
   and finally on the big-RAM CPU baseline. Each step taken is recorded
   as a Health.Oom_derate event. *)
let derating_ladder config device =
  let optimised =
    {
      config with
      Smoothe_config.scc_decomposition = true;
      Smoothe_config.batched_matexp = true;
    }
  in
  let halved =
    { optimised with Smoothe_config.batch = max 1 (config.Smoothe_config.batch / 2) }
  in
  [
    config, device, "as configured";
    optimised, device, "scc decomposition + batched matexp forced on";
    halved, device, "seed batch halved";
    halved, Device.cpu_baseline, "fall back to CPU baseline";
  ]

type chosen = {
  c_config : Smoothe_config.t;
  c_device : Device.t;
  c_compiled : Relaxation.compiled;
  c_max_batch : int;
  c_desc : string option;  (* Some desc when any derating step was taken *)
  c_rung : int;  (* index into the derating ladder (0 = as configured) *)
}

let select_configuration log config device g =
  let fingerprint (cfg, (dev : Device.t), _) =
    ( Smoothe_config.derive_prop_iters cfg g,
      cfg.Smoothe_config.scc_decomposition,
      cfg.Smoothe_config.batched_matexp,
      cfg.Smoothe_config.batch,
      dev.Device.device_name )
  in
  let rec walk seen derated rung = function
    | [] -> None
    | ((cfg, dev, desc) as attempt) :: rest ->
        let fp_key = fingerprint attempt in
        if List.mem fp_key seen then walk seen derated (rung + 1) rest
        else begin
          let compiled = Relaxation.compile cfg g in
          let fp =
            Device.footprint g ~prop_iters:compiled.Relaxation.prop_iters
              ~scc_decomposition:cfg.Smoothe_config.scc_decomposition
              ~batched_matexp:cfg.Smoothe_config.batched_matexp
          in
          let max_batch = Device.max_batch dev fp in
          if max_batch > 0 then
            Some
              {
                c_config = cfg;
                c_device = dev;
                c_compiled = compiled;
                c_max_batch = max_batch;
                c_desc = (if derated then Some desc else None);
                c_rung = rung;
              }
          else begin
            Health.record log ~member Health.Oom_derate
              (Printf.sprintf "%s does not fit one seed on %s (%.2f GiB needed)" desc
                 dev.Device.device_name
                 (Device.bytes_for_batch fp 1 /. (1024.0 *. 1024.0 *. 1024.0)));
            walk (fp_key :: seen) true (rung + 1) rest
          end
        end
  in
  walk [] false 0 (derating_ladder config device)

let extract ?(config = Smoothe_config.default) ?model ?(device = Device.a100) ?health
    ?checkpoint ?(checkpoint_every = 25) ?resume_from ?(preflight = false) g =
  let model = match model with Some m -> m | None -> Cost_model.of_egraph g in
  let log = Health.create () in
  (* static pre-flight: lint the e-graph before the first iteration so
     input defects surface as structured events in milliseconds instead
     of index errors or NaNs minutes in. Off by default — the gate must
     not change behaviour for existing callers (events only, never the
     optimisation path). *)
  if preflight then begin
    let findings = Egraph_lint.check g in
    if !Obs.on then begin
      Metrics.incr ~by:(float_of_int (Diagnostic.errors findings)) "analysis.errors";
      Metrics.incr ~by:(float_of_int (Diagnostic.warnings findings)) "analysis.warnings"
    end;
    List.iter
      (fun d ->
        if d.Diagnostic.severity <> Diagnostic.Info then
          Health.record log ~member Health.Preflight (Diagnostic.render d))
      findings
  end;
  let drain () =
    List.iter
      (fun what -> Health.record log ~member Health.Fault_injected what)
      (Fault_plan.drain_injections ())
  in
  let finish run =
    drain ();
    (match health with Some shared -> Health.merge ~into:shared log | None -> ());
    { run with health = Health.events log; recoveries = Health.count log Health.Recovery }
  in
  match select_configuration log config device g with
  | None ->
      (* even the last ladder rung OOMs: report failure, with the ladder
         walk in the health log *)
      Health.record log ~member Health.Degraded
        (Printf.sprintf "OOM on every derating step (requested device %s)"
           device.Device.device_name);
      let compiled = Relaxation.compile config g in
      finish
        {
          result =
            {
              (Extractor.failed ~method_name:"smoothe" ~time_s:0.0) with
              Extractor.notes = [ ("oom", device.Device.device_name) ];
            };
          iterations = 0;
          best_seed = -1;
          batch_used = 0;
          prop_iters = compiled.Relaxation.prop_iters;
          profile = { loss_time = 0.0; grad_time = 0.0; sample_time = 0.0; total_time = 0.0 };
          history = [];
          oom = true;
          recoveries = 0;
          health = [];
          final_cp = None;
        }
  | Some { c_config; c_device; c_compiled; c_max_batch; c_desc; c_rung } ->
      let config = c_config and device = c_device and compiled = c_compiled in
      let batch = min config.Smoothe_config.batch c_max_batch in
      let n = Egraph.num_nodes g in
      (* A snapshot only resumes the run it was taken from: same graph,
         seed and (post-derating) batch. Anything else would silently
         continue a different optimisation, so it is refused loudly. *)
      let fingerprint =
        {
          Checkpoint.fp_graph = g.Egraph.name;
          fp_nodes = n;
          fp_classes = Egraph.num_classes g;
          fp_seed = config.Smoothe_config.seed;
          fp_batch = batch;
        }
      in
      let resume =
        match resume_from with
        | None -> None
        | Some snap when snap.Checkpoint.fingerprint = fingerprint -> Some snap
        | Some snap ->
            Health.record log ~member Health.Checkpoint_corrupt
              (Printf.sprintf "snapshot fingerprint %s does not match run %s; starting fresh"
                 (Checkpoint.fingerprint_to_string snap.Checkpoint.fingerprint)
                 (Checkpoint.fingerprint_to_string fingerprint));
            None
      in
      let rng = Rng.create config.Smoothe_config.seed in
      let theta = init_theta rng ~batch ~width:n ~std:config.Smoothe_config.init_std in
      let lr0 = config.Smoothe_config.lr in
      let opt = Optim.adam ~lr:lr0 [ theta ] in
      let rng =
        match resume with
        | None -> rng
        | Some snap ->
            (* replay the snapshot's health timeline first so counts and
               ordering match the uninterrupted run's log *)
            List.iter (Health.add log) snap.Checkpoint.health;
            Health.record log ~member Health.Resumed
              (Printf.sprintf "resumed at iteration %d (%.2fs of budget consumed)"
                 snap.Checkpoint.iter snap.Checkpoint.elapsed);
            Array.blit
              (Tensor.unsafe_data snap.Checkpoint.theta)
              0 (Tensor.unsafe_data theta) 0 (Tensor.numel theta);
            Optim.restore opt ~m:[| snap.Checkpoint.adam_m |] ~v:[| snap.Checkpoint.adam_v |]
              ~step:snap.Checkpoint.adam_step;
            Optim.set_lr opt snap.Checkpoint.adam_lr;
            Rng.of_state snap.Checkpoint.rng_state
      in
      let base_elapsed =
        match resume with Some snap -> snap.Checkpoint.elapsed | None -> 0.0
      in
      let deadline =
        let tl = config.Smoothe_config.time_limit in
        Timer.deadline_after (if tl > 0.0 then Float.max 1e-6 (tl -. base_elapsed) else tl)
      in
      let elapsed_now () = base_elapsed +. Timer.elapsed deadline in
      let restore_ref f default =
        match resume with Some snap -> ref (f snap) | None -> ref default
      in
      let loss_time = restore_ref (fun s -> s.Checkpoint.loss_time) 0.0
      and grad_time = restore_ref (fun s -> s.Checkpoint.grad_time) 0.0
      and sample_time = restore_ref (fun s -> s.Checkpoint.sample_time) 0.0 in
      let best_cost = restore_ref (fun s -> s.Checkpoint.best_cost) infinity in
      let best_solution =
        restore_ref
          (fun s ->
            Option.map
              (fun choice -> { Egraph.Solution.choice = Array.copy choice })
              s.Checkpoint.best_choice)
          None
      in
      let best_seed = restore_ref (fun s -> s.Checkpoint.best_seed) (-1) in
      (* cp row of the seed that produced the incumbent, at the
         iteration it was found — the marginals the hybrid pipeline
         fixes classes with. Not checkpointed: after a resume it stays
         None until the next improvement. *)
      let incumbent_cp = ref None in
      let last_improvement = restore_ref (fun s -> s.Checkpoint.last_improvement) 0 in
      let trace = restore_ref (fun s -> List.rev s.Checkpoint.trace) [] in
      let history =
        restore_ref
          (fun s ->
            List.rev_map
              (fun (iter, elapsed, relaxed_loss, sampled_cost, incumbent) ->
                { iter; elapsed; relaxed_loss; sampled_cost; incumbent })
              s.Checkpoint.history)
          []
      in
      let start_iter = match resume with Some snap -> snap.Checkpoint.iter | None -> 0 in
      let iters_done = ref start_iter in
      let recoveries = restore_ref (fun s -> s.Checkpoint.recoveries) 0 in
      let save_checkpoint st ~iter =
        let m, v, step = Optim.state opt in
        let snap =
          {
            Checkpoint.fingerprint;
            iter;
            elapsed = elapsed_now ();
            rng_state = Rng.state rng;
            theta = Tensor.copy theta;
            adam_m = m.(0);
            adam_v = v.(0);
            adam_step = step;
            adam_lr = Optim.lr opt;
            best_cost = !best_cost;
            best_seed = !best_seed;
            best_choice =
              Option.map (fun s -> Array.copy s.Egraph.Solution.choice) !best_solution;
            last_improvement = !last_improvement;
            recoveries = !recoveries;
            ladder_rung = c_rung;
            loss_time = !loss_time;
            grad_time = !grad_time;
            sample_time = !sample_time;
            trace = List.rev !trace;
            history =
              List.rev_map
                (fun h -> (h.iter, h.elapsed, h.relaxed_loss, h.sampled_cost, h.incumbent))
                !history;
            health = Health.events log;
          }
        in
        ignore (Checkpoint.save st snap)
      in
      let repair = config.Smoothe_config.repair_sampling in
      (* Static-plan replay state machine. Iterations run interpreted
         until two consecutive successful captures are structurally
         identical; the Plan_check dataflow analysis then derives and
         independently verifies a buffer arena, the capture compiles
         into a static schedule, and every later iteration replays with
         zero tape construction and zero tensor allocation. Any gate
         failure records a Preflight event and leaves the run on the
         interpreter — the plan must never change results, only cost. *)
      let plan_mode = config.Smoothe_config.plan in
      let plan_state =
        ref (match plan_mode with Smoothe_config.Plan_off -> `Off | _ -> `Cold)
      in
      let disable_plan why =
        Health.record log ~member Health.Preflight ("plan disabled: " ^ why);
        if !Obs.on then Metrics.incr "plan.disabled";
        plan_state := `Disabled
      in
      let advance_plan (fwd : Relaxation.forward) =
        match !plan_state with
        | `Off | `Disabled | `Ready _ -> ()
        | `Cold ->
            if Tensor.Backend.current () <> Tensor.Backend.Vectorized then
              disable_plan
                "the scalar backend models per-element dispatch and has no replay kernels"
            else
              plan_state := `Armed (Plan.capture fwd.Relaxation.tape ~root:fwd.Relaxation.loss)
        | `Armed c1 -> (
            Trace.with_span ~cat:"smoothe" "plan.capture"
            @@ fun () ->
            let c2 = Plan.capture fwd.Relaxation.tape ~root:fwd.Relaxation.loss in
            match Plan.stable c1 c2 with
            | Error why ->
                List.iter
                  (fun d -> Health.record log ~member Health.Preflight (Diagnostic.render d))
                  (Plan_check.stability c1.Plan.ir c2.Plan.ir);
                disable_plan why
            | Ok () -> (
                let rp_theta = Ad.node_id fwd.Relaxation.theta
                and rp_cp = Ad.node_id fwd.Relaxation.cp
                and rp_per_seed = Ad.node_id fwd.Relaxation.per_seed_cost
                and rp_penalty = Ad.node_id fwd.Relaxation.penalty
                and rp_loss = Ad.node_id fwd.Relaxation.loss in
                let outputs = [| rp_cp; rp_per_seed; rp_penalty; rp_loss |] in
                let grads = [| rp_theta |] in
                let report = Plan_check.analyze ~grads ~root:rp_loss ~outputs c2.Plan.ir in
                let blocking =
                  List.filter
                    (fun d -> d.Diagnostic.severity <> Diagnostic.Info)
                    report.Plan_check.diags
                in
                if !Obs.on then begin
                  Metrics.incr
                    ~by:(float_of_int (Diagnostic.errors report.Plan_check.diags))
                    "analysis.errors";
                  Metrics.incr
                    ~by:(float_of_int (Diagnostic.warnings report.Plan_check.diags))
                    "analysis.warnings"
                end;
                if blocking <> [] then begin
                  List.iter
                    (fun d ->
                      Health.record log ~member Health.Preflight (Diagnostic.render d))
                    blocking;
                  disable_plan "the dataflow analysis rejected the captured IR"
                end
                else
                  match
                    Plan.compile
                      ~arena:(Plan_check.arena_spec report)
                      ~chains:(Plan_check.plan_chains report)
                      ~outputs ~grads c2
                  with
                  | Error why -> disable_plan why
                  | Ok rp ->
                      let st = Plan.stats rp in
                      if !Obs.on then begin
                        Metrics.set_gauge "plan.arena_bytes"
                          (float_of_int st.Plan.arena_bytes);
                        Metrics.incr ~by:(float_of_int st.Plan.fused_nodes) "plan.fused_ops"
                      end;
                      Health.record log ~member Health.Preflight
                        (Printf.sprintf
                           "plan armed: %d nodes, %d KiB arena + %d KiB pinned (interpreter \
                            allocates %d KiB per iteration), %d ops fused into %d chains"
                           st.Plan.nodes
                           (st.Plan.arena_bytes / 1024)
                           (st.Plan.dedicated_bytes / 1024)
                           (report.Plan_check.naive_bytes / 1024)
                           st.Plan.fused_nodes st.Plan.chains);
                      plan_state :=
                        `Ready { rp; rp_theta; rp_cp; rp_per_seed; rp_penalty; rp_loss }))
      in
      (* a crash (injected or real) must not lose the supervision
         timeline: merge it into the shared log before re-raising so the
         supervisor's retry sees what happened *)
      (try
         Trace.with_span ~cat:"smoothe"
           ~attrs:
             (if !Obs.on then
                [ ("batch", string_of_int batch); ("nodes", string_of_int n) ]
              else [])
           "smoothe.extract"
         @@ fun () ->
         Device.run device (fun () ->
          let iter = ref start_iter in
          let stop = ref false in
          (* Numeric recovery: a non-finite loss or gradient must never
             reach the Adam state or the incumbent. Each strike resets
             the optimiser moments, backs the learning rate off by 2x,
             and (from the second strike) re-randomises theta from a
             fresh seed stream; after [max_recoveries] strikes the loop
             stops and keeps its incumbent. *)
          let recover what =
            Health.record log ~member Health.Nan_detected
              (Printf.sprintf "iteration %d: non-finite %s" !iter what);
            if !Obs.on then Metrics.incr "smoothe.nan_recoveries";
            incr recoveries;
            if !recoveries > max_recoveries then begin
              Health.record log ~member Health.Degraded
                (Printf.sprintf "%d numeric recoveries exhausted; keeping incumbent"
                   max_recoveries);
              stop := true
            end
            else begin
              Optim.reset opt;
              let lr = lr0 *. (0.5 ** float_of_int !recoveries) in
              Optim.set_lr opt lr;
              let d = Tensor.unsafe_data theta in
              if !recoveries >= 2 then begin
                let seed = config.Smoothe_config.seed + (7919 * !recoveries) in
                let rng' = Rng.create seed in
                for i = 0 to Tensor.numel theta - 1 do
                  d.(i) <- config.Smoothe_config.init_std *. Rng.gaussian rng'
                done;
                Health.record log ~member Health.Recovery
                  (Printf.sprintf "adam reset, lr %.3g, theta re-randomised (seed %d)" lr seed)
              end
              else begin
                for i = 0 to Tensor.numel theta - 1 do
                  if not (Float.is_finite d.(i)) then d.(i) <- 0.0
                done;
                Health.record log ~member Health.Recovery
                  (Printf.sprintf "adam reset, lr backed off to %.3g" lr)
              end
            end
          in
          (* Per-iteration tail — sampling, incumbent tracking, history —
             identical whether the step was interpreted or replayed, so
             both executors feed it their own output tensors. *)
          let sample_and_log ~loss_ok ~grad_ok ~cp ~per_seed ~penalty =
            if loss_ok && grad_ok then begin
              (* sample every iteration (§3.5) *)
              let sampled, t_smp =
                Timer.time (fun () ->
                    Trace.with_span ~cat:"smoothe" "smoothe.sample" (fun () ->
                        Sampler.best_of_batch ~repair g ~model ~cp))
              in
              sample_time := !sample_time +. t_smp;
              let sampled_cost =
                match sampled with
                | Some (seed, s, cost) ->
                    if cost < !best_cost -. 1e-12 then begin
                      best_cost := cost;
                      best_solution := Some s;
                      best_seed := seed;
                      last_improvement := !iter;
                      trace := (elapsed_now (), cost) :: !trace;
                      incumbent_cp := Some (Array.init n (fun i -> Tensor.get cp seed i))
                    end;
                    cost
                | None -> infinity
              in
              (* relaxed loss of the best seed this iteration, for Fig. 9 *)
              let relaxed_loss =
                let h = Tensor.get penalty 0 0 in
                let best = ref infinity in
                for b = 0 to batch - 1 do
                  let v = Tensor.get per_seed b 0 in
                  if v < !best then best := v
                done;
                !best +. (config.Smoothe_config.lambda_ *. h)
              in
              if !Obs.on then begin
                Metrics.observe "smoothe.loss" relaxed_loss;
                if Float.is_finite !best_cost then
                  Metrics.set_gauge "smoothe.incumbent" !best_cost
              end;
              history :=
                {
                  iter = !iter;
                  elapsed = elapsed_now ();
                  relaxed_loss;
                  sampled_cost;
                  incumbent = !best_cost;
                }
                :: !history
            end
            else begin
              recover (if loss_ok then "gradient" else "loss");
              history :=
                {
                  iter = !iter;
                  elapsed = elapsed_now ();
                  relaxed_loss = Float.nan;
                  sampled_cost = infinity;
                  incumbent = !best_cost;
                }
                :: !history
            end
          in
          while (not !stop) && !iter < config.Smoothe_config.max_iters do
            incr iter;
            iters_done := !iter;
            Fault_plan.crash_now ~iter:!iter;
            if !Obs.on then Metrics.incr "smoothe.iterations";
            Trace.with_span ~cat:"smoothe"
              ~attrs:(if !Obs.on then [ ("iteration", string_of_int !iter) ] else [])
              "smoothe.iter"
            @@ fun () ->
            (match (!plan_state, plan_mode) with
            | `Ready r, Smoothe_config.Plan_on ->
                (* verified replay: the static schedule re-runs the
                   captured iteration over the arena — no tape, no
                   tensor allocation *)
                if !Obs.on then Metrics.incr "plan.replays";
                let (), t_fwd =
                  Timer.time (fun () ->
                      Trace.with_span ~cat:"smoothe" "plan.replay" (fun () ->
                          Plan.run_forward r.rp))
                in
                loss_time := !loss_time +. t_fwd;
                let loss_ok = Tensor.all_finite (Plan.value r.rp r.rp_loss) in
                let grad_ok = ref false in
                if loss_ok then begin
                  let (), t_bwd =
                    Timer.time (fun () ->
                        Trace.with_span ~cat:"smoothe" "plan.replay.backward" (fun () ->
                            Plan.run_backward r.rp);
                        let grad = Plan.grad_of r.rp r.rp_theta in
                        if Tensor.all_finite grad then begin
                          grad_ok := true;
                          Trace.with_span ~cat:"smoothe" "smoothe.adam_step" (fun () ->
                              let norm = Optim.clip_grad_norm ~max_norm:100.0 [ grad ] in
                              if !Obs.on then Metrics.observe "smoothe.grad_norm" norm;
                              Optim.adam_step opt [ grad ])
                        end)
                  in
                  grad_time := !grad_time +. t_bwd
                end;
                sample_and_log ~loss_ok ~grad_ok:!grad_ok
                  ~cp:(Plan.value r.rp r.rp_cp)
                  ~per_seed:(Plan.value r.rp r.rp_per_seed)
                  ~penalty:(Plan.value r.rp r.rp_penalty)
            | st, _ ->
                (* interpreted step — and, in check mode with a ready
                   plan, a shadow replay asserted bit-identical to it *)
                let shadow =
                  match (st, plan_mode) with
                  | `Ready r, Smoothe_config.Plan_check -> Some r
                  | _ -> None
                in
                (* forward, under the (possibly annealed) temperature *)
                let temperature =
                  Float.max config.Smoothe_config.min_temperature
                    (config.Smoothe_config.temperature
                    *. (config.Smoothe_config.temperature_decay
                       ** float_of_int (!iter - 1)))
                in
                let fwd, t_fwd =
                  Timer.time (fun () ->
                      Trace.with_span ~cat:"smoothe" "smoothe.forward" (fun () ->
                          Relaxation.forward ~temperature compiled ~config ~model ~theta))
                in
                loss_time := !loss_time +. t_fwd;
                (match shadow with
                | Some r ->
                    if !Obs.on then Metrics.incr "plan.replays";
                    Trace.with_span ~cat:"smoothe" "plan.replay" (fun () ->
                        Plan.run_forward r.rp);
                    let bits what plan_t interp_t =
                      if not (Tensor.bits_equal plan_t interp_t) then
                        failwith
                          (Printf.sprintf
                             "plan check: replayed %s diverges bitwise from the \
                              interpreter at iteration %d"
                             what !iter)
                    in
                    bits "loss" (Plan.value r.rp r.rp_loss) (Ad.value fwd.Relaxation.loss);
                    bits "cp" (Plan.value r.rp r.rp_cp) (Ad.value fwd.Relaxation.cp);
                    bits "per-seed cost"
                      (Plan.value r.rp r.rp_per_seed)
                      (Ad.value fwd.Relaxation.per_seed_cost);
                    bits "penalty"
                      (Plan.value r.rp r.rp_penalty)
                      (Ad.value fwd.Relaxation.penalty)
                | None -> ());
                let loss_ok = Tensor.all_finite (Ad.value fwd.Relaxation.loss) in
                let grad_ok = ref false in
                if loss_ok then begin
                  (* backward + step, guarded: a poisoned gradient skips
                     the Adam update entirely *)
                  let (), t_bwd =
                    Timer.time (fun () ->
                        Trace.with_span ~cat:"smoothe" "smoothe.backward" (fun () ->
                            Ad.backward fwd.Relaxation.loss);
                        let grad = Ad.grad fwd.Relaxation.theta in
                        (match shadow with
                        | Some r ->
                            Trace.with_span ~cat:"smoothe" "plan.replay.backward"
                              (fun () -> Plan.run_backward r.rp);
                            if not (Tensor.bits_equal (Plan.grad_of r.rp r.rp_theta) grad)
                            then
                              failwith
                                (Printf.sprintf
                                   "plan check: replayed theta gradient diverges bitwise \
                                    from the interpreter at iteration %d"
                                   !iter)
                        | None -> ());
                        if Tensor.all_finite grad then begin
                          grad_ok := true;
                          Trace.with_span ~cat:"smoothe" "smoothe.adam_step" (fun () ->
                              let norm = Optim.clip_grad_norm ~max_norm:100.0 [ grad ] in
                              if !Obs.on then Metrics.observe "smoothe.grad_norm" norm;
                              Optim.adam_step opt [ grad ])
                        end)
                  in
                  grad_time := !grad_time +. t_bwd
                end;
                sample_and_log ~loss_ok ~grad_ok:!grad_ok
                  ~cp:(Ad.value fwd.Relaxation.cp)
                  ~per_seed:(Ad.value fwd.Relaxation.per_seed_cost)
                  ~penalty:(Ad.value fwd.Relaxation.penalty);
                if loss_ok && !grad_ok then advance_plan fwd);
            (match checkpoint with
             | Some st when checkpoint_every > 0 && !iter mod checkpoint_every = 0 ->
                 save_checkpoint st ~iter:!iter
             | _ -> ());
            if Timer.expired deadline then stop := true
            else if
              !best_solution <> None
              && !iter - !last_improvement >= config.Smoothe_config.patience
            then stop := true
          done)
       with e ->
         drain ();
         (match health with Some shared -> Health.merge ~into:shared log | None -> ());
         raise e);
      let total = !loss_time +. !grad_time +. !sample_time in
      let notes =
        [
          ("assumption", Smoothe_config.assumption_name config.Smoothe_config.assumption);
          ("batch", string_of_int batch);
          ("device", device.Device.device_name);
        ]
        @ (match c_desc with Some d -> [ ("derated", d) ] | None -> [])
        @
        if !recoveries > 0 then [ ("recoveries", string_of_int !recoveries) ] else []
      in
      let result =
        Extractor.make_with_model
          ~trace:(List.rev !trace)
          ~notes ~method_name:"smoothe" ~time_s:total ~model g !best_solution
      in
      finish
        {
          result;
          iterations = !iters_done;
          best_seed = !best_seed;
          batch_used = batch;
          prop_iters = compiled.Relaxation.prop_iters;
          profile =
            {
              loss_time = !loss_time;
              grad_time = !grad_time;
              sample_time = !sample_time;
              total_time = total;
            };
          history = List.rev !history;
          oom = false;
          recoveries = 0;
          health = [];
          final_cp = !incumbent_cp;
        }
