type profile = {
  loss_time : float;
  grad_time : float;
  sample_time : float;
  total_time : float;
}

type history_point = {
  iter : int;
  elapsed : float;
  relaxed_loss : float;
  sampled_cost : float;
  incumbent : float;
}

type run = {
  result : Extractor.r;
  iterations : int;
  best_seed : int;
  batch_used : int;
  prop_iters : int;
  profile : profile;
  history : history_point list;
  oom : bool;
}

let init_theta rng ~batch ~width ~std =
  Tensor.init ~batch ~width (fun _ _ -> std *. Rng.gaussian rng)

let extract ?(config = Smoothe_config.default) ?model ?(device = Device.a100) g =
  let model = match model with Some m -> m | None -> Cost_model.of_egraph g in
  let compiled = Relaxation.compile config g in
  let fp =
    Device.footprint g ~prop_iters:compiled.Relaxation.prop_iters
      ~scc_decomposition:config.Smoothe_config.scc_decomposition
      ~batched_matexp:config.Smoothe_config.batched_matexp
  in
  let max_batch = Device.max_batch device fp in
  if max_batch = 0 then
    {
      result =
        {
          (Extractor.failed ~method_name:"smoothe" ~time_s:0.0) with
          Extractor.notes = [ ("oom", device.Device.device_name) ];
        };
      iterations = 0;
      best_seed = -1;
      batch_used = 0;
      prop_iters = compiled.Relaxation.prop_iters;
      profile = { loss_time = 0.0; grad_time = 0.0; sample_time = 0.0; total_time = 0.0 };
      history = [];
      oom = true;
    }
  else begin
    let batch = min config.Smoothe_config.batch max_batch in
    let rng = Rng.create config.Smoothe_config.seed in
    let n = Egraph.num_nodes g in
    let theta = init_theta rng ~batch ~width:n ~std:config.Smoothe_config.init_std in
    let opt = Optim.adam ~lr:config.Smoothe_config.lr [ theta ] in
    let deadline = Timer.deadline_after config.Smoothe_config.time_limit in
    let loss_time = ref 0.0 and grad_time = ref 0.0 and sample_time = ref 0.0 in
    let best_cost = ref infinity in
    let best_solution = ref None in
    let best_seed = ref (-1) in
    let last_improvement = ref 0 in
    let trace = ref [] in
    let history = ref [] in
    let iters_done = ref 0 in
    let repair = config.Smoothe_config.repair_sampling in
    Device.run device (fun () ->
        let iter = ref 0 in
        let stop = ref false in
        while (not !stop) && !iter < config.Smoothe_config.max_iters do
          incr iter;
          iters_done := !iter;
          (* forward, under the (possibly annealed) temperature *)
          let temperature =
            Float.max config.Smoothe_config.min_temperature
              (config.Smoothe_config.temperature
              *. (config.Smoothe_config.temperature_decay ** float_of_int (!iter - 1)))
          in
          let fwd, t_fwd =
            Timer.time (fun () -> Relaxation.forward ~temperature compiled ~config ~model ~theta)
          in
          loss_time := !loss_time +. t_fwd;
          (* backward + step *)
          let (), t_bwd =
            Timer.time (fun () ->
                Ad.backward fwd.Relaxation.loss;
                let grad = Ad.grad fwd.Relaxation.theta in
                ignore (Optim.clip_grad_norm ~max_norm:100.0 [ grad ]);
                Optim.adam_step opt [ grad ])
          in
          grad_time := !grad_time +. t_bwd;
          (* sample every iteration (§3.5) *)
          let sampled, t_smp =
            Timer.time (fun () ->
                Sampler.best_of_batch ~repair g ~model ~cp:(Ad.value fwd.Relaxation.cp))
          in
          sample_time := !sample_time +. t_smp;
          let sampled_cost =
            match sampled with
            | Some (seed, s, cost) ->
                if cost < !best_cost -. 1e-12 then begin
                  best_cost := cost;
                  best_solution := Some s;
                  best_seed := seed;
                  last_improvement := !iter;
                  trace := (Timer.elapsed deadline, cost) :: !trace
                end;
                cost
            | None -> infinity
          in
          (* relaxed loss of the best seed this iteration, for Fig. 9 *)
          let relaxed_loss =
            let per_seed = Ad.value fwd.Relaxation.per_seed_cost in
            let h = Tensor.get (Ad.value fwd.Relaxation.penalty) 0 0 in
            let best = ref infinity in
            for b = 0 to batch - 1 do
              let v = Tensor.get per_seed b 0 in
              if v < !best then best := v
            done;
            !best +. (config.Smoothe_config.lambda_ *. h)
          in
          history :=
            {
              iter = !iter;
              elapsed = Timer.elapsed deadline;
              relaxed_loss;
              sampled_cost;
              incumbent = !best_cost;
            }
            :: !history;
          if Timer.expired deadline then stop := true
          else if
            !best_solution <> None
            && !iter - !last_improvement >= config.Smoothe_config.patience
          then stop := true
        done);
    let total = !loss_time +. !grad_time +. !sample_time in
    let result =
      Extractor.make_with_model
        ~trace:(List.rev !trace)
        ~notes:
          [
            ("assumption", Smoothe_config.assumption_name config.Smoothe_config.assumption);
            ("batch", string_of_int batch);
            ("device", device.Device.device_name);
          ]
        ~method_name:"smoothe" ~time_s:total ~model g !best_solution
    in
    {
      result;
      iterations = !iters_done;
      best_seed = !best_seed;
      batch_used = batch;
      prop_iters = compiled.Relaxation.prop_iters;
      profile =
        {
          loss_time = !loss_time;
          grad_time = !grad_time;
          sample_time = !sample_time;
          total_time = total;
        };
      history = List.rev !history;
      oom = false;
    }
  end
