type scc_block = {
  dim : int;
  classes : int array;
  entries : (int * int * int) array;
}

type compiled = {
  g : Egraph.t;
  prop_iters : int;
  blocks : scc_block array;
}

(* A component can host a cycle iff it has more than one class, or a
   single class one of whose nodes depends on the class itself. *)
let build_blocks g =
  let blocks = Vec.create () in
  Array.iter
    (fun classes ->
      let dim = Array.length classes in
      let self_loop =
        dim = 1
        && Array.exists (fun c -> c = classes.(0)) g.Egraph.class_children.(classes.(0))
      in
      if dim > 1 || self_loop then begin
        let local = Hashtbl.create dim in
        Array.iteri (fun i c -> Hashtbl.add local c i) classes;
        let entries = Vec.create () in
        Array.iteri
          (fun i c ->
            Array.iter
              (fun k ->
                (* node k of class c: one entry per distinct child class
                   inside this component *)
                let seen = Hashtbl.create 4 in
                Array.iter
                  (fun child ->
                    match Hashtbl.find_opt local child with
                    | Some j when not (Hashtbl.mem seen j) ->
                        Hashtbl.add seen j ();
                        Vec.push entries (k, i, j)
                    | Some _ | None -> ())
                  g.Egraph.children.(k))
              g.Egraph.class_nodes.(c))
          classes;
        if not (Vec.is_empty entries) then
          Vec.push blocks { dim; classes; entries = Vec.to_array entries }
      end)
    g.Egraph.sccs;
  Vec.to_array blocks

(* Without SCC decomposition (the Figure 6 ablation's baseline) the
   NOTEARS term runs on the full M×M class adjacency. *)
let build_full_block g =
  let m = Egraph.num_classes g in
  if m = 0 then [||]
  else begin
    let classes = Array.init m Fun.id in
    let entries = Vec.create () in
    for k = 0 to Egraph.num_nodes g - 1 do
      let i = g.Egraph.node_class.(k) in
      let seen = Hashtbl.create 4 in
      Array.iter
        (fun j ->
          if not (Hashtbl.mem seen j) then begin
            Hashtbl.add seen j ();
            Vec.push entries (k, i, j)
          end)
        g.Egraph.children.(k)
    done;
    [| { dim = m; classes; entries = Vec.to_array entries } |]
  end

let compile config g =
  let blocks =
    if config.Smoothe_config.scc_decomposition then build_blocks g else build_full_block g
  in
  { g; prop_iters = Smoothe_config.derive_prop_iters config g; blocks }

type forward = {
  tape : Ad.tape;
  theta : Ad.v;
  cp : Ad.v;
  p : Ad.v;
  per_seed_cost : Ad.v;
  penalty : Ad.v;
  loss : Ad.v;
}

(* One parallel-schedule update of the class probabilities q from the
   node probabilities p (§3.3): under independence Eq. (6), under full
   correlation Eq. (7), hybrid averages the two. The root is pinned at
   probability 1. *)
let step_q config g tape p =
  let parent_p = Ad.gather p g.Egraph.parent_edge_node in
  let seg = g.Egraph.parent_seg in
  let q =
    match config.Smoothe_config.assumption with
    | Smoothe_config.Independent ->
        Ad.one_minus (Ad.segment_prod (Ad.one_minus parent_p) seg)
    | Smoothe_config.Correlated -> Ad.segment_max parent_p seg
    | Smoothe_config.Hybrid ->
        let ind = Ad.one_minus (Ad.segment_prod (Ad.one_minus parent_p) seg) in
        let cor = Ad.segment_max parent_p seg in
        Ad.scale 0.5 (Ad.add ind cor)
  in
  ignore tape;
  Ad.override_columns q [ (g.Egraph.root, 1.0) ]

let propagate compiled ~config tape cp =
  let g = compiled.g in
  let batch = (Ad.value cp).Tensor.batch in
  let m = Egraph.num_classes g in
  (* q⁰: root = 1, everything else 0. *)
  let q0 = Tensor.create ~batch ~width:m in
  for b = 0 to batch - 1 do
    Tensor.set q0 b g.Egraph.root 1.0
  done;
  let q = ref (Ad.const tape q0) in
  let p = ref (Ad.mul cp (Ad.gather !q g.Egraph.node_class)) in
  for _ = 1 to compiled.prop_iters do
    q := step_q config g tape !p;
    p := Ad.mul cp (Ad.gather !q g.Egraph.node_class)
  done;
  !p

let penalty_of_cp compiled tape cp_rows =
  (* cp_rows: (1, N) — either the batch mean (Eq. 11) or one seed. *)
  Array.fold_left
    (fun acc block ->
      let a = Ad.matrix_of_entries cp_rows ~dim:block.dim block.entries in
      let h = Ad.add_scalar (-.float_of_int block.dim) (Ad.expm_trace a) in
      match acc with None -> Some h | Some t -> Some (Ad.add t h))
    None compiled.blocks
  |> function
  | Some v -> v
  | None -> Ad.const tape (Tensor.create ~batch:1 ~width:1)

let forward ?(temperature = 1.0) compiled ~config ~model ~theta =
  (* provenance label for the recorded op-graph IR: shape/grad-flow
     diagnostics on this tape say "built in smoothe.forward" *)
  Ad.with_context "smoothe.forward" @@ fun () ->
  let tape = Ad.tape () in
  let g = compiled.g in
  let theta_v = Ad.param tape theta in
  let logits =
    if temperature = 1.0 then theta_v else Ad.scale (1.0 /. Float.max 1e-6 temperature) theta_v
  in
  let cp = Ad.segment_softmax logits g.Egraph.class_seg in
  let p = propagate compiled ~config tape cp in
  let per_seed_cost = Cost_model.relaxed model tape p in
  let batch = theta.Tensor.batch in
  let penalty =
    if Array.length compiled.blocks = 0 then Ad.const tape (Tensor.create ~batch:1 ~width:1)
    else if config.Smoothe_config.batched_matexp then
      (* Eq. (11): exp of the averaged adjacency, once for the batch. *)
      penalty_of_cp compiled tape (Ad.mean_rows cp)
    else begin
      let acc = ref None in
      for b = 0 to batch - 1 do
        let h = penalty_of_cp compiled tape (Ad.slice_row cp b) in
        acc := (match !acc with None -> Some h | Some t -> Some (Ad.add t h))
      done;
      match !acc with Some v -> v | None -> Ad.const tape (Tensor.create ~batch:1 ~width:1)
    end
  in
  let penalty_scale =
    (* With batched matexp one shared term stands in for B per-seed
       terms; scale so λ means the same thing in both modes. *)
    if config.Smoothe_config.batched_matexp then
      config.Smoothe_config.lambda_ *. float_of_int batch
    else config.Smoothe_config.lambda_
  in
  let base = Ad.add (Ad.sum_all per_seed_cost) (Ad.scale penalty_scale penalty) in
  let loss =
    (* optional entropy bonus: subtracting w·H(cp) = adding w·Σ cp log cp
       would *sharpen*; we add −w·Σ cp log cp so positive weights keep
       the distribution spread out early in the run (our extension) *)
    let w = config.Smoothe_config.entropy_weight in
    if w = 0.0 then base
    else Ad.add base (Ad.scale w (Ad.sum_all (Ad.mul cp (Ad.log_safe cp))))
  in
  { tape; theta = theta_v; cp; p; per_seed_cost; penalty; loss }

let acyclicity_value compiled ~cp =
  let tape = Ad.tape () in
  let mean = Tensor.mean_rows cp in
  let v = penalty_of_cp compiled tape (Ad.const tape mean) in
  Tensor.get (Ad.value v) 0 0
