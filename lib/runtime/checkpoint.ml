(* Durable, versioned run snapshots.

   On-disk frame (all integers little-endian):

     bytes 0..3    magic "SMCK"
     bytes 4..7    format version (u32)
     bytes 8..15   payload length (u64)
     bytes 16..19  CRC-32 of the payload (u32)
     bytes 20..    payload

   The payload is a flat, hand-rolled binary encoding (no Marshal: the
   format must be stable across compiler versions and checkable field
   by field). Every read is bounds-checked and every length sanity-
   checked against the remaining bytes, so a truncated or bit-flipped
   file surfaces as [Corrupt], never as an out-of-bounds read or a
   silently wrong snapshot. *)

let magic = "SMCK"
let format_version = 1

exception Corrupt of string

(* ------------------------------------------------------------- types *)

type fingerprint = {
  fp_graph : string;
  fp_nodes : int;
  fp_classes : int;
  fp_seed : int;
  fp_batch : int;
}

let fingerprint_to_string fp =
  Printf.sprintf "%s[N=%d,M=%d,seed=%d,batch=%d]" fp.fp_graph fp.fp_nodes fp.fp_classes
    fp.fp_seed fp.fp_batch

type snapshot = {
  fingerprint : fingerprint;
  iter : int;
  elapsed : float;  (* budget seconds consumed when the snapshot was taken *)
  rng_state : int64 array;
  theta : Tensor.t;
  adam_m : Tensor.t;
  adam_v : Tensor.t;
  adam_step : int;
  adam_lr : float;
  best_cost : float;
  best_seed : int;
  best_choice : int option array option;
  last_improvement : int;
  recoveries : int;
  ladder_rung : int;
  loss_time : float;
  grad_time : float;
  sample_time : float;
  trace : (float * float) list;
  history : (int * float * float * float * float) list;
  health : Health.event list;
}

(* ------------------------------------------------------------ writing *)

let w_i64 buf (x : int64) = Buffer.add_int64_le buf x
let w_int buf n = w_i64 buf (Int64.of_int n)
let w_f64 buf f = w_i64 buf (Int64.bits_of_float f)

let w_str buf s =
  w_int buf (String.length s);
  Buffer.add_string buf s

let w_list w buf l =
  w_int buf (List.length l);
  List.iter (w buf) l

let w_tensor buf t =
  w_int buf t.Tensor.batch;
  w_int buf t.Tensor.width;
  Array.iter (w_f64 buf) (Tensor.unsafe_data t)

(* per-class choice: node id >= 0, None encoded as -1 *)
let w_choice buf c =
  match c with
  | None -> w_int buf (-1)
  | Some choice ->
      w_int buf (Array.length choice);
      Array.iter (fun o -> w_int buf (match o with None -> -1 | Some n -> n)) choice

let w_event buf (e : Health.event) =
  w_f64 buf e.Health.at;
  w_str buf e.Health.member;
  w_str buf (Health.kind_name e.Health.kind);
  w_str buf e.Health.detail

let encode snap =
  let buf = Buffer.create 4096 in
  w_str buf snap.fingerprint.fp_graph;
  w_int buf snap.fingerprint.fp_nodes;
  w_int buf snap.fingerprint.fp_classes;
  w_int buf snap.fingerprint.fp_seed;
  w_int buf snap.fingerprint.fp_batch;
  w_int buf snap.iter;
  w_f64 buf snap.elapsed;
  Array.iter (w_i64 buf) snap.rng_state;
  w_tensor buf snap.theta;
  w_tensor buf snap.adam_m;
  w_tensor buf snap.adam_v;
  w_int buf snap.adam_step;
  w_f64 buf snap.adam_lr;
  w_f64 buf snap.best_cost;
  w_int buf snap.best_seed;
  w_choice buf snap.best_choice;
  w_int buf snap.last_improvement;
  w_int buf snap.recoveries;
  w_int buf snap.ladder_rung;
  w_f64 buf snap.loss_time;
  w_f64 buf snap.grad_time;
  w_f64 buf snap.sample_time;
  w_list (fun buf (t, c) -> w_f64 buf t; w_f64 buf c) buf snap.trace;
  w_list
    (fun buf (i, e, r, s, inc) ->
      w_int buf i; w_f64 buf e; w_f64 buf r; w_f64 buf s; w_f64 buf inc)
    buf snap.history;
  w_list w_event buf snap.health;
  Buffer.contents buf

(* ------------------------------------------------------------ reading *)

type reader = { src : string; mutable pos : int }

let need r n =
  if n < 0 || r.pos + n > String.length r.src then raise (Corrupt "truncated payload")

let r_i64 r =
  need r 8;
  let v = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  v

let r_int r = Int64.to_int (r_i64 r)
let r_f64 r = Int64.float_of_bits (r_i64 r)

let r_count r ~elt_bytes what =
  let n = r_int r in
  if n < 0 || (elt_bytes > 0 && n > (String.length r.src - r.pos) / elt_bytes) then
    raise (Corrupt (Printf.sprintf "implausible %s count %d" what n));
  n

let r_str r =
  let n = r_count r ~elt_bytes:1 "string length" in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let r_list f r what =
  let n = r_count r ~elt_bytes:1 what in
  List.init n (fun _ -> f r)

let r_tensor r =
  let batch = r_int r and width = r_int r in
  if batch < 1 || width < 1 || batch > max_int / 8 / max 1 width
     || batch * width * 8 > String.length r.src - r.pos
  then raise (Corrupt (Printf.sprintf "implausible tensor shape %dx%d" batch width));
  let data = Array.init (batch * width) (fun _ -> r_f64 r) in
  Tensor.of_array ~batch ~width data

let r_choice r =
  let n = r_int r in
  if n < -1 || n > String.length r.src - r.pos then
    raise (Corrupt (Printf.sprintf "implausible choice count %d" n));
  if n = -1 then None
  else
    Some
      (Array.init n (fun _ ->
           let v = r_int r in
           if v < -1 then raise (Corrupt "negative node id in choice");
           if v = -1 then None else Some v))

let r_event r =
  let at = r_f64 r in
  let member = r_str r in
  let kind_name = r_str r in
  let detail = r_str r in
  match Health.kind_of_name kind_name with
  | Some kind -> { Health.at; member; kind; detail }
  | None -> raise (Corrupt (Printf.sprintf "unknown health kind %S" kind_name))

let decode payload =
  let r = { src = payload; pos = 0 } in
  let fp_graph = r_str r in
  let fp_nodes = r_int r in
  let fp_classes = r_int r in
  let fp_seed = r_int r in
  let fp_batch = r_int r in
  let iter = r_int r in
  let elapsed = r_f64 r in
  let rng_state = Array.init 4 (fun _ -> r_i64 r) in
  let theta = r_tensor r in
  let adam_m = r_tensor r in
  let adam_v = r_tensor r in
  let adam_step = r_int r in
  let adam_lr = r_f64 r in
  let best_cost = r_f64 r in
  let best_seed = r_int r in
  let best_choice = r_choice r in
  let last_improvement = r_int r in
  let recoveries = r_int r in
  let ladder_rung = r_int r in
  let loss_time = r_f64 r in
  let grad_time = r_f64 r in
  let sample_time = r_f64 r in
  let trace = r_list (fun r -> let t = r_f64 r in let c = r_f64 r in (t, c)) r "trace" in
  let history =
    r_list
      (fun r ->
        let i = r_int r in
        let e = r_f64 r in
        let rl = r_f64 r in
        let s = r_f64 r in
        let inc = r_f64 r in
        (i, e, rl, s, inc))
      r "history"
  in
  let health = r_list r_event r "health" in
  if r.pos <> String.length payload then raise (Corrupt "trailing bytes after snapshot");
  {
    fingerprint = { fp_graph; fp_nodes; fp_classes; fp_seed; fp_batch };
    iter; elapsed; rng_state; theta; adam_m; adam_v; adam_step; adam_lr;
    best_cost; best_seed; best_choice; last_improvement; recoveries; ladder_rung;
    loss_time; grad_time; sample_time; trace; history; health;
  }

(* ------------------------------------------------------------ framing *)

let header_len = 20

let serialize snap =
  let payload = encode snap in
  let buf = Buffer.create (String.length payload + header_len) in
  Buffer.add_string buf magic;
  Buffer.add_int32_le buf (Int32.of_int format_version);
  Buffer.add_int64_le buf (Int64.of_int (String.length payload));
  Buffer.add_int32_le buf (Int32.of_int (Checksum.crc32 payload));
  Buffer.add_string buf payload;
  Buffer.contents buf

let deserialize s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if String.length s < header_len then err "file shorter than the %d-byte header" header_len
  else if String.sub s 0 4 <> magic then err "bad magic (not a checkpoint file)"
  else begin
    let version = Int32.to_int (String.get_int32_le s 4) in
    if version <> format_version then err "unsupported checkpoint version %d" version
    else begin
      (* compare the length as a full 64-bit value: [Int64.to_int]
         truncates modulo 2^63, so a corrupted top bit would otherwise
         leave the truncated length unchanged and slip past this check
         (the CRC only covers the payload, not the header) *)
      let payload_len64 = String.get_int64_le s 8 in
      if Int64.compare payload_len64 (Int64.of_int (String.length s - header_len)) <> 0
      then
        err "length mismatch: header says %Ld payload bytes, file has %d (torn write?)"
          payload_len64
          (String.length s - header_len)
      else begin
        let payload_len = Int64.to_int payload_len64 in
        let stored_crc = Int32.to_int (String.get_int32_le s 16) land 0xFFFFFFFF in
        let actual_crc = Checksum.crc32 ~off:header_len ~len:payload_len s in
        if stored_crc <> actual_crc then
          err "checksum mismatch (stored %08x, computed %08x)" stored_crc actual_crc
        else
          match decode (String.sub s header_len payload_len) with
          | snap -> Ok snap
          | exception Corrupt msg -> Error msg
      end
    end
  end

(* ------------------------------------------------------------- store *)

type store = { dir : string; base : string; keep : int }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let store ?(keep = 3) ~dir ~name () =
  if keep < 1 then invalid_arg "Checkpoint.store: keep must be >= 1";
  if name = "" || String.contains name '/' then
    invalid_arg "Checkpoint.store: name must be a non-empty path-free label";
  mkdir_p dir;
  { dir; base = name; keep }

let dir st = st.dir

let path st gen = Filename.concat st.dir (Printf.sprintf "%s.%08d.ckpt" st.base gen)

(* generation numbers present on disk, newest first *)
let generations st =
  match Sys.readdir st.dir with
  | exception Sys_error _ -> []
  | files ->
      let prefix = st.base ^ "." and suffix = ".ckpt" in
      let parse f =
        let pl = String.length prefix and sl = String.length suffix in
        if
          String.length f > pl + sl
          && String.sub f 0 pl = prefix
          && String.sub f (String.length f - sl) sl = suffix
        then int_of_string_opt (String.sub f pl (String.length f - pl - sl))
        else None
      in
      Array.to_list files |> List.filter_map parse |> List.sort (fun a b -> compare b a)


let save st snap =
  Trace.with_span ~cat:"checkpoint"
    ~attrs:(if !Obs.on then [ ("iter", string_of_int snap.iter) ] else [])
    "checkpoint.write"
  @@ fun () ->
  let gen = match generations st with g :: _ -> g + 1 | [] -> 1 in
  let data = serialize snap in
  (* a torn-write fault loses the tail of the file, as if power failed
     between the data blocks and the metadata update *)
  let data =
    if Fault_plan.torn_write () then String.sub data 0 (String.length data / 2) else data
  in
  Fsio.write_atomic ~path:(path st gen) data;
  if !Obs.on then begin
    Metrics.incr "checkpoint.writes";
    Metrics.incr ~by:(float_of_int (String.length data)) "checkpoint.bytes_written"
  end;
  (* rotate: keep the newest [keep] generations *)
  (match generations st with
  | gens ->
      List.iteri
        (fun i g -> if i >= st.keep then try Sys.remove (path st g) with Sys_error _ -> ())
        gens);
  gen

let read_file p =
  match Fsio.read_file p with
  | exception Sys_error msg -> Error msg
  | content -> Ok content

let load_latest ?health ?(member = "checkpoint") st =
  Trace.with_span ~cat:"checkpoint" "checkpoint.restore" @@ fun () ->
  let note_corrupt gen msg =
    (match health with
    | Some log ->
        Health.record log ~member Health.Checkpoint_corrupt
          (Printf.sprintf "generation %d unusable (%s); falling back" gen msg)
    | None -> ());
    if !Obs.on then Metrics.incr "checkpoint.corrupt"
  in
  let rec walk = function
    | [] -> None
    | gen :: older -> (
        match read_file (path st gen) with
        | Error msg ->
            note_corrupt gen msg;
            walk older
        | Ok content -> (
            match deserialize content with
            | Ok snap ->
                if !Obs.on then begin
                  Metrics.incr "checkpoint.restores";
                  Metrics.incr
                    ~by:(float_of_int (String.length content))
                    "checkpoint.bytes_read"
                end;
                Some (snap, gen)
            | Error msg ->
                note_corrupt gen msg;
                walk older))
  in
  walk (generations st)
