(** Member supervision: run an extractor under a budget, capture faults.

    [run] arms a monotonic deadline for the member, triggers any pending
    clock-skew fault against it (so skew tolerance is testable), invokes
    the member with the deadline for cooperative polling, and converts
    every failure mode into {!Health} events instead of exceptions:

    - a raised exception becomes a [Member_failed] event and a
      {!Crashed} outcome;
    - fired fault injections are drained into the log as
      [Fault_injected] events;
    - exhausting the budget is recorded as a [Timeout] event (the member
      still returns whatever incumbent it holds — timing out is normal
      for anytime members, fatal for none). *)

type 'a outcome =
  | Finished of 'a
  | Crashed of { exn : string }

val run :
  ?health:Health.log -> name:string -> budget:float -> (Timer.deadline -> 'a) -> 'a outcome
(** [run ~health ~name ~budget f] gives [f] a deadline [budget] seconds
    out (non-positive budget = unlimited) and supervises it. [f] must
    poll the deadline cooperatively ({!Timer.poll}); the supervisor
    cannot preempt a member that ignores it. *)

val value : default:'a -> 'a outcome -> 'a

val default_max_backoff : float
(** The documented backoff ceiling: 5.0 seconds. *)

val run_retrying :
  ?health:Health.log ->
  ?rng:Rng.t ->
  ?attempts:int ->
  ?backoff:float ->
  ?max_backoff:float ->
  name:string ->
  budget:float ->
  (attempt:int -> Timer.deadline -> 'a) ->
  'a outcome
(** [run_retrying ~name ~budget f] supervises [f] like {!run} but gives
    a crashed member up to [attempts] (default 3) tries in total, all
    under one shared deadline — retrying never extends the budget. The
    member receives its 0-based [attempt] number and is expected to
    warm-start itself on retries (e.g. resume from its latest
    {!Checkpoint} generation) so no progress is discarded.

    Between attempts the supervisor sleeps an exponential backoff
    ([backoff] · 2^attempt · (1 + jitter), default base 0.05 s) with
    deterministic jitter in [0, 1) drawn from [rng] (default a fixed
    seed). The sleep saturates at [max_backoff]
    ({!default_max_backoff} = 5 s) and is further capped by the
    remaining budget, so the sleep sequence is bounded however many
    attempts are configured — a supervised daemon request can never
    stall arbitrarily long between retries. Each failure is a
    [Member_failed] event; each retry adds a [Recovery] event whose
    detail records the exact pause, making the sequence auditable from
    the health log. The last failure's exception is the {!Crashed}
    payload when every attempt is exhausted.
    @raise Invalid_argument on [attempts < 1] or a non-positive /
    non-finite [max_backoff]. *)
