(** Member supervision: run an extractor under a budget, capture faults.

    [run] arms a monotonic deadline for the member, triggers any pending
    clock-skew fault against it (so skew tolerance is testable), invokes
    the member with the deadline for cooperative polling, and converts
    every failure mode into {!Health} events instead of exceptions:

    - a raised exception becomes a [Member_failed] event and a
      {!Crashed} outcome;
    - fired fault injections are drained into the log as
      [Fault_injected] events;
    - exhausting the budget is recorded as a [Timeout] event (the member
      still returns whatever incumbent it holds — timing out is normal
      for anytime members, fatal for none). *)

type 'a outcome =
  | Finished of 'a
  | Crashed of { exn : string }

val run :
  ?health:Health.log -> name:string -> budget:float -> (Timer.deadline -> 'a) -> 'a outcome
(** [run ~health ~name ~budget f] gives [f] a deadline [budget] seconds
    out (non-positive budget = unlimited) and supervises it. [f] must
    poll the deadline cooperatively ({!Timer.poll}); the supervisor
    cannot preempt a member that ignores it. *)

val value : default:'a -> 'a outcome -> 'a
