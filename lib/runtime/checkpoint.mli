(** Crash-safe checkpoint snapshots for the extraction loop.

    SmoothE runs are long, stateful optimisation loops; this module
    makes their state durable so a crashed, killed or faulted run
    resumes from its last snapshot instead of restarting — and, because
    every input to an iteration is captured (θ, Adam moments, RNG
    state, incumbent, patience counter), the resumed run replays
    bit-identically to the uninterrupted one.

    On disk, a snapshot is a single framed file:
    magic ["SMCK"], a format version, the payload length and a CRC-32
    of the payload, then a flat hand-rolled binary payload. Writes are
    atomic (temp file + rename) and rotated: a {!store} keeps the last
    [keep] generations, so a torn or bit-rotted newest file (detected
    by the frame checks — never trusted) falls back to the previous
    generation. *)

exception Corrupt of string
(** Raised internally by the payload decoder; callers of {!deserialize}
    and {!load_latest} see [Error]/skipped generations instead. *)

(** {1 Snapshot contents} *)

type fingerprint = {
  fp_graph : string;  (** e-graph name *)
  fp_nodes : int;
  fp_classes : int;
  fp_seed : int;
  fp_batch : int;  (** seed batch actually used (after derating) *)
}
(** Identity of the run a snapshot belongs to. A resume against a
    different graph, seed or batch is refused (structural-equality
    check by the consumer) rather than silently loading nonsense. *)

val fingerprint_to_string : fingerprint -> string

type snapshot = {
  fingerprint : fingerprint;
  iter : int;  (** iterations completed *)
  elapsed : float;  (** budget seconds consumed before the snapshot *)
  rng_state : int64 array;  (** xoshiro256** words ({!Rng.state}) *)
  theta : Tensor.t;
  adam_m : Tensor.t;
  adam_v : Tensor.t;
  adam_step : int;
  adam_lr : float;
  best_cost : float;
  best_seed : int;
  best_choice : int option array option;  (** incumbent per-class choice *)
  last_improvement : int;
  recoveries : int;  (** numeric-recovery strikes consumed *)
  ladder_rung : int;  (** OOM derating-ladder position (0 = as configured) *)
  loss_time : float;
  grad_time : float;
  sample_time : float;
  trace : (float * float) list;  (** anytime curve, chronological *)
  history : (int * float * float * float * float) list;
      (** (iter, elapsed, relaxed_loss, sampled_cost, incumbent), chronological *)
  health : Health.event list;  (** supervision events up to the snapshot *)
}

(** {1 Codec} *)

val serialize : snapshot -> string
(** The complete framed file image (header + checksummed payload). *)

val deserialize : string -> (snapshot, string) result
(** Inverse of {!serialize}. Every failure mode — short file, bad
    magic, version skew, length mismatch from a torn write, checksum
    mismatch from a bit flip, implausible field values — yields
    [Error reason]; this function never raises and never returns a
    snapshot that did not pass the checksum. *)

(** {1 Generation store} *)

type store

val store : ?keep:int -> dir:string -> name:string -> unit -> store
(** [store ~dir ~name ()] manages files [dir/name.<gen>.ckpt],
    creating [dir] if needed and keeping the newest [keep] (default 3)
    generations. @raise Invalid_argument on [keep < 1] or a [name]
    containing ['/']. *)

val dir : store -> string

val save : store -> snapshot -> int
(** Write the next generation atomically (temp file + rename, so a
    crash mid-write leaves the previous generation intact), delete
    generations beyond [keep], and return the generation number
    written. Under an installed [torn-write] fault the file is
    truncated halfway instead, exercising the fallback path. *)

val load_latest :
  ?health:Health.log -> ?member:string -> store -> (snapshot * int) option
(** Newest snapshot that passes every frame check, with its generation.
    Unusable generations (unreadable, torn, corrupted) are skipped —
    each recorded as a [Checkpoint_corrupt] event in [health] (member
    label [member], default ["checkpoint"]) — and the walk continues to
    older generations. [None] when no generation is usable. *)
