type fault =
  | Nan_grad of int
  | Mem_pressure of float
  | Solver_stall
  | Clock_skew of float
  | Crash_at of int
  | Torn_write

exception Injected_crash of int

type t = fault list

let none = []

let is_none p = p = []

let fault_to_string = function
  | Nan_grad k -> Printf.sprintf "nan@%d" k
  | Mem_pressure s -> Printf.sprintf "mem@%g" s
  | Solver_stall -> "stall"
  | Clock_skew s -> Printf.sprintf "skew@%g" s
  | Crash_at k -> Printf.sprintf "crash@%d" k
  | Torn_write -> "torn-write"

let to_string p = String.concat "," (List.map fault_to_string p)

let fault_of_string spec =
  let name, arg =
    match String.index_opt spec '@' with
    | Some i ->
        ( String.sub spec 0 i,
          Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
    | None -> spec, None
  in
  let float_arg what =
    match arg with
    | None -> invalid_arg (Printf.sprintf "Fault_plan: %s needs an argument, e.g. %s" what spec)
    | Some a -> (
        match float_of_string_opt a with
        | Some v when v > 0.0 && Float.is_finite v -> v
        | Some _ | None ->
            invalid_arg
              (Printf.sprintf
                 "Fault_plan: bad argument %S in %S (expected a finite value > 0)" a spec))
  in
  let int_arg what =
    match arg with
    | None -> invalid_arg (Printf.sprintf "Fault_plan: %s needs an argument, e.g. %s" what spec)
    | Some a -> (
        match int_of_string_opt a with
        | Some k when k >= 1 -> k
        | Some _ | None ->
            invalid_arg
              (Printf.sprintf "Fault_plan: bad argument %S in %S (expected an integer >= 1)"
                 a spec))
  in
  let no_arg fault =
    if arg <> None then
      invalid_arg
        (Printf.sprintf "Fault_plan: %s takes no argument, got %S" (fault_to_string fault) spec);
    fault
  in
  match name with
  | "nan" | "nan-grad" -> Nan_grad (int_arg "nan@K")
  | "mem" | "mem-pressure" -> Mem_pressure (float_arg "mem@SCALE")
  | "stall" -> no_arg Solver_stall
  | "skew" | "clock-skew" -> Clock_skew (float_arg "skew@SECONDS")
  | "crash" -> Crash_at (int_arg "crash@K")
  | "torn-write" | "torn" -> no_arg Torn_write
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Fault_plan: unknown fault %S (expected nan@K, mem@SCALE, stall, skew@SECONDS, \
            crash@K or torn-write)"
           spec)

(* Two atoms of the same family make the plan ambiguous (the hooks fire
   on the first match), so duplicates are a spec error, not a silent
   preference for whichever was written first. *)
let family = function
  | Nan_grad _ -> "nan"
  | Mem_pressure _ -> "mem"
  | Solver_stall -> "stall"
  | Clock_skew _ -> "skew"
  | Crash_at _ -> "crash"
  | Torn_write -> "torn-write"

let of_string s =
  let faults =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun s -> s <> "" && s <> "none")
    |> List.map fault_of_string
  in
  let rec check_dups = function
    | [] -> ()
    | f :: rest ->
        if List.exists (fun g -> family g = family f) rest then
          invalid_arg
            (Printf.sprintf "Fault_plan: duplicate %s fault in %S (each family at most once)"
               (family f) s);
        check_dups rest
  in
  check_dups faults;
  faults

(* ------------------------------------------------------------ ambient *)

(* The active plan is ambient state: faults must reach the AD tape, the
   device memory model and the LP inner loop without threading a value
   through every signature. [install]/[clear] reset the deterministic
   counters, so equal plans replay identically. *)
let active_plan = ref none
let backward_count = ref 0
let skew_pending = ref 0.0
let mem_noted = ref false
let stall_noted = ref false
let crash_fired = ref false
let torn_fired = ref false
let injections : string list ref = ref []

let record_injection what = injections := what :: !injections

let drain_injections () =
  let out = List.rev !injections in
  injections := [];
  out

let active () = !active_plan

let clear () =
  (match List.exists (function Clock_skew _ -> true | _ -> false) !active_plan with
  | true -> Timer.set_skew 0.0
  | false -> ());
  active_plan := none;
  backward_count := 0;
  skew_pending := 0.0;
  mem_noted := false;
  stall_noted := false;
  crash_fired := false;
  torn_fired := false;
  injections := []

let install p =
  clear ();
  active_plan := p;
  List.iter (function Clock_skew s -> skew_pending := !skew_pending +. s | _ -> ()) p

let with_plan p f =
  install p;
  Fun.protect ~finally:clear f

(* -------------------------------------------------------------- hooks *)

let on_backward () =
  match
    List.find_opt (function Nan_grad _ -> true | _ -> false) !active_plan
  with
  | None -> false
  | Some (Nan_grad k) ->
      incr backward_count;
      if !backward_count = k then begin
        record_injection (Printf.sprintf "nan-grad at backward pass %d" k);
        true
      end
      else false
  | Some _ -> false

let mem_pressure () =
  match
    List.find_opt (function Mem_pressure _ -> true | _ -> false) !active_plan
  with
  | Some (Mem_pressure s) ->
      if not !mem_noted then begin
        mem_noted := true;
        record_injection (Printf.sprintf "memory pressure x%g" s)
      end;
      s
  | Some _ | None -> 1.0

let stall_active () =
  List.exists (function Solver_stall -> true | _ -> false) !active_plan

let stall_solver deadline =
  if stall_active () then begin
    if not !stall_noted then begin
      stall_noted := true;
      record_injection "solver stall"
    end;
    Timer.sleep_until deadline;
    true
  end
  else false

let trigger_clock_skew () =
  if !skew_pending > 0.0 then begin
    let s = !skew_pending in
    skew_pending := 0.0;
    Timer.set_skew (Timer.get_skew () +. s);
    record_injection (Printf.sprintf "clock skew +%gs" s);
    true
  end
  else false

let crash_now ~iter =
  match List.find_opt (function Crash_at _ -> true | _ -> false) !active_plan with
  | Some (Crash_at k) when (not !crash_fired) && iter >= k ->
      crash_fired := true;
      record_injection (Printf.sprintf "crash injected at iteration %d" iter);
      raise (Injected_crash iter)
  | Some _ | None -> ()

let torn_write () =
  match List.exists (function Torn_write -> true | _ -> false) !active_plan with
  | true when not !torn_fired ->
      torn_fired := true;
      record_injection "torn checkpoint write";
      true
  | true | false -> false
