type fault =
  | Nan_grad of int
  | Mem_pressure of float
  | Solver_stall
  | Clock_skew of float
  | Crash_at of int
  | Torn_write
  | Torn_journal
  | Crash_in_flight of int

exception Injected_crash of int

type t = fault list

let none = []

let is_none p = p = []

let fault_to_string = function
  | Nan_grad k -> Printf.sprintf "nan@%d" k
  | Mem_pressure s -> Printf.sprintf "mem@%g" s
  | Solver_stall -> "stall"
  | Clock_skew s -> Printf.sprintf "skew@%g" s
  | Crash_at k -> Printf.sprintf "crash@%d" k
  | Torn_write -> "torn-write"
  | Torn_journal -> "torn-journal"
  | Crash_in_flight k -> Printf.sprintf "crash-in-flight@%d" k

let to_string p = String.concat "," (List.map fault_to_string p)

let fault_of_string spec =
  let name, arg =
    match String.index_opt spec '@' with
    | Some i ->
        ( String.sub spec 0 i,
          Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
    | None -> spec, None
  in
  let float_arg what =
    match arg with
    | None -> invalid_arg (Printf.sprintf "Fault_plan: %s needs an argument, e.g. %s" what spec)
    | Some a -> (
        match float_of_string_opt a with
        | Some v when v > 0.0 && Float.is_finite v -> v
        | Some _ | None ->
            invalid_arg
              (Printf.sprintf
                 "Fault_plan: bad argument %S in %S (expected a finite value > 0)" a spec))
  in
  let int_arg what =
    match arg with
    | None -> invalid_arg (Printf.sprintf "Fault_plan: %s needs an argument, e.g. %s" what spec)
    | Some a -> (
        match int_of_string_opt a with
        | Some k when k >= 1 -> k
        | Some _ | None ->
            invalid_arg
              (Printf.sprintf "Fault_plan: bad argument %S in %S (expected an integer >= 1)"
                 a spec))
  in
  let no_arg fault =
    if arg <> None then
      invalid_arg
        (Printf.sprintf "Fault_plan: %s takes no argument, got %S" (fault_to_string fault) spec);
    fault
  in
  match name with
  | "nan" | "nan-grad" -> Nan_grad (int_arg "nan@K")
  | "mem" | "mem-pressure" -> Mem_pressure (float_arg "mem@SCALE")
  | "stall" -> no_arg Solver_stall
  | "skew" | "clock-skew" -> Clock_skew (float_arg "skew@SECONDS")
  | "crash" -> Crash_at (int_arg "crash@K")
  | "torn-write" | "torn" -> no_arg Torn_write
  | "torn-journal" -> no_arg Torn_journal
  | "crash-in-flight" -> Crash_in_flight (int_arg "crash-in-flight@K")
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Fault_plan: unknown fault %S (expected nan@K, mem@SCALE, stall, skew@SECONDS, \
            crash@K, torn-write, torn-journal or crash-in-flight@K)"
           spec)

(* Two atoms of the same family make the plan ambiguous (the hooks fire
   on the first match), so duplicates are a spec error, not a silent
   preference for whichever was written first. *)
let family = function
  | Nan_grad _ -> "nan"
  | Mem_pressure _ -> "mem"
  | Solver_stall -> "stall"
  | Clock_skew _ -> "skew"
  | Crash_at _ -> "crash"
  | Torn_write -> "torn-write"
  | Torn_journal -> "torn-journal"
  | Crash_in_flight _ -> "crash-in-flight"

let of_string s =
  let faults =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun s -> s <> "" && s <> "none")
    |> List.map fault_of_string
  in
  let rec check_dups = function
    | [] -> ()
    | f :: rest ->
        if List.exists (fun g -> family g = family f) rest then
          invalid_arg
            (Printf.sprintf "Fault_plan: duplicate %s fault in %S (each family at most once)"
               (family f) s);
        check_dups rest
  in
  check_dups faults;
  faults

(* ------------------------------------------------------------ ambient *)

(* The active plan is ambient state: faults must reach the AD tape, the
   device memory model and the LP inner loop without threading a value
   through every signature. [install]/[clear] reset the deterministic
   counters, so equal plans replay identically.

   The counters and fire-once flags are atomics and the injection log
   sits behind a mutex: a supervised run may execute on a pool worker
   while another domain reads [drain_injections], and the fire-once
   faults must fire exactly once even if two domains hit the hook
   together. Installing/clearing a plan is still a single-domain
   affair (done before fan-out / after join). *)
let active_plan = Atomic.make none
let backward_count = Atomic.make 0
let skew_pending = Atomic.make 0.0
let mem_noted = Atomic.make false
let stall_noted = Atomic.make false
let crash_fired = Atomic.make false
let torn_fired = Atomic.make false
let torn_journal_fired = Atomic.make false
let crash_in_flight_fired = Atomic.make false
let injections : string list ref = ref [] (* guarded by [injections_lock] *)
let injections_lock = Mutex.create ()

let record_injection what =
  Mutex.protect injections_lock (fun () -> injections := what :: !injections)

let drain_injections () =
  Mutex.protect injections_lock (fun () ->
      let out = List.rev !injections in
      injections := [];
      out)

(* [CAS false -> true]: true for exactly one caller per install. *)
let fire_once flag = Atomic.compare_and_set flag false true

let active () = Atomic.get active_plan

let clear () =
  (match List.exists (function Clock_skew _ -> true | _ -> false) (Atomic.get active_plan) with
  | true -> Timer.set_skew 0.0
  | false -> ());
  Atomic.set active_plan none;
  Atomic.set backward_count 0;
  Atomic.set skew_pending 0.0;
  Atomic.set mem_noted false;
  Atomic.set stall_noted false;
  Atomic.set crash_fired false;
  Atomic.set torn_fired false;
  Atomic.set torn_journal_fired false;
  Atomic.set crash_in_flight_fired false;
  Mutex.protect injections_lock (fun () -> injections := [])

let install p =
  clear ();
  Atomic.set active_plan p;
  List.iter
    (function
      | Clock_skew s -> Atomic.set skew_pending (Atomic.get skew_pending +. s)
      | _ -> ())
    p

let with_plan p f =
  install p;
  Fun.protect ~finally:clear f

(* -------------------------------------------------------------- hooks *)

let on_backward () =
  match
    List.find_opt (function Nan_grad _ -> true | _ -> false) (Atomic.get active_plan)
  with
  | None -> false
  | Some (Nan_grad k) ->
      let count = Atomic.fetch_and_add backward_count 1 + 1 in
      if count = k then begin
        record_injection (Printf.sprintf "nan-grad at backward pass %d" k);
        true
      end
      else false
  | Some _ -> false

let mem_pressure () =
  match
    List.find_opt (function Mem_pressure _ -> true | _ -> false) (Atomic.get active_plan)
  with
  | Some (Mem_pressure s) ->
      if fire_once mem_noted then
        record_injection (Printf.sprintf "memory pressure x%g" s);
      s
  | Some _ | None -> 1.0

let stall_active () =
  List.exists (function Solver_stall -> true | _ -> false) (Atomic.get active_plan)

let stall_solver deadline =
  if stall_active () then begin
    if fire_once stall_noted then record_injection "solver stall";
    Timer.sleep_until deadline;
    true
  end
  else false

let trigger_clock_skew () =
  let s = Atomic.exchange skew_pending 0.0 in
  if s > 0.0 then begin
    Timer.set_skew (Timer.get_skew () +. s);
    record_injection (Printf.sprintf "clock skew +%gs" s);
    true
  end
  else false

let crash_now ~iter =
  match
    List.find_opt (function Crash_at _ -> true | _ -> false) (Atomic.get active_plan)
  with
  | Some (Crash_at k) when iter >= k && fire_once crash_fired ->
      record_injection (Printf.sprintf "crash injected at iteration %d" iter);
      raise (Injected_crash iter)
  | Some _ | None -> ()

let torn_write () =
  match
    List.exists (function Torn_write -> true | _ -> false) (Atomic.get active_plan)
  with
  | true when fire_once torn_fired ->
      record_injection "torn checkpoint write";
      true
  | true | false -> false

let torn_journal () =
  match
    List.exists (function Torn_journal -> true | _ -> false) (Atomic.get active_plan)
  with
  | true when fire_once torn_journal_fired ->
      record_injection "torn journal append";
      true
  | true | false -> false

let crash_in_flight ~completed =
  match
    List.find_opt (function Crash_in_flight _ -> true | _ -> false) (Atomic.get active_plan)
  with
  | Some (Crash_in_flight k) when completed >= k && fire_once crash_in_flight_fired ->
      record_injection
        (Printf.sprintf "engine crash after %d completed request(s)" completed);
      raise (Injected_crash completed)
  | Some _ | None -> ()
