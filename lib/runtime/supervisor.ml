type 'a outcome =
  | Finished of 'a
  | Crashed of { exn : string }

let drain_into health ~member =
  List.iter
    (fun what -> Health.record health ~member Health.Fault_injected what)
    (Fault_plan.drain_injections ())

let run ?(health = Health.create ()) ~name ~budget f =
  let deadline = Timer.deadline_after budget in
  if Fault_plan.trigger_clock_skew () then drain_into health ~member:name;
  let outcome =
    match f deadline with
    | v -> Finished v
    | exception e ->
        Health.record health ~member:name Health.Member_failed (Printexc.to_string e);
        Crashed { exn = Printexc.to_string e }
  in
  drain_into health ~member:name;
  if Timer.expired deadline then
    Health.record health ~member:name Health.Timeout
      (Printf.sprintf "used full %.2fs budget" budget);
  outcome

let value ~default = function Finished v -> v | Crashed _ -> default

let default_max_backoff = 5.0

(* Bounded retry with exponential backoff. The jitter is drawn from a
   caller-supplied RNG so a retried run is as replayable as a clean
   one; the member decides for itself how to warm-start (typically by
   reloading its latest checkpoint when [attempt > 0]). One deadline
   covers all attempts: retrying never extends the budget, and the
   per-retry sleep saturates at [max_backoff] so a high attempt count
   cannot turn into an unbounded doubling sequence. *)
let run_retrying ?(health = Health.create ()) ?rng ?(attempts = 3) ?(backoff = 0.05)
    ?(max_backoff = default_max_backoff) ~name ~budget f =
  if attempts < 1 then invalid_arg "Supervisor.run_retrying: attempts must be >= 1";
  if not (Float.is_finite max_backoff && max_backoff > 0.0) then
    invalid_arg "Supervisor.run_retrying: max_backoff must be positive and finite";
  let rng = match rng with Some r -> r | None -> Rng.create 0 in
  let deadline = Timer.deadline_after budget in
  if Fault_plan.trigger_clock_skew () then drain_into health ~member:name;
  let record_timeout () =
    if Timer.expired deadline then
      Health.record health ~member:name Health.Timeout
        (Printf.sprintf "used full %.2fs budget" budget)
  in
  let rec go attempt =
    match f ~attempt deadline with
    | v ->
        drain_into health ~member:name;
        record_timeout ();
        Finished v
    | exception e ->
        let exn = Printexc.to_string e in
        Health.record health ~member:name Health.Member_failed exn;
        drain_into health ~member:name;
        if attempt + 1 >= attempts || Timer.expired deadline then begin
          record_timeout ();
          Crashed { exn }
        end
        else begin
          let pause =
            backoff *. (2.0 ** float_of_int attempt) *. (1.0 +. Rng.uniform rng)
          in
          let pause = Float.min pause max_backoff in
          let pause = Float.min pause (Timer.remaining deadline) in
          Health.record health ~member:name Health.Recovery
            (Printf.sprintf "retrying (attempt %d/%d) after %.3fs backoff" (attempt + 2)
               attempts pause);
          if pause > 0.0 && Float.is_finite pause then
            Timer.sleep_until (Timer.deadline_after pause);
          go (attempt + 1)
        end
  in
  go 0
