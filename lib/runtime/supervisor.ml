type 'a outcome =
  | Finished of 'a
  | Crashed of { exn : string }

let drain_into health ~member =
  List.iter
    (fun what -> Health.record health ~member Health.Fault_injected what)
    (Fault_plan.drain_injections ())

let run ?(health = Health.create ()) ~name ~budget f =
  let deadline = Timer.deadline_after budget in
  if Fault_plan.trigger_clock_skew () then drain_into health ~member:name;
  let outcome =
    match f deadline with
    | v -> Finished v
    | exception e ->
        Health.record health ~member:name Health.Member_failed (Printexc.to_string e);
        Crashed { exn = Printexc.to_string e }
  in
  drain_into health ~member:name;
  if Timer.expired deadline then
    Health.record health ~member:name Health.Timeout
      (Printf.sprintf "used full %.2fs budget" budget);
  outcome

let value ~default = function Finished v -> v | Crashed _ -> default
