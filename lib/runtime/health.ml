type kind =
  | Fault_injected
  | Nan_detected
  | Recovery
  | Oom_derate
  | Timeout
  | Member_failed
  | Budget_reallocated
  | Degraded
  | Checkpoint_corrupt
  | Resumed
  | Preflight
  | Journal_torn
  | Replayed
  | Watchdog_restart
  | Crash_loop
  | Warm_start_rejected

type event = { at : float; member : string; kind : kind; detail : string }

type log = { created : float; events : event Vec.t }

let all_kinds =
  [
    Fault_injected; Nan_detected; Recovery; Oom_derate; Timeout; Member_failed;
    Budget_reallocated; Degraded; Checkpoint_corrupt; Resumed; Preflight;
    Journal_torn; Replayed; Watchdog_restart; Crash_loop; Warm_start_rejected;
  ]

let kind_name = function
  | Fault_injected -> "fault-injected"
  | Nan_detected -> "nan-detected"
  | Recovery -> "recovery"
  | Oom_derate -> "oom-derate"
  | Timeout -> "timeout"
  | Member_failed -> "member-failed"
  | Budget_reallocated -> "budget-reallocated"
  | Degraded -> "degraded"
  | Checkpoint_corrupt -> "checkpoint-corrupt"
  | Resumed -> "resumed"
  | Preflight -> "preflight"
  | Journal_torn -> "journal-torn"
  | Replayed -> "replayed"
  | Watchdog_restart -> "watchdog-restart"
  | Crash_loop -> "crash-loop"
  | Warm_start_rejected -> "warm-start-rejected"

let kind_of_name name = List.find_opt (fun k -> kind_name k = name) all_kinds

let create () = { created = Timer.now (); events = Vec.create () }

let record log ~member kind detail =
  Vec.push log.events { at = Timer.now () -. log.created; member; kind; detail };
  (* every health event is also an instant event on the active trace
     timeline, so faults and recoveries are visible amid the spans *)
  if !Obs.on then
    Trace.instant ~cat:"health"
      ~attrs:[ ("member", member); ("detail", detail) ]
      (kind_name kind)

let add log event = Vec.push log.events event

(* Event timestamps are relative to their own log's creation time, so
   merging must rebase them onto the destination's epoch — otherwise a
   child member's 0.1s event would appear to predate portfolio events
   recorded before the member even started. *)
let merge ~into src =
  let shift = src.created -. into.created in
  Vec.iter (fun e -> Vec.push into.events { e with at = e.at +. shift }) src.events

let events log = Vec.to_list log.events

let is_empty log = Vec.length log.events = 0

let count ?member log kind =
  let matches e =
    e.kind = kind && match member with None -> true | Some m -> e.member = m
  in
  Vec.fold_left (fun acc e -> if matches e then acc + 1 else acc) 0 log.events

let recoveries log = count log Recovery + count log Oom_derate

let pp_event fmt e =
  Format.fprintf fmt "[%7.3fs] %-12s %-18s %s" e.at e.member (kind_name e.kind) e.detail

let pp fmt log =
  Vec.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) log.events

let summary log =
  let kinds = all_kinds in
  let parts =
    List.filter_map
      (fun k ->
        let n = count log k in
        if n = 0 then None else Some (Printf.sprintf "%s=%d" (kind_name k) n))
      kinds
  in
  if parts = [] then "healthy" else String.concat " " parts
