(** Structured health events for the supervised extraction runtime.

    Every recoverable incident — an injected fault, a NaN caught before
    it reaches the incumbent, an OOM derating step, a member timeout or
    crash — is recorded as a typed event instead of surfacing as an
    exception or a silent flag. Runs and portfolio outcomes carry their
    event list so callers (CLI [--health-report], bench tables, tests)
    can tell a clean run from a degraded one. *)

type kind =
  | Fault_injected  (** an installed fault actually fired *)
  | Nan_detected  (** non-finite loss or gradient caught by a guard *)
  | Recovery  (** Adam reset / learning-rate backoff / re-seed applied *)
  | Oom_derate  (** a configuration step down the OOM derating ladder *)
  | Timeout  (** a member exhausted its deadline *)
  | Member_failed  (** a member raised; captured, not propagated *)
  | Budget_reallocated  (** unused budget redistributed to later members *)
  | Degraded  (** a component gave up recovering and kept its incumbent *)
  | Checkpoint_corrupt
      (** a checkpoint failed its checksum / framing check (torn write,
          bit rot, fingerprint mismatch) and was skipped in favour of an
          older generation or a fresh start *)
  | Resumed  (** a run was warm-started from a checkpoint snapshot *)
  | Preflight
      (** a static pre-flight analysis finding (e-graph lint) surfaced
          before the first iteration; detail carries the rendered
          diagnostic *)
  | Journal_torn
      (** a request-journal frame failed its checksum / framing check
          (torn append, bit rot) and was dropped on the startup scan *)
  | Replayed
      (** an incomplete journaled request was re-offered through
          admission after a restart *)
  | Watchdog_restart
      (** the watchdog observed an abnormal daemon exit and is
          restarting it after backoff *)
  | Crash_loop
      (** the watchdog's crash-loop breaker tripped (too many abnormal
          exits within the window) and it gave up restarting *)
  | Warm_start_rejected
      (** a warm-start point handed to a solver failed feasibility or
          integrality validation and was ignored rather than allowed to
          poison pruning *)

type event = {
  at : float;  (** seconds since the log was created *)
  member : string;  (** which extractor / component reported it *)
  kind : kind;
  detail : string;
}

type log
(** A mutable, append-only event collector. *)

val create : unit -> log

val record : log -> member:string -> kind -> string -> unit

val add : log -> event -> unit
(** Append a pre-stamped event (used when merging logs). *)

val merge : into:log -> log -> unit
(** Append all of the source's events, rebasing each [at] onto the
    destination log's creation time so the merged timeline is
    consistent. *)

val events : log -> event list
(** Chronological. *)

val is_empty : log -> bool

val count : ?member:string -> log -> kind -> int

val recoveries : log -> int
(** Recovery + OOM-derate events: "how many times did the runtime save
    this run". Surfaced by [Runbank] so bench tables can annotate
    degraded runs. *)

val kind_name : kind -> string

val kind_of_name : string -> kind option
(** Inverse of {!kind_name}; [None] on unknown names. Used by the
    checkpoint codec, which persists kinds by name so the on-disk
    format survives constructor reordering. *)

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> log -> unit

val summary : log -> string
(** One line, e.g. ["nan-detected=2 recovery=2"]; ["healthy"] when
    empty. *)
