(** Deterministic fault injection for the extraction runtime.

    A fault plan describes failures to replay against a run so every
    recovery path in {!Supervisor}, [Smoothe_extract] and [Portfolio] is
    testable without flaky real-world triggers. Plans are deterministic:
    installing the same plan twice replays the same faults at the same
    points.

    The plan is ambient (installed, not threaded): the instrumented
    subsystems — the AD tape's backward pass, the device memory model,
    the LP inner loop, the supervisor's deadline arming — query it
    through the hooks below, which all answer "no fault" when nothing is
    installed, so the fault-free path costs one list lookup. *)

type fault =
  | Nan_grad of int
      (** Poison the gradient on the [k]-th backward pass (1-based)
          after installation, at the tape root so NaN flows through the
          whole tape exactly like a real numeric blow-up. *)
  | Mem_pressure of float
      (** Multiply every device footprint by this factor (> 1 shrinks
          the effective memory), simulating external memory pressure. *)
  | Solver_stall
      (** LP phases make no progress and burn their whole deadline, the
          classic pathological-simplex / stuck-solver failure. *)
  | Clock_skew of float
      (** The wall clock jumps forward by this many seconds the first
          time a supervised member arms its deadline. *)
  | Crash_at of int
      (** Raise {!Injected_crash} when the instrumented loop first
          reaches iteration [k] (1-based) — the mid-run kill that the
          checkpoint/resume path must survive. Fires at most once per
          installation, so a run resumed from a checkpoint replays past
          iteration [k] without crashing again. *)
  | Torn_write
      (** The next checkpoint write is truncated halfway — the classic
          power-loss torn write. The resulting file fails its checksum
          and the reader must fall back to the previous generation.
          Fires at most once per installation. *)
  | Torn_journal
      (** The next request-journal append is truncated halfway — a crash
          mid-append. The torn frame fails its checksum on the next
          startup scan and must be dropped without preventing recovery
          of every frame before it. Fires at most once per
          installation. *)
  | Crash_in_flight of int
      (** Raise {!Injected_crash} out of the serve engine's completion
          path once [k] requests have completed — the daemon-death
          analogue of [Crash_at]. Unlike per-request faults this
          escapes the per-request supervisor, killing the whole engine
          with requests still queued, which is exactly what the journal
          replay path must survive. Fires at most once per
          installation. *)

exception Injected_crash of int
(** Raised by {!crash_now}; carries the iteration at which it fired. *)

type t = fault list

val none : t
val is_none : t -> bool

val of_string : string -> t
(** Parse a comma-separated plan: ["nan@10,mem@8,stall,crash@25"].
    Accepted atoms: [nan@K], [mem@SCALE], [stall], [skew@SECONDS],
    [crash@K], [torn-write], [torn-journal], [crash-in-flight@K];
    empty string and ["none"] give {!none}.
    @raise Invalid_argument on malformed specs: unknown fault names,
    missing / non-numeric / non-positive / non-finite arguments
    (e.g. [nan@-1], [nan@2.5], [mem@0], [mem@inf]), arguments to
    faults that take none, and duplicate atoms of the same family. *)

val to_string : t -> string

(** {1 Ambient installation} *)

val install : t -> unit
(** Make [p] the active plan and reset the deterministic fault
    counters. Replaces any previously installed plan. *)

val clear : unit -> unit
(** Remove the active plan and undo ambient effects (clock skew). *)

val with_plan : t -> (unit -> 'a) -> 'a
(** [with_plan p f] runs [f] with [p] installed, clearing it afterwards
    even on exceptions. *)

val active : unit -> t

(** {1 Hooks for instrumented subsystems} *)

val on_backward : unit -> bool
(** Called by [Ad.backward] once per backward pass; [true] means
    "poison this pass's seed gradient with NaN". *)

val mem_pressure : unit -> float
(** Footprint multiplier for the device memory model; 1.0 when no
    memory fault is active. *)

val stall_active : unit -> bool

val stall_solver : Timer.deadline -> bool
(** Called by LP phases before iterating: under a stall fault, blocks
    until [deadline] expires and returns [true] ("report timeout");
    otherwise returns [false] immediately. A stall with no finite
    deadline does not block ({!Timer.sleep_until} returns at once), so
    an unsupervised call cannot hang forever. *)

val trigger_clock_skew : unit -> bool
(** Called by the supervisor after arming a member deadline; applies a
    pending clock-skew fault (once) and reports whether it fired. *)

val crash_now : iter:int -> unit
(** Called by the extraction loop at the top of each iteration; under a
    [crash@K] fault the first call with [iter >= K] records the
    injection and raises {!Injected_crash}. All other calls return
    normally. *)

val torn_write : unit -> bool
(** Called by the checkpoint writer before committing a file; [true]
    (at most once per installation) means "truncate this write halfway"
    to simulate a torn write. *)

val torn_journal : unit -> bool
(** Called by the request journal before appending a frame; [true] (at
    most once per installation) means "truncate this append halfway",
    simulating a crash mid-append. *)

val crash_in_flight : completed:int -> unit
(** Called by the serve engine after each request completion with the
    total completed count; under a [crash-in-flight@K] fault the first
    call with [completed >= K] records the injection and raises
    {!Injected_crash}, simulating the daemon dying with requests still
    queued. All other calls return normally. *)

(** {1 Injection records} *)

val record_injection : string -> unit
(** Note that a fault actually fired; instrumented subsystems call this
    so deep components need no access to a health log. *)

val drain_injections : unit -> string list
(** Return and clear the fired-fault notes, in firing order. The
    supervisor (or a standalone extractor) drains these into its
    {!Health} log. *)
