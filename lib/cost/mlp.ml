type t = {
  dims : int array;  (* [| n; 64; 64; 8; 1 |] *)
  weights : Tensor.t array;  (* layer k: (dims.(k+1), dims.(k)) *)
  biases : Tensor.t array;  (* layer k: (1, dims.(k+1)) *)
}

let input_dim mlp = mlp.dims.(0)

let create rng ~input_dim =
  let dims = [| input_dim; 64; 64; 8; 1 |] in
  let layers = Array.length dims - 1 in
  let weights =
    Array.init layers (fun k ->
        let fan_in = dims.(k) in
        let std = sqrt (2.0 /. float_of_int fan_in) in
        Tensor.init ~batch:dims.(k + 1) ~width:dims.(k) (fun _ _ -> std *. Rng.gaussian rng))
  in
  let biases = Array.init layers (fun k -> Tensor.create ~batch:1 ~width:dims.(k + 1)) in
  { dims; weights; biases }

let forward_with lift tape mlp x =
  let layers = Array.length mlp.weights in
  let params = ref [] in
  let wrap t =
    let v = lift tape t in
    params := v :: !params;
    v
  in
  let out = ref x in
  for k = 0 to layers - 1 do
    let w = wrap mlp.weights.(k) and b = wrap mlp.biases.(k) in
    let z = Ad.linear ~input:!out ~weight:w ~bias:b in
    out := if k < layers - 1 then Ad.relu z else z
  done;
  !out, List.rev !params

let forward tape mlp x = fst (forward_with Ad.const tape mlp x)
let forward_trainable tape mlp x = forward_with Ad.param tape mlp x

(* Weight/bias interleaved in layer order, matching forward_trainable. *)
let parameters mlp =
  let acc = ref [] in
  for k = Array.length mlp.weights - 1 downto 0 do
    acc := mlp.weights.(k) :: mlp.biases.(k) :: !acc
  done;
  !acc

let predict_batch mlp x =
  let tape = Ad.tape () in
  let out = forward tape mlp (Ad.const tape x) in
  let v = Ad.value out in
  Array.init v.Tensor.batch (fun b -> Tensor.get v b 0)

let predict mlp input =
  if Array.length input <> input_dim mlp then invalid_arg "Mlp.predict: dimension mismatch";
  (predict_batch mlp (Tensor.of_row input)).(0)

type training_report = { epochs : int; final_loss : float; initial_loss : float }

let train ?(epochs = 60) ?(lr = 1e-3) ?(batch_size = 32) rng mlp ~inputs ~targets =
  let n = Array.length inputs in
  if n = 0 || n <> Array.length targets then invalid_arg "Mlp.train: bad dataset";
  let dim = input_dim mlp in
  let opt = Optim.adam ~lr (parameters mlp) in
  let order = Array.init n Fun.id in
  let run_batch idxs =
    let bsz = Array.length idxs in
    let x = Tensor.create ~batch:bsz ~width:dim in
    let y = Tensor.create ~batch:bsz ~width:1 in
    Array.iteri
      (fun row i ->
        Tensor.blit_row ~src:inputs.(i) x row;
        Tensor.set y row 0 targets.(i))
      idxs;
    let tape = Ad.tape () in
    let pred, params = forward_trainable tape mlp (Ad.const tape x) in
    let loss = Ad.mse ~pred ~target:(Ad.const tape y) in
    Ad.backward loss;
    let grads = List.map Ad.grad params in
    ignore (Optim.clip_grad_norm ~max_norm:10.0 grads);
    Optim.adam_step opt grads;
    Tensor.get (Ad.value loss) 0 0
  in
  let epoch_loss () =
    let total = ref 0.0 and batches = ref 0 in
    Rng.shuffle rng order;
    let i = ref 0 in
    while !i < n do
      let len = min batch_size (n - !i) in
      total := !total +. run_batch (Array.sub order !i len);
      incr batches;
      i := !i + len
    done;
    !total /. float_of_int !batches
  in
  let initial_loss = ref nan in
  let final_loss = ref nan in
  for e = 1 to epochs do
    let l = epoch_loss () in
    if e = 1 then initial_loss := l;
    final_loss := l
  done;
  { epochs; final_loss = !final_loss; initial_loss = !initial_loss }
