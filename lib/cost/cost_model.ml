type kind =
  | Linear
  | Mlp_corrected of Mlp.t
  | Pairwise of { ia : int array; ib : int array; w : float array }

type t = { u : float array; kind : kind }

let linear u = { u = Array.copy u; kind = Linear }

let mlp_corrected ~linear:u mlp =
  if Mlp.input_dim mlp <> Array.length u then
    invalid_arg "Cost_model.mlp_corrected: dimension mismatch";
  { u = Array.copy u; kind = Mlp_corrected mlp }

let pairwise ~linear:u terms =
  let n = Array.length u in
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Cost_model.pairwise: index out of range")
    terms;
  let arr = Array.of_list terms in
  {
    u = Array.copy u;
    kind =
      Pairwise
        {
          ia = Array.map (fun (i, _, _) -> i) arr;
          ib = Array.map (fun (_, j, _) -> j) arr;
          w = Array.map (fun (_, _, w) -> w) arr;
        };
  }

let fusion_of_egraph rng ?pairs ?(discount = 0.4) g =
  let n = Egraph.num_nodes g in
  let pairs = match pairs with Some p -> p | None -> max 1 (n / 4) in
  (* candidate fusions: (parent e-node, member of one of its child
     e-classes) with both costs positive *)
  let candidates = Vec.create () in
  for i = 0 to n - 1 do
    Array.iter
      (fun c ->
        Array.iter
          (fun j ->
            if g.Egraph.costs.(i) > 0.0 && g.Egraph.costs.(j) > 0.0 then
              Vec.push candidates (i, j))
          g.Egraph.class_nodes.(c))
      g.Egraph.children.(i)
  done;
  let all = Vec.to_array candidates in
  let terms =
    if Array.length all = 0 then []
    else begin
      Rng.shuffle rng all;
      List.init
        (min pairs (Array.length all))
        (fun k ->
          let i, j = all.(k) in
          (i, j, -.discount *. Float.min g.Egraph.costs.(i) g.Egraph.costs.(j)))
    end
  in
  pairwise ~linear:g.Egraph.costs terms

let of_egraph g = linear g.Egraph.costs

let name m =
  match m.kind with
  | Linear -> "linear"
  | Mlp_corrected _ -> "linear+mlp"
  | Pairwise _ -> "linear+pairwise"
let is_linear m = m.kind = Linear
let dim m = Array.length m.u
let linear_coeffs m = Array.copy m.u

let relaxed m tape p =
  Ad.with_context "cost_model.relaxed" @@ fun () ->
  let base = Ad.dot_const p m.u in
  match m.kind with
  | Linear -> base
  | Mlp_corrected mlp -> Ad.add base (Mlp.forward tape mlp p)
  | Pairwise { ia; ib; w } ->
      if Array.length w = 0 then base
      else begin
        let pa = Ad.gather p ia and pb = Ad.gather p ib in
        Ad.add base (Ad.dot_const (Ad.mul pa pb) w)
      end

let dense m x =
  if Array.length x <> Array.length m.u then invalid_arg "Cost_model.dense: dimension mismatch";
  (* unselected nodes contribute nothing, even under a non-finite
     coefficient — 0 * nan would otherwise poison every solution's cost
     instead of only the solutions that actually select the bad node *)
  let lin = ref 0.0 in
  Array.iteri (fun i u -> if x.(i) <> 0.0 then lin := !lin +. (u *. x.(i))) m.u;
  match m.kind with
  | Linear -> !lin
  | Mlp_corrected mlp -> !lin +. Mlp.predict mlp x
  | Pairwise { ia; ib; w } ->
      let quad = ref 0.0 in
      Array.iteri
        (fun k wk ->
          let xa = x.(ia.(k)) and xb = x.(ib.(k)) in
          if xa <> 0.0 && xb <> 0.0 then quad := !quad +. (wk *. xa *. xb))
        w;
      !lin +. !quad

let dense_solution m g s =
  if not (Egraph.Solution.is_valid g s) then infinity
  else dense m (Egraph.Solution.to_dense g s)
