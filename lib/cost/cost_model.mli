(** Extraction cost models.

    The paper evaluates three model families (§5): the conventional
    linear model f(s) = uᵀs, and non-linear models where an MLP
    correction term is added to the linear base:
    f(x) = f_linear(x) + f_nonlinear(x) (§5.5). A {!t} exposes both the
    relaxed differentiable evaluation (for SmoothE) and a dense binary
    evaluation (for the discrete baselines and for scoring sampled
    solutions). *)

type t

val linear : float array -> t
(** [linear u] is f(p) = uᵀp per seed. *)

val mlp_corrected : linear:float array -> Mlp.t -> t
(** f(p) = uᵀp + mlp(p), the §5.5 configuration.
    @raise Invalid_argument if dimensions disagree. *)

val pairwise : linear:float array -> (int * int * float) list -> t
(** [pairwise ~linear:u terms] is f(p) = uᵀp + Σ w·p_i·p_j over the
    given (i, j, w) terms — a quadratic cost capturing the sub-graph
    clustering effects linear models cannot (§2, "Limitations of Linear
    Cost Models"): a negative w is a fusion discount that applies only
    when *both* e-nodes are selected. This realises the "realistic
    non-linear cost models" direction of the paper's §6 future work
    without requiring a learned model.
    @raise Invalid_argument on out-of-range indices. *)

val fusion_of_egraph : Rng.t -> ?pairs:int -> ?discount:float -> Egraph.t -> t
(** A technology-mapping-style instance of {!pairwise}: random
    operator/operand e-node pairs (parent e-node, child-class member)
    receive a discount of [-discount × min(cost_i, cost_j)], modelling
    two adjacent operations fusing into one mapped cell. Defaults:
    [pairs] = N/4, [discount] = 0.4. *)

val of_egraph : Egraph.t -> t
(** The linear model with the e-graph's per-node costs. *)

val name : t -> string
val is_linear : t -> bool
val dim : t -> int
val linear_coeffs : t -> float array

val relaxed : t -> Ad.tape -> Ad.v -> Ad.v
(** [relaxed m tape p] with [p : (B, N)] gives per-seed costs (B, 1). *)

val dense : t -> float array -> float
(** Evaluate one binary (or relaxed) point. *)

val dense_solution : t -> Egraph.t -> Egraph.Solution.s -> float
(** Evaluate an extraction: infinite on invalid solutions, otherwise the
    model applied to the solution's dense indicator vector. For linear
    models this equals {!Egraph.Solution.dag_cost}. *)
