(** The multi-layer-perceptron cost model of §5.5.

    Architecture exactly as the paper describes: an input layer of size N
    mapped to 64 neurons, two hidden layers of 64 and 8 neurons with ReLU
    non-linearities, and a scalar output — i.e. N→64→64→8→1. The model
    is differentiable, so SmoothE can optimise through it; baselines that
    only handle binary inputs evaluate it with {!predict}. *)

type t

val input_dim : t -> int

val create : Rng.t -> input_dim:int -> t
(** He-initialised weights. *)

val forward : Ad.tape -> t -> Ad.v -> Ad.v
(** [forward tape mlp p] with [p : (B, N)] returns per-seed predicted
    costs [(B, 1)]. Weights enter the tape as constants (frozen), which
    is the extraction-time configuration. *)

val forward_trainable : Ad.tape -> t -> Ad.v -> Ad.v * Ad.v list
(** As {!forward} but weights enter as parameters; also returns the
    parameter nodes in a fixed order for the optimiser. *)

val parameters : t -> Tensor.t list
(** The persistent weight tensors, in the {!forward_trainable} order. *)

val predict : t -> float array -> float
(** Scalar prediction on one dense input vector. *)

val predict_batch : t -> Tensor.t -> float array

type training_report = { epochs : int; final_loss : float; initial_loss : float }

val train :
  ?epochs:int ->
  ?lr:float ->
  ?batch_size:int ->
  Rng.t ->
  t ->
  inputs:float array array ->
  targets:float array ->
  training_report
(** Mini-batch Adam regression (MSE), the synthetic-data fitting
    procedure of §5.5. *)
