type t = {
  device_name : string;
  memory_bytes : float;
  backend : Tensor.Backend.mode;
}

let gib = 1024.0 *. 1024.0 *. 1024.0

let a100 = { device_name = "A100-80GB"; memory_bytes = 80.0 *. gib; backend = Tensor.Backend.Vectorized }

let rtx2080ti =
  { device_name = "RTX2080Ti-11GB"; memory_bytes = 11.0 *. gib; backend = Tensor.Backend.Vectorized }

let cpu_baseline =
  (* a 256 GB workstation: big enough for every optimised configuration,
     small enough that the unoptimised full-M-squared matrix exponential
     on the largest e-graphs exceeds it (the OOM entries of Fig. 6) *)
  { device_name = "CPU-baseline"; memory_bytes = 256.0 *. gib; backend = Tensor.Backend.Scalar }

let calibration_scale = 2000.0

type footprint = {
  per_seed_bytes : float;
  matexp_bytes : float;
  matexp_per_seed : bool;
}

(* The PyTorch tape holds, per propagation iteration, activations and
   gradient buffers proportional to the e-node vector (N), the e-class
   vector (M), and the parent edge list (E); the matrix-exponential adds
   ~10 dense d×d workspaces (Padé numerator/denominator, powers, LU). *)
let footprint g ~prop_iters ~scc_decomposition ~batched_matexp =
  let n = float_of_int (Egraph.num_nodes g) in
  let m = float_of_int (Egraph.num_classes g) in
  let e = float_of_int (Egraph.num_edges g) in
  (* an active memory-pressure fault inflates every footprint, as if a
     co-tenant grabbed part of the device *)
  let calibration_scale = calibration_scale *. Fault_plan.mem_pressure () in
  let per_seed_bytes =
    calibration_scale *. 8.0 *. float_of_int prop_iters *. (n +. m +. (2.0 *. e))
  in
  let matexp_cells =
    if scc_decomposition then
      Array.fold_left
        (fun acc scc ->
          let d = float_of_int (Array.length scc) in
          acc +. (d *. d))
        0.0 g.Egraph.sccs
    else m *. m
  in
  let matexp_bytes = calibration_scale *. 8.0 *. 10.0 *. matexp_cells in
  { per_seed_bytes; matexp_bytes; matexp_per_seed = not batched_matexp }

let bytes_for_batch fp batch =
  let b = float_of_int batch in
  let matexp = if fp.matexp_per_seed then fp.matexp_bytes *. b else fp.matexp_bytes in
  (fp.per_seed_bytes *. b) +. matexp

let fits dev fp ~batch = bytes_for_batch fp batch <= dev.memory_bytes

let max_batch dev fp =
  if not (fits dev fp ~batch:1) then 0
  else begin
    (* footprint is affine in the batch, solve directly then clamp *)
    let fixed = if fp.matexp_per_seed then 0.0 else fp.matexp_bytes in
    let slope = fp.per_seed_bytes +. (if fp.matexp_per_seed then fp.matexp_bytes else 0.0) in
    let b = int_of_float ((dev.memory_bytes -. fixed) /. slope) in
    max 1 b
  end

let run dev f = Tensor.Backend.with_mode dev.backend f
