(** Execution-device model.

    The paper's performance results depend on GPU properties in three
    ways: vectorised execution (Figure 6's "+GPU" step), memory capacity
    limiting the seed-batch size (Table 5: the RTX 2080 Ti's 11 GB is 8×
    smaller than the A100's 80 GB, so the batch shrinks 8×, and four
    e-graphs whose per-seed footprint exceeds 11 GB go OOM), and
    batching-driven utilisation (Figure 7). No GPU is available to this
    reproduction, so a device is modelled as a memory capacity plus a
    tensor backend; the memory accounting below mirrors what the PyTorch
    implementation materialises per seed (tape activations for the
    unrolled propagation plus matrix-exponential workspaces).

    The absolute byte scale is calibrated (see {!val-calibration_scale})
    so that the reproduction's largest e-graphs trip the same relative
    OOM behaviour; see DESIGN.md for the substitution argument. *)

type t = {
  device_name : string;
  memory_bytes : float;
  backend : Tensor.Backend.mode;
}

val a100 : t
(** 80 GB, vectorised — the paper's primary evaluation target. *)

val rtx2080ti : t
(** 11 GB, vectorised — the paper's low-end portability target. *)

val cpu_baseline : t
(** A 256 GB-RAM workstation with the scalar backend — the Figure 6
    CPU reference point. Large unoptimised configurations exceed even
    this, matching the paper's OOM entries. *)

val calibration_scale : float
(** Bytes-per-float multiplier modelling PyTorch autograd overhead
    (activation copies, gradient buffers, workspace). *)

type footprint = {
  per_seed_bytes : float;  (** activations proportional to propagation depth × (N + M + E) *)
  matexp_bytes : float;  (** Σ d² over SCC blocks (shared across seeds when Eq. 11 batching is on) *)
  matexp_per_seed : bool;  (** true when the batched-matexp optimisation is OFF *)
}

val footprint :
  Egraph.t -> prop_iters:int -> scc_decomposition:bool -> batched_matexp:bool -> footprint
(** Memory model for one SmoothE configuration on one e-graph. With SCC
    decomposition off, the matrix-exponential block is the full M×M
    class matrix; with per-seed matexp (batched approximation off) the
    matexp workspace multiplies with the batch. *)

val bytes_for_batch : footprint -> int -> float

val max_batch : t -> footprint -> int
(** Largest batch that fits; 0 means even one seed exceeds memory (OOM). *)

val fits : t -> footprint -> batch:int -> bool

val run : t -> (unit -> 'a) -> 'a
(** Execute a computation under the device's tensor backend. *)
