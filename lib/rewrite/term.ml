type t = App of string * t list

let app op args = App (op, args)
let atom op = App (op, [])

let rec size (App (_, args)) = List.fold_left (fun acc a -> acc + size a) 1 args

let rec depth (App (_, args)) = 1 + List.fold_left (fun acc a -> max acc (depth a)) 0 args

let rec to_string (App (op, args)) =
  match args with
  | [] -> op
  | _ -> Printf.sprintf "(%s %s)" op (String.concat " " (List.map to_string args))

let equal = ( = )

type pattern = Var of string | Papp of string * pattern list

let pvar v = Var v
let papp op args = Papp (op, args)
let patom op = Papp (op, [])

let rec pattern_of_term (App (op, args)) = Papp (op, List.map pattern_of_term args)

let rec pattern_to_string = function
  | Var v -> "?" ^ v
  | Papp (op, []) -> op
  | Papp (op, args) ->
      Printf.sprintf "(%s %s)" op (String.concat " " (List.map pattern_to_string args))

let pattern_vars p =
  let seen = Hashtbl.create 8 in
  let order = Vec.create () in
  let rec walk = function
    | Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          Vec.push order v
        end
    | Papp (_, args) -> List.iter walk args
  in
  walk p;
  Vec.to_list order

type rule = { rule_name : string; lhs : pattern; rhs : pattern }

let rule ~name lhs rhs =
  let bound = pattern_vars lhs in
  List.iter
    (fun v ->
      if not (List.mem v bound) then
        invalid_arg (Printf.sprintf "Term.rule %s: rhs variable ?%s unbound by lhs" name v))
    (pattern_vars rhs);
  { rule_name = name; lhs; rhs }

let bidirectional ~name lhs rhs =
  let fwd = rule ~name lhs rhs in
  let lhs_vars = pattern_vars lhs and rhs_vars = pattern_vars rhs in
  if List.for_all (fun v -> List.mem v rhs_vars) lhs_vars then
    [ fwd; rule ~name:(name ^ "-rev") rhs lhs ]
  else [ fwd ]
