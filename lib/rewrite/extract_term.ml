let require_valid g s =
  if not (Egraph.Solution.is_valid g s) then
    invalid_arg "Extract_term: invalid solution (incomplete or cyclic)"

let of_solution g s =
  require_valid g s;
  let rec term_of_class c =
    match s.Egraph.Solution.choice.(c) with
    | None -> invalid_arg "Extract_term.of_solution: unselected class reached"
    | Some n ->
        Term.App
          (g.Egraph.ops.(n), Array.to_list (Array.map term_of_class g.Egraph.children.(n)))
  in
  term_of_class g.Egraph.root

let dag_of_solution g s =
  require_valid g s;
  let name_of = Hashtbl.create 16 in
  let bindings = Vec.create () in
  let rec visit c =
    match Hashtbl.find_opt name_of c with
    | Some name -> name
    | None ->
        let n = Option.get s.Egraph.Solution.choice.(c) in
        let operands = Array.to_list (Array.map visit g.Egraph.children.(n)) in
        let name = Printf.sprintf "v%d" (Hashtbl.length name_of) in
        Hashtbl.add name_of c name;
        Vec.push bindings (name, g.Egraph.ops.(n) :: operands);
        name
  in
  ignore (visit g.Egraph.root);
  Vec.to_list bindings

let render_dag bindings =
  String.concat "\n"
    (List.map
       (fun (name, parts) ->
         match parts with
         | [ op ] -> Printf.sprintf "let %s = %s" name op
         | op :: operands -> Printf.sprintf "let %s = %s(%s)" name op (String.concat ", " operands)
         | [] -> Printf.sprintf "let %s = ?" name)
       bindings)
