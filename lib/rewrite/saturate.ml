(* A canonical e-node: operator plus canonicalised child class ids. *)
type key = string * int list

type g = {
  uf : Union_find.t;
  memo : (key, int) Hashtbl.t;  (* canonical node -> canonical class *)
  members : (int, key Vec.t) Hashtbl.t;  (* canonical class -> nodes *)
  mutable dirty : int list;  (* classes touched by unions since last rebuild *)
  mutable node_count : int;
}

let create () =
  { uf = Union_find.create (); memo = Hashtbl.create 1024; members = Hashtbl.create 256;
    dirty = []; node_count = 0 }

let find g c = Union_find.find g.uf c

let canon_key g (op, kids) = op, List.map (find g) kids

let members_of g c =
  match Hashtbl.find_opt g.members c with
  | Some v -> v
  | None ->
      let v = Vec.create () in
      Hashtbl.replace g.members c v;
      v

let add_node g op kids =
  let key = canon_key g (op, kids) in
  match Hashtbl.find_opt g.memo key with
  | Some c -> find g c
  | None ->
      let c = Union_find.fresh g.uf in
      Hashtbl.replace g.memo key c;
      Vec.push (members_of g c) key;
      g.node_count <- g.node_count + 1;
      c

let rec add_term g (Term.App (op, args)) = add_node g op (List.map (add_term g) args)

let union g a b =
  let ra = find g a and rb = find g b in
  if ra = rb then false
  else begin
    let winner = Union_find.union g.uf ra rb in
    let loser = if winner = ra then rb else ra in
    (* Move the loser's member nodes into the winner. *)
    let lm = members_of g loser in
    let wm = members_of g winner in
    Vec.iter (fun k -> Vec.push wm k) lm;
    Hashtbl.remove g.members loser;
    g.dirty <- winner :: g.dirty;
    true
  end

(* Congruence closure: after unions, nodes that canonicalise identically
   must have their owning classes merged. A union in one class changes
   the canonical keys of nodes in *other* classes whose children pointed
   at the merged classes, so the sweep gathers every node, unions the
   owners of congruent duplicates, rebuilds the membership and memo
   tables from scratch, and repeats until no union fires (a global
   fixpoint - simpler than egg's parent-list propagation and correct at
   our scales). *)
let rebuild g =
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    g.dirty <- [];
    (* gather all nodes with canonical keys and owners *)
    let all = Vec.create () in
    Hashtbl.iter
      (fun c mem -> Vec.iter (fun key -> Vec.push all (find g c, canon_key g key)) mem)
      g.members;
    (* union the owners of congruent duplicates *)
    let owner = Hashtbl.create (Vec.length all) in
    Vec.iter
      (fun (c, key) ->
        match Hashtbl.find_opt owner key with
        | Some c' when find g c' <> find g c ->
            ignore (union g c c');
            continue_ := true
        | Some _ -> ()
        | None -> Hashtbl.add owner key c)
      all;
    (* rebuild members and memo under the final canonical ids *)
    Hashtbl.reset g.memo;
    Hashtbl.reset g.members;
    let count = ref 0 in
    Vec.iter
      (fun (c, key) ->
        let c = find g c in
        let key = canon_key g key in
        match Hashtbl.find_opt g.memo key with
        | None ->
            Hashtbl.replace g.memo key c;
            Vec.push (members_of g c) key;
            incr count
        | Some c' ->
            (* a congruent duplicate: its class must merge, not merely
               have the member dropped *)
            if find g c' <> c then begin
              ignore (union g c c');
              continue_ := true
            end)
      all;
    g.node_count <- !count;
    g.dirty <- []
  done

let num_nodes g = g.node_count

let num_classes g =
  Hashtbl.fold (fun _ _ acc -> acc + 1) g.members 0

(* E-matching: backtracking over class members. *)
let ematch g pattern =
  let results = Vec.create () in
  let rec match_in cls pat env cont =
    match pat with
    | Term.Var v -> (
        match List.assoc_opt v env with
        | Some bound -> if find g bound = cls then cont env
        | None -> cont ((v, cls) :: env))
    | Term.Papp (op, args) ->
        let arity = List.length args in
        let mem = members_of g cls in
        Vec.iter
          (fun (nop, kids) ->
            if nop = op && List.length kids = arity then
              match_args (List.map (find g) kids) args env cont)
          mem
  and match_args kids pats env cont =
    match kids, pats with
    | [], [] -> cont env
    | k :: ks, p :: ps -> match_in k p env (fun env' -> match_args ks ps env' cont)
    | _ -> ()
  in
  let classes = Hashtbl.fold (fun c _ acc -> c :: acc) g.members [] in
  List.iter
    (fun cls -> match_in cls pattern [] (fun env -> Vec.push results (cls, env)))
    classes;
  Vec.to_list results

let rec instantiate g env = function
  | Term.Var v -> (
      match List.assoc_opt v env with
      | Some c -> find g c
      | None -> invalid_arg "Saturate.instantiate: unbound variable")
  | Term.Papp (op, args) -> add_node g op (List.map (instantiate g env) args)

type report = {
  iterations : int;
  saturated : bool;
  final_nodes : int;
  final_classes : int;
  applied : (string * int) list;
}

let run ?(node_limit = 50_000) ?(iter_limit = 16) g rules =
  let applied = Hashtbl.create (List.length rules) in
  let bump name =
    Hashtbl.replace applied name (1 + Option.value ~default:0 (Hashtbl.find_opt applied name))
  in
  let rec round i =
    if i >= iter_limit then i, false
    else if g.node_count >= node_limit then i, false
    else begin
      let nodes_before = g.node_count in
      let changed =
        Trace.with_span ~cat:"rewrite"
          ~attrs:(if !Obs.on then [ ("iteration", string_of_int i) ] else [])
          "saturate.round"
        @@ fun () ->
        (* egg schedule: collect all matches first, then apply. *)
        let work =
          List.concat_map
            (fun r -> List.map (fun (cls, env) -> r, cls, env) (ematch g r.Term.lhs))
            rules
        in
        let changed = ref false in
        List.iter
          (fun (r, cls, env) ->
            if g.node_count < node_limit then begin
              let rhs_cls = instantiate g env r.Term.rhs in
              if union g (find g cls) rhs_cls then begin
                changed := true;
                bump r.Term.rule_name
              end
            end)
          work;
        rebuild g;
        !changed
      in
      if !Obs.on then begin
        Metrics.observe "saturate.node_growth" (float_of_int (g.node_count - nodes_before));
        Metrics.set_gauge "saturate.nodes" (float_of_int g.node_count)
      end;
      if changed then round (i + 1) else i, true
    end
  in
  let iterations, saturated =
    Trace.with_span ~cat:"rewrite" "saturate.run" (fun () -> round 0)
  in
  {
    iterations;
    saturated;
    final_nodes = num_nodes g;
    final_classes = num_classes g;
    applied = Hashtbl.fold (fun k v acc -> (k, v) :: acc) applied [];
  }

let export ?(name = "saturated") g ~root ~cost =
  let builder = Egraph.Builder.create ~name () in
  (* Allocate a builder class per canonical class. *)
  let class_map = Hashtbl.create (num_classes g) in
  let builder_class c =
    let c = find g c in
    match Hashtbl.find_opt class_map c with
    | Some bc -> bc
    | None ->
        let bc = Egraph.Builder.add_class builder in
        Hashtbl.replace class_map c bc;
        bc
  in
  Hashtbl.iter
    (fun c mem ->
      let bc = builder_class c in
      Vec.iter
        (fun (op, kids) ->
          let kids = List.map builder_class kids in
          let arity = List.length kids in
          ignore (Egraph.Builder.add_node builder ~cls:bc ~op ~cost:(cost op arity) ~children:kids))
        mem)
    g.members;
  Egraph.Builder.freeze builder ~root:(builder_class root)
