type config = {
  match_limit : int;
  ban_base : int;
  node_limit : int;
  iter_limit : int;
}

let default_config = { match_limit = 64; ban_base = 2; node_limit = 50_000; iter_limit = 24 }

type rule_state = {
  rule : Term.rule;
  mutable banned_until : int;  (* round index; active when round >= banned_until *)
  mutable ban_length : int;
  mutable times_banned : int;
  mutable times_applied : int;
}

type report = {
  iterations : int;
  saturated : bool;
  final_nodes : int;
  final_classes : int;
  applied : (string * int) list;
  banned_total : (string * int) list;
}

let run ?(config = default_config) g rules =
  let states =
    List.map
      (fun rule ->
        { rule; banned_until = 0; ban_length = config.ban_base; times_banned = 0;
          times_applied = 0 })
      rules
  in
  let rec round i =
    if i >= config.iter_limit || Saturate.num_nodes g >= config.node_limit then i, false
    else begin
      let changed = ref false in
      let any_banned = ref false in
      List.iter
        (fun st ->
          if i < st.banned_until then any_banned := true
          else begin
            let matches = Saturate.ematch g st.rule.Term.lhs in
            let total = List.length matches in
            if total > config.match_limit then begin
              (* too hot: apply nothing this round and banish the rule,
                 doubling the sentence on each offence (egg's backoff) *)
              st.banned_until <- i + st.ban_length;
              st.ban_length <- st.ban_length * 2;
              st.times_banned <- st.times_banned + 1;
              any_banned := true
            end
            else
              List.iter
                (fun (cls, env) ->
                  if Saturate.num_nodes g < config.node_limit then begin
                    (* re-instantiate via a one-match application: the
                       rhs is added and unioned with the matched class *)
                    let rhs_cls =
                      let rec inst = function
                        | Term.Var v -> List.assoc v env
                        | Term.Papp (op, args) -> Saturate.add_node g op (List.map inst args)
                      in
                      inst st.rule.Term.rhs
                    in
                    if Saturate.union g cls rhs_cls then begin
                      changed := true;
                      st.times_applied <- st.times_applied + 1
                    end
                  end)
                matches
          end)
        states;
      Saturate.rebuild g;
      if !changed || !any_banned then round (i + 1) else i, true
    end
  in
  let iterations, saturated = round 0 in
  {
    iterations;
    saturated;
    final_nodes = Saturate.num_nodes g;
    final_classes = Saturate.num_classes g;
    applied = List.map (fun st -> st.rule.Term.rule_name, st.times_applied) states;
    banned_total = List.map (fun st -> st.rule.Term.rule_name, st.times_banned) states;
  }
