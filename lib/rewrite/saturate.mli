(** Equality saturation (an egg-lite).

    Maintains a mutable hash-consed e-graph with a union-find over
    e-class ids and congruence closure via [rebuild] (the invariant-
    restoration strategy introduced by egg). Rewrites are applied
    additively in rounds until a fixpoint or a growth limit — exactly the
    workflow of §2, after which {!export} freezes the result into the
    immutable {!Egraph.t} consumed by every extractor. *)

type g

val create : unit -> g

val add_term : g -> Term.t -> int
(** Hash-cons a term into the e-graph; returns its e-class id. *)

val add_node : g -> string -> int list -> int
(** [add_node g op children] hash-conses one e-node over existing
    e-class ids. *)

val union : g -> int -> int -> bool
(** Merge two e-classes; true when they were distinct. [rebuild] must run
    before matching again. *)

val rebuild : g -> unit
(** Restore the congruence invariant after unions. *)

val find : g -> int -> int
(** Canonical e-class id. *)

val num_classes : g -> int
val num_nodes : g -> int

val ematch : g -> Term.pattern -> (int * (string * int) list) list
(** All matches of a pattern: pairs of (matched e-class, substitution
    from pattern variables to e-class ids). *)

type report = {
  iterations : int;
  saturated : bool;  (** fixpoint reached before hitting any limit *)
  final_nodes : int;
  final_classes : int;
  applied : (string * int) list;  (** per-rule application counts *)
}

val run :
  ?node_limit:int -> ?iter_limit:int -> g -> Term.rule list -> report
(** Apply rules in rounds (match-all-then-apply, the egg schedule) until
    saturation, [iter_limit] rounds (default 16), or the e-graph exceeds
    [node_limit] e-nodes (default 50_000). *)

val export : ?name:string -> g -> root:int -> cost:(string -> int -> float) -> Egraph.t
(** Freeze into the immutable representation. [cost op arity] assigns
    each e-node's base cost. Only classes reachable from [root] are
    kept. *)
