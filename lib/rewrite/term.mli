(** Terms and rewrite patterns.

    The input language of the equality-saturation engine: first-order
    terms over string-labelled operators. Patterns extend terms with
    named holes. Rewrite rules pair a left-hand-side pattern with a
    right-hand-side template (§2: "patterns on the left-hand side are
    matched and the terms on the right-hand side are added"). *)

type t = App of string * t list

val app : string -> t list -> t
val atom : string -> t
(** Nullary operator (a leaf such as a variable or constant). *)

val size : t -> int
val depth : t -> int
val to_string : t -> string
(** S-expression rendering, e.g. [(+ (sec a) (tan a))]. *)

val equal : t -> t -> bool

type pattern = Var of string | Papp of string * pattern list

val pvar : string -> pattern
val papp : string -> pattern list -> pattern
val patom : string -> pattern

val pattern_of_term : t -> pattern
val pattern_to_string : pattern -> string

val pattern_vars : pattern -> string list
(** Distinct variables in first-occurrence order. *)

type rule = { rule_name : string; lhs : pattern; rhs : pattern }

val rule : name:string -> pattern -> pattern -> rule
(** @raise Invalid_argument if the right-hand side mentions a variable
    the left-hand side does not bind. *)

val bidirectional : name:string -> pattern -> pattern -> rule list
(** The rule and its reverse (when the reverse is also well-formed). *)
