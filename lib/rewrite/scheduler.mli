(** Rule scheduling for equality saturation, after egg's
    BackoffScheduler.

    Plain round-robin application (Saturate.run) lets explosive rules —
    associativity, commutativity, the identity-introduction rules the
    tensat dataset uses — consume the whole node budget before slower,
    more valuable rules fire. The backoff scheduler throttles each rule
    independently: a rule may apply at most [match_limit] times per
    round; exceeding the limit "banishes" it for a number of rounds that
    doubles on every offence. This is the mechanism egg uses to keep
    saturation useful on explosive rule sets, built here on top of the
    public {!Saturate} API (ematch / instantiate via rule application /
    union / rebuild). *)

type config = {
  match_limit : int;  (** per-rule applications allowed per round *)
  ban_base : int;  (** initial ban length, in rounds *)
  node_limit : int;
  iter_limit : int;
}

val default_config : config

type report = {
  iterations : int;
  saturated : bool;  (** fixpoint with no rule banned *)
  final_nodes : int;
  final_classes : int;
  applied : (string * int) list;
  banned_total : (string * int) list;  (** how often each rule was banished *)
}

val run : ?config:config -> Saturate.g -> Term.rule list -> report
