(** Reconstruct a term from an extraction solution.

    The end product of the whole pipeline (§2): after extraction selects
    one e-node per needed e-class, the chosen nodes form exactly one
    program, provided the selection is valid (complete and acyclic). *)

val of_solution : Egraph.t -> Egraph.Solution.s -> Term.t
(** @raise Invalid_argument when the solution is invalid (the term would
    be undefined or infinite). Shared e-classes are expanded at every
    use site, so the printed term may be exponentially larger than its
    DAG; see {!dag_of_solution} for the shared form. *)

val dag_of_solution : Egraph.t -> Egraph.Solution.s -> (string * string list) list
(** A let-style listing: each selected e-class becomes a binder
    [(name, op :: operand-names)] in dependency order (operands first),
    making the reuse of common subexpressions visible. *)

val render_dag : (string * string list) list -> string
(** Pretty "let v0 = ..." rendering of {!dag_of_solution}. *)
