(** A minimal JSON parser and printer.

    Only what the extraction-gym interchange format needs (objects,
    arrays, strings, numbers, booleans, null; UTF-8 passed through,
    [\uXXXX] escapes decoded for the ASCII range). Written in-repo
    because the build environment is sealed (no yojson). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of string
(** Carries a message with the offending position. *)

val parse : string -> t
(** @raise Parse_error on malformed input (including trailing junk). *)

val to_string : ?pretty:bool -> t -> string
(** Serialise. Non-finite numbers ([nan], [±infinity]) have no JSON
    representation and are emitted as [null]. *)

(** {1 Accessors} — raise [Parse_error] with a path message on shape
    mismatches, so format errors in user files stay debuggable. *)

val member : string -> t -> t
(** Object field; [Null] if absent. *)

val get_string : t -> string
val get_number : t -> float
val get_list : t -> t list
val get_object : t -> (string * t) list
