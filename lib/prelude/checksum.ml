(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected), table-driven.
   Plain OCaml ints: the value always fits in 32 bits, well inside the
   63-bit native int. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Checksum.crc32: bad substring";
  let table = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    crc := table.((!crc lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF
