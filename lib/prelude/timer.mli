(** Wall-clock timing and deadline management.

    The paper's evaluation is dominated by time-limited runs (15-minute
    ILP budgets, anytime curves, patience-based stopping). [Timer]
    provides monotonic-ish wall-clock stamps and a [Deadline] that every
    long-running solver polls. *)

val now : unit -> float
(** Seconds since the epoch, sub-millisecond resolution. *)

type deadline

val deadline_after : float -> deadline
(** [deadline_after s] expires [s] seconds from now. Non-positive [s]
    means "no limit". *)

val no_deadline : deadline

val expired : deadline -> bool

val remaining : deadline -> float
(** Seconds left; [infinity] for {!no_deadline}, 0 when expired. *)

val elapsed : deadline -> float
(** Seconds since the deadline was created. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed seconds. *)
