(** Wall-clock timing and deadline management.

    The paper's evaluation is dominated by time-limited runs (15-minute
    ILP budgets, anytime curves, patience-based stopping). [Timer]
    provides monotonic-ish wall-clock stamps and a [Deadline] that every
    long-running solver polls. *)

val now : unit -> float
(** Seconds since the epoch, sub-millisecond resolution, plus any
    configured skew (see {!set_skew}). *)

val set_skew : float -> unit
(** Shift the apparent clock forward by [s] seconds. Used by the
    fault-injection framework to simulate clock jumps; every deadline
    created before the shift expires [s] seconds early. Production code
    never calls this. *)

val get_skew : unit -> float

type deadline

val deadline_after : float -> deadline
(** [deadline_after s] expires [s] seconds from now. Non-positive [s]
    means "no limit". *)

val no_deadline : deadline

val expired : deadline -> bool

val remaining : deadline -> float
(** Seconds left; [infinity] for {!no_deadline}, 0 when expired. *)

val elapsed : deadline -> float
(** Seconds since the deadline was created. *)

val check_every : int
(** The unified deadline-poll granularity shared by the cooperative
    solvers (LP simplex iterations, branch-and-bound nodes, annealing
    steps): a power of two, so {!poll} can mask instead of divide. *)

val poll : deadline -> int -> bool
(** [poll d i] is [expired d] evaluated only when [i] is a multiple of
    {!check_every}; other calls return [false] without reading the
    clock. Inner solver loops call this with their iteration counter so
    watchdog latency is bounded by [check_every] iterations everywhere. *)

val sleep_until : deadline -> unit
(** Block (in small sleeps) until [d] expires; returns immediately for
    {!no_deadline}. Used to simulate stalled solvers under fault
    injection. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed seconds. *)
