type 'a t = { leq : 'a -> 'a -> bool; items : 'a Vec.t }

let create ~leq = { leq; items = Vec.create () }
let length h = Vec.length h.items
let is_empty h = Vec.is_empty h.items
let clear h = Vec.clear h.items

let swap h i j =
  let tmp = Vec.get h.items i in
  Vec.set h.items i (Vec.get h.items j);
  Vec.set h.items j tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.leq (Vec.get h.items i) (Vec.get h.items parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = Vec.length h.items in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && h.leq (Vec.get h.items l) (Vec.get h.items !smallest) then smallest := l;
  if r < n && h.leq (Vec.get h.items r) (Vec.get h.items !smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  Vec.push h.items x;
  sift_up h (Vec.length h.items - 1)

let pop h =
  if is_empty h then invalid_arg "Heap.pop: empty";
  let top = Vec.get h.items 0 in
  let last = Vec.pop h.items in
  if not (is_empty h) then begin
    Vec.set h.items 0 last;
    sift_down h 0
  end;
  top

let peek h = if is_empty h then None else Some (Vec.get h.items 0)
let iter f h = Vec.iter f h.items
let fold f init h = Vec.fold_left f init h.items
