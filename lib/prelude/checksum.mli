(** CRC-32 (IEEE) checksums.

    Used to frame durable on-disk artifacts (checkpoint files): CRC-32
    detects every single-bit error and all burst errors up to 32 bits,
    which is exactly the guarantee the torn-write / bit-rot recovery
    path is tested against. Written in-repo because the build
    environment is sealed. *)

val crc32 : ?off:int -> ?len:int -> string -> int
(** [crc32 s] is the standard CRC-32 of [s] (check value:
    [crc32 "123456789" = 0xCBF43926]), as a non-negative int in
    [[0, 2^32)]. [off]/[len] select a substring.
    @raise Invalid_argument on an out-of-range substring. *)
