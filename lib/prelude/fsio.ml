let write_atomic ~path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match output_string oc content with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------- append *)

(* Journals cannot use [write_atomic]: a write-ahead log grows by
   appending frames, and rewriting the whole file per record would turn
   O(1) admissions into O(n). The durability discipline is instead
   flush + fsync per append: after [append] returns, the bytes are on
   disk (or the call raised). Torn *tails* — a crash mid-append — are
   the reader's problem; framed journal formats tolerate them by
   construction. *)

type appender = { ap_path : string; oc : out_channel; fsync : bool }

let open_append ?(fsync = true) path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  { ap_path = path; oc; fsync }

let append a content =
  output_string a.oc content;
  flush a.oc;
  if a.fsync then Unix.fsync (Unix.descr_of_out_channel a.oc)

let append_path a = a.ap_path

let close_append a = close_out_noerr a.oc
