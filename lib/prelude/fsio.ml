let write_atomic ~path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match output_string oc content with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
