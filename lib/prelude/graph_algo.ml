(* Iterative Tarjan: explicit stack of (node, next-edge-index) frames so
   that large SCCs (e.g. e-graphs with tens of thousands of e-classes) do
   not overflow the OCaml call stack. *)
let tarjan_scc succ =
  let n = Array.length succ in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Vec.create () in
  let next_index = ref 0 in
  let components = Vec.create () in
  let frames = Vec.create () in
  let start_node v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    Vec.push stack v;
    on_stack.(v) <- true;
    Vec.push frames (v, ref 0)
  in
  let finish_node v =
    if lowlink.(v) = index.(v) then begin
      let comp = Vec.create () in
      let rec pop_members () =
        let w = Vec.pop stack in
        on_stack.(w) <- false;
        Vec.push comp w;
        if w <> v then pop_members ()
      in
      pop_members ();
      Vec.push components (Vec.to_array comp)
    end
  in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      start_node root;
      while not (Vec.is_empty frames) do
        let v, edge = Vec.last frames in
        if !edge < Array.length succ.(v) then begin
          let w = succ.(v).(!edge) in
          incr edge;
          if index.(w) < 0 then start_node w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          ignore (Vec.pop frames);
          finish_node v;
          if not (Vec.is_empty frames) then begin
            let parent, _ = Vec.last frames in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
        end
      done
    end
  done;
  Vec.to_array components

let scc_ids succ =
  let comps = tarjan_scc succ in
  let n = Array.length succ in
  let comp = Array.make n (-1) in
  Array.iteri (fun ci members -> Array.iter (fun v -> comp.(v) <- ci) members) comps;
  comp, Array.length comps

let topological_order succ =
  let n = Array.length succ in
  let indeg = Array.make n 0 in
  Array.iter (fun ws -> Array.iter (fun w -> indeg.(w) <- indeg.(w) + 1) ws) succ;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = Vec.create () in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Vec.push order v;
    Array.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      succ.(v)
  done;
  if Vec.length order = n then Some (Vec.to_array order) else None

let is_acyclic succ = topological_order succ <> None

let reachable succ roots =
  let n = Array.length succ in
  let seen = Array.make n false in
  let stack = Vec.create () in
  let visit v =
    if v >= 0 && v < n && not seen.(v) then begin
      seen.(v) <- true;
      Vec.push stack v
    end
  in
  List.iter visit roots;
  while not (Vec.is_empty stack) do
    let v = Vec.pop stack in
    Array.iter visit succ.(v)
  done;
  seen

(* Colour-based DFS restricted to nodes reachable from [roots]:
   grey = on the current path, black = fully explored. *)
let has_cycle_from succ roots =
  let n = Array.length succ in
  let colour = Array.make n 0 in
  let found = ref false in
  let frames = Vec.create () in
  let enter v =
    colour.(v) <- 1;
    Vec.push frames (v, ref 0)
  in
  let run root =
    if colour.(root) = 0 then begin
      enter root;
      while (not !found) && not (Vec.is_empty frames) do
        let v, edge = Vec.last frames in
        if !edge < Array.length succ.(v) then begin
          let w = succ.(v).(!edge) in
          incr edge;
          if colour.(w) = 1 then found := true
          else if colour.(w) = 0 then enter w
        end
        else begin
          ignore (Vec.pop frames);
          colour.(v) <- 2
        end
      done;
      Vec.clear frames
    end
  in
  List.iter run roots;
  !found
