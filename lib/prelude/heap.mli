(** Binary min-heap with a caller-supplied priority.

    Used as the best-bound frontier of the branch-and-bound MILP solver
    and as the worklist of cost-propagation extractors. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> 'a t
(** [create ~leq] orders elements so that [leq x y] means [x] pops
    before [y]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val peek : 'a t -> 'a option
val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Visit every element in unspecified (heap-internal) order. *)

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
(** Fold over every element in unspecified order — used to scan a
    branch-and-bound frontier for the weakest open bound without
    disturbing it. *)
