type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: expands a small seed into well-distributed state words. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 rng =
  let open Int64 in
  let result = mul (rotl (mul rng.s1 5L) 7) 9L in
  let t = shift_left rng.s1 17 in
  rng.s2 <- logxor rng.s2 rng.s0;
  rng.s3 <- logxor rng.s3 rng.s1;
  rng.s1 <- logxor rng.s1 rng.s2;
  rng.s0 <- logxor rng.s0 rng.s3;
  rng.s2 <- logxor rng.s2 t;
  rng.s3 <- rotl rng.s3 45;
  result

(* The child is derived from ALL FOUR parent state words, folded
   through splitmix64 one at a time (a sponge), plus one output draw
   so repeated splits of the same parent differ. Seeding from a single
   [int64 rng] output — the old scheme — collapsed the 256-bit parent
   state to 64 bits, and worse: the xoshiro256** output function reads
   only [s1], so two parents that happened to share [s1] produced
   bit-identical children regardless of the other 192 bits. *)
let split rng =
  let out = int64 rng in
  let state = ref out in
  let absorb w =
    state := Int64.logxor !state (splitmix64 (ref w));
    ignore (splitmix64 state : int64)
  in
  absorb rng.s0;
  absorb rng.s1;
  absorb rng.s2;
  absorb rng.s3;
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  (* splitmix64 is a bijection of a nonzero-increment counter, so the
     all-zero child state cannot occur for any absorbed input *)
  { s0; s1; s2; s3 }

let copy rng = { s0 = rng.s0; s1 = rng.s1; s2 = rng.s2; s3 = rng.s3 }

let state rng = [| rng.s0; rng.s1; rng.s2; rng.s3 |]

let of_state st =
  if Array.length st <> 4 then
    invalid_arg
      (Printf.sprintf "Rng.of_state: expected 4 state words, got %d" (Array.length st));
  if Array.for_all (Int64.equal 0L) st then
    invalid_arg "Rng.of_state: the all-zero state is a fixed point of xoshiro256**";
  { s0 = st.(0); s1 = st.(1); s2 = st.(2); s3 = st.(3) }

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62. *)
  let x = Int64.shift_right_logical (int64 rng) 2 in
  Int64.to_int (Int64.rem x (Int64.of_int bound))

let uniform rng =
  (* 53 high bits -> uniform double in [0,1). *)
  let x = Int64.shift_right_logical (int64 rng) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let float rng bound = uniform rng *. bound

let gaussian rng =
  let rec nonzero () =
    let u = uniform rng in
    if u <= 1e-300 then nonzero () else u
  in
  let u1 = nonzero () and u2 = uniform rng in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bool rng = Int64.logand (int64 rng) 1L = 1L

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose rng a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int rng (Array.length a))

let choose_weighted rng w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Rng.choose_weighted: empty array";
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then int rng n
  else begin
    let target = float rng total in
    let rec loop i acc =
      if i = n - 1 then i
      else begin
        let acc = acc +. w.(i) in
        if target < acc then i else loop (i + 1) acc
      end
    in
    loop 0 0.0
  end
