(** Directed-graph algorithms over dense integer node ids.

    These back the e-graph analyses the paper relies on: strongly
    connected component decomposition for the NOTEARS matrix-exponential
    optimisation (§4.3), topological ordering for acyclic probability
    propagation, and cycle detection for validating sampled extractions.

    Graphs are given as adjacency arrays: [succ.(u)] lists the successors
    of node [u]. *)

val tarjan_scc : int array array -> int array array
(** [tarjan_scc succ] returns the strongly connected components in
    reverse topological order (every edge leaving a component points to a
    component appearing *earlier* in the result). Each component lists
    its member nodes. Iterative implementation; safe on deep graphs. *)

val scc_ids : int array array -> int array * int
(** [scc_ids succ] is [(comp, k)] where [comp.(u)] is the component index
    of node [u] (indices follow {!tarjan_scc} order) and [k] the number
    of components. *)

val topological_order : int array array -> int array option
(** [topological_order succ] is [Some order] (nodes listed with every
    node before its successors) when the graph is acyclic, [None]
    otherwise. Kahn's algorithm. *)

val is_acyclic : int array array -> bool

val has_cycle_from : int array array -> int list -> bool
(** [has_cycle_from succ roots] detects a cycle among nodes reachable
    from [roots] only. *)

val reachable : int array array -> int list -> bool array
(** Nodes reachable from the given roots (roots included). *)
