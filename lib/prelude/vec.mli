(** Growable arrays.

    A thin, allocation-friendly dynamic array used throughout the code base
    for building index structures whose final size is not known up front
    (e-node tables, edge lists, branch-and-bound node pools, autodiff
    tapes). *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] raises [Invalid_argument] when [i] is out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** [push v x] appends [x], growing the backing store geometrically. *)

val pop : 'a t -> 'a
(** [pop v] removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)

val last : 'a t -> 'a

val clear : 'a t -> unit
(** [clear v] resets the length to zero without shrinking storage. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

val exists : ('a -> bool) -> 'a t -> bool

val to_array : 'a t -> 'a array
(** [to_array v] is a fresh array with the current contents. *)

val to_list : 'a t -> 'a list

val of_array : 'a array -> 'a t

val of_list : 'a list -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live prefix. *)
