let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        if x < 0.0 then invalid_arg "Stats.geomean: negative value";
        (* log 0 = -inf propagates to a 0 geomean, which is the right answer. *)
        acc := !acc +. log x)
      xs;
    exp (!acc /. float_of_int n)
  end

let geomean_ratio xs = geomean (Array.map (fun x -> 1.0 +. x) xs) -. 1.0

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    !acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  let lo = ref xs.(0) and hi = ref xs.(0) in
  Array.iter
    (fun x ->
      if x < !lo then lo := x;
      if x > !hi then hi := x)
    xs;
  !lo, !hi

let max_abs_diff xs =
  let lo, hi = min_max xs in
  hi -. lo

let percentile xs q =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  (* the negated form also rejects a NaN q, which every comparison in
     the original [q < 0.0 || q > 100.0] bound check let through *)
  if not (q >= 0.0 && q <= 100.0) then invalid_arg "Stats.percentile: q outside [0,100]";
  if Array.exists Float.is_nan xs then Float.nan
  else begin
  (* Float.compare, not polymorphic compare: the latter goes through
     the generic structural path (slow) and orders boxed floats by
     their bit patterns on some immediates, so NaNs could land
     anywhere in the sorted array and poison the interpolation
     silently. With NaNs handled above, Float.compare is a total
     order on what remains. *)
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end
  end

let median xs = percentile xs 50.0
