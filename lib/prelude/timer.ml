(* Clock skew is a testability hook: the fault-injection framework can
   shift the apparent wall clock forward so deadline handling under
   clock jumps is exercisable without real waiting. Zero in production. *)
let skew = ref 0.0

let set_skew s = skew := s
let get_skew () = !skew

let now () = Unix.gettimeofday () +. !skew

type deadline = { start : float; limit : float }

let deadline_after s =
  let start = now () in
  if s <= 0.0 then { start; limit = infinity } else { start; limit = start +. s }

let no_deadline = { start = 0.0; limit = infinity }

let expired d = now () >= d.limit

let remaining d =
  if d.limit = infinity then infinity else Float.max 0.0 (d.limit -. now ())

let elapsed d = now () -. d.start

(* Every long-running solver polls its deadline at the same granularity
   so watchdog latency is bounded and consistent across members
   (previously annealing checked every 256 steps and the LP every 64
   iterations). *)
let check_every = 128

let poll d i = i land (check_every - 1) = 0 && expired d

let sleep_until d =
  if d.limit < infinity then
    while not (expired d) do
      Unix.sleepf (Float.min 0.002 (Float.max 0.0001 (remaining d)))
    done

let time f =
  let start = now () in
  let result = f () in
  result, now () -. start
