let now () = Unix.gettimeofday ()

type deadline = { start : float; limit : float }

let deadline_after s =
  let start = now () in
  if s <= 0.0 then { start; limit = infinity } else { start; limit = start +. s }

let no_deadline = { start = 0.0; limit = infinity }

let expired d = now () >= d.limit

let remaining d =
  if d.limit = infinity then infinity else Float.max 0.0 (d.limit -. now ())

let elapsed d = now () -. d.start

let time f =
  let start = now () in
  let result = f () in
  result, now () -. start
