(** Small statistics helpers used by the evaluation harness.

    The paper reports geometric means across e-graphs (Table 2 caption)
    and max-difference error bars over repeated runs; these helpers keep
    those computations in one audited place. *)

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values; 0 on an empty array.
    @raise Invalid_argument if any value is negative. *)

val geomean_ratio : float array -> float
(** Geometric mean of [1 + x] values minus 1 — the paper normalises cost
    increases as ratios over an oracle, and aggregates multiplicatively;
    this keeps 0%-increase entries meaningful. *)

val variance : float array -> float
(** Population variance; 0 on arrays shorter than 2. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** @raise Invalid_argument on an empty array. *)

val max_abs_diff : float array -> float
(** [max_abs_diff xs] is [max xs - min xs]: the "maximum difference"
    error bar the paper attaches to SmoothE results over 3 runs. *)

val median : float array -> float
(** [median xs = percentile xs 50.0], including the NaN policy. *)

val percentile : float array -> float -> float
(** [percentile xs q] with [q] in [0,100], linear interpolation over
    the array sorted with [Float.compare].

    NaN policy: if any input is NaN the result is NaN — a poisoned
    sample poisons the summary, loudly, instead of landing at an
    arbitrary rank (the old polymorphic-compare sort put NaNs at
    unspecified positions and silently shifted every quantile).
    Infinities are ordered normally ([-inf] first, [inf] last).
    @raise Invalid_argument on an empty array or [q] outside [0,100]
    (a NaN [q] is outside). *)
