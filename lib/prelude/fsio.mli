(** Crash-safe file writes.

    Every durable artifact the toolchain emits — checkpoints, health
    reports, trace files, metrics snapshots, trace summaries — goes
    through {!write_atomic}: the content is written to a sibling
    temporary file and renamed over the destination, so a crash (or an
    injected fault) mid-write can never leave a truncated report at the
    final path. Rename is atomic on POSIX filesystems; readers see
    either the old complete file or the new complete file, never a
    prefix. *)

val write_atomic : path:string -> string -> unit
(** [write_atomic ~path content] writes [content] to [path ^ ".tmp"]
    and renames it onto [path], replacing any previous file. The
    channel is flushed and closed before the rename; on any write
    error the temporary file is removed and the destination is left
    untouched. *)

val read_file : string -> string
(** The whole file, read in binary mode. *)
