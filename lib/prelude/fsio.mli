(** Crash-safe file writes.

    Every durable artifact the toolchain emits — checkpoints, health
    reports, trace files, metrics snapshots, trace summaries — goes
    through {!write_atomic}: the content is written to a sibling
    temporary file and renamed over the destination, so a crash (or an
    injected fault) mid-write can never leave a truncated report at the
    final path. Rename is atomic on POSIX filesystems; readers see
    either the old complete file or the new complete file, never a
    prefix. *)

val write_atomic : path:string -> string -> unit
(** [write_atomic ~path content] writes [content] to [path ^ ".tmp"]
    and renames it onto [path], replacing any previous file. The
    channel is flushed and closed before the rename; on any write
    error the temporary file is removed and the destination is left
    untouched. *)

val read_file : string -> string
(** The whole file, read in binary mode. *)

val mkdir_p : string -> unit
(** Create [dir] and any missing parents, [mkdir -p] style. Racing
    creators are tolerated (EEXIST is not an error). *)

(** {1 Durable appends}

    The write-ahead-journal discipline: an {!appender} holds an open
    channel in append mode, and every {!append} flushes and (by
    default) fsyncs before returning, so an acknowledged append has
    reached the disk. A crash mid-append leaves a torn {e tail}, never
    a torn middle; framed formats (CRC per record) recover by dropping
    the tail. Use {!write_atomic} for whole-file artifacts and an
    appender only for grow-only logs. *)

type appender

val open_append : ?fsync:bool -> string -> appender
(** Open (creating if absent) [path] for durable appends. [fsync]
    defaults to [true]; pass [false] only where durability is being
    traded away knowingly (benchmark baselines). *)

val append : appender -> string -> unit
(** Append the bytes, flush, and fsync (unless disabled). Raises on
    I/O errors; on return the bytes are durable. *)

val append_path : appender -> string

val close_append : appender -> unit
(** Close the channel; never raises. *)
