(** Union-find (disjoint sets) with path compression and union by rank.

    This is the substrate beneath e-class merging during equality
    saturation (Tarjan 1975, as cited by the paper in §2). Elements are
    dense integer ids allocated through {!fresh}. *)

type t

val create : unit -> t
(** An empty forest. *)

val with_size : int -> t
(** [with_size n] pre-allocates singletons [0 .. n-1]. *)

val fresh : t -> int
(** [fresh uf] allocates a new singleton and returns its id. *)

val size : t -> int
(** Number of allocated elements. *)

val find : t -> int -> int
(** [find uf x] is the canonical representative of [x]'s set, compressing
    paths as a side effect. *)

val union : t -> int -> int -> int
(** [union uf a b] merges the two sets and returns the surviving
    representative. *)

val same : t -> int -> int -> bool

val count_sets : t -> int
(** Number of distinct sets currently represented. *)
