type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg pos))

type state = { text : string; mutable pos : int }

let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | Some _ | None -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st.pos (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail st.pos (Printf.sprintf "expected %c, found end of input" c)

let literal st word value =
  let len = String.length word in
  if st.pos + len <= String.length st.text && String.sub st.text st.pos len = word then begin
    st.pos <- st.pos + len;
    value
  end
  else fail st.pos (Printf.sprintf "expected %s" word)

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st.pos "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.text then fail st.pos "truncated \\u escape";
                let hex = String.sub st.text st.pos 4 in
                st.pos <- st.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with Failure _ -> fail st.pos "bad \\u escape"
                in
                (* ASCII and Latin-1 only; anything above passes through
                   as UTF-8 of the code point (BMP, no surrogates) *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail st.pos (Printf.sprintf "bad escape \\%c" c));
            loop ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec loop () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  let body = String.sub st.text start (st.pos - start) in
  match float_of_string_opt body with
  | Some f -> Number f
  | None -> fail start (Printf.sprintf "bad number %S" body)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Object []
      end
      else begin
        let fields = Vec.create () in
        let rec members () =
          skip_ws st;
          expect st '"';
          let key = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          Vec.push fields (key, v);
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | _ -> fail st.pos "expected , or } in object"
        in
        members ();
        Object (Vec.to_list fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Array []
      end
      else begin
        let items = Vec.create () in
        let rec elements () =
          let v = parse_value st in
          Vec.push items v;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements ()
          | Some ']' -> advance st
          | _ -> fail st.pos "expected , or ] in array"
        in
        elements ();
        Array (Vec.to_list items)
      end
  | Some '"' ->
      advance st;
      String (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected character %c" c)

let parse text =
  let st = { text; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length text then fail st.pos "trailing input";
  v

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let format_number f =
  (* JSON has no nan/inf literals; "%.17g" would emit them verbatim and
     corrupt the document, so non-finite numbers degrade to null. *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let rec emit indent v =
    let pad = if pretty then String.make indent ' ' else "" in
    let nl = if pretty then "\n" else "" in
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Number f -> Buffer.add_string buf (format_number f)
    | String s -> Buffer.add_string buf (escape_string s)
    | Array [] -> Buffer.add_string buf "[]"
    | Array items ->
        Buffer.add_string buf ("[" ^ nl);
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ("," ^ nl);
            if pretty then Buffer.add_string buf (pad ^ "  ");
            emit (indent + 2) item)
          items;
        Buffer.add_string buf (nl ^ (if pretty then pad else "") ^ "]")
    | Object [] -> Buffer.add_string buf "{}"
    | Object fields ->
        Buffer.add_string buf ("{" ^ nl);
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_string buf ("," ^ nl);
            if pretty then Buffer.add_string buf (pad ^ "  ");
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf (if pretty then ": " else ":");
            emit (indent + 2) item)
          fields;
        Buffer.add_string buf (nl ^ (if pretty then pad else "") ^ "}")
  in
  emit 0 v;
  Buffer.contents buf

let member key = function
  | Object fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> raise (Parse_error (Printf.sprintf "member %S: not an object" key))

let get_string = function
  | String s -> s
  | _ -> raise (Parse_error "expected a string")

let get_number = function
  | Number f -> f
  | _ -> raise (Parse_error "expected a number")

let get_list = function
  | Array items -> items
  | _ -> raise (Parse_error "expected an array")

let get_object = function
  | Object fields -> fields
  | _ -> raise (Parse_error "expected an object")
