(** Deterministic pseudo-random number generation (xoshiro256starstar).

    Every stochastic component of the reproduction — SmoothE seed
    batching (§4.2), the genetic algorithm, random-walk solution
    sampling, dataset generators — draws from an explicit [Rng.t] so
    experiments are reproducible bit-for-bit from an integer seed.

    The generator is xoshiro256starstar (Blackman & Vigna), seeded through
    splitmix64 as its authors recommend. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** [split rng] derives an independent generator; also advances [rng]
    by one draw. Used to hand child components — and pool tasks —
    their own streams.

    The child seed digests the parent's {e full} 256-bit state through
    a splitmix64 sponge, not just one 64-bit output: xoshiro256**'s
    output function reads only one state word, so an output-seeded
    child would collide whenever two parents shared that word. The
    child never has the all-zero state. *)

val copy : t -> t

val state : t -> int64 array
(** The four xoshiro256** state words, as a fresh array. Together with
    {!of_state} this makes the generator checkpointable: a stream
    restored from a saved state continues exactly where the original
    would have. *)

val of_state : int64 array -> t
(** Rebuild a generator from {!state} output.
    @raise Invalid_argument unless given exactly four words that are not
    all zero (the all-zero state is a fixed point of the generator). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [[0, bound)]. *)

val uniform : t -> float
(** Uniform in [[0, 1)]. *)

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val choose_weighted : t -> float array -> int
(** [choose_weighted rng w] draws index [i] with probability
    [w.(i) / sum w]. Weights must be non-negative with a positive sum;
    falls back to uniform if the sum is zero. *)
