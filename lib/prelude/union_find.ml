type t = { parent : int Vec.t; rank : int Vec.t }

let create () = { parent = Vec.create (); rank = Vec.create () }

let fresh uf =
  let id = Vec.length uf.parent in
  Vec.push uf.parent id;
  Vec.push uf.rank 0;
  id

let with_size n =
  let uf = create () in
  for _ = 1 to n do
    ignore (fresh uf)
  done;
  uf

let size uf = Vec.length uf.parent

let rec find uf x =
  let p = Vec.get uf.parent x in
  if p = x then x
  else begin
    let root = find uf p in
    Vec.set uf.parent x root;
    root
  end

let union uf a b =
  let ra = find uf a and rb = find uf b in
  if ra = rb then ra
  else begin
    let ka = Vec.get uf.rank ra and kb = Vec.get uf.rank rb in
    let win, lose = if ka >= kb then ra, rb else rb, ra in
    Vec.set uf.parent lose win;
    if ka = kb then Vec.set uf.rank win (ka + 1);
    win
  end

let same uf a b = find uf a = find uf b

let count_sets uf =
  let n = size uf in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if Vec.get uf.parent i = i then incr count
  done;
  !count
