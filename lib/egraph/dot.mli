(** Graphviz DOT rendering of e-graphs.

    Mirrors egg's visualisation convention: each e-class is a dashed
    cluster containing its e-nodes; edges run from e-nodes to child
    e-class clusters (exactly the layout of the paper's Figure 1). An
    extraction solution can be overlaid, filling the selected e-nodes —
    the paper's Figure 2 colouring. *)

val to_dot : ?solution:Egraph.Solution.s -> Egraph.t -> string

val write_file : ?solution:Egraph.Solution.s -> string -> Egraph.t -> unit
