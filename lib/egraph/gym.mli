(** Interchange with the extraction-gym JSON format.

    Three of the paper's datasets ship in the egraphs-good
    extraction-gym repository using this serialization:

    {v
    { "nodes": { "<node-id>": { "op": "...", "cost": 1.5,
                                "eclass": "<class-id>",
                                "children": ["<node-id>", ...] }, ... },
      "root_eclasses": ["<class-id>", ...] }
    v}

    Note the gym quirk: children name *e-nodes*, and the edge target is
    the named node's owning e-class. Costs default to 1. Multiple root
    e-classes are bundled under a synthetic zero-cost root e-node, so
    extraction still selects exactly one e-node per needed class. *)

val of_json : Json.t -> Egraph.t
(** @raise Json.Parse_error on shape errors; @raise Failure on dangling
    node references or a missing root. *)

val of_json_string : string -> Egraph.t
val read_file : string -> Egraph.t

val to_json : Egraph.t -> Json.t
(** Gym-format export. Node ids are ["n<i>"], class ids ["c<j>"]; a
    synthetic "bundle-roots" node is not added (our e-graphs always have
    a single root class). *)

val to_json_string : ?pretty:bool -> Egraph.t -> string
val write_file : string -> Egraph.t -> unit
