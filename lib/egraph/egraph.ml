type t = {
  name : string;
  ops : string array;
  costs : float array;
  children : int array array;
  node_class : int array;
  class_nodes : int array array;
  root : int;
  class_seg : Segments.t;
  parent_edge_node : int array;
  parent_seg : Segments.t;
  class_children : int array array;
  sccs : int array array;
  scc_of_class : int array;
}

let num_nodes g = Array.length g.ops
let num_classes g = Array.length g.class_nodes
let num_edges g = Array.fold_left (fun acc ch -> acc + Array.length ch) 0 g.children
let node_cost g i = g.costs.(i)

let set_costs g costs =
  if Array.length costs <> num_nodes g then invalid_arg "Egraph.set_costs: length mismatch";
  { g with costs = Array.copy costs }

let is_cyclic g =
  Array.exists (fun scc -> Array.length scc > 1) g.sccs
  || Array.exists
       (fun (j : int) -> Array.exists (fun c -> c = j) g.class_children.(j))
       (Array.init (num_classes g) (fun j -> j))

let class_children_of_node g i = g.children.(i)

(* Deduplicate a small int array, preserving first-occurrence order. *)
let dedup_ints a =
  let seen = Hashtbl.create (Array.length a) in
  let out = Vec.create () in
  Array.iter
    (fun x ->
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        Vec.push out x
      end)
    a;
  Vec.to_array out

module Builder = struct
  type egraph = t

  type bnode = { b_op : string; b_cost : float; b_children : int array; b_class : int }

  type b = { bname : string; bnodes : bnode Vec.t; bclass_count : int ref }

  let create ?(name = "egraph") () = { bname = name; bnodes = Vec.create (); bclass_count = ref 0 }

  let add_class b =
    let id = !(b.bclass_count) in
    incr b.bclass_count;
    id

  let add_node b ~cls ~op ~cost ~children =
    if cls < 0 || cls >= !(b.bclass_count) then
      invalid_arg (Printf.sprintf "Builder.add_node: class %d not allocated" cls);
    let id = Vec.length b.bnodes in
    Vec.push b.bnodes
      { b_op = op; b_cost = cost; b_children = Array.of_list children; b_class = cls };
    id

  let num_classes b = !(b.bclass_count)
  let num_nodes b = Vec.length b.bnodes

  let freeze b ~root =
    let m0 = !(b.bclass_count) in
    if root < 0 || root >= m0 then invalid_arg "Builder.freeze: root class not allocated";
    let class_members = Array.make m0 [] in
    Vec.iteri
      (fun id n ->
        Array.iter
          (fun c ->
            if c < 0 || c >= m0 then
              invalid_arg
                (Printf.sprintf "Builder.freeze: node %d references missing class %d" id c))
          n.b_children;
        class_members.(n.b_class) <- id :: class_members.(n.b_class))
      b.bnodes;
    Array.iteri (fun c members -> class_members.(c) <- List.rev members) class_members;
    (* Reachability over the builder class graph. *)
    let succ =
      Array.map
        (fun members ->
          let acc = Vec.create () in
          List.iter
            (fun id -> Array.iter (Vec.push acc) (Vec.get b.bnodes id).b_children)
            members;
          dedup_ints (Vec.to_array acc))
        class_members
    in
    let reach = Graph_algo.reachable succ [ root ] in
    (* Renumber reachable classes; every reachable class must be liveable. *)
    let new_class = Array.make m0 (-1) in
    let kept_classes = Vec.create () in
    for c = 0 to m0 - 1 do
      if reach.(c) then begin
        if class_members.(c) = [] then
          invalid_arg (Printf.sprintf "Builder.freeze: reachable class %d is empty" c);
        new_class.(c) <- Vec.length kept_classes;
        Vec.push kept_classes c
      end
    done;
    let m = Vec.length kept_classes in
    (* Renumber nodes class-major. *)
    let ops = Vec.create () in
    let costs = Vec.create () in
    let children = Vec.create () in
    let node_class = Vec.create () in
    let class_nodes = Array.make m [||] in
    let class_lens = Array.make m 0 in
    Vec.iteri
      (fun nc old_c ->
        let members = class_members.(old_c) in
        let ids = Vec.create () in
        List.iter
          (fun id ->
            let n = Vec.get b.bnodes id in
            Vec.push ids (Vec.length ops);
            Vec.push ops n.b_op;
            Vec.push costs n.b_cost;
            Vec.push children (Array.map (fun c -> new_class.(c)) n.b_children);
            Vec.push node_class nc)
          members;
        class_nodes.(nc) <- Vec.to_array ids;
        class_lens.(nc) <- Array.length class_nodes.(nc))
      kept_classes;
    let ops = Vec.to_array ops in
    let costs = Vec.to_array costs in
    let children = Vec.to_array children in
    let node_class = Vec.to_array node_class in
    let class_seg = Segments.of_lens class_lens in
    (* Parent edge lists (deduplicated per node) grouped per child class. *)
    let parents = Array.make m [] in
    Array.iteri
      (fun i ch -> Array.iter (fun c -> parents.(c) <- i :: parents.(c)) (dedup_ints ch))
      children;
    let parent_lens = Array.map List.length parents in
    let parent_seg = Segments.of_lens parent_lens in
    let parent_edge_node = Array.make (Array.fold_left ( + ) 0 parent_lens) 0 in
    let cursor = ref 0 in
    Array.iter
      (fun ps ->
        List.iter
          (fun i ->
            parent_edge_node.(!cursor) <- i;
            incr cursor)
          (List.rev ps))
      parents;
    let class_children =
      Array.map
        (fun ids ->
          let acc = Vec.create () in
          Array.iter (fun id -> Array.iter (Vec.push acc) children.(id)) ids;
          dedup_ints (Vec.to_array acc))
        class_nodes
    in
    let sccs = Graph_algo.tarjan_scc class_children in
    let scc_of_class, _ = Graph_algo.scc_ids class_children in
    {
      name = b.bname;
      ops;
      costs;
      children;
      node_class;
      class_nodes;
      root = new_class.(root);
      class_seg;
      parent_edge_node;
      parent_seg;
      class_children;
      sccs;
      scc_of_class;
    }
end

(* Rebuild the e-graph keeping only the masked nodes. Removal cascades:
   a surviving node whose child class loses every member is removed too,
   until stable. The node mapping replicates freeze's renumbering (kept
   classes ascending, surviving nodes of each class in original id
   order, classes unreachable from the root stripped), which is what
   lets callers lift a solution on the restricted graph back to the
   original ids. *)
let restrict g ~keep =
  let n = num_nodes g and m = num_classes g in
  if Array.length keep <> n then invalid_arg "Egraph.restrict: keep mask length mismatch";
  let removed = Array.init n (fun i -> not keep.(i)) in
  let class_alive c = Array.exists (fun i -> not removed.(i)) g.class_nodes.(c) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if (not removed.(i)) && Array.exists (fun j -> not (class_alive j)) g.children.(i)
      then begin
        removed.(i) <- true;
        changed := true
      end
    done
  done;
  if not (class_alive g.root) then None
  else begin
    let b = Builder.create ~name:g.name () in
    let ids = Array.init m (fun _ -> Builder.add_class b) in
    for i = 0 to n - 1 do
      if not removed.(i) then
        ignore
          (Builder.add_node b
             ~cls:ids.(g.node_class.(i))
             ~op:g.ops.(i) ~cost:g.costs.(i)
             ~children:(Array.to_list (Array.map (fun c -> ids.(c)) g.children.(i))))
    done;
    let restricted = Builder.freeze b ~root:g.root in
    let succ =
      Array.init m (fun c ->
          if class_alive c then begin
            let acc = Vec.create () in
            Array.iter
              (fun i -> if not removed.(i) then Array.iter (Vec.push acc) g.children.(i))
              g.class_nodes.(c);
            Vec.to_array acc
          end
          else [||])
    in
    let reach = Graph_algo.reachable succ [ g.root ] in
    let mapping = Vec.create () in
    for c = 0 to m - 1 do
      if reach.(c) && class_alive c then
        Array.iter (fun i -> if not removed.(i) then Vec.push mapping i) g.class_nodes.(c)
    done;
    let old_node_of_new = Vec.to_array mapping in
    assert (Array.length old_node_of_new = num_nodes restricted);
    Some (restricted, old_node_of_new)
  end

module Solution = struct
  type egraph = t

  type s = { choice : int option array }

  let of_choices g pairs =
    let choice = Array.make (num_classes g) None in
    List.iter
      (fun (c, n) ->
        if g.node_class.(n) <> c then
          invalid_arg (Printf.sprintf "Solution.of_choices: node %d not in class %d" n c);
        choice.(c) <- Some n)
      pairs;
    { choice }

  let of_node_choice g pick =
    if Array.length pick <> num_classes g then
      invalid_arg "Solution.of_node_choice: need one candidate per class";
    let choice = Array.make (num_classes g) None in
    let stack = Vec.create () in
    Vec.push stack g.root;
    while not (Vec.is_empty stack) do
      let c = Vec.pop stack in
      if choice.(c) = None then begin
        let n = pick.(c) in
        if g.node_class.(n) <> c then
          invalid_arg (Printf.sprintf "Solution.of_node_choice: node %d not in class %d" n c);
        choice.(c) <- Some n;
        Array.iter (fun child -> Vec.push stack child) g.children.(n)
      end
    done;
    { choice }

  type validity = Valid | No_root | Incomplete of int | Cyclic

  (* The classes actually used: reachable from the root through chosen
     nodes. Returns None if traversal hits an unselected class. *)
  let reachable_selection g s =
    match s.choice.(g.root) with
    | None -> Error No_root
    | Some _ ->
        let m = num_classes g in
        let used = Array.make m false in
        let stack = Vec.create () in
        let missing = ref None in
        used.(g.root) <- true;
        Vec.push stack g.root;
        while !missing = None && not (Vec.is_empty stack) do
          let c = Vec.pop stack in
          match s.choice.(c) with
          | None -> missing := Some c
          | Some n ->
              Array.iter
                (fun child ->
                  if not used.(child) then begin
                    used.(child) <- true;
                    Vec.push stack child
                  end)
                g.children.(n)
        done;
        (match !missing with
        | Some c -> Error (Incomplete c)
        | None -> Ok used)

  let selection_cyclic g s used =
    (* Build the selected class graph and look for a cycle. *)
    let m = num_classes g in
    let succ =
      Array.init m (fun c ->
          if used.(c) then
            match s.choice.(c) with
            | Some n -> dedup_ints g.children.(n)
            | None -> [||]
          else [||])
    in
    Graph_algo.has_cycle_from succ [ g.root ]

  let validate g s =
    match reachable_selection g s with
    | Error e -> e
    | Ok used -> if selection_cyclic g s used then Cyclic else Valid

  let is_valid g s = validate g s = Valid

  let selected_nodes g s =
    match reachable_selection g s with
    | Error _ -> []
    | Ok used ->
        let acc = ref [] in
        for c = num_classes g - 1 downto 0 do
          if used.(c) then
            match s.choice.(c) with
            | Some n -> acc := n :: !acc
            | None -> ()
        done;
        !acc

  let dag_cost_with g ~costs s =
    if validate g s <> Valid then infinity
    else List.fold_left (fun acc n -> acc +. costs.(n)) 0.0 (selected_nodes g s)

  let dag_cost g s = dag_cost_with g ~costs:g.costs s

  let tree_cost g s =
    if validate g s <> Valid then infinity
    else begin
      let m = num_classes g in
      let memo = Array.make m nan in
      let on_path = Array.make m false in
      let rec cost_of_class c =
        if on_path.(c) then infinity
        else if not (Float.is_nan memo.(c)) then memo.(c)
        else begin
          on_path.(c) <- true;
          let result =
            match s.choice.(c) with
            | None -> infinity
            | Some n ->
                Array.fold_left (fun acc child -> acc +. cost_of_class child) g.costs.(n)
                  g.children.(n)
          in
          on_path.(c) <- false;
          memo.(c) <- result;
          result
        end
      in
      cost_of_class g.root
    end

  let to_dense g s =
    let dense = Array.make (num_nodes g) 0.0 in
    List.iter (fun n -> dense.(n) <- 1.0) (selected_nodes g s);
    dense

  let size g s = List.length (selected_nodes g s)
end

module Stats = struct
  type egraph = t

  type r = {
    nodes : int;
    classes : int;
    edges : int;
    avg_degree : float;
    max_class_size : int;
    density : float;
    cyclic : bool;
    scc_count : int;
    largest_scc : int;
  }

  let compute g =
    let n = num_nodes g and m = num_classes g in
    let e = num_edges g in
    {
      nodes = n;
      classes = m;
      edges = e;
      avg_degree = (if n = 0 then 0.0 else float_of_int e /. float_of_int n);
      max_class_size = Array.fold_left (fun acc c -> max acc (Array.length c)) 0 g.class_nodes;
      density = (if n * m = 0 then 0.0 else float_of_int e /. float_of_int (n * m));
      cyclic = is_cyclic g;
      scc_count = Array.length g.sccs;
      largest_scc = Array.fold_left (fun acc c -> max acc (Array.length c)) 0 g.sccs;
    }

  let pp fmt r =
    Format.fprintf fmt
      "nodes=%d classes=%d edges=%d d(v)=%.2f max|m|=%d density=%.2e cyclic=%b sccs=%d max_scc=%d"
      r.nodes r.classes r.edges r.avg_degree r.max_class_size r.density r.cyclic r.scc_count
      r.largest_scc
end

module Serial = struct
  type egraph = t

  let to_string g =
    let buf = Buffer.create (num_nodes g * 24) in
    Buffer.add_string buf (Printf.sprintf "egraph %s\n" g.name);
    Buffer.add_string buf (Printf.sprintf "classes %d\n" (num_classes g));
    Buffer.add_string buf (Printf.sprintf "root %d\n" g.root);
    for i = 0 to num_nodes g - 1 do
      Buffer.add_string buf
        (Printf.sprintf "node %d %.17g %s" g.node_class.(i) g.costs.(i) g.ops.(i));
      Array.iter (fun c -> Buffer.add_string buf (Printf.sprintf " %d" c)) g.children.(i);
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf

  let of_string text =
    let lines = String.split_on_char '\n' text in
    (* every parse error names its line; no exception re-wrapping *)
    let fail lineno fmt =
      Printf.ksprintf
        (fun m -> failwith (Printf.sprintf "Egraph.Serial.of_string: line %d: %s" lineno m))
        fmt
    in
    let name = ref "egraph" in
    let root = ref None in
    let builder = ref None in
    let get_builder () =
      match !builder with
      | Some b -> b
      | None ->
          let b = Builder.create ~name:!name () in
          builder := Some b;
          b
    in
    (* classes are allocated on demand, so the "classes" header line is
       advisory and files may reference classes in any order *)
    let ensure_classes b upto =
      while Builder.num_classes b <= upto do
        ignore (Builder.add_class b)
      done
    in
    (* class -> the first line that referenced it as a child, so a class
       that never receives an e-node is reported where it was used *)
    let child_refs : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let node_count : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let class_id lineno what s =
      match int_of_string_opt s with
      | Some c when c >= 0 -> c
      | Some _ -> fail lineno "negative %s %S" what s
      | None -> fail lineno "bad %s %S (expected an integer)" what s
    in
    let parse_line lineno line =
      match String.split_on_char ' ' (String.trim line) with
      | [ "" ] | [] -> ()
      | "egraph" :: rest -> name := String.concat " " rest
      | [ "classes"; k ] ->
          ensure_classes (get_builder ()) (class_id lineno "class count" k - 1)
      | [ "root"; r ] -> (
          let r = class_id lineno "root class" r in
          match !root with
          | Some (first_root, first_line) ->
              fail lineno "duplicate root %d (root %d already declared on line %d)" r
                first_root first_line
          | None ->
              root := Some (r, lineno);
              ensure_classes (get_builder ()) r)
      | "node" :: cls :: cost :: op :: kids ->
          let b = get_builder () in
          let cls = class_id lineno "e-class id" cls in
          let cost =
            match float_of_string_opt cost with
            | Some c -> c
            | None -> fail lineno "bad cost %S (expected a float)" cost
          in
          let kids = List.map (class_id lineno "child class") kids in
          List.iter (ensure_classes b) (cls :: kids);
          List.iter
            (fun k -> if not (Hashtbl.mem child_refs k) then Hashtbl.add child_refs k lineno)
            kids;
          Hashtbl.replace node_count cls
            (1 + Option.value ~default:0 (Hashtbl.find_opt node_count cls));
          ignore (Builder.add_node b ~cls ~op ~cost ~children:kids)
      | keyword :: _ when List.mem keyword [ "classes"; "root" ] ->
          fail lineno "malformed %s line %S" keyword (String.trim line)
      | _ ->
          fail lineno "unrecognised line %S (expected egraph/classes/root/node)"
            (String.trim line)
    in
    List.iteri (fun i line -> parse_line (i + 1) line) lines;
    let nodes_in cls = Option.value ~default:0 (Hashtbl.find_opt node_count cls) in
    (* dangling children: used in some node's child list, never given an
       e-node — freeze would reject them too, but without the line *)
    let dangling =
      Hashtbl.fold (fun cls lineno acc -> if nodes_in cls = 0 then (cls, lineno) :: acc else acc)
        child_refs []
    in
    (match List.sort compare dangling with
    | (cls, lineno) :: _ ->
        fail lineno "class %d is referenced as a child but has no e-nodes" cls
    | [] -> ());
    match !root with
    | None -> failwith "Egraph.Serial.of_string: missing root declaration"
    | Some (r, lineno) ->
        if nodes_in r = 0 then fail lineno "root class %d has no e-nodes" r;
        Builder.freeze (get_builder ()) ~root:r

  let write_file path g =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

  let read_file path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        of_string (really_input_string ic len))
end
