(** E-graphs: the compact representation of equivalent program spaces.

    Terminology follows the paper (§2): an e-graph partitions {e-nodes}
    (operators/values) into {e-classes} of functional equivalents. Edges
    point from an e-node to the e-classes of its operands. One e-class is
    the root. Extraction selects one e-node per needed e-class such that
    the completeness constraints (a)/(b) and the acyclicity constraint
    (c) hold.

    Construction goes through a mutable {!Builder}; {!freeze} compiles it
    into an immutable, analysis-rich form in which e-nodes are renumbered
    so that each e-class's members are contiguous (class-major order) —
    the layout the SmoothE kernels exploit (§4.1). *)

type t = private {
  name : string;
  ops : string array;  (** per e-node operator label *)
  costs : float array;  (** per e-node base cost (the linear model's u) *)
  children : int array array;  (** per e-node operand e-class ids (ch_i) *)
  node_class : int array;  (** ec(i): owning e-class of each e-node *)
  class_nodes : int array array;  (** members of each e-class *)
  root : int;  (** root e-class id *)
  class_seg : Segments.t;  (** e-nodes segmented by owning class *)
  parent_edge_node : int array;
      (** flattened pa_j: parent e-node ids, grouped per child e-class
          (deduplicated: a node with a repeated operand class appears once) *)
  parent_seg : Segments.t;  (** segments of [parent_edge_node] per e-class *)
  class_children : int array array;  (** per e-class: child classes of its nodes, deduped *)
  sccs : int array array;  (** Tarjan SCCs over the class graph, reverse topological *)
  scc_of_class : int array;
}

val num_nodes : t -> int
val num_classes : t -> int
val num_edges : t -> int
(** Total operand references (with multiplicity). *)

val node_cost : t -> int -> float
val set_costs : t -> float array -> t
(** Functional update of the per-node cost vector (same e-graph shape).
    @raise Invalid_argument on length mismatch. *)

val is_cyclic : t -> bool
(** True when some SCC of the class graph contains a cycle (size > 1 or a
    self-dependent class). *)

val class_children_of_node : t -> int -> int array

module Builder : sig
  type egraph = t
  type b

  val create : ?name:string -> unit -> b

  val add_class : b -> int
  (** Allocate a fresh, empty e-class and return its id. *)

  val add_node : b -> cls:int -> op:string -> cost:float -> children:int list -> int
  (** Add an e-node to class [cls]; children are e-class ids (allowed to
      be forward references to classes added later). Returns the builder
      node id. *)

  val num_classes : b -> int
  val num_nodes : b -> int

  val freeze : b -> root:int -> egraph
  (** Compile. Validates that every class is non-empty when reachable
      from the root, that children refer to existing classes, and strips
      classes unreachable from the root (and their nodes).
      @raise Invalid_argument on dangling references or an empty root. *)
end

val restrict : t -> keep:bool array -> (t * int array) option
(** [restrict g ~keep] rebuilds [g] with only the e-nodes whose [keep]
    bit is set, cascading the removal of any node whose child class
    loses all members, then stripping classes no longer reachable from
    the root. Returns the restricted e-graph and [old_node_of_new]
    (original id of each surviving node, in the rebuilt numbering), or
    [None] when the root class loses every member. Both the acyclicity
    pre-pruner and the hybrid extractor's heuristic shrink go through
    this one rebuild so their solution lifting agrees.
    @raise Invalid_argument when [keep] is not [num_nodes g] long. *)

(** {1 Extraction solutions} *)

module Solution : sig
  type egraph = t

  type s = {
    choice : int option array;  (** per e-class: selected e-node, if the class is selected *)
  }

  val of_choices : egraph -> (int * int) list -> s
  (** [(class, node)] pairs; unlisted classes are unselected. *)

  val of_node_choice : egraph -> int array -> s
  (** [of_node_choice g pick] where [pick.(j)] is a node id (a candidate
      choice for every class): materialises the selection reachable from
      the root — the decode step shared by the samplers and the genetic
      baseline. *)

  type validity = Valid | No_root | Incomplete of int | Cyclic

  val validate : egraph -> s -> validity
  (** Checks completeness constraints (a) and (b) and acyclicity (c)
      restricted to classes reachable from the root through the
      selection. [Incomplete c] names a selected class whose chosen
      node has an unselected child class. *)

  val is_valid : egraph -> s -> bool

  val dag_cost : egraph -> s -> float
  (** Σ cost over selected e-nodes reachable from the root, each counted
      once — the DAG cost whose optimisation is NP-hard (§2). Infinite
      when the solution is invalid. *)

  val dag_cost_with : egraph -> costs:float array -> s -> float
  (** Same, under an alternative cost vector. *)

  val tree_cost : egraph -> s -> float
  (** Cost with shared subterms double-counted (what the egg greedy
      heuristic optimises). Infinite on invalid/cyclic selections. *)

  val selected_nodes : egraph -> s -> int list
  (** Selected e-nodes reachable from the root. *)

  val to_dense : egraph -> s -> float array
  (** The binary vector s ∈ {0,1}^N of §2 (selected & reachable = 1). *)

  val size : egraph -> s -> int
end

(** {1 Statistics (Table 1)} *)

module Stats : sig
  type egraph = t

  type r = {
    nodes : int;
    classes : int;
    edges : int;
    avg_degree : float;  (** d(v): mean operand count per e-node *)
    max_class_size : int;
    density : float;  (** edges / (N·M), the paper's edge density *)
    cyclic : bool;
    scc_count : int;
    largest_scc : int;
  }

  val compute : egraph -> r
  val pp : Format.formatter -> r -> unit
end

(** {1 Serialization}

    A line-oriented text format, stable for golden tests:
    {v
    egraph <name>
    root <class>
    node <class> <cost> <op> [child-class ...]
    v} *)

module Serial : sig
  type egraph = t

  val to_string : egraph -> string
  val of_string : string -> egraph
  (** @raise Failure on malformed input. *)

  val write_file : string -> egraph -> unit
  val read_file : string -> egraph
end
