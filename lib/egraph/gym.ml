let of_json json =
  let nodes = Json.get_object (Json.member "nodes" json) in
  let roots = Json.get_list (Json.member "root_eclasses" json) in
  if nodes = [] then failwith "Gym.of_json: empty e-graph";
  (* first pass: class-id strings -> builder classes *)
  let b = Egraph.Builder.create ~name:"gym" () in
  let class_of = Hashtbl.create 64 in
  let builder_class cls_name =
    match Hashtbl.find_opt class_of cls_name with
    | Some c -> c
    | None ->
        let c = Egraph.Builder.add_class b in
        Hashtbl.replace class_of cls_name c;
        c
  in
  (* node-id -> owning class name, for resolving children *)
  let owner = Hashtbl.create (List.length nodes) in
  List.iter
    (fun (node_id, spec) ->
      Hashtbl.replace owner node_id (Json.get_string (Json.member "eclass" spec)))
    nodes;
  List.iter
    (fun (node_id, spec) ->
      let cls = builder_class (Hashtbl.find owner node_id) in
      let op =
        match Json.member "op" spec with
        | Json.String s -> s
        | Json.Null -> node_id
        | other -> Json.to_string other
      in
      let cost =
        match Json.member "cost" spec with Json.Null -> 1.0 | v -> Json.get_number v
      in
      let children =
        match Json.member "children" spec with
        | Json.Null -> []
        | v ->
            List.map
              (fun child ->
                let child_id = Json.get_string child in
                match Hashtbl.find_opt owner child_id with
                | Some cls_name -> builder_class cls_name
                | None ->
                    failwith
                      (Printf.sprintf "Gym.of_json: node %S references missing node %S" node_id
                         child_id))
              (Json.get_list v)
      in
      ignore (Egraph.Builder.add_node b ~cls ~op ~cost ~children))
    nodes;
  let root_classes =
    List.map (fun r -> builder_class (Json.get_string r)) roots
  in
  match root_classes with
  | [] -> failwith "Gym.of_json: no root e-classes"
  | [ root ] -> Egraph.Builder.freeze b ~root
  | several ->
      (* bundle multiple roots under one synthetic class *)
      let root = Egraph.Builder.add_class b in
      ignore
        (Egraph.Builder.add_node b ~cls:root ~op:"bundle-roots" ~cost:0.0 ~children:several);
      Egraph.Builder.freeze b ~root

let of_json_string s = of_json (Json.parse s)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_json_string (really_input_string ic (in_channel_length ic)))

let to_json g =
  let node_entry i =
    ( Printf.sprintf "n%d" i,
      Json.Object
        [
          ("op", Json.String g.Egraph.ops.(i));
          ("cost", Json.Number g.Egraph.costs.(i));
          ("eclass", Json.String (Printf.sprintf "c%d" g.Egraph.node_class.(i)));
          ( "children",
            Json.Array
              (Array.to_list
                 (Array.map
                    (fun child_class ->
                      (* gym children are node ids: use the first member
                         of the child class as the representative *)
                      Json.String
                        (Printf.sprintf "n%d" g.Egraph.class_nodes.(child_class).(0)))
                    g.Egraph.children.(i))) );
        ] )
  in
  Json.Object
    [
      ("nodes", Json.Object (List.init (Egraph.num_nodes g) node_entry));
      ("root_eclasses", Json.Array [ Json.String (Printf.sprintf "c%d" g.Egraph.root) ]);
    ]

let to_json_string ?pretty g = Json.to_string ?pretty (to_json g)

let write_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json_string ~pretty:true g))
