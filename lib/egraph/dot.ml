let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot ?solution g =
  let buf = Buffer.create 1024 in
  let selected =
    match solution with
    | None -> [||]
    | Some s ->
        let marks = Array.make (Egraph.num_nodes g) false in
        List.iter (fun n -> marks.(n) <- true) (Egraph.Solution.selected_nodes g s);
        marks
  in
  Buffer.add_string buf "digraph egraph {\n";
  Buffer.add_string buf "  compound=true;\n  node [shape=box, fontsize=10];\n";
  for c = 0 to Egraph.num_classes g - 1 do
    Buffer.add_string buf (Printf.sprintf "  subgraph cluster_%d {\n" c);
    Buffer.add_string buf "    style=dashed;\n";
    if c = g.Egraph.root then Buffer.add_string buf "    label=\"root\";\n";
    Array.iter
      (fun i ->
        let fill =
          if Array.length selected > 0 && selected.(i) then
            ", style=filled, fillcolor=lightblue"
          else ""
        in
        Buffer.add_string buf
          (Printf.sprintf "    n%d [label=\"%s (%.3g)\"%s];\n" i (escape g.Egraph.ops.(i))
             g.Egraph.costs.(i) fill))
      g.Egraph.class_nodes.(c);
    Buffer.add_string buf "  }\n"
  done;
  (* edges: e-node -> representative node of the child class, clipped to
     the class cluster *)
  for i = 0 to Egraph.num_nodes g - 1 do
    Array.iter
      (fun child ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [lhead=cluster_%d];\n" i
             g.Egraph.class_nodes.(child).(0)
             child))
      g.Egraph.children.(i)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?solution path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?solution g))
