let default_grain = 4096

let sequential_cutoff = ref 16384

let bounds ~grain n k =
  let lo = k * grain in
  (lo, Stdlib.min n (lo + grain))

let chunks ?(grain = default_grain) ?(cost = 1) n body =
  if grain < 1 then invalid_arg "Parallel.chunks: grain must be >= 1";
  if n > 0 then
    if Pool.jobs () <= 1 || n * cost < !sequential_cutoff || n <= grain then body 0 n
    else begin
      let nchunks = (n + grain - 1) / grain in
      let tasks =
        Array.init nchunks (fun k ->
            let lo, hi = bounds ~grain n k in
            fun () -> body lo hi)
      in
      ignore (Pool.run_array (Pool.get ()) tasks : unit array)
    end

let fold_chunks ?(grain = default_grain) ?(cost = 1) n ~chunk ~combine ~init =
  if grain < 1 then invalid_arg "Parallel.fold_chunks: grain must be >= 1";
  if n <= 0 then init
  else begin
    let nchunks = (n + grain - 1) / grain in
    let partials =
      if Pool.jobs () <= 1 || n * cost < !sequential_cutoff || nchunks = 1 then
        (* same chunk boundaries as the parallel path, so the float
           association — and thus the result bits — cannot depend on
           the pool size *)
        Array.init nchunks (fun k ->
            let lo, hi = bounds ~grain n k in
            chunk lo hi)
      else
        Pool.run_array (Pool.get ())
          (Array.init nchunks (fun k ->
               let lo, hi = bounds ~grain n k in
               fun () -> chunk lo hi))
    in
    Array.fold_left combine init partials
  end
