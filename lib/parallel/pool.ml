type task = unit -> unit

type t = {
  total : int;  (* execution slots: submitting domain + workers *)
  queue : task Queue.t;  (* guarded by [lock] *)
  lock : Mutex.t;
  wake : Condition.t;  (* new work, batch completion, or shutdown *)
  mutable stop : bool;  (* guarded by [lock] *)
  mutable workers : unit Domain.t array;
}

(* Workers block here between tasks. Returns [None] only on shutdown. *)
let take_blocking pool =
  Mutex.lock pool.lock;
  let rec go () =
    if pool.stop then begin
      Mutex.unlock pool.lock;
      None
    end
    else
      match Queue.take_opt pool.queue with
      | Some t ->
          Mutex.unlock pool.lock;
          Some t
      | None ->
          Condition.wait pool.wake pool.lock;
          go ()
  in
  go ()

let create ?jobs () =
  let total =
    match jobs with
    | None -> Stdlib.max 1 (Domain.recommended_domain_count ())
    | Some j ->
        if j < 1 then invalid_arg "Pool.create: jobs must be >= 1";
        j
  in
  let pool =
    {
      total;
      queue = Queue.create ();
      lock = Mutex.create ();
      wake = Condition.create ();
      stop = false;
      workers = [||];
    }
  in
  if total > 1 then begin
    let worker () =
      let rec loop () =
        match take_blocking pool with
        | None -> ()
        | Some t ->
            t ();
            loop ()
      in
      loop ()
    in
    pool.workers <- Array.init (total - 1) (fun _ -> Domain.spawn worker)
  end;
  pool

let size pool = pool.total

let shutdown pool =
  let workers = pool.workers in
  pool.workers <- [||];
  Mutex.lock pool.lock;
  pool.stop <- true;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.lock;
  Array.iter Domain.join workers

type 'a slot = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

let run_array pool fs =
  let n = Array.length fs in
  if n = 0 then [||]
  else if pool.total <= 1 || pool.stop || n = 1 then Array.map (fun f -> f ()) fs
  else begin
    let results = Array.make n Pending in
    let traces = Array.make n [] in
    let remaining = Atomic.make n in
    let run i () =
      (* capture this task's trace events in a domain-local buffer so
         concurrent tasks don't interleave in the global store; the
         join below absorbs the buffers in task order *)
      (match Trace.capturing fs.(i) with
      | v, evs ->
          traces.(i) <- evs;
          results.(i) <- Done v
      | exception e -> results.(i) <- Failed (e, Printexc.get_raw_backtrace ()));
      (* the non-atomic writes above happen-before any read that
         observed this decrement (OCaml atomics are SC) *)
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock pool.lock;
        Condition.broadcast pool.wake;
        Mutex.unlock pool.lock
      end
    in
    Mutex.lock pool.lock;
    for i = 0 to n - 1 do
      Queue.add (run i) pool.queue
    done;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.lock;
    (* The submitting domain works the queue too. It may execute tasks
       from other in-flight batches (nested submissions); that is
       work-sharing, not a bug — it guarantees progress when every
       worker is blocked joining a nested batch of its own. *)
    let rec help () =
      if Atomic.get remaining > 0 then begin
        Mutex.lock pool.lock;
        let t =
          match Queue.take_opt pool.queue with
          | Some t ->
              Mutex.unlock pool.lock;
              Some t
          | None ->
              (* re-check under the lock: the finisher broadcasts under
                 the same lock, so this wait cannot miss the wakeup *)
              if Atomic.get remaining > 0 then Condition.wait pool.wake pool.lock;
              Mutex.unlock pool.lock;
              None
        in
        (match t with Some t -> t () | None -> ());
        help ()
      end
    in
    help ();
    (* deterministic join: trace buffers land in task order, and the
       lowest-indexed failure wins whatever order tasks finished in *)
    Array.iter Trace.absorb traces;
    Array.map
      (function
        | Done v -> v
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending -> assert false)
      results
  end

let run_list pool fs = Array.to_list (run_array pool (Array.of_list fs))

(* ------------------------------------------------- process-wide default *)

let default_jobs = Atomic.make 1
let default_pool : t option ref = ref None (* guarded by [default_lock] *)
let default_lock = Mutex.create ()
let cleanup_registered = ref false (* guarded by [default_lock] *)

let jobs () = Atomic.get default_jobs

let set_jobs j =
  if j < 1 then invalid_arg "Pool.set_jobs: jobs must be >= 1";
  Mutex.protect default_lock (fun () ->
      (match !default_pool with
      | Some p when p.total <> j ->
          shutdown p;
          default_pool := None
      | Some _ | None -> ());
      Atomic.set default_jobs j)

let get () =
  Mutex.protect default_lock (fun () ->
      match !default_pool with
      | Some p -> p
      | None ->
          let p = create ~jobs:(Atomic.get default_jobs) () in
          default_pool := Some p;
          if not !cleanup_registered then begin
            cleanup_registered := true;
            (* join idle workers on exit so the runtime shuts down clean *)
            at_exit (fun () ->
                Mutex.protect default_lock (fun () ->
                    match !default_pool with
                    | Some p ->
                        default_pool := None;
                        shutdown p
                    | None -> ()))
          end;
          p)
