(** Chunked data-parallel loops over the default {!Pool}.

    The index range [0, n) is cut at {e fixed} chunk boundaries that
    depend only on [n] and [grain] — never on the pool size — so the
    same elements are always grouped together. For elementwise loop
    bodies this makes any schedule bit-identical to the sequential
    loop; for reductions, {!fold_chunks} combines the per-chunk
    partials in chunk-index order, so the floating-point association
    is fixed too. The determinism-matrix test in [test_parallel.ml]
    enforces both properties.

    Small inputs ([n < sequential_cutoff]) and size-1 pools skip the
    pool entirely and run inline on the calling domain, so tensor
    kernels on tiny operands never pay fork/join overhead. *)

val default_grain : int
(** Elements per chunk when [?grain] is omitted (4096). *)

val sequential_cutoff : int ref
(** Inputs with less total work ([n * cost]) than this run inline even
    when the pool is larger than 1 (default 16384). Tests lower it to
    force small inputs through the pool. *)

val chunks : ?grain:int -> ?cost:int -> int -> (int -> int -> unit) -> unit
(** [chunks n body] calls [body lo hi] for every chunk [[lo, hi)] of
    [[0, n)]. Bodies may run concurrently and must write disjoint
    locations. Inline (single call [body 0 n]) when the pool is size 1
    or the total work is under the cutoff. [cost] is the work per
    index relative to one elementwise float op (default 1) — segment
    kernels chunk over batch {e rows} and pass their row width. *)

val fold_chunks :
  ?grain:int ->
  ?cost:int ->
  int ->
  chunk:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  'a
(** [fold_chunks n ~chunk ~combine ~init] computes a partial per chunk
    and folds them left-to-right in chunk-index order. The chunking —
    and therefore the float association — is identical at every pool
    size, including the inline path. *)
