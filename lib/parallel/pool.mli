(** A fixed pool of worker domains with a deterministic join order.

    The pool is the repo's one multicore primitive: every parallel
    layer — concurrent portfolio members, chunked tensor kernels
    ({!Parallel.chunks}), fanned-out bench sweeps — submits batches of
    tasks here instead of spawning domains ad hoc, so total
    parallelism is bounded by one knob ([--jobs] on the CLI).

    Determinism contract:
    - {!run_array} returns results indexed exactly like its input, and
      re-raises the lowest-indexed failure, whatever order tasks
      actually finished in;
    - each task's {!Trace} events are captured in a per-domain buffer
      while it runs and absorbed into the global store in task order
      at the join, so an enabled observability sink sees the same
      event sequence at any pool size;
    - a pool of size 1 (the default) runs every task inline on the
      submitting domain, bit-identical to code that never heard of the
      pool.

    Tasks must not assume which domain runs them: the submitting
    domain works the shared queue too (so nested submissions cannot
    deadlock), and a task batch submitted from inside another task is
    serviced by the same workers. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] builds a pool with [jobs] total execution slots:
    the submitting domain plus [jobs - 1] spawned worker domains.
    [jobs] defaults to [Domain.recommended_domain_count ()].
    @raise Invalid_argument on [jobs < 1]. *)

val size : t -> int
(** Total execution slots (1 = no worker domains, fully sequential). *)

val run_array : t -> (unit -> 'a) array -> 'a array
(** Run every thunk, possibly concurrently, and return their results
    in input order. The first (lowest-index) exception, if any, is
    re-raised after all tasks have settled. On a size-1 pool the
    thunks run inline, left to right. *)

val run_list : t -> (unit -> 'a) list -> 'a list

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. Submitting to a
    shut-down pool runs tasks inline. *)

(** {1 The process-wide default pool}

    Sized by {!set_jobs} (default 1, so nothing in the repo pays for
    parallelism unless asked), created lazily on first use and resized
    by shutting the old pool down. *)

val set_jobs : int -> unit
(** Set the default pool's size ([--jobs N]). Takes effect on the next
    {!get}; an existing default pool of a different size is shut down.
    @raise Invalid_argument on [jobs < 1]. *)

val jobs : unit -> int
(** The configured default size — cheap enough for hot-path guards. *)

val get : unit -> t
(** The default pool, created on first call. *)
