let columns = ref []

let set_columns widths = columns := widths

let heading title =
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let subheading title = Printf.printf "\n-- %s --\n" title

let pad width s =
  let len = String.length s in
  if len >= width then s else s ^ String.make (width - len) ' '

let row cells =
  let rec zip widths cells =
    match widths, cells with
    | _, [] -> []
    | [], c :: rest -> c :: zip [] rest
    | w :: ws, c :: rest -> pad w c :: zip ws rest
  in
  print_endline (String.concat " " (zip !columns cells))

let rule () =
  let total = List.fold_left (fun acc w -> acc + w + 1) 0 !columns in
  print_endline (String.make (max 8 total) '-')

let pct x =
  if not (Float.is_finite x) then "Failed"
  else if Float.abs x >= 1.0 then Printf.sprintf "%.1fx" x
  else Printf.sprintf "%.1f%%" (100.0 *. x)

let secs t =
  if not (Float.is_finite t) then "-"
  else if t >= 100.0 then Printf.sprintf "%.0f" t
  else if t >= 10.0 then Printf.sprintf "%.1f" t
  else Printf.sprintf "%.2f" t

let pm a b =
  if not (Float.is_finite a) then "-"
  else if a >= 100.0 then Printf.sprintf "%.0f±%.0f" a b
  else Printf.sprintf "%.2f±%.2f" a b

let pct_pm a b =
  if not (Float.is_finite a) then "Failed"
  else if Float.abs a >= 1.0 then Printf.sprintf "%.1fx±%.1f" a b
  else Printf.sprintf "%.1f%%±%.1f%%" (100.0 *. a) (100.0 *. b)
