let columns = ref []

let set_columns widths = columns := widths

(* --- capture ----------------------------------------------------------- *)

(* When recording is on (bench --record), every heading/subheading
   starts a table and every row lands in the current one, while the
   plain-text output still prints — the recorded result is exactly the
   printed tables, cell by cell. *)
type table = { t_title : string; mutable t_rows : string list list (* reversed *) }

let cap : table list ref option ref = ref None

let capture_title title =
  match !cap with
  | None -> ()
  | Some tables -> tables := { t_title = title; t_rows = [] } :: !tables

let capture_row cells =
  match !cap with
  | None -> ()
  | Some tables -> (
      match !tables with
      | [] -> tables := [ { t_title = ""; t_rows = [ cells ] } ]
      | t :: _ -> t.t_rows <- cells :: t.t_rows)

let record f =
  let tables = ref [] in
  cap := Some tables;
  let v = Fun.protect ~finally:(fun () -> cap := None) f in
  (v, List.rev_map (fun t -> (t.t_title, List.rev t.t_rows)) !tables)

(* --- rendering --------------------------------------------------------- *)

let heading title =
  capture_title title;
  let line = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" line title line

let subheading title =
  capture_title title;
  Printf.printf "\n-- %s --\n" title

let pad width s =
  let len = String.length s in
  if len >= width then s else s ^ String.make (width - len) ' '

let row cells =
  capture_row cells;
  let rec zip widths cells =
    match widths, cells with
    | _, [] -> []
    | [], c :: rest -> c :: zip [] rest
    | w :: ws, c :: rest -> pad w c :: zip ws rest
  in
  print_endline (String.concat " " (zip !columns cells))

let rule () =
  let total = List.fold_left (fun acc w -> acc + w + 1) 0 !columns in
  print_endline (String.make (max 8 total) '-')

let pct x =
  if not (Float.is_finite x) then "Failed"
  else if Float.abs x >= 1.0 then Printf.sprintf "%.1fx" x
  else Printf.sprintf "%.1f%%" (100.0 *. x)

let secs t =
  if not (Float.is_finite t) then "-"
  else if t >= 100.0 then Printf.sprintf "%.0f" t
  else if t >= 10.0 then Printf.sprintf "%.1f" t
  else Printf.sprintf "%.2f" t

let pm a b =
  if not (Float.is_finite a) then "-"
  else if a >= 100.0 then Printf.sprintf "%.0f±%.0f" a b
  else Printf.sprintf "%.2f±%.2f" a b

let pct_pm a b =
  if not (Float.is_finite a) then "Failed"
  else if Float.abs a >= 1.0 then Printf.sprintf "%.1fx±%.1f" a b
  else Printf.sprintf "%.1f%%±%.1f%%" (100.0 *. a) (100.0 *. b)
