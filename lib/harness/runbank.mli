(** Memoised experiment runner.

    Tables 2 and 3 (and Figures 4, 8 and 9) consume the *same* per-
    instance runs, and the oracle normalisation reuses every method's
    best-known solution, so all results are cached per (instance,
    method) within one bench invocation. All runs are deterministic
    given the budget. *)

type t

val create : Budget.t -> t
val budget : t -> Budget.t

val egraph : t -> Registry.instance -> Egraph.t

val heuristic : t -> Registry.instance -> Extractor.r
val heuristic_plus : t -> Registry.instance -> Extractor.r

val ilp : t -> Bnb.profile -> Registry.instance -> Extractor.r
(** The cplex-like profile is warm-started from heuristic+ (mirroring a
    commercial solver's primal heuristics); scip/cbc are cold. *)

val smoothe_runs : t -> Registry.dataset -> Registry.instance -> Smoothe_extract.run list
(** [budget.smoothe_runs] repetitions with distinct seeds, under the
    dataset's Table 2 correlation assumption. *)

val smoothe_recoveries : t -> Registry.dataset -> Registry.instance -> int
(** Numeric recoveries plus OOM derating steps summed over the cached
    SmoothE repetitions — non-zero marks a degraded (but survived) row
    in the bench tables. *)

val genetic : t -> Registry.instance -> Extractor.r

val oracle : t -> Registry.dataset -> Registry.instance -> float
(** Best-known cost: an extended-budget warm-started ILP run plus the
    minimum over every other cached method — the stand-in for the
    paper's 10-hour CPLEX oracle. *)

val quality_increase : t -> Registry.dataset -> Registry.instance -> float -> float
(** [(cost / oracle) - 1], the normalised increase of Tables 2–4.
    Infinite when [cost] is infinite. *)
