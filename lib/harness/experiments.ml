let ilp_profiles = [ Bnb.cplex_like; Bnb.scip_like; Bnb.cbc_like ]

(* ------------------------------------------------------------- Table 1 *)

let table1 bank =
  Report.heading "Table 1: dataset statistics";
  Report.set_columns [ 10; 20; 4; 6; 8; 8; 12; 28 ];
  Report.row [ "Dataset"; "Task"; "#G"; "d(v)"; "max(N)"; "max(M)"; "Avg.Density"; "Workload(s)" ];
  Report.rule ();
  List.iter
    (fun ds ->
      let stats =
        List.map (fun i -> Egraph.Stats.compute (Runbank.egraph bank i)) ds.Registry.instances
      in
      let avg f = Stats.mean (Array.of_list (List.map f stats)) in
      let maxi f = List.fold_left (fun acc s -> max acc (f s)) 0 stats in
      Report.row
        [
          ds.Registry.ds_name;
          ds.Registry.task;
          string_of_int (List.length ds.Registry.instances);
          Printf.sprintf "%.1f" (avg (fun s -> s.Egraph.Stats.avg_degree));
          string_of_int (maxi (fun s -> s.Egraph.Stats.nodes));
          string_of_int (maxi (fun s -> s.Egraph.Stats.classes));
          Printf.sprintf "%.1e" (avg (fun s -> s.Egraph.Stats.density));
          ds.Registry.workloads;
        ])
    Registry.all

(* -------------------------------------------------------- Tables 2 & 4 *)

(* Per-dataset aggregation of one deterministic method. *)
let aggregate_method bank ds results =
  let times = Array.of_list (List.map (fun (r : Extractor.r) -> r.Extractor.time_s) results) in
  let increases =
    List.map2
      (fun inst (r : Extractor.r) -> Runbank.quality_increase bank ds inst r.Extractor.cost)
      ds.Registry.instances results
  in
  let fails = List.length (List.filter (fun x -> not (Float.is_finite x)) increases) in
  let finite = Array.of_list (List.filter Float.is_finite increases) in
  (* paper convention: "worst" is Failed when any e-graph failed, "avg"
     is the geometric mean over the e-graphs with feasible solutions *)
  let worst =
    if fails > 0 || Array.length finite = 0 then infinity else snd (Stats.min_max finite)
  in
  let avg = if Array.length finite = 0 then infinity else Stats.geomean_ratio finite in
  Stats.mean times, fails, worst, avg

let smoothe_aggregate bank ds =
  (* per-run aggregates, then mean ± max-difference across runs *)
  let runs_per_instance = List.map (fun i -> Runbank.smoothe_runs bank ds i) ds.Registry.instances in
  let nruns = Runbank.budget bank |> fun b -> b.Budget.smoothe_runs in
  let per_run k =
    let results =
      List.map (fun runs -> (List.nth runs k).Smoothe_extract.result) runs_per_instance
    in
    aggregate_method bank ds results
  in
  let agg = List.init nruns per_run in
  let series f = Array.of_list (List.map f agg) in
  let times = series (fun (t, _, _, _) -> t) in
  let fails = List.fold_left (fun acc (_, f, _, _) -> max acc f) 0 agg in
  let worsts = series (fun (_, _, w, _) -> w) in
  let avgs = series (fun (_, _, _, a) -> a) in
  times, fails, worsts, avgs

let comparison_table bank ~title datasets =
  Report.heading title;
  Report.set_columns [ 10; 16; 16; 16; 15; 15; 22 ];
  Report.row [ "Dataset"; "CPLEX-like"; "SCIP-like"; "CBC-like"; "Heuristic"; "Heuristic+"; "SmoothE (ours)" ];
  Report.row [ ""; "time(fails)"; "time(fails)"; "time(fails)"; "time"; "time"; "time" ];
  Report.row [ ""; "worst/avg"; "worst/avg"; "worst/avg"; "worst/avg"; "worst/avg"; "worst/avg" ];
  Report.rule ();
  List.iter
    (fun ds ->
      let deterministic runs =
        let t, fails, worst, avg = aggregate_method bank ds runs in
        ( Printf.sprintf "%s%s" (Report.secs t)
            (if fails > 0 then Printf.sprintf " (%d)" fails else ""),
          Printf.sprintf "%s / %s" (Report.pct worst) (Report.pct avg) )
      in
      let cells_det =
        List.map
          (fun profile ->
            deterministic (List.map (fun i -> Runbank.ilp bank profile i) ds.Registry.instances))
          ilp_profiles
        @ [
            deterministic (List.map (fun i -> Runbank.heuristic bank i) ds.Registry.instances);
            deterministic (List.map (fun i -> Runbank.heuristic_plus bank i) ds.Registry.instances);
          ]
      in
      let times, fails, worsts, avgs = smoothe_aggregate bank ds in
      let smoothe_time =
        Printf.sprintf "%s%s"
          (Report.pm (Stats.mean times) (Stats.max_abs_diff times))
          (if fails > 0 then Printf.sprintf " (%d)" fails else "")
      in
      let finite xs = Array.of_list (List.filter Float.is_finite (Array.to_list xs)) in
      let fw = finite worsts and fa = finite avgs in
      let smoothe_quality =
        if Array.length fw = 0 then "Failed"
        else
          Printf.sprintf "%s / %s"
            (Report.pct_pm (Stats.mean fw) (Stats.max_abs_diff fw))
            (Report.pct_pm (Stats.mean fa) (Stats.max_abs_diff fa))
      in
      Report.row (ds.Registry.ds_name :: List.map fst cells_det @ [ smoothe_time ]);
      Report.row ("" :: List.map snd cells_det @ [ smoothe_quality ]);
      Report.rule ())
    datasets

let table2 bank =
  comparison_table bank
    ~title:"Table 2: linear cost model, realistic datasets (normalised to oracle)"
    Registry.realistic;
  print_endline
    "Assumptions per dataset (Table 2 caption): diospyros/rover/tensat independent,\n\
     flexc/impress correlated. Time limits scaled per DESIGN.md."

let table4 bank =
  comparison_table bank ~title:"Table 4: synthetic NP-hard datasets (set, maxsat)"
    Registry.adversarial

(* ------------------------------------------------------------- Table 3 *)

let table3 bank =
  Report.heading "Table 3: tensat and rover breakdown (cost / time)";
  Report.set_columns [ 8; 11; 18; 18; 18; 15; 15; 24 ];
  Report.row
    [ "Dataset"; "E-Graph"; "CPLEX-like"; "SCIP-like"; "CBC-like"; "Heuristic"; "Heuristic+"; "SmoothE (ours)" ];
  Report.rule ();
  List.iter
    (fun ds_name ->
      let ds = Registry.find ds_name in
      List.iter
        (fun inst ->
          let cost_time (r : Extractor.r) =
            if Float.is_finite r.Extractor.cost then
              Printf.sprintf "%.4g / %s%s" r.Extractor.cost (Report.secs r.Extractor.time_s)
                (if r.Extractor.proved_optimal then "*" else "")
            else Printf.sprintf "Fails / %s" (Report.secs r.Extractor.time_s)
          in
          let runs = Runbank.smoothe_runs bank ds inst in
          let costs =
            Array.of_list
              (List.map (fun r -> r.Smoothe_extract.result.Extractor.cost) runs)
          in
          let times =
            Array.of_list (List.map (fun r -> r.Smoothe_extract.result.Extractor.time_s) runs)
          in
          let smoothe_cell =
            let recovered = Runbank.smoothe_recoveries bank ds inst in
            Printf.sprintf "%s / %s%s"
              (Report.pm (Stats.mean costs) (Stats.max_abs_diff costs))
              (Report.pm (Stats.mean times) (Stats.max_abs_diff times))
              (if recovered > 0 then Printf.sprintf " [r%d]" recovered else "")
          in
          Report.row
            ([ ds_name; inst.Registry.inst_name ]
            @ List.map (fun p -> cost_time (Runbank.ilp bank p inst)) ilp_profiles
            @ [
                cost_time (Runbank.heuristic bank inst);
                cost_time (Runbank.heuristic_plus bank inst);
                smoothe_cell;
              ]))
        ds.Registry.instances)
    [ "tensat"; "rover" ];
  print_endline "* = proved optimal before the time limit."

(* ------------------------------------------------------------- Table 5 *)

let table5 bank =
  Report.heading "Table 5: performance portability across devices";
  let budget = Runbank.budget bank in
  (* the largest member of each realistic dataset, plus oversized
     e-graphs whose per-seed footprint exceeds the small GPU's memory *)
  let biggest ds =
    let best = ref None in
    List.iter
      (fun i ->
        let n = Egraph.num_nodes (Runbank.egraph bank i) in
        match !best with
        | Some (_, n') when n' >= n -> ()
        | _ -> best := Some (i, n))
      (Registry.find ds).Registry.instances;
    let i, _ = Option.get !best in
    ds, i.Registry.inst_name, Runbank.egraph bank i
  in
  let xl =
    [
      ( "impress",
        "mul_1024 (XL)",
        Impress_ds.multiply ~name:"mul_1024" ~width:1024 ~base:16 );
      ( "diospyros",
        "2d-conv_16x16 (XL)",
        Diospyros_ds.conv2d ~name:"2d-conv_16x16_3x3" ~image:16 ~kernel:3 );
    ]
  in
  let cases = List.map biggest [ "diospyros"; "flexc"; "impress"; "rover"; "tensat" ] @ xl in
  Report.set_columns [ 10; 20; 22; 22 ];
  Report.row [ "Dataset"; "E-Graph"; "A100-80GB"; "RTX2080Ti-11GB" ];
  Report.row [ ""; ""; "batch cost/time"; "batch cost/time" ];
  Report.rule ();
  List.iter
    (fun (ds_name, inst_name, g) ->
      let ds = Registry.find ds_name in
      let assumption = Smoothe_config.assumption_of_string ds.Registry.assumption in
      let config = { budget.Budget.smoothe with Smoothe_config.assumption } in
      let cell device =
        let run = Smoothe_extract.extract ~config ~device g in
        if run.Smoothe_extract.oom then "OOM"
        else
          Printf.sprintf "B=%d %.4g/%s" run.Smoothe_extract.batch_used
            run.Smoothe_extract.result.Extractor.cost
            (Report.secs run.Smoothe_extract.result.Extractor.time_s)
      in
      Report.row [ ds_name; inst_name; cell Device.a100; cell Device.rtx2080ti ])
    cases;
  print_endline
    "OOM = modelled per-seed memory exceeds device capacity (Device.footprint);\n\
     batch sizes derate with device memory, reproducing the paper's 8x gap."

(* -------------------------------------------------------------- Fig. 4 *)

let fig4_instances = [ "NASRNN"; "BERT"; "box_4"; "fir_7" ]

let fig4 bank =
  Report.heading "Figure 4: anytime results (SmoothE vs CPLEX-like ILP)";
  List.iter
    (fun name ->
      let inst = Registry.find_instance name in
      let ds = Registry.find (if List.mem name [ "NASRNN"; "BERT" ] then "tensat" else "rover") in
      Report.subheading name;
      let ilp = Runbank.ilp bank Bnb.cplex_like inst in
      let smoothe = List.hd (Runbank.smoothe_runs bank ds inst) in
      Report.set_columns [ 10; 14; 14 ];
      Report.row [ "series"; "time(s)"; "cost" ];
      Report.rule ();
      List.iter
        (fun (t, c) -> Report.row [ "ilp"; Report.secs t; Printf.sprintf "%.4g" c ])
        ilp.Extractor.trace;
      List.iter
        (fun (t, c) -> Report.row [ "smoothe"; Report.secs t; Printf.sprintf "%.4g" c ])
        smoothe.Smoothe_extract.result.Extractor.trace)
    fig4_instances

(* -------------------------------------------------------------- Fig. 5 *)

let fig5 bank =
  Report.heading "Figure 5: non-linear (MLP) cost model, increase normalised to SmoothE";
  let budget = Runbank.budget bank in
  Report.set_columns [ 10; 14; 14; 20; 14 ];
  Report.row [ "Dataset"; "SmoothE"; "ILP*"; "Genetic (±max)"; "GeneticFails" ];
  Report.rule ();
  List.iter
    (fun ds ->
      (* two representative instances per dataset keep the MLP training
         budget reasonable *)
      let insts =
        match ds.Registry.instances with a :: b :: _ -> [ a; b ] | rest -> rest
      in
      let per_instance inst =
        let g = Runbank.egraph bank inst in
        let rng = Rng.create 4242 in
        let inputs = Random_walk.dense_dataset rng g ~count:48 in
        let targets = Array.init (Array.length inputs) (fun _ -> -.Rng.float rng 5.0) in
        let mlp = Mlp.create rng ~input_dim:(Egraph.num_nodes g) in
        ignore (Mlp.train ~epochs:budget.Budget.mlp_train_epochs rng mlp ~inputs ~targets);
        let model = Cost_model.mlp_corrected ~linear:g.Egraph.costs mlp in
        let assumption = Smoothe_config.assumption_of_string ds.Registry.assumption in
        (* non-linear models need more optimisation steps (§5.5) *)
        let config =
          {
            budget.Budget.smoothe with
            Smoothe_config.assumption;
            batch = max 32 budget.Budget.smoothe.Smoothe_config.batch;
            max_iters = 2 * budget.Budget.smoothe.Smoothe_config.max_iters;
            patience = 2 * budget.Budget.smoothe.Smoothe_config.patience;
          }
        in
        let smoothe = (Smoothe_extract.extract ~config ~model g).Smoothe_extract.result in
        (* ILP*: the linear-model oracle solution re-evaluated under the
           non-linear model (§5.5) *)
        let ilp_star =
          let r = Runbank.ilp bank Bnb.cplex_like inst in
          match r.Extractor.solution with
          | Some s -> Cost_model.dense_solution model g s
          | None -> infinity
        in
        let genetic_costs =
          List.init 3 (fun k ->
              let r =
                Genetic.extract ~config:budget.Budget.genetic ~model (Rng.create (97 + k)) g
              in
              r.Extractor.cost)
        in
        smoothe.Extractor.cost, ilp_star, genetic_costs
      in
      let rows = List.map per_instance insts in
      (* normalise each instance's costs to SmoothE's; costs are
         negative-leaning (savings), so report differences relative to
         |SmoothE| *)
      let norm base v =
        if not (Float.is_finite v) then infinity
        else (v -. base) /. Float.max 1e-9 (Float.abs base)
      in
      let ilp_incs =
        Array.of_list (List.map (fun (s, i, _) -> norm s i) rows) |> fun a ->
        Array.of_list (List.filter Float.is_finite (Array.to_list a))
      in
      let gen_all =
        List.concat_map (fun (s, _, gs) -> List.map (norm s) gs) rows
        |> List.filter Float.is_finite
      in
      let gen_fails =
        List.concat_map (fun (_, _, gs) -> gs) rows
        |> List.filter (fun c -> not (Float.is_finite c))
        |> List.length
      in
      let gen_arr = Array.of_list gen_all in
      Report.row
        [
          ds.Registry.ds_name;
          "0.0% (ref)";
          (if Array.length ilp_incs = 0 then "Failed" else Report.pct (Stats.mean ilp_incs));
          (if Array.length gen_arr = 0 then "Failed"
           else Report.pct_pm (Stats.mean gen_arr) (Stats.max_abs_diff gen_arr));
          string_of_int gen_fails;
        ])
    Registry.realistic

(* -------------------------------------------------------------- Fig. 6 *)

let fig6 bank =
  Report.heading "Figure 6: speedup over the CPU baseline (tensat)";
  let budget = Runbank.budget bank in
  Report.set_columns [ 11; 12; 12; 12; 12; 12 ];
  Report.row [ "E-Graph"; "CPU(s)"; "+GPU(s)"; "+MatExp(s)"; "GPU speedup"; "MatExp speedup" ];
  Report.rule ();
  let ds = Registry.find "tensat" in
  List.iter
    (fun inst ->
      let g = Runbank.egraph bank inst in
      let config =
        {
          budget.Budget.smoothe with
          Smoothe_config.assumption = Smoothe_config.Independent;
          batch = min 8 budget.Budget.smoothe.Smoothe_config.batch;
          max_iters = min 60 budget.Budget.smoothe.Smoothe_config.max_iters;
          time_limit = 120.0;
        }
      in
      let unoptimised =
        { config with Smoothe_config.scc_decomposition = false; batched_matexp = false }
      in
      let time_of device cfg =
        let run = Smoothe_extract.extract ~config:cfg ~device g in
        if run.Smoothe_extract.oom then nan
        else run.Smoothe_extract.profile.Smoothe_extract.total_time
      in
      let cpu = time_of Device.cpu_baseline unoptimised in
      let gpu = time_of Device.a100 unoptimised in
      let matexp = time_of Device.a100 config in
      let show t = if Float.is_nan t then "OOM" else Report.secs t in
      let speedup a b =
        if Float.is_nan a || Float.is_nan b then "-" else Printf.sprintf "%.1fx" (a /. b)
      in
      Report.row
        [
          inst.Registry.inst_name;
          show cpu;
          show gpu;
          show matexp;
          speedup cpu gpu;
          speedup gpu matexp;
        ])
    ds.Registry.instances;
  print_endline
    "CPU = scalar backend without SCC/batched-matexp optimisations;\n\
     +GPU = vectorised backend; +MatExp adds SCC decomposition + Eq. (11) batching."

(* -------------------------------------------------------------- Fig. 7 *)

let fig7 bank =
  Report.heading "Figure 7: seed batching on rover/box_3 (cost & latency vs B)";
  let budget = Runbank.budget bank in
  let g = Runbank.egraph bank (Registry.find_instance "box_3") in
  Report.set_columns [ 6; 16; 12; 12 ];
  Report.row [ "B"; "avg cost(±max)"; "variance"; "latency(s)" ];
  Report.rule ();
  List.iter
    (fun b ->
      let costs, times =
        List.split
          (List.init 3 (fun k ->
               let config =
                 {
                   budget.Budget.smoothe with
                   Smoothe_config.batch = b;
                   assumption = Smoothe_config.Independent;
                   seed = 17 + (1000 * k);
                 }
               in
               let run = Smoothe_extract.extract ~config g in
               ( run.Smoothe_extract.result.Extractor.cost,
                 run.Smoothe_extract.profile.Smoothe_extract.total_time )))
      in
      let costs = Array.of_list costs and times = Array.of_list times in
      Report.row
        [
          string_of_int b;
          Report.pm (Stats.mean costs) (Stats.max_abs_diff costs);
          Printf.sprintf "%.3g" (Stats.variance costs);
          Report.secs (Stats.mean times);
        ])
    budget.Budget.seed_sweep

(* -------------------------------------------------------------- Fig. 8 *)

let fig8 bank =
  Report.heading "Figure 8: runtime profiling (share of wall-clock per component)";
  Report.set_columns [ 10; 14; 16; 12 ];
  Report.row [ "Dataset"; "LossCalc"; "GradDescent"; "Sampling" ];
  Report.rule ();
  List.iter
    (fun ds ->
      let shares =
        List.map
          (fun inst ->
            let run = List.hd (Runbank.smoothe_runs bank ds inst) in
            let p = run.Smoothe_extract.profile in
            let total = Float.max 1e-9 p.Smoothe_extract.total_time in
            ( p.Smoothe_extract.loss_time /. total,
              p.Smoothe_extract.grad_time /. total,
              p.Smoothe_extract.sample_time /. total ))
          ds.Registry.instances
      in
      let mean f = Stats.mean (Array.of_list (List.map f shares)) in
      Report.row
        [
          ds.Registry.ds_name;
          Printf.sprintf "%.1f%%" (100.0 *. mean (fun (a, _, _) -> a));
          Printf.sprintf "%.1f%%" (100.0 *. mean (fun (_, b, _) -> b));
          Printf.sprintf "%.1f%%" (100.0 *. mean (fun (_, _, c) -> c));
        ])
    Registry.realistic

(* -------------------------------------------------------------- Fig. 9 *)

let fig9 bank =
  Report.heading "Figure 9: optimisation loss vs sampling loss";
  List.iter
    (fun name ->
      let inst = Registry.find_instance name in
      let ds = Registry.find (if List.mem name [ "NASRNN"; "BERT" ] then "tensat" else "rover") in
      let run = List.hd (Runbank.smoothe_runs bank ds inst) in
      Report.subheading name;
      Report.set_columns [ 6; 16; 16; 14 ];
      Report.row [ "iter"; "relaxed f(p)+λh"; "sampled f_b(s)"; "incumbent" ];
      Report.rule ();
      let history = run.Smoothe_extract.history in
      let len = List.length history in
      let stride = max 1 (len / 12) in
      List.iteri
        (fun k h ->
          if k mod stride = 0 || k = len - 1 then
            Report.row
              [
                string_of_int h.Smoothe_extract.iter;
                Printf.sprintf "%.5g" h.Smoothe_extract.relaxed_loss;
                (if Float.is_finite h.Smoothe_extract.sampled_cost then
                   Printf.sprintf "%.5g" h.Smoothe_extract.sampled_cost
                 else "invalid");
                Printf.sprintf "%.5g" h.Smoothe_extract.incumbent;
              ])
        history)
    [ "NASRNN"; "BERT"; "box_4"; "fir_7" ]

(* ------------------------------------------------------------ ablations *)

let ablation_lambda bank =
  Report.heading "Ablation: NOTEARS weight λ (cyclic tensat/NASRNN)";
  let budget = Runbank.budget bank in
  let g = Runbank.egraph bank (Registry.find_instance "NASRNN") in
  Report.set_columns [ 8; 12; 18 ];
  Report.row [ "lambda"; "cost"; "invalid samples" ];
  Report.rule ();
  List.iter
    (fun lambda_ ->
      let config =
        {
          budget.Budget.smoothe with
          Smoothe_config.lambda_;
          assumption = Smoothe_config.Independent;
        }
      in
      let run = Smoothe_extract.extract ~config g in
      let invalid =
        List.length
          (List.filter
             (fun h -> not (Float.is_finite h.Smoothe_extract.sampled_cost))
             run.Smoothe_extract.history)
      in
      Report.row
        [
          Printf.sprintf "%g" lambda_;
          Printf.sprintf "%.4g" run.Smoothe_extract.result.Extractor.cost;
          Printf.sprintf "%d / %d" invalid run.Smoothe_extract.iterations;
        ])
    [ 0.0; 0.1; 1.0; 10.0; 100.0 ]

let ablation_repair bank =
  Report.heading "Ablation: cycle-aware sampling repair (our extension)";
  let budget = Runbank.budget bank in
  Report.set_columns [ 11; 16; 16 ];
  Report.row [ "E-Graph"; "repair off"; "repair on" ];
  Report.rule ();
  List.iter
    (fun name ->
      let g = Runbank.egraph bank (Registry.find_instance name) in
      let cell repair_sampling =
        let config =
          {
            budget.Budget.smoothe with
            Smoothe_config.repair_sampling;
            assumption = Smoothe_config.Independent;
            lambda_ = 0.1 (* weak penalty so raw sampling actually hits cycles *);
          }
        in
        let run = Smoothe_extract.extract ~config g in
        Printf.sprintf "%.4g" run.Smoothe_extract.result.Extractor.cost
      in
      Report.row [ name; cell false; cell true ])
    [ "NASRNN"; "BERT"; "VGG"; "ResNet-50" ]

let ablation_assumption bank =
  Report.heading "Ablation: correlation assumption (Eq. 6 vs Eq. 7 vs hybrid)";
  let budget = Runbank.budget bank in
  Report.set_columns [ 10; 11; 14; 14; 14 ];
  Report.row [ "Dataset"; "E-Graph"; "independent"; "correlated"; "hybrid" ];
  Report.rule ();
  List.iter
    (fun ds_name ->
      let ds = Registry.find ds_name in
      let inst = List.hd ds.Registry.instances in
      let g = Runbank.egraph bank inst in
      let cell assumption =
        let config = { budget.Budget.smoothe with Smoothe_config.assumption } in
        let run = Smoothe_extract.extract ~config g in
        Printf.sprintf "%.4g" run.Smoothe_extract.result.Extractor.cost
      in
      Report.row
        [
          ds_name;
          inst.Registry.inst_name;
          cell Smoothe_config.Independent;
          cell Smoothe_config.Correlated;
          cell Smoothe_config.Hybrid;
        ])
    [ "diospyros"; "flexc"; "impress"; "rover"; "tensat"; "set"; "maxsat" ]

let ablation_fusion bank =
  Report.heading "Ablation: pairwise fusion cost model (future-work direction, §6)";
  let budget = Runbank.budget bank in
  Report.set_columns [ 11; 12; 12; 12; 12 ];
  Report.row [ "E-Graph"; "linear-opt"; "SmoothE"; "genetic"; "ILP*" ];
  Report.rule ();
  List.iter
    (fun name ->
      let inst = Registry.find_instance name in
      let g = Runbank.egraph bank inst in
      let model = Cost_model.fusion_of_egraph (Rng.create 7) ~discount:0.4 g in
      let config =
        {
          budget.Budget.smoothe with
          Smoothe_config.assumption = Smoothe_config.Independent;
          max_iters = 2 * budget.Budget.smoothe.Smoothe_config.max_iters;
        }
      in
      let smoothe = (Smoothe_extract.extract ~config ~model g).Smoothe_extract.result in
      let genetic = Genetic.extract ~config:budget.Budget.genetic ~model (Rng.create 31) g in
      let linear_opt = Runbank.ilp bank Bnb.cplex_like inst in
      let ilp_star =
        match linear_opt.Extractor.solution with
        | Some s -> Cost_model.dense_solution model g s
        | None -> infinity
      in
      let show c = if Float.is_finite c then Printf.sprintf "%.4g" c else "Fails" in
      Report.row
        [
          name;
          show linear_opt.Extractor.cost;
          show smoothe.Extractor.cost;
          show genetic.Extractor.cost;
          show ilp_star;
        ])
    [ "mcm_8"; "bzip2_1"; "mat-mul_4x4"; "maxsat_30_90" ];
  print_endline
    "Fusion discounts apply only when both e-nodes of a pair are selected; a\n\
     linear-model optimum (ILP*) ignores them, SmoothE optimises through them."

let ablation_phi bank =
  Report.heading "Ablation: accuracy of the correlation assumptions vs exact marginals";
  ignore bank;
  Report.set_columns [ 22; 14; 14; 14 ];
  Report.row [ "e-graph (random cp)"; "independent"; "correlated"; "hybrid" ];
  Report.rule ();
  (* small e-graphs where the exact enumeration is tractable: the fig. 1
     example plus random DAGs and random cyclic e-graphs *)
  let cases =
    ("fig1", Fig1.egraph ())
    :: List.concat_map
         (fun cyclic ->
           List.map
             (fun seed ->
               let rng = Rng.create seed in
               let b = Egraph.Builder.create ~name:"rnd" () in
               (* 6 classes, 2 nodes each: 64 assignments *)
               let ids = Array.init 6 (fun _ -> Egraph.Builder.add_class b) in
               for c = 5 downto 0 do
                 for _ = 1 to 2 do
                   let children = ref [] in
                   if c < 5 then children := [ ids.(c + 1 + Rng.int rng (5 - c)) ];
                   if cyclic && Rng.uniform rng < 0.3 then
                     children := ids.(Rng.int rng 6) :: !children;
                   ignore
                     (Egraph.Builder.add_node b ~cls:ids.(c)
                        ~op:(Printf.sprintf "o%d" (Rng.int rng 4))
                        ~cost:1.0 ~children:!children)
                 done
               done;
               ( Printf.sprintf "%s-%d" (if cyclic then "cyclic" else "dag") seed,
                 Egraph.Builder.freeze b ~root:ids.(0) ))
             [ 1; 2; 3 ])
         [ false; true ]
  in
  List.iter
    (fun (name, g) ->
      let rng = Rng.create 99 in
      (* random cp summing to 1 per class *)
      let cp = Array.make (Egraph.num_nodes g) 0.0 in
      Array.iter
        (fun members ->
          let raw = Array.map (fun _ -> 0.1 +. Rng.uniform rng) members in
          let total = Array.fold_left ( +. ) 0.0 raw in
          Array.iteri (fun k node -> cp.(node) <- raw.(k) /. total) members)
        g.Egraph.class_nodes;
      let err a = Exact_marginals.assumption_error g ~cp a in
      Report.row
        [
          name;
          Printf.sprintf "%.4f" (err Smoothe_config.Independent);
          Printf.sprintf "%.4f" (err Smoothe_config.Correlated);
          Printf.sprintf "%.4f" (err Smoothe_config.Hybrid);
        ])
    cases;
  print_endline
    "Mean |exact - propagated| marginal per e-node. The exact marginals come from\n\
     full enumeration (Exact_marginals); the paper instead must assume a parent\n\
     correlation structure (section 3.3). Lower is better."

let ablation_temperature bank =
  Report.heading "Ablation: softmax temperature annealing and entropy bonus (our extensions)";
  let budget = Runbank.budget bank in
  let g = Runbank.egraph bank (Registry.find_instance "box_4") in
  Report.set_columns [ 34; 12; 12 ];
  Report.row [ "configuration"; "cost"; "iterations" ];
  Report.rule ();
  List.iter
    (fun (label, temperature, temperature_decay, entropy_weight) ->
      let config =
        {
          budget.Budget.smoothe with
          Smoothe_config.assumption = Smoothe_config.Independent;
          temperature;
          temperature_decay;
          entropy_weight;
        }
      in
      let run = Smoothe_extract.extract ~config g in
      Report.row
        [
          label;
          Printf.sprintf "%.4g" run.Smoothe_extract.result.Extractor.cost;
          string_of_int run.Smoothe_extract.iterations;
        ])
    [
      ("paper default (tau=1, no entropy)", 1.0, 1.0, 0.0);
      ("hot start, annealed (tau 2 -> 0.2)", 2.0, 0.97, 0.0);
      ("entropy bonus w=0.5", 1.0, 1.0, 0.5);
      ("annealed + entropy", 2.0, 0.97, 0.5);
      ("cold (tau=0.5)", 0.5, 1.0, 0.0);
    ]

(* ------------------------------------------------------ phase breakdown *)

(* The Fig. 6 configurations again (scalar vs vectorised backend,
   matexp optimisations off/on), but with the per-phase wall-clock
   summed from recorded spans rather than the profile struct, plus the
   matexp squaring counts that explain the gap. *)
let phases bank =
  Report.heading "Per-phase breakdown from recorded spans (Fig. 6 configurations)";
  let budget = Runbank.budget bank in
  let g = Runbank.egraph bank (Registry.find_instance "box_3") in
  let base =
    {
      budget.Budget.smoothe with
      Smoothe_config.assumption = Smoothe_config.Independent;
      batch = min 8 budget.Budget.smoothe.Smoothe_config.batch;
      max_iters = min 40 budget.Budget.smoothe.Smoothe_config.max_iters;
    }
  in
  let cases =
    [
      ("scalar", Device.cpu_baseline, false);
      ("scalar+matexp", Device.cpu_baseline, true);
      ("vectorised", Device.a100, false);
      ("vectorised+matexp", Device.a100, true);
    ]
  in
  Report.set_columns [ 20; 10; 10; 10; 10; 10; 12 ];
  Report.row [ "configuration"; "forward"; "backward"; "adam"; "sample"; "total"; "sq/matexp" ];
  Report.rule ();
  (* the four cases fan across the default pool. Each runs against a
     scoped metrics registry and a captured trace, so concurrent cases
     read only their own counters and spans; the captured events are
     re-absorbed so the pool merges them into the global trace in case
     order, and rows print in case order after the join. *)
  Obs.with_enabled (fun () ->
      Trace.reset ();
      Metrics.reset ();
      let rows =
        Pool.run_list (Pool.get ())
          (List.map
             (fun (label, device, matexp) () ->
               let config =
                 { base with Smoothe_config.scc_decomposition = matexp; batched_matexp = matexp }
               in
               Metrics.scoped (fun () ->
                   let (), evs =
                     Trace.capturing (fun () ->
                         ignore (Smoothe_extract.extract ~config ~device g))
                   in
                   let totals = Trace.span_totals_of evs in
                   Trace.absorb evs;
                   let total name =
                     match List.find_opt (fun (n, _, _) -> n = name) totals with
                     | Some (_, _, t) -> t
                     | None -> 0.0
                   in
                   let calls = Metrics.counter_value "tensor.matexp_calls" in
                   let sq = Metrics.counter_value "tensor.matexp_squarings" in
                   [
                     label;
                     Report.secs (total "smoothe.forward");
                     Report.secs (total "smoothe.backward");
                     Report.secs (total "smoothe.adam_step");
                     Report.secs (total "smoothe.sample");
                     Report.secs (total "smoothe.extract");
                     (if calls > 0.0 then Printf.sprintf "%.1f" (sq /. calls) else "-");
                   ]))
             cases)
      in
      List.iter Report.row rows;
      (* the merged trace (all four cases, absorbed in case order even
         when they ran concurrently) doubles as a CI artifact *)
      Trace.write_file "phases-trace.json");
  print_endline
    "Phase times are summed from recorded smoothe.* spans; sq/matexp is the mean\n\
     squaring count per matrix exponential (Eq. 11 batching shrinks it).\n\
     Merged span trace written to phases-trace.json."

let durability bank =
  Report.heading "Durability: checkpoint overhead vs snapshot interval (mcm_8)";
  let budget = Runbank.budget bank in
  let g = Runbank.egraph bank (Registry.find_instance "mcm_8") in
  let config =
    {
      budget.Budget.smoothe with
      Smoothe_config.time_limit = 0.0;
      (* unlimited: the interval, not the clock, decides when we stop *)
      max_iters = min 60 budget.Budget.smoothe.Smoothe_config.max_iters;
    }
  in
  (* one snapshot dir per interval (not one shared dir): the rows fan
     across the default pool, and concurrent stores must not interleave
     generations in each other's directories *)
  let dir_for interval =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "smoothe-durability-%d-%d" (Unix.getpid ()) interval)
  in
  let cleanup dir =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  let intervals = [ 0; 1; 5; 25 ] in
  Report.set_columns [ 10; 10; 10; 10; 10; 12 ];
  Report.row [ "interval"; "time"; "cost"; "iters"; "writes"; "KiB written" ];
  Report.rule ();
  Fun.protect
    ~finally:(fun () -> List.iter (fun i -> cleanup (dir_for i)) intervals)
    (fun () ->
      Obs.with_enabled (fun () ->
          let rows =
            Pool.run_list (Pool.get ())
              (List.map
                 (fun interval () ->
                   let dir = dir_for interval in
                   cleanup dir;
                   let store =
                     if interval = 0 then None
                     else Some (Checkpoint.store ~dir ~name:"durability" ())
                   in
                   (* scoped: each row reads only its own checkpoint
                      counters, whatever its neighbours are writing *)
                   Metrics.scoped (fun () ->
                       let run, t =
                         Timer.time (fun () ->
                             Smoothe_extract.extract ~config ?checkpoint:store
                               ~checkpoint_every:interval g)
                       in
                       [
                         (if interval = 0 then "off" else string_of_int interval);
                         Report.secs t;
                         Printf.sprintf "%.4g" run.Smoothe_extract.result.Extractor.cost;
                         string_of_int run.Smoothe_extract.iterations;
                         Printf.sprintf "%.0f" (Metrics.counter_value "checkpoint.writes");
                         Printf.sprintf "%.1f"
                           (Metrics.counter_value "checkpoint.bytes_written" /. 1024.0);
                       ]))
                 intervals)
          in
          List.iter Report.row rows));
  print_endline
    "Same seed and iteration budget in every row, so cost must not move; the\n\
     delta against `off' is the price of durability at each snapshot interval."

let preflight bank =
  Report.heading "Pre-flight static analysis: every bundled instance";
  Report.set_columns [ 20; 8; 8; 8; 10; 8; 10 ];
  Report.row [ "instance"; "nodes"; "classes"; "errors"; "warnings"; "infos"; "verdict" ];
  Report.rule ();
  (* materialise every instance through the Runbank cache on this
     domain first — its memo Hashtbls are not domain-safe — then fan
     the per-instance analysis (the expensive part: a forward tape and
     three checkers each) across the default pool. Results come back
     in instance order, so the table and the totals are identical at
     any jobs count. *)
  let cases =
    List.concat_map
      (fun ds -> List.map (fun inst -> (inst, Runbank.egraph bank inst)) ds.Registry.instances)
      Registry.all
  in
  let analyse (inst, g) =
    (* lint the graph, then a tiny recorded forward tape: batch 2
       and two propagation steps exercise every op kind the real
       run would build, at negligible cost *)
    let config =
      { Smoothe_config.default with Smoothe_config.batch = 2; prop_iters = Some 2 }
    in
    let tape_ds =
      match
        let compiled = Relaxation.compile config g in
        let theta = Tensor.create ~batch:2 ~width:(Egraph.num_nodes g) in
        let fwd = Relaxation.forward compiled ~config ~model:(Cost_model.of_egraph g) ~theta in
        let ir = Ad.ir fwd.Relaxation.tape in
        Shape_check.check ir @ Grad_flow.check ~root:(Ad.node_id fwd.Relaxation.loss) ir
      with
      | ds -> ds
      | exception e ->
          [
            Diagnostic.error ~code:"AN001" Diagnostic.Graph
              "building the forward tape failed: %s" (Printexc.to_string e);
          ]
    in
    let ds = Egraph_lint.check g @ tape_ds in
    let row =
      [
        inst.Registry.inst_name;
        string_of_int (Egraph.num_nodes g);
        string_of_int (Egraph.num_classes g);
        string_of_int (Diagnostic.errors ds);
        string_of_int (Diagnostic.warnings ds);
        string_of_int (Diagnostic.infos ds);
        (if Diagnostic.ok ~strict:true ds then "clean" else "FINDINGS");
      ]
    in
    (row, Diagnostic.errors ds, Diagnostic.warnings ds)
  in
  let results =
    Pool.run_list (Pool.get ()) (List.map (fun case () -> analyse case) cases)
  in
  List.iter (fun (row, _, _) -> Report.row row) results;
  let total_errors = List.fold_left (fun acc (_, e, _) -> acc + e) 0 results in
  let total_warnings = List.fold_left (fun acc (_, _, w) -> acc + w) 0 results in
  Printf.printf
    "Every bundled instance must lint clean (infos allowed): %d errors, %d warnings.\n"
    total_errors total_warnings

(* --------------------------------------------------------------- replay *)

(* The compiled replay engine (lib/autodiff/plan) against the
   interpreter it must reproduce bit for bit: the same captured
   iteration run both ways over identical in-place theta updates,
   reporting per-iteration wall clock and per-iteration tensor
   allocation for each executor. Two hard assertions ride along —
   every replayed loss and theta gradient must be bitwise equal to the
   interpreter's, and steady-state replayed iterations must allocate
   zero tensor bytes. Rows run sequentially on purpose: fanning the
   cases over the pool would contend for cores and skew the very
   per-iteration wall clocks the table exists to compare. *)
let replay bank =
  Report.heading "Plan replay: interpreted vs compiled iterations (bit-identical)";
  let budget = Runbank.budget bank in
  let iters = min 30 (max 6 (budget.Budget.smoothe.Smoothe_config.max_iters / 5)) in
  let config =
    {
      budget.Budget.smoothe with
      Smoothe_config.batch = min 8 budget.Budget.smoothe.Smoothe_config.batch;
    }
  in
  let nudge rng theta =
    (* the in-place update an optimiser step would make; replays see it
       through the captured leaf reference, never through a new tape *)
    let d = Tensor.unsafe_data theta in
    for i = 0 to Tensor.numel theta - 1 do
      d.(i) <- d.(i) +. (0.02 *. Rng.gaussian rng)
    done
  in
  Report.set_columns [ 18; 6; 11; 11; 9; 13; 13; 10 ];
  Report.row
    [
      "instance";
      "iters";
      "interp/it";
      "replay/it";
      "speedup";
      "interp KiB/it";
      "replay KiB/it";
      "identical";
    ];
  Report.rule ();
  let run_case name =
    let g = Runbank.egraph bank (Registry.find_instance name) in
    let compiled = Relaxation.compile config g in
    let model = Cost_model.of_egraph g in
    let rng = Rng.create 11 in
    let theta =
      Tensor.init ~batch:config.Smoothe_config.batch ~width:(Egraph.num_nodes g)
        (fun _ _ -> 0.5 *. Rng.gaussian rng)
    in
    (* capture two consecutive iterations, gate on the dataflow
       analysis, compile against its verified arena and fusion chains —
       the same pipeline `--plan on' arms inside the extraction loop *)
    let fwd1 = Relaxation.forward compiled ~config ~model ~theta in
    let c1 = Plan.capture fwd1.Relaxation.tape ~root:fwd1.Relaxation.loss in
    let fwd2 = Relaxation.forward compiled ~config ~model ~theta in
    let c2 = Plan.capture fwd2.Relaxation.tape ~root:fwd2.Relaxation.loss in
    (match Plan.stable c1 c2 with
    | Ok () -> ()
    | Error e -> failwith (Printf.sprintf "replay bench: %s captures unstable: %s" name e));
    let root = Ad.node_id fwd2.Relaxation.loss in
    let theta_id = Ad.node_id fwd2.Relaxation.theta in
    let outputs = [| root |] in
    let report = Plan_check.analyze ~grads:[| theta_id |] ~root ~outputs c2.Plan.ir in
    (match
       List.filter
         (fun d -> d.Diagnostic.severity <> Diagnostic.Info)
         report.Plan_check.diags
     with
    | [] -> ()
    | d :: _ ->
        failwith
          (Printf.sprintf "replay bench: %s analysis rejected the IR: %s" name
             (Diagnostic.render d)));
    let plan =
      match
        Plan.compile
          ~arena:(Plan_check.arena_spec report)
          ~chains:(Plan_check.plan_chains report)
          ~outputs ~grads:[| theta_id |] c2
      with
      | Ok plan -> plan
      | Error e -> failwith (Printf.sprintf "replay bench: %s compile failed: %s" name e)
    in
    let theta0 = Tensor.copy theta in
    (* untimed verification pass (doubles as the replay warm-up): every
       iteration runs both executors over the same theta and must agree
       bitwise on the loss and the theta gradient *)
    let identical = ref true in
    let rng_v = Rng.create 101 in
    for _ = 1 to iters do
      let fwd = Relaxation.forward compiled ~config ~model ~theta in
      Ad.backward fwd.Relaxation.loss;
      Plan.run_forward plan;
      Plan.run_backward plan;
      identical :=
        !identical
        && Tensor.bits_equal (Plan.value plan root) (Ad.value fwd.Relaxation.loss)
        && Tensor.bits_equal (Plan.grad_of plan theta_id) (Ad.grad fwd.Relaxation.theta);
      nudge rng_v theta
    done;
    if not !identical then
      failwith (Printf.sprintf "replay bench: %s replay diverged from the interpreter" name);
    (* timed interpreted loop: fresh tape and fresh intermediates every
       iteration, exactly what the extraction loop pays under --plan off *)
    Tensor.copy_into ~out:theta theta0;
    let rng_i = Rng.create 101 in
    let interp_bytes = ref 0.0 in
    let (), interp_s =
      Timer.time (fun () ->
          Metrics.scoped (fun () ->
              for _ = 1 to iters do
                let fwd = Relaxation.forward compiled ~config ~model ~theta in
                Ad.backward fwd.Relaxation.loss;
                nudge rng_i theta
              done;
              interp_bytes := Metrics.counter_value "tensor.bytes_allocated"))
    in
    (* timed replay loop: the identical theta trajectory through the
       compiled schedule; the allocation counter must not move at all *)
    Tensor.copy_into ~out:theta theta0;
    let rng_r = Rng.create 101 in
    let replay_bytes = ref 0.0 in
    let (), replay_s =
      Timer.time (fun () ->
          Metrics.scoped (fun () ->
              for _ = 1 to iters do
                Plan.run_forward plan;
                Plan.run_backward plan;
                nudge rng_r theta
              done;
              replay_bytes := Metrics.counter_value "tensor.bytes_allocated"))
    in
    if !replay_bytes <> 0.0 then
      failwith
        (Printf.sprintf "replay bench: %s replayed iterations allocated %.0f bytes" name
           !replay_bytes);
    let per_it s = s *. 1e3 /. float_of_int iters in
    let st = Plan.stats plan in
    Report.row
      [
        name;
        string_of_int iters;
        Printf.sprintf "%.2f ms" (per_it interp_s);
        Printf.sprintf "%.2f ms" (per_it replay_s);
        Printf.sprintf "%.2fx" (interp_s /. replay_s);
        Printf.sprintf "%.1f" (!interp_bytes /. 1024.0 /. float_of_int iters);
        Printf.sprintf "%.1f" (!replay_bytes /. 1024.0 /. float_of_int iters);
        (if !identical then "yes" else "NO");
      ];
    (name, st)
  in
  let stats =
    Obs.with_enabled (fun () ->
        List.map run_case [ "box_3"; "mcm_8"; "set_cover_small"; "fir_5" ])
  in
  print_endline
    "Replayed iterations must allocate zero tensor bytes and agree bitwise with\n\
     the interpreter on every loss and theta gradient (both enforced above).";
  List.iter
    (fun (name, st) ->
      Printf.printf
        "%s: %d nodes, %d KiB arena + %d KiB pinned, %d ops fused into %d chains\n" name
        st.Plan.nodes
        ((st.Plan.arena_bytes + 1023) / 1024)
        ((st.Plan.dedicated_bytes + 1023) / 1024)
        st.Plan.fused_nodes st.Plan.chains)
    stats

(* ------------------------------------------------------------- parallel *)

(* The --jobs machinery measured end to end: the same seeded extraction
   and the same chunked kernel workload at jobs=1 and at the host's
   recommended width. Costs must agree bit-for-bit (the determinism
   contract); the wall-clock columns show whatever speedup the host's
   cores actually deliver. *)
let parallel bank =
  Report.heading "Parallel execution: jobs sweep (bit-identical results required)";
  let budget = Runbank.budget bank in
  let g = Runbank.egraph bank (Registry.find_instance "box_3") in
  let config =
    {
      budget.Budget.smoothe with
      Smoothe_config.assumption = Smoothe_config.Independent;
      time_limit = 0.0 (* iteration-bounded, so every jobs value does identical work *);
      max_iters = min 40 budget.Budget.smoothe.Smoothe_config.max_iters;
    }
  in
  let kernel_workload () =
    let x =
      Tensor.init ~batch:32 ~width:20_000 (fun b i ->
          float_of_int (((b * 31) + i) mod 97) /. 97.0)
    in
    let y = Tensor.exp x in
    let z = Tensor.mul x y in
    Tensor.sum z
  in
  let widths =
    let rec dedup = function a :: (b :: _ as tl) when a = b -> dedup tl | a :: tl -> a :: dedup tl | [] -> [] in
    dedup [ 1; 2; Stdlib.max 2 (Domain.recommended_domain_count ()) ]
  in
  Report.set_columns [ 6; 12; 12; 14; 14 ];
  Report.row [ "jobs"; "extract(s)"; "kernels(s)"; "cost"; "kernel sum" ];
  Report.rule ();
  let saved = Pool.jobs () in
  let reference = ref None in
  Fun.protect
    ~finally:(fun () -> Pool.set_jobs saved)
    (fun () ->
      List.iter
        (fun jobs ->
          Pool.set_jobs jobs;
          let run, t = Timer.time (fun () -> Smoothe_extract.extract ~config g) in
          let cost = run.Smoothe_extract.result.Extractor.cost in
          let ksum = ref 0.0 in
          let (), kt = Timer.time (fun () -> ksum := kernel_workload ()) in
          (match !reference with
          | None -> reference := Some (cost, !ksum)
          | Some (c, s) ->
              if c <> cost || s <> !ksum then
                failwith
                  (Printf.sprintf
                     "parallel: results diverged at jobs=%d (cost %.17g vs %.17g, sum %.17g \
                      vs %.17g)"
                     jobs cost c !ksum s));
          Report.row
            [
              string_of_int jobs;
              Report.secs t;
              Report.secs kt;
              Printf.sprintf "%.6g" cost;
              Printf.sprintf "%.6g" !ksum;
            ])
        widths);
  print_endline
    "Chunk boundaries depend only on input size, never on the pool, so every row\n\
     must report the same cost and kernel sum; the experiment fails loudly if not."

(* -------------------------------------------------------------- hybrid *)

(* The hybrid pipeline head to head against the strongest plain solver:
   warm-started cplex-like ILP vs SmoothE incumbent -> fix/cut/shrink ->
   warm-started B&B -> sound verification solve, both at the same
   per-instance wall-clock. The selling point shows on the NP-hard rows:
   plain B&B never finds a good incumbent from the greedy warm start
   (its cost column stays at the heuristic), while the hybrid holds
   SmoothE's solution from the first second and spends the budget
   closing the bound — same wall-clock, far lower cost and gap. *)
let hybrid bank =
  Report.heading "Hybrid extraction: plain cplex-like ILP vs hybrid (equal wall-clock)";
  let budget = Runbank.budget bank in
  let tl = budget.Budget.ilp_time in
  Report.set_columns [ 16; 11; 7; 8; 11; 11; 7; 8; 7 ];
  Report.row
    [ "instance"; "ilp cost"; "proved"; "gap"; "hyb cost"; "hyb bound"; "proved"; "gap"; "fixed" ];
  Report.rule ();
  let ilp_proofs = ref 0 and hyb_proofs = ref 0 in
  List.iter
    (fun name ->
      let g = Runbank.egraph bank (Registry.find_instance name) in
      let greedy = Greedy_dag.extract g in
      let ilp =
        Ilp.extract ~time_limit:tl ?warm_start:greedy.Extractor.solution
          ~profile:Bnb.cplex_like g
      in
      let run =
        Hybrid_pipeline.extract
          ~config:
            {
              Hybrid_pipeline.default_config with
              Hybrid_pipeline.time_budget = tl;
              smoothe = budget.Budget.smoothe;
            }
          g
      in
      let hyb = run.Hybrid_pipeline.result in
      let ho = run.Hybrid_pipeline.hybrid in
      (* invariant, not luck: the hybrid starts from an incumbent and
         only ever improves on it, so it can never lose to its own seed *)
      if hyb.Extractor.cost > greedy.Extractor.cost +. Bnb.tolerance greedy.Extractor.cost
      then
        failwith
          (Printf.sprintf "hybrid worse than its greedy seed on %s: %.17g vs %.17g" name
             hyb.Extractor.cost greedy.Extractor.cost);
      if ilp.Extractor.proved_optimal then incr ilp_proofs;
      if hyb.Extractor.proved_optimal then incr hyb_proofs;
      let note (r : Extractor.r) k =
        match List.assoc_opt k r.Extractor.notes with Some v -> v | None -> "-"
      in
      Report.row
        [
          name;
          Printf.sprintf "%.6g" ilp.Extractor.cost;
          (if ilp.Extractor.proved_optimal then "yes" else "no");
          note ilp "gap";
          Printf.sprintf "%.6g" hyb.Extractor.cost;
          Printf.sprintf "%.6g" ho.Hybrid.bound;
          (if hyb.Extractor.proved_optimal then "yes" else "no");
          Printf.sprintf "%.3g" ho.Hybrid.gap;
          string_of_int ho.Hybrid.fixed_classes;
        ])
    [
      "mat-mul_2x2"; "mat-mul_3x3"; "set_cover_small"; "set_cover_mid"; "set_cover_dense";
      "maxsat_25_120"; "bzip2_1"; "box_3";
    ];
  Printf.printf "proof counts: plain ILP %d, hybrid %d (budget %.1fs each)\n" !ilp_proofs
    !hyb_proofs tl;
  print_endline
    "Equal wall-clock per method and instance; the hybrid spends part of its share\n\
     on SmoothE, the rest on the pruned and verification solves. Its bound and any\n\
     proof are valid for the full problem (DESIGN.md, Hybrid extraction)."

(* --------------------------------------------------------------- serve *)

let serve bank =
  Report.heading
    "Serve: admission control under ramped offered load (mcm_8, manual executors)";
  let g = Runbank.egraph bank (Registry.find_instance "mcm_8") in
  let inline = Egraph.Serial.to_string g in
  let queue_limit = 8 in
  let mk i =
    {
      Serve_protocol.default_request with
      Serve_protocol.id = Printf.sprintf "r%d" i;
      source = Serve_protocol.Inline inline;
      iters = 12;
      batch = 2;
      seed = i;
    }
  in
  Report.set_columns [ 8; 9; 6; 8; 10; 10; 10 ];
  Report.row [ "offered"; "admitted"; "shed"; "shed%"; "p50(ms)"; "p95(ms)"; "rehits" ];
  Report.rule ();
  List.iter
    (fun offered ->
      let engine =
        Serve_engine.create
          ~config:
            {
              Serve_engine.default_config with
              Serve_engine.queue_limit;
              executors = 0;
              cache_capacity = 64;
            }
          ()
      in
      (* wave 1: burst of [offered] arrivals against a cold queue; in
         manual mode nothing executes until [run_pending], so the burst
         probes pure admission policy *)
      let outcomes = List.init offered (fun i -> Serve_engine.offer engine (mk i)) in
      ignore (Serve_engine.run_pending engine);
      let responses =
        List.map
          (function
            | Serve_engine.Queued tk -> Serve_engine.await tk
            | Serve_engine.Done r -> r)
          outcomes
      in
      let shed =
        List.length
          (List.filter
             (fun r ->
               match r.Serve_protocol.body with
               | Error { Serve_protocol.code = Serve_protocol.Overloaded; _ } -> true
               | _ -> false)
             responses)
      in
      let latencies =
        Array.of_list
          (List.filter_map
             (fun r ->
               match r.Serve_protocol.body with
               | Ok _ -> Some (r.Serve_protocol.queue_ms +. r.Serve_protocol.elapsed_ms)
               | Error _ -> None)
             responses)
      in
      (* wave 2: re-offer the requests that completed; the warmed cache
         must answer every one at admission time *)
      let survivors = Stdlib.min offered queue_limit in
      let rehits = ref 0 in
      List.iter
        (fun outcome ->
          let r =
            match outcome with
            | Serve_engine.Queued tk -> Serve_engine.await tk
            | Serve_engine.Done r -> r
          in
          match r.Serve_protocol.body with
          | Ok b when b.Serve_protocol.cache_hit -> incr rehits
          | _ -> ())
        (List.init survivors (fun i -> Serve_engine.offer engine (mk i)));
      ignore (Serve_engine.run_pending engine);
      Serve_engine.stop engine;
      let admitted = offered - shed in
      Report.row
        [
          string_of_int offered;
          string_of_int admitted;
          string_of_int shed;
          Printf.sprintf "%.0f%%" (100.0 *. float_of_int shed /. float_of_int offered);
          Printf.sprintf "%.2f" (Stats.percentile latencies 50.0);
          Printf.sprintf "%.2f" (Stats.percentile latencies 95.0);
          Printf.sprintf "%d/%d" !rehits survivors;
        ])
    [ 4; 8; 16; 32 ];
  Printf.printf
    "Queue limit %d: every request beyond it in a burst must be shed with a retry\n\
     hint, and every re-offered completed request must hit the solution cache.\n"
    queue_limit

(* ------------------------------------------------------------ recovery *)

let recovery bank =
  Report.heading
    "Recovery: request-journal admission overhead and time-to-recover (mcm_8)";
  let g = Runbank.egraph bank (Registry.find_instance "mcm_8") in
  let inline = Egraph.Serial.to_string g in
  let mk i =
    {
      Serve_protocol.default_request with
      Serve_protocol.id = Printf.sprintf "r%d" i;
      source = Serve_protocol.Inline inline;
      iters = 8;
      batch = 1;
      seed = i;
    }
  in
  let config =
    {
      Serve_engine.default_config with
      Serve_engine.queue_limit = 128;
      executors = 0;
      cache_capacity = 128;
    }
  in
  let journal_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "smoothe-bench-journal-%d" (Unix.getpid ()))
  in
  let clean_dir () =
    if Sys.file_exists journal_dir then
      Array.iter
        (fun f -> try Sys.remove (Filename.concat journal_dir f) with Sys_error _ -> ())
        (Sys.readdir journal_dir)
  in
  (* part A: what the write-ahead append costs on the admission path.
     Offers happen in manual mode against an idle queue, so the delta
     between rows is purely the journal (and its fsync). *)
  let offers = 64 in
  Report.set_columns [ 20; 8; 12; 12; 12 ];
  Report.row [ "admission"; "offers"; "p50(us)"; "p95(us)"; "max(us)" ];
  Report.rule ();
  List.iter
    (fun (label, journal) ->
      clean_dir ();
      let j =
        if journal then
          Some
            (Serve_journal.open_ ~fsync:(label <> "journal, no fsync") ~dir:journal_dir
               ~name:"bench" ())
        else None
      in
      let engine = Serve_engine.create ~config ?journal:j () in
      let lat =
        Array.init offers (fun i ->
            let outcome, t = Timer.time (fun () -> Serve_engine.offer engine (mk i)) in
            (match outcome with
            | Serve_engine.Queued _ -> ()
            | Serve_engine.Done _ -> failwith "recovery bench: offer unexpectedly refused");
            t *. 1e6)
      in
      ignore (Serve_engine.run_pending engine);
      Serve_engine.stop engine;
      Option.iter Serve_journal.close j;
      Report.row
        [
          label;
          string_of_int offers;
          Printf.sprintf "%.1f" (Stats.percentile lat 50.0);
          Printf.sprintf "%.1f" (Stats.percentile lat 95.0);
          Printf.sprintf "%.1f" (Array.fold_left Float.max 0.0 lat);
        ])
    [ ("no journal", false); ("journal, fsync", true); ("journal, no fsync", true) ];
  (* part B: restart cost as a function of how much work the dead
     process was holding. Admit D requests, abandon the engine without
     running them (the crash), then time the full restart: scan +
     compact + replay + execute the backlog. *)
  Report.heading "Time-to-recover vs journal depth (crash with D admitted, 0 completed)";
  Report.set_columns [ 8; 10; 12; 14; 14 ];
  Report.row [ "depth"; "replayed"; "scan(ms)"; "replay(ms)"; "backlog(ms)" ];
  Report.rule ();
  List.iter
    (fun depth ->
      clean_dir ();
      let j = Serve_journal.open_ ~dir:journal_dir ~name:"bench" () in
      let engine = Serve_engine.create ~config ~journal:j () in
      List.iter
        (fun i ->
          match Serve_engine.offer engine (mk i) with
          | Serve_engine.Queued _ -> ()
          | Serve_engine.Done _ -> failwith "recovery bench: offer unexpectedly refused")
        (List.init depth Fun.id);
      (* the crash: no drain, no stop — only the fsynced journal survives *)
      Serve_journal.close j;
      let j2, scan_s = Timer.time (fun () -> Serve_journal.open_ ~dir:journal_dir ~name:"bench" ()) in
      let engine2 = Serve_engine.create ~config ~journal:j2 () in
      let replayed, replay_s = Timer.time (fun () -> Serve_engine.recover engine2) in
      let ran, backlog_s = Timer.time (fun () -> Serve_engine.run_pending engine2) in
      Serve_engine.stop engine2;
      Serve_journal.close j2;
      if replayed <> depth || ran <> depth then
        failwith
          (Printf.sprintf "recovery bench: depth %d replayed %d ran %d" depth replayed ran);
      Report.row
        [
          string_of_int depth;
          string_of_int replayed;
          Printf.sprintf "%.2f" (scan_s *. 1e3);
          Printf.sprintf "%.2f" (replay_s *. 1e3);
          Printf.sprintf "%.2f" (backlog_s *. 1e3);
        ])
    [ 4; 16; 64 ];
  clean_dir ();
  (try Unix.rmdir journal_dir with Unix.Unix_error _ -> ());
  print_endline
    "Scan+replay must grow with journal depth only (compaction bounds it by live\n\
     state); every replayed request must re-execute — none may be lost or doubled."

(* -------------------------------------------------------------- driver *)

let registry =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("ablation_lambda", ablation_lambda);
    ("ablation_repair", ablation_repair);
    ("ablation_assumption", ablation_assumption);
    ("ablation_fusion", ablation_fusion);
    ("ablation_phi", ablation_phi);
    ("ablation_temperature", ablation_temperature);
    ("phases", phases);
    ("durability", durability);
    ("preflight", preflight);
    ("replay", replay);
    ("parallel", parallel);
    ("hybrid", hybrid);
    ("serve", serve);
    ("recovery", recovery);
  ]

let names = List.map fst registry
let by_name name = List.assoc_opt name registry

let all bank =
  List.iter
    (fun (name, f) ->
      let (), t = Timer.time (fun () -> f bank) in
      Printf.printf "[%s completed in %.1fs]\n%!" name t)
    registry
