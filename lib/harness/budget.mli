(** Evaluation budgets.

    The paper gives ILP solvers a 15-minute limit and obtains oracles
    from 10-hour CPLEX runs on an A100 server; this pure-OCaml
    reproduction scales the budgets down together with the e-graph sizes
    (see DESIGN.md). Two presets: [default] regenerates every table and
    figure in tens of minutes; [quick] smoke-tests the harness. *)

type t = {
  ilp_time : float;  (** per-instance time limit for each ILP profile (the "15 min") *)
  oracle_time : float;  (** extra budget for the oracle ILP run (the "10 h") *)
  smoothe_runs : int;  (** repetitions for the ± max-difference error bars *)
  smoothe : Smoothe_config.t;
  genetic : Genetic.config;
  mlp_train_epochs : int;
  seed_sweep : int list;  (** batch sizes for the Figure 7 sweep *)
}

val default : t
val quick : t
