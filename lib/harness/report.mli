(** Plain-text table rendering for the bench harness. *)

val heading : string -> unit
(** Boxed section title. *)

val subheading : string -> unit

val row : string list -> unit
(** Print one row under the current column widths (set by {!set_columns}). *)

val set_columns : int list -> unit
(** Column widths for subsequent {!row} calls. *)

val rule : unit -> unit
(** Horizontal rule matching the current columns. *)

val record : (unit -> 'a) -> 'a * (string * string list list) list
(** Run a thunk with table capture on (printing still happens) and
    return its result plus the tables it printed, in order: each
    {!heading}/{!subheading} starts a [(title, rows)] table, each
    {!row} appends its cells verbatim. Backs [bench --record]. *)

val pct : float -> string
(** Format a quality increase: "2.8%", "6.3x" for large values, "Failed"
    for infinity — the Table 2/4 conventions. *)

val secs : float -> string

val pm : float -> float -> string
(** ["a±b"] with compact formatting. *)

val pct_pm : float -> float -> string
