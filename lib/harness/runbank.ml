type t = {
  budget : Budget.t;
  egraphs : (string, Egraph.t) Hashtbl.t;
  results : (string * string, Extractor.r) Hashtbl.t;
  smoothe : (string, Smoothe_extract.run list) Hashtbl.t;
  oracles : (string, float) Hashtbl.t;
}

let create budget =
  {
    budget;
    egraphs = Hashtbl.create 64;
    results = Hashtbl.create 256;
    smoothe = Hashtbl.create 64;
    oracles = Hashtbl.create 64;
  }

let budget t = t.budget

let egraph t inst =
  match Hashtbl.find_opt t.egraphs inst.Registry.inst_name with
  | Some g -> g
  | None ->
      let g = inst.Registry.build () in
      Hashtbl.replace t.egraphs inst.Registry.inst_name g;
      g

let memo t inst method_name run =
  let key = inst.Registry.inst_name, method_name in
  match Hashtbl.find_opt t.results key with
  | Some r -> r
  | None ->
      let r = run () in
      Hashtbl.replace t.results key r;
      r

let heuristic t inst = memo t inst "heuristic" (fun () -> Greedy.extract (egraph t inst))

let heuristic_plus t inst =
  memo t inst "heuristic+" (fun () -> Greedy_dag.extract (egraph t inst))

let ilp t profile inst =
  memo t inst ("ilp-" ^ profile.Bnb.profile_name) (fun () ->
      let g = egraph t inst in
      let warm =
        if profile.Bnb.use_warm_start then (heuristic_plus t inst).Extractor.solution else None
      in
      Ilp.extract ~time_limit:t.budget.Budget.ilp_time ?warm_start:warm ~profile g)

let smoothe_runs t ds inst =
  match Hashtbl.find_opt t.smoothe inst.Registry.inst_name with
  | Some runs -> runs
  | None ->
      let g = egraph t inst in
      let assumption = Smoothe_config.assumption_of_string ds.Registry.assumption in
      let base = { t.budget.Budget.smoothe with Smoothe_config.assumption } in
      let runs =
        List.init t.budget.Budget.smoothe_runs (fun k ->
            Smoothe_extract.extract
              ~config:{ base with Smoothe_config.seed = base.Smoothe_config.seed + (1000 * k) }
              g)
      in
      Hashtbl.replace t.smoothe inst.Registry.inst_name runs;
      runs

let smoothe_recoveries t ds inst =
  List.fold_left
    (fun acc run ->
      acc + run.Smoothe_extract.recoveries
      + List.length
          (List.filter
             (fun e -> e.Health.kind = Health.Oom_derate)
             run.Smoothe_extract.health))
    0 (smoothe_runs t ds inst)

let genetic t inst =
  memo t inst "genetic" (fun () ->
      Genetic.extract ~config:t.budget.Budget.genetic (Rng.create 2024) (egraph t inst))

let oracle t ds inst =
  match Hashtbl.find_opt t.oracles inst.Registry.inst_name with
  | Some v -> v
  | None ->
      let g = egraph t inst in
      let best_heuristic =
        Float.min (heuristic t inst).Extractor.cost (heuristic_plus t inst).Extractor.cost
      in
      let smoothe_best =
        List.fold_left
          (fun acc run -> Float.min acc run.Smoothe_extract.result.Extractor.cost)
          infinity (smoothe_runs t ds inst)
      in
      let warm =
        let hp = heuristic_plus t inst in
        match hp.Extractor.solution with
        | Some _ as s -> s
        | None -> (heuristic t inst).Extractor.solution
      in
      let long_ilp =
        Ilp.extract
          ~time_limit:(t.budget.Budget.ilp_time +. t.budget.Budget.oracle_time)
          ?warm_start:warm ~profile:Bnb.cplex_like g
      in
      let v = Float.min long_ilp.Extractor.cost (Float.min best_heuristic smoothe_best) in
      Hashtbl.replace t.oracles inst.Registry.inst_name v;
      v

let quality_increase t ds inst cost =
  if not (Float.is_finite cost) then infinity
  else begin
    let base = oracle t ds inst in
    if base <= 0.0 then 0.0 else (cost /. base) -. 1.0
  end
