type t = {
  ilp_time : float;
  oracle_time : float;
  smoothe_runs : int;
  smoothe : Smoothe_config.t;
  genetic : Genetic.config;
  mlp_train_epochs : int;
  seed_sweep : int list;
}

let default =
  {
    ilp_time = 8.0;
    oracle_time = 25.0;
    smoothe_runs = 3;
    smoothe =
      { Smoothe_config.default with Smoothe_config.batch = 16; max_iters = 150; patience = 40 };
    genetic = { Genetic.default_config with Genetic.time_limit = 8.0; generations = 120 };
    mlp_train_epochs = 12;
    seed_sweep = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ];
  }

let quick =
  {
    ilp_time = 1.5;
    oracle_time = 3.0;
    smoothe_runs = 2;
    smoothe =
      { Smoothe_config.default with Smoothe_config.batch = 8; max_iters = 60; patience = 20 };
    genetic = { Genetic.default_config with Genetic.time_limit = 1.0; generations = 20 };
    mlp_train_epochs = 8;
    seed_sweep = [ 1; 4; 16; 64 ];
  }
