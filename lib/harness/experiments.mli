(** Experiment runners: one function per table and figure of the paper's
    evaluation (§5), plus the ablations DESIGN.md calls out. Each prints
    a plain-text rendition of the corresponding exhibit. All share one
    {!Runbank.t} so Table 2/3 runs, oracles and traces are computed
    once. *)

val table1 : Runbank.t -> unit
(** Dataset statistics. *)

val table2 : Runbank.t -> unit
(** Linear-cost comparison across the five realistic datasets. *)

val table3 : Runbank.t -> unit
(** Per-e-graph breakdown on tensat and rover. *)

val table4 : Runbank.t -> unit
(** The adversarial NP-hard datasets (set, maxsat). *)

val table5 : Runbank.t -> unit
(** Device portability: A100-class vs RTX-2080Ti-class memory budgets,
    including the out-of-memory cases on oversized e-graphs. *)

val fig4 : Runbank.t -> unit
(** Anytime curves: SmoothE vs the cplex-like ILP. *)

val fig5 : Runbank.t -> unit
(** Non-linear (MLP) cost models: SmoothE vs genetic vs ILP*. *)

val fig6 : Runbank.t -> unit
(** Performance ablation: CPU baseline → vectorised → +matexp opts. *)

val fig7 : Runbank.t -> unit
(** Seed batching sweep on rover/box_3. *)

val fig8 : Runbank.t -> unit
(** Runtime profiling shares (loss / gradient / sampling). *)

val fig9 : Runbank.t -> unit
(** Optimisation loss vs sampling loss trajectories. *)

val ablation_lambda : Runbank.t -> unit
(** Sweep of the NOTEARS weight λ on a cyclic e-graph. *)

val ablation_repair : Runbank.t -> unit
(** Cycle-aware sampling repair on vs off. *)

val ablation_assumption : Runbank.t -> unit
(** Independent / correlated / hybrid assumption comparison. *)

val ablation_fusion : Runbank.t -> unit
(** The pairwise fusion-discount cost model (paper §6 future work):
    SmoothE vs genetic vs the linear-model optimum re-scored. *)

val ablation_phi : Runbank.t -> unit
(** Accuracy of the §3.3 correlation assumptions against exact
    (enumerated) selection marginals on small e-graphs. *)

val ablation_temperature : Runbank.t -> unit
(** Softmax temperature annealing and entropy bonus (our extensions). *)

val phases : Runbank.t -> unit
(** Per-phase wall-clock breakdown summed from recorded {!Trace} spans
    across the Fig. 6 configurations, with matexp squaring counts. *)

val durability : Runbank.t -> unit
(** Checkpointing overhead sweep: the same SmoothE run with snapshots
    off and at several intervals, reporting wall-clock, snapshot writes
    and bytes; the cost column must not move (checkpointing never
    perturbs the optimisation). *)

val preflight : Runbank.t -> unit
(** Static-analysis sweep: {!Egraph_lint} plus the tape shape and
    gradient-flow passes over every bundled instance. All must come out
    clean (info-level findings allowed). *)

val replay : Runbank.t -> unit
(** Static-plan replay vs the interpreter: per-iteration wall clock and
    tensor allocation for both executors over identical theta
    trajectories. Asserts replayed iterations allocate zero tensor
    bytes and stay bit-identical to the interpreter. *)

val all : Runbank.t -> unit

val by_name : string -> (Runbank.t -> unit) option
val names : string list
