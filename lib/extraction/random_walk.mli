(** Random *valid* extraction sampling.

    §5.5 trains the MLP cost model on "random discrete valid solutions";
    the genetic baseline also needs a diverse valid population. Rejection
    sampling over per-class choices breaks down on cyclic e-graphs, so we
    sample by running the (always-acyclic, always-complete) bottom-up
    greedy extractor under independently randomised node costs: each draw
    is the greedy optimum of a random cost landscape, giving broad
    coverage of the feasible set at worklist cost. *)

val solution : Rng.t -> Egraph.t -> Egraph.Solution.s option
(** One random valid solution; [None] only if the e-graph admits no
    finite extraction at all. *)

val solutions : Rng.t -> Egraph.t -> count:int -> Egraph.Solution.s list

val dense_dataset : Rng.t -> Egraph.t -> count:int -> float array array
(** Dense indicator vectors of [count] random valid solutions —
    the MLP training inputs of §5.5. *)
